package balarch_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"balarch"
)

func TestPublicCatalog(t *testing.T) {
	cat := balarch.Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog size = %d, want 8", len(cat))
	}
}

func TestPublicRebalanceLaws(t *testing.T) {
	// The paper's headline numbers through the public API.
	mm, err := balarch.MatrixMultiplication().Rebalance(4, 1024, balarch.DefaultMaxMemory)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mm-16*1024)/16384 > 1e-6 {
		t.Errorf("matmul α=4: M_new = %v, want 16384", mm)
	}
	g3, err := balarch.Grid(3).Rebalance(2, 4096, balarch.DefaultMaxMemory)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g3-8*4096)/32768 > 1e-6 {
		t.Errorf("grid3 α=2: M_new = %v, want 32768", g3)
	}
	fft, err := balarch.FFT().Rebalance(2, 64, balarch.DefaultMaxMemory)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fft-64*64)/4096 > 1e-5 {
		t.Errorf("fft α=2: M_new = %v, want 4096", fft)
	}
	if _, err := balarch.MatrixVector().Rebalance(2, 64, balarch.DefaultMaxMemory); !errors.Is(err, balarch.ErrNotRebalanceable) {
		t.Errorf("matvec rebalance err = %v, want ErrNotRebalanceable", err)
	}
}

func TestPublicAnalyze(t *testing.T) {
	// A PE whose intensity exactly equals √M: balanced for matmul.
	pe := balarch.PE{C: 64e6, IO: 1e6, M: 4096}
	a, err := balarch.Analyze(pe, balarch.MatrixMultiplication())
	if err != nil {
		t.Fatal(err)
	}
	if a.State != balarch.Balanced {
		t.Errorf("state = %v, want balanced", a.State)
	}
	// Same PE is I/O bound for matvec, and not rebalanceable.
	a, err = balarch.Analyze(pe, balarch.MatrixVector())
	if err != nil {
		t.Fatal(err)
	}
	if a.State != balarch.IOBound || a.Rebalanceable {
		t.Errorf("matvec: state=%v rebalanceable=%v, want IOBound/false", a.State, a.Rebalanceable)
	}
}

func TestWarpParameters(t *testing.T) {
	w := balarch.Warp()
	if w.C != 10e6 || w.IO != 20e6 || w.M != 65536 {
		t.Errorf("Warp = %+v", w)
	}
	if balarch.WarpCells != 10 {
		t.Errorf("WarpCells = %d", balarch.WarpCells)
	}
}

func TestExperimentPlumbing(t *testing.T) {
	ids := balarch.ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("experiment count = %d, want 16", len(ids))
	}
	title, err := balarch.ExperimentTitle("E2")
	if err != nil || title == "" {
		t.Errorf("ExperimentTitle(E2) = %q, %v", title, err)
	}
	if _, err := balarch.RunExperiment("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Run one fast experiment end to end through the public API.
	res, err := balarch.RunExperiment("E5")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Errorf("E5 failed:\n%s", res.String())
	}
}

func TestExtensionComputations(t *testing.T) {
	sp := balarch.SparseMatVec()
	if !sp.IOBounded {
		t.Error("sparse matvec should be memory-inelastic")
	}
	if got := sp.Ratio(1 << 20); got != 2.0/3.0 {
		t.Errorf("spmv ratio = %v, want 2/3", got)
	}
	conv := balarch.Convolution(8)
	if got := conv.Ratio(64); got != 8 {
		t.Errorf("conv ratio = %v, want 8", got)
	}
	if _, err := conv.Rebalance(2, 64, balarch.DefaultMaxMemory); !errors.Is(err, balarch.ErrNotRebalanceable) {
		t.Errorf("conv rebalance err = %v", err)
	}
}

// TestRunAllParallelDeterminism is the repo's seed-determinism gate: for
// every experiment id, the parallel engine must produce byte-identical
// report JSON to the strictly serial path — concurrency must never change
// observable output.
func TestRunAllParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice; skipped in -short")
	}
	ctx := context.Background()
	serial, passSerial, err := balarch.RunAll(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, passParallel, err := balarch.RunAll(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !passSerial || !passParallel {
		t.Errorf("suite pass: serial=%v parallel=%v, want both true", passSerial, passParallel)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	ids := balarch.ExperimentIDs()
	for i := range serial {
		if serial[i].ID != ids[i] || parallel[i].ID != ids[i] {
			t.Errorf("result %d out of id order: serial %s, parallel %s, want %s",
				i, serial[i].ID, parallel[i].ID, ids[i])
		}
		sj, err := serial[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		pj, err := parallel[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Errorf("%s: parallel JSON differs from serial", ids[i])
		}
	}
}

// TestRunExperimentContext covers the public context-aware single-run path.
func TestRunExperimentContext(t *testing.T) {
	res, err := balarch.RunExperimentContext(context.Background(), "E5")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Errorf("E5 failed:\n%s", res.String())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := balarch.RunExperimentContext(ctx, "E2"); err == nil {
		t.Error("cancelled context did not abort the experiment")
	}
}

// TestNewServerHandler mounts the public API facade and drives one request
// per surface: health, an analytic query, and an experiment run.
func TestNewServerHandler(t *testing.T) {
	h := balarch.NewServerHandler(balarch.ServerOptions{Parallelism: 2})

	get := func(method, path, body string) *httptest.ResponseRecorder {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(method, path, rd))
		return w
	}

	if w := get("GET", "/healthz", ""); w.Code != 200 {
		t.Fatalf("healthz = %d: %s", w.Code, w.Body.String())
	}
	w := get("POST", "/v1/rebalance",
		`{"computation": {"name": "matmul"}, "alpha": 4, "m_old": 1024}`)
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"m_closed_form": 16384`) {
		t.Fatalf("rebalance = %d: %s", w.Code, w.Body.String())
	}
	if w := get("POST", "/v1/experiments/E7", ""); w.Code != 200 ||
		!strings.Contains(w.Body.String(), `"pass": true`) {
		t.Fatalf("experiment E7 = %d: %.200s", w.Code, w.Body.String())
	}
	if w := get("POST", "/v1/experiments/E99", ""); w.Code != 404 {
		t.Fatalf("unknown experiment = %d, want 404", w.Code)
	}
}
