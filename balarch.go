// Package balarch is a Go reproduction of H. T. Kung's "Memory Requirements
// for Balanced Computer Architectures" (Journal of Complexity 1, 147–157,
// 1985): the information model of a processing element (computation
// bandwidth C, I/O bandwidth IO, local memory M), the balance condition
// Ccomp/C = Cio/IO, and the memory growth laws that answer the paper's
// central question — when C/IO rises by a factor α, how much local memory
// restores balance?
//
//   - Matrix multiplication, triangularization, 2-D grids:  M_new = α²·M_old
//   - d-dimensional grids:                                  M_new = α^d·M_old
//   - FFT and sorting:                                      M_new = M_old^α
//   - Matrix-vector product, triangular solve:              impossible
//
// The package exposes the analytic model (PE, Computation, the catalog, the
// rebalance solvers) and the experiment harness that reproduces every table
// and figure of the paper on instrumented kernels, a red-blue pebble game, a
// cache simulator, and a discrete-event processor-array simulator. See
// DESIGN.md for the full system inventory and the experiment index (E1–E12,
// X1–X4).
//
// Quick start:
//
//	pe := balarch.PE{C: 50e6, IO: 1e6, M: 4096}
//	a, err := balarch.Analyze(pe, balarch.MatrixMultiplication())
//	// a.State, a.BalancedMemory answer the balance question for this PE.
//
//	mNew, err := balarch.MatrixMultiplication().Rebalance(4, 1024, 1e18)
//	// mNew ≈ 16×1024: the α² law.
package balarch

import (
	"context"
	"net/http"

	"balarch/internal/experiments"
	"balarch/internal/model"
	"balarch/internal/report"
	"balarch/internal/roofline"
	"balarch/internal/server"
)

// PE is a processing element characterized by computation bandwidth C
// (operations/second), I/O bandwidth IO (words/second), and local memory M
// (words) — the paper's Fig. 1.
type PE = model.PE

// Computation is one analyzed task: its achievable compute-to-I/O ratio as
// a function of local memory and its closed-form memory growth law.
type Computation = model.Computation

// Analysis is the balance diagnosis of one PE running one computation.
type Analysis = model.Analysis

// BalanceState classifies a PE as balanced, I/O bound, or compute bound.
type BalanceState = model.BalanceState

// GrowthLaw is a closed-form answer to the rebalancing question.
type GrowthLaw = model.GrowthLaw

// Result is a reproduced experiment's outcome: claims, tables, figures.
type Result = report.Result

// Balance states.
const (
	Balanced     = model.Balanced
	IOBound      = model.IOBound
	ComputeBound = model.ComputeBound
)

// ErrNotRebalanceable is returned for I/O-bounded computations: no local
// memory size restores balance (paper §3.6).
var ErrNotRebalanceable = model.ErrNotRebalanceable

// Level is one memory level of a hierarchy: capacity M words filled through
// its outer boundary at BW words/s (innermost level first).
type Level = model.Level

// Hierarchy is a multi-level machine description — a compute rate above an
// ordered level stack. The flat PE is the exact one-level special case
// (FromPE lifts one; Hierarchy.Flat lowers back).
type Hierarchy = model.Hierarchy

// HierarchyAnalysis is the per-boundary balance diagnosis of a hierarchy:
// each adjacent-level boundary gets the paper's Ccomp/C = Cio/IO test
// against the cumulative capacity inside it, and the binding boundary (the
// worst I/O-to-compute time ratio) classifies the machine.
type HierarchyAnalysis = model.HierarchyAnalysis

// HierarchyRebalance is the hierarchy answer to the paper's question: the
// per-level memory bill that restores balance at every boundary after the
// compute rate grows by α.
type HierarchyRebalance = model.HierarchyRebalance

// ErrNonMonotoneHierarchy marks a mis-ordered hierarchy: an outer boundary
// faster than an inner one.
var ErrNonMonotoneHierarchy = model.ErrNonMonotoneHierarchy

// FromPE lifts a flat PE into its equivalent one-level hierarchy.
func FromPE(pe PE) Hierarchy { return model.FromPE(pe) }

// AnalyzeHierarchy diagnoses a multi-level machine against a computation,
// boundary by boundary. A one-level hierarchy reproduces Analyze exactly.
func AnalyzeHierarchy(h Hierarchy, c Computation) (HierarchyAnalysis, error) {
	return model.AnalyzeHierarchy(h, c, DefaultMaxMemory)
}

// RebalanceHierarchy computes the per-level memory bill after the compute
// rate grows by α.
func RebalanceHierarchy(h Hierarchy, c Computation, alpha float64) (HierarchyRebalance, error) {
	return model.RebalanceHierarchy(h, c, alpha, DefaultMaxMemory)
}

// MatrixMultiplication returns the §3.1 catalog entry (law α²).
func MatrixMultiplication() Computation { return model.MatrixMultiplication() }

// MatrixTriangularization returns the §3.2 catalog entry (law α²).
func MatrixTriangularization() Computation { return model.MatrixTriangularization() }

// Grid returns the §3.3 catalog entry for a d-dimensional grid (law α^d).
func Grid(d int) Computation { return model.Grid(d) }

// FFT returns the §3.4 catalog entry (law M^α).
func FFT() Computation { return model.FFT() }

// Sorting returns the §3.5 catalog entry (law M^α).
func Sorting() Computation { return model.Sorting() }

// MatrixVector returns the §3.6 catalog entry (not rebalanceable).
func MatrixVector() Computation { return model.MatrixVector() }

// TriangularSolve returns the §3.6 catalog entry (not rebalanceable).
func TriangularSolve() Computation { return model.TriangularSolve() }

// SparseMatVec returns the §4 sparse-operation entry (extension; not
// rebalanceable — the paper's "relatively high I/O requirements" remark).
func SparseMatVec() Computation { return model.SparseMatVec() }

// Convolution returns a k-tap FIR entry (extension per §5): the ratio is
// operator-bound at k, so memory beyond 2k words buys nothing, but widening
// the operator rebalances.
func Convolution(k int) Computation { return model.Convolution(k) }

// Catalog returns every computation the paper analyzes, in §3 order.
func Catalog() []Computation { return model.Catalog() }

// Warp returns the per-cell PE parameters of the CMU Warp machine (§5):
// 10 MFLOPS, 20 Mwords/s, 64K words.
func Warp() PE { return model.Warp() }

// WarpCells is the cell count of the 1985 Warp linear array.
const WarpCells = model.WarpCells

// DefaultMaxMemory bounds the numeric rebalance searches: 10^18 words.
const DefaultMaxMemory = 1e18

// Analyze diagnoses a PE against a computation: is it balanced, and what
// memory would balance it?
func Analyze(pe PE, c Computation) (Analysis, error) {
	return model.Analyze(pe, c, DefaultMaxMemory)
}

// RooflineModel evaluates attainable performance min(C, IO·R(M)) — the
// modern roofline reading of the paper's balance condition, where the
// operational intensity is the memory-dependent ratio R(M) and the ridge
// point is exactly C/IO.
type RooflineModel = roofline.Model

// Roofline builds a roofline model for the PE.
func Roofline(pe PE) (*RooflineModel, error) { return roofline.New(pe) }

// HierarchyRooflineModel evaluates the multi-ridge roofline of a hierarchy:
// one bandwidth slope and one ridge per boundary, attainable performance
// min(C, min_i BW_i·R(W_i)).
type HierarchyRooflineModel = roofline.HierarchyModel

// HierarchyRoofline builds a multi-ridge roofline model for the hierarchy.
func HierarchyRoofline(h Hierarchy) (*HierarchyRooflineModel, error) {
	return roofline.NewHierarchy(h)
}

// ExperimentIDs lists the reproduction's experiments in id order (E1–E12
// and X1–X4; DESIGN.md §3).
func ExperimentIDs() []string {
	reg := experiments.Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// RunExperiment reproduces one paper table or figure by id and returns its
// report. It is RunExperimentContext with a background context.
func RunExperiment(id string) (*Result, error) {
	return RunExperimentContext(context.Background(), id)
}

// RunExperimentContext reproduces one paper table or figure by id under
// ctx: cancelling the context aborts the experiment's sweeps.
func RunExperimentContext(ctx context.Context, id string) (*Result, error) {
	exp, err := experiments.Get(id)
	if err != nil {
		return nil, err
	}
	return exp.Run(ctx)
}

// RunAll reproduces the whole suite on a worker pool with the given
// parallelism (≤ 0 means GOMAXPROCS; 1 runs the entire tree serially) and
// returns the results in id order — byte-identical to a serial run
// whatever the worker count. pass reports whether every claim of every
// experiment passed.
func RunAll(ctx context.Context, parallelism int) (results []*Result, pass bool, err error) {
	return experiments.RunAll(ctx, parallelism)
}

// ServerOptions configures the HTTP API handler: engine parallelism,
// per-request timeout, body/batch limits, concurrency cap, structured
// logging, and — via StoreDir — the durable async jobs subsystem. The
// zero value serves with production defaults.
type ServerOptions = server.Options

// Server is one balance-as-a-service instance: Handler returns the
// mountable API, Close drains the async job queue (running jobs finish
// within the context's budget, queued ones stay journaled for the next
// instance on the same store directory), and JobsErr reports why the
// async subsystem failed to open, if it did. Embedders that enable jobs
// (ServerOptions.StoreDir) should prefer NewServer over
// NewServerHandler so they can drain on shutdown.
type Server = server.Server

// NewServer returns a configured service instance. Check JobsErr when
// ServerOptions.StoreDir is set, and Close the server when done.
func NewServer(o ServerOptions) *Server {
	return server.New(o)
}

// NewServerHandler returns the balance-as-a-service HTTP JSON API as a
// plain http.Handler — POST /v1/analyze, /v1/rebalance, /v1/roofline,
// /v1/sweep, /v1/batch, GET+POST /v1/experiments, the durable async
// /v1/jobs surface (enabled by ServerOptions.StoreDir: WAL-journaled
// submits, content-addressed results, admission control), GET /healthz
// and /metrics — with the request-id/recover/logging/limiter/timeout
// middleware stack already applied, so embedders can mount the same API
// cmd/balarchd serves. The balarch/client package is the typed SDK for
// this API (and client.NewFromHandler binds it directly to this handler,
// no socket needed); cmd/balarchload drives it with scenario load. See
// internal/server for the endpoint contracts and DESIGN.md §4–§6 for the
// endpoint table, error envelope, load-testing architecture, and the
// jobs/store subsystem.
func NewServerHandler(o ServerOptions) http.Handler {
	return server.New(o).Handler()
}

// ExperimentTitle returns the experiment's one-line description.
func ExperimentTitle(id string) (string, error) {
	exp, err := experiments.Get(id)
	if err != nil {
		return "", err
	}
	return exp.Title, nil
}
