package roofline

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"balarch/internal/model"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(model.PE{C: 64e6, IO: 1e6, M: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsInvalidPE(t *testing.T) {
	if _, err := New(model.PE{}); err == nil {
		t.Error("invalid PE accepted")
	}
}

func TestRidgeAndAttainable(t *testing.T) {
	m := newModel(t)
	if got := m.RidgeIntensity(); got != 64 {
		t.Errorf("ridge = %v, want 64", got)
	}
	// Below the ridge: bandwidth slope.
	if got := m.Attainable(32); got != 32e6 {
		t.Errorf("Attainable(32) = %v, want 32e6", got)
	}
	// At and above the ridge: the compute roof.
	if got := m.Attainable(64); got != 64e6 {
		t.Errorf("Attainable(64) = %v, want 64e6", got)
	}
	if got := m.Attainable(1e9); got != 64e6 {
		t.Errorf("Attainable(huge) = %v, want roof", got)
	}
	if got := m.Attainable(-1); got != 0 {
		t.Errorf("Attainable(-1) = %v, want 0", got)
	}
}

func TestMatmulPathReachesRoofAtBalanceMemory(t *testing.T) {
	m := newModel(t)
	mm := model.MatrixMultiplication()
	// Ridge 64 = √M ⇒ balance memory 4096 = the PE's actual M.
	ridgeM, err := m.MemoryAtRidge(mm, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridgeM-4096)/4096 > 1e-6 {
		t.Errorf("ridge memory = %v, want 4096", ridgeM)
	}
	below := m.PathPoint(mm, 1024) // √1024 = 32 < 64: slope
	if below.ComputeBound {
		t.Error("below-balance point should be bandwidth bound")
	}
	if math.Abs(below.Attainable-32e6) > 1 {
		t.Errorf("below-balance attainable = %v, want 32e6", below.Attainable)
	}
	at := m.PathPoint(mm, 4096)
	if !at.ComputeBound {
		t.Error("at-balance point should reach the roof")
	}
	if m.Efficiency(mm, 4096) < 0.999 {
		t.Errorf("efficiency at balance = %v, want 1", m.Efficiency(mm, 4096))
	}
	if eff := m.Efficiency(mm, 1024); math.Abs(eff-0.5) > 1e-9 {
		t.Errorf("efficiency at quarter memory = %v, want 0.5", eff)
	}
}

func TestIOBoundPathNeverReachesRoof(t *testing.T) {
	m := newModel(t)
	mv := model.MatrixVector()
	pts, err := m.Path(mv, 4, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.ComputeBound {
			t.Fatalf("matvec reached the roof at M=%v — §3.6 forbids it", p.Memory)
		}
		if p.Attainable != 2e6 { // IO · 2
			t.Errorf("matvec attainable = %v, want 2e6 everywhere", p.Attainable)
		}
	}
	if _, err := m.MemoryAtRidge(mv, 1e18); err == nil {
		t.Error("matvec ridge memory should be unreachable")
	}
}

func TestFFTPathClimbsSlowly(t *testing.T) {
	m := newModel(t)
	fft := model.FFT()
	// Ridge 64 needs 2.5·log₂M = 64 ⇒ M = 2^25.6 ≈ 5.1e7.
	ridgeM, err := m.MemoryAtRidge(fft, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if ridgeM < 4e7 || ridgeM > 7e7 {
		t.Errorf("FFT ridge memory = %v, want ≈ 5.1e7", ridgeM)
	}
	// Matmul reaches the same roof with 4096 words — the contrast the
	// paper's conclusion draws.
	mmM, err := m.MemoryAtRidge(model.MatrixMultiplication(), 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if ridgeM/mmM < 1e3 {
		t.Errorf("FFT/matmul balance memory ratio = %v, want ≫ 1", ridgeM/mmM)
	}
}

func TestPathValidation(t *testing.T) {
	m := newModel(t)
	if _, err := m.Path(model.FFT(), 0, 10, 2); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := m.Path(model.FFT(), 10, 5, 2); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := m.Path(model.FFT(), 1, 10, 1); err == nil {
		t.Error("step=1 accepted")
	}
}

func TestChartRenders(t *testing.T) {
	m := newModel(t)
	out, err := m.Chart([]model.Computation{
		model.MatrixMultiplication(), model.FFT(), model.MatrixVector(),
	}, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"roofline", "ridge", "matrix multiplication", "fast Fourier transform"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

// Property: attainable performance is nondecreasing in memory for every
// catalog computation (more memory never slows the roofline path).
func TestPathMonotoneProperty(t *testing.T) {
	m := newModel(t)
	cat := model.Catalog()
	f := func(ci uint8, m16 uint16) bool {
		c := cat[int(ci)%len(cat)]
		mem := 4 + float64(m16%10000)
		p1 := m.PathPoint(c, mem)
		p2 := m.PathPoint(c, mem*2)
		return p2.Attainable >= p1.Attainable-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
