// Package roofline connects Kung's 1985 balance model to its modern
// descendant, the roofline model: a PE with computation bandwidth C and I/O
// bandwidth IO attains at most
//
//	P(I) = min(C, IO·I)
//
// operations per second at operational intensity I = Ccomp/Cio. In Kung's
// model the intensity is not a free parameter — it is R(M), a function of
// the local memory size — so every computation traces a path along the
// roofline as M grows: matrix computations climb the bandwidth slope as √M
// and reach the compute roof at M = (C/IO)²; FFT and sorting climb only
// logarithmically; I/O-bounded computations stall on the slope forever. The
// ridge point I = C/IO is exactly the paper's balance condition.
package roofline

import (
	"fmt"
	"math"

	"balarch/internal/model"
	"balarch/internal/textplot"
)

// Point is one sampled position on a computation's roofline path.
type Point struct {
	// Memory is the local memory size in words.
	Memory float64
	// Intensity is R(Memory) = Ccomp/Cio at that size.
	Intensity float64
	// Attainable is min(C, IO·Intensity) in operations per second.
	Attainable float64
	// ComputeBound reports whether the compute roof limits this point.
	ComputeBound bool
}

// Model evaluates rooflines for one PE.
type Model struct {
	PE model.PE
}

// New validates the PE and returns a roofline model for it.
func New(pe model.PE) (*Model, error) {
	if err := pe.Validate(); err != nil {
		return nil, err
	}
	return &Model{PE: pe}, nil
}

// RidgeIntensity returns C/IO, the intensity at which the bandwidth slope
// meets the compute roof — Kung's balance point.
func (m *Model) RidgeIntensity() float64 { return m.PE.Intensity() }

// Attainable returns min(C, IO·intensity), the roofline ceiling.
func (m *Model) Attainable(intensity float64) float64 {
	if intensity < 0 {
		return 0
	}
	return math.Min(m.PE.C, m.PE.IO*intensity)
}

// PathPoint evaluates one memory size of a computation's roofline path.
func (m *Model) PathPoint(c model.Computation, memory float64) Point {
	i := c.Ratio(memory)
	return Point{
		Memory:       memory,
		Intensity:    i,
		Attainable:   m.Attainable(i),
		ComputeBound: m.PE.IO*i >= m.PE.C,
	}
}

// Path samples the computation's roofline path at geometrically spaced
// memory sizes from lo to hi (inclusive-ish), factor step > 1.
func (m *Model) Path(c model.Computation, lo, hi, step float64) ([]Point, error) {
	if !(lo > 0) || !(hi >= lo) || !(step > 1) {
		return nil, fmt.Errorf("roofline: bad sweep [%v, %v] step %v", lo, hi, step)
	}
	var pts []Point
	for mem := lo; mem <= hi*(1+1e-12); mem *= step {
		pts = append(pts, m.PathPoint(c, mem))
	}
	return pts, nil
}

// MemoryAtRidge returns the local memory at which the computation reaches
// the ridge (the balance memory), or ErrNotRebalanceable if it never does.
func (m *Model) MemoryAtRidge(c model.Computation, maxM float64) (float64, error) {
	return c.RequiredMemory(m.RidgeIntensity(), maxM)
}

// Efficiency returns the fraction of the compute roof a computation attains
// at the given memory: Attainable(R(M))/C ∈ (0, 1].
func (m *Model) Efficiency(c model.Computation, memory float64) float64 {
	return m.Attainable(c.Ratio(memory)) / m.PE.C
}

// Chart renders the classic roofline picture in text: attainable
// performance (y, log) vs operational intensity (x, log), with the ridge
// marked and each computation's path overlaid across the memory sweep.
func (m *Model) Chart(comps []model.Computation, lo, hi float64) (string, error) {
	ch := textplot.NewChart(fmt.Sprintf("roofline: %s (ridge at I = %.3g)", m.PE, m.RidgeIntensity()))
	ch.LogX, ch.LogY = true, true
	ch.XLabel, ch.YLabel = "operational intensity R(M) (ops/word)", "attainable ops/s"

	// The roofline itself, sampled across the intensity range the paths
	// will span.
	iLo, iHi := math.Inf(1), 0.0
	paths := make([][]Point, len(comps))
	for k, c := range comps {
		pts, err := m.Path(c, lo, hi, 4)
		if err != nil {
			return "", err
		}
		paths[k] = pts
		for _, p := range pts {
			iLo = math.Min(iLo, p.Intensity)
			iHi = math.Max(iHi, p.Intensity)
		}
	}
	if iLo <= 0 || math.IsInf(iLo, 1) {
		return "", fmt.Errorf("roofline: no positive intensities to plot")
	}
	var roofX, roofY []float64
	for i := iLo; i <= iHi*1.0001; i *= 1.3 {
		roofX = append(roofX, i)
		roofY = append(roofY, m.Attainable(i))
	}
	ch.Add(textplot.Series{Name: "roofline min(C, IO·I)", Marker: '-', X: roofX, Y: roofY})
	for k, c := range comps {
		xs := make([]float64, len(paths[k]))
		ys := make([]float64, len(paths[k]))
		for i, p := range paths[k] {
			xs[i] = p.Intensity
			ys[i] = p.Attainable
		}
		ch.Add(textplot.Series{Name: c.Name + " (M sweep)", X: xs, Y: ys})
	}
	return ch.String(), nil
}
