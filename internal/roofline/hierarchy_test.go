package roofline

import (
	"math"
	"strings"
	"testing"

	"balarch/internal/model"
)

// testHierarchy: 1 GOPS over a fast small level and a slow big one.
func testHierarchy() model.Hierarchy {
	return model.Hierarchy{C: 1e9, Levels: []model.Level{
		{Name: "cache", BW: 500e6, M: 4096},
		{Name: "dram", BW: 10e6, M: 1 << 24},
	}}
}

func TestNewHierarchyValidates(t *testing.T) {
	if _, err := NewHierarchy(model.Hierarchy{}); err == nil {
		t.Error("invalid hierarchy accepted")
	}
	if _, err := NewHierarchy(testHierarchy()); err != nil {
		t.Fatal(err)
	}
}

func TestRidges(t *testing.T) {
	m, _ := NewHierarchy(testHierarchy())
	r := m.Ridges()
	if len(r) != 2 {
		t.Fatalf("got %d ridges", len(r))
	}
	if r[0].Intensity != 2 || r[1].Intensity != 100 {
		t.Errorf("ridge intensities %v/%v, want 2/100", r[0].Intensity, r[1].Intensity)
	}
	if r[0].Boundary != 1 || r[1].Bandwidth != 10e6 {
		t.Errorf("ridges mislabeled: %+v", r)
	}
}

// TestPointBindingBoundary: matmul on the test hierarchy — the inner
// boundary over-delivers (500e6·64 ≫ C) while the outer one binds
// (10e6·√(4096+2^24) ≈ 4.1e10 ≫ C too) — so the machine is on the roof;
// shrink the outer channel and the outer boundary binds.
func TestPointBindingBoundary(t *testing.T) {
	m, _ := NewHierarchy(testHierarchy())
	p := m.Point(model.MatrixMultiplication())
	if !p.ComputeBound || p.Binding != 0 || p.Attainable != 1e9 {
		t.Errorf("point = %+v, want compute bound on the roof", p)
	}

	h := testHierarchy()
	h.Levels[1].BW = 100e3 // ceiling ≈ 100e3·4097 ≈ 4.1e8 < C
	m2, _ := NewHierarchy(h)
	p2 := m2.Point(model.MatrixMultiplication())
	if p2.ComputeBound || p2.Binding != 2 {
		t.Errorf("point = %+v, want bound at boundary 2", p2)
	}
	wantR := math.Sqrt(4096 + float64(1<<24))
	if math.Abs(p2.Intensity-wantR)/wantR > 1e-12 ||
		math.Abs(p2.Attainable-100e3*wantR)/(100e3*wantR) > 1e-12 {
		t.Errorf("point = %+v, want intensity %v attainable %v", p2, wantR, 100e3*wantR)
	}
}

// TestOneLevelMatchesFlatModel: the one-level hierarchy's attainable equals
// the flat roofline at the same memory, for the whole catalog.
func TestOneLevelMatchesFlatModel(t *testing.T) {
	pe := model.PE{C: 50e6, IO: 1e6, M: 4096}
	flat, err := New(pe)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := NewHierarchy(model.FromPE(pe))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range model.Catalog() {
		fp := flat.PathPoint(c, pe.M)
		hp := hm.Point(c)
		if math.Abs(fp.Attainable-hp.Attainable) > 1e-9*fp.Attainable {
			t.Errorf("%s: hierarchy attainable %v != flat %v", c.Name, hp.Attainable, fp.Attainable)
		}
		if fp.ComputeBound != hp.ComputeBound {
			t.Errorf("%s: compute-bound mismatch (%v vs %v)", c.Name, hp.ComputeBound, fp.ComputeBound)
		}
	}
}

func TestPathSweepsChosenLevel(t *testing.T) {
	m, _ := NewHierarchy(testHierarchy())
	pts, err := m.Path(model.FFT(), 2, 1<<10, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for i, p := range pts {
		if want := float64(int(1<<10) * int(math.Pow(4, float64(i)))); p.Memory != want {
			t.Errorf("point %d memory %v, want %v", i, p.Memory, want)
		}
		if i > 0 && p.Attainable < pts[i-1].Attainable {
			t.Errorf("attainable fell while the level grew: %v → %v", pts[i-1].Attainable, p.Attainable)
		}
	}
	if _, err := m.Path(model.FFT(), 3, 1, 2, 2); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := m.Path(model.FFT(), 1, 16, 4, 2); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHierarchyChart(t *testing.T) {
	m, _ := NewHierarchy(testHierarchy())
	s, err := m.Chart([]model.Computation{model.MatrixMultiplication(), model.Sorting()})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"multi-ridge roofline",
		"boundary 1 roof",
		"boundary 2 roof",
		"ridge 1 at I=2",
		"ridge 2 at I=100",
		"matrix multiplication (per boundary)",
		"sorting (per boundary)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
}
