package roofline

// Multi-ridge rooflines. A flat PE's roofline has one bandwidth slope and
// one ridge at I = C/IO. A memory hierarchy has one slope per boundary:
// traffic across boundary i flows at Levels[i-1].BW, and the computation's
// operational intensity at that boundary is R(W_i) — the achievable ratio
// at the cumulative capacity W_i inside it (model.AnalyzeHierarchy's
// composition rule). Attainable performance is the lowest ceiling any
// boundary imposes:
//
//	P = min(C, min_i BW_i · R(W_i))
//
// so the classic picture grows one ridge per boundary — the machine can sit
// on the compute roof with respect to its cache and under the bandwidth
// slope of its disk — and the binding boundary is the argmin.

import (
	"fmt"
	"math"

	"balarch/internal/model"
	"balarch/internal/textplot"
)

// Ridge is one boundary's ridge point: where that boundary's bandwidth
// slope meets the compute roof. Kung's balance condition, once per boundary.
type Ridge struct {
	// Boundary is the 1-based boundary index (innermost first).
	Boundary int
	// Bandwidth is the boundary's channel bandwidth in words/s.
	Bandwidth float64
	// Intensity is C/Bandwidth, the balance intensity of this boundary.
	Intensity float64
}

// HierarchyModel evaluates multi-ridge rooflines for one hierarchy.
type HierarchyModel struct {
	H model.Hierarchy
}

// NewHierarchy validates the hierarchy and returns its roofline model.
func NewHierarchy(h model.Hierarchy) (*HierarchyModel, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &HierarchyModel{H: h}, nil
}

// Ridges returns one ridge per boundary, innermost first. Bandwidths are
// non-increasing outward, so ridge intensities are non-decreasing.
func (m *HierarchyModel) Ridges() []Ridge {
	out := make([]Ridge, m.H.Depth())
	for i := range out {
		out[i] = Ridge{
			Boundary:  i + 1,
			Bandwidth: m.H.Levels[i].BW,
			Intensity: m.H.BoundaryIntensity(i + 1),
		}
	}
	return out
}

// HierarchyPoint is one evaluated position of a computation on the
// multi-ridge roofline.
type HierarchyPoint struct {
	// Memory is the swept level's capacity in words (Path) or the level's
	// current capacity (Point).
	Memory float64
	// Intensity is the computation's operational intensity R(W) at the
	// binding boundary.
	Intensity float64
	// Attainable is min(C, min_i BW_i·R(W_i)) in ops/s.
	Attainable float64
	// Binding is the 1-based boundary imposing the lowest ceiling; 0 when
	// the compute roof itself binds.
	Binding int
	// ComputeBound reports whether the compute roof limits this point.
	ComputeBound bool
}

// evaluate computes the multi-ridge attainable for an arbitrary hierarchy
// shape (Path rewrites one level's capacity before calling it).
func evaluate(h model.Hierarchy, c model.Computation) HierarchyPoint {
	p := HierarchyPoint{Attainable: h.C, ComputeBound: true}
	for i := range h.Levels {
		r := c.Ratio(h.CapacityWithin(i + 1))
		ceiling := 0.0
		if r > 0 {
			ceiling = h.Levels[i].BW * r
		}
		if ceiling < p.Attainable {
			p.Attainable = ceiling
			p.Binding = i + 1
			p.Intensity = r
			p.ComputeBound = false
		}
	}
	if p.ComputeBound {
		// On the roof every boundary over-delivers; report the outermost
		// boundary's intensity, the one nearest its ridge.
		p.Intensity = c.Ratio(h.TotalCapacity())
	}
	return p
}

// Point evaluates the computation at the hierarchy's current capacities.
func (m *HierarchyModel) Point(c model.Computation) HierarchyPoint {
	p := evaluate(m.H, c)
	p.Memory = m.H.TotalCapacity()
	return p
}

// PathPoint evaluates the computation with level's capacity (1-based)
// replaced by capacity words — one sample of a level sweep.
func (m *HierarchyModel) PathPoint(c model.Computation, level int, capacity float64) HierarchyPoint {
	h := m.H
	h.Levels = append([]model.Level(nil), m.H.Levels...)
	h.Levels[level-1].M = capacity
	p := evaluate(h, c)
	p.Memory = capacity
	return p
}

// Path sweeps level's capacity (1-based) geometrically from lo to hi with
// factor step > 1 and returns the computation's multi-ridge roofline path.
func (m *HierarchyModel) Path(c model.Computation, level int, lo, hi, step float64) ([]HierarchyPoint, error) {
	if level < 1 || level > m.H.Depth() {
		return nil, fmt.Errorf("roofline: sweep level %d outside hierarchy depth %d", level, m.H.Depth())
	}
	if !(lo > 0) || !(hi >= lo) || !(step > 1) {
		return nil, fmt.Errorf("roofline: bad sweep [%v, %v] step %v", lo, hi, step)
	}
	var pts []HierarchyPoint
	for mem := lo; mem <= hi*(1+1e-12); mem *= step {
		pts = append(pts, m.PathPoint(c, level, mem))
	}
	return pts, nil
}

// Chart renders the multi-ridge roofline in text: one bandwidth slope per
// boundary (each capped by the compute roof), a vertical rule at every
// ridge intensity, and each computation's per-boundary operating points at
// the hierarchy's current capacities.
func (m *HierarchyModel) Chart(comps []model.Computation) (string, error) {
	ridges := m.Ridges()
	ch := textplot.NewChart(fmt.Sprintf("multi-ridge roofline: %s", m.H))
	ch.LogX, ch.LogY = true, true
	ch.XLabel, ch.YLabel = "operational intensity R(W) (ops/word)", "attainable ops/s"

	// Operating points first, to learn the intensity range the boundaries
	// span for this computation set.
	iLo, iHi := math.Inf(1), 0.0
	type opSeries struct {
		name   string
		xs, ys []float64
	}
	ops := make([]opSeries, 0, len(comps))
	for _, c := range comps {
		s := opSeries{name: c.Name + " (per boundary)"}
		for b := 1; b <= m.H.Depth(); b++ {
			r := c.Ratio(m.H.CapacityWithin(b))
			if r <= 0 {
				continue
			}
			s.xs = append(s.xs, r)
			s.ys = append(s.ys, math.Min(m.H.C, m.H.Levels[b-1].BW*r))
			iLo = math.Min(iLo, r)
			iHi = math.Max(iHi, r)
		}
		ops = append(ops, s)
	}
	for _, r := range ridges {
		iLo = math.Min(iLo, r.Intensity)
		iHi = math.Max(iHi, r.Intensity)
	}
	if iLo <= 0 || math.IsInf(iLo, 1) {
		return "", fmt.Errorf("roofline: no positive intensities to plot")
	}
	iLo, iHi = iLo/2, iHi*2

	// One roof per boundary: min(C, BW_i·I) across the range.
	yMin := m.H.C
	for _, r := range ridges {
		var xs, ys []float64
		for i := iLo; i <= iHi*1.0001; i *= 1.3 {
			xs = append(xs, i)
			y := math.Min(m.H.C, r.Bandwidth*i)
			ys = append(ys, y)
			yMin = math.Min(yMin, y)
		}
		ch.Add(textplot.Series{
			Name:   fmt.Sprintf("boundary %d roof min(C, %s·I), ridge at I=%.3g", r.Boundary, siBW(r.Bandwidth), r.Intensity),
			Marker: '-',
			X:      xs, Y: ys,
		})
	}
	for _, r := range ridges {
		ch.Add(ch.RuleX(fmt.Sprintf("ridge %d at I=%.3g", r.Boundary, r.Intensity),
			r.Intensity, yMin, m.H.C, '|'))
	}
	for _, s := range ops {
		ch.Add(textplot.Series{Name: s.name, X: s.xs, Y: s.ys})
	}
	return ch.String(), nil
}

// siBW renders a bandwidth with an SI suffix for the chart legend.
func siBW(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
