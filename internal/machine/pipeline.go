package machine

import (
	"fmt"
	"math"
)

// Step is one macro-step of a decomposed computation: read InWords into
// local memory, perform Ops operations on them, write OutWords back. The
// kernels' Count functions produce exactly these triples per block.
type Step struct {
	InWords  uint64
	Ops      uint64
	OutWords uint64
}

// Rates binds the paper's two bandwidths: ComputeOps per second for the
// compute unit and IOWords per second for the I/O channel. For a processor
// array viewed as one "new processing element" (paper §4), ComputeOps is the
// aggregate p·C and IOWords the boundary bandwidth.
type Rates struct {
	ComputeOps float64
	IOWords    float64
}

// Validate checks the rates are physical.
func (r Rates) Validate() error {
	if !(r.ComputeOps > 0) || math.IsInf(r.ComputeOps, 0) {
		return fmt.Errorf("machine: compute rate %v must be positive and finite", r.ComputeOps)
	}
	if !(r.IOWords > 0) || math.IsInf(r.IOWords, 0) {
		return fmt.Errorf("machine: I/O rate %v must be positive and finite", r.IOWords)
	}
	return nil
}

// Metrics reports where a simulated run's time went.
type Metrics struct {
	// Makespan is the total virtual time of the run in seconds.
	Makespan float64
	// ComputeBusy is the time the compute unit spent computing.
	ComputeBusy float64
	// IOBusy is the time the I/O channel spent transferring.
	IOBusy float64
	// Steps is the number of macro-steps executed.
	Steps int
}

// ComputeUtilization is ComputeBusy/Makespan: 1.0 means the compute unit
// never waited — the PE is compute bound or perfectly balanced.
func (m Metrics) ComputeUtilization() float64 {
	if m.Makespan == 0 {
		return 0
	}
	return m.ComputeBusy / m.Makespan
}

// IOUtilization is IOBusy/Makespan.
func (m Metrics) IOUtilization() float64 {
	if m.Makespan == 0 {
		return 0
	}
	return m.IOBusy / m.Makespan
}

// IOBound reports whether the compute unit spent more than tol of the run
// waiting: the signature of an imbalanced PE (paper §1: "it will have to
// wait for I/O").
func (m Metrics) IOBound(tol float64) bool {
	return m.ComputeUtilization() < 1-tol
}

// RunPipeline executes the macro-steps on a PE with the given rates under
// double buffering: step k's input transfer may overlap step k-1's compute,
// and output transfers share the I/O channel with input transfers (one
// channel; transfers are served FIFO by arrival time). Dependencies per
// step k:
//
//	input(k)   becomes eligible when buffer k-2 retires (two buffers)
//	compute(k) starts after input(k) completes and compute(k-1) finishes
//	output(k)  becomes eligible when compute(k) finishes
//
// The run is executed as a discrete-event simulation so channel arbitration
// happens in arrival order, letting input(k+1) slip in front of output(k)
// when it became eligible earlier — exactly how a double-buffered DMA engine
// behaves.
func RunPipeline(rates Rates, steps []Step) (Metrics, error) {
	return RunPipelineBuffered(rates, steps, 2)
}

// RunPipelineBuffered generalizes RunPipeline to any buffer count ≥ 1: step
// k's input becomes eligible when step k-buffers has finished computing.
// One buffer serializes input against the previous compute (≈ the serial
// model); two buffers give classic double buffering; more buffers only help
// when transfer-time variance would otherwise stall the channel, so for the
// uniform macro-steps of the paper's decompositions the curve saturates at
// two — the X2 ablation measures exactly that.
func RunPipelineBuffered(rates Rates, steps []Step, buffers int) (Metrics, error) {
	if err := rates.Validate(); err != nil {
		return Metrics{}, err
	}
	if buffers < 1 {
		return Metrics{}, fmt.Errorf("machine: buffer count %d must be ≥ 1", buffers)
	}
	metrics := Metrics{Steps: len(steps)}
	if len(steps) == 0 {
		return metrics, nil
	}
	sim := NewSimulator()
	compute := NewServer("compute")
	computeFree := 0.0 // end of the latest compute, k strictly increasing
	channel := NewServer("io")

	var inputEligible func(k int)
	inputEligible = func(k int) {
		st := steps[k]
		_, inEnd := channel.Reserve(sim.Now(), float64(st.InWords)/rates.IOWords)
		sim.At(inEnd, func() {
			// Compute after our input (now) and the previous compute.
			start := math.Max(sim.Now(), computeFree)
			_, cEnd := compute.Reserve(start, float64(st.Ops)/rates.ComputeOps)
			computeFree = cEnd
			sim.At(cEnd, func() {
				// Output on the shared channel; our buffer
				// frees for step k+buffers.
				channel.Reserve(sim.Now(), float64(st.OutWords)/rates.IOWords)
				if k+buffers < len(steps) {
					inputEligible(k + buffers)
				}
			})
		})
	}
	for k := 0; k < buffers && k < len(steps); k++ {
		inputEligible(k)
	}
	sim.Run()

	// The run ends when both servers drain.
	metrics.Makespan = math.Max(compute.busyUntil, channel.busyUntil)
	metrics.ComputeBusy = compute.BusyTotal()
	metrics.IOBusy = channel.BusyTotal()
	return metrics, nil
}

// RunSerial executes the steps with no overlap: each step reads, computes,
// and writes before the next begins — the execution model of the paper's
// balance definition, where a balanced PE splits its time equally.
func RunSerial(rates Rates, steps []Step) (Metrics, error) {
	if err := rates.Validate(); err != nil {
		return Metrics{}, err
	}
	var m Metrics
	m.Steps = len(steps)
	for _, st := range steps {
		tIn := float64(st.InWords) / rates.IOWords
		tC := float64(st.Ops) / rates.ComputeOps
		tOut := float64(st.OutWords) / rates.IOWords
		m.IOBusy += tIn + tOut
		m.ComputeBusy += tC
		m.Makespan += tIn + tC + tOut
	}
	return m, nil
}

// TotalWork sums the step triples, for cross-checking against counters.
func TotalWork(steps []Step) (inWords, ops, outWords uint64) {
	for _, st := range steps {
		inWords += st.InWords
		ops += st.Ops
		outWords += st.OutWords
	}
	return inWords, ops, outWords
}
