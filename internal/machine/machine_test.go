package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimulatorOrdersEvents(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3 {
		t.Errorf("end time = %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSimulatorTieBreakFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.At(1, func() { order = append(order, 0) })
	s.At(1, func() { order = append(order, 1) })
	s.Run()
	if order[0] != 0 || order[1] != 1 {
		t.Errorf("simultaneous events not FIFO: %v", order)
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var fired []float64
	s.At(1, func() {
		fired = append(fired, s.Now())
		s.After(2, func() { fired = append(fired, s.Now()) })
	})
	end := s.Run()
	if end != 3 || len(fired) != 2 || fired[1] != 3 {
		t.Errorf("nested scheduling wrong: end=%v fired=%v", end, fired)
	}
}

func TestSimulatorPanicsOnPast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	s := NewSimulator()
	s.At(5, func() { s.At(1, func() {}) })
	s.Run()
}

func TestServerSerializes(t *testing.T) {
	sv := NewServer("x")
	s1, e1 := sv.Reserve(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Errorf("first reservation (%v,%v)", s1, e1)
	}
	// Requested at 5 but server busy until 10.
	s2, e2 := sv.Reserve(5, 3)
	if s2 != 10 || e2 != 13 {
		t.Errorf("second reservation (%v,%v), want (10,13)", s2, e2)
	}
	// Idle gap allowed.
	s3, _ := sv.Reserve(20, 1)
	if s3 != 20 {
		t.Errorf("third reservation start %v, want 20", s3)
	}
	if sv.BusyTotal() != 14 {
		t.Errorf("BusyTotal = %v, want 14", sv.BusyTotal())
	}
}

func TestRunSerialBalanced(t *testing.T) {
	// 100 ops at rate 100/s = 1s compute; 10 words at 10/s = 1s I/O.
	rates := Rates{ComputeOps: 100, IOWords: 10}
	steps := []Step{{InWords: 5, Ops: 100, OutWords: 5}}
	m, err := RunSerial(rates, steps)
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan != 2 || m.ComputeBusy != 1 || m.IOBusy != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if u := m.ComputeUtilization(); u != 0.5 {
		t.Errorf("serial balanced utilization = %v, want 0.5", u)
	}
}

func TestRunPipelineOverlapsIO(t *testing.T) {
	// Compute-heavy steps: pipeline should hide nearly all I/O.
	rates := Rates{ComputeOps: 1000, IOWords: 1000}
	steps := make([]Step, 50)
	for i := range steps {
		steps[i] = Step{InWords: 10, Ops: 1000, OutWords: 10} // 1s compute, 0.02s I/O
	}
	m, err := RunPipeline(rates, steps)
	if err != nil {
		t.Fatal(err)
	}
	if u := m.ComputeUtilization(); u < 0.97 {
		t.Errorf("compute-heavy pipeline utilization = %v, want ≈ 1", u)
	}
	if m.IOBound(0.05) {
		t.Error("compute-heavy pipeline classified as I/O bound")
	}
}

func TestRunPipelineIOStarved(t *testing.T) {
	// I/O-heavy steps: the compute unit must starve.
	rates := Rates{ComputeOps: 1e6, IOWords: 10}
	steps := make([]Step, 20)
	for i := range steps {
		steps[i] = Step{InWords: 100, Ops: 100, OutWords: 100}
	}
	m, err := RunPipeline(rates, steps)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IOBound(0.05) {
		t.Errorf("I/O-heavy pipeline not classified as I/O bound: util=%v", m.ComputeUtilization())
	}
	// Makespan is dominated by the channel: ≈ total words / rate.
	wantIO := float64(20*200) / 10
	if m.Makespan < wantIO || m.Makespan > wantIO*1.05 {
		t.Errorf("makespan = %v, want ≈ %v", m.Makespan, wantIO)
	}
}

func TestRunPipelineBalancedPoint(t *testing.T) {
	// Steps whose compute time equals I/O time: utilization ≈ 1 under
	// overlap (the design point of the paper's balance condition).
	rates := Rates{ComputeOps: 100, IOWords: 100}
	steps := make([]Step, 40)
	for i := range steps {
		steps[i] = Step{InWords: 50, Ops: 100, OutWords: 50}
	}
	m, err := RunPipeline(rates, steps)
	if err != nil {
		t.Fatal(err)
	}
	if u := m.ComputeUtilization(); u < 0.9 {
		t.Errorf("balanced pipeline utilization = %v, want ≳ 0.95", u)
	}
}

func TestRatesValidation(t *testing.T) {
	bad := []Rates{
		{ComputeOps: 0, IOWords: 1},
		{ComputeOps: 1, IOWords: 0},
		{ComputeOps: math.Inf(1), IOWords: 1},
		{ComputeOps: -1, IOWords: 1},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rates %+v accepted", r)
		}
		if _, err := RunPipeline(r, nil); err == nil {
			t.Errorf("RunPipeline with %+v accepted", r)
		}
		if _, err := RunSerial(r, nil); err == nil {
			t.Errorf("RunSerial with %+v accepted", r)
		}
	}
}

func TestTotalWork(t *testing.T) {
	in, ops, out := TotalWork([]Step{{1, 2, 3}, {10, 20, 30}})
	if in != 11 || ops != 22 || out != 33 {
		t.Errorf("TotalWork = %d %d %d", in, ops, out)
	}
}

func TestEmptySteps(t *testing.T) {
	rates := Rates{ComputeOps: 1, IOWords: 1}
	m, err := RunPipeline(rates, nil)
	if err != nil || m.Makespan != 0 || m.ComputeUtilization() != 0 {
		t.Errorf("empty pipeline: %+v, %v", m, err)
	}
}

// Property: the pipeline makespan is never shorter than either resource's
// total demand and never longer than the serial schedule.
func TestPipelineBoundsProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 1 + int(n8%30)
		rng := newRand(seed)
		steps := make([]Step, n)
		for i := range steps {
			steps[i] = Step{
				InWords:  uint64(rng()%100 + 1),
				Ops:      uint64(rng()%1000 + 1),
				OutWords: uint64(rng() % 100),
			}
		}
		rates := Rates{ComputeOps: 500, IOWords: 50}
		pipe, err1 := RunPipeline(rates, steps)
		serial, err2 := RunSerial(rates, steps)
		if err1 != nil || err2 != nil {
			return false
		}
		lower := math.Max(pipe.ComputeBusy, pipe.IOBusy)
		const eps = 1e-9
		return pipe.Makespan >= lower-eps && pipe.Makespan <= serial.Makespan+eps &&
			math.Abs(pipe.ComputeBusy-serial.ComputeBusy) < eps &&
			math.Abs(pipe.IOBusy-serial.IOBusy) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newRand is a tiny deterministic generator to avoid importing math/rand in
// multiple property tests.
func newRand(seed int64) func() uint64 {
	x := uint64(seed)*2654435761 + 1
	return func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
}

func TestBufferedPipelineValidation(t *testing.T) {
	rates := Rates{ComputeOps: 1, IOWords: 1}
	if _, err := RunPipelineBuffered(rates, nil, 0); err == nil {
		t.Error("zero buffers accepted")
	}
	if _, err := RunPipelineBuffered(rates, nil, -1); err == nil {
		t.Error("negative buffers accepted")
	}
}

// TestBufferSweepSaturatesAtTwo: for uniform balanced steps, one buffer
// serializes (utilization ≈ 0.5), two buffers reach ≈ 1, and more buffers
// add nothing.
func TestBufferSweepSaturatesAtTwo(t *testing.T) {
	rates := Rates{ComputeOps: 100, IOWords: 100}
	steps := make([]Step, 60)
	for i := range steps {
		steps[i] = Step{InWords: 50, Ops: 100, OutWords: 50}
	}
	util := map[int]float64{}
	for _, b := range []int{1, 2, 4, 8} {
		m, err := RunPipelineBuffered(rates, steps, b)
		if err != nil {
			t.Fatal(err)
		}
		util[b] = m.ComputeUtilization()
	}
	if util[1] > 0.6 {
		t.Errorf("single buffer utilization = %v, want ≈ 0.5", util[1])
	}
	if util[2] < 0.9 {
		t.Errorf("double buffer utilization = %v, want ≈ 1", util[2])
	}
	if util[4] < util[2]-0.02 || util[8] < util[2]-0.02 {
		t.Errorf("extra buffers hurt: %v", util)
	}
}

// Property: more buffers never lengthen the makespan.
func TestBuffersMonotoneProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 2 + int(n8%20)
		rng := newRand(seed)
		steps := make([]Step, n)
		for i := range steps {
			steps[i] = Step{
				InWords:  uint64(rng()%80 + 1),
				Ops:      uint64(rng()%500 + 1),
				OutWords: uint64(rng() % 80),
			}
		}
		rates := Rates{ComputeOps: 300, IOWords: 60}
		prev := math.Inf(1)
		for _, b := range []int{1, 2, 3, 6} {
			m, err := RunPipelineBuffered(rates, steps, b)
			if err != nil {
				return false
			}
			if m.Makespan > prev+1e-9 {
				return false
			}
			prev = m.Makespan
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
