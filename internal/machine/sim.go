// Package machine provides a small discrete-event simulator of the paper's
// processing element (Fig. 1): a compute unit with bandwidth C operations
// per second, an I/O channel with bandwidth IO words per second, and a local
// memory that holds the working set between transfers. Computations are
// presented as streams of macro-steps (read a block, compute on it, write a
// block); the simulator executes them with double buffering — I/O of step
// k+1 overlaps the computation of step k — and reports where the time went,
// so balance is an observed property of a run rather than a formula.
package machine

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback in virtual time.
type event struct {
	at  float64
	seq int64 // tie-break for deterministic ordering
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Simulator is a minimal discrete-event engine: schedule callbacks at future
// virtual times and run until the queue drains.
type Simulator struct {
	now   float64
	seq   int64
	queue eventQueue
}

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// At schedules fn to run at absolute virtual time t ≥ Now.
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("machine: scheduling into the past (%v < %v)", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run delay seconds from now.
func (s *Simulator) After(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("machine: invalid delay %v", delay))
	}
	s.At(s.now+delay, fn)
}

// Run processes events in time order until none remain, returning the final
// virtual time.
func (s *Simulator) Run() float64 {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// Server models a serially reusable unit (a compute pipeline, a DMA channel,
// a host link): requests queue FIFO and are served back to back. Busy time
// is accumulated for utilization accounting.
type Server struct {
	name      string
	busyUntil float64
	busyTotal float64
}

// NewServer names a serially reusable unit.
func NewServer(name string) *Server { return &Server{name: name} }

// Reserve books the server for duration starting no earlier than earliest,
// returning the (start, end) of the booked interval.
func (sv *Server) Reserve(earliest, duration float64) (start, end float64) {
	if duration < 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		panic(fmt.Sprintf("machine: %s: invalid service duration %v", sv.name, duration))
	}
	start = math.Max(earliest, sv.busyUntil)
	end = start + duration
	sv.busyUntil = end
	sv.busyTotal += duration
	return start, end
}

// BusyTotal returns the cumulative booked time.
func (sv *Server) BusyTotal() float64 { return sv.busyTotal }

// Name returns the server's name.
func (sv *Server) Name() string { return sv.name }
