package store

import (
	"fmt"
	"testing"
)

// BenchmarkStoreGetHit measures the hot path the server's result fetches
// ride: a Get answered by the LRU front. Tracked by cmd/benchgate in CI.
func BenchmarkStoreGetHit(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	data := []byte(`{"kernel":"matmul","points":[{"memory":4,"ops":1024,"ratio":2.0}]}`)
	key := Key(data)
	if err := s.Put(key, data); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(key); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}

// BenchmarkStoreGetDisk measures the cold path: LRU front disabled, every
// Get reads the object file.
func BenchmarkStoreGetDisk(b *testing.B) {
	s, err := Open(b.TempDir(), Options{MemCacheBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	data := []byte(`{"kernel":"matmul","points":[{"memory":4,"ops":1024,"ratio":2.0}]}`)
	key := Key(data)
	if err := s.Put(key, data); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(key); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}

// BenchmarkStorePut measures the durable write path (temp file + fsync +
// rename + synced index append) for distinct small blobs.
func BenchmarkStorePut(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := []byte(fmt.Sprintf("blob-%d", i))
		if err := s.Put(Key(data), data); err != nil {
			b.Fatal(err)
		}
	}
}
