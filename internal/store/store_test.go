package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	data := []byte(`{"answer": 42}`)
	key := Key(data)
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v, %v; want the stored bytes", got, ok, err)
	}
	if _, ok, _ := s.Get(Key([]byte("absent"))); ok {
		t.Fatal("absent key reported present")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len(data)) {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry, %d bytes", st, len(data))
	}
}

func TestPutIsIdempotent(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	data := []byte("blob")
	key := Key(data)
	for i := 0; i < 3; i++ {
		if err := s.Put(key, data); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != int64(len(data)) {
		t.Errorf("3 identical puts: stats = %+v, want one entry", st)
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, bad := range []string{"", "short", "ZZ" + Key([]byte("x"))[2:]} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
	}
}

// TestReopenReplaysIndex is the durability core: a fresh Store on the same
// directory must see every blob, and its Stats() must report the identical
// entry count and byte total (hit/miss counters are per-process).
func TestReopenReplaysIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	var keys []string
	for i := 0; i < 20; i++ {
		data := []byte(fmt.Sprintf("blob-%d", i))
		key := Key(data)
		if err := s.Put(key, data); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if err := s.Delete(keys[3]); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	after := r.Stats()
	if after.Entries != before.Entries || after.Bytes != before.Bytes {
		t.Errorf("reopened stats = %+v, want entries/bytes of %+v", after, before)
	}
	for i, key := range keys {
		data, ok, err := r.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if ok {
				t.Error("deleted key survived reopen")
			}
			continue
		}
		if !ok || string(data) != fmt.Sprintf("blob-%d", i) {
			t.Errorf("key %d after reopen: %q, %v", i, data, ok)
		}
	}
}

// TestTruncatedIndexTailRecovers crashes the log mid-append: the replay
// must keep every whole record, clip the torn tail, and keep appending.
func TestTruncatedIndexTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	a, b := []byte("first"), []byte("second")
	if err := s.Put(Key(a), a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key(b), b); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the last record: drop its final byte.
	path := filepath.Join(dir, "index.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	if st := r.Stats(); st.Entries != 1 || st.Bytes != int64(len(a)) {
		t.Fatalf("torn-tail replay stats = %+v, want only the first record", st)
	}
	if _, ok, _ := r.Get(Key(a)); !ok {
		t.Error("first blob lost to the torn tail")
	}
	// The store keeps working after the clip: re-put the lost blob.
	if err := r.Put(Key(b), b); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Get(Key(b)); !ok {
		t.Error("re-put after clip not visible")
	}
}

// TestGarbageIndexRecovers feeds the replayer outright garbage (binary
// noise, not a torn record): Open must not fail or panic, and the store
// must work from the last parsable prefix.
func TestGarbageIndexRecovers(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.log"),
		[]byte("not a record at all\x00\xff\xfe garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open on a garbage index: %v", err)
	}
	defer s.Close()
	if st := s.Stats(); st.Entries != 0 {
		t.Errorf("garbage index produced %d entries", st.Entries)
	}
	data := []byte("fresh")
	if err := s.Put(Key(data), data); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(Key(data)); !ok {
		t.Error("put after garbage recovery not visible")
	}
}

// TestMissingBlobBecomesMiss: an indexed key whose object file vanished is
// a miss (and is dropped), not an error.
func TestMissingBlobBecomesMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MemCacheBytes: -1})
	data := []byte("volatile")
	key := Key(data)
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "objects", key[:2], key)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("vanished blob: ok=%v err=%v, want a plain miss", ok, err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Errorf("stats after vanished blob = %+v", st)
	}
}

// TestLRUFrontServesWithoutDisk: with the blob cached, Get must not touch
// the object file.
func TestLRUFrontServesWithoutDisk(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	data := []byte("hot blob")
	key := Key(data)
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	// Remove the file behind the cache's back; a cached Get still answers.
	if err := os.Remove(filepath.Join(dir, "objects", key[:2], key)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, data) {
		t.Fatalf("cached Get = %q, %v, %v", got, ok, err)
	}
}

// TestLRUEviction: the front stays under its byte cap, evicting cold keys,
// and an evicted key is still served from disk.
func TestLRUEviction(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MemCacheBytes: 64})
	var keys []string
	for i := 0; i < 8; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 16)
		key := Key(data)
		if err := s.Put(key, data); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	s.mu.Lock()
	memBytes, memLen := s.memBytes, len(s.mem)
	s.mu.Unlock()
	if memBytes > 64 || memLen > 4 {
		t.Errorf("LRU over cap: %d bytes in %d entries", memBytes, memLen)
	}
	// The first (evicted) key still reads from disk.
	if _, ok, err := s.Get(keys[0]); !ok || err != nil {
		t.Errorf("evicted key not served from disk: %v %v", ok, err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Close()
	if err := s.Put(Key([]byte("x")), []byte("x")); err == nil {
		t.Error("Put on a closed store did not error")
	}
	if _, _, err := s.Get(Key([]byte("x"))); err == nil {
		t.Error("Get on a closed store did not error")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestKeyIsSHA256Hex(t *testing.T) {
	key := Key([]byte("abc"))
	if key != "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" {
		t.Errorf("Key(abc) = %s", key)
	}
	if !validKey(key) {
		t.Error("Key output fails validKey")
	}
}
