// Package store is a content-addressed, disk-backed artifact store: blobs
// keyed by the SHA-256 of the request that produced them, so identical
// computations are deduplicated across process restarts, not just across
// in-flight requests. It is the durable half of the async jobs subsystem
// (internal/jobs journals the work; this package keeps the results) — the
// "compute must be matched by durable, addressable storage" step of the
// ROADMAP, in the spirit of Bell/Gray/Szalay's data-centric balance
// argument.
//
// Layout on disk:
//
//	<dir>/index.log            append-only index, replayed on Open
//	<dir>/objects/<aa>/<key>   one file per blob, fanned out on the first
//	                           key byte; written temp-file + rename so a
//	                           crash never leaves a partial blob visible
//
// The index log is plain text, one record per line ("put <key> <size>" /
// "del <key>"). Replay tolerates a truncated tail — the file is clipped
// back to the last whole record instead of failing Open — because a crash
// mid-append is exactly the case the log exists for. A small in-memory LRU
// front absorbs hot keys so repeat Gets do not touch the disk. Stats()
// exposes hits/misses/bytes/entries for /metrics.
package store

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Key returns the content address of data: lowercase hex SHA-256.
func Key(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Options tunes a Store. The zero value is production-ready.
type Options struct {
	// MemCacheBytes caps the in-memory LRU front. 0 means 16 MiB;
	// negative disables the front entirely (every Get reads the disk).
	MemCacheBytes int64
	// Observe, when non-nil, receives the wall time of every Put ("put")
	// and Get ("get") — lock wait included, since that is what a caller
	// experiences. It is called outside the store's mutex and must be
	// safe for concurrent use (the server's feeds atomic histograms).
	Observe func(op string, d time.Duration)
}

const defaultMemCacheBytes = 16 << 20

// Stats is a point-in-time snapshot of the store's counters, served under
// the store_* keys of /metrics.
type Stats struct {
	// Hits counts Gets answered (from the LRU front or the disk).
	Hits int64 `json:"hits"`
	// Misses counts Gets for keys the store does not hold.
	Misses int64 `json:"misses"`
	// Bytes is the total size of all indexed blobs.
	Bytes int64 `json:"bytes"`
	// Entries is the number of indexed blobs.
	Entries int64 `json:"entries"`
}

// Store is a content-addressed blob store rooted at one directory. All
// methods are safe for concurrent use. Open one per directory — two Stores
// on the same directory would race on the index log.
type Store struct {
	dir string

	observe func(op string, d time.Duration)

	mu      sync.Mutex
	index   map[string]int64 // key → blob size
	bytes   int64
	hits    int64
	misses  int64
	logFile *os.File

	memCap   int64
	memBytes int64
	mem      map[string]*list.Element
	lru      *list.List // front = most recent; values are *memEntry
	closed   bool
}

type memEntry struct {
	key  string
	data []byte
}

// Open opens (creating if needed) the store rooted at dir, replaying the
// index log. A truncated final record — the signature of a crash mid-append
// — is clipped, not an error.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	memCap := opts.MemCacheBytes
	if memCap == 0 {
		memCap = defaultMemCacheBytes
	}
	s := &Store{
		dir:     dir,
		observe: opts.Observe,
		index:   make(map[string]int64),
		memCap:  memCap,
		mem:     make(map[string]*list.Element),
		lru:     list.New(),
	}
	if err := s.replayIndex(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening index log: %w", err)
	}
	s.logFile = f
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.log") }

// objectPath fans blobs out on the first key byte so one directory never
// holds every object.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key)
}

// replayIndex rebuilds the in-memory index from the log. Any malformed
// line — a torn write at the tail — ends the replay and the file is
// truncated back to the last whole record so subsequent appends start from
// a clean boundary.
func (s *Store) replayIndex() error {
	f, err := os.Open(s.indexPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening index log: %w", err)
	}
	defer f.Close()

	var good int64 // byte offset of the end of the last valid record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseIndexRecord(line)
		if !ok {
			break
		}
		good += int64(len(line)) + 1
		switch rec.op {
		case "put":
			if old, dup := s.index[rec.key]; dup {
				s.bytes -= old
			}
			s.index[rec.key] = rec.size
			s.bytes += rec.size
		case "del":
			if old, dup := s.index[rec.key]; dup {
				s.bytes -= old
				delete(s.index, rec.key)
			}
		}
	}
	// Scanner errors (an over-long garbage line, say) are treated like a
	// torn tail: recover what replayed cleanly.
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat index log: %w", err)
	}
	if good < info.Size() {
		if err := os.Truncate(s.indexPath(), good); err != nil {
			return fmt.Errorf("store: clipping torn index tail: %w", err)
		}
	}
	return nil
}

type indexRecord struct {
	op   string
	key  string
	size int64
}

// parseIndexRecord validates one log line. Anything that does not parse —
// wrong field count, non-hex key, bad size — is a torn or corrupt record.
func parseIndexRecord(line string) (indexRecord, bool) {
	fields := strings.Fields(line)
	switch {
	case len(fields) == 3 && fields[0] == "put":
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || size < 0 || !validKey(fields[1]) {
			return indexRecord{}, false
		}
		return indexRecord{op: "put", key: fields[1], size: size}, true
	case len(fields) == 2 && fields[0] == "del":
		if !validKey(fields[1]) {
			return indexRecord{}, false
		}
		return indexRecord{op: "del", key: fields[1]}, true
	default:
		return indexRecord{}, false
	}
}

// validKey reports whether key is a lowercase-hex SHA-256.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put stores data under key. Storing an existing key is a no-op (the store
// is content-addressed: same key, same bytes). The blob is written to a
// temp file, fsynced, and renamed into place before the index record is
// appended, so a crash at any point leaves either no trace or a complete,
// indexed blob.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if s.observe != nil {
		t0 := time.Now()
		defer func() { s.observe("put", time.Since(t0)) }()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.index[key]; ok {
		return nil
	}
	path := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing blob %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing blob %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing blob %s: %w", key, err)
	}
	if err := s.appendIndex(fmt.Sprintf("put %s %d\n", key, len(data))); err != nil {
		return err
	}
	s.index[key] = int64(len(data))
	s.bytes += int64(len(data))
	s.memAdd(key, data)
	return nil
}

// appendIndex writes one record and syncs: the record is the commit point.
func (s *Store) appendIndex(record string) error {
	if _, err := s.logFile.WriteString(record); err != nil {
		return fmt.Errorf("store: appending index record: %w", err)
	}
	if err := s.logFile.Sync(); err != nil {
		return fmt.Errorf("store: syncing index log: %w", err)
	}
	return nil
}

// Get returns the blob for key. ok is false — a counted miss — when the
// store does not hold the key. A key whose blob file has vanished from
// under the index (manual deletion, a torn restore) is dropped from the
// index and reported as a miss rather than an error: the store's promise
// is "what I return is what was put", not "what was put is forever".
// The returned slice is the caller's to keep: it never aliases the LRU
// front's copy, so mutating it cannot corrupt later Gets.
func (s *Store) Get(key string) (data []byte, ok bool, err error) {
	if s.observe != nil {
		t0 := time.Now()
		defer func() { s.observe("get", time.Since(t0)) }()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("store: closed")
	}
	if e, hit := s.mem[key]; hit {
		s.lru.MoveToFront(e)
		s.hits++
		return append([]byte(nil), e.Value.(*memEntry).data...), true, nil
	}
	if _, indexed := s.index[key]; !indexed {
		s.misses++
		return nil, false, nil
	}
	data, rerr := os.ReadFile(s.objectPath(key))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			s.bytes -= s.index[key]
			delete(s.index, key)
			_ = s.appendIndex(fmt.Sprintf("del %s\n", key))
			s.misses++
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading blob %s: %w", key, rerr)
	}
	s.hits++
	s.memAdd(key, data)
	return data, true, nil
}

// Has reports whether the store holds key, without reading the blob and
// without touching the hit/miss counters — the existence probe the job
// queue uses for submit-time dedup.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Delete removes key's blob and index entry. Deleting an absent key is a
// no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	size, ok := s.index[key]
	if !ok {
		return nil
	}
	if err := os.Remove(s.objectPath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting blob %s: %w", key, err)
	}
	if err := s.appendIndex(fmt.Sprintf("del %s\n", key)); err != nil {
		return err
	}
	s.bytes -= size
	delete(s.index, key)
	s.memDrop(key)
	return nil
}

// memAdd inserts data into the LRU front, evicting from the cold end to
// stay under the byte cap. Blobs larger than the whole cap are not
// cached. The cache keeps a private copy so a caller mutating its slice
// after Put/Get cannot corrupt the front.
func (s *Store) memAdd(key string, data []byte) {
	if s.memCap < 0 || int64(len(data)) > s.memCap {
		return
	}
	if e, ok := s.mem[key]; ok {
		s.lru.MoveToFront(e)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, data: append([]byte(nil), data...)})
	s.memBytes += int64(len(data))
	for s.memBytes > s.memCap {
		cold := s.lru.Back()
		if cold == nil {
			break
		}
		s.memDrop(cold.Value.(*memEntry).key)
	}
}

func (s *Store) memDrop(key string) {
	if e, ok := s.mem[key]; ok {
		s.memBytes -= int64(len(e.Value.(*memEntry).data))
		s.lru.Remove(e)
		delete(s.mem, key)
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:    s.hits,
		Misses:  s.misses,
		Bytes:   s.bytes,
		Entries: int64(len(s.index)),
	}
}

// Len returns the number of indexed blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Close releases the index log. Further method calls error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.logFile.Close()
}
