package loadgen

import "balarch/internal/server"

// hist is a latency histogram on the server's own bucket bounds, so a
// loadgen quantile and a server quantile for the same route are estimates
// on the same grid — comparable bucket-for-bucket by CrossCheck.
type hist struct {
	bounds []float64
	counts []int64
	over   int64
	sum    float64
	max    float64
	n      int64
}

func newHist() *hist {
	bounds := server.LatencyBucketBounds()
	return &hist{bounds: bounds, counts: make([]int64, len(bounds))}
}

// observe records one latency in seconds.
func (h *hist) observe(sec float64) {
	h.n++
	h.sum += sec
	if sec > h.max {
		h.max = sec
	}
	for i, ub := range h.bounds {
		if sec <= ub {
			h.counts[i]++
			return
		}
	}
	h.over++
}

// quantile estimates q with the server's own estimator, so both sides of a
// cross-check use identical arithmetic.
func (h *hist) quantile(q float64) float64 {
	return server.HistogramQuantile(q, h.bounds, h.counts, h.over, h.max)
}

func (h *hist) mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// BucketIndex maps a quantile estimate back to its bucket position on
// bounds: the smallest bucket whose upper bound is ≥ v, or len(bounds) for
// the overflow region. Two estimates "agree within one bucket" when their
// indices differ by at most one.
func BucketIndex(bounds []float64, v float64) int {
	for i, ub := range bounds {
		if v <= ub {
			return i
		}
	}
	return len(bounds)
}
