package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"balarch/client"
)

// Config shapes one load run.
type Config struct {
	// Scenario is the workload mix (from Get or Scenarios).
	Scenario Scenario
	// Seed drives the deterministic request sequence.
	Seed int64
	// Duration bounds the run's wall clock. The run stops issuing at the
	// deadline and waits for in-flight requests, so no request is ever
	// cancelled (and mis-counted as an error) by the run's own end.
	Duration time.Duration
	// Rate selects the loop discipline: > 0 runs open-loop at that many
	// arrivals/second (arrivals that find the queue full are dropped and
	// counted — the overload signal); 0 runs closed-loop, each worker
	// issuing back-to-back.
	Rate float64
	// Workers is the concurrency: goroutines issuing requests (and the
	// open-loop queue is sized from it). ≤ 0 means 8.
	Workers int
	// MaxRequests optionally caps the number of issued requests; 0 means
	// no cap (the Duration bounds the run).
	MaxRequests int64
}

// sequence hands out the deterministic request stream to the workers. The
// stream itself depends only on (scenario, seed) — worker scheduling decides
// who issues which request, never what the requests are.
type sequence struct {
	mu  sync.Mutex
	r   *rand.Rand
	s   Scenario
	n   int64
	max int64
}

func (q *sequence) next() (Request, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.max > 0 && q.n >= q.max {
		return Request{}, false
	}
	q.n++
	return q.s.next(q.r), true
}

// maxUnexpectedSamples bounds the per-route evidence kept for the report.
const maxUnexpectedSamples = 5

// routeAcc accumulates one route's results during the run.
type routeAcc struct {
	h                 *hist
	statuses          map[string]int64
	transportErrors   int64
	unexpected        int64
	unexpectedSamples []string
}

// collector is the run's shared accounting. A single mutex is plenty: the
// critical section is a few map operations, orders of magnitude cheaper
// than the HTTP exchange it accounts for.
type collector struct {
	mu         sync.Mutex
	routes     map[string]*routeAcc
	requests   int64
	unexpected int64
	dropped    int64
	// traceSent/traceEchoed count requests that carried a traceparent
	// (client.WithTracing) and those whose response joined the trace —
	// the trace-coverage gate's numerator and denominator.
	traceSent   int64
	traceEchoed int64
}

func newCollector() *collector {
	return &collector{routes: make(map[string]*routeAcc)}
}

func (c *collector) route(name string) *routeAcc {
	ra := c.routes[name]
	if ra == nil {
		ra = &routeAcc{h: newHist(), statuses: make(map[string]int64)}
		c.routes[name] = ra
	}
	return ra
}

// record accounts one finished request.
func (c *collector) record(q Request, resp *client.Response, err error, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	ra := c.route(q.Route)
	ra.h.observe(elapsed.Seconds())
	if resp != nil && resp.Traceparent != "" {
		c.traceSent++
		if resp.TraceEchoed() {
			c.traceEchoed++
		}
	}
	if err != nil {
		ra.transportErrors++
		ra.unexpected++
		c.unexpected++
		if len(ra.unexpectedSamples) < maxUnexpectedSamples {
			ra.unexpectedSamples = append(ra.unexpectedSamples, fmt.Sprintf("transport: %v", err))
		}
		return
	}
	ra.statuses[statusClass(resp.Status)]++
	if !q.Expected(resp.Status) {
		ra.unexpected++
		c.unexpected++
		if len(ra.unexpectedSamples) < maxUnexpectedSamples {
			ae := client.DecodeAPIError(resp)
			ra.unexpectedSamples = append(ra.unexpectedSamples,
				fmt.Sprintf("status %d (%s): %s [request id %s]", resp.Status, ae.Code, ae.Message, ae.RequestID))
		}
	}
}

func statusClass(status int) string {
	switch status / 100 {
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	default:
		return "other"
	}
}

// Run drives the configured scenario through c and returns the accounting.
// It returns an error only when the run itself could not execute (bad
// config, context cancelled); request failures are data, recorded in the
// Summary, not errors.
func Run(ctx context.Context, c *client.Client, cfg Config) (*Summary, error) {
	if cfg.Scenario.Name == "" {
		return nil, errors.New("loadgen: Config.Scenario is required")
	}
	if cfg.Duration <= 0 && cfg.MaxRequests <= 0 {
		return nil, errors.New("loadgen: need Duration > 0 or MaxRequests > 0")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	seq := &sequence{r: rand.New(rand.NewSource(cfg.Seed)), s: cfg.Scenario, max: cfg.MaxRequests}
	col := newCollector()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	expired := func() bool {
		if ctx.Err() != nil {
			return true
		}
		return !deadline.IsZero() && !time.Now().Before(deadline)
	}
	// The timer wraps the whole Do call, so a retrying client's latencies
	// include every attempt and backoff sleep — the client experience.
	// Cross-checking against the server's per-attempt histograms is only
	// valid with a non-retrying client (cmd/balarchload enforces this).
	issue := func(q Request) {
		t0 := time.Now()
		var resp *client.Response
		var err error
		if q.APIKey != "" {
			resp, err = c.DoAs(ctx, q.APIKey, q.Method, q.Path, q.Body)
		} else {
			resp, err = c.Do(ctx, q.Method, q.Path, q.Body)
		}
		col.record(q, resp, err, time.Since(t0))
	}

	mode := "closed"
	if cfg.Rate > 0 {
		mode = "open"
		runOpenLoop(ctx, cfg.Rate, workers, seq, col, issue, expired)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !expired() {
					q, ok := seq.next()
					if !ok {
						return
					}
					issue(q)
				}
			}()
		}
		wg.Wait()
	}

	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: run cancelled: %w", err)
	}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	sum := col.summary(cfg, mode, workers, elapsed)
	sum.MemTotalAllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
	sum.MemNumGC = int64(memAfter.NumGC) - int64(memBefore.NumGC)
	return sum, nil
}

// runOpenLoop paces arrivals at rate/second into a bounded queue the
// workers drain. An arrival that finds the queue full is dropped and
// counted — in an open-loop experiment the world does not wait for the
// server, so a growing drop count is the overload signal.
func runOpenLoop(ctx context.Context, rate float64, workers int, seq *sequence, col *collector, issue func(Request), expired func() bool) {
	queue := make(chan Request, workers*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range queue {
				issue(q)
			}
		}()
	}

	// The ticker paces coarse wakeups; each wakeup emits however many
	// arrivals the schedule owes, so the target rate holds even when it
	// exceeds the tick frequency.
	start := time.Now()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	var arrivals int64
produce:
	for !expired() {
		select {
		case <-ctx.Done():
			break produce
		case <-tick.C:
		}
		due := int64(time.Since(start).Seconds() * rate)
		for ; arrivals < due; arrivals++ {
			q, ok := seq.next()
			if !ok {
				break produce
			}
			select {
			case queue <- q:
			default:
				col.mu.Lock()
				col.dropped++
				col.mu.Unlock()
			}
		}
	}
	close(queue)
	wg.Wait()
}

// RouteSummary is one route's accounting in the final Summary. Quantiles
// are histogram estimates on the server's bucket grid (see RouteLatency in
// internal/server): comparable to /metrics bucket-for-bucket.
type RouteSummary struct {
	Count             int64            `json:"count"`
	StatusClasses     map[string]int64 `json:"responses_by_status_class"`
	TransportErrors   int64            `json:"transport_errors,omitempty"`
	Unexpected        int64            `json:"unexpected_responses"`
	UnexpectedSamples []string         `json:"unexpected_samples,omitempty"`
	MeanSeconds       float64          `json:"mean_seconds"`
	P50Seconds        float64          `json:"p50_seconds"`
	P95Seconds        float64          `json:"p95_seconds"`
	P99Seconds        float64          `json:"p99_seconds"`
	MaxSeconds        float64          `json:"max_seconds"`
}

// Summary is a finished run: the configuration echo plus per-route and
// aggregate accounting. It marshals to the JSON report artifact.
type Summary struct {
	Scenario        string                   `json:"scenario"`
	Seed            int64                    `json:"seed"`
	Mode            string                   `json:"mode"`
	Workers         int                      `json:"workers"`
	TargetRate      float64                  `json:"target_rate_rps,omitempty"`
	ElapsedSeconds  float64                  `json:"elapsed_seconds"`
	Requests        int64                    `json:"requests"`
	DroppedArrivals int64                    `json:"dropped_arrivals,omitempty"`
	ThroughputRPS   float64                  `json:"throughput_rps"`
	Unexpected      int64                    `json:"unexpected_responses"`
	Routes          map[string]*RouteSummary `json:"routes"`
	// runtime.MemStats deltas across the run, for the whole process
	// running the load generator: with -inprocess they include the
	// server's allocations too; over TCP (ci/soak.sh) they cover the
	// client-side request path. Either way an allocation regression shows
	// up as NumGC growth at equal request volume, which is what the soak
	// GC gate (AddGCGate) checks.
	MemTotalAllocBytes uint64 `json:"mem_total_alloc_bytes"`
	MemNumGC           int64  `json:"mem_num_gc"`
	// TraceRequests counts requests that carried a traceparent header
	// (client.WithTracing); TraceEchoed counts those whose response named
	// the same trace id back — end-to-end evidence the server's tracing
	// layer saw the request. Both zero on an untraced run.
	TraceRequests int64 `json:"trace_requests,omitempty"`
	TraceEchoed   int64 `json:"trace_echoed,omitempty"`
}

// TraceCoverage returns the echoed fraction of traced requests, 0 when
// none were traced.
func (s *Summary) TraceCoverage() float64 {
	if s.TraceRequests == 0 {
		return 0
	}
	return float64(s.TraceEchoed) / float64(s.TraceRequests)
}

// summary freezes the collector into the exported shape.
func (c *collector) summary(cfg Config, mode string, workers int, elapsed time.Duration) *Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Summary{
		Scenario:        cfg.Scenario.Name,
		Seed:            cfg.Seed,
		Mode:            mode,
		Workers:         workers,
		TargetRate:      cfg.Rate,
		ElapsedSeconds:  elapsed.Seconds(),
		Requests:        c.requests,
		DroppedArrivals: c.dropped,
		Unexpected:      c.unexpected,
		Routes:          make(map[string]*RouteSummary, len(c.routes)),
		TraceRequests:   c.traceSent,
		TraceEchoed:     c.traceEchoed,
	}
	if elapsed > 0 {
		s.ThroughputRPS = float64(c.requests) / elapsed.Seconds()
	}
	for route, ra := range c.routes {
		s.Routes[route] = &RouteSummary{
			Count:             ra.h.n,
			StatusClasses:     ra.statuses,
			TransportErrors:   ra.transportErrors,
			Unexpected:        ra.unexpected,
			UnexpectedSamples: ra.unexpectedSamples,
			MeanSeconds:       ra.h.mean(),
			P50Seconds:        ra.h.quantile(0.50),
			P95Seconds:        ra.h.quantile(0.95),
			P99Seconds:        ra.h.quantile(0.99),
			MaxSeconds:        ra.h.max,
		}
	}
	return s
}

// MaxP99 returns the largest per-route p99 in the summary, for ceiling
// gates.
func (s *Summary) MaxP99() float64 {
	return s.MaxP99Prefix("")
}

// MaxP99Prefix returns the largest p99 among routes whose name starts
// with prefix — how the noisy-neighbor gate scopes its ceiling to the
// victim tenant's routes (VictimRoutePrefix) while the abusive tenant's
// flood is exempt. An empty prefix covers every route.
func (s *Summary) MaxP99Prefix(prefix string) float64 {
	var worst float64
	for route, rs := range s.Routes {
		if !strings.HasPrefix(route, prefix) {
			continue
		}
		if rs.P99Seconds > worst {
			worst = rs.P99Seconds
		}
	}
	return worst
}
