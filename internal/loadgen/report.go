package loadgen

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"balarch/client"
	"balarch/internal/report"
	"balarch/internal/server"
	"balarch/internal/textplot"
)

// Report renders the run as an internal/report.Result: the gate claims, a
// run-configuration table, the per-route latency table, and one raw data
// series per route — so the text and JSON forms of a load report use the
// same machinery (and formats) as the paper experiments.
func (s *Summary) Report() *report.Result {
	res := &report.Result{
		ID:         "LOAD",
		Title:      fmt.Sprintf("scenario %s (%s loop, seed %d)", s.Scenario, s.Mode, s.Seed),
		PaperLocus: "DESIGN.md §5",
	}
	res.AddClaim(
		"every response matched its scenario expectation",
		"0 unexpected non-2xx responses",
		fmt.Sprintf("%d unexpected of %d requests", s.Unexpected, s.Requests),
		s.Unexpected == 0,
	)

	cfg := textplot.NewTable("mode", "workers", "target rps", "elapsed s", "requests", "dropped", "achieved rps")
	cfg.AddRow(s.Mode, s.Workers, s.TargetRate, s.ElapsedSeconds, s.Requests, s.DroppedArrivals, s.ThroughputRPS)
	res.Tables = append(res.Tables, "Run configuration and throughput\n"+cfg.String())

	lat := textplot.NewTable("route", "count", "unexpected", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, route := range s.routeNames() {
		rs := s.Routes[route]
		lat.AddRow(route, rs.Count, rs.Unexpected,
			1e3*rs.MeanSeconds, 1e3*rs.P50Seconds, 1e3*rs.P95Seconds, 1e3*rs.P99Seconds, 1e3*rs.MaxSeconds)
	}
	res.Tables = append(res.Tables, "Per-route latency (histogram quantiles)\n"+lat.String())

	for _, route := range s.routeNames() {
		rs := s.Routes[route]
		res.Series = append(res.Series, report.Series{
			Name:    route,
			Columns: []string{"count", "unexpected", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"},
			Rows: [][]float64{{
				float64(rs.Count), float64(rs.Unexpected),
				rs.MeanSeconds, rs.P50Seconds, rs.P95Seconds, rs.P99Seconds, rs.MaxSeconds,
			}},
		})
	}

	// The run's memory behavior (whole-process runtime.MemStats deltas):
	// the soak GC gate reads gc_per_1k_requests from this series, so a
	// hot-path pooling regression surfaces as collector pressure at equal
	// request volume.
	mem := textplot.NewTable("total alloc MB", "num gc", "gc per 1k requests")
	mem.AddRow(float64(s.MemTotalAllocBytes)/(1<<20), s.MemNumGC, s.GCPer1kRequests())
	res.Tables = append(res.Tables, "Process memory (runtime.MemStats deltas)\n"+mem.String())
	res.Series = append(res.Series, report.Series{
		Name:    "memstats",
		Columns: []string{"total_alloc_bytes", "num_gc", "gc_per_1k_requests"},
		Rows:    [][]float64{{float64(s.MemTotalAllocBytes), float64(s.MemNumGC), s.GCPer1kRequests()}},
	})
	return res
}

// GCPer1kRequests normalizes the run's GC count by request volume so runs
// of different durations compare (0 when the run issued nothing).
func (s *Summary) GCPer1kRequests() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.MemNumGC) * 1000 / float64(s.Requests)
}

// AddGCGate appends the GC-pressure claim to res: the run's GC count per
// 1k requests must not exceed the recorded baseline by more than 20% —
// the soak guard against hot-path allocation regressions that benchmarks
// with narrower coverage might miss. baselinePer1k ≤ 0 records the claim
// as vacuous-pass (no baseline yet).
func (s *Summary) AddGCGate(res *report.Result, baselinePer1k float64) {
	got := s.GCPer1kRequests()
	ceiling := baselinePer1k * 1.2
	res.AddClaim(
		"GC count per 1k requests stays within 20% of the recorded baseline",
		fmt.Sprintf("≤ %.2f GCs/1k requests (baseline %.2f + 20%%)", ceiling, baselinePer1k),
		fmt.Sprintf("%.2f GCs/1k requests (%d GCs over %d requests)", got, s.MemNumGC, s.Requests),
		baselinePer1k <= 0 || got <= ceiling,
	)
}

// AddTraceCoverageGate appends the trace-coverage claim to res: at least
// the min fraction of traced requests (those that carried a traceparent,
// via client.WithTracing) must have had their trace id echoed back by
// the server — end-to-end evidence the tracing layer handled them. A run
// that sent no traced requests while gating on coverage fails: the gate
// was asked for and the instrument never fired.
func (s *Summary) AddTraceCoverageGate(res *report.Result, min float64) {
	got := s.TraceCoverage()
	res.AddClaim(
		"the server echoes the trace id on traced requests",
		fmt.Sprintf("≥ %.2f%% of traced requests echoed", 100*min),
		fmt.Sprintf("%d of %d traced requests echoed (%.2f%%)",
			s.TraceEchoed, s.TraceRequests, 100*got),
		s.TraceRequests > 0 && got >= min,
	)
}

// routeNames returns the summary's routes in stable order.
func (s *Summary) routeNames() []string {
	names := make([]string, 0, len(s.Routes))
	for route := range s.Routes {
		names = append(names, route)
	}
	sort.Strings(names)
	return names
}

// AddP99Gate appends the latency-ceiling claim to res: every route's p99
// must be at or under ceiling.
func (s *Summary) AddP99Gate(res *report.Result, ceiling time.Duration) {
	worst := s.MaxP99()
	res.AddClaim(
		fmt.Sprintf("per-route p99 stays at or under %v", ceiling),
		fmt.Sprintf("p99 ≤ %.4gs on every route", ceiling.Seconds()),
		fmt.Sprintf("worst route p99 = %.4gs", worst),
		worst <= ceiling.Seconds(),
	)
}

// AddVictimP99Gate appends the tenancy-isolation claim to res: every
// victim-tenant route's p99 (routes labeled with VictimRoutePrefix) must
// stay at or under ceiling while the noisy tenant floods. This is the
// noisy-neighbor scenario's whole point — the abusive tenant's 429s are
// expected, the victim's latency is the gated quantity.
func (s *Summary) AddVictimP99Gate(res *report.Result, ceiling time.Duration) {
	worst := s.MaxP99Prefix(VictimRoutePrefix)
	res.AddClaim(
		fmt.Sprintf("victim-tenant p99 stays at or under %v despite the noisy tenant's flood", ceiling),
		fmt.Sprintf("p99 ≤ %.4gs on every %q route", ceiling.Seconds(), VictimRoutePrefix),
		fmt.Sprintf("worst victim route p99 = %.4gs", worst),
		worst <= ceiling.Seconds(),
	)
}

// crossCheckMinSamples is the per-route sample floor below which quantile
// agreement is statistically meaningless and the route is skipped.
const crossCheckMinSamples = 30

// rankIsMax reports whether quantile q's ceiling rank over n samples is
// the last sample — the regime where the estimator returns the sample
// maximum rather than an interior order statistic.
func rankIsMax(q float64, n int64) bool {
	return n <= 0 || int64(math.Ceil(q*float64(n))) >= n
}

// subMillisecond is the latency regime where loopback transport overhead
// (~0.1–0.3 ms: connection handling, header parsing, response flush — all
// outside the server's own measurement window) is the same scale as the
// histogram buckets themselves.
const subMillisecond = 0.001

// CrossCheck compares the run's client-side quantiles against the server's
// /metrics route histograms: for every route the run drove with enough
// samples, p50/p95/p99 must land within one histogram bucket of the
// server's estimate (a quantile whose ceiling rank is the sample maximum
// on either side is skipped — see rankIsMax). When either side's estimate is sub-millisecond — a
// regime where the buckets are as narrow as the client-vs-server transport
// overhead — one extra bucket of grace is allowed, since there the two
// sides genuinely measure different quantities. It returns one message per
// discrepancy; an empty slice is agreement. Meaningful only below
// saturation (queueing ahead of the server's measurement window — kernel
// accept queues, goroutine scheduling on a loaded host — inflates only the
// client side; ci/soak.sh therefore cross-checks a serial calibration
// phase, then applies the load gates to the saturating phase) and against
// a server whose traffic was (almost) exclusively this run.
func CrossCheck(s *Summary, m *client.MetricsSnapshot) []string {
	bounds := server.LatencyBucketBounds()
	var problems []string
	for _, route := range s.routeNames() {
		rs := s.Routes[route]
		if rs.Count < crossCheckMinSamples {
			continue
		}
		sl, ok := m.RouteLatency[route]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"%s: loadgen drove %d requests but the server's /metrics has no histogram for it",
				route, rs.Count))
			continue
		}
		for _, q := range []struct {
			name           string
			q              float64
			client, server float64
		}{
			{"p50", 0.50, rs.P50Seconds, sl.P50Seconds},
			{"p95", 0.95, rs.P95Seconds, sl.P95Seconds},
			{"p99", 0.99, rs.P99Seconds, sl.P99Seconds},
		} {
			if rankIsMax(q.q, rs.Count) || rankIsMax(q.q, sl.Count) {
				// The ceiling rank ⌈q·n⌉ lands on the last sample: the
				// "quantile" is the sample maximum, an extreme statistic
				// one scheduling outlier moves by orders of magnitude —
				// and the two sides' maxima come from different
				// measurement windows, so comparing them compares
				// outliers, not the instrument. (p99 needs ≥ 101 samples
				// to be an interior rank.)
				continue
			}
			ci := BucketIndex(bounds, q.client)
			si := BucketIndex(bounds, q.server)
			tolerance := 1
			if math.Min(q.client, q.server) <= subMillisecond {
				tolerance = 2
			}
			if d := ci - si; d < -tolerance || d > tolerance {
				problems = append(problems, fmt.Sprintf(
					"%s: %s disagrees beyond %d bucket(s): loadgen %.4gs (bucket %d) vs server %.4gs (bucket %d)",
					route, q.name, tolerance, q.client, ci, q.server, si))
			}
		}
	}
	return problems
}

// AddJobsDrainGate appends the zero-lost-jobs claim for async (job-queue)
// runs: within timeout of the run ending, every submitted job must reach
// a terminal state (queued+running drain to zero) and none may have
// failed — a journaled-but-never-finished or failed job is a lost
// promise. It polls GET /metrics until the queue drains or the budget
// runs out.
func AddJobsDrainGate(ctx context.Context, res *report.Result, c *client.Client, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	var (
		m   *client.MetricsSnapshot
		err error
	)
	for {
		m, err = c.Metrics(ctx)
		if err == nil && m.JobsQueued+m.JobsRunning == 0 {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	measured := ""
	pass := false
	switch {
	case err != nil:
		measured = fmt.Sprintf("could not read /metrics: %v", err)
	case m.JobsQueued+m.JobsRunning > 0:
		measured = fmt.Sprintf("queue did not drain within %v: %d queued, %d running",
			timeout, m.JobsQueued, m.JobsRunning)
	case m.JobsFailed > 0:
		measured = fmt.Sprintf("%d jobs failed (%d done)", m.JobsFailed, m.JobsDone)
	default:
		measured = fmt.Sprintf("queue drained: %d done, 0 failed, %d served from the store",
			m.JobsDone, m.StoreHits)
		pass = true
	}
	res.AddClaim(
		"no jobs lost: every submitted job reaches a terminal state, none failed",
		"jobs_queued + jobs_running drain to 0 with jobs_failed = 0",
		measured,
		pass,
	)
}

// AddFairnessGate appends the scheduler-fairness claims for the
// backlog-fairness scenario: the queue must drain within timeout (same
// poll as AddJobsDrainGate — a starved job never drains), no tenant
// with eligible pending work may have been bypassed more than maxWait
// consecutive picks (jobs_sched_max_wait_picks, the weighted
// round-robin's starvation bound), and the minority tenant must
// actually have been served (sched_served_total > 0) despite the bulk
// tenant's 10:1 backlog.
func AddFairnessGate(ctx context.Context, res *report.Result, c *client.Client, timeout time.Duration, maxWait int64) {
	deadline := time.Now().Add(timeout)
	var (
		m   *client.MetricsSnapshot
		err error
	)
	for {
		m, err = c.Metrics(ctx)
		if err == nil && m.JobsQueued+m.JobsRunning == 0 {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		res.AddClaim(
			"scheduler fairness under a 10:1 tenant backlog",
			"queue drains; max wait and per-tenant served are readable",
			fmt.Sprintf("could not read /metrics: %v", err),
			false,
		)
		return
	}
	drained := m.JobsQueued+m.JobsRunning == 0
	res.AddClaim(
		"the backlog drains: no job is starved forever",
		fmt.Sprintf("jobs_queued + jobs_running reach 0 within %v with jobs_failed = 0", timeout),
		fmt.Sprintf("%d queued, %d running, %d done, %d failed",
			m.JobsQueued, m.JobsRunning, m.JobsDone, m.JobsFailed),
		drained && m.JobsFailed == 0,
	)
	res.AddClaim(
		"no tenant with eligible pending work waits beyond the weighted round",
		fmt.Sprintf("jobs_sched_max_wait_picks ≤ %d", maxWait),
		fmt.Sprintf("max consecutive bypasses = %d over %d picks (%d skips)",
			m.SchedMaxWaitPicks, m.SchedPicks, m.SchedSkips),
		m.SchedMaxWaitPicks <= maxWait,
	)
	minority := m.Tenants["minority"]
	res.AddClaim(
		"the minority tenant is served despite the bulk tenant's backlog",
		"minority sched_served_total > 0",
		fmt.Sprintf("minority served %d, bulk served %d",
			minority.SchedServed, m.Tenants["bulk"].SchedServed),
		minority.SchedServed > 0,
	)
}

// AddCrossCheckGate appends the /metrics agreement claim to res.
func AddCrossCheckGate(res *report.Result, s *Summary, m *client.MetricsSnapshot) {
	problems := CrossCheck(s, m)
	measured := "all routes agree"
	if len(problems) > 0 {
		measured = fmt.Sprintf("%d discrepancies; first: %s", len(problems), problems[0])
	}
	res.AddClaim(
		"client-side quantiles agree with the server's /metrics histograms",
		"p50/p95/p99 within one bucket on every driven route",
		measured,
		len(problems) == 0,
	)
}
