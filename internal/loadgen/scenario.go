// Package loadgen is the traffic instrument for balance-as-a-service: it
// generates deterministic, seeded request streams over named scenario
// mixes, drives them at the API open- or closed-loop, and accounts per-route
// latency (p50/p95/p99/max on the server's own histogram buckets, so the
// two sides can be cross-checked bucket-for-bucket), throughput, and error
// classes. The paper's discipline applied to our own service: balance is
// measured under a workload mix, not read off nameplate specs.
//
// The pieces compose: a Scenario is a weighted mix of request generators;
// Plan expands (scenario, seed) into the exact request sequence — the same
// seed always yields the byte-identical sequence, so load runs are
// reproducible evidence; Run drives the sequence through a client.Client
// and returns a Summary; Summary.Report renders the result as an
// internal/report.Result (text and JSON); CrossCheck compares the measured
// quantiles against the server's /metrics histogram.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"balarch/client"
	"balarch/internal/jobs"
	"balarch/internal/server"
)

// Request is one generated API call: the wire triple plus the metrics
// label and the statuses this scenario considers a correct answer.
type Request struct {
	// Route labels the request in summaries, matching the server's
	// "METHOD /pattern" metric keys (e.g. "POST /v1/experiments/{id}").
	Route string
	// Method and Path address the endpoint; Body is the JSON payload
	// (nil for GETs).
	Method string
	Path   string
	Body   []byte
	// Expect lists acceptable response statuses; empty means {200}.
	// Anything else counts as an unexpected response in the summary.
	Expect []int
	// APIKey, when set, issues the request as that tenant (Authorization:
	// Bearer) — the noisy-neighbor scenario drives several tenants
	// through one client this way. Empty stays anonymous.
	APIKey string
}

// Expected reports whether status is an acceptable answer for this request.
func (r Request) Expected(status int) bool {
	if len(r.Expect) == 0 {
		return status == 200
	}
	for _, s := range r.Expect {
		if s == status {
			return true
		}
	}
	return false
}

// Scenario is a named, weighted workload mix. Generation is driven by a
// seeded *rand.Rand, so a scenario is a pure function from (seed, index)
// sequence position to request.
type Scenario struct {
	// Name identifies the scenario (e.g. "mixed-production").
	Name string
	// Description says what the mix exercises, for -list output.
	Description string
	mix         []weightedGen
}

// weightedGen pairs a request generator with its mix weight.
type weightedGen struct {
	weight int
	gen    func(r *rand.Rand) Request
}

// next draws one request from the mix.
func (s Scenario) next(r *rand.Rand) Request {
	total := 0
	for _, w := range s.mix {
		total += w.weight
	}
	pick := r.Intn(total)
	for _, w := range s.mix {
		if pick < w.weight {
			return w.gen(r)
		}
		pick -= w.weight
	}
	panic("loadgen: empty scenario mix")
}

// Plan expands the scenario into its first n requests for the given seed.
// The sequence is deterministic: the same (scenario, seed, n) always
// returns byte-identical requests, which is what makes a load report
// reproducible evidence rather than an anecdote.
func (s Scenario) Plan(seed int64, n int) []Request {
	r := rand.New(rand.NewSource(seed))
	out := make([]Request, n)
	for i := range out {
		out[i] = s.next(r)
	}
	return out
}

// EncodePlan renders a request sequence in a canonical byte form, used by
// the determinism test and useful for diffing two plans.
func EncodePlan(reqs []Request) []byte {
	var b strings.Builder
	for _, q := range reqs {
		if q.APIKey != "" {
			fmt.Fprintf(&b, "%s %s as %s\n%s\n\n", q.Method, q.Path, q.APIKey, q.Body)
			continue
		}
		fmt.Fprintf(&b, "%s %s\n%s\n\n", q.Method, q.Path, q.Body)
	}
	return []byte(b.String())
}

// Scenarios returns the catalog in name order.
func Scenarios() []Scenario {
	all := []Scenario{
		analyzeHeavy(),
		sweepStampede(),
		batchBurst(),
		experimentReplay(),
		mixedProduction(),
		jobQueue(),
		hierarchyMix(),
		noisyNeighbor(),
		backlogFairness(),
		clusterMix(),
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Get returns the named scenario.
func Get(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Scenarios()))
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (one of %s)",
		name, strings.Join(names, ", "))
}

// --- request builders (all deterministic in the rng) ---

// mustJSON marshals a request DTO; the DTOs are plain data, so a marshal
// failure is a programming error.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal %T: %v", v, err))
	}
	return b
}

// computationPool is the catalog spread the generators draw from.
var computationPool = []client.Computation{
	{Name: "matmul"},
	{Name: "triangularization"},
	{Name: "grid", Dim: 2},
	{Name: "grid", Dim: 3},
	{Name: "fft"},
	{Name: "sorting"},
	{Name: "matvec"},
	{Name: "trisolve"},
	{Name: "spmv"},
	{Name: "convolution", Taps: 32},
}

// randomPE draws a plausible PE: tens of MOPS against ~1 Mword/s with a
// power-of-two memory, the regime the paper's §1 example lives in.
func randomPE(r *rand.Rand) client.PE {
	return client.PE{
		C:  1e6 * float64(1+r.Intn(100)),
		IO: 1e6 * float64(1+r.Intn(4)),
		M:  float64(int64(1) << (8 + r.Intn(12))),
	}
}

func analyzeReq(r *rand.Rand) Request {
	body := mustJSON(client.AnalyzeRequest{
		PE:          randomPE(r),
		Computation: computationPool[r.Intn(len(computationPool))],
	})
	return Request{Route: "POST /v1/analyze", Method: "POST", Path: "/v1/analyze", Body: body}
}

func rebalanceReq(r *rand.Rand) Request {
	// α in [1, 5); only the memory-elastic computations, so every request
	// is answerable (rebalanceable true or the valid "false" for Θ(1) is
	// fine either way — both are 200s).
	body := mustJSON(client.RebalanceRequest{
		Computation: computationPool[r.Intn(len(computationPool))],
		Alpha:       1 + 4*r.Float64(),
		MOld:        float64(int64(1) << (10 + r.Intn(8))),
	})
	return Request{Route: "POST /v1/rebalance", Method: "POST", Path: "/v1/rebalance", Body: body}
}

func rooflineReq(r *rand.Rand) Request {
	body := mustJSON(client.RooflineRequest{
		PE: randomPE(r),
		Computations: []client.Computation{
			computationPool[r.Intn(len(computationPool))],
			computationPool[r.Intn(len(computationPool))],
		},
		MemLo: 64,
		MemHi: 1 << 16,
		Step:  4,
	})
	return Request{Route: "POST /v1/roofline", Method: "POST", Path: "/v1/roofline", Body: body}
}

// sweepPool is a small set of distinct count-only sweeps: after each body's
// first flight the server's memo answers, so sweep traffic exercises the
// cache the way production repeat queries would. Count-only kernels keep
// every cold run cheap.
var sweepPool = []client.SweepRequest{
	{Kernel: "matmul", N: 96, Params: []int{4, 8, 16, 32}},
	{Kernel: "matmul", N: 128, Params: []int{4, 8, 16}},
	{Kernel: "fft", N: 1 << 12, Params: []int{16, 64, 256}},
	{Kernel: "matvec", N: 2048, Params: []int{64, 256, 1024}},
	{Kernel: "trisolve", N: 512, Params: []int{32, 128}},
	{Kernel: "convolve", N: 1 << 14, Params: []int{8, 32, 128}},
}

func sweepReq(r *rand.Rand) Request {
	body := mustJSON(sweepPool[r.Intn(len(sweepPool))])
	return Request{Route: "POST /v1/sweep", Method: "POST", Path: "/v1/sweep", Body: body}
}

// stampedeSweepReq returns the one fixed sweep body 85% of the time — a
// stampede of identical queries that must collapse onto a single kernel
// flight — and a pool variant otherwise.
func stampedeSweepReq(r *rand.Rand) Request {
	if r.Intn(100) < 85 {
		body := mustJSON(sweepPool[0])
		return Request{Route: "POST /v1/sweep", Method: "POST", Path: "/v1/sweep", Body: body}
	}
	return sweepReq(r)
}

func batchReq(r *rand.Rand) Request {
	n := 4 + r.Intn(12)
	items := make([]client.BatchItem, n)
	for i := range items {
		if r.Intn(2) == 0 {
			items[i] = client.BatchItem{Op: "analyze", Request: mustJSON(client.AnalyzeRequest{
				PE:          randomPE(r),
				Computation: computationPool[r.Intn(len(computationPool))],
			})}
		} else {
			items[i] = client.BatchItem{Op: "rebalance", Request: mustJSON(client.RebalanceRequest{
				Computation: computationPool[r.Intn(len(computationPool))],
				Alpha:       1 + 3*r.Float64(),
				MOld:        1024,
			})}
		}
	}
	body := mustJSON(client.BatchRequest{Requests: items})
	return Request{Route: "POST /v1/batch", Method: "POST", Path: "/v1/batch", Body: body}
}

func experimentListReq(*rand.Rand) Request {
	return Request{Route: "GET /v1/experiments", Method: "GET", Path: "/v1/experiments"}
}

// experimentRunPool lists the cheap, fully analytic/count-only experiments
// a replay scenario can afford to re-run per request.
var experimentRunPool = []string{"E1", "E7"}

func experimentRunReq(r *rand.Rand) Request {
	id := experimentRunPool[r.Intn(len(experimentRunPool))]
	return Request{Route: "POST /v1/experiments/{id}", Method: "POST", Path: "/v1/experiments/" + id}
}

// --- async jobs (the job-queue scenario) ---

// jobSweepPool is the set of distinct sweep payloads the job scenario
// submits. Content addressing makes job ids a pure function of these
// bodies, so the polls and result fetches below can name the exact jobs
// the submits create — open-loop async traffic with zero coordination
// between the generators.
var jobSweepPool = []client.SweepRequest{
	{Kernel: "matmul", N: 96, Params: []int{4, 8, 16, 32}},
	{Kernel: "matmul", N: 128, Params: []int{4, 8, 16}},
	{Kernel: "fft", N: 1 << 12, Params: []int{16, 64, 256}},
	{Kernel: "matvec", N: 2048, Params: []int{64, 256, 1024}},
	{Kernel: "trisolve", N: 512, Params: []int{32, 128}},
	{Kernel: "convolve", N: 1 << 14, Params: []int{8, 32, 128}},
	{Kernel: "lu", N: 96, Params: []int{8, 16, 32}},
	{Kernel: "strassen", N: 64, Params: []int{8, 16}},
}

// jobID derives the id POST /v1/jobs will assign to a pool entry — the
// same derivation the server uses (jobs.IDFor over the canonical DTO
// bytes).
func jobID(sweep client.SweepRequest) string {
	id, _ := jobs.IDFor("sweep", mustJSON(sweep))
	return id
}

// jobSubmitReq submits one pool sweep. 202 is the fresh ack, 200 the
// dedup answer (an identical job already done), and 429 the
// memory-admission refusal — all three are correct service behavior.
func jobSubmitReq(r *rand.Rand) Request {
	sweep := jobSweepPool[r.Intn(len(jobSweepPool))]
	body := mustJSON(client.JobSubmitRequest{Op: "sweep", Request: mustJSON(sweep)})
	return Request{Route: "POST /v1/jobs", Method: "POST", Path: "/v1/jobs", Body: body,
		Expect: []int{200, 202, 429}}
}

// jobPollReq polls a pool job's status. 404 is legitimate early in a run
// (this job's submit has not landed yet) and after TTL GC.
func jobPollReq(r *rand.Rand) Request {
	id := jobID(jobSweepPool[r.Intn(len(jobSweepPool))])
	return Request{Route: "GET /v1/jobs/{id}", Method: "GET", Path: "/v1/jobs/" + id,
		Expect: []int{200, 404}}
}

// jobResultReq fetches a pool job's result. 409 while it is still in
// flight and 404 before it exists are correct answers; 200 carries the
// stored bytes.
func jobResultReq(r *rand.Rand) Request {
	id := jobID(jobSweepPool[r.Intn(len(jobSweepPool))])
	return Request{Route: "GET /v1/jobs/{id}/result", Method: "GET",
		Path: "/v1/jobs/" + id + "/result", Expect: []int{200, 404, 409}}
}

func jobListReq(*rand.Rand) Request {
	return Request{Route: "GET /v1/jobs", Method: "GET", Path: "/v1/jobs"}
}

// --- hierarchy requests (the hierarchy-mix scenario) ---

// randomLevels draws a valid 2–4 level stack: power-of-two capacities and
// bandwidths strictly decreasing outward, so the monotonicity contract
// holds by construction and every request is answerable.
func randomLevels(r *rand.Rand) []client.Level {
	depth := 2 + r.Intn(3)
	bw := 1e6 * float64(1+r.Intn(1000))
	levels := make([]client.Level, depth)
	for i := range levels {
		levels[i] = client.Level{
			BW: bw,
			M:  float64(int64(1) << (8 + r.Intn(12))),
		}
		bw /= float64(2 + r.Intn(3))
	}
	return levels
}

func hierarchyAnalyzeReq(r *rand.Rand) Request {
	body := mustJSON(client.AnalyzeRequest{
		PE:          client.PE{C: 1e6 * float64(1+r.Intn(1000))},
		Levels:      randomLevels(r),
		Computation: computationPool[r.Intn(len(computationPool))],
	})
	return Request{Route: "POST /v1/analyze", Method: "POST", Path: "/v1/analyze", Body: body}
}

func hierarchyRebalanceReq(r *rand.Rand) Request {
	// Rebalanceable or the valid Θ(1) "impossible" answer — both are 200s.
	body := mustJSON(client.RebalanceRequest{
		Computation: computationPool[r.Intn(len(computationPool))],
		Alpha:       1 + 2*r.Float64(),
		C:           1e6 * float64(1+r.Intn(1000)),
		Levels:      randomLevels(r),
	})
	return Request{Route: "POST /v1/rebalance", Method: "POST", Path: "/v1/rebalance", Body: body}
}

func hierarchyRooflineReq(r *rand.Rand) Request {
	levels := randomLevels(r)
	body := mustJSON(client.RooflineRequest{
		PE:     client.PE{C: 1e6 * float64(1+r.Intn(1000))},
		Levels: levels,
		Computations: []client.Computation{
			computationPool[r.Intn(len(computationPool))],
		},
		MemLo:      64,
		MemHi:      1 << 16,
		Step:       4,
		SweepLevel: 1 + r.Intn(len(levels)),
	})
	return Request{Route: "POST /v1/roofline", Method: "POST", Path: "/v1/roofline", Body: body}
}

// hierarchySweepPool is a small set of distinct analytic level sweeps:
// repeats are answered by the server's sweep memo, like production repeat
// queries.
var hierarchySweepPool = []client.SweepRequest{
	{Kernel: "hierarchy", C: 8e6,
		Levels:      []client.Level{{BW: 1e6, M: 16}, {BW: 5e5, M: 1 << 20}},
		Computation: &client.Computation{Name: "sorting"},
		Params:      []int{64, 1024, 16384, 262144}},
	{Kernel: "hierarchy", C: 1e9,
		Levels:      []client.Level{{Name: "sram", BW: 4e9, M: 1024}, {Name: "dram", BW: 1e9, M: 1 << 18}, {Name: "disk", BW: 1e5, M: 1 << 26}},
		Computation: &client.Computation{Name: "matmul"},
		Params:      []int{1 << 20, 1 << 23, 1 << 26}, Level: 3},
	{Kernel: "hierarchy", C: 5e7,
		Levels:      []client.Level{{BW: 1e6, M: 4096}, {BW: 2e5, M: 1 << 22}},
		Computation: &client.Computation{Name: "fft"},
		Vary:        "bandwidth", Level: 2, Params: []int{50000, 100000, 200000}},
	{Kernel: "hierarchy", C: 2e8,
		Levels:      []client.Level{{BW: 1e8, M: 512}, {BW: 1e6, M: 1 << 16}},
		Computation: &client.Computation{Name: "grid", Dim: 3},
		Params:      []int{1 << 10, 1 << 14, 1 << 18}, Level: 2},
}

func hierarchySweepReq(r *rand.Rand) Request {
	body := mustJSON(hierarchySweepPool[r.Intn(len(hierarchySweepPool))])
	return Request{Route: "POST /v1/sweep", Method: "POST", Path: "/v1/sweep", Body: body}
}

func catalogReq(*rand.Rand) Request {
	return Request{Route: "GET /v1/catalog", Method: "GET", Path: "/v1/catalog"}
}

func healthReq(*rand.Rand) Request {
	return Request{Route: "GET /healthz", Method: "GET", Path: "/healthz"}
}

func metricsReq(*rand.Rand) Request {
	return Request{Route: "GET /metrics", Method: "GET", Path: "/metrics"}
}

// emulationReq asks Hanlon's question with random but always-valid shapes:
// power-of-two module counts and an interconnect no faster than a module
// port, so every request is a 200.
func emulationReq(r *rand.Rand) Request {
	moduleBW := 1e6 * float64(1+r.Intn(4))
	body := mustJSON(client.EmulationRequest{
		C:           1e6 * float64(1+r.Intn(200)),
		Computation: computationPool[r.Intn(len(computationPool))],
		Modules:     1 << (1 + r.Intn(6)), // 2..64 modules
		ModuleM:     float64(int64(1) << (10 + r.Intn(8))),
		ModuleBW:    moduleBW,
		NetworkBW:   moduleBW / float64(int64(1)<<r.Intn(4)),
	})
	return Request{Route: "POST /v1/emulation", Method: "POST", Path: "/v1/emulation", Body: body}
}

// --- the scenario catalog ---

func analyzeHeavy() Scenario {
	return Scenario{
		Name:        "analyze-heavy",
		Description: "capacity-planner traffic: mostly analyze, some rebalance, health probes",
		mix: []weightedGen{
			{85, analyzeReq},
			{10, rebalanceReq},
			{5, healthReq},
		},
	}
}

func sweepStampede() Scenario {
	return Scenario{
		Name:        "sweep-stampede",
		Description: "stampede of identical sweeps: stresses the single-flight memo",
		mix: []weightedGen{
			{90, stampedeSweepReq},
			{5, analyzeReq},
			{5, healthReq},
		},
	}
}

func batchBurst() Scenario {
	return Scenario{
		Name:        "batch-burst",
		Description: "bursts of heterogeneous batches fanned out on the worker pool",
		mix: []weightedGen{
			{85, batchReq},
			{10, analyzeReq},
			{5, healthReq},
		},
	}
}

func experimentReplay() Scenario {
	return Scenario{
		Name:        "experiment-replay",
		Description: "registry listing plus re-runs of the cheap experiments",
		mix: []weightedGen{
			{40, experimentListReq},
			{40, experimentRunReq},
			{10, analyzeReq},
			{10, healthReq},
		},
	}
}

func jobQueue() Scenario {
	return Scenario{
		Name:        "job-queue",
		Description: "async production traffic: submit durable jobs, poll states, fetch stored results",
		mix: []weightedGen{
			{40, jobSubmitReq},
			{25, jobPollReq},
			{20, jobResultReq},
			{5, jobListReq},
			{5, metricsReq},
			{5, healthReq},
		},
	}
}

func hierarchyMix() Scenario {
	return Scenario{
		Name:        "hierarchy-mix",
		Description: "multi-level machines: hierarchy analyze/rebalance/roofline, analytic level sweeps, catalog lookups",
		mix: []weightedGen{
			{35, hierarchyAnalyzeReq},
			{15, hierarchyRebalanceReq},
			{15, hierarchyRooflineReq},
			{20, hierarchySweepReq},
			{5, catalogReq},
			{5, analyzeReq},
			{5, healthReq},
		},
	}
}

// The noisy-neighbor scenario's fixed tenant keys. ci/soak.sh writes a
// tenants.json carrying exactly these keys (the noisy tenant on a tight
// token bucket and job budget, the victim tenant unthrottled) and the
// scenario issues its traffic as them; the victim-p99 gate then asserts
// the abusive tenant's refusals never become the victims' latency.
const (
	// NoisyTenantKey authenticates the abusive tenant: a flood that is
	// mostly rate-limited (429 is its expected answer).
	NoisyTenantKey = "soak-noisy-key"
	// VictimTenantKey authenticates the well-behaved tenant whose
	// latency the gate protects.
	VictimTenantKey = "soak-victim-key"
)

// VictimRoutePrefix labels the victim tenant's routes in summaries, so
// gates can scope to them (MaxP99Prefix).
const VictimRoutePrefix = "victim "

// NoisyNeighborTenants is the tenants configuration the noisy-neighbor
// scenario assumes: the noisy tenant on a tight token bucket and a small
// job budget, the victim named but unthrottled. balarchload -inprocess
// installs it directly; ci/soak.sh serializes the same shape to the
// tenants.json it hands balarchd.
func NoisyNeighborTenants() *server.TenantsConfig {
	return &server.TenantsConfig{Tenants: []server.TenantSpec{
		{Name: "noisy", Key: NoisyTenantKey, RatePerSec: 50, Burst: 100, JobBudgetBytes: 256 << 10},
		{Name: "victim", Key: VictimTenantKey},
	}}
}

// noisyReq floods as the abusive tenant. The server's correct answer is
// usually 429 (rate_limited from the tenant's bucket; over_budget for a
// job submit) — both expected: this tenant measures containment, not
// service.
func noisyReq(r *rand.Rand) Request {
	if r.Intn(100) < 25 {
		sweep := jobSweepPool[r.Intn(len(jobSweepPool))]
		body := mustJSON(client.JobSubmitRequest{Op: "sweep", Request: mustJSON(sweep)})
		return Request{Route: "noisy POST /v1/jobs", Method: "POST", Path: "/v1/jobs", Body: body,
			Expect: []int{200, 202, 429}, APIKey: NoisyTenantKey}
	}
	q := analyzeReq(r)
	q.Route = "noisy POST /v1/analyze"
	q.Expect = []int{200, 429}
	q.APIKey = NoisyTenantKey
	return q
}

// victimReq issues the well-behaved tenant's traffic: analytic requests
// that must be answered 200 — a 429 leaking onto the victim is an
// unexpected response and fails the run's zero-unexpected claim.
func victimReq(r *rand.Rand) Request {
	var q Request
	switch r.Intn(3) {
	case 0:
		q = analyzeReq(r)
	case 1:
		q = rebalanceReq(r)
	default:
		q = sweepReq(r)
	}
	q.Route = VictimRoutePrefix + q.Route
	q.APIKey = VictimTenantKey
	return q
}

func noisyNeighbor() Scenario {
	return Scenario{
		Name:        "noisy-neighbor",
		Description: "tenancy isolation: one abusive tenant floods into its rate limit while a victim tenant's latency is gated",
		mix: []weightedGen{
			{70, noisyReq},
			{25, victimReq},
			{5, healthReq},
		},
	}
}

// The backlog-fairness scenario's fixed tenant keys (ci/soak.sh writes a
// tenants.json carrying exactly these; see FairnessTenants).
const (
	// BulkTenantKey authenticates the tenant submitting the deep job
	// backlog — roughly ten submissions for every one of the minority's.
	BulkTenantKey = "soak-bulk-key"
	// MinorityTenantKey authenticates the tenant whose sparse
	// submissions the scheduler's round-robin must keep serving.
	MinorityTenantKey = "soak-minority-key"
)

// FairnessTenants is the tenants configuration the backlog-fairness
// scenario assumes: the bulk tenant with an explicit round-robin weight
// and a job-budget partition deep enough to build a real backlog, the
// minority tenant unweighted (default 1). Neither is rate-limited — the
// scenario measures the scheduler's pick order under backlog, not the
// token bucket. balarchload -inprocess installs it directly; ci/soak.sh
// serializes the same shape to the tenants.json it hands balarchd.
func FairnessTenants() *server.TenantsConfig {
	return &server.TenantsConfig{Tenants: []server.TenantSpec{
		{Name: "bulk", Key: BulkTenantKey, JobBudgetBytes: 64 << 20, Weight: 2},
		{Name: "minority", Key: MinorityTenantKey, JobBudgetBytes: 16 << 20},
	}}
}

// fairnessSortJob builds a sort-kernel sweep submission: sort executes
// for real (it generates and sorts Σ m² keys), so each job holds a
// couple of MiB of admission budget for real milliseconds — the cheapest
// way to put a genuine backlog in front of the daemon's two workers.
// Distinct seeds make distinct content keys, so dedup cannot collapse
// the backlog into one job.
func fairnessSortJob(route, apiKey string, seed int) Request {
	sweep := client.SweepRequest{Kernel: "sort", Params: []int{384, 512}, Seed: int64(seed)}
	body := mustJSON(client.JobSubmitRequest{Op: "sweep", Request: mustJSON(sweep)})
	return Request{Route: route, Method: "POST", Path: "/v1/jobs", Body: body,
		Expect: []int{200, 202, 429}, APIKey: apiKey}
}

// bulkJobReq floods the queue as the bulk tenant: heavy sort sweeps from
// a wide seed pool. 429 (its budget partition refusing) is expected —
// the partition holding is part of what the scenario demonstrates.
func bulkJobReq(r *rand.Rand) Request {
	return fairnessSortJob("bulk POST /v1/jobs", BulkTenantKey, 1+r.Intn(24))
}

// minorityJobReq submits the minority tenant's sparse jobs. Its routes
// carry VictimRoutePrefix so the corrected victim-p99 gate scopes to
// them: the minority tenant is this scenario's victim.
func minorityJobReq(r *rand.Rand) Request {
	return fairnessSortJob(VictimRoutePrefix+"POST /v1/jobs", MinorityTenantKey, 101+r.Intn(4))
}

// minorityAnalyzeReq is the minority tenant's synchronous traffic: pure
// analytic requests that must stay fast (and 200) while the bulk
// tenant's backlog grinds through the queue behind them.
func minorityAnalyzeReq(r *rand.Rand) Request {
	q := analyzeReq(r)
	q.Route = VictimRoutePrefix + q.Route
	q.APIKey = MinorityTenantKey
	return q
}

func backlogFairness() Scenario {
	return Scenario{
		Name:        "backlog-fairness",
		Description: "scheduler fairness: one tenant's 10:1 job backlog must not starve the minority tenant's submissions or latency",
		mix: []weightedGen{
			{60, bulkJobReq},
			{6, minorityJobReq},
			{28, minorityAnalyzeReq},
			{6, healthReq},
		},
	}
}

func mixedProduction() Scenario {
	return Scenario{
		Name:        "mixed-production",
		Description: "the production blend: every endpoint, weighted like real traffic",
		mix: []weightedGen{
			{35, analyzeReq},
			{10, rebalanceReq},
			{10, rooflineReq},
			{18, sweepReq},
			{10, batchReq},
			{5, experimentListReq},
			{3, experimentRunReq},
			{5, healthReq},
			{4, metricsReq},
		},
	}
}

// clusterMix is the multi-node soak blend: keyed traffic (sweeps, job
// submits) that must pin to ring owners, keyless traffic for two-choice
// placement, scatter-gather batches, and the emulation endpoint — all
// routes a gateway fronts. It is equally valid against a single node.
func clusterMix() Scenario {
	return Scenario{
		Name:        "cluster-mix",
		Description: "gateway soak blend: keyed sweeps and jobs, keyless analyzes, batches, emulation",
		mix: []weightedGen{
			{25, analyzeReq},
			{8, rebalanceReq},
			{7, rooflineReq},
			{20, sweepReq},
			{10, batchReq},
			{10, emulationReq},
			{8, jobSubmitReq},
			{5, jobPollReq},
			{3, experimentListReq},
			{2, metricsReq},
			{2, healthReq},
		},
	}
}
