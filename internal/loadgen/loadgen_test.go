package loadgen

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"balarch/client"
	"balarch/internal/report"
	"balarch/internal/server"
)

// testClient binds a client to a fresh jobs-enabled in-process server, so
// every scenario — including job-queue — is valid traffic against it.
func testClient(t *testing.T) *client.Client {
	t.Helper()
	srv := server.New(server.Options{Parallelism: 2, StoreDir: t.TempDir()})
	if srv.JobsErr() != nil {
		t.Fatal(srv.JobsErr())
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return client.NewFromHandler(srv.Handler())
}

// TestPlanDeterministic is the acceptance gate: same seed + same scenario
// ⇒ byte-identical request sequence, for every scenario in the catalog.
func TestPlanDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		a := EncodePlan(sc.Plan(42, 300))
		b := EncodePlan(sc.Plan(42, 300))
		if !bytes.Equal(a, b) {
			t.Errorf("scenario %s: two plans from seed 42 differ", sc.Name)
		}
		c := EncodePlan(sc.Plan(43, 300))
		if bytes.Equal(a, c) {
			t.Errorf("scenario %s: seeds 42 and 43 produced identical plans", sc.Name)
		}
	}
}

func TestScenarioCatalog(t *testing.T) {
	want := []string{"analyze-heavy", "backlog-fairness", "batch-burst", "cluster-mix", "experiment-replay", "hierarchy-mix", "job-queue", "mixed-production", "noisy-neighbor", "sweep-stampede"}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d scenarios, want %d", len(got), len(want))
	}
	for i, sc := range got {
		if sc.Name != want[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, sc.Name, want[i])
		}
		if sc.Description == "" {
			t.Errorf("%s has no description", sc.Name)
		}
	}
	if _, err := Get("mixed-production"); err != nil {
		t.Errorf("Get(mixed-production): %v", err)
	}
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "mixed-production") {
		t.Errorf("Get(nope) = %v, want an error naming the catalog", err)
	}
}

// TestEveryScenarioCleanAgainstServer drives each scenario closed-loop at
// the real API stack: every generated request must draw an expected
// response — the scenarios are meant to be valid traffic, so any 4xx/5xx
// is a generator bug (or a service regression).
func TestEveryScenarioCleanAgainstServer(t *testing.T) {
	c := testClient(t)
	for _, sc := range Scenarios() {
		n := int64(40)
		if sc.Name == "experiment-replay" && testing.Short() {
			n = 10
		}
		sum, err := Run(context.Background(), c, Config{
			Scenario: sc, Seed: 7, Workers: 4, MaxRequests: n,
		})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if sum.Requests != n {
			t.Errorf("%s: issued %d requests, want %d", sc.Name, sum.Requests, n)
		}
		if sum.Unexpected != 0 {
			for route, rs := range sum.Routes {
				for _, sample := range rs.UnexpectedSamples {
					t.Logf("%s %s: %s", sc.Name, route, sample)
				}
			}
			t.Errorf("%s: %d unexpected responses", sc.Name, sum.Unexpected)
		}
		if sum.Mode != "closed" {
			t.Errorf("%s: mode %q, want closed", sc.Name, sum.Mode)
		}
	}
}

func TestOpenLoopPacing(t *testing.T) {
	c := testClient(t)
	sc, _ := Get("analyze-heavy")
	sum, err := Run(context.Background(), c, Config{
		Scenario: sc, Seed: 1, Workers: 4, Duration: 400 * time.Millisecond, Rate: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mode != "open" {
		t.Fatalf("mode %q, want open", sum.Mode)
	}
	// 200/s over 0.4s ≈ 80 arrivals; allow generous scheduling slack but
	// require the catch-up pacing to have come close.
	if sum.Requests+sum.DroppedArrivals < 40 {
		t.Errorf("open loop produced only %d arrivals (%d issued, %d dropped)",
			sum.Requests+sum.DroppedArrivals, sum.Requests, sum.DroppedArrivals)
	}
	if sum.Unexpected != 0 {
		t.Errorf("%d unexpected responses", sum.Unexpected)
	}
}

func TestRunValidation(t *testing.T) {
	c := testClient(t)
	if _, err := Run(context.Background(), c, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	sc, _ := Get("analyze-heavy")
	if _, err := Run(context.Background(), c, Config{Scenario: sc}); err == nil {
		t.Error("config without duration or request cap accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, c, Config{Scenario: sc, MaxRequests: 5}); err == nil {
		t.Error("cancelled context did not error")
	}
}

// TestJobQueueScenarioDrains drives the async scenario, then applies the
// zero-lost-jobs gate: the queue must drain with nothing failed, and the
// gate must appear as a passing claim in the report.
func TestJobQueueScenarioDrains(t *testing.T) {
	c := testClient(t)
	sc, err := Get("job-queue")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(context.Background(), c, Config{Scenario: sc, Seed: 11, Workers: 4, MaxRequests: 120})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unexpected != 0 {
		for route, rs := range sum.Routes {
			for _, sample := range rs.UnexpectedSamples {
				t.Logf("%s: %s", route, sample)
			}
		}
		t.Fatalf("%d unexpected responses", sum.Unexpected)
	}
	if sum.Routes["POST /v1/jobs"] == nil || sum.Routes["POST /v1/jobs"].Count == 0 {
		t.Fatal("scenario submitted no jobs")
	}
	res := sum.Report()
	AddJobsDrainGate(context.Background(), res, c, 30*time.Second)
	if !res.Pass() {
		t.Errorf("drain gate failed: %+v", res.Claims)
	}
	// The gate is a real instrument: every submitted pool job is now
	// terminal and the store holds their results.
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsDone == 0 || m.StoreEntries == 0 {
		t.Errorf("after drain: jobs_done=%d store_entries=%d", m.JobsDone, m.StoreEntries)
	}
}

// TestHierarchyMixPassesSoakGates drives the hierarchy scenario through
// the full API stack and applies the same gates ci/soak.sh enforces: zero
// unexpected non-2xx responses and every route's p99 under the ceiling. The
// new surface must be soak-clean from day one.
func TestHierarchyMixPassesSoakGates(t *testing.T) {
	c := testClient(t)
	sc, err := Get("hierarchy-mix")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(context.Background(), c, Config{Scenario: sc, Seed: 5, Workers: 4, MaxRequests: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unexpected != 0 {
		for route, rs := range sum.Routes {
			for _, sample := range rs.UnexpectedSamples {
				t.Logf("%s: %s", route, sample)
			}
		}
		t.Fatalf("%d unexpected responses", sum.Unexpected)
	}
	// The mix must actually exercise the hierarchy surface.
	for _, route := range []string{"POST /v1/analyze", "POST /v1/rebalance", "POST /v1/roofline", "POST /v1/sweep", "GET /v1/catalog"} {
		if sum.Routes[route] == nil || sum.Routes[route].Count == 0 {
			t.Errorf("route %s never exercised", route)
		}
	}
	res := sum.Report()
	sum.AddP99Gate(res, 5*time.Second)
	if !res.Pass() {
		t.Errorf("soak gates failed: %+v", res.Claims)
	}
}

// TestGCGate exercises the GC-pressure claim: within baseline+20% passes,
// beyond fails, and a zero baseline is a vacuous pass.
func TestGCGate(t *testing.T) {
	sum := &Summary{Requests: 4000, MemNumGC: 10} // 2.5 GCs per 1k requests
	if got := sum.GCPer1kRequests(); got != 2.5 {
		t.Fatalf("GCPer1kRequests = %v, want 2.5", got)
	}
	for _, tc := range []struct {
		baseline float64
		pass     bool
	}{
		{2.5, true},  // at baseline
		{2.1, true},  // 2.5 ≤ 2.1 × 1.2 = 2.52
		{2.0, false}, // 2.5 > 2.0 × 1.2 = 2.4
		{0, true},    // no baseline recorded yet: vacuous pass
	} {
		res := &report.Result{}
		sum.AddGCGate(res, tc.baseline)
		if res.Pass() != tc.pass {
			t.Errorf("baseline %v: pass = %v, want %v (claims %+v)",
				tc.baseline, res.Pass(), tc.pass, res.Claims)
		}
	}
	// A run that issued nothing must not divide by zero.
	if got := (&Summary{}).GCPer1kRequests(); got != 0 {
		t.Errorf("empty run GCPer1kRequests = %v, want 0", got)
	}

	// The memstats land in the report as a series — that is the soak JSON
	// artifact the gate's numbers are read back from.
	res := (&Summary{Requests: 1000, MemNumGC: 3, MemTotalAllocBytes: 1 << 20,
		Routes: map[string]*RouteSummary{}}).Report()
	found := false
	for _, s := range res.Series {
		if s.Name != "memstats" {
			continue
		}
		found = true
		want := []string{"total_alloc_bytes", "num_gc", "gc_per_1k_requests"}
		if strings.Join(s.Columns, ",") != strings.Join(want, ",") {
			t.Errorf("memstats columns = %v", s.Columns)
		}
		if s.Rows[0][0] != 1<<20 || s.Rows[0][1] != 3 || s.Rows[0][2] != 3 {
			t.Errorf("memstats row = %v", s.Rows[0])
		}
	}
	if !found {
		t.Error("report has no memstats series")
	}
}

func TestHistQuantiles(t *testing.T) {
	h := newHist()
	// 90 fast observations, 10 slow: p50 in the fast bucket, p99 slow.
	for i := 0; i < 90; i++ {
		h.observe(0.00008) // ≤ 0.0001 bucket
	}
	for i := 0; i < 10; i++ {
		h.observe(0.2) // ≤ 0.25 bucket
	}
	if got := h.quantile(0.50); got != 0.0001 {
		t.Errorf("p50 = %v, want 0.0001", got)
	}
	if got := h.quantile(0.99); got != 0.25 {
		t.Errorf("p99 = %v, want 0.25", got)
	}
	if h.max != 0.2 || h.n != 100 {
		t.Errorf("max %v n %d", h.max, h.n)
	}
	// Overflow: beyond the last bucket the quantile reports the exact max.
	h2 := newHist()
	h2.observe(99)
	if got := h2.quantile(0.99); got != 99 {
		t.Errorf("overflow quantile = %v, want the exact max 99", got)
	}
}

func TestBucketIndex(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	for _, tc := range []struct {
		v    float64
		want int
	}{{0.0005, 0}, {0.001, 0}, {0.002, 1}, {0.1, 2}, {5, 3}} {
		if got := BucketIndex(bounds, tc.v); got != tc.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestCrossCheckAgainstLiveMetrics runs a scenario in process and requires
// the loadgen quantiles and the server's own histograms to agree within one
// bucket — the instrument calibrating itself against the subject.
func TestCrossCheckAgainstLiveMetrics(t *testing.T) {
	srv := server.New(server.Options{Parallelism: 2})
	c := client.NewFromHandler(srv.Handler())
	sc, _ := Get("analyze-heavy")
	sum, err := Run(context.Background(), c, Config{Scenario: sc, Seed: 3, Workers: 4, MaxRequests: 300})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if problems := CrossCheck(sum, m); len(problems) != 0 {
		t.Errorf("cross-check failed:\n%s", strings.Join(problems, "\n"))
	}
}

// TestCrossCheckDetectsDisagreement feeds a doctored snapshot and expects
// the check to flag it.
func TestCrossCheckDetectsDisagreement(t *testing.T) {
	sum := &Summary{Routes: map[string]*RouteSummary{
		"POST /v1/analyze": {Count: 100, P50Seconds: 0.0001, P95Seconds: 0.0001, P99Seconds: 0.0001},
	}}
	m := &client.MetricsSnapshot{RouteLatency: map[string]client.RouteLatency{
		"POST /v1/analyze": {Count: 100, P50Seconds: 1, P95Seconds: 1, P99Seconds: 1},
	}}
	if problems := CrossCheck(sum, m); len(problems) != 3 {
		t.Errorf("want 3 quantile discrepancies, got %v", problems)
	}
	// A route the server never saw is its own discrepancy.
	m2 := &client.MetricsSnapshot{RouteLatency: map[string]client.RouteLatency{}}
	if problems := CrossCheck(sum, m2); len(problems) != 1 {
		t.Errorf("missing-route case: got %v", problems)
	}
	// Below the sample floor the route is skipped.
	sum.Routes["POST /v1/analyze"].Count = 5
	if problems := CrossCheck(sum, m); len(problems) != 0 {
		t.Errorf("under-sampled route should be skipped, got %v", problems)
	}
}

func TestReportShape(t *testing.T) {
	c := testClient(t)
	sc, _ := Get("analyze-heavy")
	sum, err := Run(context.Background(), c, Config{Scenario: sc, Seed: 9, Workers: 2, MaxRequests: 25})
	if err != nil {
		t.Fatal(err)
	}
	res := sum.Report()
	if !res.Pass() {
		t.Errorf("clean run's report does not pass: %+v", res.Claims)
	}
	var text strings.Builder
	if err := res.Render(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LOAD", "analyze-heavy", "POST /v1/analyze", "p99 ms"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	if len(res.Series) == 0 {
		t.Error("report has no per-route series")
	}

	// The p99 ceiling gate: an absurdly low ceiling must fail the report.
	sum.AddP99Gate(res, time.Nanosecond)
	if res.Pass() {
		t.Error("1ns p99 ceiling did not fail the report")
	}

	// The cross-check gate against live metrics passes on a fresh run.
	res2 := sum.Report()
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	AddCrossCheckGate(res2, sum, m)
	if len(res2.Claims) != 2 {
		t.Errorf("report has %d claims, want 2", len(res2.Claims))
	}
}
