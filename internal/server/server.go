// Package server puts the balance model behind a production-shaped HTTP
// JSON API — balance-as-a-service. A capacity planner asks the same
// questions the paper answers analytically: is this machine balanced for
// this workload (POST /v1/analyze), how much memory does a faster processor
// need (POST /v1/rebalance), what does the roofline look like
// (POST /v1/roofline), what ratio curve does a real kernel measure
// (POST /v1/sweep), and do the paper's claims still reproduce
// (GET|POST /v1/experiments). Heterogeneous requests batch through
// POST /v1/batch, which fans out across an engine.Pool with deterministic
// result ordering; sweeps memoize through an engine.Cache with
// single-flight semantics, so a stampede of identical queries runs the
// kernels once. Work too big for one request goes through the durable
// async surface (POST /v1/jobs and friends, enabled by Options.StoreDir):
// submissions are journaled to a WAL before the ack, executed by queue
// workers through the same cores, and their results stored
// content-addressed so identical requests — across restarts — never
// re-execute (see internal/jobs, internal/store, DESIGN.md §6).
//
// The package is stdlib-only (net/http, log/slog) and exposes its handler
// as a plain http.Handler so embedders can mount it anywhere; cmd/balarchd
// is the thin daemon around it, and balarch.NewServerHandler is the public
// facade. Errors use one typed envelope ({"error": {code, message}}):
// malformed bodies are 400, unknown experiments/series 404, semantically
// invalid requests 422, recovered panics and surprises 500. Middleware
// (recover, logging+metrics, concurrency limiting, per-request timeouts)
// composes as func(http.Handler) http.Handler.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"balarch/internal/engine"
	"balarch/internal/experiments"
	"balarch/internal/jobs"
	"balarch/internal/kernels"
	"balarch/internal/model"
	"balarch/internal/obs"
	"balarch/internal/report"
	"balarch/internal/roofline"
	"balarch/internal/store"
)

// Options configures a Server. The zero value serves with sane defaults:
// GOMAXPROCS sweep parallelism, 1 MiB bodies, 64-item batches, a 60 s
// per-request budget, twice-GOMAXPROCS concurrent requests, and no logging.
type Options struct {
	// Parallelism bounds the engine pools under sweeps, experiment runs,
	// and batch fan-out. ≤ 0 means GOMAXPROCS.
	Parallelism int
	// RequestTimeout is the per-request context budget; 0 means the
	// 60 s default, negative disables the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxBatch caps BatchRequest.Requests; 0 means 64.
	MaxBatch int
	// MaxInFlight caps concurrently handled requests; 0 means
	// 2×GOMAXPROCS, negative disables the limiter.
	MaxInFlight int
	// Logger receives structured request and panic logs; nil disables
	// logging (metrics still record). Routine request lines log at
	// Debug; 5xx responses log at Warn regardless of level.
	Logger *slog.Logger

	// TraceSampleEvery tunes request-trace head sampling: one in every N
	// requests arriving without a traceparent is captured into the trace
	// ring. 0 means the default (128); negative disables head sampling —
	// requests carrying a sampled traceparent or the trace=1 opt-in are
	// still captured.
	TraceSampleEvery int

	// Tenants enables API-key tenancy: requests resolve to a tenant via
	// Authorization: Bearer <key>, each tenant gets its own token-bucket
	// rate limit and job byte budget, and /metrics grows a bounded
	// per-tenant section. nil (the default) disables tenancy entirely —
	// no auth, no limiting, byte-identical responses to an untenanted
	// build. The config must be valid (ParseTenantsConfig and
	// LoadTenantsFile only produce valid configs); New panics on a
	// hand-built invalid one, like any other programmer error.
	Tenants *TenantsConfig

	// StoreDir enables the durable async subsystem: the content-addressed
	// result store and the WAL-journaled job queue live under this
	// directory, and the /v1/jobs endpoints come alive. Empty disables
	// jobs (the endpoints answer 404 jobs_disabled).
	StoreDir string
	// JobWorkers is the queue's executor count. 0 means 2; negative
	// means none — the queue accepts and journals but does not execute.
	JobWorkers int
	// MemBudgetBytes caps the summed estimated footprint of queued and
	// running jobs (admission control; over-budget submits are 429).
	// 0 means 256 MiB; negative disables the budget.
	MemBudgetBytes int64
	// JobTTL is how long terminal jobs stay queryable before GC.
	// 0 means 15 minutes; negative keeps them forever.
	JobTTL time.Duration
	// JobTimeout bounds one job's execution. 0 means 10 minutes;
	// negative disables the per-job deadline. Deliberately independent
	// of RequestTimeout: outliving one HTTP request is the point of a
	// job.
	JobTimeout time.Duration
	// JobSchedPolicy selects the queue's pick policy by name: "" or
	// "balanced" for memory-aware, tenant-fair scheduling; "fifo" for
	// strict global submission order. An unknown name fails the async
	// subsystem open (reported via JobsErr), not the whole server.
	JobSchedPolicy string

	// NodeID, when set, stamps every response with NodeHeader — how a
	// cluster gateway's clients (and tests) see which member actually
	// served a request. Empty (the default) adds nothing: single-node
	// deployments keep byte-identical response headers.
	NodeID string
}

// NodeHeader is the response header carrying Options.NodeID.
const NodeHeader = "X-Balarch-Node"

const (
	defaultRequestTimeout = 60 * time.Second
	defaultMaxBodyBytes   = 1 << 20
	defaultMaxBatch       = 64
	defaultJobTimeout     = 10 * time.Minute
)

// Server owns the API's long-lived state: the sweep memo shared across
// requests, the metrics, the resolved options, and — when StoreDir is
// set — the content-addressed result store and the durable job queue.
// Create one with New and mount Handler; Close a jobs-enabled server to
// drain its queue.
type Server struct {
	opts             Options
	metrics          *Metrics
	sweeps           *engine.Cache[[]kernels.RatioPoint]
	maxMemoryDefault float64

	// tracer captures request traces; stages is the always-on per-stage
	// latency registry (internal/obs), on the same bucket bounds as the
	// route histograms.
	tracer *obs.Tracer
	stages *obs.StageSet

	// draining flips /readyz to 503: set by StartDrain when graceful
	// shutdown begins, so load balancers stop sending new work while
	// in-flight requests finish.
	draining atomic.Bool

	// tenants is the resolved tenancy table (nil when Options.Tenants is
	// nil — the untenanted fast path).
	tenants *tenancy

	// events fans job transitions and engine progress out to SSE
	// subscribers; sseHeartbeat overrides the keep-alive interval
	// (tests shrink it), 0 meaning defaultHeartbeatInterval.
	events       *eventBus
	sseHeartbeat time.Duration

	store   *store.Store
	queue   *jobs.Queue
	jobsErr error // why the async subsystem failed to open, if it did
}

// New resolves opts and returns a ready Server. When opts.StoreDir is
// set, the async subsystem opens under it (replaying the store index and
// the job WAL); an open failure does not fail New — the synchronous API
// must still serve — but the /v1/jobs endpoints report it as 500s, and
// JobsErr exposes it to the daemon for logging.
func New(opts Options) *Server {
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = defaultRequestTimeout
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = defaultMaxBodyBytes
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = defaultMaxBatch
	}
	if opts.JobTimeout == 0 {
		opts.JobTimeout = defaultJobTimeout
	}
	s := &Server{
		opts:             opts,
		metrics:          NewMetrics(),
		sweeps:           &engine.Cache[[]kernels.RatioPoint]{},
		maxMemoryDefault: 1e18,
		events:           newEventBus(0),
		tracer:           obs.NewTracer(obs.TracerOptions{SampleEvery: opts.TraceSampleEvery}),
		stages:           obs.NewStageSet(latencyBuckets),
	}
	if opts.Tenants != nil {
		if err := opts.Tenants.Validate(); err != nil {
			panic(fmt.Sprintf("server: invalid tenants config: %v", err))
		}
		s.tenants = newTenancy(opts.Tenants)
		// Preregister the counter slots before any request can account:
		// the fixed name set is the metrics cardinality bound.
		s.metrics.RegisterTenants(s.tenants.names())
	}
	if opts.StoreDir != "" {
		s.openJobs()
	}
	return s
}

// openJobs brings up the store and the queue under opts.StoreDir.
func (s *Server) openJobs() {
	st, err := store.Open(filepath.Join(s.opts.StoreDir, "store"), store.Options{
		Observe: s.observeStoreOp,
	})
	if err != nil {
		s.jobsErr = err
		return
	}
	jt := s.opts.JobTimeout
	if jt < 0 {
		jt = 0 // jobs.Options treats 0 as "no deadline"
	}
	policy, err := jobs.PolicyByName(s.opts.JobSchedPolicy)
	if err != nil {
		st.Close()
		s.jobsErr = err
		return
	}
	var (
		tenantBudgets map[string]int64
		tenantWeights map[string]int
	)
	if s.tenants != nil {
		tenantBudgets = s.tenants.jobBudgets()
		tenantWeights = s.tenants.jobWeights()
	}
	q, err := jobs.Open(filepath.Join(s.opts.StoreDir, "jobs"), st, s.jobExecutor(), jobs.Options{
		Workers:        s.opts.JobWorkers,
		MemBudgetBytes: s.opts.MemBudgetBytes,
		TenantBudgets:  tenantBudgets,
		TenantWeights:  tenantWeights,
		Policy:         policy,
		TTL:            s.opts.JobTTL,
		JobTimeout:     jt,
		Notify:         s.publishJobTransition,
		Observe:        s.observeJobStage,
	})
	if err != nil {
		st.Close()
		s.jobsErr = err
		return
	}
	s.store, s.queue = st, q
}

// Jobs returns the server's queue (nil when jobs are disabled) — the
// daemon uses it for shutdown accounting, tests for direct inspection.
func (s *Server) Jobs() *jobs.Queue { return s.queue }

// JobsErr reports why the async subsystem failed to open, or nil.
func (s *Server) JobsErr() error { return s.jobsErr }

// Close drains the async subsystem: running jobs get until ctx to
// finish (then they are cut, to be requeued by the next open), queued
// jobs stay journaled, and the store's index log closes cleanly. A
// jobs-disabled server's Close is a no-op.
func (s *Server) Close(ctx context.Context) error {
	// End every SSE stream first (terminal "dropped" event, reason
	// shutting_down) so no handler goroutine blocks the queue drain
	// waiting on events that will never come.
	s.events.close()
	var err error
	if s.queue != nil {
		err = s.queue.Close(ctx)
	}
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Metrics exposes the server's instrumentation, for embedders and tests.
func (s *Server) Metrics() *Metrics { return s.metrics }

// ResetCache drops the sweep memo (tests and long-lived embedders).
func (s *Server) ResetCache() { s.sweeps.Reset() }

// Handler returns the full API behind the middleware stack:
// requestid(logging+metrics(recover(limiter(mux)))). RequestID
// sits outermost so every response — including a limiter 503 or a recovered
// panic — carries the correlation header, and so Logging (inside it) can
// log the id. No request copy separates Logging from the mux
// (the mux stamps the matched pattern on the request it serves; a copy
// in between would hide it from the route metrics). Recover sits inside
// Logging so a recovered panic's 500 is still logged, counted, and
// decremented from the in-flight gauge. Health and metrics probes
// bypass the limiter: a saturated server must still answer its load
// balancer.
//
// The per-request budget (Options.RequestTimeout) is applied inside the
// operations whose elapsed time can actually grow — sweep flights
// (runSweep), experiment runs (runExperiment), and batch fan-out — rather
// than by a chain-wide timeout middleware: a context.WithTimeout on every
// request costs several allocations, and the analytic endpoints it would
// cover are microsecond-scale arithmetic with service caps on their loop
// counts (maxRooflinePoints, maxSweepPoints, maxHierarchyLevels).
// WithTimeout remains exported for embedders composing their own stacks.
func (s *Server) Handler() http.Handler {
	limit := s.opts.MaxInFlight
	if limit == 0 {
		limit = 2 * engine.ParallelismFrom(context.Background())
	}
	h := Chain(s.mux(),
		RequestID(),
		Observe(s.opts.Logger, s.metrics, s.tracer),
		Recover(s.opts.Logger, s.metrics),
		s.tenancyMiddleware(),
		LimitConcurrency(limit, "/healthz", "/readyz", "/metrics"),
	)
	if s.opts.NodeID != "" {
		h = nodeIDMiddleware(s.opts.NodeID, h)
	}
	return h
}

// nodeIDMiddleware stamps NodeHeader on every response. Outermost in the
// chain so even limiter rejections and recovered panics carry the node
// identity.
func nodeIDMiddleware(id string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(NodeHeader, id)
		next.ServeHTTP(w, r)
	})
}

// obsStage closes one pipeline stage opened at t0: the duration joins
// the always-on stage histogram, and — when the request is traced — a
// span on its trace. tr is nil for untraced requests; every Trace
// method is nil-safe.
func (s *Server) obsStage(tr *obs.Trace, st obs.Stage, t0 time.Time) {
	d := time.Since(t0)
	s.stages.Observe(st, d)
	tr.Add(st, t0, d)
}

// observeStoreOp is the store's stage hook: disk reads and writes of
// content-addressed results, mapped onto the stage registry.
func (s *Server) observeStoreOp(op string, d time.Duration) {
	switch op {
	case "put":
		s.stages.Observe(obs.StageStorePut, d)
	case "get":
		// A store read on the job path is part of serving a result; it
		// shares the cache_lookup stage with the sweep memo probe.
		s.stages.Observe(obs.StageCacheLookup, d)
	}
}

// observeJobStage is the queue's stage hook (jobs.Options.Observe): it
// runs under the queue's lock, so it must stay a few atomic adds.
func (s *Server) observeJobStage(stage string, d time.Duration) {
	if st, ok := obs.StageByName(stage); ok {
		s.stages.Observe(st, d)
	}
}

// Stages exposes the per-stage latency registry, for embedders and tests.
func (s *Server) Stages() *obs.StageSet { return s.stages }

// StartDrain flips /readyz to 503 draining. The daemon calls it when
// graceful shutdown begins — before http.Server.Shutdown — so a load
// balancer's readiness probe sees the drain while in-flight requests
// (and the liveness probe) still complete normally. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// opBudget applies the per-request budget to an operation that does real
// work. It is the request-scoped counterpart of the old chain-wide timeout
// middleware, paid only where time is actually spent.
func (s *Server) opBudget(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.opts.RequestTimeout)
	}
	return ctx, func() {}
}

// apiRoute is one routed endpoint: the mux pattern, the one-line
// description the GET /v1/ index serves for it, and its handler
// (selected per server, since handlers are methods).
type apiRoute struct {
	pattern string
	desc    string
	handler func(*Server) http.HandlerFunc
}

// apiRoutes is the single source of truth for the API surface: the mux,
// the metrics' preregistered route slots (routePatterns, metrics.go),
// and the machine-readable GET /v1/ index are all generated from it, so
// a route cannot exist in one and be missing from the others.
//
// Note "GET /v1/{$}": on the 1.22 ServeMux a bare "GET /v1/" is a
// subtree pattern that would swallow every unknown GET under /v1/ away
// from the catch-all (breaking the unknown_route envelope); {$}
// restricts it to the exact path.
var apiRoutes = []apiRoute{
	{"GET /healthz", "liveness probe: status, uptime, experiment count",
		func(s *Server) http.HandlerFunc { return s.handleHealthz }},
	{"GET /readyz", "readiness probe: 200 ready, 503 draining during graceful shutdown",
		func(s *Server) http.HandlerFunc { return s.handleReadyz }},
	{"GET /metrics", "instrumentation snapshot: per-route counters, latency histograms, cache and job gauges, per-tenant slices; ?format=prometheus for text exposition",
		func(s *Server) http.HandlerFunc { return s.handleMetrics }},
	{"GET /v1/{$}", "this index: every route, error code, computation id, and experiment id the API serves",
		func(s *Server) http.HandlerFunc { return s.handleAPIIndex }},
	{"GET /v1/catalog", "the computation catalog: wire ids, paper sections, growth laws, ratio families",
		func(s *Server) http.HandlerFunc { return s.handleCatalog }},
	{"POST /v1/analyze", "balance diagnosis for a PE (or memory hierarchy) against a catalog computation",
		func(s *Server) http.HandlerFunc { return s.handleAnalyze }},
	{"POST /v1/rebalance", "memory required to keep a computation balanced after a speedup of alpha",
		func(s *Server) http.HandlerFunc { return jsonHandler(s, s.rebalance) }},
	{"POST /v1/roofline", "roofline model evaluation across computations and a memory sweep",
		func(s *Server) http.HandlerFunc { return jsonHandler(s, s.roofline) }},
	{"POST /v1/sweep", "measured compute/IO ratio curve for a real kernel (memoized, single-flight)",
		func(s *Server) http.HandlerFunc { return s.handleSweep }},
	{"POST /v1/emulation", "Hanlon's emulation analysis: N memory modules behaving as one large memory, vs the ideal flat machine",
		func(s *Server) http.HandlerFunc { return jsonHandler(s, s.emulation) }},
	{"GET /v1/experiments", "the experiment registry: paper reproductions by id",
		func(s *Server) http.HandlerFunc { return s.handleExperimentList }},
	{"POST /v1/experiments/{id}", "run one experiment; ?format=csv|text, ?series=<name>, ?stream=1 for SSE progress",
		func(s *Server) http.HandlerFunc { return s.handleExperimentRun }},
	{"POST /v1/batch", "heterogeneous request fan-out with deterministic result ordering",
		func(s *Server) http.HandlerFunc { return jsonHandler(s, s.batch) }},
	{"POST /v1/jobs", "submit a durable async job (same {op, request} envelope as a batch item)",
		func(s *Server) http.HandlerFunc { return s.handleJobSubmit }},
	{"GET /v1/jobs", "list jobs, newest first; ?state=<state>, ?limit=<n> and ?cursor=<token> paginate",
		func(s *Server) http.HandlerFunc { return s.handleJobList }},
	{"GET /v1/jobs/{id}", "poll one job's status",
		func(s *Server) http.HandlerFunc { return s.handleJobGet }},
	{"GET /v1/jobs/{id}/result", "a done job's stored result, byte-identical to the synchronous response",
		func(s *Server) http.HandlerFunc { return s.handleJobResult }},
	{"GET /v1/jobs/{id}/events", "SSE stream of one job's lifecycle: state, progress, done",
		func(s *Server) http.HandlerFunc { return s.handleJobEvents }},
	{"DELETE /v1/jobs/{id}", "cancel a live job or forget a terminal one",
		func(s *Server) http.HandlerFunc { return s.handleJobDelete }},
}

// mux routes the API surface from the apiRoutes table.
func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	for _, rt := range apiRoutes {
		mux.HandleFunc(rt.pattern, rt.handler(s))
	}
	// The catch-all keeps the error envelope on every non-2xx: unknown
	// paths AND wrong methods on known paths land here (trading away the
	// mux's native 405), so the message names both possibilities.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, notFound("unknown_route",
			"no route matches %s %s (unknown path, or wrong method for a known one)",
			r.Method, r.URL.Path))
	})
	return mux
}

// --- API index ---

// APIRouteInfo is one route in the GET /v1/ index.
type APIRouteInfo struct {
	Method      string `json:"method"`
	Path        string `json:"path"`
	Description string `json:"description"`
}

// APIIndexResponse is the GET /v1/ body: the API surface as data —
// every route, every error code the envelope can carry, every catalog
// computation id, every experiment id. Generated from the same tables
// the server routes and resolves with, so it cannot advertise what the
// API would reject (or omit what it serves).
type APIIndexResponse struct {
	Service      string         `json:"service"`
	Routes       []APIRouteInfo `json:"routes"`
	ErrorCodes   []string       `json:"error_codes"`
	Computations []string       `json:"computations"`
	Experiments  []string       `json:"experiments"`
}

// handleAPIIndex serves GET /v1/ (exact path). The listing is static —
// encoded once and replayed, like the catalog.
var (
	apiIndexOnce  sync.Once
	apiIndexBytes []byte
)

func (s *Server) handleAPIIndex(w http.ResponseWriter, _ *http.Request) {
	apiIndexOnce.Do(func() {
		data, err := encodeJSONBody(apiIndexResponse())
		if err != nil {
			panic(err) // static data over marshalable types; cannot fail
		}
		apiIndexBytes = data
	})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(apiIndexBytes)
}

// apiIndexRoutes is apiRoutes, copied by init(): apiIndexResponse
// ranging apiRoutes directly would close an initialization cycle
// (apiRoutes → handleAPIIndex → apiIndexResponse → apiRoutes); init
// functions run after variable initialization, outside that graph.
var apiIndexRoutes []apiRoute

func init() { apiIndexRoutes = apiRoutes }

// apiIndexResponse assembles the index from the route table, the error
// code registry, the computation resolver's id list, and the experiment
// registry.
func apiIndexResponse() APIIndexResponse {
	resp := APIIndexResponse{
		Service:      "balarch",
		Routes:       []APIRouteInfo{},
		ErrorCodes:   errorCodes(),
		Computations: append([]string{}, computationNames...),
		Experiments:  []string{},
	}
	for _, rt := range apiIndexRoutes {
		method, path, _ := strings.Cut(rt.pattern, " ")
		// "{$}" is mux syntax for "this exact path"; the wire path is
		// what a client actually requests.
		path = strings.TrimSuffix(path, "{$}")
		resp.Routes = append(resp.Routes, APIRouteInfo{
			Method: method, Path: path, Description: rt.desc,
		})
	}
	for _, e := range experiments.Registry() {
		resp.Experiments = append(resp.Experiments, e.ID)
	}
	return resp
}

// jsonHandler adapts a decode→core→encode operation: strict-decodes Req,
// runs the core, writes the response or the error envelope. The same core
// functions serve /v1/batch, so standalone and batched requests cannot
// drift apart.
func jsonHandler[Req any, Resp any](s *Server, core func(context.Context, *Req) (Resp, *apiError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.TraceFrom(r.Context())
		t0 := time.Now()
		var req Req
		apiErr := decodeStrict(w, r, s.opts.MaxBodyBytes, &req)
		s.obsStage(tr, obs.StageDecode, t0)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		t0 = time.Now()
		resp, apiErr := core(r.Context(), &req)
		s.obsStage(tr, obs.StageCompute, t0)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		t0 = time.Now()
		writeJSON(w, resp)
		s.obsStage(tr, obs.StageEncode, t0)
	}
}

// sweepContext attaches the server's parallelism hint and span observer
// for the engine pools beneath kernel sweeps and experiment runs: every
// pool job's elapsed time lands in the compute stage histogram, so the
// stage profile sees per-point kernel costs even on detached
// single-flight sweeps (the observer touches only the server-lifetime
// StageSet — never a pooled per-request trace record).
func (s *Server) sweepContext(ctx context.Context) context.Context {
	ctx = engine.WithParallelism(ctx, s.opts.Parallelism)
	return engine.WithSpanObserver(ctx, s.observePoolJob)
}

// observePoolJob feeds one engine pool job into the compute stage.
// Cache-served jobs are skipped: their elapsed time is a map probe, and
// counting it would drown the histogram's real kernel costs.
func (s *Server) observePoolJob(_ string, elapsed time.Duration, cached bool) {
	if !cached {
		s.stages.Observe(obs.StageCompute, elapsed)
	}
}

// readBody reads the whole request body into a pooled buffer, enforcing
// MaxBodyBytes: a known over-limit length is an immediate 413 (the same
// code and message http.MaxBytesReader produces), an unknown-length body
// reads through http.MaxBytesReader. On success the caller owns the
// returned buffer and must putBuf it.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (*byteBuf, *apiError) {
	maxBytes := s.opts.MaxBodyBytes
	if cl := r.ContentLength; cl >= 0 {
		if cl > maxBytes {
			return nil, asAPIError(&http.MaxBytesError{Limit: maxBytes})
		}
		bb := getBuf()
		if int64(cap(bb.b)) < cl {
			bb.b = make([]byte, cl)
		} else {
			bb.b = bb.b[:cl]
		}
		n, err := io.ReadFull(r.Body, bb.b)
		bb.b = bb.b[:n]
		switch err {
		case nil, io.ErrUnexpectedEOF, io.EOF:
			// A short or empty body keeps its partial bytes: the decode
			// step produces the stdlib's canonical truncation/empty-body
			// error from them.
			return bb, nil
		default:
			putBuf(bb)
			return nil, badRequest("bad_json", "%v", err)
		}
	}
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	bb := getBuf()
	b := bb.b[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err != nil {
			bb.b = b
			if err == io.EOF {
				return bb, nil
			}
			putBuf(bb)
			return nil, asDecodeError(err)
		}
	}
}

// decodeBody strict-decodes data into the pooled request DTO: the
// allocation-free fast decoder first, and on any deviation from its subset
// a zeroed replay through strictDecodeJSON, so accepted inputs decode
// exactly as encoding/json would and rejected ones carry its exact errors.
func decodeBody[Req any](req *Req, data []byte) *apiError {
	if fastDecodeRequest(req, data) {
		return nil
	}
	var zero Req
	*req = zero
	return strictDecodeJSON(bytes.NewReader(data), req)
}

// handleAnalyze is POST /v1/analyze: jsonHandler's decode→core→encode with
// the pooled request/response DTOs and buffers threaded through, so the
// cached path completes without heap allocation.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	t0 := time.Now()
	bb, apiErr := s.readBody(w, r)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	req := getAnalyzeRequest()
	apiErr = decodeBody(req, bb.b)
	putBuf(bb)
	s.obsStage(tr, obs.StageDecode, t0)
	if apiErr != nil {
		putAnalyzeRequest(req)
		writeError(w, apiErr)
		return
	}
	t0 = time.Now()
	resp, apiErr := s.analyze(r.Context(), req)
	s.obsStage(tr, obs.StageCompute, t0)
	if apiErr != nil {
		putAnalyzeRequest(req)
		writeError(w, apiErr)
		return
	}
	t0 = time.Now()
	writeJSON(w, resp)
	s.obsStage(tr, obs.StageEncode, t0)
	releaseBody(resp) // before the request: resp.Levels may alias req.Levels
	putAnalyzeRequest(req)
}

// handleSweep is POST /v1/sweep, pooled like handleAnalyze.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	t0 := time.Now()
	bb, apiErr := s.readBody(w, r)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	req := getSweepRequest()
	apiErr = decodeBody(req, bb.b)
	putBuf(bb)
	s.obsStage(tr, obs.StageDecode, t0)
	if apiErr != nil {
		putSweepRequest(req)
		writeError(w, apiErr)
		return
	}
	// runSweep records the cache_lookup and compute stages itself: the
	// memo probe and the (possibly joined) kernel flight are distinct
	// pipeline stages, not one opaque "core" span.
	resp, apiErr := s.sweep(r.Context(), req)
	if apiErr != nil {
		putSweepRequest(req)
		writeError(w, apiErr)
		return
	}
	t0 = time.Now()
	writeJSON(w, resp)
	s.obsStage(tr, obs.StageEncode, t0)
	releaseBody(resp)
	putSweepRequest(req)
}

// --- core operations (shared by handlers and /v1/batch) ---

// analyze diagnoses a PE — or, when the request carries levels, a whole
// memory hierarchy — against a catalog computation.
func (s *Server) analyze(_ context.Context, req *AnalyzeRequest) (*AnalyzeResponse, *apiError) {
	comp, apiErr := resolveComputation(req.Computation)
	if apiErr != nil {
		return nil, apiErr
	}
	maxM := req.MaxMemory
	if maxM == 0 {
		maxM = s.maxMemoryDefault
	}
	if len(req.Levels) > 0 {
		return s.analyzeHierarchy(req, comp, maxM)
	}
	a, err := model.Analyze(req.PE.toModel(), comp, maxM)
	if err != nil {
		// Analyze fails only on invalid PE parameters.
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	resp := getAnalyzeResponse()
	resp.Computation = comp.Name
	resp.Section = comp.Section
	resp.PE = peDTO(a.PE)
	resp.Intensity = a.Intensity
	resp.AchievableRatio = a.AchievableRatio
	resp.State = balanceStateName(a.State)
	resp.BalancedMemory = a.BalancedMemory
	resp.Rebalanceable = a.Rebalanceable
	resp.Law = lawDescription(comp.Law)
	return resp, nil
}

// rebalance answers the memory-growth question numerically and in closed
// form. An I/O-bounded computation is a valid question with the answer
// "impossible" (200, rebalanceable=false), not an error.
func (s *Server) rebalance(_ context.Context, req *RebalanceRequest) (*RebalanceResponse, *apiError) {
	comp, apiErr := resolveComputation(req.Computation)
	if apiErr != nil {
		return nil, apiErr
	}
	maxM := req.MaxMemory
	if maxM == 0 {
		maxM = s.maxMemoryDefault
	}
	if len(req.Levels) > 0 {
		return s.rebalanceHierarchy(req, comp, maxM)
	}
	if req.C != 0 {
		return nil, unprocessable("invalid_argument",
			"c is a hierarchy field: it needs a levels array (flat rebalance takes only alpha and m_old)")
	}
	resp := &RebalanceResponse{
		Computation: comp.Name,
		Alpha:       req.Alpha,
		MOld:        req.MOld,
		Law:         lawDescription(comp.Law),
	}
	mNew, err := comp.Rebalance(req.Alpha, req.MOld, maxM)
	switch {
	case err == nil:
		resp.Rebalanceable = true
		resp.MNew = mNew
		if cf, cfErr := comp.RebalanceClosedForm(req.Alpha, req.MOld); cfErr == nil {
			resp.MClosedForm = cf
		}
	case errors.Is(err, model.ErrNotRebalanceable):
		resp.Rebalanceable = false
	default:
		// Argument validation: alpha/m_old out of range.
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	return resp, nil
}

// rooflineOp evaluates the roofline model — single-ridge for a flat PE,
// multi-ridge when the request carries levels — across the requested
// computations and memory sweep.
func (s *Server) roofline(_ context.Context, req *RooflineRequest) (*RooflineResponse, *apiError) {
	if len(req.Computations) == 0 {
		return nil, unprocessable("invalid_argument", "computations must list at least one entry")
	}
	comps := make([]model.Computation, len(req.Computations))
	for i, dto := range req.Computations {
		comp, apiErr := resolveComputation(dto)
		if apiErr != nil {
			return nil, apiErr
		}
		comps[i] = comp
	}
	if len(req.Levels) > 0 {
		return s.rooflineHierarchy(req, comps)
	}
	if req.SweepLevel != 0 {
		return nil, unprocessable("invalid_argument",
			"sweep_level is a hierarchy field: it needs a levels array")
	}
	m, err := roofline.New(req.PE.toModel())
	if err != nil {
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	lo, hi, step := req.MemLo, req.MemHi, req.Step
	if step == 0 {
		step = 4
	}
	if apiErr := checkRooflinePoints(lo, hi, step); apiErr != nil {
		return nil, apiErr
	}
	resp := &RooflineResponse{PE: req.PE, RidgeIntensity: m.RidgeIntensity()}
	for _, comp := range comps {
		pts, err := m.Path(comp, lo, hi, step)
		if err != nil {
			return nil, unprocessable("invalid_argument", "%v", err)
		}
		path := RooflinePathDTO{Computation: comp.Name}
		for _, p := range pts {
			path.Points = append(path.Points, RooflinePointDTO{
				Memory:       p.Memory,
				Intensity:    p.Intensity,
				Attainable:   p.Attainable,
				ComputeBound: p.ComputeBound,
			})
		}
		resp.Paths = append(resp.Paths, path)
	}
	if req.Chart {
		chart, err := m.Chart(comps, lo, hi)
		if err != nil {
			return nil, unprocessable("invalid_argument", "%v", err)
		}
		resp.Chart = chart
	}
	return resp, nil
}

// sweep is the core behind POST /v1/sweep.
func (s *Server) sweep(ctx context.Context, req *SweepRequest) (*SweepResponse, *apiError) {
	return s.runSweep(ctx, req)
}

// maxRooflinePoints caps a roofline path's geometric sweep. With the
// chain-wide timeout gone from Handler, a step barely above 1 would
// otherwise make the sampling loop the one unbounded computation in the
// analytic endpoints.
const maxRooflinePoints = 4096

// checkRooflinePoints rejects sweeps whose geometric point count exceeds
// the service cap. Parameters roofline.Path itself rejects pass through so
// its canonical validation errors are preserved.
func checkRooflinePoints(lo, hi, step float64) *apiError {
	if !(lo > 0) || !(hi >= lo) || !(step > 1) {
		return nil
	}
	if n := math.Log(hi/lo) / math.Log(step); !(n < maxRooflinePoints) {
		return unprocessable("invalid_argument",
			"memory sweep [%g, %g] at step %g is ~%.0f points, service cap is %d",
			lo, hi, step, n, maxRooflinePoints)
	}
	return nil
}

// --- catalog ---

// handleCatalog serves GET /v1/catalog: the computation catalog with wire
// ids, paper metadata, growth laws, and ratio families, so clients can
// enumerate the accepted ComputationDTO.Name values instead of hard-coding
// them. The listing is static and in id order — so its bytes are encoded
// once and replayed (lazily, via sync.Once, so package initialization
// order cannot bite).
var (
	catalogOnce  sync.Once
	catalogBytes []byte
)

func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	catalogOnce.Do(func() {
		data, err := encodeJSONBody(catalogResponse())
		if err != nil {
			panic(err) // static data over marshalable types; cannot fail
		}
		catalogBytes = data
	})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(catalogBytes)
}

// catalogResponse builds the listing from the same resolver the request
// path uses, so the catalog can never advertise an id the API rejects.
func catalogResponse() CatalogResponse {
	resp := CatalogResponse{Computations: []CatalogEntry{}}
	for _, id := range computationNames {
		dto := ComputationDTO{Name: id}
		comp, apiErr := resolveComputation(dto)
		if apiErr != nil {
			continue // unreachable: computationNames is the resolver's own list
		}
		e := CatalogEntry{
			ID:          id,
			Name:        comp.Name,
			Section:     comp.Section,
			Law:         comp.Law.Describe(),
			RatioFamily: ratioFamily(comp),
			IOBounded:   comp.IOBounded,
		}
		switch id {
		case "grid":
			e.DefaultDim = 2
		case "convolution":
			e.DefaultTaps = 16
		}
		resp.Computations = append(resp.Computations, e)
	}
	return resp
}

// ratioFamily names the asymptotic family of a computation's achievable
// ratio, in the paper's Θ-notation.
func ratioFamily(c model.Computation) string {
	switch law := c.Law.(type) {
	case model.PolynomialLaw:
		if law.Degree == 2 {
			return "Θ(√M)"
		}
		return fmt.Sprintf("Θ(M^(1/%g))", law.Degree)
	case model.ExponentialLaw:
		return "Θ(log₂M)"
	default:
		return "Θ(1)"
	}
}

// --- experiments ---

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	resp := ExperimentsResponse{Experiments: []ExperimentInfo{}}
	for _, e := range experiments.Registry() {
		resp.Experiments = append(resp.Experiments, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, resp)
}

// handleExperimentRun executes one registry entry under the request's
// context — a dropped connection or the per-request timeout aborts the
// experiment's sweeps mid-flight. Output formats: JSON report (default),
// ?format=text for the terminal rendering, ?format=csv for every series
// (404 via ErrNoSeries when the result has none), ?series=<name> for one.
func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") == "1" {
		s.streamExperiment(w, r)
		return
	}
	res, apiErr := s.runExperiment(r.Context(), r.PathValue("id"))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	q := r.URL.Query()
	switch {
	case q.Get("series") != "":
		w.Header().Set("Content-Type", "text/csv")
		if err := res.WriteCSV(w, q.Get("series")); err != nil {
			writeError(w, asAPIError(err))
		}
	case q.Get("format") == "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := res.WriteAllCSV(w); err != nil {
			writeError(w, asAPIError(err))
		}
	case q.Get("format") == "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = res.Render(w)
	default:
		data, err := res.JSON()
		if err != nil {
			writeError(w, internalError(err))
			return
		}
		writeJSON(w, ExperimentRunResponse{Pass: res.Pass(), Result: data})
	}
}

// runExperiment is the core experiment executor, shared with /v1/batch.
// The per-request budget applies here (not in the middleware chain): an
// experiment replays whole paper figures and is the API's longest
// synchronous operation.
func (s *Server) runExperiment(ctx context.Context, id string) (*report.Result, *apiError) {
	exp, err := experiments.Get(id)
	if err != nil {
		return nil, notFound("unknown_experiment", "%v", err)
	}
	ctx, cancel := s.opBudget(ctx)
	defer cancel()
	res, err := exp.Run(s.sweepContext(ctx))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Retry-After rides every 429/503 (the unified throttling
			// contract): a deadline-killed run may well fit on a retry
			// once the server is less loaded.
			return nil, &apiError{Status: http.StatusServiceUnavailable,
				Body:              ErrorBody{"cancelled", err.Error()},
				RetryAfterSeconds: 1}
		}
		return nil, internalError(err)
	}
	return res, nil
}

// --- health & metrics ---

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Experiments   int     `json:"experiments"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Experiments:   len(experiments.Registry()),
	})
}

// ReadyResponse is the GET /readyz body on a ready server.
type ReadyResponse struct {
	Status string `json:"status"`
}

// handleReadyz is the readiness probe, distinct from /healthz liveness:
// a live server can be unready. It reports 503 draining once StartDrain
// has run (graceful shutdown), so load balancers stop routing new work.
// WAL replay happens synchronously inside New before the handler is
// mounted, so a server that answers at all has already replayed its
// journal — readiness-after-replay holds by construction.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, &apiError{Status: http.StatusServiceUnavailable,
			Body:              ErrorBody{"draining", "server is draining; not accepting new work"},
			RetryAfterSeconds: 1})
		return
	}
	writeJSON(w, ReadyResponse{Status: "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The query is parsed only when one is present, so the plain GET
	// /metrics path — whose JSON body is pinned byte-for-byte by
	// TestMetricsSchemaPinned — is untouched.
	if r.URL.RawQuery != "" && r.URL.Query().Get("format") == "prometheus" {
		s.handleMetricsProm(w)
		return
	}
	snap := s.metrics.Snapshot()
	// The async subsystem's gauges ride the same snapshot; a
	// jobs-disabled server reports them as zeros so the key set — pinned
	// by TestMetricsSchemaPinned — never varies by configuration.
	if s.store != nil {
		st := s.store.Stats()
		snap.StoreHits = st.Hits
		snap.StoreMisses = st.Misses
		snap.StoreBytes = st.Bytes
		snap.StoreEntries = st.Entries
	}
	if s.queue != nil {
		c := s.queue.Counters()
		snap.JobsQueued = c.Queued
		snap.JobsRunning = c.Running
		snap.JobsDone = c.Done
		snap.JobsFailed = c.Failed
		snap.JobsCanceled = c.Canceled
		snap.JobsReplayed = c.Replayed
		sc := s.queue.SchedCounters()
		snap.SchedPolicy = sc.Policy
		snap.SchedPicks = sc.Picks
		snap.SchedSkips = sc.Skips
		snap.SchedMaxWaitPicks = sc.MaxWaitPicks
		snap.SchedDrainBPS = sc.DrainBPS
		snap.SchedRunningBytes = sc.RunningBytes
		snap.SchedSelfState = sc.SelfState
		// Per-tenant job-memory and scheduler gauges join the tenancy
		// counters. Only preregistered names are filled — the snapshot's
		// key set stays bounded by the config whatever the queue has
		// seen.
		if snap.Tenants != nil {
			for name, tc := range s.queue.TenantCounters() {
				ts, ok := snap.Tenants[name]
				if !ok {
					continue
				}
				ts.JobMemInUse = tc.MemInUseBytes
				ts.JobMemBudget = tc.MemBudgetBytes
				snap.Tenants[name] = ts
			}
			for name, served := range sc.ServedByTenant {
				ts, ok := snap.Tenants[name]
				if !ok {
					continue
				}
				ts.SchedServed = served
				snap.Tenants[name] = ts
			}
		}
	}
	writeJSON(w, snap)
}
