package server

import (
	"net/http"
	"sort"
	"time"

	"balarch/internal/obs"
)

// Prometheus exposition: GET /metrics?format=prometheus renders the same
// registry the JSON body is built from as text format 0.0.4, through the
// append-style encoder in internal/obs. The plain GET /metrics JSON —
// pinned byte-for-byte by TestMetricsSchemaPinned — is untouched: the
// format branch is taken before the snapshot, and every series here is
// read from the same slots, atomics, and subsystem counters the JSON
// handler reads, so the two views cannot drift apart in substance, only
// in syntax.
//
// Naming follows the Prometheus conventions rather than the JSON keys:
// a "balarch_" prefix, "_total" on counters, base units in the name
// ("_seconds", "_bytes"). Label cardinality is bounded by construction —
// route labels come from the preregistered pattern table, stage labels
// from the fixed Stage enum, tenant labels from the tenancy config —
// the same bounds the JSON maps live under.

// handleMetricsProm renders the text exposition into a pooled buffer and
// writes it in one shot.
func (s *Server) handleMetricsProm(w http.ResponseWriter) {
	bb := getBuf()
	var e obs.PromEnc
	e.B = bb.b[:0]
	s.appendProm(&e)
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.B)
	bb.b = e.B
	putBuf(bb)
}

// promRouteSample is one route's drained slot: the raw histogram the text
// format wants (the JSON snapshot pre-digests slots into quantiles, which
// Prometheus prefers to compute server-side from buckets).
type promRouteSample struct {
	route string
	count int64
	hist  []int64
	over  int64
	sum   float64
}

// drainRouteSlots copies every route slot that has seen traffic, sorted
// by route so the exposition is deterministic. Each slot is copied under
// its own mutex — the same locking discipline Snapshot uses.
func (m *Metrics) drainRouteSlots() []promRouteSample {
	slots := *m.slots.Load()
	routes := make([]string, 0, len(slots))
	for r := range slots {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	out := make([]promRouteSample, 0, len(routes))
	for _, route := range routes {
		rs := slots[route]
		rs.mu.Lock()
		if rs.count == 0 {
			rs.mu.Unlock()
			continue
		}
		out = append(out, promRouteSample{
			route: route,
			count: rs.count,
			hist:  append([]int64(nil), rs.hist...),
			over:  rs.over,
			sum:   rs.sum,
		})
		rs.mu.Unlock()
	}
	return out
}

func (s *Server) appendProm(e *obs.PromEnc) {
	m := s.metrics

	e.Header("balarch_uptime_seconds", "Seconds since the server started.", "gauge")
	e.Begin("balarch_uptime_seconds")
	e.Value(time.Since(m.start).Seconds())

	e.Header("balarch_in_flight_requests", "Requests currently inside the handler.", "gauge")
	e.Begin("balarch_in_flight_requests")
	e.Int(m.inFlight.Load())

	routes := m.drainRouteSlots()
	e.Header("balarch_requests_total", "Completed requests by matched route.", "counter")
	for _, rs := range routes {
		e.Begin("balarch_requests_total")
		e.Label("route", rs.route)
		e.Int(rs.count)
	}

	e.Header("balarch_responses_total", "Completed responses by status class.", "counter")
	for i := range m.statuses {
		if n := m.statuses[i].Load(); n > 0 {
			e.Begin("balarch_responses_total")
			e.Label("class", statusClassName(i*100))
			e.Int(n)
		}
	}

	e.Header("balarch_panics_recovered_total", "Handler panics converted to 500s.", "counter")
	e.Begin("balarch_panics_recovered_total")
	e.Int(m.panics.Load())

	// The global latency histogram is the per-route slots summed — the
	// identity the JSON snapshot maintains too.
	var (
		globalHist = make([]int64, len(latencyBuckets))
		globalOver int64
		globalSum  float64
	)
	for _, rs := range routes {
		for i, n := range rs.hist {
			globalHist[i] += n
		}
		globalOver += rs.over
		globalSum += rs.sum
	}
	e.Header("balarch_request_latency_seconds", "Request latency over all routes.", "histogram")
	e.Histogram("balarch_request_latency_seconds", "", "", latencyBuckets, globalHist, globalOver, globalSum)

	e.Header("balarch_route_latency_seconds", "Request latency by matched route.", "histogram")
	for _, rs := range routes {
		e.Histogram("balarch_route_latency_seconds", "route", rs.route, latencyBuckets, rs.hist, rs.over, rs.sum)
	}

	e.Header("balarch_sweep_cache_hits_total", "Sweeps served from the in-memory memo.", "counter")
	e.Begin("balarch_sweep_cache_hits_total")
	e.Int(m.cacheHits.Load())
	e.Header("balarch_sweep_cache_misses_total", "Sweeps that ran the kernels.", "counter")
	e.Begin("balarch_sweep_cache_misses_total")
	e.Int(m.cacheMisses.Load())

	// The pipeline-stage profile: one histogram per stage that has seen
	// an observation, on the same bucket bounds as the route latencies.
	e.Header("balarch_stage_latency_seconds", "Pipeline stage latency (decode, compute, wal_append, ...).", "histogram")
	for st := obs.Stage(0); int(st) < obs.NumStages; st++ {
		snap := s.stages.Snapshot(st)
		if snap.Count == 0 {
			continue
		}
		e.Histogram("balarch_stage_latency_seconds", "stage", st.String(),
			s.stages.Bounds(), snap.Counts, snap.Over, snap.SumSeconds)
	}

	// The async subsystem, when open. Unlike the JSON snapshot — whose
	// pinned schema must not vary by configuration — the text format's
	// contract is per-series, so absent subsystems simply expose nothing.
	if s.store != nil {
		st := s.store.Stats()
		e.Header("balarch_store_hits_total", "Store gets answered (LRU front or disk).", "counter")
		e.Begin("balarch_store_hits_total")
		e.Int(st.Hits)
		e.Header("balarch_store_misses_total", "Store gets for absent keys.", "counter")
		e.Begin("balarch_store_misses_total")
		e.Int(st.Misses)
		e.Header("balarch_store_bytes", "Total size of indexed blobs.", "gauge")
		e.Begin("balarch_store_bytes")
		e.Int(st.Bytes)
		e.Header("balarch_store_entries", "Number of indexed blobs.", "gauge")
		e.Begin("balarch_store_entries")
		e.Int(st.Entries)
	}
	if s.queue != nil {
		c := s.queue.Counters()
		e.Header("balarch_jobs", "Jobs by lifecycle state.", "gauge")
		for _, st := range []struct {
			state string
			n     int64
		}{
			{"queued", c.Queued}, {"running", c.Running}, {"done", c.Done},
			{"failed", c.Failed}, {"canceled", c.Canceled},
		} {
			e.Begin("balarch_jobs")
			e.Label("state", st.state)
			e.Int(st.n)
		}
		e.Header("balarch_jobs_replayed_total", "Jobs requeued by WAL replay at open.", "counter")
		e.Begin("balarch_jobs_replayed_total")
		e.Int(c.Replayed)
		e.Header("balarch_jobs_mem_in_use_bytes", "Summed footprint of live jobs.", "gauge")
		e.Begin("balarch_jobs_mem_in_use_bytes")
		e.Int(c.MemInUseBytes)
		e.Header("balarch_jobs_mem_budget_bytes", "Admission budget for live jobs.", "gauge")
		e.Begin("balarch_jobs_mem_budget_bytes")
		e.Int(c.MemBudgetBytes)

		sc := s.queue.SchedCounters()
		e.Header("balarch_jobs_sched_picks_total", "Jobs handed to workers by the scheduler.", "counter")
		e.Begin("balarch_jobs_sched_picks_total")
		e.Int(sc.Picks)
		e.Header("balarch_jobs_sched_skips_total", "Eligible jobs bypassed by a pick.", "counter")
		e.Begin("balarch_jobs_sched_skips_total")
		e.Int(sc.Skips)
		e.Header("balarch_jobs_sched_max_wait_picks", "Worst bypassed-while-eligible wait, in picks.", "gauge")
		e.Begin("balarch_jobs_sched_max_wait_picks")
		e.Int(sc.MaxWaitPicks)
		e.Header("balarch_jobs_sched_drain_bytes_per_second", "Measured pool retirement rate.", "gauge")
		e.Begin("balarch_jobs_sched_drain_bytes_per_second")
		e.Value(sc.DrainBPS)
		e.Header("balarch_jobs_sched_running_bytes", "Summed footprint of running jobs.", "gauge")
		e.Begin("balarch_jobs_sched_running_bytes")
		e.Int(sc.RunningBytes)
		e.Header("balarch_jobs_sched_info", "Pick policy and the analytic self-state verdict.", "gauge")
		e.Begin("balarch_jobs_sched_info")
		e.Label("policy", sc.Policy)
		e.Label("self_state", sc.SelfState)
		e.Int(1)
	}

	// Per-tenant counters, when tenancy is configured. Names are the
	// preregistered set — the cardinality bound — sorted for determinism.
	if m.tenants != nil {
		names := make([]string, 0, len(m.tenants))
		for n := range m.tenants {
			names = append(names, n)
		}
		sort.Strings(names)
		e.Header("balarch_tenant_requests_total", "Resolved requests by tenant.", "counter")
		for _, n := range names {
			e.Begin("balarch_tenant_requests_total")
			e.Label("tenant", n)
			e.Int(m.tenants[n].requests.Load())
		}
		e.Header("balarch_tenant_rate_limited_total", "Bucket refusals (429 rate_limited) by tenant.", "counter")
		for _, n := range names {
			e.Begin("balarch_tenant_rate_limited_total")
			e.Label("tenant", n)
			e.Int(m.tenants[n].rateLimited.Load())
		}
		e.Header("balarch_tenant_over_budget_total", "Job-admission refusals (429 over_budget) by tenant.", "counter")
		for _, n := range names {
			e.Begin("balarch_tenant_over_budget_total")
			e.Label("tenant", n)
			e.Int(m.tenants[n].overBudget.Load())
		}
		if s.queue != nil {
			tc := s.queue.TenantCounters()
			e.Header("balarch_tenant_job_mem_in_use_bytes", "Live job footprint by tenant.", "gauge")
			for _, n := range names {
				e.Begin("balarch_tenant_job_mem_in_use_bytes")
				e.Label("tenant", n)
				e.Int(tc[n].MemInUseBytes)
			}
			e.Header("balarch_tenant_job_mem_budget_bytes", "Per-tenant admission partition (0 = uncapped).", "gauge")
			for _, n := range names {
				e.Begin("balarch_tenant_job_mem_budget_bytes")
				e.Label("tenant", n)
				e.Int(tc[n].MemBudgetBytes)
			}
			served := s.queue.SchedCounters().ServedByTenant
			e.Header("balarch_tenant_sched_served_total", "Scheduler picks by tenant.", "counter")
			for _, n := range names {
				e.Begin("balarch_tenant_sched_served_total")
				e.Label("tenant", n)
				e.Int(served[n])
			}
		}
	}
}

// TraceDump is the GET /debug/traces body: the capture ring newest-first
// plus the slowest request seen since start.
type TraceDump struct {
	Traces  []obs.TraceView `json:"traces"`
	Slowest *obs.TraceView  `json:"slowest,omitempty"`
}

// TraceHandler returns the GET /debug/traces handler: the captured trace
// ring as JSON. It is not part of the public API surface — balarchd
// mounts it on the pprof listener next to /debug/pprof, so traces are
// reachable from the operator port, never the tenant-facing one.
// ?slowest=1 drops the ring and returns only the slowest trace — the
// soak harness archives that as an artifact.
func (s *Server) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces, slowest := s.tracer.Snapshot()
		dump := TraceDump{Traces: traces, Slowest: slowest}
		if r.URL.Query().Get("slowest") == "1" {
			dump.Traces = nil
		}
		writeJSON(w, dump)
	})
}
