package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"balarch/internal/model"
)

// PEDTO is the wire shape of a processing element: computation bandwidth in
// ops/s, I/O bandwidth in words/s, local memory in words (paper Fig. 1).
type PEDTO struct {
	C  float64 `json:"c"`
	IO float64 `json:"io"`
	M  float64 `json:"m"`
}

func (p PEDTO) toModel() model.PE { return model.PE{C: p.C, IO: p.IO, M: p.M} }

func peDTO(pe model.PE) PEDTO { return PEDTO{C: pe.C, IO: pe.IO, M: pe.M} }

// LevelDTO is the wire shape of one memory level: capacity M words filled
// through its outer boundary at BW words/s. A request's `levels` array is
// ordered innermost first; bandwidths must be non-increasing outward
// (violations are 422 non_monotone_hierarchy).
type LevelDTO struct {
	Name string  `json:"name,omitempty"`
	BW   float64 `json:"bw"`
	M    float64 `json:"m"`
}

// BoundaryDTO is one boundary's balance diagnosis inside a hierarchy
// analyze response: the paper's test applied to the region inside the
// boundary (cumulative capacity vs the boundary's bandwidth).
type BoundaryDTO struct {
	Boundary        int     `json:"boundary"`
	Name            string  `json:"name,omitempty"`
	BW              float64 `json:"bw"`
	CapacityWithin  float64 `json:"capacity_within"`
	Intensity       float64 `json:"intensity"`
	AchievableRatio float64 `json:"achievable_ratio"`
	State           string  `json:"state"`
	BalancedMemory  float64 `json:"balanced_memory,omitempty"`
	Rebalanceable   bool    `json:"rebalanceable"`
}

// ComputationDTO names one catalog computation. Grid takes its dimension
// from Dim (default 2); convolution takes its tap count from Taps (default
// 16); every other name ignores both.
type ComputationDTO struct {
	Name string `json:"name"`
	Dim  int    `json:"dim,omitempty"`
	Taps int    `json:"taps,omitempty"`
}

// computationNames lists the accepted ComputationDTO.Name values, for error
// messages and the experiments listing.
var computationNames = []string{
	"convolution", "fft", "grid", "matmul", "matvec",
	"sorting", "spmv", "triangularization", "trisolve",
}

// The catalog entries the resolver hands out, built once: per-request
// resolution is a switch plus a struct copy (the Computation's Law is a
// shared immutable interface value, so copying does not allocate). The
// parameterized entries precompute their defaults; a non-default parameter
// still constructs on demand. The grid table is a builder-func var so Go's
// package initialization orders it before anything that reads it.
var (
	compMatMul          = model.MatrixMultiplication()
	compTriangular      = model.MatrixTriangularization()
	compFFT             = model.FFT()
	compSorting         = model.Sorting()
	compMatVec          = model.MatrixVector()
	compTriSolve        = model.TriangularSolve()
	compSpMV            = model.SparseMatVec()
	compConvolveDefault = model.Convolution(16)
	gridComps           = func() (g [7]model.Computation) {
		for d := 1; d <= 6; d++ {
			g[d] = model.Grid(d)
		}
		return g
	}()
)

// lawDescriptions precomputes GrowthLaw.Describe for every catalog law, so
// the analyze hot path never hits the fmt.Sprintf inside PolynomialLaw's
// non-quadratic case. Laws are small comparable values, so they key a map
// directly; a law outside the table (a non-default convolution, say) falls
// back to Describe.
var lawDescriptions = func() map[model.GrowthLaw]string {
	m := make(map[model.GrowthLaw]string)
	for _, c := range []model.Computation{
		compMatMul, compTriangular, compFFT, compSorting,
		compMatVec, compTriSolve, compSpMV, compConvolveDefault,
	} {
		m[c.Law] = c.Law.Describe()
	}
	for d := 1; d <= 6; d++ {
		m[gridComps[d].Law] = gridComps[d].Law.Describe()
	}
	return m
}()

func lawDescription(law model.GrowthLaw) string {
	if s, ok := lawDescriptions[law]; ok {
		return s
	}
	return law.Describe()
}

// resolveComputation maps a DTO to its model catalog entry.
func resolveComputation(dto ComputationDTO) (model.Computation, *apiError) {
	switch strings.ToLower(dto.Name) {
	case "matmul", "matrix-multiplication":
		return compMatMul, nil
	case "triangularization", "matrix-triangularization":
		return compTriangular, nil
	case "grid":
		d := dto.Dim
		if d == 0 {
			d = 2
		}
		if d < 1 || d > 6 {
			return model.Computation{}, unprocessable("invalid_argument",
				"grid dim %d must be in [1, 6]", d)
		}
		return gridComps[d], nil
	case "fft":
		return compFFT, nil
	case "sorting", "sort":
		return compSorting, nil
	case "matvec", "matrix-vector":
		return compMatVec, nil
	case "trisolve", "triangular-solve":
		return compTriSolve, nil
	case "spmv", "sparse-matvec":
		return compSpMV, nil
	case "convolution", "convolve":
		k := dto.Taps
		if k == 0 {
			k = 16
		}
		if k < 1 || k > 1<<20 {
			return model.Computation{}, unprocessable("invalid_argument",
				"convolution taps %d must be in [1, 2^20]", k)
		}
		if k == 16 {
			return compConvolveDefault, nil
		}
		return model.Convolution(k), nil
	case "":
		return model.Computation{}, unprocessable("invalid_argument",
			"computation.name is required (one of %s)", strings.Join(computationNames, ", "))
	default:
		return model.Computation{}, unprocessable("unknown_computation",
			"unknown computation %q (one of %s)", dto.Name, strings.Join(computationNames, ", "))
	}
}

// --- /v1/analyze ---

// AnalyzeRequest asks: is this PE balanced for this computation, and what
// memory would balance it?
type AnalyzeRequest struct {
	PE          PEDTO          `json:"pe"`
	Computation ComputationDTO `json:"computation"`
	// MaxMemory bounds the numeric balanced-memory search; 0 means the
	// package default of 10^18 words.
	MaxMemory float64 `json:"max_memory,omitempty"`
	// Levels switches the request to hierarchy analysis: PE.C is the
	// compute rate, the levels (innermost first) replace PE.IO/PE.M
	// (which must be zero), and every adjacent-level boundary gets the
	// balance test. Absent means the flat one-level model.
	Levels []LevelDTO `json:"levels,omitempty"`
}

// AnalyzeResponse is the balance diagnosis. For a hierarchy request the
// flat fields describe the binding boundary (PE is the effective flat PE
// there: the boundary's bandwidth behind the cumulative capacity inside
// it), and Levels/Boundaries/BindingBoundary carry the per-boundary detail.
type AnalyzeResponse struct {
	Computation     string  `json:"computation"`
	Section         string  `json:"section"`
	PE              PEDTO   `json:"pe"`
	Intensity       float64 `json:"intensity"`
	AchievableRatio float64 `json:"achievable_ratio"`
	State           string  `json:"state"`
	BalancedMemory  float64 `json:"balanced_memory,omitempty"`
	Rebalanceable   bool    `json:"rebalanceable"`
	Law             string  `json:"law"`
	// Hierarchy-only fields (absent on flat requests, so one-level wire
	// output is byte-identical to the pre-hierarchy API).
	Levels          []LevelDTO    `json:"levels,omitempty"`
	Boundaries      []BoundaryDTO `json:"boundaries,omitempty"`
	BindingBoundary int           `json:"binding_boundary,omitempty"`
}

// balanceStateName renders a BalanceState as a stable API token (the model
// String()s are prose).
func balanceStateName(s model.BalanceState) string {
	switch s {
	case model.Balanced:
		return "balanced"
	case model.IOBound:
		return "io-bound"
	case model.ComputeBound:
		return "compute-bound"
	default:
		return fmt.Sprintf("state-%d", int(s))
	}
}

// --- /v1/rebalance ---

// RebalanceRequest asks the paper's central question: C/IO grows by Alpha —
// how much memory restores balance?
type RebalanceRequest struct {
	Computation ComputationDTO `json:"computation"`
	Alpha       float64        `json:"alpha"`
	MOld        float64        `json:"m_old"`
	MaxMemory   float64        `json:"max_memory,omitempty"`
	// C and Levels switch the request to hierarchy rebalancing: the
	// compute rate C grows by Alpha and every boundary of the level stack
	// must be rebalanced. MOld must then be zero — the old memories are
	// the levels' capacities.
	C      float64    `json:"c,omitempty"`
	Levels []LevelDTO `json:"levels,omitempty"`
}

// RebalanceBoundaryDTO is one boundary's share of a hierarchy rebalance:
// the cumulative capacity the region inside it must reach at the
// post-growth intensity.
type RebalanceBoundaryDTO struct {
	Boundary       int     `json:"boundary"`
	Intensity      float64 `json:"intensity"`
	RequiredWithin float64 `json:"required_within,omitempty"`
	Rebalanceable  bool    `json:"rebalanceable"`
}

// LevelBillDTO is one level's line of the hierarchy memory bill.
type LevelBillDTO struct {
	Name  string  `json:"name,omitempty"`
	BW    float64 `json:"bw"`
	MOld  float64 `json:"m_old"`
	MNew  float64 `json:"m_new"`
	Delta float64 `json:"delta"`
}

// RebalanceResponse carries both the numeric inversion of the measured
// ratio function and the paper's closed-form law, so clients can see the
// two agree. For a hierarchy request the per-level fields carry the memory
// bill instead of the single m_new.
type RebalanceResponse struct {
	Computation string  `json:"computation"`
	Alpha       float64 `json:"alpha"`
	MOld        float64 `json:"m_old"`
	// Rebalanceable is false for I/O-bounded computations (paper §3.6):
	// MNew and MClosedForm are then omitted.
	Rebalanceable bool    `json:"rebalanceable"`
	MNew          float64 `json:"m_new,omitempty"`
	MClosedForm   float64 `json:"m_closed_form,omitempty"`
	Law           string  `json:"law"`
	// Hierarchy-only fields (absent on flat requests).
	C               float64                `json:"c,omitempty"`
	Boundaries      []RebalanceBoundaryDTO `json:"boundaries,omitempty"`
	LevelBill       []LevelBillDTO         `json:"level_bill,omitempty"`
	BindingBoundary int                    `json:"binding_boundary,omitempty"`
	TotalMemory     float64                `json:"total_memory,omitempty"`
	TotalDelta      float64                `json:"total_delta,omitempty"`
}

// --- /v1/roofline ---

// RooflineRequest samples computations' paths along a PE's roofline across
// a geometric memory sweep [MemLo, MemHi] with the given Step factor.
type RooflineRequest struct {
	PE           PEDTO            `json:"pe"`
	Computations []ComputationDTO `json:"computations"`
	MemLo        float64          `json:"mem_lo"`
	MemHi        float64          `json:"mem_hi"`
	Step         float64          `json:"step,omitempty"`
	// Chart requests the rendered text roofline alongside the samples.
	Chart bool `json:"chart,omitempty"`
	// Levels switches the request to the multi-ridge roofline: PE.C is
	// the compute rate (PE.IO/PE.M must be zero), and [MemLo, MemHi]
	// sweeps the capacity of level SweepLevel (1-based; 0 means the
	// innermost) instead of the flat local memory.
	Levels     []LevelDTO `json:"levels,omitempty"`
	SweepLevel int        `json:"sweep_level,omitempty"`
}

// RooflinePointDTO is one sampled position on a computation's path. On a
// hierarchy path, Memory is the swept level's capacity, Intensity the
// achievable ratio at the binding boundary, and Binding names that
// boundary (0 when the compute roof binds).
type RooflinePointDTO struct {
	Memory       float64 `json:"memory"`
	Intensity    float64 `json:"intensity"`
	Attainable   float64 `json:"attainable"`
	ComputeBound bool    `json:"compute_bound"`
	Binding      int     `json:"binding,omitempty"`
}

// RooflinePathDTO is one computation's sampled path.
type RooflinePathDTO struct {
	Computation string             `json:"computation"`
	Points      []RooflinePointDTO `json:"points"`
}

// RidgeDTO is one boundary's ridge on the multi-ridge roofline.
type RidgeDTO struct {
	Boundary  int     `json:"boundary"`
	BW        float64 `json:"bw"`
	Intensity float64 `json:"intensity"`
}

// RooflineResponse is the evaluated model: the ridge (Kung's balance point)
// plus each computation's path. A hierarchy response reports one ridge per
// boundary in Ridges; RidgeIntensity is then the outermost boundary's ridge
// — the machine's balance point against the outside world.
type RooflineResponse struct {
	PE             PEDTO             `json:"pe"`
	RidgeIntensity float64           `json:"ridge_intensity"`
	Paths          []RooflinePathDTO `json:"paths"`
	Chart          string            `json:"chart,omitempty"`
	// Hierarchy-only fields (absent on flat requests).
	Levels     []LevelDTO `json:"levels,omitempty"`
	Ridges     []RidgeDTO `json:"ridges,omitempty"`
	SweepLevel int        `json:"sweep_level,omitempty"`
}

// --- /v1/sweep ---

// SweepRequest runs one instrumented kernel across a parameter range and
// returns the measured ratio curve. Params is the kernel's memory knob —
// block sides for matmul/lu/fft/strassen, tile sides for grid, run lengths
// for sort, chunk sizes for matvec/trisolve/spmv, tap counts for convolve.
type SweepRequest struct {
	Kernel string `json:"kernel"`
	// N is the problem size (matrix dimension, FFT length, key count…).
	// The sort kernel sizes its input from Params and ignores N.
	N      int   `json:"n,omitempty"`
	Params []int `json:"params"`
	// Dim, Size, Iters configure the grid kernel (Size per side, Iters
	// relaxation iterations); Size replaces N for grids.
	Dim   int `json:"dim,omitempty"`
	Size  int `json:"size,omitempty"`
	Iters int `json:"iters,omitempty"`
	// NNZPerRow configures the spmv kernel.
	NNZPerRow int `json:"nnz_per_row,omitempty"`
	// Seed configures the sort kernel's input permutation.
	Seed int64 `json:"seed,omitempty"`
	// The "hierarchy" kernel sweeps the analytic hierarchy model instead
	// of an instrumented kernel: C is the compute rate, Levels the level
	// stack, Computation the catalog entry whose achievable ratio is
	// evaluated, Vary selects what Params sweeps ("capacity", the
	// default, or "bandwidth"), and Level which level (1-based, default
	// the innermost) takes the swept values. Each point reports the
	// binding boundary's achievable ratio over a synthetic unit of
	// 2^20 words of boundary traffic.
	C           float64         `json:"c,omitempty"`
	Levels      []LevelDTO      `json:"levels,omitempty"`
	Computation *ComputationDTO `json:"computation,omitempty"`
	Vary        string          `json:"vary,omitempty"`
	Level       int             `json:"level,omitempty"`
}

// SweepPointDTO is one measured point of the curve.
type SweepPointDTO struct {
	Memory int     `json:"memory"`
	Ops    uint64  `json:"ops"`
	Reads  uint64  `json:"reads"`
	Writes uint64  `json:"writes"`
	Ratio  float64 `json:"ratio"`
}

// SweepResponse is the measured curve. Cached reports whether the points
// came from the server's sweep memo rather than a fresh kernel run.
type SweepResponse struct {
	Kernel string          `json:"kernel"`
	Points []SweepPointDTO `json:"points"`
	Cached bool            `json:"cached"`
}

// --- /v1/catalog ---

// CatalogEntry describes one computation the API accepts: the wire id to
// put in ComputationDTO.Name, the paper metadata, the growth law, and the
// ratio family, so clients can enumerate instead of hard-coding ids.
type CatalogEntry struct {
	// ID is the ComputationDTO.Name token.
	ID string `json:"id"`
	// Name is the model's human-readable computation name.
	Name        string `json:"name"`
	Section     string `json:"section"`
	Law         string `json:"law"`
	RatioFamily string `json:"ratio_family"`
	IOBounded   bool   `json:"io_bounded"`
	// DefaultDim/DefaultTaps echo the parameter defaults for the ids
	// that take one ("grid", "convolution").
	DefaultDim  int `json:"default_dim,omitempty"`
	DefaultTaps int `json:"default_taps,omitempty"`
}

// CatalogResponse is the GET /v1/catalog body, in id order.
type CatalogResponse struct {
	Computations []CatalogEntry `json:"computations"`
}

// --- /v1/experiments ---

// ExperimentInfo is one row of the GET /v1/experiments listing.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// ExperimentsResponse lists the registry.
type ExperimentsResponse struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

// ExperimentRunResponse wraps one experiment's report with its verdict.
type ExperimentRunResponse struct {
	Pass   bool            `json:"pass"`
	Result json.RawMessage `json:"result"`
}

// --- /v1/batch ---

// BatchItem is one sub-request of a batch: Op selects the operation
// ("analyze", "rebalance", "roofline", "sweep", "experiment") and Request
// carries that operation's request body. The experiment op's request is
// {"id": "E2"}.
type BatchItem struct {
	Op      string          `json:"op"`
	Request json.RawMessage `json:"request"`
}

// BatchRequest fans its items out across the server's worker pool.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchResult is one item's outcome, in the item's position: the status and
// body it would have received as a standalone request.
type BatchResult struct {
	Op     string          `json:"op"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  *ErrorBody      `json:"error,omitempty"`
}

// BatchResponse preserves request order: Results[i] answers Requests[i]
// whatever order the pool completed them in.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// ExperimentRef is the request body of the batch "experiment" op.
type ExperimentRef struct {
	ID string `json:"id"`
}

// --- decoding ---

// decodeStrict parses exactly one JSON value from r into v, rejecting
// unknown fields, trailing garbage, and oversized bodies — malformed input
// is 400, an over-limit body is 413.
func decodeStrict(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) *apiError {
	return strictDecodeJSON(http.MaxBytesReader(w, r.Body, maxBytes), v)
}

// strictDecodeJSON is the one strict-decoding policy, shared by the
// top-level handlers and /v1/batch items so the two can never drift apart:
// exactly one JSON value, unknown fields rejected, trailing data rejected.
func strictDecodeJSON(rd io.Reader, v any) *apiError {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if err == io.EOF {
			return badRequest("bad_json", "request body is empty")
		}
		return asDecodeError(err)
	}
	if dec.More() {
		return badRequest("bad_json", "request body has trailing data after the JSON value")
	}
	return nil
}

// asDecodeError distinguishes an over-limit body (413) from malformed JSON
// (400).
func asDecodeError(err error) *apiError {
	if ae := asAPIError(err); ae.Status != http.StatusInternalServerError {
		return ae
	}
	return badRequest("bad_json", "%v", err)
}

// sortedCopy returns a sorted copy of xs, for canonical cache keys.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
