package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"balarch/internal/obs"
)

// The strict text-format (0.0.4) line parser the acceptance criteria
// call for: every line of the exposition must be a HELP comment, a TYPE
// comment, or a well-formed sample; HELP precedes TYPE precedes samples
// within a family; sample names belong to the declared family (directly,
// or via the _bucket/_sum/_count suffixes of a histogram); counters end
// in _total; histogram buckets are cumulative over ascending le bounds
// ending at +Inf, with _count equal to the +Inf bucket. Anything a real
// Prometheus scraper would reject fails the test.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// labelKey renders the label set canonically (sorted, le excluded when
// excludeLe) for grouping and duplicate detection.
func (s promSample) labelKey(excludeLe bool) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if excludeLe && k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(s.labels[k]))
		b.WriteByte(',')
	}
	return b.String()
}

// parsePromStrict validates body line by line and returns the samples
// grouped by family name along with each family's declared type.
func parsePromStrict(t *testing.T, body string) (map[string][]promSample, map[string]string) {
	t.Helper()
	if body == "" || !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition must be newline-terminated and non-empty")
	}
	var (
		families = map[string]string{} // name → type
		helped   = map[string]bool{}
		samples  = map[string][]promSample{}
		current  string // family of the open HELP/TYPE block
		seen     = map[string]bool{}
	)
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d %q: "+format, append([]any{ln + 1, line}, args...)...)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				fail("HELP without text")
			}
			if !metricNameRe.MatchString(name) {
				fail("bad metric name %q", name)
			}
			if helped[name] {
				fail("duplicate HELP for %q", name)
			}
			helped[name] = true
			current = name
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				fail("TYPE without a type")
			}
			if name != current || !helped[name] {
				fail("TYPE not immediately preceded by its HELP (current family %q)", current)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				fail("unknown type %q", typ)
			}
			if _, dup := families[name]; dup {
				fail("duplicate TYPE for %q", name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				fail("counter %q does not end in _total", name)
			}
			families[name] = typ
		case strings.HasPrefix(line, "#"):
			fail("stray comment")
		default:
			s := parseSampleLine(t, ln+1, line)
			typ, declared := families[current]
			if !declared {
				fail("sample before any TYPE declaration")
			}
			base := s.name
			if typ == "histogram" {
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if s.name == current+suf {
						base = current
					}
				}
			}
			if base != current {
				fail("sample %q outside the open family %q", s.name, current)
			}
			key := s.name + "{" + s.labelKey(false) + "}"
			if seen[key] {
				fail("duplicate series %q", key)
			}
			seen[key] = true
			samples[current] = append(samples[current], s)
		}
	}
	// Histogram invariants, per family and label set.
	for name, typ := range families {
		if typ != "histogram" {
			continue
		}
		checkHistogram(t, name, samples[name])
	}
	return samples, families
}

// parseSampleLine parses `name{label="value",...} value` strictly.
func parseSampleLine(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: line}
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		t.Fatalf("line %d %q: no value", ln, line)
	}
	s.name = rest[:end]
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad sample name %q", ln, s.name)
	}
	if !strings.HasPrefix(s.name, "balarch_") {
		t.Fatalf("line %d: sample %q missing the balarch_ namespace", ln, s.name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.Index(rest, "=")
			if eq < 0 {
				t.Fatalf("line %d %q: unterminated label block", ln, line)
			}
			lname := rest[:eq]
			if !labelNameRe.MatchString(lname) {
				t.Fatalf("line %d: bad label name %q", ln, lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				t.Fatalf("line %d %q: unquoted label value", ln, line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d %q: unterminated label value", ln, line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '"' {
					break
				}
				if c == '\\' {
					switch rest[0] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d %q: bad escape \\%c", ln, line, rest[0])
					}
					rest = rest[1:]
					continue
				}
				val.WriteByte(c)
			}
			if _, dup := s.labels[lname]; dup {
				t.Fatalf("line %d: duplicate label %q", ln, lname)
			}
			s.labels[lname] = val.String()
			if rest[0] == ',' {
				rest = rest[1:]
				continue
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d %q: junk after label value", ln, line)
		}
	}
	if rest == "" || rest[0] != ' ' {
		t.Fatalf("line %d %q: missing space before value", ln, line)
	}
	v, err := strconv.ParseFloat(rest[1:], 64)
	if err != nil {
		t.Fatalf("line %d %q: bad value: %v", ln, line, err)
	}
	s.value = v
	return s
}

// checkHistogram asserts the bucket invariants for every label set of
// one histogram family.
func checkHistogram(t *testing.T, name string, samples []promSample) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	groups := map[string]*series{}
	get := func(s promSample) *series {
		k := s.labelKey(true)
		if groups[k] == nil {
			groups[k] = &series{}
		}
		return groups[k]
	}
	for _, s := range samples {
		g := get(s)
		switch s.name {
		case name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket without le: %s", name, s.line)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: bad le %q", name, le)
			}
			g.les = append(g.les, bound)
			g.counts = append(g.counts, s.value)
		case name + "_sum":
			v := s.value
			g.sum = &v
		case name + "_count":
			v := s.value
			g.count = &v
		}
	}
	for k, g := range groups {
		if g.sum == nil || g.count == nil || len(g.les) == 0 {
			t.Fatalf("%s{%s}: incomplete histogram (buckets %d, sum %v, count %v)",
				name, k, len(g.les), g.sum, g.count)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				t.Errorf("%s{%s}: le bounds not ascending at %v", name, k, g.les[i])
			}
			if g.counts[i] < g.counts[i-1] {
				t.Errorf("%s{%s}: buckets not cumulative at le=%v", name, k, g.les[i])
			}
		}
		last := len(g.les) - 1
		if !math.IsInf(g.les[last], 1) {
			t.Errorf("%s{%s}: last bucket le=%v, want +Inf", name, k, g.les[last])
		}
		if g.counts[last] != *g.count {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", name, k, g.counts[last], *g.count)
		}
	}
}

// series digs one sample out of the parse by exact sample name (so
// "family_count" addresses a histogram's count series) and label match.
func series(t *testing.T, samples map[string][]promSample, name string, labels map[string]string) float64 {
	t.Helper()
	for _, fam := range samples {
	next:
		for _, s := range fam {
			if s.name != name {
				continue
			}
			for k, v := range labels {
				if s.labels[k] != v {
					continue next
				}
			}
			return s.value
		}
	}
	t.Fatalf("no series %s%v", name, labels)
	return 0
}

// promBody drives GET /metrics?format=prometheus and returns the text.
func promBody(t *testing.T, h http.Handler) string {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if w.Code != 200 {
		t.Fatalf("prometheus exposition: %d\n%s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	return w.Body.String()
}

// TestPromExpositionStrict runs the full-stack exposition — store, jobs,
// and tenancy all configured — through the strict parser and checks the
// load-bearing families came out.
func TestPromExpositionStrict(t *testing.T) {
	_, h := newTestHandler(Options{
		StoreDir:   t.TempDir(),
		JobWorkers: -1,
		Tenants:    twoTenants(),
	})
	// Traffic: two analyzes (one tenanted), a sweep pair (miss then
	// memo hit), and a 400 — so counters, histograms, stage profile,
	// cache counters, and status classes all have observations.
	doAs(t, h, "acme-key", "POST", "/v1/analyze", analyzeBody)
	doAs(t, h, "", "POST", "/v1/analyze", analyzeBody)
	sweep := `{"kernel": "matmul", "n": 64, "params": [4, 8]}`
	doAs(t, h, "", "POST", "/v1/sweep", sweep)
	doAs(t, h, "", "POST", "/v1/sweep", sweep)
	doAs(t, h, "", "POST", "/v1/analyze", "{")

	samples, families := parsePromStrict(t, promBody(t, h))

	for name, typ := range map[string]string{
		"balarch_uptime_seconds":          "gauge",
		"balarch_in_flight_requests":      "gauge",
		"balarch_requests_total":          "counter",
		"balarch_responses_total":         "counter",
		"balarch_panics_recovered_total":  "counter",
		"balarch_request_latency_seconds": "histogram",
		"balarch_route_latency_seconds":   "histogram",
		"balarch_stage_latency_seconds":   "histogram",
		"balarch_sweep_cache_hits_total":  "counter",
		"balarch_store_hits_total":        "counter",
		"balarch_store_entries":           "gauge",
		"balarch_jobs":                    "gauge",
		"balarch_jobs_sched_info":         "gauge",
		"balarch_tenant_requests_total":   "counter",
	} {
		if families[name] != typ {
			t.Errorf("family %s: type %q, want %q", name, families[name], typ)
		}
	}

	if got := series(t, samples, "balarch_requests_total", map[string]string{"route": "POST /v1/analyze"}); got != 3 {
		t.Errorf("analyze requests_total = %v, want 3", got)
	}
	if got := series(t, samples, "balarch_responses_total", map[string]string{"class": "4xx"}); got != 1 {
		t.Errorf("4xx responses_total = %v, want 1", got)
	}
	if got := series(t, samples, "balarch_sweep_cache_hits_total", nil); got != 1 {
		t.Errorf("sweep cache hits = %v, want 1", got)
	}
	if got := series(t, samples, "balarch_tenant_requests_total", map[string]string{"tenant": "acme"}); got != 1 {
		t.Errorf("acme requests_total = %v, want 1", got)
	}
	// The stage profile: decode and compute saw the two good analyzes
	// plus the cold sweep at least.
	for _, stage := range []string{"decode", "compute", "encode", "cache_lookup"} {
		if got := series(t, samples, "balarch_stage_latency_seconds_count", map[string]string{"stage": stage}); got < 1 {
			t.Errorf("stage %s count = %v, want ≥ 1", stage, got)
		}
	}
	if got := series(t, samples, "balarch_jobs", map[string]string{"state": "queued"}); got != 0 {
		t.Errorf("queued jobs = %v, want 0", got)
	}
}

// TestPromExpositionMinimal: with no store, no queue, and no tenants the
// exposition still parses strictly and simply lacks those families —
// the per-series contract, in contrast to the config-independent JSON.
func TestPromExpositionMinimal(t *testing.T) {
	_, h := newTestHandler(Options{})
	doJSON(t, h, "GET", "/healthz", "")
	samples, families := parsePromStrict(t, promBody(t, h))
	if _, ok := families["balarch_uptime_seconds"]; !ok {
		t.Error("missing balarch_uptime_seconds")
	}
	for _, absent := range []string{"balarch_store_hits_total", "balarch_jobs", "balarch_tenant_requests_total"} {
		if len(samples[absent]) != 0 {
			t.Errorf("family %s present on a minimal server", absent)
		}
	}
}

// TestPromJSONConsistency: the exposition and the pinned JSON snapshot
// must agree — same registry, two syntaxes. Compared on series the
// metrics fetches themselves cannot move.
func TestPromJSONConsistency(t *testing.T) {
	_, h := newTestHandler(Options{StoreDir: t.TempDir(), JobWorkers: -1, Tenants: twoTenants()})
	doAs(t, h, "acme-key", "POST", "/v1/analyze", analyzeBody)
	sweep := `{"kernel": "matmul", "n": 32, "params": [2, 4]}`
	doAs(t, h, "", "POST", "/v1/sweep", sweep)
	doAs(t, h, "", "POST", "/v1/sweep", sweep)

	samples, _ := parsePromStrict(t, promBody(t, h))
	_, decoded := doJSON(t, h, "GET", "/metrics", "")

	reqs := decoded["requests_total"].(map[string]any)
	for _, route := range []string{"POST /v1/analyze", "POST /v1/sweep"} {
		if got, want := series(t, samples, "balarch_requests_total", map[string]string{"route": route}), reqs[route].(float64); got != want {
			t.Errorf("%s: prom %v != json %v", route, got, want)
		}
	}
	if got, want := series(t, samples, "balarch_sweep_cache_hits_total", nil), decoded["sweep_cache_hits"].(float64); got != want {
		t.Errorf("cache hits: prom %v != json %v", got, want)
	}
	if got, want := series(t, samples, "balarch_sweep_cache_misses_total", nil), decoded["sweep_cache_misses"].(float64); got != want {
		t.Errorf("cache misses: prom %v != json %v", got, want)
	}
	if got, want := series(t, samples, "balarch_store_entries", nil), decoded["store_entries"].(float64); got != want {
		t.Errorf("store entries: prom %v != json %v", got, want)
	}
	ten := decoded["tenants"].(map[string]any)["acme"].(map[string]any)
	if got, want := series(t, samples, "balarch_tenant_requests_total", map[string]string{"tenant": "acme"}), ten["requests_total"].(float64); got != want {
		t.Errorf("acme requests: prom %v != json %v", got, want)
	}
}

// TestMetricsFormatFallback: an unknown format keeps the JSON body — the
// prometheus branch is opt-in by exact value.
func TestMetricsFormatFallback(t *testing.T) {
	_, h := newTestHandler(Options{})
	w, decoded := doJSON(t, h, "GET", "/metrics?format=bogus", "")
	if w.Code != 200 || decoded["uptime_seconds"] == nil {
		t.Fatalf("format=bogus: %d, body %s", w.Code, w.Body.String())
	}
	if !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		t.Errorf("format=bogus Content-Type = %q, want JSON", w.Header().Get("Content-Type"))
	}
}
