package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"

	"balarch/internal/engine"
)

// batch fans a slice of heterogeneous requests out across an engine.Pool.
// Results come back in request order whatever order the workers finish —
// the pool's ordering guarantee — and each item carries the status and body
// it would have received as a standalone request, so one invalid item
// yields one 4xx entry instead of failing the batch.
func (s *Server) batch(ctx context.Context, req *BatchRequest) (*BatchResponse, *apiError) {
	if len(req.Requests) == 0 {
		return nil, unprocessable("invalid_argument", "requests must list at least one item")
	}
	if len(req.Requests) > s.opts.MaxBatch {
		return nil, unprocessable("batch_too_large",
			"batch of %d exceeds the limit of %d", len(req.Requests), s.opts.MaxBatch)
	}
	jobs := make([]engine.Job[BatchResult], len(req.Requests))
	for i, item := range req.Requests {
		item := item
		jobs[i] = engine.Job[BatchResult]{Run: func(ctx context.Context) (BatchResult, error) {
			return s.batchItem(ctx, item), nil
		}}
	}
	// The per-request budget applies to the fan-out as a whole (it lived in
	// the middleware chain before the chain went allocation-free).
	bctx, cancel := s.opBudget(ctx)
	defer cancel()
	pool := engine.Pool[BatchResult]{Parallelism: s.opts.Parallelism}
	results, err := pool.Run(s.sweepContext(bctx), jobs)
	if err != nil {
		// Items never return errors, so this is context death.
		return nil, asSweepError(err)
	}
	return &BatchResponse{Results: results}, nil
}

// batchItem executes one sub-request through the same core operations the
// standalone handlers use.
func (s *Server) batchItem(ctx context.Context, item BatchItem) BatchResult {
	res := BatchResult{Op: item.Op}
	var (
		body any
		err  *apiError
	)
	switch item.Op {
	case "analyze":
		body, err = decodeAndRun(ctx, item.Request, s.analyze)
	case "rebalance":
		body, err = decodeAndRun(ctx, item.Request, s.rebalance)
	case "roofline":
		body, err = decodeAndRun(ctx, item.Request, s.roofline)
	case "sweep":
		body, err = decodeAndRun(ctx, item.Request, s.sweep)
	case "experiment":
		body, err = decodeAndRun(ctx, item.Request, s.experimentOp)
	case "":
		err = badRequest("invalid_argument", "batch item is missing op")
	default:
		err = badRequest("unknown_op",
			"unknown batch op %q (one of analyze, rebalance, roofline, sweep, experiment)", item.Op)
	}
	if err != nil {
		res.Status = err.Status
		res.Error = &err.Body
		return res
	}
	// Marshal through a pooled buffer (the append encoder handles the hot
	// response types, json.Marshal the rest — byte-identical either way),
	// then right-size the copy the result keeps: the item's body must own
	// its bytes, the scratch goes back to the pool.
	bb := getBuf()
	data, mErr := appendJSONCompact(bb.b[:0], body)
	releaseBody(body)
	if mErr != nil {
		putBuf(bb)
		res.Status = http.StatusInternalServerError
		res.Error = &ErrorBody{"internal", mErr.Error()}
		return res
	}
	res.Body = append(json.RawMessage(nil), data...)
	bb.b = data
	putBuf(bb)
	res.Status = http.StatusOK
	return res
}

// experimentOp adapts runExperiment to the batch core shape; its response
// matches the standalone JSON format.
func (s *Server) experimentOp(ctx context.Context, ref *ExperimentRef) (*ExperimentRunResponse, *apiError) {
	res, apiErr := s.runExperiment(ctx, ref.ID)
	if apiErr != nil {
		return nil, apiErr
	}
	data, err := res.JSON()
	if err != nil {
		return nil, internalError(err)
	}
	return &ExperimentRunResponse{Pass: res.Pass(), Result: data}, nil
}

// decodeAndRun strict-decodes a batch item's request body and runs the
// core operation, mirroring jsonHandler for the in-process path.
func decodeAndRun[Req any, Resp any](ctx context.Context, raw json.RawMessage, core func(context.Context, *Req) (Resp, *apiError)) (any, *apiError) {
	var req Req
	if len(raw) == 0 {
		return nil, badRequest("bad_json", "batch item has no request body")
	}
	if apiErr := strictDecodeJSON(bytes.NewReader(raw), &req); apiErr != nil {
		return nil, apiErr
	}
	resp, apiErr := core(ctx, &req)
	if apiErr != nil {
		return nil, apiErr
	}
	return resp, nil
}
