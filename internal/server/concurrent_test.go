package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// sweepBodies are the distinct sweep curves the concurrent clients request;
// several clients share each one, so the single-flight memo is exercised
// under real contention.
var sweepBodies = []string{
	`{"kernel": "matmul", "n": 96, "params": [4, 8, 16]}`,
	`{"kernel": "lu", "n": 96, "params": [4, 8, 16]}`,
	`{"kernel": "fft", "n": 4096, "params": [4, 16, 64]}`,
	`{"kernel": "grid", "dim": 2, "size": 64, "iters": 2, "params": [4, 8]}`,
	`{"kernel": "matvec", "n": 256, "params": [16, 64]}`,
	`{"kernel": "strassen", "n": 128, "params": [16, 32]}`,
}

// serialSweepPoints computes the reference curves on a strictly serial,
// cache-less path: a fresh one-worker server per request.
func serialSweepPoints(t *testing.T, body string) json.RawMessage {
	t.Helper()
	s := New(Options{Parallelism: 1})
	var req SweepRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	resp, apiErr := s.runSweep(t.Context(), &req)
	if apiErr != nil {
		t.Fatalf("serial sweep %s: %v", body, apiErr)
	}
	data, err := json.Marshal(resp.Points)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestConcurrentMixedClients drives ≥ 64 in-flight mixed requests through a
// real HTTP server and asserts (a) no request fails, (b) every concurrent
// sweep's points are byte-identical to the serial path's, and (c) the memo
// ran each distinct curve's kernels exactly once.
func TestConcurrentMixedClients(t *testing.T) {
	const clients = 72

	serial := make(map[string]string, len(sweepBodies))
	for _, body := range sweepBodies {
		serial[body] = string(serialSweepPoints(t, body))
	}

	s := New(Options{MaxInFlight: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: clients}

	type call struct {
		method, path, body string
		wantStatus         int
	}
	mixed := []call{
		{"GET", "/healthz", "", 200},
		{"GET", "/metrics", "", 200},
		{"GET", "/v1/experiments", "", 200},
		{"POST", "/v1/analyze", `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`, 200},
		{"POST", "/v1/rebalance", `{"computation": {"name": "matmul"}, "alpha": 4, "m_old": 1024}`, 200},
		{"POST", "/v1/roofline", `{"pe": {"c": 10e6, "io": 20e6, "m": 65536}, "computations": [{"name": "sorting"}], "mem_lo": 16, "mem_hi": 4096}`, 200},
		{"POST", "/v1/analyze", `{"pe": {"c": -1, "io": 1, "m": 1}, "computation": {"name": "fft"}}`, 422},
		{"POST", "/v1/experiments/E7", "", 200},
		{"POST", "/v1/batch", `{"requests": [{"op": "rebalance", "request": {"computation": {"name": "fft"}, "alpha": 2, "m_old": 4096}}]}`, 200},
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c call
			isSweep := i%2 == 0 // half the fleet hammers the sweep memo
			if isSweep {
				body := sweepBodies[(i/2)%len(sweepBodies)]
				c = call{"POST", "/v1/sweep", body, 200}
			} else {
				c = mixed[(i/2)%len(mixed)]
			}
			var rd io.Reader
			if c.body != "" {
				rd = strings.NewReader(c.body)
			}
			req, err := http.NewRequest(c.method, ts.URL+c.path, rd)
			if err != nil {
				errs <- err
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			if resp.StatusCode != c.wantStatus {
				errs <- fmt.Errorf("client %d: %s %s = %d, want %d: %s",
					i, c.method, c.path, resp.StatusCode, c.wantStatus, data)
				return
			}
			if isSweep {
				var sr SweepResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					errs <- fmt.Errorf("client %d: sweep response: %v", i, err)
					return
				}
				pts, err := json.Marshal(sr.Points)
				if err != nil {
					errs <- err
					return
				}
				if want := serial[c.body]; string(pts) != want {
					errs <- fmt.Errorf("client %d: concurrent sweep diverged from serial path\n got: %s\nwant: %s",
						i, pts, want)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Single-flight: each distinct curve's kernels ran exactly once,
	// however many clients asked.
	snap := s.Metrics().Snapshot()
	if snap.CacheMisses != int64(len(sweepBodies)) {
		t.Errorf("cache misses = %d, want %d (one kernel run per distinct curve)",
			snap.CacheMisses, len(sweepBodies))
	}
	if snap.CacheHits+snap.CacheMisses != clients/2 {
		t.Errorf("cache lookups = %d, want %d", snap.CacheHits+snap.CacheMisses, clients/2)
	}
}

// TestSweepDeterministicAcrossParallelism: the same curve measured at
// parallelism 1 and GOMAXPROCS must serialize identically — the engine
// pool's ordering guarantee surfacing at the API layer.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	for _, body := range sweepBodies {
		var req SweepRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		serialBytes := serialSweepPoints(t, body)

		wide := New(Options{Parallelism: 8})
		resp, apiErr := wide.runSweep(t.Context(), &req)
		if apiErr != nil {
			t.Fatalf("parallel sweep %s: %v", body, apiErr)
		}
		wideBytes, err := json.Marshal(resp.Points)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serialBytes, wideBytes) {
			t.Errorf("sweep %s: parallel points differ from serial\n got: %s\nwant: %s",
				body, wideBytes, serialBytes)
		}
	}
}
