package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// doJSON drives one request through a handler and decodes the response.
func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var decoded map[string]any
	ct := w.Header().Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") && w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON response: %v\n%s", method, path, err, w.Body.String())
		}
	}
	return w, decoded
}

// errorCode digs the envelope code out of a decoded error response.
func errorCode(t *testing.T, decoded map[string]any) string {
	t.Helper()
	env, ok := decoded["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", decoded)
	}
	code, _ := env["code"].(string)
	return code
}

// wantStatus asserts one request's status and envelope code ("" = success).
func wantStatus(t *testing.T, h http.Handler, method, path, body string, status int, code string) map[string]any {
	t.Helper()
	w, decoded := doJSON(t, h, method, path, body)
	if w.Code != status {
		t.Fatalf("%s %s: status %d, want %d\nbody: %s", method, path, w.Code, status, w.Body.String())
	}
	if code != "" {
		if got := errorCode(t, decoded); got != code {
			t.Errorf("%s %s: error code %q, want %q", method, path, got, code)
		}
	}
	return decoded
}

func newTestHandler(opts Options) (*Server, http.Handler) {
	s := New(opts)
	return s, s.Handler()
}

func TestHealthz(t *testing.T) {
	_, h := newTestHandler(Options{})
	decoded := wantStatus(t, h, "GET", "/healthz", "", 200, "")
	if decoded["status"] != "ok" {
		t.Errorf("healthz status = %v, want ok", decoded["status"])
	}
	if n, _ := decoded["experiments"].(float64); n != 16 {
		t.Errorf("healthz experiments = %v, want 16", decoded["experiments"])
	}
}

func TestAnalyze(t *testing.T) {
	_, h := newTestHandler(Options{})
	// The paper's §1 example: C/IO = 50, FFT at M = 4096 achieves only
	// 2.5·log2(4096) = 30 — I/O bound, but rebalanceable.
	body := `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`
	decoded := wantStatus(t, h, "POST", "/v1/analyze", body, 200, "")
	if decoded["state"] != "io-bound" {
		t.Errorf("state = %v, want io-bound", decoded["state"])
	}
	if got := decoded["intensity"].(float64); got != 50 {
		t.Errorf("intensity = %v, want 50", got)
	}
	if got := decoded["achievable_ratio"].(float64); math.Abs(got-30) > 1e-9 {
		t.Errorf("achievable_ratio = %v, want 30", got)
	}
	if decoded["rebalanceable"] != true {
		t.Errorf("rebalanceable = %v, want true", decoded["rebalanceable"])
	}
	// Balanced memory for ratio 50: 2.5·log2 M = 50 ⇒ M = 2^20.
	if got := decoded["balanced_memory"].(float64); math.Abs(got-math.Pow(2, 20)) > 1 {
		t.Errorf("balanced_memory = %v, want 2^20", got)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	_, h := newTestHandler(Options{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"bad json", `{`, 400, "bad_json"},
		{"empty body", ``, 400, "bad_json"},
		{"unknown field", `{"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "fft"}, "bogus": 1}`, 400, "bad_json"},
		{"trailing garbage", `{"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "fft"}} extra`, 400, "bad_json"},
		{"missing computation", `{"pe": {"c": 1, "io": 1, "m": 1}}`, 422, "invalid_argument"},
		{"unknown computation", `{"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "quicksort"}}`, 422, "unknown_computation"},
		{"invalid pe", `{"pe": {"c": -1, "io": 1, "m": 1}, "computation": {"name": "fft"}}`, 422, "invalid_argument"},
		{"bad grid dim", `{"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "grid", "dim": 9}}`, 422, "invalid_argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantStatus(t, h, "POST", "/v1/analyze", tc.body, tc.status, tc.code)
		})
	}
}

func TestRebalance(t *testing.T) {
	_, h := newTestHandler(Options{})
	// The α² law: α = 4 at M = 1024 needs 16×1024 words.
	body := `{"computation": {"name": "matmul"}, "alpha": 4, "m_old": 1024}`
	decoded := wantStatus(t, h, "POST", "/v1/rebalance", body, 200, "")
	if decoded["rebalanceable"] != true {
		t.Fatalf("rebalanceable = %v, want true", decoded["rebalanceable"])
	}
	mNew := decoded["m_new"].(float64)
	if math.Abs(mNew-16384)/16384 > 0.01 {
		t.Errorf("m_new = %v, want ≈ 16384", mNew)
	}
	if cf := decoded["m_closed_form"].(float64); cf != 16384 {
		t.Errorf("m_closed_form = %v, want 16384", cf)
	}

	// §3.6: matvec cannot be rebalanced — a valid answer, not an error.
	body = `{"computation": {"name": "matvec"}, "alpha": 2, "m_old": 1024}`
	decoded = wantStatus(t, h, "POST", "/v1/rebalance", body, 200, "")
	if decoded["rebalanceable"] != false {
		t.Errorf("matvec rebalanceable = %v, want false", decoded["rebalanceable"])
	}
	if _, present := decoded["m_new"]; present {
		t.Errorf("matvec m_new should be omitted, got %v", decoded["m_new"])
	}

	// Argument validation is 422.
	wantStatus(t, h, "POST", "/v1/rebalance",
		`{"computation": {"name": "matmul"}, "alpha": 0.5, "m_old": 1024}`, 422, "invalid_argument")
}

func TestRoofline(t *testing.T) {
	_, h := newTestHandler(Options{})
	body := `{"pe": {"c": 10e6, "io": 20e6, "m": 65536},
	          "computations": [{"name": "matmul"}, {"name": "fft"}],
	          "mem_lo": 16, "mem_hi": 65536, "chart": true}`
	decoded := wantStatus(t, h, "POST", "/v1/roofline", body, 200, "")
	if ridge := decoded["ridge_intensity"].(float64); ridge != 0.5 {
		t.Errorf("ridge = %v, want 0.5 (Warp C/IO)", ridge)
	}
	paths := decoded["paths"].([]any)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	first := paths[0].(map[string]any)
	pts := first["points"].([]any)
	if len(pts) == 0 {
		t.Fatal("matmul path has no points")
	}
	// Warp's ridge is 0.5; matmul at M=16 has intensity 4 ≥ ridge, so the
	// whole path is compute bound at the roof C.
	p0 := pts[0].(map[string]any)
	if p0["compute_bound"] != true || p0["attainable"].(float64) != 10e6 {
		t.Errorf("matmul first point = %v, want compute-bound at C", p0)
	}
	if chart, _ := decoded["chart"].(string); !strings.Contains(chart, "roofline") {
		t.Errorf("chart missing, got %.60q", chart)
	}

	wantStatus(t, h, "POST", "/v1/roofline",
		`{"pe": {"c": 1, "io": 1, "m": 1}, "computations": [{"name": "fft"}], "mem_lo": 64, "mem_hi": 2}`,
		422, "invalid_argument")
}

func TestSweepMeasuresAndCaches(t *testing.T) {
	s, h := newTestHandler(Options{})
	body := `{"kernel": "matmul", "n": 128, "params": [4, 8, 16]}`
	decoded := wantStatus(t, h, "POST", "/v1/sweep", body, 200, "")
	if decoded["cached"] != false {
		t.Errorf("first sweep cached = %v, want false", decoded["cached"])
	}
	pts := decoded["points"].([]any)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// The §3.1 ratio grows ≈ √M: larger blocks, larger ratio.
	prev := 0.0
	for i, p := range pts {
		r := p.(map[string]any)["ratio"].(float64)
		if r <= prev {
			t.Errorf("point %d: ratio %v not increasing (prev %v)", i, r, prev)
		}
		prev = r
	}

	// Same curve, different param order: served from the memo, with the
	// points reordered to THIS request's params — never the order of
	// whichever request populated the cache.
	decoded = wantStatus(t, h, "POST", "/v1/sweep",
		`{"kernel": "matmul", "n": 128, "params": [16, 8, 4]}`, 200, "")
	if decoded["cached"] != true {
		t.Errorf("repeat sweep cached = %v, want true", decoded["cached"])
	}
	rev := decoded["points"].([]any)
	for i := range rev {
		fwd := pts[len(pts)-1-i].(map[string]any)["memory"].(float64)
		if got := rev[i].(map[string]any)["memory"].(float64); got != fwd {
			t.Errorf("reversed-params point %d memory = %v, want %v (request order)", i, got, fwd)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

// TestSweepCacheBounded: the memo flushes at its cap instead of growing
// forever under distinct requests.
func TestSweepCacheBounded(t *testing.T) {
	s, h := newTestHandler(Options{})
	for n := 0; n < maxSweepCacheEntries+8; n++ {
		body := fmt.Sprintf(`{"kernel": "matvec", "n": %d, "params": [4]}`, 64+n)
		wantStatus(t, h, "POST", "/v1/sweep", body, 200, "")
	}
	if got := s.sweeps.Len(); got > maxSweepCacheEntries {
		t.Errorf("memo holds %d entries, cap is %d", got, maxSweepCacheEntries)
	}
}

func TestSweepValidation(t *testing.T) {
	_, h := newTestHandler(Options{})
	cases := []struct {
		name, body string
		code       string
	}{
		{"unknown kernel", `{"kernel": "bitonic", "n": 64, "params": [4]}`, "unknown_kernel"},
		{"missing kernel", `{"n": 64, "params": [4]}`, "invalid_argument"},
		{"no params", `{"kernel": "matmul", "n": 64, "params": []}`, "invalid_argument"},
		{"negative param", `{"kernel": "matmul", "n": 64, "params": [-4]}`, "invalid_argument"},
		{"missing n", `{"kernel": "matmul", "params": [4]}`, "invalid_argument"},
		{"sort over cap", fmt.Sprintf(`{"kernel": "sort", "params": [%d]}`, maxSortMemory+1), "invalid_argument"},
		{"block exceeds n", `{"kernel": "matmul", "n": 8, "params": [16]}`, "invalid_argument"},
		{"fft non-power-of-two", `{"kernel": "fft", "n": 100, "params": [4]}`, "invalid_argument"},
		{"grid missing dim", `{"kernel": "grid", "size": 32, "iters": 2, "params": [4]}`, "invalid_argument"},
		{"spmv missing nnz", `{"kernel": "spmv", "n": 64, "params": [8]}`, "invalid_argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantStatus(t, h, "POST", "/v1/sweep", tc.body, 422, tc.code)
		})
	}
}

func TestExperimentsList(t *testing.T) {
	_, h := newTestHandler(Options{})
	decoded := wantStatus(t, h, "GET", "/v1/experiments", "", 200, "")
	exps := decoded["experiments"].([]any)
	if len(exps) != 16 {
		t.Fatalf("listed %d experiments, want 16", len(exps))
	}
	first := exps[0].(map[string]any)
	if first["id"] != "E1" || first["title"] == "" {
		t.Errorf("first experiment = %v, want E1 with a title", first)
	}
}

func TestExperimentRun(t *testing.T) {
	_, h := newTestHandler(Options{})
	decoded := wantStatus(t, h, "POST", "/v1/experiments/E7", "", 200, "")
	if decoded["pass"] != true {
		t.Errorf("E7 pass = %v, want true", decoded["pass"])
	}
	result := decoded["result"].(map[string]any)
	if result["id"] != "E7" {
		t.Errorf("result id = %v, want E7", result["id"])
	}

	// Text rendering.
	w, _ := doJSON(t, h, "POST", "/v1/experiments/E7?format=text", "")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "== E7") {
		t.Errorf("text format: status %d body %.60q", w.Code, w.Body.String())
	}

	// CSV of a result with series.
	w, _ = doJSON(t, h, "POST", "/v1/experiments/E2?format=csv", "")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "# series: ratio") {
		t.Errorf("csv format: status %d body %.60q", w.Code, w.Body.String())
	}
	w, _ = doJSON(t, h, "POST", "/v1/experiments/E2?series=ratio", "")
	if w.Code != 200 || !strings.HasPrefix(w.Body.String(), "memory_words,") {
		t.Errorf("series csv: status %d body %.60q", w.Code, w.Body.String())
	}
}

func TestExperimentErrors(t *testing.T) {
	_, h := newTestHandler(Options{})
	wantStatus(t, h, "POST", "/v1/experiments/E99", "", 404, "unknown_experiment")
	// E10 produces no data series: WriteAllCSV's typed ErrNoSeries maps
	// to 404.
	wantStatus(t, h, "POST", "/v1/experiments/E10?format=csv", "", 404, "no_such_series")
	wantStatus(t, h, "POST", "/v1/experiments/E2?series=bogus", "", 404, "no_such_series")
}

func TestBatch(t *testing.T) {
	_, h := newTestHandler(Options{})
	body := `{"requests": [
	  {"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}},
	  {"op": "rebalance", "request": {"computation": {"name": "matmul"}, "alpha": 2, "m_old": 256}},
	  {"op": "sweep", "request": {"kernel": "fft", "n": 4096, "params": [4, 16]}},
	  {"op": "transmogrify", "request": {}},
	  {"op": "analyze", "request": {"pe": {"c": -1, "io": 1, "m": 1}, "computation": {"name": "fft"}}},
	  {"op": "experiment", "request": {"id": "E7"}}
	]}`
	decoded := wantStatus(t, h, "POST", "/v1/batch", body, 200, "")
	results := decoded["results"].([]any)
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	wantStatuses := []float64{200, 200, 200, 400, 422, 200}
	for i, want := range wantStatuses {
		r := results[i].(map[string]any)
		if r["status"].(float64) != want {
			t.Errorf("result[%d] status = %v, want %v (%v)", i, r["status"], want, r)
		}
	}
	// The batched analyze answers exactly like the standalone endpoint.
	standalone := wantStatus(t, h, "POST", "/v1/analyze",
		`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`, 200, "")
	batched := results[0].(map[string]any)["body"].(map[string]any)
	if batched["balanced_memory"] != standalone["balanced_memory"] ||
		batched["state"] != standalone["state"] {
		t.Errorf("batched analyze %v != standalone %v", batched, standalone)
	}
	// The failed items carry the envelope body.
	if code := results[3].(map[string]any)["error"].(map[string]any)["code"]; code != "unknown_op" {
		t.Errorf("result[3] code = %v, want unknown_op", code)
	}
	// The batched experiment reports its verdict.
	exp := results[5].(map[string]any)["body"].(map[string]any)
	if exp["pass"] != true {
		t.Errorf("batched E7 pass = %v, want true", exp["pass"])
	}
}

func TestBatchLimits(t *testing.T) {
	_, h := newTestHandler(Options{MaxBatch: 2})
	item := `{"op": "rebalance", "request": {"computation": {"name": "fft"}, "alpha": 2, "m_old": 64}}`
	body := fmt.Sprintf(`{"requests": [%s, %s, %s]}`, item, item, item)
	wantStatus(t, h, "POST", "/v1/batch", body, 422, "batch_too_large")
	wantStatus(t, h, "POST", "/v1/batch", `{"requests": []}`, 422, "invalid_argument")
}

func TestUnknownRouteAndMethod(t *testing.T) {
	_, h := newTestHandler(Options{})
	wantStatus(t, h, "GET", "/v2/nothing", "", 404, "unknown_route")
	// A wrong method falls through to the catch-all too: the API promises
	// the envelope on every non-2xx, trading the mux's native 405 away.
	wantStatus(t, h, "GET", "/v1/analyze", "", 404, "unknown_route")
}

func TestBodyTooLarge(t *testing.T) {
	_, h := newTestHandler(Options{MaxBodyBytes: 64})
	big := `{"kernel": "matmul", "n": 64, "params": [` + strings.Repeat("4,", 200) + `4]}`
	wantStatus(t, h, "POST", "/v1/sweep", big, 413, "body_too_large")
}

func TestMetricsEndpoint(t *testing.T) {
	_, h := newTestHandler(Options{})
	wantStatus(t, h, "GET", "/healthz", "", 200, "")
	wantStatus(t, h, "POST", "/v1/rebalance",
		`{"computation": {"name": "sorting"}, "alpha": 2, "m_old": 1024}`, 200, "")
	wantStatus(t, h, "POST", "/v1/rebalance", `{`, 400, "bad_json")
	// Two different experiment ids must share one metrics series: the
	// matched mux pattern, not the raw path (which would give a
	// long-lived daemon unbounded metric cardinality).
	wantStatus(t, h, "POST", "/v1/experiments/E7", "", 200, "")
	wantStatus(t, h, "POST", "/v1/experiments/E10", "", 200, "")
	decoded := wantStatus(t, h, "GET", "/metrics", "", 200, "")
	reqs := decoded["requests_total"].(map[string]any)
	if reqs["POST /v1/rebalance"].(float64) != 2 {
		t.Errorf("rebalance count = %v, want 2", reqs["POST /v1/rebalance"])
	}
	if reqs["POST /v1/experiments/{id}"].(float64) != 2 {
		t.Errorf("experiment runs not aggregated under the pattern: %v", reqs)
	}
	classes := decoded["responses_by_status_class"].(map[string]any)
	if classes["4xx"].(float64) != 1 {
		t.Errorf("4xx count = %v, want 1", classes["4xx"])
	}
	// The snapshot is taken inside the /metrics request, which counts
	// itself in the gauge.
	if decoded["in_flight"].(float64) != 1 {
		t.Errorf("in_flight = %v, want 1 (the /metrics request itself)", decoded["in_flight"])
	}
	hist := decoded["latency_histogram"].([]any)
	var total float64
	for _, b := range hist {
		total += b.(map[string]any)["count"].(float64)
	}
	// /metrics itself completes after the snapshot; the three prior
	// requests must all be binned.
	if total < 3 {
		t.Errorf("histogram holds %v observations, want ≥ 3", total)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), Recover(nil, m))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/", nil))
	if w.Code != 500 {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("panic response is not the JSON envelope: %s", w.Body.String())
	}
	if errorCode(t, decoded) != "panic" {
		t.Errorf("code = %v, want panic", decoded)
	}
	if m.Snapshot().Panics != 1 {
		t.Errorf("panics metric = %d, want 1", m.Snapshot().Panics)
	}
}

// TestPanicAccountedInMetrics: with Recover inside Logging (the server's
// chain order), a recovered panic is still counted as a 500 request and
// the in-flight gauge returns to rest — panics must not leak it.
func TestPanicAccountedInMetrics(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), Logging(nil, m), Recover(nil, m))
	for i := 0; i < 3; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/doomed", nil))
		if w.Code != 500 {
			t.Fatalf("status = %d, want 500", w.Code)
		}
	}
	snap := m.Snapshot()
	if snap.InFlight != 0 {
		t.Errorf("in_flight = %d after recovered panics, want 0", snap.InFlight)
	}
	if snap.StatusClasses["5xx"] != 3 {
		t.Errorf("5xx count = %d, want 3", snap.StatusClasses["5xx"])
	}
	if snap.Panics != 3 {
		t.Errorf("panics = %d, want 3", snap.Panics)
	}
}

func TestLimitConcurrencyQueues(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(200)
	})
	h := LimitConcurrency(1)(inner)

	first := make(chan struct{})
	go func() {
		defer close(first)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	<-entered // first request holds the only slot

	// Second request with a dead context: must get 503, never a slot.
	w := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	h.ServeHTTP(w, req.WithContext(ctx))
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("queued request with dead context: status %d, want 503", w.Code)
	}

	close(release)
	<-first
}

// TestLimitConcurrencyExemptsProbes: health checks bypass the limiter so a
// saturated server still answers its load balancer.
func TestLimitConcurrencyExemptsProbes(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{})
	s, h := newTestHandler(Options{MaxInFlight: 1, RequestTimeout: -1})
	_ = s
	// Occupy the single slot with a parked request; healthz must still
	// answer from beside the queue.
	hold := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(blocked)
			<-release
		}
		w.WriteHeader(200)
	})
	limited := LimitConcurrency(1, "/healthz")(hold)
	go limited.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))
	<-blocked
	w := httptest.NewRecorder()
	limited.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != 200 {
		t.Errorf("healthz blocked behind the limiter: %d", w.Code)
	}
	close(release)

	// And through the real handler: one slot, saturated by nothing —
	// just confirm healthz succeeds with the limiter at its tightest.
	w2, _ := doJSON(t, h, "GET", "/healthz", "")
	if w2.Code != 200 {
		t.Errorf("healthz through full stack: %d", w2.Code)
	}
}

// TestSweepFlightSurvivesInitiatorDisconnect: a joiner must not fail
// because the caller that started the flight disconnected.
func TestSweepFlightSurvivesInitiatorDisconnect(t *testing.T) {
	s := New(Options{})
	req := &SweepRequest{Kernel: "matmul", N: 64, Params: []int{4, 8}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the initiating request is already dead
	resp, apiErr := s.runSweep(ctx, req)
	if apiErr != nil {
		t.Fatalf("flight died with its initiator: %v", apiErr)
	}
	if len(resp.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(resp.Points))
	}
	// The result is cached for the joiners the initiator abandoned.
	resp2, apiErr := s.runSweep(context.Background(), req)
	if apiErr != nil || !resp2.Cached {
		t.Errorf("follow-up = (%+v, %v), want cached success", resp2, apiErr)
	}
}

func TestWithTimeoutSetsDeadline(t *testing.T) {
	var had bool
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, had = r.Context().Deadline()
	})
	WithTimeout(time.Second)(inner).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !had {
		t.Error("request context has no deadline under WithTimeout")
	}
	had = true
	WithTimeout(0)(inner).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if had {
		t.Error("WithTimeout(0) must not set a deadline")
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		order = append(order, "handler")
	}), mk("outer"), mk("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if want := []string{"outer", "inner", "handler"}; !equalStrings(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
