package server

// Zero-allocation strict decoding for the hot request types. The fast
// decoder accepts a *subset* of JSON — plain ASCII strings without escapes,
// no null literals, exactly the known fields — and bails out (returns
// false) on anything outside it. The caller then zeroes the DTO and replays
// the same bytes through strictDecodeJSON, so every accepted input decodes
// exactly as encoding/json would and every rejected input produces exactly
// the stdlib's error envelope. The bail contract: returning false promises
// only that the DTO is garbage; it says nothing about why.
//
// Numbers use the Clinger fast path: when the mantissa fits 2^53 exactly
// and the decimal exponent is within ±22, float64(mant) × 10^e rounds once
// and equals strconv.ParseFloat. Everything else falls to strconv on the
// number's own bytes — still exact, one small allocation, rare.

import (
	"math"
	"strconv"
)

type jdec struct {
	data []byte
	i    int
}

func (d *jdec) ws() {
	for d.i < len(d.data) {
		switch d.data[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *jdec) peek() byte {
	if d.i < len(d.data) {
		return d.data[d.i]
	}
	return 0
}

func (d *jdec) eat(c byte) bool {
	if d.i < len(d.data) && d.data[d.i] == c {
		d.i++
		return true
	}
	return false
}

// rawString scans a string literal and returns its raw contents. Escapes,
// control bytes, and non-ASCII all bail: the stdlib's unquoting (including
// its invalid-UTF-8 replacement) is the source of truth for those.
func (d *jdec) rawString() ([]byte, bool) {
	if !d.eat('"') {
		return nil, false
	}
	start := d.i
	for d.i < len(d.data) {
		c := d.data[d.i]
		if c == '"' {
			s := d.data[start:d.i]
			d.i++
			return s, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, false
		}
		d.i++
	}
	return nil, false
}

// scanNumber scans one JSON number (full grammar, leading zeros rejected)
// and returns its span.
func (d *jdec) scanNumber() ([]byte, bool) {
	start := d.i
	if d.peek() == '-' {
		d.i++
	}
	switch c := d.peek(); {
	case c == '0':
		d.i++
		if c := d.peek(); c >= '0' && c <= '9' {
			return nil, false
		}
	case c >= '1' && c <= '9':
		for c := d.peek(); c >= '0' && c <= '9'; c = d.peek() {
			d.i++
		}
	default:
		return nil, false
	}
	if d.peek() == '.' {
		d.i++
		if c := d.peek(); c < '0' || c > '9' {
			return nil, false
		}
		for c := d.peek(); c >= '0' && c <= '9'; c = d.peek() {
			d.i++
		}
	}
	if c := d.peek(); c == 'e' || c == 'E' {
		d.i++
		if c := d.peek(); c == '+' || c == '-' {
			d.i++
		}
		if c := d.peek(); c < '0' || c > '9' {
			return nil, false
		}
		for c := d.peek(); c >= '0' && c <= '9'; c = d.peek() {
			d.i++
		}
	}
	return d.data[start:d.i], true
}

func (d *jdec) float() (float64, bool) {
	b, ok := d.scanNumber()
	if !ok {
		return 0, false
	}
	return parseFloatBytes(b)
}

// intv decodes a number into an int field. A fraction or exponent bails so
// the stdlib reports its exact "cannot unmarshal number ... into ... int"
// error; near-overflow magnitudes bail to the stdlib's range handling.
func (d *jdec) intv() (int64, bool) {
	b, ok := d.scanNumber()
	if !ok {
		return 0, false
	}
	for _, c := range b {
		if c == '.' || c == 'e' || c == 'E' {
			return 0, false
		}
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
	}
	var v uint64
	for _, c := range b {
		if v > (1<<62)/10 {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	if neg {
		return -int64(v), true
	}
	return int64(v), true
}

var pow10tab = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatBytes is the Clinger fast path over an already-validated JSON
// number span; it falls back to strconv for anything it cannot round
// exactly.
func parseFloatBytes(b []byte) (float64, bool) {
	var mant uint64
	var exp10 int
	neg, sawDot := false, false
	i := 0
	if len(b) > 0 && b[0] == '-' {
		neg = true
		i = 1
	}
scan:
	for ; i < len(b); i++ {
		switch c := b[i]; {
		case c == '.':
			sawDot = true
		case c == 'e' || c == 'E':
			break scan
		default:
			if mant >= (math.MaxUint64-9)/10 {
				return slowParseFloat(b)
			}
			mant = mant*10 + uint64(c-'0')
			if sawDot {
				exp10--
			}
		}
	}
	if i < len(b) { // exponent part
		i++ // 'e'
		eneg := false
		if b[i] == '+' {
			i++
		} else if b[i] == '-' {
			eneg = true
			i++
		}
		ev := 0
		for ; i < len(b); i++ {
			ev = ev*10 + int(b[i]-'0')
			if ev > 10000 {
				return slowParseFloat(b)
			}
		}
		if eneg {
			ev = -ev
		}
		exp10 += ev
	}
	if mant == 0 {
		if neg {
			return math.Copysign(0, -1), true
		}
		return 0, true
	}
	if mant >= 1<<53 {
		return slowParseFloat(b)
	}
	f := float64(mant)
	switch {
	case exp10 == 0:
	case exp10 > 0 && exp10 <= 22:
		f *= pow10tab[exp10]
	case exp10 < 0 && exp10 >= -22:
		f /= pow10tab[-exp10]
	default:
		return slowParseFloat(b)
	}
	if neg {
		f = -f
	}
	return f, true
}

func slowParseFloat(b []byte) (float64, bool) {
	f, err := strconv.ParseFloat(string(b), 64)
	return f, err == nil
}

// internStrings maps the request vocabulary — computation ids and aliases,
// kernel names, vary tokens, common level names — to pre-allocated Go
// strings, so decoding them is a map probe instead of a heap copy. A miss
// still decodes correctly (one string allocation).
var internStrings = func() map[string]string {
	tab := make(map[string]string)
	for _, s := range []string{
		"convolution", "convolve", "fft", "grid", "matmul",
		"matrix-multiplication", "matvec", "matrix-vector", "sorting",
		"sort", "spmv", "sparse-matvec", "triangularization",
		"matrix-triangularization", "trisolve", "triangular-solve",
		"lu", "strassen", "hierarchy",
		"capacity", "bandwidth", "bw",
		"l1", "l2", "l3", "sram", "dram", "disk", "cache", "ram", "hbm",
	} {
		tab[s] = s
	}
	return tab
}()

func internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := internStrings[string(b)]; ok {
		return s
	}
	return string(b)
}

// --- per-type decoders ---

func (d *jdec) peDTO(p *PEDTO) bool {
	d.ws()
	if !d.eat('{') {
		return false
	}
	d.ws()
	if d.eat('}') {
		return true
	}
	for {
		key, ok := d.rawString()
		if !ok {
			return false
		}
		d.ws()
		if !d.eat(':') {
			return false
		}
		d.ws()
		switch string(key) {
		case "c":
			p.C, ok = d.float()
		case "io":
			p.IO, ok = d.float()
		case "m":
			p.M, ok = d.float()
		default:
			return false
		}
		if !ok {
			return false
		}
		d.ws()
		if d.eat(',') {
			d.ws()
			continue
		}
		return d.eat('}')
	}
}

func (d *jdec) computationDTO(c *ComputationDTO) bool {
	d.ws()
	if !d.eat('{') {
		return false
	}
	d.ws()
	if d.eat('}') {
		return true
	}
	for {
		key, ok := d.rawString()
		if !ok {
			return false
		}
		d.ws()
		if !d.eat(':') {
			return false
		}
		d.ws()
		switch string(key) {
		case "name":
			var s []byte
			s, ok = d.rawString()
			if ok {
				c.Name = internString(s)
			}
		case "dim":
			var v int64
			v, ok = d.intv()
			c.Dim = int(v)
		case "taps":
			var v int64
			v, ok = d.intv()
			c.Taps = int(v)
		default:
			return false
		}
		if !ok {
			return false
		}
		d.ws()
		if d.eat(',') {
			d.ws()
			continue
		}
		return d.eat('}')
	}
}

func (d *jdec) levelDTO(l *LevelDTO) bool {
	d.ws()
	if !d.eat('{') {
		return false
	}
	d.ws()
	if d.eat('}') {
		return true
	}
	for {
		key, ok := d.rawString()
		if !ok {
			return false
		}
		d.ws()
		if !d.eat(':') {
			return false
		}
		d.ws()
		switch string(key) {
		case "name":
			var s []byte
			s, ok = d.rawString()
			if ok {
				l.Name = internString(s)
			}
		case "bw":
			l.BW, ok = d.float()
		case "m":
			l.M, ok = d.float()
		default:
			return false
		}
		if !ok {
			return false
		}
		d.ws()
		if d.eat(',') {
			d.ws()
			continue
		}
		return d.eat('}')
	}
}

// levelArray decodes into dst's recycled backing array. An empty array
// bails: the stdlib distinguishes [] (non-nil empty) from absent (nil), and
// replaying is simpler than replicating that.
func (d *jdec) levelArray(dst *[]LevelDTO) bool {
	d.ws()
	if !d.eat('[') {
		return false
	}
	*dst = (*dst)[:0]
	d.ws()
	if d.peek() == ']' {
		return false
	}
	for {
		var l LevelDTO
		if !d.levelDTO(&l) {
			return false
		}
		*dst = append(*dst, l)
		d.ws()
		if d.eat(',') {
			d.ws()
			continue
		}
		return d.eat(']')
	}
}

func (d *jdec) intArray(dst *[]int) bool {
	d.ws()
	if !d.eat('[') {
		return false
	}
	*dst = (*dst)[:0]
	d.ws()
	if d.peek() == ']' {
		return false
	}
	for {
		v, ok := d.intv()
		if !ok {
			return false
		}
		*dst = append(*dst, int(v))
		d.ws()
		if d.eat(',') {
			d.ws()
			continue
		}
		return d.eat(']')
	}
}

// atEnd reports the decode consumed the whole body (strictDecodeJSON
// rejects trailing data).
func (d *jdec) atEnd() bool {
	d.ws()
	return d.i == len(d.data)
}

func fastDecodeAnalyze(req *AnalyzeRequest, data []byte) bool {
	d := jdec{data: data}
	d.ws()
	if !d.eat('{') {
		return false
	}
	d.ws()
	if d.eat('}') {
		return d.atEnd()
	}
	for {
		key, ok := d.rawString()
		if !ok {
			return false
		}
		d.ws()
		if !d.eat(':') {
			return false
		}
		d.ws()
		switch string(key) {
		case "pe":
			ok = d.peDTO(&req.PE)
		case "computation":
			ok = d.computationDTO(&req.Computation)
		case "max_memory":
			req.MaxMemory, ok = d.float()
		case "levels":
			ok = d.levelArray(&req.Levels)
		default:
			return false
		}
		if !ok {
			return false
		}
		d.ws()
		if d.eat(',') {
			d.ws()
			continue
		}
		return d.eat('}') && d.atEnd()
	}
}

func fastDecodeSweep(req *SweepRequest, data []byte) bool {
	d := jdec{data: data}
	d.ws()
	if !d.eat('{') {
		return false
	}
	d.ws()
	if d.eat('}') {
		return d.atEnd()
	}
	for {
		key, ok := d.rawString()
		if !ok {
			return false
		}
		d.ws()
		if !d.eat(':') {
			return false
		}
		d.ws()
		switch string(key) {
		case "kernel":
			var s []byte
			s, ok = d.rawString()
			if ok {
				req.Kernel = internString(s)
			}
		case "n":
			var v int64
			v, ok = d.intv()
			req.N = int(v)
		case "params":
			ok = d.intArray(&req.Params)
		case "dim":
			var v int64
			v, ok = d.intv()
			req.Dim = int(v)
		case "size":
			var v int64
			v, ok = d.intv()
			req.Size = int(v)
		case "iters":
			var v int64
			v, ok = d.intv()
			req.Iters = int(v)
		case "nnz_per_row":
			var v int64
			v, ok = d.intv()
			req.NNZPerRow = int(v)
		case "seed":
			req.Seed, ok = d.intv()
		case "c":
			req.C, ok = d.float()
		case "levels":
			ok = d.levelArray(&req.Levels)
		case "computation":
			// A non-nil pointer is reused and merged into, as the stdlib
			// does on a duplicate key.
			if req.Computation == nil {
				req.Computation = new(ComputationDTO)
			}
			ok = d.computationDTO(req.Computation)
		case "vary":
			var s []byte
			s, ok = d.rawString()
			if ok {
				req.Vary = internString(s)
			}
		case "level":
			var v int64
			v, ok = d.intv()
			req.Level = int(v)
		default:
			return false
		}
		if !ok {
			return false
		}
		d.ws()
		if d.eat(',') {
			d.ws()
			continue
		}
		return d.eat('}') && d.atEnd()
	}
}

// fastDecodeRequest attempts the zero-allocation decode for the hot request
// types; false means "fall back to strictDecodeJSON on the same bytes after
// zeroing v".
func fastDecodeRequest(v any, data []byte) bool {
	switch t := v.(type) {
	case *AnalyzeRequest:
		return fastDecodeAnalyze(t, data)
	case *SweepRequest:
		return fastDecodeSweep(t, data)
	}
	return false
}
