package server

// POST /v1/emulation: Hanlon's memory-emulation question from the paper —
// can N small memories behave as one large one? The emulated machine is a
// two-level hierarchy (each module's local memory inside its own boundary,
// the other N-1 modules reachable across the interconnect), analyzed by the
// same AnalyzeHierarchy machinery the /v1/analyze levels branch uses. The
// ideal machine is a flat PE with one N·m-word memory at full module
// bandwidth. Efficiency compares achieved utilization — the fraction of
// peak compute each machine sustains at its binding boundary: 1.0 means
// the emulation is free (both machines compute bound, or one module), and
// below that the price is the module port (working sets re-fetched at the
// module's intensity, not the aggregate's) or the interconnect,
// whichever binds.

import (
	"context"

	"balarch/internal/model"
)

// maxEmulationModules caps the module count — a service limit; the model
// itself is closed-form in N.
const maxEmulationModules = 1 << 20

// EmulationRequest asks whether N memory modules of module_m words each,
// locally reachable at module_bw words/s and remotely at network_bw
// words/s (default: module_bw, a perfect interconnect), emulate one
// N·module_m-word memory for the given computation.
type EmulationRequest struct {
	C           float64        `json:"c"`
	Computation ComputationDTO `json:"computation"`
	Modules     int            `json:"modules"`
	ModuleM     float64        `json:"module_m"`
	ModuleBW    float64        `json:"module_bw"`
	NetworkBW   float64        `json:"network_bw,omitempty"`
	MaxMemory   float64        `json:"max_memory,omitempty"`
}

// EmulationSideDTO is one machine's balance diagnosis — the emulated
// hierarchy's binding boundary, or the ideal flat machine.
type EmulationSideDTO struct {
	State           string  `json:"state"`
	Intensity       float64 `json:"intensity"`
	AchievableRatio float64 `json:"achievable_ratio"`
	// Utilization is the fraction of peak compute the machine sustains:
	// 1 when compute bound, R/intensity when the binding boundary's I/O
	// cannot feed the PE.
	Utilization    float64 `json:"utilization"`
	BalancedMemory float64 `json:"balanced_memory,omitempty"`
	Rebalanceable  bool    `json:"rebalanceable"`
}

// EmulationResponse compares the emulated machine against the ideal one.
// Boundaries carries the emulated hierarchy's per-boundary detail (boundary
// 1: inside one module; boundary 2: the whole emulated memory behind the
// interconnect), in the same shape the analyze hierarchy branch uses.
type EmulationResponse struct {
	Computation      string           `json:"computation"`
	Law              string           `json:"law"`
	Modules          int              `json:"modules"`
	ModuleM          float64          `json:"module_m"`
	ModuleBW         float64          `json:"module_bw"`
	NetworkBW        float64          `json:"network_bw"`
	EmulatedCapacity float64          `json:"emulated_capacity"`
	Emulated         EmulationSideDTO `json:"emulated"`
	Ideal            EmulationSideDTO `json:"ideal"`
	Boundaries       []BoundaryDTO    `json:"boundaries"`
	BindingBoundary  int              `json:"binding_boundary"`
	Efficiency       float64          `json:"efficiency"`
}

// emulation is the core operation behind POST /v1/emulation.
func (s *Server) emulation(_ context.Context, req *EmulationRequest) (*EmulationResponse, *apiError) {
	comp, apiErr := resolveComputation(req.Computation)
	if apiErr != nil {
		return nil, apiErr
	}
	if req.Modules < 1 {
		return nil, unprocessable("invalid_argument",
			"modules must be at least 1, got %d", req.Modules)
	}
	if req.Modules > maxEmulationModules {
		return nil, unprocessable("invalid_argument",
			"modules %d exceeds service cap %d", req.Modules, maxEmulationModules)
	}
	netBW := req.NetworkBW
	if netBW == 0 {
		netBW = req.ModuleBW
	}
	maxM := req.MaxMemory
	if maxM == 0 {
		maxM = s.maxMemoryDefault
	}
	// The emulated machine, innermost first: one module's memory behind
	// its local port, the other N-1 modules' memory behind the network. A
	// single module degenerates to the flat machine (one level). The
	// resolver owns all machine-description validation, including the 422
	// non_monotone_hierarchy when network_bw exceeds module_bw.
	levels := []LevelDTO{{Name: "module", BW: req.ModuleBW, M: req.ModuleM}}
	if req.Modules > 1 {
		levels = append(levels, LevelDTO{
			Name: "network", BW: netBW, M: float64(req.Modules-1) * req.ModuleM,
		})
	}
	h, apiErr := resolveHierarchy(req.C, levels)
	if apiErr != nil {
		return nil, apiErr
	}
	a, err := model.AnalyzeHierarchy(h, comp, maxM)
	if err != nil {
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	ideal, err := model.Analyze(model.PE{
		C: req.C, IO: req.ModuleBW, M: float64(req.Modules) * req.ModuleM,
	}, comp, maxM)
	if err != nil {
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	bind := a.BindingBoundary()
	emUtil := utilization(bind.Intensity, bind.AchievableRatio)
	idealUtil := utilization(ideal.Intensity, ideal.AchievableRatio)
	resp := &EmulationResponse{
		Computation:      comp.Name,
		Law:              lawDescription(comp.Law),
		Modules:          req.Modules,
		ModuleM:          req.ModuleM,
		ModuleBW:         req.ModuleBW,
		NetworkBW:        netBW,
		EmulatedCapacity: float64(req.Modules) * req.ModuleM,
		Emulated: EmulationSideDTO{
			State:           balanceStateName(a.State),
			Intensity:       bind.Intensity,
			AchievableRatio: bind.AchievableRatio,
			Utilization:     emUtil,
			BalancedMemory:  bind.BalancedMemory,
			Rebalanceable:   bind.Rebalanceable,
		},
		Ideal: EmulationSideDTO{
			State:           balanceStateName(ideal.State),
			Intensity:       ideal.Intensity,
			AchievableRatio: ideal.AchievableRatio,
			Utilization:     idealUtil,
			BalancedMemory:  ideal.BalancedMemory,
			Rebalanceable:   ideal.Rebalanceable,
		},
		BindingBoundary: a.Binding,
	}
	for _, b := range a.Boundaries {
		resp.Boundaries = append(resp.Boundaries, BoundaryDTO{
			Boundary:        b.Boundary,
			Name:            b.Level.Name,
			BW:              b.Level.BW,
			CapacityWithin:  b.CapacityWithin,
			Intensity:       b.Intensity,
			AchievableRatio: b.AchievableRatio,
			State:           balanceStateName(b.State),
			BalancedMemory:  b.BalancedMemory,
			Rebalanceable:   b.Rebalanceable,
		})
	}
	if idealUtil > 0 {
		resp.Efficiency = emUtil / idealUtil
		if resp.Efficiency > 1 {
			// The emulated machine repeats the ideal's boundary (same
			// capacity, bandwidth no higher), so it can never beat it;
			// clamp stray float drift only.
			resp.Efficiency = 1
		}
	}
	return resp, nil
}

// utilization is the fraction of peak compute a boundary sustains:
// compute time : I/O time = intensity : R, so an I/O-bound boundary
// (intensity > R) runs the PE at R/intensity of peak, a compute-bound
// one at 1.
func utilization(intensity, ratio float64) float64 {
	if intensity <= 0 || ratio >= intensity {
		return 1
	}
	if ratio <= 0 {
		return 0
	}
	return ratio / intensity
}
