package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestAPIIndex(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	w := do(h, http.MethodGet, "/v1/", "")
	if w.Code != 200 {
		t.Fatalf("GET /v1/: %d\n%s", w.Code, w.Body.String())
	}
	var idx APIIndexResponse
	if err := json.Unmarshal(w.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Service == "" {
		t.Error("index has no service name")
	}
	// The index is generated from the route table itself: every route the
	// mux serves must appear, with its method and description.
	if len(idx.Routes) != len(apiRoutes) {
		t.Fatalf("index advertises %d routes, route table has %d", len(idx.Routes), len(apiRoutes))
	}
	byPattern := make(map[string]APIRouteInfo, len(idx.Routes))
	for _, rt := range idx.Routes {
		if rt.Method == "" || rt.Path == "" || rt.Description == "" {
			t.Errorf("incomplete route entry: %+v", rt)
		}
		byPattern[rt.Method+" "+rt.Path] = rt
	}
	for _, rt := range apiRoutes {
		method, path, _ := strings.Cut(rt.pattern, " ")
		path = strings.TrimSuffix(path, "{$}")
		if _, ok := byPattern[method+" "+path]; !ok {
			t.Errorf("route %q missing from the index", rt.pattern)
		}
	}
	if len(idx.ErrorCodes) != len(errorCodes()) || !sort.StringsAreSorted(idx.ErrorCodes) {
		t.Errorf("index error codes = %v, want the sorted registry", idx.ErrorCodes)
	}
	if len(idx.Computations) == 0 || len(idx.Experiments) == 0 {
		t.Errorf("index catalogs empty: %d computations, %d experiments",
			len(idx.Computations), len(idx.Experiments))
	}

	// `GET /v1/{$}` is an exact match: unknown paths under /v1/ still
	// draw the catch-all's 404, not the index.
	wantStatus(t, h, http.MethodGet, "/v1/definitely-not-a-route", "", 404, "unknown_route")
	// And the index is stable bytes (sync.Once): two reads agree.
	w2 := do(h, http.MethodGet, "/v1/", "")
	if w.Body.String() != w2.Body.String() {
		t.Error("two index reads returned different bytes")
	}
}

// TestErrorCodesComplete greps the package source for error-code literals
// and requires the errorCodes() registry (which GET /v1/ serves) to match
// exactly — a new ErrorBody{"..."} literal without a registry entry fails
// here, not in production.
func TestErrorCodesComplete(t *testing.T) {
	re := regexp.MustCompile(`(?:ErrorBody\{|badRequest\(|notFound\(|unprocessable\(|conflict\()"([a-z_]+)"`)
	found := make(map[string]bool)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range re.FindAllSubmatch(src, -1) {
			found[string(m[1])] = true
		}
	}
	if len(found) == 0 {
		t.Fatal("grep found no error-code literals — pattern rot?")
	}
	registry := make(map[string]bool, len(errorCodes()))
	for _, code := range errorCodes() {
		if registry[code] {
			t.Errorf("registry lists %q twice", code)
		}
		registry[code] = true
	}
	for code := range found {
		if !registry[code] {
			t.Errorf("source uses error code %q but errorCodes() does not list it", code)
		}
	}
	for code := range registry {
		if !found[code] {
			t.Errorf("errorCodes() lists %q but no source literal uses it", code)
		}
	}
}

func TestJobListPagination(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	ids := make(map[string]bool)
	for i := 0; i < 5; i++ {
		st, code := submitJob(t, h, fmt.Sprintf(
			`{"op": "analyze", "request": {"pe": {"c": %de6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`, i+2))
		if code != 202 {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids[st.ID] = true
	}

	// Page through with limit 2: every job exactly once, then no cursor.
	collected := make(map[string]bool)
	cursor := ""
	pages := 0
	for {
		path := "/v1/jobs?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		w := do(h, http.MethodGet, path, "")
		if w.Code != 200 {
			t.Fatalf("page %d: %d\n%s", pages, w.Code, w.Body.String())
		}
		var resp JobListResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Jobs) > 2 {
			t.Fatalf("page %d has %d jobs, limit was 2", pages, len(resp.Jobs))
		}
		for _, j := range resp.Jobs {
			if collected[j.ID] {
				t.Fatalf("job %s appeared on two pages", j.ID)
			}
			collected[j.ID] = true
		}
		pages++
		if resp.NextCursor == "" {
			break
		}
		cursor = resp.NextCursor
		if pages > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(collected) != len(ids) {
		t.Fatalf("paged %d jobs, submitted %d", len(collected), len(ids))
	}
	if pages < 3 {
		t.Fatalf("5 jobs at limit 2 took %d pages, want ≥ 3", pages)
	}

	// limit 0 stays the old everything-at-once shape, with no cursor key.
	w := do(h, http.MethodGet, "/v1/jobs", "")
	var all JobListResponse
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Jobs) != 5 || all.NextCursor != "" {
		t.Fatalf("unpaged list: %d jobs, cursor %q", len(all.Jobs), all.NextCursor)
	}
	if strings.Contains(w.Body.String(), "next_cursor") {
		t.Fatal("unpaged list serialized a next_cursor key")
	}

	// The state filter composes with the limit.
	w = do(h, http.MethodGet, "/v1/jobs?state=done&limit=100", "")
	if w.Code != 200 {
		t.Fatalf("filtered page: %d", w.Code)
	}

	// Bad inputs are typed 400s.
	wantStatus(t, h, http.MethodGet, "/v1/jobs?limit=nope", "", 400, "invalid_argument")
	wantStatus(t, h, http.MethodGet, "/v1/jobs?limit=-1", "", 400, "invalid_argument")
	wantStatus(t, h, http.MethodGet, "/v1/jobs?limit=2&cursor=!!!", "", 400, "bad_cursor")
	wantStatus(t, h, http.MethodGet, "/v1/jobs?limit=2&cursor=bm90LWEtY3Vyc29y", "", 400, "bad_cursor")
}
