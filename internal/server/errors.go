package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"balarch/internal/report"
)

// ErrorBody is the payload of the API's typed error envelope. Every
// non-2xx response carries exactly one, so clients can switch on Code
// without parsing prose.
type ErrorBody struct {
	// Code is a stable machine-readable identifier (e.g. "bad_json",
	// "unknown_experiment", "invalid_argument").
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
}

// errorEnvelope is the wire shape of every error response:
// {"error": {"code": ..., "message": ...}}.
type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// apiError pairs an HTTP status with an envelope body. It implements error
// so core operations can return it through ordinary error plumbing.
type apiError struct {
	Status int
	Body   ErrorBody
	// RetryAfterSeconds, when positive, becomes a Retry-After header —
	// the admission-control answer on 429s.
	RetryAfterSeconds int
}

func (e *apiError) Error() string {
	return fmt.Sprintf("%d %s: %s", e.Status, e.Body.Code, e.Body.Message)
}

// The four mappings the API promises: malformed requests are 400, missing
// resources are 404, well-formed but semantically invalid requests are 422,
// and everything unexpected is 500.

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Body: ErrorBody{code, fmt.Sprintf(format, args...)}}
}

func notFound(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusNotFound, Body: ErrorBody{code, fmt.Sprintf(format, args...)}}
}

func unprocessable(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusUnprocessableEntity, Body: ErrorBody{code, fmt.Sprintf(format, args...)}}
}

// conflict is 409: the request is fine, the resource's current state is
// not compatible with it (a result fetched before the job is done).
func conflict(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusConflict, Body: ErrorBody{code, fmt.Sprintf(format, args...)}}
}

func internalError(err error) *apiError {
	return &apiError{Status: http.StatusInternalServerError, Body: ErrorBody{"internal", err.Error()}}
}

// errorCodes returns every code the error envelope can carry, sorted —
// the GET /v1/ index serves it so clients can switch on a closed set.
// TestErrorCodesComplete greps the package source for code literals and
// fails if this registry and reality diverge.
func errorCodes() []string {
	return []string{
		"bad_authorization",
		"bad_cursor",
		"bad_json",
		"batch_too_large",
		"body_too_large",
		"cancelled",
		"draining",
		"internal",
		"invalid_argument",
		"invalid_priority",
		"job_canceled",
		"job_failed",
		"jobs_disabled",
		"no_such_series",
		"non_monotone_hierarchy",
		"not_done",
		"not_terminal",
		"over_budget",
		"overloaded",
		"panic",
		"rate_limited",
		"result_gone",
		"unknown_api_key",
		"unknown_computation",
		"unknown_experiment",
		"unknown_job",
		"unknown_kernel",
		"unknown_op",
		"unknown_route",
	}
}

// asAPIError maps an arbitrary error from the model/report/experiment layers
// to its API status: typed sentinels keep their promised codes, anything
// unrecognized is an internal error.
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, report.ErrNoSeries) {
		return notFound("no_such_series", "%v", err)
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &apiError{Status: http.StatusRequestEntityTooLarge,
			Body: ErrorBody{"body_too_large", mbe.Error()}}
	}
	return internalError(err)
}

// writeError emits the envelope for err on w. The envelope rides the same
// append encoder as the hot 2xx bodies (pooled buffer, byte-identical to
// encoding/json), so error responses don't allocate either.
func writeError(w http.ResponseWriter, err *apiError) {
	w.Header().Set("Content-Type", "application/json")
	if err.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(err.RetryAfterSeconds))
	}
	w.WriteHeader(err.Status)
	bb := getBuf()
	data, encErr := appendJSONBody(bb.b[:0], errorEnvelope{Error: err.Body})
	if encErr != nil {
		putBuf(bb) // headers are sent; nothing left to do
		return
	}
	_, _ = w.Write(data)
	bb.b = data
	putBuf(bb)
}

// writeJSON emits a 200 with the JSON encoding of v.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus emits status with the JSON encoding of v. It encodes
// through appendJSONBody — the same bytes job results are stored as —
// so there is exactly one wire encoding and the async/sync
// byte-identity contract cannot drift across two hand-synced encoders.
// Buffering (into a pooled buffer) before WriteHeader also means an encode
// failure can still answer with a proper 500 instead of a torn 200.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	bb := getBuf()
	data, err := appendJSONBody(bb.b[:0], v)
	if err != nil {
		putBuf(bb)
		writeError(w, internalError(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
	bb.b = data
	putBuf(bb)
}

// encodeJSONBody is the one wire encoding of a 2xx body (two-space
// indent, trailing newline): writeJSON/writeJSONStatus put it on the
// socket, the job executor stores it — which is why an async result is
// byte-identical to the synchronous response for the same request.
func encodeJSONBody(v any) ([]byte, error) {
	return appendJSONBody(nil, v)
}
