package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"balarch/internal/report"
)

// ErrorBody is the payload of the API's typed error envelope. Every
// non-2xx response carries exactly one, so clients can switch on Code
// without parsing prose.
type ErrorBody struct {
	// Code is a stable machine-readable identifier (e.g. "bad_json",
	// "unknown_experiment", "invalid_argument").
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
}

// errorEnvelope is the wire shape of every error response:
// {"error": {"code": ..., "message": ...}}.
type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// apiError pairs an HTTP status with an envelope body. It implements error
// so core operations can return it through ordinary error plumbing.
type apiError struct {
	Status int
	Body   ErrorBody
}

func (e *apiError) Error() string {
	return fmt.Sprintf("%d %s: %s", e.Status, e.Body.Code, e.Body.Message)
}

// The four mappings the API promises: malformed requests are 400, missing
// resources are 404, well-formed but semantically invalid requests are 422,
// and everything unexpected is 500.

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{http.StatusBadRequest, ErrorBody{code, fmt.Sprintf(format, args...)}}
}

func notFound(code, format string, args ...any) *apiError {
	return &apiError{http.StatusNotFound, ErrorBody{code, fmt.Sprintf(format, args...)}}
}

func unprocessable(code, format string, args ...any) *apiError {
	return &apiError{http.StatusUnprocessableEntity, ErrorBody{code, fmt.Sprintf(format, args...)}}
}

func internalError(err error) *apiError {
	return &apiError{http.StatusInternalServerError, ErrorBody{"internal", err.Error()}}
}

// asAPIError maps an arbitrary error from the model/report/experiment layers
// to its API status: typed sentinels keep their promised codes, anything
// unrecognized is an internal error.
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, report.ErrNoSeries) {
		return notFound("no_such_series", "%v", err)
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &apiError{http.StatusRequestEntityTooLarge,
			ErrorBody{"body_too_large", mbe.Error()}}
	}
	return internalError(err)
}

// writeError emits the envelope for err on w.
func writeError(w http.ResponseWriter, err *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(err.Status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorEnvelope{Error: err.Body}) // headers are sent; nothing left to do
}

// writeJSON emits a 200 with the JSON encoding of v.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already sent; the connection is the only casualty.
		return
	}
}
