package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchRequest drives one request through the full middleware stack and
// fails the bench on a non-200.
func benchRequest(b *testing.B, h http.Handler, method, path, body string) {
	b.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("%s %s: %d: %s", method, path, w.Code, w.Body.String())
	}
}

// benchWriter is a reusable ResponseWriter: the header map and body buffer
// persist across iterations so the harness itself contributes nothing to
// allocs/op beyond the header value slices the server sets.
type benchWriter struct {
	hdr  http.Header
	code int
	buf  []byte
}

func (w *benchWriter) Header() http.Header { return w.hdr }

func (w *benchWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *benchWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *benchWriter) reset() {
	w.code = 0
	w.buf = w.buf[:0]
	clear(w.hdr)
}

// benchClient replays one fixed request with zero per-iteration setup: the
// request, its body reader, and the response writer are all reused, and
// X-Request-Id is preset so the id middleware takes the 0-alloc echo path.
// What the gated benchmarks then report is the server's own cost.
type benchClient struct {
	b    *testing.B
	h    http.Handler
	req  *http.Request
	body *bytes.Reader
	w    benchWriter
}

func newBenchClient(b *testing.B, h http.Handler, method, path, body string) *benchClient {
	br := bytes.NewReader([]byte(body))
	req := httptest.NewRequest(method, path, nil)
	req.Body = io.NopCloser(br)
	req.ContentLength = int64(len(body))
	req.Header.Set(RequestIDHeader, "bench-client")
	return &benchClient{b: b, h: h, req: req, body: br, w: benchWriter{hdr: make(http.Header)}}
}

func (c *benchClient) do() {
	c.body.Seek(0, io.SeekStart)
	c.w.reset()
	c.h.ServeHTTP(&c.w, c.req)
	if c.w.code != http.StatusOK {
		c.b.Fatalf("%s %s: %d: %s", c.req.Method, c.req.URL.Path, c.w.code, c.w.buf)
	}
}

// BenchmarkServerAnalyze measures the analytic hot path end to end:
// middleware, strict decode, the balanced-memory bisection, and JSON
// encode. This is the query a capacity planner issues per machine shape,
// so it must stay in the microsecond regime.
func BenchmarkServerAnalyze(b *testing.B) {
	s := New(Options{})
	h := s.Handler()
	body := `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`
	c := newBenchClient(b, h, "POST", "/v1/analyze", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.do()
	}
}

// sweepBenchBody measures a kernel that executes for real — external sort
// generates and sorts m² keys per point — so the cold/cached pair exposes
// genuine kernel work, not just counting loops.
const sweepBenchBody = `{"kernel": "sort", "params": [64, 128, 256], "seed": 7}`

// BenchmarkServerSweepCold measures the uncached sweep path: every
// iteration runs the kernels afresh on a new server.
func BenchmarkServerSweepCold(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		benchRequest(b, s.Handler(), "POST", "/v1/sweep", sweepBenchBody)
	}
}

// BenchmarkServerSweepCached measures the steady-state sweep path: the
// memo absorbs every repeat, so iterations pay only decode + cache lookup
// + encode. Compare against BenchmarkServerSweepCold — the ratio is the
// cache's leverage (≥ 10× is the acceptance floor; measured ~500×).
func BenchmarkServerSweepCached(b *testing.B) {
	s := New(Options{})
	h := s.Handler()
	benchRequest(b, h, "POST", "/v1/sweep", sweepBenchBody) // warm the memo
	c := newBenchClient(b, h, "POST", "/v1/sweep", sweepBenchBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.do()
	}
}

// BenchmarkServerAnalyzeHierarchy measures the hierarchy analyze path end
// to end: middleware, strict decode with the levels array, the per-boundary
// diagnosis, and JSON encode.
func BenchmarkServerAnalyzeHierarchy(b *testing.B) {
	s := New(Options{})
	h := s.Handler()
	body := `{"pe": {"c": 1e9}, "levels": [
		{"name": "sram", "bw": 4e9, "m": 1024},
		{"name": "dram", "bw": 1e9, "m": 262144},
		{"name": "disk", "bw": 1e6, "m": 67108864}],
		"computation": {"name": "matmul"}}`
	c := newBenchClient(b, h, "POST", "/v1/analyze", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.do()
	}
}

// BenchmarkSweepLevel measures the analytic hierarchy level sweep cold:
// every iteration runs the 16-point capacity sweep afresh on a new server
// (decode, validation, the engine fan-out, per-point analysis, encode) —
// the hierarchy counterpart of BenchmarkServerSweepCold, regression-gated
// from day one.
func BenchmarkSweepLevel(b *testing.B) {
	body := `{"kernel": "hierarchy", "c": 8e6,
	  "levels": [{"bw": 1e6, "m": 16}, {"bw": 5e5, "m": 1048576}],
	  "computation": {"name": "sorting"},
	  "params": [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288]}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		benchRequest(b, s.Handler(), "POST", "/v1/sweep", body)
	}
}

// BenchmarkPromExposition measures rendering GET /metrics?format=prometheus
// through the full stack: the route-slot drain, the stage histograms, and
// the append-style text encoder into a pooled buffer. The exposition is
// what a scraper pulls every few seconds in production, so its cost — and
// its allocation count, gated in CI — must stay flat as families grow.
func BenchmarkPromExposition(b *testing.B) {
	s := New(Options{})
	h := s.Handler()
	// Populate the registry so the exposition renders real series, not
	// the empty-server skeleton.
	benchRequest(b, h, "POST", "/v1/analyze",
		`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`)
	c := newBenchClient(b, h, "GET", "/metrics?format=prometheus", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.do()
	}
}

// BenchmarkTracedAnalyze measures the analyze hot path with every request
// captured: traceparent parse, span records from the pool, the stage
// spans, ring filing, and the response echo header. The delta against
// BenchmarkServerAnalyze is the full price of tracing a request — the
// head-sampled production path pays it on one request in N.
func BenchmarkTracedAnalyze(b *testing.B) {
	s := New(Options{TraceSampleEvery: 1})
	h := s.Handler()
	body := `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`
	c := newBenchClient(b, h, "POST", "/v1/analyze", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.do()
	}
}

// BenchmarkServerBatch8 measures an 8-item heterogeneous batch through the
// pool fan-out.
func BenchmarkServerBatch8(b *testing.B) {
	s := New(Options{})
	h := s.Handler()
	items := []string{
		`{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`,
		`{"op": "rebalance", "request": {"computation": {"name": "matmul"}, "alpha": 2, "m_old": 1024}}`,
		`{"op": "rebalance", "request": {"computation": {"name": "sorting"}, "alpha": 2, "m_old": 1024}}`,
		`{"op": "analyze", "request": {"pe": {"c": 10e6, "io": 20e6, "m": 65536}, "computation": {"name": "matmul"}}}`,
		`{"op": "rebalance", "request": {"computation": {"name": "grid", "dim": 3}, "alpha": 2, "m_old": 4096}}`,
		`{"op": "analyze", "request": {"pe": {"c": 1e9, "io": 1e6, "m": 1048576}, "computation": {"name": "sorting"}}}`,
		`{"op": "rebalance", "request": {"computation": {"name": "fft"}, "alpha": 3, "m_old": 256}}`,
		`{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "matvec"}}}`,
	}
	body := `{"requests": [` + strings.Join(items, ",") + `]}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, h, "POST", "/v1/batch", body)
	}
}

// TestSweepCacheLeverage pins the acceptance floor deterministically: the
// cached path must not re-run kernel work (verified by the miss counter,
// not wall clock, so the test cannot flake on a loaded machine).
func TestSweepCacheLeverage(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	body := `{"kernel": "matmul", "n": 256, "params": [4, 8, 16, 32]}`
	for i := 0; i < 50; i++ {
		req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("iter %d: %d: %s", i, w.Code, w.Body.String())
		}
		var resp SweepResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if wantCached := i > 0; resp.Cached != wantCached {
			t.Fatalf("iter %d: cached = %v, want %v", i, resp.Cached, wantCached)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.CacheMisses != 1 || snap.CacheHits != 49 {
		t.Errorf("misses/hits = %d/%d, want 1/49: repeats must never re-run the kernels",
			snap.CacheMisses, snap.CacheHits)
	}
}
