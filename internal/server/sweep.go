package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"balarch/internal/kernels"
	"balarch/internal/obs"
)

// Service-level caps on sweep work, so one request cannot monopolize the
// daemon. Violations are 422s: the request is well-formed, just too big for
// the service.
const (
	maxSweepPoints  = 64      // points per sweep
	maxSweepN       = 1 << 22 // problem size for count-only kernels
	maxSortMemory   = 2048    // sort executes for real: n = m² keys per point
	maxGridDim      = 4
	maxGridCells    = 1 << 24 // size^dim
	maxGridIters    = 64
	maxSpMVDensity  = 1 << 10 // nnz per row
	maxConvolveTaps = 1 << 16

	// Work caps, bounding a point's (or request's) loop iterations rather
	// than its nominal problem size. The blocked counting kernels cost
	// O((n/b)²) per point, so n alone being capped still admits ~10¹³-step
	// requests at b = 1; and the sort and grid kernels execute for real,
	// so their *total* work across a request's points is what must be
	// bounded. Found by the DTO fuzz targets, kept as service contracts.
	maxBlocksPerSide = 4096    // (n/param)² ≤ ~16.8M counting steps per point
	maxSortKeysTotal = 1 << 23 // Σ params² keys actually sorted per request
	maxGridWorkTotal = 1 << 27 // cells × iters × points per request
)

// sweepKernel is one row of the sweep registry: how to validate a request
// for this kernel and how to run it.
type sweepKernel struct {
	validate func(*SweepRequest) *apiError
	run      func(ctx context.Context, req *SweepRequest) ([]kernels.RatioPoint, error)
}

// sweepKernels maps SweepRequest.Kernel to its implementation. Every entry
// runs on the engine pool via kernels.Sweep, so the server's parallelism
// hint (carried in ctx) bounds the fan-out.
var sweepKernels = map[string]sweepKernel{
	"matmul": {
		validate: needBlockedN,
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.MatMulRatioSweep(ctx, r.N, r.Params)
		},
	},
	"lu": {
		validate: needBlockedN,
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.LURatioSweep(ctx, r.N, r.Params)
		},
	},
	"fft": {
		validate: needN,
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.FFTRatioSweep(ctx, r.N, r.Params)
		},
	},
	"strassen": {
		validate: needN,
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.StrassenRatioSweep(ctx, r.N, r.Params)
		},
	},
	"matvec": {
		validate: needN,
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.MatVecRatioSweep(ctx, r.N, r.Params)
		},
	},
	"trisolve": {
		validate: needBlockedN,
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.TriSolveRatioSweep(ctx, r.N, r.Params)
		},
	},
	"convolve": {
		validate: func(r *SweepRequest) *apiError {
			if err := needN(r); err != nil {
				return err
			}
			for _, k := range r.Params {
				if k > maxConvolveTaps {
					return unprocessable("invalid_argument",
						"convolve taps %d exceeds the service cap %d", k, maxConvolveTaps)
				}
			}
			return nil
		},
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.ConvolveRatioSweep(ctx, r.N, r.Params)
		},
	},
	"spmv": {
		validate: func(r *SweepRequest) *apiError {
			if err := needN(r); err != nil {
				return err
			}
			if r.NNZPerRow <= 0 || r.NNZPerRow > maxSpMVDensity {
				return unprocessable("invalid_argument",
					"spmv nnz_per_row %d must be in [1, %d]", r.NNZPerRow, maxSpMVDensity)
			}
			return nil
		},
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.SpMVRatioSweep(ctx, r.N, r.NNZPerRow, r.Params)
		},
	},
	"sort": {
		// Sort generates and actually sorts m² keys per point, so it gets
		// the tightest caps: per-point memory and total keys per request.
		validate: func(r *SweepRequest) *apiError {
			var keys int64
			for _, m := range r.Params {
				if m > maxSortMemory {
					return unprocessable("invalid_argument",
						"sort memory %d exceeds the service cap %d (each point sorts m² keys)",
						m, maxSortMemory)
				}
				keys += int64(m) * int64(m)
			}
			if keys > maxSortKeysTotal {
				return unprocessable("invalid_argument",
					"sort request totals %d keys across its points, service cap is %d",
					keys, maxSortKeysTotal)
			}
			return nil
		},
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.SortRatioSweep(ctx, r.Params, r.Seed)
		},
	},
	"hierarchy": {
		// The analytic multi-level sweep (internal/server/hierarchy.go):
		// params sweep a chosen level's capacity or boundary bandwidth
		// through the hierarchy balance model instead of an instrumented
		// kernel. No N cap applies — each point is O(depth) arithmetic.
		validate: validateHierarchySweep,
		run:      runHierarchySweep,
	},
	"grid": {
		validate: func(r *SweepRequest) *apiError {
			if r.Dim < 1 || r.Dim > maxGridDim {
				return unprocessable("invalid_argument",
					"grid dim %d must be in [1, %d]", r.Dim, maxGridDim)
			}
			if r.Size <= 0 {
				return unprocessable("invalid_argument", "grid size %d must be positive", r.Size)
			}
			cells := 1
			for d := 0; d < r.Dim; d++ {
				if cells > maxGridCells/r.Size {
					return unprocessable("invalid_argument",
						"grid size %d^%d exceeds the service cap of %d cells",
						r.Size, r.Dim, maxGridCells)
				}
				cells *= r.Size
			}
			if r.Iters <= 0 || r.Iters > maxGridIters {
				return unprocessable("invalid_argument",
					"grid iters %d must be in [1, %d]", r.Iters, maxGridIters)
			}
			if work := int64(cells) * int64(r.Iters) * int64(len(r.Params)); work > maxGridWorkTotal {
				return unprocessable("invalid_argument",
					"grid request totals %d cell-updates (%d cells × %d iters × %d points), service cap is %d",
					work, cells, r.Iters, len(r.Params), maxGridWorkTotal)
			}
			return nil
		},
		run: func(ctx context.Context, r *SweepRequest) ([]kernels.RatioPoint, error) {
			return kernels.GridRatioSweep(ctx, r.Dim, r.Size, r.Iters, r.Params)
		},
	},
}

// needN is the common validation for kernels parameterized by one problem
// size.
func needN(r *SweepRequest) *apiError {
	if r.N <= 0 || r.N > maxSweepN {
		return unprocessable("invalid_argument",
			"%s n=%d must be in [1, %d]", r.Kernel, r.N, maxSweepN)
	}
	return nil
}

// needBlockedN extends needN for the square blocked kernels, whose counting
// loops cost O((n/param)²) per point: a tiny block against a huge n is a
// ~10¹³-iteration request the n cap alone would admit.
func needBlockedN(r *SweepRequest) *apiError {
	if err := needN(r); err != nil {
		return err
	}
	for _, b := range r.Params {
		if b > 0 && r.N/b > maxBlocksPerSide {
			return unprocessable("invalid_argument",
				"%s n=%d with block %d means %d blocks per side, service cap is %d",
				r.Kernel, r.N, b, r.N/b, maxBlocksPerSide)
		}
	}
	return nil
}

// sweepKernelNames lists the registry for error messages.
func sweepKernelNames() string {
	names := make([]string, 0, len(sweepKernels))
	for name := range sweepKernels {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// validateSweep resolves and validates a sweep request.
func validateSweep(req *SweepRequest) (sweepKernel, *apiError) {
	k, ok := sweepKernels[strings.ToLower(req.Kernel)]
	if !ok {
		if req.Kernel == "" {
			return sweepKernel{}, unprocessable("invalid_argument",
				"kernel is required (one of %s)", sweepKernelNames())
		}
		return sweepKernel{}, unprocessable("unknown_kernel",
			"unknown kernel %q (one of %s)", req.Kernel, sweepKernelNames())
	}
	if name := strings.ToLower(req.Kernel); name != "hierarchy" &&
		(len(req.Levels) > 0 || req.C != 0 || req.Computation != nil || req.Vary != "" || req.Level != 0) {
		// The same mutual-exclusion contract analyze/rebalance/roofline
		// enforce: silently running a flat kernel for a request that
		// described a hierarchy would answer a question nobody asked.
		return sweepKernel{}, unprocessable("invalid_argument",
			"c/levels/computation/vary/level are hierarchy-sweep fields: they need kernel \"hierarchy\", not %q", req.Kernel)
	}
	if len(req.Params) == 0 {
		return sweepKernel{}, unprocessable("invalid_argument", "params must list at least one point")
	}
	if len(req.Params) > maxSweepPoints {
		return sweepKernel{}, unprocessable("invalid_argument",
			"params lists %d points, service cap is %d", len(req.Params), maxSweepPoints)
	}
	for _, p := range req.Params {
		if p <= 0 {
			return sweepKernel{}, unprocessable("invalid_argument",
				"params must be positive, got %d", p)
		}
	}
	if err := k.validate(req); err != nil {
		return sweepKernel{}, err
	}
	return k, nil
}

// sweepCacheKey canonicalizes a validated request into the memo key: two
// requests that measure the same curve — whatever the order of their params
// — share one entry. Fields a kernel ignores are normalized out so they
// cannot split the key space.
func sweepCacheKey(req *SweepRequest) string {
	return string(appendSweepCacheKey(nil, req, sortedCopy(req.Params)))
}

// appendSweepCacheKey appends req's memo key to dst, byte-identical to the
// fmt.Sprintf it replaced ("sweep/<kernel>/n=0/.../params=[64 128]") but
// built with strconv appends so the cached hot path never allocates.
// sortedParams is the caller's already-sorted copy of req.Params.
func appendSweepCacheKey(dst []byte, req *SweepRequest, sortedParams []int) []byte {
	kernel := strings.ToLower(req.Kernel)
	n, dim, size, iters, nnz, seed := req.N, 0, 0, 0, 0, int64(0)
	switch kernel {
	case "grid":
		n, dim, size, iters = 0, req.Dim, req.Size, req.Iters
	case "sort":
		n, seed = 0, req.Seed
	case "spmv":
		nnz = req.NNZPerRow
	case "hierarchy":
		n = 0
	}
	dst = append(dst, "sweep/"...)
	dst = append(dst, kernel...)
	dst = append(dst, "/n="...)
	dst = strconv.AppendInt(dst, int64(n), 10)
	dst = append(dst, "/dim="...)
	dst = strconv.AppendInt(dst, int64(dim), 10)
	dst = append(dst, "/size="...)
	dst = strconv.AppendInt(dst, int64(size), 10)
	dst = append(dst, "/iters="...)
	dst = strconv.AppendInt(dst, int64(iters), 10)
	dst = append(dst, "/nnz="...)
	dst = strconv.AppendInt(dst, int64(nnz), 10)
	dst = append(dst, "/seed="...)
	dst = strconv.AppendInt(dst, seed, 10)
	dst = append(dst, "/params=["...)
	for i, p := range sortedParams {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendInt(dst, int64(p), 10)
	}
	dst = append(dst, ']')
	if kernel == "hierarchy" {
		// The analytic sweep's whole machine description is key material;
		// the suffix rides only on this kernel so every other key stays
		// exactly as before. Levels and computation are JSON-encoded, not
		// %v-joined: client-controlled level names could otherwise forge a
		// colliding key and read another machine's cached points. (This
		// branch allocates; the gated hot benchmarks sweep flat kernels.)
		level := req.Level
		if level == 0 {
			level = 1
		}
		vary, _ := varyKind(req.Vary)
		comp := ComputationDTO{}
		if req.Computation != nil {
			comp = *req.Computation
		}
		lv, _ := json.Marshal(req.Levels)
		cp, _ := json.Marshal(comp)
		dst = fmt.Appendf(dst, "/c=%v/vary=%s/level=%d/levels=%s/comp=%s",
			req.C, vary, level, lv, cp)
	}
	return dst
}

// maxSweepCacheEntries bounds the sweep memo so a long-lived daemon
// cannot be grown without limit by clients iterating parameter values:
// at the cap the memo is flushed wholesale (epoch eviction — in-flight
// computations finish unharmed, their callers still get values).
const maxSweepCacheEntries = 1024

// runSweep executes (or recalls) a sweep and shapes the response. The
// engine cache gives concurrent identical requests single-flight semantics:
// under a stampede of equal sweeps the kernels run once. The sweep always
// executes in canonical (sorted) parameter order and the response is
// reordered to the requester's params, so the same request returns the same
// point order whichever param permutation populated the memo.
func (s *Server) runSweep(ctx context.Context, req *SweepRequest) (*SweepResponse, *apiError) {
	k, apiErr := validateSweep(req)
	if apiErr != nil {
		return nil, apiErr
	}
	sc := getSweepScratch()
	sc.params = append(sc.params[:0], req.Params...)
	sort.Ints(sc.params)
	sc.key = appendSweepCacheKey(sc.key[:0], req, sc.params)

	// The memoized case first: a plain map probe on the key bytes, no
	// canonical copy, no flight context, no single-flight bookkeeping.
	tr := obs.TraceFrom(ctx)
	t0 := time.Now()
	if pts, ok := s.sweeps.Lookup(sc.key); ok {
		s.metrics.CacheHit()
		s.obsStage(tr, obs.StageCacheLookup, t0)
		resp := shapeSweepResponse(req, sc.params, pts, true)
		putSweepScratch(sc)
		return resp, nil
	}
	s.obsStage(tr, obs.StageCacheLookup, t0)

	canonical := *req
	canonical.Params = sc.params
	// The flight is detached from the initiating request's cancellation:
	// a joiner must not fail because the first caller disconnected. The
	// server's own request budget bounds it instead, and the parallelism
	// hint (a context value) survives the detach.
	fctx := context.WithoutCancel(s.sweepContext(ctx))
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(fctx, s.opts.RequestTimeout)
		defer cancel()
	}
	if s.sweeps.Len() >= maxSweepCacheEntries {
		s.sweeps.Reset()
	}
	t0 = time.Now()
	pts, err, hit := s.sweeps.Do(string(sc.key), func() ([]kernels.RatioPoint, error) {
		return k.run(fctx, &canonical)
	})
	// The flight duration is a trace span only: the per-point kernel
	// costs already stream into the compute stage histogram through the
	// pool observer (sweepContext), and a joiner's wait is not compute.
	tr.Add(obs.StageCompute, t0, time.Since(t0))
	if hit {
		s.metrics.CacheHit()
	} else {
		s.metrics.CacheMiss()
	}
	if err != nil {
		putSweepScratch(sc)
		return nil, asSweepError(err)
	}
	resp := shapeSweepResponse(req, sc.params, pts, hit)
	putSweepScratch(sc) // after shaping: canonical.Params aliases sc.params
	return resp, nil
}

// shapeSweepResponse builds the (pooled) response: pts[i] measures
// sortedParams[i], and the answer comes back in the request's own param
// order via binary search — duplicate params land on the same measured
// point, as the map rebuild it replaced did.
func shapeSweepResponse(req *SweepRequest, sortedParams []int, pts []kernels.RatioPoint, cached bool) *SweepResponse {
	resp := getSweepResponse()
	resp.Kernel = strings.ToLower(req.Kernel)
	resp.Cached = cached
	points := resp.Points[:0]
	for _, param := range req.Params {
		p := pts[sort.SearchInts(sortedParams, param)]
		points = append(points, SweepPointDTO{
			Memory: p.Memory,
			Ops:    p.Totals.Ops,
			Reads:  p.Totals.Reads,
			Writes: p.Totals.Writes,
			Ratio:  p.Ratio(),
		})
	}
	resp.Points = points
	return resp
}

// asSweepError maps a kernel error: context death is the client's timeout
// or disconnect (503), anything else is a spec the kernel rejected (422) —
// the count-only kernels have no other failure mode.
func asSweepError(err error) *apiError {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &apiError{Status: http.StatusServiceUnavailable,
			Body: ErrorBody{"cancelled", err.Error()}}
	}
	return unprocessable("invalid_argument", "%v", err)
}
