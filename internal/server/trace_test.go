package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"balarch/internal/obs"
)

const analyzeBody = `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`

// doTraced drives one request carrying a traceparent header and returns
// the recorder.
func doTraced(t *testing.T, h http.Handler, method, path, body, traceparent string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestTraceparentEchoReparent: a sampled inbound traceparent is captured
// and echoed re-parented — same trace id, a fresh server-side span id —
// and the captured trace records the caller's span as its parent.
func TestTraceparentEchoReparent(t *testing.T) {
	s, h := newTestHandler(Options{TraceSampleEvery: -1})
	inbound := obs.NewTraceparent(true)
	w := doTraced(t, h, "POST", "/v1/analyze", analyzeBody, inbound)
	if w.Code != 200 {
		t.Fatalf("analyze: %d\n%s", w.Code, w.Body.String())
	}
	echo := w.Header().Get(obs.TraceparentHeader)
	if echo == "" {
		t.Fatal("sampled traceparent not echoed")
	}
	if !obs.SameTrace(inbound, echo) {
		t.Fatalf("echo %q does not share the inbound trace id %q", echo, inbound)
	}
	if inbound[36:52] == echo[36:52] {
		t.Fatalf("echo %q reused the caller's span id — want a fresh server span", echo)
	}
	traces, slowest := s.tracer.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("captured %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != inbound[3:35] {
		t.Errorf("trace id = %s, want %s", tr.TraceID, inbound[3:35])
	}
	if tr.ParentSpanID != inbound[36:52] {
		t.Errorf("parent span = %q, want the caller's %q", tr.ParentSpanID, inbound[36:52])
	}
	if !tr.Remote || tr.Route != "POST /v1/analyze" || tr.Status != 200 {
		t.Errorf("trace = %+v, want remote POST /v1/analyze 200", tr)
	}
	// The sync pipeline: decode and compute must both have fired.
	stages := make(map[string]bool)
	for _, sp := range tr.Spans {
		stages[sp.Stage] = true
	}
	if !stages["decode"] || !stages["compute"] {
		t.Errorf("spans %v missing decode/compute", tr.Spans)
	}
	if slowest == nil {
		t.Error("slowest slot empty after a captured request")
	}
}

// TestTraceparentUnsampledPassThrough: a flags-00 traceparent is honored
// — echoed on the same trace — but not captured.
func TestTraceparentUnsampledPassThrough(t *testing.T) {
	s, h := newTestHandler(Options{TraceSampleEvery: -1})
	inbound := obs.NewTraceparent(false)
	w := doTraced(t, h, "GET", "/healthz", "", inbound)
	echo := w.Header().Get(obs.TraceparentHeader)
	if echo == "" || !obs.SameTrace(inbound, echo) {
		t.Fatalf("unsampled traceparent: echo %q, want same-trace pass-through", echo)
	}
	if !strings.HasSuffix(echo, "-00") {
		t.Errorf("echo %q flipped the sampled flag on", echo)
	}
	if traces, _ := s.tracer.Snapshot(); len(traces) != 0 {
		t.Errorf("unsampled request captured %d traces, want 0", len(traces))
	}
}

// TestTraceparentInvalidIgnored: garbage traceparents neither echo nor
// capture (with head sampling off).
func TestTraceparentInvalidIgnored(t *testing.T) {
	s, h := newTestHandler(Options{TraceSampleEvery: -1})
	for _, bad := range []string{
		"zz-00000000000000000000000000000000-0000000000000000-01",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // truncated
	} {
		w := doTraced(t, h, "GET", "/healthz", "", bad)
		if echo := w.Header().Get(obs.TraceparentHeader); echo != "" {
			t.Errorf("invalid traceparent %q echoed as %q", bad, echo)
		}
	}
	if traces, _ := s.tracer.Snapshot(); len(traces) != 0 {
		t.Errorf("invalid traceparents captured %d traces, want 0", len(traces))
	}
}

// TestTraceHeadSampling: header-less requests are captured 1-in-N, and
// only the captured ones get a response traceparent.
func TestTraceHeadSampling(t *testing.T) {
	s, h := newTestHandler(Options{TraceSampleEvery: 2})
	echoed := 0
	for i := 0; i < 4; i++ {
		w := doTraced(t, h, "GET", "/healthz", "", "")
		if w.Header().Get(obs.TraceparentHeader) != "" {
			echoed++
		}
	}
	if echoed != 2 {
		t.Errorf("4 requests at 1-in-2 sampling echoed %d traceparents, want 2", echoed)
	}
	if traces, _ := s.tracer.Snapshot(); len(traces) != 2 {
		t.Errorf("captured %d traces, want 2", len(traces))
	}
}

// TestServerTimingOptIn: trace=1 forces capture and returns the stage
// spans recorded before the status line as a Server-Timing header.
func TestServerTimingOptIn(t *testing.T) {
	s, h := newTestHandler(Options{TraceSampleEvery: -1})
	w := doTraced(t, h, "POST", "/v1/analyze?trace=1", analyzeBody, "")
	if w.Code != 200 {
		t.Fatalf("analyze: %d\n%s", w.Code, w.Body.String())
	}
	st := w.Header().Get("Server-Timing")
	if !strings.Contains(st, "decode;dur=") || !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing = %q, want decode and total entries", st)
	}
	// The encode span happens after headers flush: header excluded,
	// /debug/traces included.
	if strings.Contains(st, "encode") {
		t.Errorf("Server-Timing = %q includes encode, which finishes after headers", st)
	}
	traces, _ := s.tracer.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("trace=1 captured %d traces, want 1", len(traces))
	}
	found := false
	for _, sp := range traces[0].Spans {
		if sp.Stage == "encode" {
			found = true
		}
	}
	if !found {
		t.Errorf("captured spans %v missing encode", traces[0].Spans)
	}
	// Plain requests must not get the header.
	w = doTraced(t, h, "POST", "/v1/analyze", analyzeBody, "")
	if got := w.Header().Get("Server-Timing"); got != "" {
		t.Errorf("untraced request got Server-Timing %q", got)
	}
}

// TestTraceDebugHandler: the /debug/traces dump — ring newest-first,
// slowest held separately, ?slowest=1 drops the ring.
func TestTraceDebugHandler(t *testing.T) {
	s, h := newTestHandler(Options{TraceSampleEvery: 1})
	for i := 0; i < 3; i++ {
		doTraced(t, h, "POST", "/v1/analyze", analyzeBody, "")
	}
	w := httptest.NewRecorder()
	s.TraceHandler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	var dump TraceDump
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad trace dump: %v\n%s", err, w.Body.String())
	}
	if len(dump.Traces) != 3 || dump.Slowest == nil {
		t.Fatalf("dump holds %d traces (slowest %v), want 3 with a slowest", len(dump.Traces), dump.Slowest)
	}
	for _, tr := range dump.Traces {
		if len(tr.TraceID) != 32 || len(tr.SpanID) != 16 || tr.Route != "POST /v1/analyze" || tr.Status != 200 {
			t.Errorf("malformed trace view: %+v", tr)
		}
		if len(tr.Spans) == 0 {
			t.Errorf("trace %s has no spans", tr.TraceID)
		}
	}
	w = httptest.NewRecorder()
	s.TraceHandler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?slowest=1", nil))
	dump = TraceDump{}
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad slowest dump: %v", err)
	}
	if len(dump.Traces) != 0 || dump.Slowest == nil {
		t.Errorf("?slowest=1 returned %d ring traces (slowest %v), want only the slowest", len(dump.Traces), dump.Slowest)
	}
}

// TestReadyzDraining: /readyz flips from 200 ready to 503 draining after
// StartDrain, while /healthz liveness keeps answering 200.
func TestReadyzDraining(t *testing.T) {
	s, h := newTestHandler(Options{})
	decoded := wantStatus(t, h, "GET", "/readyz", "", 200, "")
	if decoded["status"] != "ready" {
		t.Errorf("readyz status = %v, want ready", decoded["status"])
	}
	s.StartDrain()
	wantStatus(t, h, "GET", "/readyz", "", 503, "draining")
	wantStatus(t, h, "GET", "/healthz", "", 200, "")
}

// TestRequestLogDemotion: routine requests log at Debug — invisible to a
// production Info logger — while 5xx responses log at Warn regardless.
func TestRequestLogDemotion(t *testing.T) {
	var buf bytes.Buffer
	info := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))

	_, h := newTestHandler(Options{Logger: info})
	doJSON(t, h, "GET", "/healthz", "")
	if buf.Len() != 0 {
		t.Errorf("healthy request logged at Info level:\n%s", buf.String())
	}

	// A 500 through the same middleware must surface as Warn even though
	// the logger sits at Info.
	m := NewMetrics()
	failing := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}), Observe(info, m, nil))
	failing.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/doomed", nil))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("no log record for a 500: %v (buf %q)", err, buf.String())
	}
	if rec["level"] != "WARN" || rec["msg"] != "request" || rec["status"] != float64(500) {
		t.Errorf("500 logged as %v, want WARN request status=500", rec)
	}

	// At Debug the routine line appears.
	buf.Reset()
	debug := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, h = newTestHandler(Options{Logger: debug})
	doJSON(t, h, "GET", "/healthz", "")
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("no Debug request line: %v (buf %q)", err, buf.String())
	}
	if rec["level"] != "DEBUG" || rec["msg"] != "request" || rec["path"] != "/healthz" {
		t.Errorf("request line = %v, want DEBUG request /healthz", rec)
	}
}
