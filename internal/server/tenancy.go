package server

// API-key tenancy: the traffic layer's application of the paper's balance
// argument to the service itself. One abusive caller sharing a single
// limiter, job budget, and /metrics pool moves every other caller's p99 —
// the starvation Kung's law provisions against. A tenants config carves
// the shared resources per consumer: each tenant gets its own token
// bucket (requests/second with a burst) and its own job byte budget, and
// the middleware resolves `Authorization: Bearer <key>` to a tenant
// before the concurrency limiter so a rate-limited caller never occupies
// a slot. Requests without a key are the anonymous tenant — unlimited by
// default, so a server with no tenants configured behaves (and responds)
// byte-identically to one built before tenancy existed.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// AnonymousTenant is the reserved name of the keyless default tenant.
const AnonymousTenant = "anonymous"

// Tenant config limits: bounded cardinality by construction — tenant
// names become /metrics keys, so nothing about their count or length may
// be attacker-chosen or unbounded.
const (
	maxTenants       = 256
	maxTenantNameLen = 64
	maxTenantKeyLen  = 256
)

// TenantSpec configures one tenant: its identity, its API key, and its
// slice of the shared resources. The zero limits mean "unlimited": a
// spec with neither a rate nor a budget is a named but unthrottled
// tenant (useful for trusted internal callers that still want their own
// /metrics slice).
type TenantSpec struct {
	// Name identifies the tenant in /metrics, logs, and error messages.
	// Letters, digits, dot, underscore, dash; at most 64 bytes;
	// "anonymous" is reserved for the keyless default.
	Name string `json:"name"`
	// Key is the bearer token presented as "Authorization: Bearer <key>".
	// Opaque to the server; at most 256 bytes, no whitespace or control
	// characters, unique across tenants.
	Key string `json:"key,omitempty"`
	// RatePerSec is the tenant's sustained request rate (token-bucket
	// refill, tokens/second). 0 means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth: how many requests may arrive back to
	// back before the rate applies. 0 means max(RatePerSec, 1).
	Burst float64 `json:"burst,omitempty"`
	// JobBudgetBytes caps the summed footprint of this tenant's live
	// (queued+running) jobs, carved out of — not in addition to — the
	// server's global MemBudgetBytes. 0 means no per-tenant cap.
	JobBudgetBytes int64 `json:"job_budget_bytes,omitempty"`
	// Weight is the tenant's share in the job scheduler's weighted
	// round-robin: a tenant with weight w gets w picks per round. 0
	// means the default weight of 1; capped at 1e6.
	Weight int `json:"weight,omitempty"`
}

// TenantsConfig is the parsed -tenants-file: the static key set plus an
// optional override for the anonymous (keyless) tenant, which otherwise
// stays unlimited.
type TenantsConfig struct {
	Tenants []TenantSpec `json:"tenants"`
	// Anonymous, when present, throttles keyless traffic too (its Name
	// and Key fields must be empty; the name is always "anonymous").
	Anonymous *TenantSpec `json:"anonymous,omitempty"`
}

// TenantConfigError is the typed parse/validation failure for a tenants
// file: which entry, which field, and why. ParseTenantsConfig returns it
// (never a panic) for any input that is not a valid config.
type TenantConfigError struct {
	// Pos locates the problem ("tenants[3]", "anonymous", or "file").
	Pos string
	// Field is the offending field, when one is identifiable.
	Field string
	// Reason is the human-readable cause.
	Reason string
}

func (e *TenantConfigError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("tenants config: %s: %s: %s", e.Pos, e.Field, e.Reason)
	}
	return fmt.Sprintf("tenants config: %s: %s", e.Pos, e.Reason)
}

// ParseTenantsConfig parses and validates a tenants file. Any input maps
// to either a valid config or a *TenantConfigError — never a panic and
// never a half-valid config (FuzzTenantConfig pins this).
func ParseTenantsConfig(data []byte) (*TenantsConfig, error) {
	var cfg TenantsConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, &TenantConfigError{Pos: "file", Reason: err.Error()}
	}
	// Trailing content after the config object is a malformed file, not
	// an ignorable tail.
	if dec.More() {
		return nil, &TenantConfigError{Pos: "file", Reason: "trailing data after config object"}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// LoadTenantsFile reads and parses the -tenants-file path.
func LoadTenantsFile(path string) (*TenantsConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &TenantConfigError{Pos: "file", Reason: err.Error()}
	}
	return ParseTenantsConfig(data)
}

// Validate checks every invariant the runtime relies on; New refuses a
// config that fails it.
func (c *TenantsConfig) Validate() error {
	if len(c.Tenants) > maxTenants {
		return &TenantConfigError{Pos: "tenants", Field: "len",
			Reason: fmt.Sprintf("%d tenants exceed the limit of %d", len(c.Tenants), maxTenants)}
	}
	names := make(map[string]bool, len(c.Tenants))
	keys := make(map[string]bool, len(c.Tenants))
	for i, t := range c.Tenants {
		pos := fmt.Sprintf("tenants[%d]", i)
		if err := validTenantName(pos, t.Name); err != nil {
			return err
		}
		if names[t.Name] {
			return &TenantConfigError{Pos: pos, Field: "name",
				Reason: fmt.Sprintf("duplicate tenant name %q", t.Name)}
		}
		names[t.Name] = true
		if err := validTenantKey(pos, t.Key); err != nil {
			return err
		}
		if keys[t.Key] {
			return &TenantConfigError{Pos: pos, Field: "key", Reason: "duplicate key"}
		}
		keys[t.Key] = true
		if err := validTenantLimits(pos, t); err != nil {
			return err
		}
	}
	if a := c.Anonymous; a != nil {
		if a.Name != "" && a.Name != AnonymousTenant {
			return &TenantConfigError{Pos: "anonymous", Field: "name",
				Reason: fmt.Sprintf("must be empty or %q, got %q", AnonymousTenant, a.Name)}
		}
		if a.Key != "" {
			return &TenantConfigError{Pos: "anonymous", Field: "key",
				Reason: "the anonymous tenant is keyless"}
		}
		if err := validTenantLimits("anonymous", *a); err != nil {
			return err
		}
	}
	return nil
}

func validTenantName(pos, name string) error {
	if name == "" {
		return &TenantConfigError{Pos: pos, Field: "name", Reason: "required"}
	}
	if len(name) > maxTenantNameLen {
		return &TenantConfigError{Pos: pos, Field: "name",
			Reason: fmt.Sprintf("%d bytes exceed the limit of %d", len(name), maxTenantNameLen)}
	}
	if name == AnonymousTenant {
		return &TenantConfigError{Pos: pos, Field: "name",
			Reason: fmt.Sprintf("%q is reserved for the keyless default", AnonymousTenant)}
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return &TenantConfigError{Pos: pos, Field: "name",
				Reason: fmt.Sprintf("byte %q not in [A-Za-z0-9._-]", c)}
		}
	}
	return nil
}

func validTenantKey(pos, key string) error {
	if key == "" {
		return &TenantConfigError{Pos: pos, Field: "key", Reason: "required"}
	}
	if len(key) > maxTenantKeyLen {
		return &TenantConfigError{Pos: pos, Field: "key",
			Reason: fmt.Sprintf("%d bytes exceed the limit of %d", len(key), maxTenantKeyLen)}
	}
	for i := 0; i < len(key); i++ {
		if c := key[i]; c <= ' ' || c == 0x7f {
			return &TenantConfigError{Pos: pos, Field: "key",
				Reason: "whitespace and control characters are not allowed"}
		}
	}
	return nil
}

func validTenantLimits(pos string, t TenantSpec) error {
	if !(t.RatePerSec >= 0) || t.RatePerSec > 1e9 {
		return &TenantConfigError{Pos: pos, Field: "rate_per_sec",
			Reason: fmt.Sprintf("must be in [0, 1e9], got %v", t.RatePerSec)}
	}
	if !(t.Burst >= 0) || t.Burst > 1e9 {
		return &TenantConfigError{Pos: pos, Field: "burst",
			Reason: fmt.Sprintf("must be in [0, 1e9], got %v", t.Burst)}
	}
	if t.Burst > 0 && t.RatePerSec == 0 {
		return &TenantConfigError{Pos: pos, Field: "burst",
			Reason: "burst without rate_per_sec is meaningless (an unlimited tenant has no bucket)"}
	}
	if t.JobBudgetBytes < 0 {
		return &TenantConfigError{Pos: pos, Field: "job_budget_bytes",
			Reason: fmt.Sprintf("must be ≥ 0, got %d", t.JobBudgetBytes)}
	}
	if t.Weight < 0 || t.Weight > 1_000_000 {
		return &TenantConfigError{Pos: pos, Field: "weight",
			Reason: fmt.Sprintf("must be in [0, 1e6], got %d", t.Weight)}
	}
	return nil
}

// --- runtime ---

// tokenBucket is the per-tenant rate limiter: capacity burst, refill
// rate tokens/second, one token per admitted request. When empty it
// reports how long until the next token exists — the tenant's own
// Retry-After, not a global guess.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	if burst <= 0 {
		burst = max(rate, 1)
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take spends one token if available; otherwise it reports the wait until
// one refills.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = min(b.burst, b.tokens+dt*b.rate)
	}
	if !now.Before(b.last) {
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// tenant is one resolved consumer of the API.
type tenant struct {
	name   string
	budget int64        // per-tenant job byte budget; 0 = no per-tenant cap
	weight int          // scheduler round-robin weight; 0 = default 1
	bucket *tokenBucket // nil = unlimited
}

// tenancy is the resolved tenants config: the key table plus the
// anonymous default. Immutable after construction.
type tenancy struct {
	byKey map[string]*tenant
	anon  *tenant
}

// newTenancy resolves a validated config into its runtime form.
func newTenancy(cfg *TenantsConfig) *tenancy {
	now := time.Now()
	t := &tenancy{
		byKey: make(map[string]*tenant, len(cfg.Tenants)),
		anon:  &tenant{name: AnonymousTenant},
	}
	for _, spec := range cfg.Tenants {
		tn := &tenant{name: spec.Name, budget: spec.JobBudgetBytes, weight: spec.Weight}
		if spec.RatePerSec > 0 {
			tn.bucket = newTokenBucket(spec.RatePerSec, spec.Burst, now)
		}
		t.byKey[spec.Key] = tn
	}
	if a := cfg.Anonymous; a != nil {
		t.anon.budget = a.JobBudgetBytes
		if a.RatePerSec > 0 {
			t.anon.bucket = newTokenBucket(a.RatePerSec, a.Burst, now)
		}
	}
	return t
}

// names returns every tenant name (anonymous first, the rest sorted) —
// the bounded universe the metrics preregister.
func (t *tenancy) names() []string {
	out := make([]string, 0, len(t.byKey)+1)
	out = append(out, AnonymousTenant)
	for _, tn := range t.byKey {
		out = append(out, tn.name)
	}
	sort.Strings(out[1:])
	return out
}

// jobBudgets returns the per-tenant job budgets for jobs.Options.
func (t *tenancy) jobBudgets() map[string]int64 {
	out := make(map[string]int64, len(t.byKey)+1)
	if t.anon.budget > 0 {
		out[AnonymousTenant] = t.anon.budget
	}
	for _, tn := range t.byKey {
		if tn.budget > 0 {
			out[tn.name] = tn.budget
		}
	}
	return out
}

// jobWeights returns the per-tenant scheduler weights for jobs.Options
// (only explicitly weighted tenants; everyone else defaults to 1).
func (t *tenancy) jobWeights() map[string]int {
	out := make(map[string]int, len(t.byKey))
	for _, tn := range t.byKey {
		if tn.weight > 0 {
			out[tn.name] = tn.weight
		}
	}
	return out
}

// resolve maps a request to its tenant: no Authorization header is the
// anonymous tenant; a well-formed Bearer key must be in the table.
func (t *tenancy) resolve(r *http.Request) (*tenant, *apiError) {
	auth := r.Header.Get("Authorization")
	if auth == "" {
		return t.anon, nil
	}
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return nil, &apiError{Status: http.StatusUnauthorized,
			Body: ErrorBody{"bad_authorization", "Authorization must be \"Bearer <api-key>\""}}
	}
	tn, ok := t.byKey[auth[len(prefix):]]
	if !ok {
		return nil, &apiError{Status: http.StatusUnauthorized,
			Body: ErrorBody{"unknown_api_key", "the presented API key is not configured on this server"}}
	}
	return tn, nil
}

// tenantCtxKey carries the resolved tenant through the request context.
type tenantCtxKey struct{}

func withTenant(ctx context.Context, t *tenant) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, t)
}

// tenantFrom returns the request's resolved tenant, or nil on an
// untenanted server (no middleware ran).
func tenantFrom(ctx context.Context) *tenant {
	t, _ := ctx.Value(tenantCtxKey{}).(*tenant)
	return t
}

// Tenancy is the tenancy middleware: resolve the bearer key, spend a
// bucket token, stamp the tenant into the context. It sits before the
// concurrency limiter so a rate-limited request is refused without ever
// holding a slot. When no tenants are configured it returns the identity
// middleware — the whole layer costs nothing (no wrapper handler, no
// context allocation), which is what keeps the untenanted hot path
// alloc-free and byte-identical. /healthz and /metrics bypass the
// buckets for the same reason they bypass the limiter: probes must
// answer on a saturated server.
func (s *Server) tenancyMiddleware() Middleware {
	t := s.tenants
	if t == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tn, apiErr := t.resolve(r)
			if apiErr != nil {
				writeError(w, apiErr)
				return
			}
			s.metrics.TenantRequest(tn.name)
			if tn.bucket != nil && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
				if ok, retry := tn.bucket.take(time.Now()); !ok {
					s.metrics.TenantRateLimited(tn.name)
					writeError(w, rateLimited(tn.name, retry))
					return
				}
			}
			// WithContext shallow-copies the request, so the mux stamps
			// the matched pattern on the copy; mirror it back so the
			// logging middleware outside this one (which holds the
			// original) still labels the route for /metrics.
			r2 := r.WithContext(withTenant(r.Context(), tn))
			next.ServeHTTP(w, r2)
			r.Pattern = r2.Pattern
		})
	}
}

// rateLimited is the tenancy 429: code "rate_limited" (distinct from the
// job queue's "over_budget"), Retry-After from the tenant's own bucket.
func rateLimited(tenantName string, retry time.Duration) *apiError {
	secs := int(retry/time.Second) + 1
	return &apiError{
		Status: http.StatusTooManyRequests,
		Body: ErrorBody{"rate_limited", fmt.Sprintf(
			"tenant %q is over its request rate; retry in about %ds", tenantName, secs)},
		RetryAfterSeconds: secs,
	}
}
