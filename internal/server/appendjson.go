package server

// Hand-rolled append-style JSON encoding for the hot response types. The
// encoder exists for one reason: writeJSON on the analyze and sweep paths
// must not allocate, and encoding/json's reflection walk does. It exists
// under one invariant: its output is byte-identical to encoding/json's for
// every value it accepts (pinned by the differential tests in
// appendjson_test.go, over the same corpora the DTO fuzzers use). Anything
// it cannot encode identically — an unknown type, a NaN/Inf float — makes
// it bail out so the caller falls back to encoding/json, which also keeps
// the error behavior (e.g. UnsupportedValueError) exactly the stdlib's.
//
// The replicated stdlib behaviors, from Go's encoding/json with
// SetEscapeHTML(true) (the Encoder/Marshal default):
//
//   - strings: printable ASCII except  " & < > \  passes through; the named
//     escapes \" \\ \b \f \n \r \t; other control bytes and & < > as \u00xx
//     (lowercase hex); invalid UTF-8 bytes as \ufffd; U+2028/U+2029 as
//      / ; all other UTF-8 copied verbatim.
//   - float64: strconv.AppendFloat with 'f', switching to 'e' when
//     abs < 1e-6 or abs >= 1e21, then rewriting a one-digit negative
//     exponent ("2e-07" → "2e-7").
//   - indent mode matches json.Indent("", "  "): newline + two spaces per
//     depth before every member, space after the colon, {} and [] compact.

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"unicode/utf8"
)

// jenc is one in-flight encode. bad marks a value the stdlib would refuse
// (NaN/Inf); the caller then discards the partial output and falls back.
type jenc struct {
	buf    []byte
	indent bool
	depth  int
	bad    bool
}

const jsonHexDigits = "0123456789abcdef"

// jsonSafeByte reports whether b passes through json's string encoder
// unescaped under the default HTML-escaping policy (htmlSafeSet).
func jsonSafeByte(b byte) bool {
	return b >= 0x20 && b < utf8.RuneSelf &&
		b != '"' && b != '\\' && b != '&' && b != '<' && b != '>'
}

// appendJSONString appends the JSON encoding of s, replicating
// encoding/json's appendString with escapeHTML=true.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafeByte(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control bytes without a named escape, plus & < >.
				dst = append(dst, '\\', 'u', '0', '0',
					jsonHexDigits[b>>4], jsonHexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends the JSON encoding of f, replicating
// encoding/json's floatEncoder for float64; ok is false for NaN/Inf.
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as the stdlib does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// --- structural helpers ---

func (e *jenc) nl() {
	if !e.indent {
		return
	}
	e.buf = append(e.buf, '\n')
	for i := 0; i < e.depth; i++ {
		e.buf = append(e.buf, ' ', ' ')
	}
}

func (e *jenc) objOpen() {
	e.buf = append(e.buf, '{')
	e.depth++
}

// objClose closes an object; any reports whether it had members (an empty
// object stays the compact "{}" even in indent mode).
func (e *jenc) objClose(any bool) {
	e.depth--
	if any {
		e.nl()
	}
	e.buf = append(e.buf, '}')
}

func (e *jenc) arrOpen() {
	e.buf = append(e.buf, '[')
	e.depth++
}

func (e *jenc) arrClose(any bool) {
	e.depth--
	if any {
		e.nl()
	}
	e.buf = append(e.buf, ']')
}

// key starts an object member. Member names are plain ASCII identifiers in
// this API, so they need no escaping.
func (e *jenc) key(first *bool, name string) {
	if *first {
		*first = false
	} else {
		e.buf = append(e.buf, ',')
	}
	e.nl()
	e.buf = append(e.buf, '"')
	e.buf = append(e.buf, name...)
	e.buf = append(e.buf, '"', ':')
	if e.indent {
		e.buf = append(e.buf, ' ')
	}
}

// arrElem starts an array element.
func (e *jenc) arrElem(first *bool) {
	if *first {
		*first = false
	} else {
		e.buf = append(e.buf, ',')
	}
	e.nl()
}

func (e *jenc) str(s string)   { e.buf = appendJSONString(e.buf, s) }
func (e *jenc) intv(v int64)   { e.buf = strconv.AppendInt(e.buf, v, 10) }
func (e *jenc) uintv(v uint64) { e.buf = strconv.AppendUint(e.buf, v, 10) }

func (e *jenc) float(f float64) {
	b, ok := appendJSONFloat(e.buf, f)
	if !ok {
		e.bad = true
		return
	}
	e.buf = b
}

func (e *jenc) boolv(v bool) {
	if v {
		e.buf = append(e.buf, "true"...)
	} else {
		e.buf = append(e.buf, "false"...)
	}
}

func (e *jenc) null() { e.buf = append(e.buf, "null"...) }

// --- per-type encoders (field order and omitempty mirror the DTO tags) ---

func (e *jenc) peDTO(p PEDTO) {
	e.objOpen()
	first := true
	e.key(&first, "c")
	e.float(p.C)
	e.key(&first, "io")
	e.float(p.IO)
	e.key(&first, "m")
	e.float(p.M)
	e.objClose(true)
}

func (e *jenc) levelDTOs(ls []LevelDTO) {
	e.arrOpen()
	first := true
	for i := range ls {
		l := &ls[i]
		e.arrElem(&first)
		e.objOpen()
		f := true
		if l.Name != "" {
			e.key(&f, "name")
			e.str(l.Name)
		}
		e.key(&f, "bw")
		e.float(l.BW)
		e.key(&f, "m")
		e.float(l.M)
		e.objClose(true)
	}
	e.arrClose(!first)
}

func (e *jenc) analyzeResponse(r *AnalyzeResponse) {
	if r == nil {
		e.null()
		return
	}
	e.objOpen()
	first := true
	e.key(&first, "computation")
	e.str(r.Computation)
	e.key(&first, "section")
	e.str(r.Section)
	e.key(&first, "pe")
	e.peDTO(r.PE)
	e.key(&first, "intensity")
	e.float(r.Intensity)
	e.key(&first, "achievable_ratio")
	e.float(r.AchievableRatio)
	e.key(&first, "state")
	e.str(r.State)
	if r.BalancedMemory != 0 {
		e.key(&first, "balanced_memory")
		e.float(r.BalancedMemory)
	}
	e.key(&first, "rebalanceable")
	e.boolv(r.Rebalanceable)
	e.key(&first, "law")
	e.str(r.Law)
	if len(r.Levels) > 0 {
		e.key(&first, "levels")
		e.levelDTOs(r.Levels)
	}
	if len(r.Boundaries) > 0 {
		e.key(&first, "boundaries")
		e.arrOpen()
		af := true
		for i := range r.Boundaries {
			b := &r.Boundaries[i]
			e.arrElem(&af)
			e.objOpen()
			f := true
			e.key(&f, "boundary")
			e.intv(int64(b.Boundary))
			if b.Name != "" {
				e.key(&f, "name")
				e.str(b.Name)
			}
			e.key(&f, "bw")
			e.float(b.BW)
			e.key(&f, "capacity_within")
			e.float(b.CapacityWithin)
			e.key(&f, "intensity")
			e.float(b.Intensity)
			e.key(&f, "achievable_ratio")
			e.float(b.AchievableRatio)
			e.key(&f, "state")
			e.str(b.State)
			if b.BalancedMemory != 0 {
				e.key(&f, "balanced_memory")
				e.float(b.BalancedMemory)
			}
			e.key(&f, "rebalanceable")
			e.boolv(b.Rebalanceable)
			e.objClose(true)
		}
		e.arrClose(!af)
	}
	if r.BindingBoundary != 0 {
		e.key(&first, "binding_boundary")
		e.intv(int64(r.BindingBoundary))
	}
	e.objClose(true)
}

func (e *jenc) sweepResponse(r *SweepResponse) {
	if r == nil {
		e.null()
		return
	}
	e.objOpen()
	first := true
	e.key(&first, "kernel")
	e.str(r.Kernel)
	e.key(&first, "points")
	if r.Points == nil {
		e.null()
	} else {
		e.arrOpen()
		af := true
		for i := range r.Points {
			p := &r.Points[i]
			e.arrElem(&af)
			e.objOpen()
			f := true
			e.key(&f, "memory")
			e.intv(int64(p.Memory))
			e.key(&f, "ops")
			e.uintv(p.Ops)
			e.key(&f, "reads")
			e.uintv(p.Reads)
			e.key(&f, "writes")
			e.uintv(p.Writes)
			e.key(&f, "ratio")
			e.float(p.Ratio)
			e.objClose(true)
		}
		e.arrClose(!af)
	}
	e.key(&first, "cached")
	e.boolv(r.Cached)
	e.objClose(true)
}

func (e *jenc) rebalanceResponse(r *RebalanceResponse) {
	if r == nil {
		e.null()
		return
	}
	e.objOpen()
	first := true
	e.key(&first, "computation")
	e.str(r.Computation)
	e.key(&first, "alpha")
	e.float(r.Alpha)
	e.key(&first, "m_old")
	e.float(r.MOld)
	e.key(&first, "rebalanceable")
	e.boolv(r.Rebalanceable)
	if r.MNew != 0 {
		e.key(&first, "m_new")
		e.float(r.MNew)
	}
	if r.MClosedForm != 0 {
		e.key(&first, "m_closed_form")
		e.float(r.MClosedForm)
	}
	e.key(&first, "law")
	e.str(r.Law)
	if r.C != 0 {
		e.key(&first, "c")
		e.float(r.C)
	}
	if len(r.Boundaries) > 0 {
		e.key(&first, "boundaries")
		e.arrOpen()
		af := true
		for i := range r.Boundaries {
			b := &r.Boundaries[i]
			e.arrElem(&af)
			e.objOpen()
			f := true
			e.key(&f, "boundary")
			e.intv(int64(b.Boundary))
			e.key(&f, "intensity")
			e.float(b.Intensity)
			if b.RequiredWithin != 0 {
				e.key(&f, "required_within")
				e.float(b.RequiredWithin)
			}
			e.key(&f, "rebalanceable")
			e.boolv(b.Rebalanceable)
			e.objClose(true)
		}
		e.arrClose(!af)
	}
	if len(r.LevelBill) > 0 {
		e.key(&first, "level_bill")
		e.arrOpen()
		af := true
		for i := range r.LevelBill {
			l := &r.LevelBill[i]
			e.arrElem(&af)
			e.objOpen()
			f := true
			if l.Name != "" {
				e.key(&f, "name")
				e.str(l.Name)
			}
			e.key(&f, "bw")
			e.float(l.BW)
			e.key(&f, "m_old")
			e.float(l.MOld)
			e.key(&f, "m_new")
			e.float(l.MNew)
			e.key(&f, "delta")
			e.float(l.Delta)
			e.objClose(true)
		}
		e.arrClose(!af)
	}
	if r.BindingBoundary != 0 {
		e.key(&first, "binding_boundary")
		e.intv(int64(r.BindingBoundary))
	}
	if r.TotalMemory != 0 {
		e.key(&first, "total_memory")
		e.float(r.TotalMemory)
	}
	if r.TotalDelta != 0 {
		e.key(&first, "total_delta")
		e.float(r.TotalDelta)
	}
	e.objClose(true)
}

func (e *jenc) errorEnvelope(v errorEnvelope) {
	e.objOpen()
	first := true
	e.key(&first, "error")
	e.objOpen()
	f := true
	e.key(&f, "code")
	e.str(v.Error.Code)
	e.key(&f, "message")
	e.str(v.Error.Message)
	e.objClose(true)
	e.objClose(true)
}

// --- entry points ---

// appendJSONValue appends the encoding of v (indented or compact) when v is
// one of the hot response types; ok is false when v is an unknown type or
// holds a value the stdlib would refuse, in which case nothing useful was
// appended and the caller must fall back to encoding/json on the original
// dst.
func appendJSONValue(dst []byte, v any, indent bool) ([]byte, bool) {
	e := jenc{buf: dst, indent: indent}
	switch t := v.(type) {
	case *AnalyzeResponse:
		e.analyzeResponse(t)
	case *SweepResponse:
		e.sweepResponse(t)
	case *RebalanceResponse:
		e.rebalanceResponse(t)
	case errorEnvelope:
		e.errorEnvelope(t)
	default:
		return dst, false
	}
	if e.bad {
		return dst, false
	}
	return e.buf, true
}

// appendJSONBody appends the one wire encoding of a 2xx body (two-space
// indent, trailing newline) to dst: the append encoder when v is a hot
// type, encoding/json otherwise — byte-identical either way.
func appendJSONBody(dst []byte, v any) ([]byte, error) {
	if b, ok := appendJSONValue(dst, v, true); ok {
		return append(b, '\n'), nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return append(dst, buf.Bytes()...), nil
}

// appendJSONCompact appends the compact (json.Marshal) encoding of v.
func appendJSONCompact(dst []byte, v any) ([]byte, error) {
	if b, ok := appendJSONValue(dst, v, false); ok {
		return b, nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}
