package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func emulate(t *testing.T, body string) (*httptest.ResponseRecorder, *EmulationResponse) {
	t.Helper()
	h := New(Options{Parallelism: 2}).Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/emulation", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return w, nil
	}
	var resp EmulationResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad emulation response: %v\n%s", err, w.Body.String())
	}
	return w, &resp
}

func TestEmulationPerfectInterconnectPaysModulePort(t *testing.T) {
	// Even with network_bw == module_bw an io-bound computation pays for
	// emulation: working sets re-fetch through the module port at the
	// module's achievable ratio R(m), not the aggregate's R(N·m), so the
	// module boundary binds and efficiency is R(m)/R(N·m) < 1.
	w, resp := emulate(t, `{"c": 100e6, "computation": {"name": "fft"},
		"modules": 8, "module_m": 65536, "module_bw": 1e6}`)
	if resp == nil {
		t.Fatalf("emulation = %d: %s", w.Code, w.Body.String())
	}
	if resp.NetworkBW != 1e6 {
		t.Fatalf("network_bw did not default to module_bw: %v", resp.NetworkBW)
	}
	if resp.EmulatedCapacity != 8*65536 {
		t.Fatalf("emulated_capacity = %v", resp.EmulatedCapacity)
	}
	if resp.BindingBoundary != 1 {
		t.Fatalf("binding boundary = %d, want 1 (the module port binds at equal bandwidths)",
			resp.BindingBoundary)
	}
	want := resp.Emulated.AchievableRatio / resp.Ideal.AchievableRatio
	if resp.Efficiency <= 0 || resp.Efficiency >= 1 ||
		math.Abs(resp.Efficiency-want) > 1e-9 {
		t.Fatalf("perfect-interconnect efficiency = %v, want R(m)/R(Nm) = %v", resp.Efficiency, want)
	}
	if len(resp.Boundaries) != 2 {
		t.Fatalf("boundaries = %d, want 2 (module, network)", len(resp.Boundaries))
	}
	if resp.Boundaries[0].Name != "module" || resp.Boundaries[1].Name != "network" {
		t.Fatalf("boundary names %q, %q", resp.Boundaries[0].Name, resp.Boundaries[1].Name)
	}
}

func TestEmulationComputeBoundIsFree(t *testing.T) {
	// When even the interconnect feeds the PE faster than it computes,
	// both machines run at full utilization: emulation is free.
	w, resp := emulate(t, `{"c": 1e3, "computation": {"name": "matmul"},
		"modules": 4, "module_m": 4096, "module_bw": 1e6, "network_bw": 1e5}`)
	if resp == nil {
		t.Fatalf("emulation = %d: %s", w.Code, w.Body.String())
	}
	if resp.Emulated.State != "compute-bound" || resp.Ideal.State != "compute-bound" {
		t.Fatalf("states = %q / %q, want compute-bound", resp.Emulated.State, resp.Ideal.State)
	}
	if resp.Emulated.Utilization != 1 || resp.Ideal.Utilization != 1 {
		t.Fatalf("utilizations = %v / %v, want 1", resp.Emulated.Utilization, resp.Ideal.Utilization)
	}
	if resp.Efficiency != 1 {
		t.Fatalf("compute-bound efficiency = %v, want 1", resp.Efficiency)
	}
}

func TestEmulationSlowNetworkCostsEfficiency(t *testing.T) {
	// A 10× slower interconnect on an io-bound computation shifts the
	// binding boundary to the network and prices the emulation below the
	// module-port cost alone.
	w, resp := emulate(t, `{"c": 100e6, "computation": {"name": "fft"},
		"modules": 8, "module_m": 65536, "module_bw": 1e6, "network_bw": 1e5}`)
	if resp == nil {
		t.Fatalf("emulation = %d: %s", w.Code, w.Body.String())
	}
	if resp.BindingBoundary != 2 {
		t.Fatalf("binding boundary = %d, want 2 (the interconnect binds)", resp.BindingBoundary)
	}
	if resp.Efficiency <= 0 || resp.Efficiency >= 1 {
		t.Fatalf("slow-network efficiency = %v, want strictly inside (0, 1)", resp.Efficiency)
	}
	if resp.Emulated.Utilization >= resp.Ideal.Utilization {
		t.Fatalf("emulated utilization %v not below ideal %v",
			resp.Emulated.Utilization, resp.Ideal.Utilization)
	}
	want := resp.Emulated.Utilization / resp.Ideal.Utilization
	if math.Abs(resp.Efficiency-want) > 1e-9 {
		t.Fatalf("efficiency = %v, want utilization ratio %v", resp.Efficiency, want)
	}
}

func TestEmulationSingleModuleIsTheFlatMachine(t *testing.T) {
	w, resp := emulate(t, `{"c": 100e6, "computation": {"name": "matmul"},
		"modules": 1, "module_m": 4096, "module_bw": 1e6}`)
	if resp == nil {
		t.Fatalf("emulation = %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Boundaries) != 1 {
		t.Fatalf("single module produced %d boundaries, want 1", len(resp.Boundaries))
	}
	if math.Abs(resp.Efficiency-1) > 1e-9 {
		t.Fatalf("single-module efficiency = %v, want 1", resp.Efficiency)
	}
	if resp.Emulated.AchievableRatio != resp.Ideal.AchievableRatio {
		t.Fatalf("single module: emulated %v != ideal %v",
			resp.Emulated.AchievableRatio, resp.Ideal.AchievableRatio)
	}
}

func TestEmulationValidation(t *testing.T) {
	h := New(Options{Parallelism: 2}).Handler()
	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"zero modules",
			`{"c": 1e6, "computation": {"name": "fft"}, "modules": 0, "module_m": 1024, "module_bw": 1e6}`,
			422, "invalid_argument"},
		{"over module cap",
			`{"c": 1e6, "computation": {"name": "fft"}, "modules": 2097152, "module_m": 1024, "module_bw": 1e6}`,
			422, "invalid_argument"},
		{"network faster than module port",
			`{"c": 1e6, "computation": {"name": "fft"}, "modules": 4, "module_m": 1024, "module_bw": 1e6, "network_bw": 2e6}`,
			422, "non_monotone_hierarchy"},
		{"unknown computation",
			`{"c": 1e6, "computation": {"name": "nope"}, "modules": 4, "module_m": 1024, "module_bw": 1e6}`,
			422, "unknown_computation"},
		{"unknown field",
			`{"c": 1e6, "computation": {"name": "fft"}, "modules": 4, "module_m": 1024, "module_bw": 1e6, "bogus": 1}`,
			400, "bad_json"},
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/emulation", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != tc.status {
			t.Fatalf("%s: status = %d, want %d: %s", tc.name, w.Code, tc.status, w.Body.String())
		}
		var env struct {
			Error ErrorBody `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if env.Error.Code != tc.code {
			t.Fatalf("%s: code = %q, want %q (%s)", tc.name, env.Error.Code, tc.code, env.Error.Message)
		}
	}
}

func TestEmulationCoreMatchesHierarchyAnalyze(t *testing.T) {
	// The emulated side must be exactly what /v1/analyze says about the
	// equivalent two-level hierarchy — one machinery, two doors.
	s := New(Options{Parallelism: 2})
	ctx := context.Background()
	em, apiErr := s.emulation(ctx, &EmulationRequest{
		C: 100e6, Computation: ComputationDTO{Name: "fft"},
		Modules: 4, ModuleM: 65536, ModuleBW: 1e6, NetworkBW: 2e5,
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	an, apiErr := s.analyze(ctx, &AnalyzeRequest{
		PE:          PEDTO{C: 100e6},
		Computation: ComputationDTO{Name: "fft"},
		Levels: []LevelDTO{
			{Name: "module", BW: 1e6, M: 65536},
			{Name: "network", BW: 2e5, M: 3 * 65536},
		},
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if em.Emulated.AchievableRatio != an.AchievableRatio ||
		em.Emulated.State != an.State ||
		em.BindingBoundary != an.BindingBoundary {
		t.Fatalf("emulation diverged from hierarchy analyze:\n%+v\nvs %+v", em.Emulated, an)
	}
}
