package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"balarch/internal/engine"
)

// sseEvent is one parsed frame from a recorded SSE body.
type sseEvent struct {
	name string
	data string
}

// parseSSE splits a recorded stream into its frames (comments skipped).
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, frame := range strings.Split(body, "\n\n") {
		if frame == "" || strings.HasPrefix(frame, ":") {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(frame, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case strings.HasPrefix(line, ":"):
				// heartbeat sharing a frame boundary
			default:
				t.Fatalf("unparseable SSE line %q in frame %q", line, frame)
			}
		}
		if ev.name != "" {
			out = append(out, ev)
		}
	}
	return out
}

func TestEventBusSlowConsumerCut(t *testing.T) {
	b := newEventBus(2)
	sub, ok := b.subscribe("t")
	if !ok {
		t.Fatal("subscribe refused on an open bus")
	}
	// Fill the mailbox, then one more: the third publish must cut the
	// subscriber rather than block (the publisher may hold the queue lock).
	for i := 0; i < 3; i++ {
		b.publish("t", busEvent{name: "e", data: []byte("{}")}, false)
	}
	if n := b.subscriberCount("t"); n != 0 {
		t.Fatalf("slow subscriber still registered (%d)", n)
	}
	// Drain: two delivered events, then the close with the drop reason.
	for i := 0; i < 2; i++ {
		if _, open := <-sub.ch; !open {
			t.Fatalf("event %d: channel closed early", i)
		}
	}
	if _, open := <-sub.ch; open {
		t.Fatal("cut subscriber's channel still open")
	}
	if sub.reason != dropSlowConsumer {
		t.Fatalf("reason = %q, want %q", sub.reason, dropSlowConsumer)
	}
}

func TestEventBusTerminalAndClose(t *testing.T) {
	b := newEventBus(4)
	sub, _ := b.subscribe("t")
	b.publish("t", busEvent{name: "done", data: []byte("{}")}, true)
	if ev, open := <-sub.ch; !open || ev.name != "done" {
		t.Fatalf("terminal event not delivered: %v %v", ev, open)
	}
	if _, open := <-sub.ch; open {
		t.Fatal("channel open after terminal publish")
	}
	if sub.reason != "" {
		t.Fatalf("normal completion has reason %q", sub.reason)
	}
	if n := b.subscriberCount("t"); n != 0 {
		t.Fatalf("topic not cleaned up (%d subs)", n)
	}

	sub2, _ := b.subscribe("u")
	b.close()
	if _, open := <-sub2.ch; open {
		t.Fatal("close left a channel open")
	}
	if sub2.reason != dropShuttingDown {
		t.Fatalf("reason = %q, want %q", sub2.reason, dropShuttingDown)
	}
	if _, ok := b.subscribe("v"); ok {
		t.Fatal("closed bus accepted a subscription")
	}
}

func TestJobProgressContextPublishes(t *testing.T) {
	srv := newJobsServer(t, Options{})
	sub, _ := srv.events.subscribe(jobTopic("j1"))
	ctx := srv.jobProgressContext(context.Background(), "j1")
	engine.ProgressFrom(ctx)(engine.Event{Done: 3, Total: 8, Key: "k", Cached: true})
	ev := <-sub.ch
	if ev.name != eventProgress {
		t.Fatalf("event = %q, want progress", ev.name)
	}
	var dto JobProgressDTO
	if err := json.Unmarshal(ev.data, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.ID != "j1" || dto.Done != 3 || dto.Total != 8 || dto.Key != "k" || !dto.Cached {
		t.Fatalf("progress payload = %+v", dto)
	}
}

func TestJobEventsStreamToDone(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	st, _ := submitJob(t, h, `{"op": "sweep", "request": {"kernel": "matmul", "n": 48, "params": [2, 4, 8]}}`)

	w := do(h, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "")
	if w.Code != 200 {
		t.Fatalf("stream status %d\n%s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	evs := parseSSE(t, w.Body.String())
	if len(evs) == 0 {
		t.Fatal("stream carried no events")
	}
	last := evs[len(evs)-1]
	if last.name != eventDone {
		t.Fatalf("terminal event = %q, want done\nstream: %s", last.name, w.Body.String())
	}
	var dto JobStatusDTO
	if err := json.Unmarshal([]byte(last.data), &dto); err != nil {
		t.Fatal(err)
	}
	if dto.ID != st.ID || dto.State != "done" {
		t.Fatalf("done payload = %+v", dto)
	}
	for _, ev := range evs[:len(evs)-1] {
		if ev.name != eventState && ev.name != eventProgress {
			t.Fatalf("unexpected mid-stream event %q", ev.name)
		}
	}
	// The stream ended normally, freeing its subscription.
	if n := srv.events.subscriberCount(jobTopic(st.ID)); n != 0 {
		t.Fatalf("%d subscriptions leaked", n)
	}
}

func TestJobEventsTerminalFastPath(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	st, _ := submitJob(t, h, `{"op": "analyze", "request": {"pe": {"c": 2e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`)
	waitJobDone(t, h, st.ID)

	w := do(h, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "")
	evs := parseSSE(t, w.Body.String())
	if len(evs) != 1 || evs[0].name != eventDone {
		t.Fatalf("terminal job stream = %v, want exactly one done event", evs)
	}
}

func TestJobEventsErrors(t *testing.T) {
	srv := newJobsServer(t, Options{})
	w := do(srv.Handler(), http.MethodGet, "/v1/jobs/jdeadbeefdeadbeef/events", "")
	if w.Code != 404 || !strings.Contains(w.Body.String(), "unknown_job") {
		t.Fatalf("unknown job: %d\n%s", w.Code, w.Body.String())
	}
	// No subscription may outlive the refusal.
	if n := srv.events.subscriberCount(jobTopic("jdeadbeefdeadbeef")); n != 0 {
		t.Fatalf("%d subscriptions leaked by a 404", n)
	}

	_, plain := newTestHandler(Options{})
	w = do(plain, http.MethodGet, "/v1/jobs/x/events", "")
	if w.Code != 404 || !strings.Contains(w.Body.String(), "jobs_disabled") {
		t.Fatalf("jobs disabled: %d\n%s", w.Code, w.Body.String())
	}
}

// safeRecorder is a recorder the test may read while the handler still
// writes (a live stream): every access goes through one mutex.
type safeRecorder struct {
	mu  sync.Mutex
	rec *httptest.ResponseRecorder
}

func (s *safeRecorder) Header() http.Header {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Header()
}

func (s *safeRecorder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Write(p)
}

func (s *safeRecorder) WriteHeader(code int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.WriteHeader(code)
}

func (s *safeRecorder) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.Flush()
}

func (s *safeRecorder) body() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Body.String()
}

// streamInBackground issues an events request whose context the caller
// controls, returning the recorder and a channel closed when the handler
// returns.
func streamInBackground(ctx context.Context, h http.Handler, path string) (*safeRecorder, chan struct{}) {
	req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
	w := &safeRecorder{rec: httptest.NewRecorder()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, req)
	}()
	return w, done
}

// waitSubscribers polls until topic has n subscribers or the deadline
// passes.
func waitSubscribers(t *testing.T, b *eventBus, topic string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.subscriberCount(topic) != n {
		if time.Now().After(deadline) {
			t.Fatalf("topic %s never reached %d subscribers (at %d)", topic, n, b.subscriberCount(topic))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobEventsClientDisconnectFreesSubscription(t *testing.T) {
	// Paused workers: the job stays queued, so the stream only ends when
	// the client goes away.
	srv := newJobsServer(t, Options{JobWorkers: -1})
	h := srv.Handler()
	st, _ := submitJob(t, h, `{"op": "sweep", "request": {"kernel": "matmul", "n": 32, "params": [2]}}`)

	ctx, cancel := context.WithCancel(context.Background())
	_, done := streamInBackground(ctx, h, "/v1/jobs/"+st.ID+"/events")
	waitSubscribers(t, srv.events, jobTopic(st.ID), 1)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	if n := srv.events.subscriberCount(jobTopic(st.ID)); n != 0 {
		t.Fatalf("%d subscriptions survive the disconnect", n)
	}
}

func TestJobEventsDrainEndsStreams(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: -1})
	h := srv.Handler()
	st, _ := submitJob(t, h, `{"op": "sweep", "request": {"kernel": "matmul", "n": 32, "params": [2]}}`)

	w, done := streamInBackground(context.Background(), h, "/v1/jobs/"+st.ID+"/events")
	waitSubscribers(t, srv.events, jobTopic(st.ID), 1)
	srv.events.close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return on drain")
	}
	evs := parseSSE(t, w.body())
	last := evs[len(evs)-1]
	if last.name != eventDropped || !strings.Contains(last.data, dropShuttingDown) {
		t.Fatalf("drain stream ended with %v, want dropped/shutting_down", last)
	}
	// A draining bus refuses new streams with a retryable 503.
	w2 := do(h, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "")
	if w2.Code != 503 || !strings.Contains(w2.Body.String(), "draining") {
		t.Fatalf("stream on a draining server: %d\n%s", w2.Code, w2.Body.String())
	}
	if w2.Header().Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
}

func TestJobEventsHeartbeat(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: -1})
	srv.sseHeartbeat = 5 * time.Millisecond
	h := srv.Handler()
	st, _ := submitJob(t, h, `{"op": "sweep", "request": {"kernel": "matmul", "n": 32, "params": [2]}}`)

	ctx, cancel := context.WithCancel(context.Background())
	w, done := streamInBackground(ctx, h, "/v1/jobs/"+st.ID+"/events")
	waitSubscribers(t, srv.events, jobTopic(st.ID), 1)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(w.body(), ": heartbeat") {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat within 5s at a 5ms interval")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}

func TestExperimentStream(t *testing.T) {
	_, h := newTestHandler(Options{})
	w := do(h, http.MethodPost, "/v1/experiments/E1?stream=1", "")
	if w.Code != 200 {
		t.Fatalf("stream status %d\n%s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	evs := parseSSE(t, w.Body.String())
	if len(evs) == 0 {
		t.Fatal("experiment stream carried no events")
	}
	last := evs[len(evs)-1]
	if last.name != eventDone {
		t.Fatalf("terminal event = %q, want done", last.name)
	}
	var resp ExperimentRunResponse
	if err := json.Unmarshal([]byte(last.data), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Pass || len(resp.Result) == 0 {
		t.Fatalf("done payload = pass %v with %d result bytes", resp.Pass, len(resp.Result))
	}
	progress := 0
	for _, ev := range evs[:len(evs)-1] {
		if ev.name == eventProgress {
			progress++
		}
	}
	if progress == 0 {
		t.Fatal("experiment stream pushed no progress events")
	}

	// Unknown id: the stream is already open, so the failure is an
	// in-band "error" event, not an HTTP status.
	w = do(h, http.MethodPost, "/v1/experiments/E0?stream=1", "")
	if w.Code != 200 {
		t.Fatalf("unknown experiment stream status %d", w.Code)
	}
	evs = parseSSE(t, w.Body.String())
	last = evs[len(evs)-1]
	if last.name != eventError || !strings.Contains(last.data, "unknown_experiment") {
		t.Fatalf("unknown experiment ended with %v, want error/unknown_experiment", last)
	}

	// Without ?stream=1 the route still answers plain JSON.
	wPlain, decoded := doJSON(t, h, http.MethodPost, "/v1/experiments/E1", "")
	if wPlain.Code != 200 || decoded["pass"] != true {
		t.Fatalf("plain experiment run: %d %v", wPlain.Code, decoded)
	}
}
