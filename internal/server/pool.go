package server

// Hot-path object pools. The pooling rules (documented in DESIGN.md §8):
//
//   - Pool only types the request path creates per request: encode buffers,
//     the analyze/sweep request and response DTOs, the sweep-key scratch.
//   - A pooled object is released exactly once, after its last read, and
//     never retained past the release (enforced by putting the release at
//     the single call site that finishes with the object).
//   - put* resets every field. Response-owned slices keep their backing
//     array ([:0]); any slice that can alias request-owned memory is set to
//     nil instead — AnalyzeResponse.Levels aliases the request's Levels, so
//     recycling it would let two pooled objects share one backing array.
//   - Capacity caps keep one huge request from parking a huge buffer in the
//     pool forever.
//   - Forgetting to release is safe (the object is garbage collected);
//     releasing twice or using after release is not — when in doubt, don't
//     release.

import "sync"

const (
	// maxPooledBufBytes caps a recycled encode/read buffer.
	maxPooledBufBytes = 64 << 10
	// maxPooledSliceElems caps recycled DTO slice backing arrays.
	maxPooledSliceElems = 256
)

// byteBuf boxes a byte slice so the pool stores pointers (a plain []byte
// would be boxed into a fresh interface allocation on every Put).
type byteBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return &byteBuf{b: make([]byte, 0, 4096)} }}

func getBuf() *byteBuf { return bufPool.Get().(*byteBuf) }

func putBuf(bb *byteBuf) {
	if bb == nil || cap(bb.b) > maxPooledBufBytes {
		return
	}
	bb.b = bb.b[:0]
	bufPool.Put(bb)
}

// --- request DTOs ---

var analyzeReqPool = sync.Pool{New: func() any { return new(AnalyzeRequest) }}

func getAnalyzeRequest() *AnalyzeRequest { return analyzeReqPool.Get().(*AnalyzeRequest) }

func putAnalyzeRequest(r *AnalyzeRequest) {
	levels := r.Levels
	*r = AnalyzeRequest{}
	if cap(levels) <= maxPooledSliceElems {
		r.Levels = levels[:0]
	}
	analyzeReqPool.Put(r)
}

var sweepReqPool = sync.Pool{New: func() any { return new(SweepRequest) }}

func getSweepRequest() *SweepRequest { return sweepReqPool.Get().(*SweepRequest) }

func putSweepRequest(r *SweepRequest) {
	params, levels := r.Params, r.Levels
	*r = SweepRequest{}
	if cap(params) <= maxPooledSliceElems {
		r.Params = params[:0]
	}
	if cap(levels) <= maxPooledSliceElems {
		r.Levels = levels[:0]
	}
	sweepReqPool.Put(r)
}

// --- response DTOs ---

var analyzeRespPool = sync.Pool{New: func() any { return new(AnalyzeResponse) }}

func getAnalyzeResponse() *AnalyzeResponse { return analyzeRespPool.Get().(*AnalyzeResponse) }

func putAnalyzeResponse(r *AnalyzeResponse) {
	// Levels aliases the request's slice (see analyzeHierarchy) — drop it,
	// never recycle it. Boundaries is response-owned and safe to keep.
	boundaries := r.Boundaries
	*r = AnalyzeResponse{}
	if cap(boundaries) <= maxPooledSliceElems {
		r.Boundaries = boundaries[:0]
	}
	analyzeRespPool.Put(r)
}

var sweepRespPool = sync.Pool{New: func() any { return new(SweepResponse) }}

func getSweepResponse() *SweepResponse { return sweepRespPool.Get().(*SweepResponse) }

func putSweepResponse(r *SweepResponse) {
	points := r.Points
	*r = SweepResponse{}
	if cap(points) <= maxPooledSliceElems {
		r.Points = points[:0]
	}
	sweepRespPool.Put(r)
}

// releaseBody returns a core operation's response to its pool when it is a
// pooled type; everything else is a no-op. Shared by the handlers, the
// batch items, and the job executor — each calls it once, after the body's
// bytes are on the wire (or in the stored result).
func releaseBody(v any) {
	switch t := v.(type) {
	case *AnalyzeResponse:
		putAnalyzeResponse(t)
	case *SweepResponse:
		putSweepResponse(t)
	}
}

// sweepScratch recycles the per-request allocations of the sweep cache
// lookup: the key bytes and the sorted-params copy.
type sweepScratch struct {
	key    []byte
	params []int
}

var sweepScratchPool = sync.Pool{New: func() any { return new(sweepScratch) }}

func getSweepScratch() *sweepScratch { return sweepScratchPool.Get().(*sweepScratch) }

func putSweepScratch(sc *sweepScratch) {
	if cap(sc.key) > maxPooledBufBytes || cap(sc.params) > maxPooledSliceElems {
		return
	}
	sc.key = sc.key[:0]
	sc.params = sc.params[:0]
	sweepScratchPool.Put(sc)
}
