package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"balarch/internal/jobs"
)

// contextWithTimeout is a shorthand for the drain deadlines these tests
// hand to Server.Close.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// newJobsServer returns a jobs-enabled server rooted in a temp dir,
// closed on test cleanup.
func newJobsServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.StoreDir == "" {
		opts.StoreDir = t.TempDir()
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = 2
	}
	srv := New(opts)
	if srv.JobsErr() != nil {
		t.Fatalf("jobs failed to open: %v", srv.JobsErr())
	}
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return srv
}

// do posts one request at the handler and returns the recorder.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// submitJob posts the envelope and returns the decoded status.
func submitJob(t *testing.T, h http.Handler, body string) (JobStatusDTO, int) {
	t.Helper()
	rr := do(h, http.MethodPost, "/v1/jobs", body)
	var dto JobStatusDTO
	if rr.Code == http.StatusOK || rr.Code == http.StatusAccepted {
		if err := json.Unmarshal(rr.Body.Bytes(), &dto); err != nil {
			t.Fatalf("submit response: %v\n%s", err, rr.Body.Bytes())
		}
	}
	return dto, rr.Code
}

// waitJobDone polls the status endpoint until the job is done.
func waitJobDone(t *testing.T, h http.Handler, id string) JobStatusDTO {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rr := do(h, http.MethodGet, "/v1/jobs/"+id, "")
		var dto JobStatusDTO
		if rr.Code == http.StatusOK {
			if err := json.Unmarshal(rr.Body.Bytes(), &dto); err != nil {
				t.Fatal(err)
			}
			switch dto.State {
			case "done":
				return dto
			case "failed", "canceled":
				t.Fatalf("job %s ended %s: %s", id, dto.State, dto.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never completed (last: %d %s)", id, rr.Code, rr.Body.Bytes())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

const sweepJobBody = `{"op": "sweep", "request": {"kernel": "matmul", "n": 64, "params": [4, 8]}}`

// TestJobLifecycleAndByteIdenticalResult drives the full async path:
// submit, poll to done, fetch the result — and requires the result bytes
// to equal what the synchronous endpoint returns for the same request on
// a fresh (cold-cache) server.
func TestJobLifecycleAndByteIdenticalResult(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()

	dto, code := submitJob(t, h, sweepJobBody)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	if dto.ID == "" || dto.Op != "sweep" {
		t.Fatalf("submit dto = %+v", dto)
	}
	done := waitJobDone(t, h, dto.ID)
	if done.ResultKey == "" || done.FinishedAt == "" {
		t.Errorf("done job missing result key or finish time: %+v", done)
	}

	rr := do(h, http.MethodGet, "/v1/jobs/"+dto.ID+"/result", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", rr.Code, rr.Body.Bytes())
	}
	asyncBody := rr.Body.Bytes()

	// The synchronous answer, from a fresh server so its sweep memo is as
	// cold as the job executor's was.
	fresh := New(Options{Parallelism: 2})
	sync := do(fresh.Handler(), http.MethodPost, "/v1/sweep",
		`{"kernel": "matmul", "n": 64, "params": [4, 8]}`)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync sweep status %d", sync.Code)
	}
	if !bytes.Equal(asyncBody, sync.Body.Bytes()) {
		t.Errorf("async result differs from the synchronous response:\nasync: %s\nsync:  %s",
			asyncBody, sync.Body.Bytes())
	}
}

// TestJobDedupNoReExecution pins the content-store acceptance criterion
// at the API level: an identical request resubmitted — including against
// a brand-new server over the same store directory — never re-runs the
// kernels. The sweep memo's miss counter is the execution count.
func TestJobDedupNoReExecution(t *testing.T) {
	dir := t.TempDir()
	srv := newJobsServer(t, Options{StoreDir: dir})
	h := srv.Handler()

	first, _ := submitJob(t, h, sweepJobBody)
	waitJobDone(t, h, first.ID)
	if got := srv.Metrics().Snapshot().CacheMisses; got != 1 {
		t.Fatalf("first job: %d sweep misses, want 1", got)
	}

	// Same request again on the same server: joins the done job.
	second, code := submitJob(t, h, sweepJobBody)
	if code != http.StatusOK || second.ID != first.ID || second.State != "done" {
		t.Fatalf("resubmit = %d %+v, want 200 done with the same id", code, second)
	}
	if got := srv.Metrics().Snapshot().CacheMisses; got != 1 {
		t.Errorf("resubmit re-ran the kernels: %d misses", got)
	}

	// Forget the job record (DELETE keeps the content-addressed blob),
	// then restart: a new server over the same store dir, fresh sweep
	// memo, no job to join — the store itself must answer, and the
	// kernels must not run.
	do(h, http.MethodDelete, "/v1/jobs/"+first.ID, "")
	ctx, cancel := contextWithTimeout(5 * time.Second)
	srv.Close(ctx)
	cancel()
	srv2 := newJobsServer(t, Options{StoreDir: dir})
	h2 := srv2.Handler()
	third, code := submitJob(t, h2, sweepJobBody)
	if code != http.StatusOK || third.State != "done" || !third.Cached {
		t.Fatalf("post-restart resubmit = %d %+v, want instant cached done", code, third)
	}
	if got := srv2.Metrics().Snapshot().CacheMisses; got != 0 {
		t.Errorf("post-restart resubmit ran the kernels: %d misses", got)
	}
	// And its result is fetchable.
	rr := do(h2, http.MethodGet, "/v1/jobs/"+third.ID+"/result", "")
	if rr.Code != http.StatusOK || !json.Valid(rr.Body.Bytes()) {
		t.Errorf("post-restart result fetch = %d", rr.Code)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	for name, tc := range map[string]struct {
		body string
		want int
		code string
	}{
		"missing op":         {`{"request": {}}`, 400, "invalid_argument"},
		"unknown op":         {`{"op": "explode", "request": {}}`, 400, "unknown_op"},
		"no request":         {`{"op": "sweep"}`, 400, "bad_json"},
		"malformed":          {`{`, 400, "bad_json"},
		"invalid sweep":      {`{"op": "sweep", "request": {"kernel": "matmul", "n": -1, "params": [4]}}`, 422, "invalid_argument"},
		"unknown kernel":     {`{"op": "sweep", "request": {"kernel": "nope", "n": 64, "params": [4]}}`, 422, "unknown_kernel"},
		"unknown experiment": {`{"op": "experiment", "request": {"id": "E99"}}`, 404, "unknown_experiment"},
		"bad computation":    {`{"op": "analyze", "request": {"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "nope"}}}`, 422, "unknown_computation"},
		"nested batch":       {`{"op": "batch", "request": {"requests": [{"op": "batch", "request": {"requests": []}}]}}`, 422, "invalid_argument"},
		"empty batch":        {`{"op": "batch", "request": {"requests": []}}`, 422, "invalid_argument"},
		"bad batch item":     {`{"op": "batch", "request": {"requests": [{"op": "analyze", "request": {"computation": {"name": "zzz"}}}]}}`, 422, "invalid_argument"},
	} {
		rr := do(h, http.MethodPost, "/v1/jobs", tc.body)
		if rr.Code != tc.want {
			t.Errorf("%s: status %d, want %d\n%s", name, rr.Code, tc.want, rr.Body.Bytes())
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error.Code != tc.code {
			t.Errorf("%s: envelope code %q, want %q", name, env.Error.Code, tc.code)
		}
	}
	// Nothing invalid was admitted.
	if c := srv.Jobs().Counters(); c.Queued+c.Running+c.Done+c.Failed > 0 {
		t.Errorf("invalid submissions created jobs: %+v", c)
	}
}

// TestJobAdmissionControl429 pins the memory-aware gate: a sweep whose
// estimated footprint exceeds the budget is 429 with a Retry-After
// header, and is not journaled.
func TestJobAdmissionControl429(t *testing.T) {
	srv := newJobsServer(t, Options{MemBudgetBytes: 128 << 10, JobWorkers: -1})
	h := srv.Handler()
	// sort params [512]: estimated 512²×8 B ≈ 2 MiB ≫ the 128 KiB budget.
	rr := do(h, http.MethodPost, "/v1/jobs",
		`{"op": "sweep", "request": {"kernel": "sort", "params": [512]}}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit = %d, want 429\n%s", rr.Code, rr.Body.Bytes())
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	var env errorEnvelope
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error.Code != "over_budget" {
		t.Errorf("429 envelope = %+v, %v", env, err)
	}
	if c := srv.Jobs().Counters(); c.Queued != 0 {
		t.Errorf("over-budget job was journaled: %+v", c)
	}
	// A job inside the budget is accepted (workers paused: stays queued).
	rr = do(h, http.MethodPost, "/v1/jobs",
		`{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("in-budget submit = %d, want 202", rr.Code)
	}
}

func TestJobCancelAndDelete(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: -1}) // paused: stays queued
	h := srv.Handler()
	dto, _ := submitJob(t, h, sweepJobBody)

	rr := do(h, http.MethodDelete, "/v1/jobs/"+dto.ID, "")
	var del JobDeleteResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &del); err != nil || del.State != "canceled" {
		t.Fatalf("cancel = %d %s", rr.Code, rr.Body.Bytes())
	}
	// Result of a canceled job is 409.
	if rr := do(h, http.MethodGet, "/v1/jobs/"+dto.ID+"/result", ""); rr.Code != http.StatusConflict {
		t.Errorf("canceled result = %d, want 409", rr.Code)
	}
	// Second DELETE forgets the terminal record.
	rr = do(h, http.MethodDelete, "/v1/jobs/"+dto.ID, "")
	if err := json.Unmarshal(rr.Body.Bytes(), &del); err != nil || del.State != "deleted" {
		t.Fatalf("delete = %d %s", rr.Code, rr.Body.Bytes())
	}
	if rr := do(h, http.MethodGet, "/v1/jobs/"+dto.ID, ""); rr.Code != http.StatusNotFound {
		t.Errorf("deleted job get = %d, want 404", rr.Code)
	}
	if rr := do(h, http.MethodDelete, "/v1/jobs/nope", ""); rr.Code != http.StatusNotFound {
		t.Errorf("unknown delete = %d, want 404", rr.Code)
	}
}

// TestJobsErrorMapping pins the queue-error → envelope mapping,
// including the delete/resubmit race's state conflict (409, never a
// 500 — the envelope contract).
func TestJobsErrorMapping(t *testing.T) {
	for _, tc := range []struct {
		err    error
		status int
		code   string
	}{
		{jobs.ErrNotFound, http.StatusNotFound, "unknown_job"},
		{fmt.Errorf("job j1 is running: %w", jobs.ErrNotTerminal), http.StatusConflict, "not_terminal"},
		{jobs.ErrClosed, http.StatusServiceUnavailable, "draining"},
		{&jobs.ErrOverBudget{Cost: 10, InUse: 5, Budget: 8, RetryAfter: 3 * time.Second}, http.StatusTooManyRequests, "over_budget"},
	} {
		ae := asJobsError(tc.err)
		if ae.Status != tc.status || ae.Body.Code != tc.code {
			t.Errorf("asJobsError(%v) = %d %s, want %d %s", tc.err, ae.Status, ae.Body.Code, tc.status, tc.code)
		}
	}
	if ae := asJobsError(&jobs.ErrOverBudget{RetryAfter: 3 * time.Second}); ae.RetryAfterSeconds != 3 {
		t.Errorf("Retry-After seconds = %d, want 3", ae.RetryAfterSeconds)
	}
}

func TestJobResultBeforeDone(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: -1})
	h := srv.Handler()
	dto, _ := submitJob(t, h, sweepJobBody)
	rr := do(h, http.MethodGet, "/v1/jobs/"+dto.ID+"/result", "")
	if rr.Code != http.StatusConflict {
		t.Fatalf("queued result = %d, want 409\n%s", rr.Code, rr.Body.Bytes())
	}
	var env errorEnvelope
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error.Code != "not_done" {
		t.Errorf("envelope = %+v", env)
	}
}

func TestJobListAndFilter(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: -1})
	h := srv.Handler()
	submitJob(t, h, sweepJobBody)
	submitJob(t, h, `{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`)

	rr := do(h, http.MethodGet, "/v1/jobs", "")
	var list JobListResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil || len(list.Jobs) != 2 {
		t.Fatalf("list = %d jobs, %v\n%s", len(list.Jobs), err, rr.Body.Bytes())
	}
	rr = do(h, http.MethodGet, "/v1/jobs?state=done", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil || len(list.Jobs) != 0 {
		t.Errorf("done filter over queued jobs = %d jobs", len(list.Jobs))
	}
	rr = do(h, http.MethodGet, "/v1/jobs?state=queued", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil || len(list.Jobs) != 2 {
		t.Errorf("queued filter = %d jobs", len(list.Jobs))
	}
}

// TestJobsDisabled: without a store dir every jobs endpoint answers the
// typed 404.
func TestJobsDisabled(t *testing.T) {
	srv := New(Options{Parallelism: 1})
	h := srv.Handler()
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/jobs"},
		{http.MethodGet, "/v1/jobs"},
		{http.MethodGet, "/v1/jobs/j0"},
		{http.MethodGet, "/v1/jobs/j0/result"},
		{http.MethodDelete, "/v1/jobs/j0"},
	} {
		rr := do(h, probe.method, probe.path, `{"op": "sweep", "request": {}}`)
		if rr.Code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, rr.Code)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error.Code != "jobs_disabled" {
			t.Errorf("%s %s envelope = %+v", probe.method, probe.path, env)
		}
	}
	// Close on a jobs-disabled server is a no-op.
	ctx, cancel := contextWithTimeout(time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestJobsMetricsGauges: the store_* and jobs_* keys move with real
// activity.
func TestJobsMetricsGauges(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	dto, _ := submitJob(t, h, sweepJobBody)
	waitJobDone(t, h, dto.ID)
	// Two result fetches: one may hit the store's LRU, both count hits.
	do(h, http.MethodGet, "/v1/jobs/"+dto.ID+"/result", "")
	do(h, http.MethodGet, "/v1/jobs/"+dto.ID+"/result", "")

	rr := do(h, http.MethodGet, "/metrics", "")
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.JobsDone != 1 {
		t.Errorf("jobs_done = %d, want 1", snap.JobsDone)
	}
	if snap.StoreEntries != 1 || snap.StoreBytes <= 0 {
		t.Errorf("store entries/bytes = %d/%d", snap.StoreEntries, snap.StoreBytes)
	}
	if snap.StoreHits < 2 {
		t.Errorf("store_hits = %d, want ≥ 2", snap.StoreHits)
	}
}

// TestJobBatchOp: a whole batch runs as one job and its result matches
// the synchronous /v1/batch body.
func TestJobBatchOp(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	batch := `{"requests": [` +
		`{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "matmul"}}},` +
		`{"op": "rebalance", "request": {"computation": {"name": "fft"}, "alpha": 2, "m_old": 1024}}]}`
	dto, code := submitJob(t, h, fmt.Sprintf(`{"op": "batch", "request": %s}`, batch))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("batch job submit = %d", code)
	}
	waitJobDone(t, h, dto.ID)
	rr := do(h, http.MethodGet, "/v1/jobs/"+dto.ID+"/result", "")
	sync := do(New(Options{Parallelism: 2}).Handler(), http.MethodPost, "/v1/batch", batch)
	if !bytes.Equal(rr.Body.Bytes(), sync.Body.Bytes()) {
		t.Errorf("batch job result differs from sync:\nasync: %s\nsync:  %s",
			rr.Body.Bytes(), sync.Body.Bytes())
	}
}

// TestJobCanonicalizationDedup: whitespace and field order do not split
// the content address — both spellings land on one job.
func TestJobCanonicalizationDedup(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: -1})
	h := srv.Handler()
	a, _ := submitJob(t, h, `{"op": "sweep", "request": {"kernel": "matmul", "n": 64, "params": [4, 8]}}`)
	b, _ := submitJob(t, h, `{"op": "sweep", "request": {  "params": [4, 8],  "n": 64, "kernel": "matmul"}}`)
	if a.ID != b.ID {
		t.Errorf("spellings split the job: %s vs %s", a.ID, b.ID)
	}
	if c := srv.Jobs().Counters(); c.Queued != 1 {
		t.Errorf("counters = %+v, want one queued job", c)
	}
}
