package server

// Hierarchy request handling: the optional `levels` array on analyze,
// rebalance, roofline, and sweep lifts those operations from the flat PE to
// model.Hierarchy. One resolver owns the DTO→model mapping and the typed
// 422s (non_monotone_hierarchy for mis-ordered bandwidths), so the four
// endpoints cannot drift apart; flat requests never reach this file and
// keep their byte-identical wire shapes.

import (
	"context"
	"errors"
	"math"
	"strings"

	"balarch/internal/kernels"
	"balarch/internal/model"
	"balarch/internal/opcount"
	"balarch/internal/roofline"
)

// maxHierarchyLevels caps a request's level stack — a service limit, not a
// model one.
const maxHierarchyLevels = 8

// resolveHierarchy maps a (compute rate, levels) pair onto the validated
// model type. Monotonicity violations get their own code so clients can
// tell "your machine description is mis-ordered" from garden-variety bad
// arguments.
func resolveHierarchy(c float64, levels []LevelDTO) (model.Hierarchy, *apiError) {
	if len(levels) > maxHierarchyLevels {
		return model.Hierarchy{}, unprocessable("invalid_argument",
			"levels lists %d entries, service cap is %d", len(levels), maxHierarchyLevels)
	}
	h := model.Hierarchy{C: c, Levels: make([]model.Level, len(levels))}
	for i, l := range levels {
		h.Levels[i] = model.Level{Name: l.Name, BW: l.BW, M: l.M}
	}
	if err := h.Validate(); err != nil {
		if errors.Is(err, model.ErrNonMonotoneHierarchy) {
			return model.Hierarchy{}, unprocessable("non_monotone_hierarchy", "%v", err)
		}
		return model.Hierarchy{}, unprocessable("invalid_argument", "%v", err)
	}
	return h, nil
}

// requireNoFlatFields rejects requests that mix the hierarchy and flat
// machine descriptions: with `levels` present the compute rate lives in
// pe.c and the levels carry the bandwidths and capacities.
func requireNoFlatFields(pe PEDTO) *apiError {
	if pe.IO != 0 || pe.M != 0 {
		return unprocessable("invalid_argument",
			"levels and pe.io/pe.m are mutually exclusive: with a hierarchy, put the compute rate in pe.c and the bandwidths/capacities in levels")
	}
	return nil
}

// analyzeHierarchy is the hierarchy branch of the analyze core: every
// boundary gets the paper's balance test, the flat response fields describe
// the binding boundary (as the effective flat PE there), and the
// per-boundary detail rides in Boundaries.
func (s *Server) analyzeHierarchy(req *AnalyzeRequest, comp model.Computation, maxM float64) (*AnalyzeResponse, *apiError) {
	if apiErr := requireNoFlatFields(req.PE); apiErr != nil {
		return nil, apiErr
	}
	h, apiErr := resolveHierarchy(req.PE.C, req.Levels)
	if apiErr != nil {
		return nil, apiErr
	}
	a, err := model.AnalyzeHierarchy(h, comp, maxM)
	if err != nil {
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	bind := a.BindingBoundary()
	resp := getAnalyzeResponse()
	resp.Computation = comp.Name
	resp.Section = comp.Section
	resp.PE = PEDTO{C: h.C, IO: bind.Level.BW, M: bind.CapacityWithin}
	resp.Intensity = bind.Intensity
	resp.AchievableRatio = bind.AchievableRatio
	resp.State = balanceStateName(a.State)
	resp.BalancedMemory = bind.BalancedMemory
	resp.Rebalanceable = bind.Rebalanceable
	resp.Law = lawDescription(comp.Law)
	// Levels aliases the request's slice; putAnalyzeResponse drops it
	// rather than recycling it for exactly that reason.
	resp.Levels = req.Levels
	resp.BindingBoundary = a.Binding
	boundaries := resp.Boundaries[:0]
	for _, b := range a.Boundaries {
		boundaries = append(boundaries, BoundaryDTO{
			Boundary:        b.Boundary,
			Name:            b.Level.Name,
			BW:              b.Level.BW,
			CapacityWithin:  b.CapacityWithin,
			Intensity:       b.Intensity,
			AchievableRatio: b.AchievableRatio,
			State:           balanceStateName(b.State),
			BalancedMemory:  b.BalancedMemory,
			Rebalanceable:   b.Rebalanceable,
		})
	}
	resp.Boundaries = boundaries
	return resp, nil
}

// rebalanceHierarchy is the hierarchy branch of the rebalance core: the
// compute rate grows by α and the per-level memory bill comes back.
func (s *Server) rebalanceHierarchy(req *RebalanceRequest, comp model.Computation, maxM float64) (*RebalanceResponse, *apiError) {
	if req.MOld != 0 {
		return nil, unprocessable("invalid_argument",
			"levels and m_old are mutually exclusive: the old memories are the levels' capacities")
	}
	h, apiErr := resolveHierarchy(req.C, req.Levels)
	if apiErr != nil {
		return nil, apiErr
	}
	r, err := model.RebalanceHierarchy(h, comp, req.Alpha, maxM)
	if err != nil {
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	resp := &RebalanceResponse{
		Computation:     comp.Name,
		Alpha:           req.Alpha,
		Rebalanceable:   r.Rebalanceable,
		Law:             lawDescription(comp.Law),
		C:               req.C,
		Boundaries:      make([]RebalanceBoundaryDTO, len(r.Boundaries)),
		BindingBoundary: r.Binding,
		TotalMemory:     r.TotalMemory,
		TotalDelta:      r.TotalDelta,
	}
	for i, b := range r.Boundaries {
		resp.Boundaries[i] = RebalanceBoundaryDTO{
			Boundary:       b.Boundary,
			Intensity:      b.Intensity,
			RequiredWithin: b.RequiredWithin,
			Rebalanceable:  b.Rebalanceable,
		}
	}
	for _, l := range r.Bill {
		resp.LevelBill = append(resp.LevelBill, LevelBillDTO{
			Name:  l.Level.Name,
			BW:    l.Level.BW,
			MOld:  l.Level.M,
			MNew:  l.MNew,
			Delta: l.Delta,
		})
	}
	return resp, nil
}

// rooflineHierarchy is the hierarchy branch of the roofline core: the
// multi-ridge roofline, with [MemLo, MemHi] sweeping the chosen level's
// capacity.
func (s *Server) rooflineHierarchy(req *RooflineRequest, comps []model.Computation) (*RooflineResponse, *apiError) {
	if apiErr := requireNoFlatFields(req.PE); apiErr != nil {
		return nil, apiErr
	}
	h, apiErr := resolveHierarchy(req.PE.C, req.Levels)
	if apiErr != nil {
		return nil, apiErr
	}
	m, err := roofline.NewHierarchy(h)
	if err != nil {
		return nil, unprocessable("invalid_argument", "%v", err)
	}
	level := req.SweepLevel
	if level == 0 {
		level = 1
	}
	lo, hi, step := req.MemLo, req.MemHi, req.Step
	if step == 0 {
		step = 4
	}
	if apiErr := checkRooflinePoints(lo, hi, step); apiErr != nil {
		return nil, apiErr
	}
	ridges := m.Ridges()
	resp := &RooflineResponse{
		PE:             req.PE,
		RidgeIntensity: ridges[len(ridges)-1].Intensity,
		Levels:         req.Levels,
		Ridges:         make([]RidgeDTO, len(ridges)),
		SweepLevel:     level,
	}
	for i, r := range ridges {
		resp.Ridges[i] = RidgeDTO{Boundary: r.Boundary, BW: r.Bandwidth, Intensity: r.Intensity}
	}
	for _, comp := range comps {
		pts, err := m.Path(comp, level, lo, hi, step)
		if err != nil {
			return nil, unprocessable("invalid_argument", "%v", err)
		}
		path := RooflinePathDTO{Computation: comp.Name}
		for _, p := range pts {
			path.Points = append(path.Points, RooflinePointDTO{
				Memory:       p.Memory,
				Intensity:    p.Intensity,
				Attainable:   p.Attainable,
				ComputeBound: p.ComputeBound,
				Binding:      p.Binding,
			})
		}
		resp.Paths = append(resp.Paths, path)
	}
	if req.Chart {
		chart, err := m.Chart(comps)
		if err != nil {
			return nil, unprocessable("invalid_argument", "%v", err)
		}
		resp.Chart = chart
	}
	return resp, nil
}

// --- the "hierarchy" sweep kernel ---

// The analytic hierarchy sweep rides the same machinery as the measured
// kernels: validated here, fanned out point-per-param on the engine pool by
// kernels.Sweep, memoized under a canonical cache key. Each point rewrites
// the chosen level's capacity (or boundary bandwidth) to the param value
// and reports the binding boundary's achievable ratio, encoded over a
// synthetic unit of 2^20 words of boundary traffic so RatioPoint.Ratio()
// reproduces it.

// hierarchyRatioScale is the synthetic I/O unit: ratios round to ~1e-6.
const hierarchyRatioScale = 1 << 20

// varyKind normalizes SweepRequest.Vary.
func varyKind(v string) (string, *apiError) {
	switch v {
	case "", "capacity":
		return "capacity", nil
	case "bandwidth", "bw":
		return "bandwidth", nil
	default:
		return "", unprocessable("invalid_argument",
			"vary %q must be \"capacity\" or \"bandwidth\"", v)
	}
}

// hierarchyAt rewrites the swept knob to value and revalidates (a bandwidth
// sweep can break monotonicity mid-stack).
func hierarchyAt(h model.Hierarchy, vary string, level int, value float64) (model.Hierarchy, error) {
	out := h
	out.Levels = append([]model.Level(nil), h.Levels...)
	if vary == "bandwidth" {
		out.Levels[level-1].BW = value
	} else {
		out.Levels[level-1].M = value
	}
	return out, out.Validate()
}

// validateHierarchySweep is the registry validate hook for the "hierarchy"
// kernel: the stack must resolve, the computation must exist, and every
// swept value must yield a valid (monotone) hierarchy — the whole request
// is judged up front so a half-executed sweep can never 422.
func validateHierarchySweep(req *SweepRequest) *apiError {
	if req.Computation == nil {
		return unprocessable("invalid_argument",
			"the hierarchy sweep needs a computation (one of %s)",
			strings.Join(computationNames, ", "))
	}
	if _, apiErr := resolveComputation(*req.Computation); apiErr != nil {
		return apiErr
	}
	h, apiErr := resolveHierarchy(req.C, req.Levels)
	if apiErr != nil {
		return apiErr
	}
	vary, apiErr := varyKind(req.Vary)
	if apiErr != nil {
		return apiErr
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	if level < 1 || level > h.Depth() {
		return unprocessable("invalid_argument",
			"sweep level %d outside hierarchy depth %d", level, h.Depth())
	}
	for _, p := range req.Params {
		if _, err := hierarchyAt(h, vary, level, float64(p)); err != nil {
			if errors.Is(err, model.ErrNonMonotoneHierarchy) {
				return unprocessable("non_monotone_hierarchy",
					"swept value %d: %v", p, err)
			}
			return unprocessable("invalid_argument", "swept value %d: %v", p, err)
		}
	}
	return nil
}

// runHierarchySweep evaluates the analytic model at each param through
// kernels.Sweep — the same parallel driver every measured kernel rides, so
// the engine's parallelism hint, ordering guarantee, and cancellation all
// apply. The binding boundary's achievable ratio is recorded over the
// synthetic traffic unit so RatioPoint.Ratio() reproduces it to ~1e-6.
func runHierarchySweep(ctx context.Context, req *SweepRequest) ([]kernels.RatioPoint, error) {
	comp, apiErr := resolveComputation(*req.Computation)
	if apiErr != nil {
		return nil, apiErr
	}
	h, apiErr := resolveHierarchy(req.C, req.Levels)
	if apiErr != nil {
		return nil, apiErr
	}
	vary, apiErr := varyKind(req.Vary)
	if apiErr != nil {
		return nil, apiErr
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	pts, _, err := kernels.Sweep(ctx, req.Params,
		func(_ context.Context, p int, c *opcount.Counter) (int, error) {
			hp, err := hierarchyAt(h, vary, level, float64(p))
			if err != nil {
				return 0, err
			}
			a, err := model.AnalyzeHierarchy(hp, comp, defaultMaxMemory)
			if err != nil {
				return 0, err
			}
			r := a.BindingBoundary().AchievableRatio
			if r < 0 || math.IsNaN(r) {
				r = 0
			}
			if r > 1e12 {
				// Clamp so the synthetic-counter encoding below cannot
				// overflow uint64; no physical ratio lives up here.
				r = 1e12
			}
			c.Ops64(uint64(math.Round(r * hierarchyRatioScale)))
			c.Read64(hierarchyRatioScale)
			return p, nil
		})
	return pts, err
}

// defaultMaxMemory mirrors Server.maxMemoryDefault for the registry hooks,
// which have no Server receiver.
const defaultMaxMemory = 1e18
