package server

// Routing-key predictors for the cluster gateway (internal/cluster).
// The gateway must place a request on the node that owns its state
// before that state exists: a sweep body must land where its memo entry
// lives, a job submit where GET /v1/jobs/{id} will later look. Both
// derivations already exist inside this package (the sweep memo key,
// prepareJob's canonicalization); these wrappers expose them without
// exposing the machinery. They are prediction-only — no cache is
// touched, nothing is admitted — and they are deliberately lenient:
// a body this package would reject 4xx returns ok=false and the
// gateway falls back to load-based placement, where any node produces
// the identical canonical error envelope.

import (
	"bytes"

	"balarch/internal/jobs"
)

// RouteKeyForSweep derives the sweep-memo cache key a POST /v1/sweep
// body will be stored (or found) under: the same canonical string
// runSweep computes, so equal sweeps — whatever their whitespace, field
// order, or params permutation — map to one key and therefore one node.
// ok is false when the body does not decode or validate as a sweep; the
// caller should then place the request by load instead.
func RouteKeyForSweep(body []byte) (key string, ok bool) {
	var req SweepRequest
	if apiErr := strictDecodeJSON(bytes.NewReader(body), &req); apiErr != nil {
		return "", false
	}
	if _, apiErr := validateSweep(&req); apiErr != nil {
		// Validation also normalizes nothing in req, but an invalid sweep
		// has no memo entry anywhere — placement is immaterial.
		return "", false
	}
	return sweepCacheKey(&req), true
}

// RouteIDForJob derives the job id POST /v1/jobs will assign to a
// submit body: the op-specific DTO is strict-decoded and re-marshaled
// exactly as prepareJob does, then fed through jobs.IDFor. Semantic
// validation (unknown computations, batch caps) is skipped on purpose —
// the id depends only on the canonical bytes, and a body every node
// would reject routes anywhere. ok is false when the envelope or the
// op's DTO does not decode.
func RouteIDForJob(body []byte) (id string, ok bool) {
	var env JobSubmitRequest
	if apiErr := strictDecodeJSON(bytes.NewReader(body), &env); apiErr != nil {
		return "", false
	}
	if len(env.Request) == 0 {
		return "", false
	}
	var canonical []byte
	switch env.Op {
	case "analyze":
		canonical, ok = canonicalJobBody[AnalyzeRequest](env.Request)
	case "rebalance":
		canonical, ok = canonicalJobBody[RebalanceRequest](env.Request)
	case "roofline":
		canonical, ok = canonicalJobBody[RooflineRequest](env.Request)
	case "sweep":
		canonical, ok = canonicalJobBody[SweepRequest](env.Request)
	case "experiment":
		canonical, ok = canonicalJobBody[ExperimentRef](env.Request)
	case "batch":
		canonical, ok = canonicalJobBody[BatchRequest](env.Request)
	default:
		return "", false
	}
	if !ok {
		return "", false
	}
	id, _ = jobs.IDFor(env.Op, canonical)
	return id, true
}

// canonicalJobBody decodes one op's raw body into its DTO and returns
// the canonical re-marshaled bytes — the same strict decode +
// mustCanonical pair prepareJob runs, so the predicted bytes are the
// admitted bytes.
func canonicalJobBody[T any](raw []byte) ([]byte, bool) {
	req, apiErr := decodeJobDTO[T](raw)
	if apiErr != nil {
		return nil, false
	}
	return mustCanonical(req), true
}
