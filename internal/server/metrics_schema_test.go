package server

// Pinned-schema test for the /metrics JSON: the load generator's
// cross-check (internal/loadgen.CrossCheck) and any external scraping
// depend on these exact keys. Adding keys is fine — it will fail this test
// precisely so the addition is recorded here deliberately. Renames and
// removals are breaking changes.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

// keySet returns the sorted key list of a JSON object.
func keySet(t *testing.T, obj map[string]json.RawMessage) []string {
	t.Helper()
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func assertKeys(t *testing.T, what string, got, want []string) {
	t.Helper()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("%s keys changed:\n got: %v\nwant: %v\n(update this test AND internal/loadgen if the change is deliberate)",
			what, got, want)
	}
}

func TestMetricsSchemaPinned(t *testing.T) {
	srv := New(Options{Parallelism: 1})
	h := srv.Handler()

	// Populate every section: one success, one error, one cache miss+hit.
	post := func(path, body string) {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
	}
	post("/v1/analyze", `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`)
	post("/v1/analyze", `{`)
	post("/v1/sweep", `{"kernel": "matmul", "n": 64, "params": [4]}`)
	post("/v1/sweep", `{"kernel": "matmul", "n": 64, "params": [4]}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}

	var top map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &top); err != nil {
		t.Fatalf("/metrics is not a JSON object: %v", err)
	}
	assertKeys(t, "snapshot", keySet(t, top), []string{
		"in_flight",
		"jobs_canceled",
		"jobs_done",
		"jobs_failed",
		"jobs_queued",
		"jobs_replayed",
		"jobs_running",
		"jobs_sched_drain_bps",
		"jobs_sched_max_wait_picks",
		"jobs_sched_picks",
		"jobs_sched_policy",
		"jobs_sched_running_bytes",
		"jobs_sched_self_state",
		"jobs_sched_skips",
		"latency_histogram",
		"latency_mean_seconds",
		"panics_recovered",
		"requests_total",
		"responses_by_status_class",
		"route_latency",
		"store_bytes",
		"store_entries",
		"store_hits",
		"store_misses",
		"sweep_cache_hit_rate",
		"sweep_cache_hits",
		"sweep_cache_misses",
		"uptime_seconds",
	})

	var routes map[string]map[string]json.RawMessage
	if err := json.Unmarshal(top["route_latency"], &routes); err != nil {
		t.Fatalf("route_latency: %v", err)
	}
	rl, ok := routes["POST /v1/analyze"]
	if !ok {
		t.Fatalf("route_latency has no POST /v1/analyze entry: %v", routes)
	}
	assertKeys(t, "route_latency entry", keySet(t, rl), []string{
		"count", "max_seconds", "mean_seconds",
		"p50_seconds", "p95_seconds", "p99_seconds",
	})

	var buckets []map[string]json.RawMessage
	if err := json.Unmarshal(top["latency_histogram"], &buckets); err != nil {
		t.Fatalf("latency_histogram: %v", err)
	}
	if len(buckets) != len(latencyBuckets)+1 {
		t.Errorf("histogram has %d buckets, want %d (bounds + overflow)",
			len(buckets), len(latencyBuckets)+1)
	}
	assertKeys(t, "histogram bucket", keySet(t, buckets[0]), []string{"count", "le_seconds"})

	// Semantic spot-checks the cross-check relies on: counts accumulate per
	// route, quantile estimates are bucket bounds ordered p50 ≤ p99 ≤ max's
	// bucket, and the cached sweep counted a hit.
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	an := snap.RouteLatency["POST /v1/analyze"]
	if an.Count != 2 {
		t.Errorf("analyze count %d, want 2 (success and error both observed)", an.Count)
	}
	if an.P50Seconds > an.P99Seconds || an.P99Seconds <= 0 {
		t.Errorf("quantiles disordered: %+v", an)
	}
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("cache counters = %d hits / %d misses, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

// TestHistogramQuantile pins the estimator the server and the load
// generator share.
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	counts := []int64{90, 9, 0}
	if got := HistogramQuantile(0.50, bounds, counts, 0, 0.0009); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := HistogramQuantile(0.99, bounds, counts, 0, 0.009); got != 0.01 {
		t.Errorf("p99 = %v, want 0.01", got)
	}
	// Overflow region reports the exact max.
	if got := HistogramQuantile(0.99, bounds, []int64{1, 0, 0}, 99, 7.5); got != 7.5 {
		t.Errorf("overflow quantile = %v, want 7.5", got)
	}
	// Empty histogram reports zero.
	if got := HistogramQuantile(0.5, bounds, []int64{0, 0, 0}, 0, 0); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestHistogramQuantileNearestRank pins the ceiling-rank semantics over
// small counts, where the seed's truncated rank visibly lied: the q-th
// quantile of n observations is the ⌈q·n⌉-th order statistic, so the p95
// of 10 one-per-bucket samples is the 10th — not the 9th.
func TestHistogramQuantileNearestRank(t *testing.T) {
	// Ten observations, one per bucket: the order statistics ARE the
	// bounds, so every golden is exact.
	bounds := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ones := []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.95, 10}, // ⌈0.95·10⌉ = 10th; truncation said 9th
		{0.90, 9},  // ⌈9⌉ = 9th: exact product stays exact
		{0.50, 5},  // ⌈5⌉ = 5th
		{0.45, 5},  // ⌈4.5⌉ = 5th; truncation said 4th
		{0.10, 1},
		{0.05, 1}, // ⌈0.5⌉ = 1st
		{0, 1},    // clamped up to the 1st
		{1, 10},
	}
	for _, c := range cases {
		if got := HistogramQuantile(c.q, bounds, ones, 0, 10); got != c.want {
			t.Errorf("q=%v of 10 one-per-bucket samples = %v, want %v", c.q, got, c.want)
		}
	}

	// Three observations: p95 must be the 3rd (⌈2.85⌉), not the 2nd.
	three := []int64{1, 1, 1, 0, 0, 0, 0, 0, 0, 0}
	if got := HistogramQuantile(0.95, bounds, three, 0, 3); got != 3 {
		t.Errorf("p95 of 3 samples = %v, want the 3rd order statistic 3", got)
	}
	// A single observation is every quantile.
	one := []int64{0, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := HistogramQuantile(q, bounds, one, 0, 2); got != 2 {
			t.Errorf("q=%v of 1 sample = %v, want 2", q, got)
		}
	}
	// q=1 with overflow lands in the overflow region: the exact max.
	if got := HistogramQuantile(1, bounds, three, 1, 42); got != 42 {
		t.Errorf("q=1 with overflow = %v, want max 42", got)
	}
}

// TestRequestIDMiddleware pins the echo semantics: a client id is echoed
// verbatim (truncated at the cap), an absent one is assigned.
func TestRequestIDMiddleware(t *testing.T) {
	srv := New(Options{Parallelism: 1})
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(RequestIDHeader, "trace-123")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get(RequestIDHeader); got != "trace-123" {
		t.Errorf("echoed id %q, want trace-123", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get(RequestIDHeader); !strings.HasPrefix(got, "balarch-") {
		t.Errorf("assigned id %q, want balarch-<n>", got)
	}

	long := strings.Repeat("x", 4096)
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(RequestIDHeader, long)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get(RequestIDHeader); len(got) != 128 {
		t.Errorf("oversized id echoed at %d bytes, want truncation to 128", len(got))
	}

	// The echo must survive the error path too.
	req = httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader("{"))
	req.Header.Set(RequestIDHeader, "err-7")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest || rr.Header().Get(RequestIDHeader) != "err-7" {
		t.Errorf("error path: status %d id %q", rr.Code, rr.Header().Get(RequestIDHeader))
	}
}
