package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// twoTenants is the config most tenancy tests run under: a throttled
// tenant with a job budget, and an unthrottled one.
func twoTenants() *TenantsConfig {
	return &TenantsConfig{Tenants: []TenantSpec{
		{Name: "acme", Key: "acme-key", RatePerSec: 1, Burst: 2, JobBudgetBytes: 128 << 10},
		{Name: "globex", Key: "globex-key"},
	}}
}

// doAs drives one request with a bearer key.
func doAs(t *testing.T, h http.Handler, key, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestParseTenantsConfig(t *testing.T) {
	cfg, err := ParseTenantsConfig([]byte(`{
		"tenants": [
			{"name": "acme", "key": "k1", "rate_per_sec": 10, "burst": 20, "job_budget_bytes": 1024},
			{"name": "globex", "key": "k2"}
		],
		"anonymous": {"rate_per_sec": 5}
	}`))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if len(cfg.Tenants) != 2 || cfg.Tenants[0].Name != "acme" || cfg.Anonymous.RatePerSec != 5 {
		t.Fatalf("config parsed wrong: %+v", cfg)
	}

	bad := []struct {
		name, in, wantPos, wantField string
	}{
		{"not json", `{`, "file", ""},
		{"trailing data", `{"tenants": []} extra`, "file", ""},
		{"unknown field", `{"tenantz": []}`, "file", ""},
		{"missing name", `{"tenants": [{"key": "k"}]}`, "tenants[0]", "name"},
		{"missing key", `{"tenants": [{"name": "a"}]}`, "tenants[0]", "key"},
		{"reserved name", `{"tenants": [{"name": "anonymous", "key": "k"}]}`, "tenants[0]", "name"},
		{"bad name byte", `{"tenants": [{"name": "a b", "key": "k"}]}`, "tenants[0]", "name"},
		{"dup name", `{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}`, "tenants[1]", "name"},
		{"dup key", `{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`, "tenants[1]", "key"},
		{"key with space", `{"tenants": [{"name": "a", "key": "k k"}]}`, "tenants[0]", "key"},
		{"negative rate", `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": -1}]}`, "tenants[0]", "rate_per_sec"},
		{"huge rate", `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1e12}]}`, "tenants[0]", "rate_per_sec"},
		{"burst without rate", `{"tenants": [{"name": "a", "key": "k", "burst": 5}]}`, "tenants[0]", "burst"},
		{"negative budget", `{"tenants": [{"name": "a", "key": "k", "job_budget_bytes": -1}]}`, "tenants[0]", "job_budget_bytes"},
		{"anonymous with key", `{"anonymous": {"key": "k"}}`, "anonymous", "key"},
		{"anonymous wrong name", `{"anonymous": {"name": "acme"}}`, "anonymous", "name"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTenantsConfig([]byte(tc.in))
			cfgErr, ok := err.(*TenantConfigError)
			if !ok {
				t.Fatalf("want *TenantConfigError, got %v", err)
			}
			if cfgErr.Pos != tc.wantPos || (tc.wantField != "" && cfgErr.Field != tc.wantField) {
				t.Errorf("error located at %s/%s, want %s/%s (%v)",
					cfgErr.Pos, cfgErr.Field, tc.wantPos, tc.wantField, cfgErr)
			}
		})
	}
}

func TestTokenBucket(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := newTokenBucket(2, 3, t0) // 2 tokens/s, depth 3, starts full
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(t0); !ok {
			t.Fatalf("take %d from a full bucket refused", i)
		}
	}
	ok, retry := b.take(t0)
	if ok {
		t.Fatal("4th take from a depth-3 bucket admitted")
	}
	// Empty at 2 tokens/s: the next token exists in 0.5s.
	if retry != 500*time.Millisecond {
		t.Fatalf("retry = %v, want 500ms", retry)
	}
	// One second later two tokens refilled.
	t1 := t0.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(t1); !ok {
			t.Fatalf("take %d after refill refused", i)
		}
	}
	if ok, _ := b.take(t1); ok {
		t.Fatal("bucket over-refilled")
	}
	// Refill clamps at burst, not beyond.
	t2 := t1.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(t2); !ok {
			t.Fatalf("take %d after long idle refused", i)
		}
	}
	if ok, _ := b.take(t2); ok {
		t.Fatal("bucket refilled past its burst")
	}

	// Default burst is max(rate, 1): a 0.5/s bucket still admits one.
	slow := newTokenBucket(0.5, 0, t0)
	if slow.burst != 1 {
		t.Fatalf("default burst = %v, want 1", slow.burst)
	}
}

func TestTenancyResolution(t *testing.T) {
	_, h := newTestHandler(Options{Tenants: twoTenants()})
	const analyze = `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`

	// No header: anonymous, unthrottled by this config.
	if w := doAs(t, h, "", http.MethodPost, "/v1/analyze", analyze); w.Code != 200 {
		t.Fatalf("anonymous analyze: %d\n%s", w.Code, w.Body.String())
	}
	// Malformed Authorization.
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader(analyze))
	req.Header.Set("Authorization", "Basic dXNlcg==")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 401 || !strings.Contains(w.Body.String(), "bad_authorization") {
		t.Fatalf("malformed auth: %d\n%s", w.Code, w.Body.String())
	}
	// Unknown key.
	if w := doAs(t, h, "nope", http.MethodPost, "/v1/analyze", analyze); w.Code != 401 ||
		!strings.Contains(w.Body.String(), "unknown_api_key") {
		t.Fatalf("unknown key: %d\n%s", w.Code, w.Body.String())
	}
	// Known key.
	if w := doAs(t, h, "globex-key", http.MethodPost, "/v1/analyze", analyze); w.Code != 200 {
		t.Fatalf("globex analyze: %d\n%s", w.Code, w.Body.String())
	}
}

func TestTenantRateLimit(t *testing.T) {
	_, h := newTestHandler(Options{Tenants: twoTenants()})
	// acme: 1/s with burst 2 — two requests pass, the third draws 429.
	for i := 0; i < 2; i++ {
		if w := doAs(t, h, "acme-key", http.MethodGet, "/v1/catalog", ""); w.Code != 200 {
			t.Fatalf("burst request %d: %d", i, w.Code)
		}
	}
	w := doAs(t, h, "acme-key", http.MethodGet, "/v1/catalog", "")
	if w.Code != 429 || !strings.Contains(w.Body.String(), "rate_limited") {
		t.Fatalf("3rd request: %d\n%s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive integer", ra)
	}
	// Probes bypass the bucket even for a throttled tenant.
	for _, path := range []string{"/healthz", "/metrics"} {
		if w := doAs(t, h, "acme-key", http.MethodGet, path, ""); w.Code != 200 {
			t.Fatalf("throttled tenant's %s probe: %d", path, w.Code)
		}
	}
	// The other tenant and anonymous traffic are unaffected.
	if w := doAs(t, h, "globex-key", http.MethodGet, "/v1/catalog", ""); w.Code != 200 {
		t.Fatalf("globex while acme throttled: %d", w.Code)
	}
	if w := doAs(t, h, "", http.MethodGet, "/v1/catalog", ""); w.Code != 200 {
		t.Fatalf("anonymous while acme throttled: %d", w.Code)
	}
}

func TestTenantJobBudgetPartition(t *testing.T) {
	srv := newJobsServer(t, Options{Tenants: &TenantsConfig{Tenants: []TenantSpec{
		// Budget below one sweep's cost: every submit is refused.
		{Name: "tiny", Key: "tiny-key", JobBudgetBytes: 1024},
		{Name: "roomy", Key: "roomy-key"},
	}}})
	h := srv.Handler()
	body := `{"op": "sweep", "request": {"kernel": "matmul", "n": 32, "params": [2, 4]}}`

	w := doAs(t, h, "tiny-key", http.MethodPost, "/v1/jobs", body)
	if w.Code != 429 || !strings.Contains(w.Body.String(), `tenant \"tiny\"'s`) {
		t.Fatalf("tiny submit: %d\n%s", w.Code, w.Body.String())
	}
	// The partition is per tenant: the same job admits for an
	// unbudgeted tenant, and for anonymous callers.
	if w := doAs(t, h, "roomy-key", http.MethodPost, "/v1/jobs", body); w.Code != 202 {
		t.Fatalf("roomy submit: %d\n%s", w.Code, w.Body.String())
	}
	if w := doAs(t, h, "", http.MethodPost, "/v1/jobs", body); w.Code != 202 {
		t.Fatalf("anonymous submit: %d\n%s", w.Code, w.Body.String())
	}

	// The refusal shows up in the tenant's /metrics slice.
	snap := metricsSnapshot(t, h)
	if got := snap.Tenants["tiny"].OverBudget; got != 1 {
		t.Fatalf("tiny over_budget_total = %d, want 1", got)
	}
	if got := snap.Tenants["tiny"].JobMemBudget; got != 1024 {
		t.Fatalf("tiny job_mem_budget_bytes = %d, want 1024", got)
	}
}

func metricsSnapshot(t *testing.T, h http.Handler) *Snapshot {
	t.Helper()
	w := doAs(t, h, "", http.MethodGet, "/metrics", "")
	if w.Code != 200 {
		t.Fatalf("GET /metrics: %d", w.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return &snap
}

func TestTenantMetricsBoundedCardinality(t *testing.T) {
	_, h := newTestHandler(Options{Tenants: twoTenants()})
	doAs(t, h, "globex-key", http.MethodGet, "/v1/catalog", "")
	doAs(t, h, "globex-key", http.MethodGet, "/v1/catalog", "")
	// Unknown keys are refused before any accounting: an attacker
	// spraying keys must not mint metric slices.
	for i := 0; i < 50; i++ {
		doAs(t, h, fmt.Sprintf("spray-%d", i), http.MethodGet, "/v1/catalog", "")
	}
	snap := metricsSnapshot(t, h)
	if len(snap.Tenants) != 3 {
		t.Fatalf("tenant slices = %d (%v), want exactly the 3 configured",
			len(snap.Tenants), snap.Tenants)
	}
	if got := snap.Tenants["globex"].Requests; got != 2 {
		t.Errorf("globex requests_total = %d, want 2", got)
	}
	if snap.Tenants["anonymous"].Requests == 0 {
		t.Error("anonymous slice missing its /metrics probe requests")
	}
	// Route attribution must survive the tenancy middleware: it serves
	// the mux a shallow-copied request (WithContext), and if the matched
	// pattern is not mirrored back, every request lands in "(unmatched)"
	// and the soak's /metrics cross-check loses all its histograms.
	if rl, ok := snap.RouteLatency["GET /v1/catalog"]; !ok || rl.Count != 2 {
		t.Errorf("tenanted route histogram GET /v1/catalog = %+v (present %v), want count 2", rl, ok)
	}
	// The 50 refused sprays never reached the mux: they are the only
	// legitimate "(unmatched)" traffic.
	if rl := snap.RouteLatency["(unmatched)"]; rl.Count != 50 {
		t.Errorf("(unmatched) count = %d, want exactly the 50 refused sprays", rl.Count)
	}

	// Untenanted servers keep the old schema: no tenants key at all.
	_, plain := newTestHandler(Options{})
	w := doAs(t, plain, "", http.MethodGet, "/metrics", "")
	if strings.Contains(w.Body.String(), `"tenants"`) {
		t.Fatal("untenanted /metrics grew a tenants key")
	}
}

func TestNewPanicsOnInvalidTenants(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a hand-built invalid TenantsConfig")
		}
	}()
	New(Options{Tenants: &TenantsConfig{Tenants: []TenantSpec{{Name: "no-key"}}}})
}

// TestUntenantedByteIdentity pins exact response bytes on an untenanted
// server: with no tenants config, this PR's traffic layer must be
// invisible — the bodies below were captured from the API before tenancy
// existed, and any drift is a wire-compat break.
func TestUntenantedByteIdentity(t *testing.T) {
	srv := newJobsServer(t, Options{})
	h := srv.Handler()
	golden := []struct {
		name, method, path, body string
		status                   int
		want                     string
	}{
		{"analyze", http.MethodPost, "/v1/analyze",
			`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`, 200,
			"{\n  \"computation\": \"fast Fourier transform\",\n  \"section\": \"§3.4\",\n  \"pe\": {\n    \"c\": 50000000,\n    \"io\": 1000000,\n    \"m\": 4096\n  },\n  \"intensity\": 50,\n  \"achievable_ratio\": 30,\n  \"state\": \"io-bound\",\n  \"balanced_memory\": 1048576,\n  \"rebalanceable\": true,\n  \"law\": \"M_new = M_old^α\"\n}\n"},
		{"bad json", http.MethodPost, "/v1/analyze", `{`, 400,
			"{\n  \"error\": {\n    \"code\": \"bad_json\",\n    \"message\": \"unexpected EOF\"\n  }\n}\n"},
		{"empty job list", http.MethodGet, "/v1/jobs", "", 200,
			"{\n  \"jobs\": []\n}\n"},
		{"unknown route", http.MethodGet, "/v1/nope", "", 404,
			"{\n  \"error\": {\n    \"code\": \"unknown_route\",\n    \"message\": \"no route matches GET /v1/nope (unknown path, or wrong method for a known one)\"\n  }\n}\n"},
	}
	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			w := doAs(t, h, "", g.method, g.path, g.body)
			if w.Code != g.status {
				t.Fatalf("status %d, want %d", w.Code, g.status)
			}
			if got := w.Body.String(); got != g.want {
				t.Errorf("response bytes drifted:\ngot:  %q\nwant: %q", got, g.want)
			}
		})
	}

	// The job-submit ack has one dynamic field; pin everything else.
	w := doAs(t, h, "", http.MethodPost, "/v1/jobs",
		`{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`)
	if w.Code != 202 {
		t.Fatalf("job submit: %d\n%s", w.Code, w.Body.String())
	}
	got := regexp.MustCompile(`"submitted_at": "[^"]+"`).
		ReplaceAllString(w.Body.String(), `"submitted_at": "T"`)
	want := "{\n  \"id\": \"j63c0cc9141bf9714\",\n  \"op\": \"analyze\",\n  \"state\": \"queued\",\n  \"cost_bytes\": 65536,\n  \"submitted_at\": \"T\"\n}\n"
	if got != want {
		t.Errorf("job ack drifted:\ngot:  %q\nwant: %q", got, want)
	}
}

// FuzzTenantConfig pins the parser's contract: any byte slice maps to a
// valid config or a *TenantConfigError — never a panic, and a config
// that parses must also survive New.
func FuzzTenantConfig(f *testing.F) {
	f.Add([]byte(`{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 2}]}`))
	f.Add([]byte(`{"anonymous": {"rate_per_sec": 1, "burst": 3}}`))
	f.Add([]byte(`{"tenants": []}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"tenants": [{"name": "anonymous", "key": "k"}]}`))
	f.Add([]byte(`{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 1e99}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseTenantsConfig(data)
		if err != nil {
			if _, ok := err.(*TenantConfigError); !ok {
				t.Fatalf("error is %T, want *TenantConfigError: %v", err, err)
			}
			return
		}
		// A config the parser accepts must be servable.
		s := New(Options{Tenants: cfg})
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if w.Code != 200 {
			t.Fatalf("healthz on a parsed config: %d", w.Code)
		}
	})
}
