package server

// Native fuzz targets for the DTO layer: whatever bytes arrive at the JSON
// endpoints, the response must be a well-formed 200 or a typed error
// envelope — never a panic, never a 500. The seed corpus is the same set of
// bodies the httptest suite posts, so the fuzzer starts from valid requests
// and mutates toward the edges (it is how the sweep work caps in sweep.go
// were found). CI runs each target with -fuzztime=30s; `go test` alone
// replays the seeds as ordinary tests.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"
)

// fuzzTarget is the one shared server for all fuzz executions in this
// process: small budgets so a mutated-but-valid heavy request (a capped
// sort sweep, a replayed experiment) is cut off by the request timeout
// instead of stalling the fuzzer.
var (
	fuzzOnce    sync.Once
	fuzzHandler http.Handler
)

func fuzzTarget() http.Handler {
	fuzzOnce.Do(func() {
		fuzzHandler = New(Options{
			Parallelism:    2,
			RequestTimeout: 2 * time.Second,
			MaxBodyBytes:   1 << 16,
			MaxBatch:       8,
			MaxInFlight:    -1,
		}).Handler()
	})
	return fuzzHandler
}

// fuzzAllowedStatus is every status the API contract admits for an
// arbitrary body: success, the four request-fault mappings, and 503 for
// work the per-request budget cut off. 500 is deliberately absent.
var fuzzAllowedStatus = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusNotFound:              true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusUnprocessableEntity:   true,
	http.StatusServiceUnavailable:    true,
}

// assertEnvelopeContract posts body to path and enforces the invariant.
func assertEnvelopeContract(t *testing.T, path string, body []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	fuzzTarget().ServeHTTP(rr, req)
	status := rr.Code
	if !fuzzAllowedStatus[status] {
		t.Fatalf("%s: status %d outside the API contract\nbody in: %q\nbody out: %s",
			path, status, body, rr.Body.Bytes())
	}
	if rr.Header().Get(RequestIDHeader) == "" {
		t.Fatalf("%s: response missing %s", path, RequestIDHeader)
	}
	if status == http.StatusOK {
		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("%s: 200 with invalid JSON body: %.200s", path, rr.Body.Bytes())
		}
		return
	}
	var env errorEnvelope
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatalf("%s: status %d body is not an error envelope: %v\n%.200s",
			path, status, err, rr.Body.Bytes())
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("%s: status %d envelope missing code or message: %.200s",
			path, status, rr.Body.Bytes())
	}
}

func FuzzAnalyzeRequest(f *testing.F) {
	for _, seed := range []string{
		`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`,
		`{"pe": {"c": 1e6, "io": 2e6, "m": 64}, "computation": {"name": "grid", "dim": 3}}`,
		`{"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "convolution", "taps": 8}}`,
		`{"pe": {"c": -5, "io": 0, "m": 1e400}, "computation": {"name": "matmul"}}`,
		`{"computation": {"name": ""}}`,
		`{`,
		``,
		`null`,
		`{"pe": {}, "computation": {"name": "sorting"}, "max_memory": -1}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		assertEnvelopeContract(t, "/v1/analyze", body)
	})
}

func FuzzSweepRequest(f *testing.F) {
	for _, seed := range []string{
		`{"kernel": "matmul", "n": 64, "params": [4, 8]}`,
		`{"kernel": "lu", "n": 96, "params": [8, 16]}`,
		`{"kernel": "fft", "n": 4096, "params": [16, 64]}`,
		`{"kernel": "sort", "params": [32, 64], "seed": 7}`,
		`{"kernel": "grid", "dim": 2, "size": 16, "iters": 2, "params": [9, 16]}`,
		`{"kernel": "spmv", "n": 1024, "nnz_per_row": 8, "params": [64, 256]}`,
		`{"kernel": "convolve", "n": 8192, "params": [8, 64]}`,
		`{"kernel": "strassen", "n": 64, "params": [8, 16]}`,
		`{"kernel": "matmul", "n": 4194304, "params": [1]}`,
		`{"kernel": "", "params": []}`,
		`{"kernel": "matmul", "n": -1, "params": [0]}`,
		`{"unknown_field": true}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		assertEnvelopeContract(t, "/v1/sweep", body)
	})
}

// FuzzHierarchyRequest fuzzes the `levels` DTO across every endpoint that
// accepts it: whatever level stack (mis-ordered, empty, huge, NaN-ridden)
// arrives at analyze, rebalance, roofline, or sweep, the answer is a 2xx or
// a typed envelope — never a panic, never a 500. The seed corpus covers
// valid hierarchies, the typed non-monotone 422, the mutual-exclusion
// rules, and both sweep vary axes. The leading byte routes the input so
// one corpus exercises all four endpoints.
func FuzzHierarchyRequest(f *testing.F) {
	for _, seed := range []string{
		`0{"pe": {"c": 1e9}, "levels": [{"name": "sram", "bw": 4e9, "m": 1024}, {"bw": 1e9, "m": 262144}, {"bw": 1e5, "m": 67108864}], "computation": {"name": "matmul"}}`,
		`0{"pe": {"c": 1e9}, "levels": [{"bw": 1e6, "m": 64}, {"bw": 2e6, "m": 256}], "computation": {"name": "fft"}}`,
		`0{"pe": {"c": 1e9, "io": 1e6}, "levels": [{"bw": 1e6, "m": 64}], "computation": {"name": "fft"}}`,
		`0{"pe": {"c": 1e9}, "levels": [], "computation": {"name": "sorting"}}`,
		`1{"computation": {"name": "sorting"}, "alpha": 1.5, "c": 8e6, "levels": [{"bw": 1e6, "m": 1024}, {"bw": 5e5, "m": 1048576}]}`,
		`1{"computation": {"name": "matvec"}, "alpha": 2, "c": 1e9, "levels": [{"bw": 1e6, "m": 64}]}`,
		`1{"computation": {"name": "fft"}, "alpha": 2, "m_old": 64, "c": 1e9, "levels": [{"bw": 1e6, "m": 64}]}`,
		`2{"pe": {"c": 1e9}, "levels": [{"bw": 5e8, "m": 4096}, {"bw": 1e7, "m": 16777216}], "computations": [{"name": "matmul"}], "mem_lo": 1024, "mem_hi": 1048576, "sweep_level": 2, "chart": true}`,
		`2{"pe": {"c": 1e9}, "levels": [{"bw": 5e8, "m": -1}], "computations": [{"name": "grid", "dim": 9}], "mem_lo": 0, "mem_hi": 0}`,
		`3{"kernel": "hierarchy", "c": 8e6, "levels": [{"bw": 1e6, "m": 16}, {"bw": 5e5, "m": 1048576}], "computation": {"name": "sorting"}, "params": [16, 65536]}`,
		`3{"kernel": "hierarchy", "c": 8e6, "levels": [{"bw": 1e6, "m": 16}], "computation": {"name": "fft"}, "vary": "bandwidth", "level": 1, "params": [100000]}`,
		`3{"kernel": "hierarchy", "c": 1e308, "levels": [{"bw": 1e-300, "m": 1e308}], "computation": {"name": "sorting"}, "params": [1]}`,
		`3{"kernel": "hierarchy", "params": [1]}`,
		`0{`,
		`9{}`,
		``,
	} {
		f.Add([]byte(seed))
	}
	paths := []string{"/v1/analyze", "/v1/rebalance", "/v1/roofline", "/v1/sweep"}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		path := paths[int(data[0])%len(paths)]
		assertEnvelopeContract(t, path, data[1:])
	})
}

func FuzzBatchRequest(f *testing.F) {
	for _, seed := range []string{
		`{"requests": [{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}]}`,
		`{"requests": [{"op": "rebalance", "request": {"computation": {"name": "matmul"}, "alpha": 4, "m_old": 1024}},` +
			`{"op": "sweep", "request": {"kernel": "matmul", "n": 64, "params": [4, 8]}}]}`,
		`{"requests": [{"op": "experiment", "request": {"id": "E1"}}]}`,
		`{"requests": [{"op": "bogus", "request": {}}, {"op": ""}]}`,
		`{"requests": []}`,
		`{"requests": [{"op": "analyze", "request": "not an object"}]}`,
		`{"requests"`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		assertEnvelopeContract(t, "/v1/batch", body)
	})
}

// fuzzJobsTarget is the one jobs-enabled server shared by FuzzJobSubmit:
// a paused queue (no workers) with a small admission budget, so a
// mutated-but-valid submission is journaled (or 429'd) and never
// executes — the fuzzer measures the DTO/admission layer, not kernels.
var (
	fuzzJobsOnce    sync.Once
	fuzzJobsHandler http.Handler
)

func fuzzJobsTarget() http.Handler {
	fuzzJobsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "balarch-fuzz-jobs-*")
		if err != nil {
			panic(err)
		}
		fuzzJobsHandler = New(Options{
			Parallelism:    2,
			RequestTimeout: 2 * time.Second,
			MaxBodyBytes:   1 << 16,
			MaxBatch:       8,
			MaxInFlight:    -1,
			StoreDir:       dir,
			JobWorkers:     -1,
			MemBudgetBytes: 1 << 20,
		}).Handler()
	})
	return fuzzJobsHandler
}

// fuzzJobsAllowedStatus extends the contract for the async surface: 202
// for an accepted job, 200 for one deduplicated to done, and 429 for an
// admission refusal. 500 remains deliberately absent.
var fuzzJobsAllowedStatus = map[int]bool{
	http.StatusOK:                    true,
	http.StatusAccepted:              true,
	http.StatusBadRequest:            true,
	http.StatusNotFound:              true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusUnprocessableEntity:   true,
	http.StatusTooManyRequests:       true,
	http.StatusConflict:              true,
	http.StatusServiceUnavailable:    true,
}

// FuzzJobSubmit holds the envelope invariant on POST /v1/jobs: any bytes
// draw a 2xx with valid JSON or a typed error envelope — never a panic,
// never a 500 — and a 429 always carries Retry-After.
func FuzzJobSubmit(f *testing.F) {
	for _, seed := range []string{
		`{"op": "sweep", "request": {"kernel": "matmul", "n": 64, "params": [4, 8]}}`,
		`{"op": "sweep", "request": {"kernel": "sort", "params": [256, 256]}}`,
		`{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`,
		`{"op": "rebalance", "request": {"computation": {"name": "matmul"}, "alpha": 4, "m_old": 1024}}`,
		`{"op": "roofline", "request": {"pe": {"c": 1e6, "io": 1e6, "m": 64}, "computations": [{"name": "grid"}], "mem_lo": 64, "mem_hi": 4096}}`,
		`{"op": "experiment", "request": {"id": "E1"}}`,
		`{"op": "batch", "request": {"requests": [{"op": "analyze", "request": {"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "fft"}}}]}}`,
		`{"op": "batch", "request": {"requests": [{"op": "batch", "request": {"requests": []}}]}}`,
		`{"op": "", "request": {}}`,
		`{"op": "sweep"}`,
		`{`,
		``,
		`null`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		fuzzJobsTarget().ServeHTTP(rr, req)
		status := rr.Code
		if !fuzzJobsAllowedStatus[status] {
			t.Fatalf("/v1/jobs: status %d outside the API contract\nbody in: %q\nbody out: %s",
				status, body, rr.Body.Bytes())
		}
		if rr.Header().Get(RequestIDHeader) == "" {
			t.Fatalf("/v1/jobs: response missing %s", RequestIDHeader)
		}
		if status == http.StatusTooManyRequests && rr.Header().Get("Retry-After") == "" {
			t.Fatalf("/v1/jobs: 429 without Retry-After")
		}
		if status == http.StatusOK || status == http.StatusAccepted {
			if !json.Valid(rr.Body.Bytes()) {
				t.Fatalf("/v1/jobs: %d with invalid JSON body: %.200s", status, rr.Body.Bytes())
			}
			return
		}
		var env errorEnvelope
		if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
			t.Fatalf("/v1/jobs: status %d body is not an error envelope: %v\n%.200s",
				status, err, rr.Body.Bytes())
		}
		if env.Error.Code == "" || env.Error.Message == "" {
			t.Fatalf("/v1/jobs: status %d envelope missing code or message: %.200s",
				status, rr.Body.Bytes())
		}
	})
}

// FuzzJobPriority holds the priority contract on POST /v1/jobs: an
// arbitrary priority string draws either an accepted submission (when
// it is one of the three classes or absent) or a typed 422
// invalid_priority — never a panic, never a 500, and never a silent
// reinterpretation of an unknown spelling.
func FuzzJobPriority(f *testing.F) {
	for _, seed := range []string{"", "normal", "low", "high", "urgent", "HIGH", " high", "Low", "0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, prio string) {
		body, err := json.Marshal(map[string]any{
			"op":       "sweep",
			"priority": prio,
			"request":  map[string]any{"kernel": "matmul", "n": 64, "params": []int{8}},
		})
		if err != nil {
			t.Skip()
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		fuzzJobsTarget().ServeHTTP(rr, req)
		status := rr.Code
		if !fuzzJobsAllowedStatus[status] {
			t.Fatalf("/v1/jobs: priority %q drew status %d outside the API contract\nbody out: %s",
				prio, status, rr.Body.Bytes())
		}
		valid := prio == "" || prio == "normal" || prio == "low" || prio == "high"
		if valid {
			if status == http.StatusUnprocessableEntity {
				t.Fatalf("/v1/jobs: valid priority %q rejected: %.200s", prio, rr.Body.Bytes())
			}
			return
		}
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("/v1/jobs: unknown priority %q drew %d, want 422", prio, status)
		}
		var env errorEnvelope
		if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
			t.Fatalf("/v1/jobs: 422 body is not an error envelope: %v\n%.200s", err, rr.Body.Bytes())
		}
		if env.Error.Code != "invalid_priority" {
			t.Fatalf("/v1/jobs: unknown priority %q drew code %q, want invalid_priority",
				prio, env.Error.Code)
		}
	})
}

// TestSweepWorkCaps pins the service caps the fuzz targets depend on: a
// nominally-valid request whose loop work explodes must be a 422, not a
// multi-hour sweep.
func TestSweepWorkCaps(t *testing.T) {
	for name, body := range map[string]string{
		"matmul tiny block":  `{"kernel": "matmul", "n": 4194304, "params": [1]}`,
		"lu tiny block":      `{"kernel": "lu", "n": 4194304, "params": [4]}`,
		"trisolve tiny":      `{"kernel": "trisolve", "n": 4194304, "params": [2]}`,
		"sort total keys":    `{"kernel": "sort", "params": [2048, 2048, 2048]}`,
		"grid total updates": `{"kernel": "grid", "dim": 2, "size": 4096, "iters": 64, "params": [9, 16, 25]}`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader([]byte(body)))
		rr := httptest.NewRecorder()
		fuzzTarget().ServeHTTP(rr, req)
		if rr.Code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422\n%s", name, rr.Code, rr.Body.Bytes())
		}
	}
}
