package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (in seconds) of the request-latency
// histogram, chosen to straddle the API's two regimes: microsecond analytic
// queries (analyze/rebalance/roofline, cached sweeps) and millisecond-to-
// second measured sweeps and experiment runs.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Metrics is the server's instrumentation: per-route request and error
// counts, a latency histogram, the sweep-cache hit rate, and an in-flight
// gauge. All methods are safe for concurrent use; reads take a snapshot, so
// /metrics never blocks the hot path for long.
type Metrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]int64 // per-route completed requests
	statuses map[int]int64    // per-status-class completed requests
	hist     []int64          // latency histogram counts, one per bucket
	histOver int64            // observations above the last bucket
	latSum   float64          // total latency seconds, for the mean

	inFlight    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	panics      atomic.Int64
}

// NewMetrics returns ready-to-use instrumentation.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		requests: make(map[string]int64),
		statuses: make(map[int]int64),
		hist:     make([]int64, len(latencyBuckets)),
	}
}

// Observe records one completed request: its route, response status, and
// latency.
func (m *Metrics) Observe(route string, status int, elapsed time.Duration) {
	sec := elapsed.Seconds()
	m.mu.Lock()
	m.requests[route]++
	m.statuses[status/100*100]++
	m.latSum += sec
	placed := false
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.hist[i]++
			placed = true
			break
		}
	}
	if !placed {
		m.histOver++
	}
	m.mu.Unlock()
}

// IncInFlight/DecInFlight maintain the in-flight request gauge.
func (m *Metrics) IncInFlight() { m.inFlight.Add(1) }

// DecInFlight decrements the in-flight request gauge.
func (m *Metrics) DecInFlight() { m.inFlight.Add(-1) }

// CacheHit records a sweep served from the memo.
func (m *Metrics) CacheHit() { m.cacheHits.Add(1) }

// CacheMiss records a sweep that ran the kernels.
func (m *Metrics) CacheMiss() { m.cacheMisses.Add(1) }

// Panic records a request recovered by the recover middleware.
func (m *Metrics) Panic() { m.panics.Add(1) }

// HistogramBucket is one bar of the latency histogram in the snapshot.
type HistogramBucket struct {
	// LeSeconds is the bucket's inclusive upper bound in seconds; the
	// overflow bucket reports -1.
	LeSeconds float64 `json:"le_seconds"`
	Count     int64   `json:"count"`
}

// Snapshot is the JSON shape served by GET /metrics.
type Snapshot struct {
	UptimeSeconds  float64           `json:"uptime_seconds"`
	InFlight       int64             `json:"in_flight"`
	Requests       map[string]int64  `json:"requests_total"`
	StatusClasses  map[string]int64  `json:"responses_by_status_class"`
	Panics         int64             `json:"panics_recovered"`
	LatencyMean    float64           `json:"latency_mean_seconds"`
	LatencyBuckets []HistogramBucket `json:"latency_histogram"`
	CacheHits      int64             `json:"sweep_cache_hits"`
	CacheMisses    int64             `json:"sweep_cache_misses"`
	CacheHitRate   float64           `json:"sweep_cache_hit_rate"`
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		Requests:      make(map[string]int64),
		StatusClasses: make(map[string]int64),
		Panics:        m.panics.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
	}
	m.mu.Lock()
	var total int64
	for route, n := range m.requests {
		s.Requests[route] = n
		total += n
	}
	for status, n := range m.statuses {
		s.StatusClasses[statusClassName(status)] = n
	}
	if total > 0 {
		s.LatencyMean = m.latSum / float64(total)
	}
	for i, n := range m.hist {
		s.LatencyBuckets = append(s.LatencyBuckets, HistogramBucket{latencyBuckets[i], n})
	}
	s.LatencyBuckets = append(s.LatencyBuckets, HistogramBucket{-1, m.histOver})
	m.mu.Unlock()
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	return s
}

func statusClassName(status int) string {
	switch status {
	case 200:
		return "2xx"
	case 300:
		return "3xx"
	case 400:
		return "4xx"
	case 500:
		return "5xx"
	default:
		return "other"
	}
}
