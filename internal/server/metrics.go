package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (in seconds) of the request-latency
// histogram, chosen to straddle the API's two regimes: microsecond analytic
// queries (analyze/rebalance/roofline, cached sweeps) and millisecond-to-
// second measured sweeps and experiment runs.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// LatencyBucketBounds returns a copy of the histogram's upper bounds in
// seconds. The load generator (internal/loadgen) buckets its client-side
// latencies on the same bounds so its quantiles and the server's can be
// compared bucket-for-bucket.
func LatencyBucketBounds() []float64 {
	return append([]float64(nil), latencyBuckets...)
}

// routePatterns is the fixed universe of metrics keys: every mux pattern
// (method-qualified, matching what routeLabel reports) plus the two
// collapse tokens for requests the mux never matched. It is derived from
// the apiRoutes table (server.go) — the same single source the mux and
// the GET /v1/ API index are built from — so the three cannot drift.
// NewMetrics preregisters a slot per entry so Observe on a known route
// is a lock-free map probe plus one slot mutex — no global lock, no
// allocation. The list going stale is harmless (an unlisted route falls
// back to the copy-on-write slow path, one allocation ever); keeping it
// in sync keeps the hot path uniform.
var routePatterns = func() []string {
	patterns := make([]string, 0, len(apiRoutes)+2)
	for _, rt := range apiRoutes {
		patterns = append(patterns, rt.pattern)
	}
	return append(patterns, "(unmatched)", "(unknown_route)")
}()

// Metrics is the server's instrumentation: per-route request and error
// counts, a latency histogram, the sweep-cache hit rate, and an in-flight
// gauge. All methods are safe for concurrent use; reads take a snapshot, so
// /metrics never blocks the hot path for long.
//
// The route table is copy-on-write: readers load an immutable map of
// preregistered slots (one per routePatterns entry) and only the
// never-in-practice slow path of an unknown route takes the growth lock.
// Status classes are plain atomics. The global histogram, latency sum, and
// request total are derived from the slots at snapshot time instead of
// being maintained as separate counters on the hot path.
type Metrics struct {
	start time.Time

	slots  atomic.Pointer[map[string]*routeSlot] // immutable; swapped under slotMu
	slotMu sync.Mutex                            // guards copy-on-write growth only

	statuses [10]atomic.Int64 // completed requests by status/100, clamped

	inFlight    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	panics      atomic.Int64

	// tenants is the per-tenant counter table, preregistered once from
	// the tenants config (RegisterTenants) and immutable after — the
	// cardinality bound: a request can only ever account against a
	// configured name, never grow the map. nil on an untenanted server,
	// and then the snapshot omits the whole section.
	tenants map[string]*tenantSlot
}

// tenantSlot is one tenant's counters. Plain atomics: the tenancy
// middleware touches these on every tenanted request.
type tenantSlot struct {
	requests    atomic.Int64
	rateLimited atomic.Int64
	overBudget  atomic.Int64
}

// routeSlot is one route's request count and latency distribution, bucketed
// on latencyBuckets. Each slot has its own mutex, so two routes never
// contend and /metrics drains them one at a time.
type routeSlot struct {
	mu    sync.Mutex
	count int64
	hist  []int64
	over  int64   // observations above the last bucket
	sum   float64 // total latency seconds
	max   float64 // slowest observation in seconds
}

// NewMetrics returns ready-to-use instrumentation with every known route's
// slot preallocated.
func NewMetrics() *Metrics {
	slots := make(map[string]*routeSlot, len(routePatterns))
	for _, p := range routePatterns {
		slots[p] = &routeSlot{hist: make([]int64, len(latencyBuckets))}
	}
	m := &Metrics{start: time.Now()}
	m.slots.Store(&slots)
	return m
}

// RegisterTenants preregisters one counter slot per tenant name. Called
// once, before the handler serves (New does it from the tenants config);
// the table never grows afterwards.
func (m *Metrics) RegisterTenants(names []string) {
	m.tenants = make(map[string]*tenantSlot, len(names))
	for _, n := range names {
		m.tenants[n] = &tenantSlot{}
	}
}

// TenantRequest counts one resolved request against its tenant.
func (m *Metrics) TenantRequest(name string) {
	if s := m.tenants[name]; s != nil {
		s.requests.Add(1)
	}
}

// TenantRateLimited counts one bucket refusal (429 rate_limited).
func (m *Metrics) TenantRateLimited(name string) {
	if s := m.tenants[name]; s != nil {
		s.rateLimited.Add(1)
	}
}

// TenantOverBudget counts one job-admission refusal (429 over_budget).
func (m *Metrics) TenantOverBudget(name string) {
	if s := m.tenants[name]; s != nil {
		s.overBudget.Add(1)
	}
}

// slot returns the route's slot, creating one (copy-on-write) for a route
// outside the preregistered set.
func (m *Metrics) slot(route string) *routeSlot {
	if s := (*m.slots.Load())[route]; s != nil {
		return s
	}
	m.slotMu.Lock()
	defer m.slotMu.Unlock()
	cur := *m.slots.Load()
	if s := cur[route]; s != nil {
		return s
	}
	next := make(map[string]*routeSlot, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	s := &routeSlot{hist: make([]int64, len(latencyBuckets))}
	next[route] = s
	m.slots.Store(&next)
	return s
}

// Observe records one completed request: its route, response status, and
// latency.
func (m *Metrics) Observe(route string, status int, elapsed time.Duration) {
	sec := elapsed.Seconds()
	rs := m.slot(route)
	rs.mu.Lock()
	rs.count++
	rs.sum += sec
	if sec > rs.max {
		rs.max = sec
	}
	placed := false
	for i, ub := range latencyBuckets {
		if sec <= ub {
			rs.hist[i]++
			placed = true
			break
		}
	}
	if !placed {
		rs.over++
	}
	rs.mu.Unlock()
	c := status / 100
	if c < 0 {
		c = 0
	} else if c > 9 {
		c = 9
	}
	m.statuses[c].Add(1)
}

// IncInFlight/DecInFlight maintain the in-flight request gauge.
func (m *Metrics) IncInFlight() { m.inFlight.Add(1) }

// DecInFlight decrements the in-flight request gauge.
func (m *Metrics) DecInFlight() { m.inFlight.Add(-1) }

// CacheHit records a sweep served from the memo.
func (m *Metrics) CacheHit() { m.cacheHits.Add(1) }

// CacheMiss records a sweep that ran the kernels.
func (m *Metrics) CacheMiss() { m.cacheMisses.Add(1) }

// Panic records a request recovered by the recover middleware.
func (m *Metrics) Panic() { m.panics.Add(1) }

// HistogramBucket is one bar of the latency histogram in the snapshot.
type HistogramBucket struct {
	// LeSeconds is the bucket's inclusive upper bound in seconds; the
	// overflow bucket reports -1.
	LeSeconds float64 `json:"le_seconds"`
	Count     int64   `json:"count"`
}

// RouteLatency is one route's latency summary in the snapshot. The
// quantiles are histogram estimates: each is the upper bound of the bucket
// containing the quantile (the load generator estimates its own quantiles
// the same way on the same buckets, so the two agree bucket-for-bucket);
// an observation beyond the last bucket reports the route's exact maximum.
type RouteLatency struct {
	Count       int64   `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// Snapshot is the JSON shape served by GET /metrics. The field set is
// pinned by TestMetricsSchemaPinned: additions are fine, but renaming or
// removing a key breaks the load generator's cross-check and must be
// deliberate.
type Snapshot struct {
	UptimeSeconds  float64                 `json:"uptime_seconds"`
	InFlight       int64                   `json:"in_flight"`
	Requests       map[string]int64        `json:"requests_total"`
	RouteLatency   map[string]RouteLatency `json:"route_latency"`
	StatusClasses  map[string]int64        `json:"responses_by_status_class"`
	Panics         int64                   `json:"panics_recovered"`
	LatencyMean    float64                 `json:"latency_mean_seconds"`
	LatencyBuckets []HistogramBucket       `json:"latency_histogram"`
	CacheHits      int64                   `json:"sweep_cache_hits"`
	CacheMisses    int64                   `json:"sweep_cache_misses"`
	CacheHitRate   float64                 `json:"sweep_cache_hit_rate"`

	// The async subsystem's gauges (internal/store + internal/jobs),
	// filled in by the handler from Store.Stats and Queue.Counters; all
	// zeros on a jobs-disabled server so the schema is configuration-
	// independent.
	StoreHits    int64 `json:"store_hits"`
	StoreMisses  int64 `json:"store_misses"`
	StoreBytes   int64 `json:"store_bytes"`
	StoreEntries int64 `json:"store_entries"`
	JobsQueued   int64 `json:"jobs_queued"`
	JobsRunning  int64 `json:"jobs_running"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	JobsReplayed int64 `json:"jobs_replayed"`

	// The job scheduler's gauges (jobs.SchedCounters), flat like the
	// rest: pick policy and counts, the bypassed-while-eligible worst
	// case the fairness bound is judged on, the measured drain rate the
	// balanced policy packs against, and the analytic core's verdict on
	// the queue itself ("idle" | "balanced" | "memory-bound" |
	// "compute-bound"). Zero values on a jobs-disabled server.
	SchedPolicy       string  `json:"jobs_sched_policy"`
	SchedPicks        int64   `json:"jobs_sched_picks"`
	SchedSkips        int64   `json:"jobs_sched_skips"`
	SchedMaxWaitPicks int64   `json:"jobs_sched_max_wait_picks"`
	SchedDrainBPS     float64 `json:"jobs_sched_drain_bps"`
	SchedRunningBytes int64   `json:"jobs_sched_running_bytes"`
	SchedSelfState    string  `json:"jobs_sched_self_state"`

	// Tenants is the per-tenant slice of the counters above, keyed by
	// tenant name ("anonymous" plus every configured tenant — a bounded
	// set). Present only when tenancy is configured, so an untenanted
	// server's /metrics bytes (and the pinned schema) are unchanged.
	Tenants map[string]TenantSnapshot `json:"tenants,omitempty"`
}

// TenantSnapshot is one tenant's slice of /metrics: traffic admitted and
// refused at the tenancy layer, plus the tenant's job-budget gauges
// (filled from the queue's per-tenant accounting; zero on a
// jobs-disabled server).
type TenantSnapshot struct {
	Requests     int64 `json:"requests_total"`
	RateLimited  int64 `json:"rate_limited_total"`
	OverBudget   int64 `json:"over_budget_total"`
	JobMemInUse  int64 `json:"job_mem_in_use_bytes"`
	JobMemBudget int64 `json:"job_mem_budget_bytes"`
	// SchedServed counts jobs the scheduler has handed to workers on
	// this tenant's behalf — the per-tenant side of jobs_sched_picks.
	SchedServed int64 `json:"sched_served_total"`
}

// HistogramQuantile estimates quantile q (in [0, 1]) from counts bucketed on
// bounds: the upper bound of the bucket holding the q-th observation. over
// counts observations beyond the last bucket and max is the exact largest
// observation, returned when the quantile lands in the overflow region (or
// when there are no observations at all, where max is naturally 0).
func HistogramQuantile(q float64, bounds []float64, counts []int64, over int64, max float64) float64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	total += over
	if total == 0 {
		return max
	}
	// Nearest-rank with a ceiling: the q-th quantile of n observations
	// is the ⌈q·n⌉-th order statistic. The seed truncated here, so the
	// p95 of 10 samples read the 9th order statistic instead of the
	// 10th — systematically under-reporting every tail in /metrics and
	// every loadgen gate built on it.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum >= rank {
			return bounds[i]
		}
	}
	return max
}

// summary condenses one route's histogram into the snapshot shape. The
// caller holds rs.mu.
func (rs *routeSlot) summary() RouteLatency {
	rl := RouteLatency{
		Count:      rs.count,
		P50Seconds: HistogramQuantile(0.50, latencyBuckets, rs.hist, rs.over, rs.max),
		P95Seconds: HistogramQuantile(0.95, latencyBuckets, rs.hist, rs.over, rs.max),
		P99Seconds: HistogramQuantile(0.99, latencyBuckets, rs.hist, rs.over, rs.max),
		MaxSeconds: rs.max,
	}
	if rs.count > 0 {
		rl.MeanSeconds = rs.sum / float64(rs.count)
	}
	return rl
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		Requests:      make(map[string]int64),
		RouteLatency:  make(map[string]RouteLatency),
		StatusClasses: make(map[string]int64),
		Panics:        m.panics.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
	}
	// The global totals are aggregated from the slots: preregistered slots
	// that never saw a request are skipped so the maps list exactly the
	// routes that were hit, as the old lazily-grown table did.
	var (
		total  int64
		over   int64
		latSum float64
		hist   = make([]int64, len(latencyBuckets))
	)
	for route, rs := range *m.slots.Load() {
		rs.mu.Lock()
		if rs.count == 0 {
			rs.mu.Unlock()
			continue
		}
		s.Requests[route] = rs.count
		s.RouteLatency[route] = rs.summary()
		total += rs.count
		latSum += rs.sum
		over += rs.over
		for i, n := range rs.hist {
			hist[i] += n
		}
		rs.mu.Unlock()
	}
	for i := range m.statuses {
		if n := m.statuses[i].Load(); n > 0 {
			s.StatusClasses[statusClassName(i*100)] += n
		}
	}
	if total > 0 {
		s.LatencyMean = latSum / float64(total)
	}
	for i, n := range hist {
		s.LatencyBuckets = append(s.LatencyBuckets, HistogramBucket{latencyBuckets[i], n})
	}
	s.LatencyBuckets = append(s.LatencyBuckets, HistogramBucket{-1, over})
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	if m.tenants != nil {
		s.Tenants = make(map[string]TenantSnapshot, len(m.tenants))
		for name, ts := range m.tenants {
			s.Tenants[name] = TenantSnapshot{
				Requests:    ts.requests.Load(),
				RateLimited: ts.rateLimited.Load(),
				OverBudget:  ts.overBudget.Load(),
			}
		}
	}
	return s
}

func statusClassName(status int) string {
	switch status {
	case 200:
		return "2xx"
	case 300:
		return "3xx"
	case 400:
		return "4xx"
	case 500:
		return "5xx"
	default:
		return "other"
	}
}
