package server

// Server-sent events: the wire exposure of the engine's progress
// callbacks (PR 1) that polling clients never saw. Two streams share the
// machinery: GET /v1/jobs/{id}/events follows one async job (state
// transitions from the queue's Notify hook, per-point progress from the
// executor's engine.WithProgress context), and POST
// /v1/experiments/{id}?stream=1 follows a synchronous experiment run.
// The bus bounds every subscriber: a consumer that cannot keep up is
// dropped with a terminal "dropped" event rather than backpressuring the
// queue workers, and Server.Close closes every stream cleanly so a
// draining daemon never strands a connection.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"balarch/internal/engine"
	"balarch/internal/jobs"
)

// SSE stream tuning. The buffer absorbs bursts (a cached sweep's points
// complete in microseconds); the heartbeat keeps idle connections alive
// through proxies and lets the server notice dead clients.
const (
	defaultEventBuffer       = 64
	defaultHeartbeatInterval = 15 * time.Second
)

// Subscriber-drop reasons: why a stream ended early. The empty reason is
// a normal completion (the topic's terminal event was delivered).
const (
	dropSlowConsumer = "slow_consumer"
	dropShuttingDown = "shutting_down"
)

// busEvent is one SSE frame: an event name and its JSON data line.
type busEvent struct {
	name string
	data []byte
}

// subscriber is one stream's bounded mailbox. After ch closes, reason
// says why (set under the bus lock before the close, so reading it after
// the close is race-free).
type subscriber struct {
	ch     chan busEvent
	reason string
}

// eventBus fans events out to per-topic subscribers. Publishing never
// blocks: a full subscriber is cut (reason slow_consumer) instead of
// stalling the publisher, which may be a queue worker holding the queue
// lock.
type eventBus struct {
	mu     sync.Mutex
	subs   map[string]map[*subscriber]struct{}
	buf    int
	closed bool
}

func newEventBus(buf int) *eventBus {
	if buf <= 0 {
		buf = defaultEventBuffer
	}
	return &eventBus{subs: make(map[string]map[*subscriber]struct{}), buf: buf}
}

// subscribe registers a new mailbox on topic; errClosed when the bus is
// draining.
func (b *eventBus) subscribe(topic string) (*subscriber, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false
	}
	sub := &subscriber{ch: make(chan busEvent, b.buf)}
	m := b.subs[topic]
	if m == nil {
		m = make(map[*subscriber]struct{})
		b.subs[topic] = m
	}
	m[sub] = struct{}{}
	return sub, true
}

// unsubscribe removes sub from topic (idempotent; a dropped sub is
// already gone).
func (b *eventBus) unsubscribe(topic string, sub *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m := b.subs[topic]; m != nil {
		if _, ok := m[sub]; ok {
			delete(m, sub)
			if len(m) == 0 {
				delete(b.subs, topic)
			}
			close(sub.ch)
		}
	}
}

// publish delivers ev to every subscriber of topic; terminal also ends
// the topic, closing the survivors' channels with the empty (normal)
// reason after they receive ev.
func (b *eventBus) publish(topic string, ev busEvent, terminal bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.subs[topic]
	for sub := range m {
		select {
		case sub.ch <- ev:
		default:
			// Full mailbox: this consumer is too slow for the stream's
			// bound. Cut it here — the handler sees the close, reads the
			// reason, and writes the terminal "dropped" frame.
			sub.reason = dropSlowConsumer
			delete(m, sub)
			close(sub.ch)
		}
	}
	if terminal {
		for sub := range m {
			delete(m, sub)
			close(sub.ch)
		}
	}
	if len(m) == 0 {
		delete(b.subs, topic)
	}
}

// close ends every stream (reason shutting_down) and refuses new
// subscriptions: the drain path.
func (b *eventBus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for topic, m := range b.subs {
		for sub := range m {
			sub.reason = dropShuttingDown
			close(sub.ch)
		}
		delete(b.subs, topic)
	}
}

// subscriberCount reports topic's live subscriptions (tests).
func (b *eventBus) subscriberCount(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs[topic])
}

// --- wire shapes ---

// JobProgressDTO is the data payload of a job stream's "progress" event:
// one engine pool completion inside the running job.
type JobProgressDTO struct {
	ID     string `json:"id"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Key    string `json:"key,omitempty"`
	Cached bool   `json:"cached,omitempty"`
}

// StreamDropDTO is the data payload of the terminal "dropped" event: why
// the server ended the stream early ("slow_consumer" or
// "shutting_down"). Reconnect (or fall back to polling) on receipt.
type StreamDropDTO struct {
	Reason string `json:"reason"`
}

// ExperimentProgressDTO is the data payload of an experiment stream's
// "progress" event.
type ExperimentProgressDTO struct {
	ID     string `json:"id"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Key    string `json:"key,omitempty"`
	Cached bool   `json:"cached,omitempty"`
}

// Event names on the SSE streams. A job stream is state* progress* done;
// an experiment stream is progress* (done|error); either may end with
// dropped instead.
const (
	eventState    = "state"
	eventProgress = "progress"
	eventDone     = "done"
	eventError    = "error"
	eventDropped  = "dropped"
)

// mustEventData marshals an event payload; the payloads are plain
// structs, so failure is a programming error.
func mustEventData(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// jobTopic names the bus topic for one job id.
func jobTopic(id string) string { return "job:" + id }

// publishJobTransition is the queue's Notify hook: every state change
// becomes a "state" event, terminal states a "done" event that also ends
// the topic. Runs under the queue lock — it only touches the bus mutex.
func (s *Server) publishJobTransition(j jobs.Job) {
	dto := jobStatusDTO(j)
	name := eventState
	terminal := j.State.Terminal()
	if terminal {
		name = eventDone
	}
	s.events.publish(jobTopic(j.ID), busEvent{name: name, data: mustEventData(dto)}, terminal)
}

// jobProgressContext hooks the executor's context so the engine pools
// under a running job report per-point progress onto the job's topic.
func (s *Server) jobProgressContext(ctx context.Context, id string) context.Context {
	return engine.WithProgress(ctx, func(ev engine.Event) {
		s.events.publish(jobTopic(id), busEvent{name: eventProgress, data: mustEventData(JobProgressDTO{
			ID: id, Done: ev.Done, Total: ev.Total, Key: ev.Key, Cached: ev.Cached,
		})}, false)
	})
}

// --- SSE plumbing ---

// sseWriter serializes frames onto one response: the handler goroutine
// and the heartbeat share it. Write errors latch — once the client is
// gone every later write is a cheap no-op.
type sseWriter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	err     error
}

// startSSE switches the response to an event stream. It needs the
// ResponseWriter to support flushing (the daemon's does; statusRecorder
// passes it through) and disables any server write deadline — a stream
// lives as long as the work, not as long as one response write.
func startSSE(w http.ResponseWriter, r *http.Request) (*sseWriter, *apiError) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return nil, internalError(fmt.Errorf("response writer %T cannot stream", w))
	}
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{}) // best-effort; recorders don't support it
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	return &sseWriter{w: w, flusher: flusher}, nil
}

// event writes one "event:/data:" frame and flushes it.
func (sw *sseWriter) event(name string, data []byte) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return
	}
	// The data lines are single-line JSON (json.Marshal output), so one
	// data: field per frame suffices.
	if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		sw.err = err
		return
	}
	sw.flusher.Flush()
}

// comment writes a ": heartbeat" keep-alive frame.
func (sw *sseWriter) comment() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return
	}
	if _, err := fmt.Fprint(sw.w, ": heartbeat\n\n"); err != nil {
		sw.err = err
		return
	}
	sw.flusher.Flush()
}

// heartbeat returns the server's keep-alive interval.
func (s *Server) heartbeat() time.Duration {
	if s.sseHeartbeat > 0 {
		return s.sseHeartbeat
	}
	return defaultHeartbeatInterval
}

// --- handlers ---

// handleJobEvents is GET /v1/jobs/{id}/events: the job's lifecycle as an
// event stream — "state" on submit/queued/running, "progress" per engine
// pool completion while it runs, "done" with the full terminal status,
// then the stream closes. Subscribing to an already-terminal job yields
// its "done" event immediately. The subscription is bounded: a consumer
// that falls behind gets a terminal "dropped" frame (reason
// slow_consumer), and daemon drain ends every stream with reason
// shutting_down.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	q, apiErr := s.jobsQueue()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	id := r.PathValue("id")
	// Subscribe before the state read: a transition between the two
	// lands in the mailbox instead of being lost.
	sub, ok := s.events.subscribe(jobTopic(id))
	if !ok {
		writeError(w, &apiError{Status: http.StatusServiceUnavailable,
			Body:              ErrorBody{"draining", "the server is shutting down"},
			RetryAfterSeconds: 1})
		return
	}
	j, err := q.Get(id)
	if err != nil {
		s.events.unsubscribe(jobTopic(id), sub)
		writeError(w, asJobsError(err))
		return
	}
	sw, apiErr := startSSE(w, r)
	if apiErr != nil {
		s.events.unsubscribe(jobTopic(id), sub)
		writeError(w, apiErr)
		return
	}
	if j.State.Terminal() {
		s.events.unsubscribe(jobTopic(id), sub)
		sw.event(eventDone, mustEventData(jobStatusDTO(j)))
		return
	}
	sw.event(eventState, mustEventData(jobStatusDTO(j)))

	ticker := time.NewTicker(s.heartbeat())
	defer ticker.Stop()
	defer s.events.unsubscribe(jobTopic(id), sub)
	for {
		select {
		case <-r.Context().Done():
			// Client went away: free the subscription and stop.
			return
		case ev, open := <-sub.ch:
			if !open {
				if sub.reason != "" {
					sw.event(eventDropped, mustEventData(StreamDropDTO{Reason: sub.reason}))
				}
				return
			}
			sw.event(ev.name, ev.data)
		case <-ticker.C:
			sw.comment()
		}
	}
}

// streamExperiment is POST /v1/experiments/{id}?stream=1: the run's
// engine progress as "progress" events while it executes in this
// handler, then one terminal "done" (the ExperimentRunResponse) or
// "error" (the error envelope's body). Cancellation still works — the
// run hangs off r.Context(), so a dropped stream aborts the sweeps.
func (s *Server) streamExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw, apiErr := startSSE(w, r)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	// Heartbeats cover the gaps between sweep completions (a cold
	// measured sweep can run seconds per point).
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(s.heartbeat())
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				sw.comment()
			}
		}
	}()

	ctx := engine.WithProgress(r.Context(), func(ev engine.Event) {
		sw.event(eventProgress, mustEventData(ExperimentProgressDTO{
			ID: id, Done: ev.Done, Total: ev.Total, Key: ev.Key, Cached: ev.Cached,
		}))
	})
	res, apiErr := s.runExperiment(ctx, id)
	if apiErr != nil {
		sw.event(eventError, mustEventData(errorEnvelope{Error: apiErr.Body}))
		return
	}
	data, err := res.JSON()
	if err != nil {
		sw.event(eventError, mustEventData(errorEnvelope{Error: internalError(err).Body}))
		return
	}
	sw.event(eventDone, mustEventData(ExperimentRunResponse{Pass: res.Pass(), Result: data}))
}
