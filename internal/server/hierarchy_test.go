package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postJSON drives one request through a fresh handler and decodes the body.
func postJSON(t *testing.T, h http.Handler, method, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.Bytes()
}

// threeLevelBody is the test stack: 1 GOPS over sram → dram → disk.
const threeLevelBody = `"pe": {"c": 1e9},
	"levels": [
		{"name": "sram", "bw": 4e9, "m": 1024},
		{"name": "dram", "bw": 1e9, "m": 262144},
		{"name": "disk", "bw": 1e5, "m": 67108864}
	]`

func TestAnalyzeHierarchyEndpoint(t *testing.T) {
	h := New(Options{}).Handler()
	code, body := postJSON(t, h, "POST", "/v1/analyze",
		`{`+threeLevelBody+`, "computation": {"name": "matmul"}}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Boundaries) != 3 || len(resp.Levels) != 3 {
		t.Fatalf("boundaries/levels = %d/%d, want 3/3", len(resp.Boundaries), len(resp.Levels))
	}
	// The disk boundary binds: intensity 10⁴ against R ≈ 8207.
	if resp.BindingBoundary != 3 || resp.State != "io-bound" {
		t.Errorf("binding %d state %s, want 3 io-bound", resp.BindingBoundary, resp.State)
	}
	// Inner boundaries are compute bound; the per-boundary states say so.
	if resp.Boundaries[0].State != "compute-bound" || resp.Boundaries[1].State != "compute-bound" {
		t.Errorf("inner states = %s/%s", resp.Boundaries[0].State, resp.Boundaries[1].State)
	}
	// Flat fields describe the binding boundary as an effective PE.
	bind := resp.Boundaries[2]
	if resp.PE.IO != bind.BW || resp.PE.M != bind.CapacityWithin ||
		resp.Intensity != bind.Intensity || resp.BalancedMemory != bind.BalancedMemory {
		t.Errorf("flat fields don't mirror the binding boundary: %+v vs %+v", resp, bind)
	}
	if math.Abs(bind.BalancedMemory-1e8)/1e8 > 1e-6 {
		t.Errorf("binding balanced memory = %v, want 1e8", bind.BalancedMemory)
	}
}

// TestAnalyzeFlatResponseHasNoHierarchyKeys pins wire compatibility: the
// one-level (flat) request's response must not grow any of the new keys.
func TestAnalyzeFlatResponseHasNoHierarchyKeys(t *testing.T) {
	h := New(Options{}).Handler()
	code, body := postJSON(t, h, "POST", "/v1/analyze",
		`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	for _, key := range []string{"levels", "boundaries", "binding_boundary"} {
		if strings.Contains(string(body), `"`+key+`"`) {
			t.Errorf("flat response leaked hierarchy key %q:\n%s", key, body)
		}
	}
}

func TestHierarchyTyped422s(t *testing.T) {
	h := New(Options{}).Handler()
	cases := []struct {
		name, path, body, code string
	}{
		{"non-monotone analyze", "/v1/analyze",
			`{"pe": {"c": 1e9}, "levels": [{"bw": 1e6, "m": 64}, {"bw": 2e6, "m": 256}], "computation": {"name": "fft"}}`,
			"non_monotone_hierarchy"},
		{"levels with flat io", "/v1/analyze",
			`{"pe": {"c": 1e9, "io": 1e6}, "levels": [{"bw": 1e6, "m": 64}], "computation": {"name": "fft"}}`,
			"invalid_argument"},
		{"too many levels", "/v1/analyze",
			`{"pe": {"c": 1e9}, "levels": [{"bw": 9e6, "m": 1}, {"bw": 8e6, "m": 1}, {"bw": 7e6, "m": 1}, {"bw": 6e6, "m": 1}, {"bw": 5e6, "m": 1}, {"bw": 4e6, "m": 1}, {"bw": 3e6, "m": 1}, {"bw": 2e6, "m": 1}, {"bw": 1e6, "m": 1}], "computation": {"name": "fft"}}`,
			"invalid_argument"},
		{"rebalance m_old with levels", "/v1/rebalance",
			`{"computation": {"name": "fft"}, "alpha": 2, "m_old": 64, "c": 1e9, "levels": [{"bw": 1e6, "m": 64}]}`,
			"invalid_argument"},
		{"rebalance c without levels", "/v1/rebalance",
			`{"computation": {"name": "fft"}, "alpha": 2, "m_old": 64, "c": 1e9}`,
			"invalid_argument"},
		{"non-monotone rebalance", "/v1/rebalance",
			`{"computation": {"name": "fft"}, "alpha": 2, "c": 1e9, "levels": [{"bw": 1e6, "m": 64}, {"bw": 2e6, "m": 256}]}`,
			"non_monotone_hierarchy"},
		{"roofline sweep_level without levels", "/v1/roofline",
			`{"pe": {"c": 1e6, "io": 1e6, "m": 64}, "computations": [{"name": "fft"}], "mem_lo": 64, "mem_hi": 256, "sweep_level": 1}`,
			"invalid_argument"},
		{"non-monotone roofline", "/v1/roofline",
			`{"pe": {"c": 1e9}, "levels": [{"bw": 1e6, "m": 64}, {"bw": 2e6, "m": 256}], "computations": [{"name": "fft"}], "mem_lo": 64, "mem_hi": 256}`,
			"non_monotone_hierarchy"},
		{"roofline sweep_level out of range", "/v1/roofline",
			`{"pe": {"c": 1e9}, "levels": [{"bw": 1e6, "m": 64}], "computations": [{"name": "fft"}], "mem_lo": 64, "mem_hi": 256, "sweep_level": 5}`,
			"invalid_argument"},
		{"hierarchy sweep without computation", "/v1/sweep",
			`{"kernel": "hierarchy", "c": 1e9, "levels": [{"bw": 1e6, "m": 64}], "params": [64, 256]}`,
			"invalid_argument"},
		{"hierarchy sweep non-monotone stack", "/v1/sweep",
			`{"kernel": "hierarchy", "c": 1e9, "levels": [{"bw": 1e6, "m": 64}, {"bw": 2e6, "m": 256}], "computation": {"name": "fft"}, "params": [64]}`,
			"non_monotone_hierarchy"},
		{"hierarchy sweep bandwidth value breaks monotonicity", "/v1/sweep",
			`{"kernel": "hierarchy", "c": 1e9, "levels": [{"bw": 1e6, "m": 64}, {"bw": 5e5, "m": 256}], "computation": {"name": "fft"}, "vary": "bandwidth", "level": 2, "params": [2000000]}`,
			"non_monotone_hierarchy"},
		{"hierarchy sweep bad vary", "/v1/sweep",
			`{"kernel": "hierarchy", "c": 1e9, "levels": [{"bw": 1e6, "m": 64}], "computation": {"name": "fft"}, "vary": "latency", "params": [64]}`,
			"invalid_argument"},
	}
	for _, tc := range cases {
		code, body := postJSON(t, h, "POST", tc.path, tc.body)
		if code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422\n%s", tc.name, code, body)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: bad envelope: %v", tc.name, err)
			continue
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, env.Error.Code, tc.code, env.Error.Message)
		}
	}
}

func TestRebalanceHierarchyEndpoint(t *testing.T) {
	h := New(Options{}).Handler()
	code, body := postJSON(t, h, "POST", "/v1/rebalance",
		`{"computation": {"name": "sorting"}, "alpha": 1.5, "c": 8e6,
		  "levels": [{"name": "ram", "bw": 1e6, "m": 1024}, {"name": "disk", "bw": 5e5, "m": 1048576}]}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp RebalanceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Rebalanceable || resp.BindingBoundary != 2 {
		t.Fatalf("rebalanceable %v binding %d: %s", resp.Rebalanceable, resp.BindingBoundary, body)
	}
	if len(resp.Boundaries) != 2 || len(resp.LevelBill) != 2 {
		t.Fatalf("boundaries/bill = %d/%d", len(resp.Boundaries), len(resp.LevelBill))
	}
	// Intensities 8, 16 grow to 12, 24 → cumulative requirements 2^12, 2^24.
	if got := resp.Boundaries[1].RequiredWithin; math.Abs(got-float64(1<<24)) > 1 {
		t.Errorf("boundary 2 requires %v, want 2^24", got)
	}
	if math.Abs(resp.TotalMemory-float64(1<<24)) > 1 {
		t.Errorf("total memory %v, want 2^24", resp.TotalMemory)
	}
	var sum float64
	for _, l := range resp.LevelBill {
		sum += l.MNew
		if l.MNew < l.MOld {
			t.Errorf("level %s shrank: %v → %v", l.Name, l.MOld, l.MNew)
		}
	}
	if sum != resp.TotalMemory {
		t.Errorf("bill sums to %v, total says %v", sum, resp.TotalMemory)
	}
	// The flat top-level m_new/m_closed_form stay absent on the hierarchy
	// answer (the per-level bill carries its own m_new lines).
	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["m_new"]; ok {
		t.Errorf("hierarchy response leaked top-level m_new:\n%s", body)
	}
	if _, ok := top["m_closed_form"]; ok {
		t.Errorf("hierarchy response leaked top-level m_closed_form:\n%s", body)
	}
}

func TestRooflineHierarchyEndpoint(t *testing.T) {
	h := New(Options{}).Handler()
	code, body := postJSON(t, h, "POST", "/v1/roofline",
		`{"pe": {"c": 1e9},
		  "levels": [{"bw": 5e8, "m": 4096}, {"bw": 1e7, "m": 16777216}],
		  "computations": [{"name": "matmul"}, {"name": "sorting"}],
		  "mem_lo": 1024, "mem_hi": 1048576, "sweep_level": 2, "chart": true}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp RooflineResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Ridges) != 2 || resp.Ridges[0].Intensity != 2 || resp.Ridges[1].Intensity != 100 {
		t.Fatalf("ridges = %+v, want intensities 2 and 100", resp.Ridges)
	}
	if resp.RidgeIntensity != 100 {
		t.Errorf("ridge_intensity = %v, want the outermost (100)", resp.RidgeIntensity)
	}
	if resp.SweepLevel != 2 || len(resp.Paths) != 2 {
		t.Fatalf("sweep_level %d paths %d", resp.SweepLevel, len(resp.Paths))
	}
	for _, path := range resp.Paths {
		if len(path.Points) == 0 {
			t.Fatalf("%s: empty path", path.Computation)
		}
		for i, p := range path.Points {
			if i > 0 && p.Attainable < path.Points[i-1].Attainable {
				t.Errorf("%s: attainable fell as the level grew", path.Computation)
			}
		}
	}
	if !strings.Contains(resp.Chart, "multi-ridge roofline") {
		t.Errorf("chart is not the multi-ridge rendering:\n%s", resp.Chart)
	}
}

func TestHierarchySweepKernel(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	// Sweep level 1's capacity: at 16 words the inner boundary binds with
	// R = log₂16 = 4; at 65536 the outer boundary binds with
	// R = log₂(65536 + 2^20) ≈ 20.09.
	body := `{"kernel": "hierarchy", "c": 8e6,
	  "levels": [{"bw": 1e6, "m": 16}, {"bw": 5e5, "m": 1048576}],
	  "computation": {"name": "sorting"}, "params": [16, 65536]}`
	code, raw := postJSON(t, h, "POST", "/v1/sweep", body)
	if code != 200 {
		t.Fatalf("status %d: %s", code, raw)
	}
	var resp SweepResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kernel != "hierarchy" || resp.Cached || len(resp.Points) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Points[0].Memory != 16 || resp.Points[1].Memory != 65536 {
		t.Errorf("memories = %d/%d", resp.Points[0].Memory, resp.Points[1].Memory)
	}
	if got := resp.Points[0].Ratio; math.Abs(got-4) > 1e-5 {
		t.Errorf("point 16 ratio = %v, want 4 (binding inner boundary)", got)
	}
	wantOuter := math.Log2(65536 + 1048576)
	if got := resp.Points[1].Ratio; math.Abs(got-wantOuter) > 1e-5 {
		t.Errorf("point 65536 ratio = %v, want %v (binding outer boundary)", got, wantOuter)
	}
	// Identical request: answered from the memo.
	if _, raw := postJSON(t, h, "POST", "/v1/sweep", body); !strings.Contains(string(raw), `"cached": true`) {
		t.Errorf("repeat sweep not cached: %s", raw)
	}
	// A bandwidth sweep through the same kernel: growing the outer
	// channel moves the binding boundary's ratio.
	bwBody := `{"kernel": "hierarchy", "c": 8e6,
	  "levels": [{"bw": 1e6, "m": 16}, {"bw": 5e5, "m": 1048576}],
	  "computation": {"name": "sorting"}, "vary": "bandwidth", "level": 2,
	  "params": [100000, 500000]}`
	code, raw = postJSON(t, h, "POST", "/v1/sweep", bwBody)
	if code != 200 {
		t.Fatalf("bandwidth sweep status %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 2 {
		t.Fatalf("bandwidth sweep points = %d", len(resp.Points))
	}
}

// TestHierarchySweepCacheKeyInjective pins the memo-poisoning fix: two
// different machine descriptions whose %v renderings coincide (a level
// name forging the list separator) must not share a cache key.
func TestHierarchySweepCacheKeyInjective(t *testing.T) {
	a := &SweepRequest{Kernel: "hierarchy", C: 1,
		Levels:      []LevelDTO{{Name: "a 3 2} {b", BW: 1, M: 4}},
		Computation: &ComputationDTO{Name: "sorting"}, Params: []int{8}}
	b := &SweepRequest{Kernel: "hierarchy", C: 1,
		Levels:      []LevelDTO{{Name: "a", BW: 3, M: 2}, {Name: "b", BW: 1, M: 4}},
		Computation: &ComputationDTO{Name: "sorting"}, Params: []int{8}}
	if ka, kb := sweepCacheKey(a), sweepCacheKey(b); ka == kb {
		t.Fatalf("two different machines share a cache key: %s", ka)
	}
}

// TestSweepRejectsHierarchyFieldsOnFlatKernels: the mutual-exclusion
// contract the other endpoints enforce holds on /v1/sweep too — a flat
// kernel with hierarchy fields is a 422, not a silently flat answer.
func TestSweepRejectsHierarchyFieldsOnFlatKernels(t *testing.T) {
	h := New(Options{}).Handler()
	for name, body := range map[string]string{
		"levels":      `{"kernel": "sort", "params": [32], "levels": [{"bw": 1e6, "m": 64}]}`,
		"c":           `{"kernel": "matmul", "n": 64, "params": [8], "c": 1e9}`,
		"computation": `{"kernel": "fft", "n": 4096, "params": [16], "computation": {"name": "fft"}}`,
		"vary":        `{"kernel": "matvec", "n": 1024, "params": [64], "vary": "capacity"}`,
		"level":       `{"kernel": "convolve", "n": 8192, "params": [8], "level": 1}`,
	} {
		code, out := postJSON(t, h, "POST", "/v1/sweep", body)
		if code != http.StatusUnprocessableEntity {
			t.Errorf("%s on a flat kernel: status %d, want 422\n%s", name, code, out)
		}
	}
}

func TestCatalogEndpoint(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	code, body := postJSON(t, h, "GET", "/v1/catalog", "")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp CatalogResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Computations) != len(computationNames) {
		t.Fatalf("catalog lists %d computations, want %d", len(resp.Computations), len(computationNames))
	}
	byID := map[string]CatalogEntry{}
	for i, e := range resp.Computations {
		if e.ID != computationNames[i] {
			t.Errorf("entry %d id %q, want %q (id order)", i, e.ID, computationNames[i])
		}
		if e.Name == "" || e.Section == "" || e.Law == "" || e.RatioFamily == "" {
			t.Errorf("entry %s has empty metadata: %+v", e.ID, e)
		}
		byID[e.ID] = e
	}
	if e := byID["grid"]; e.DefaultDim != 2 || e.RatioFamily != "Θ(√M)" {
		t.Errorf("grid entry = %+v, want default dim 2 with the α² family", e)
	}
	if e := byID["convolution"]; e.DefaultTaps != 16 || !e.IOBounded {
		t.Errorf("convolution entry = %+v", e)
	}
	if e := byID["fft"]; e.RatioFamily != "Θ(log₂M)" || e.IOBounded {
		t.Errorf("fft entry = %+v", e)
	}
	if e := byID["matvec"]; !e.IOBounded || e.RatioFamily != "Θ(1)" {
		t.Errorf("matvec entry = %+v", e)
	}
	// Every advertised id must be accepted by the analyze resolver.
	for _, e := range resp.Computations {
		code, out := postJSON(t, h, "POST", "/v1/analyze",
			`{"pe": {"c": 1e6, "io": 1e6, "m": 4096}, "computation": {"name": "`+e.ID+`"}}`)
		if code != 200 {
			t.Errorf("catalog id %q rejected by analyze: %d %s", e.ID, code, out)
		}
	}
}

// TestHierarchyThroughBatchAndJobs drives the hierarchy ops through the
// batch fan-out, proving the shared cores carry the new branch everywhere.
func TestHierarchyThroughBatch(t *testing.T) {
	h := New(Options{}).Handler()
	code, body := postJSON(t, h, "POST", "/v1/batch",
		`{"requests": [
			{"op": "analyze", "request": {`+threeLevelBody+`, "computation": {"name": "matmul"}}},
			{"op": "rebalance", "request": {"computation": {"name": "sorting"}, "alpha": 1.5, "c": 8e6, "levels": [{"bw": 1e6, "m": 1024}, {"bw": 5e5, "m": 1048576}]}},
			{"op": "sweep", "request": {"kernel": "hierarchy", "c": 8e6, "levels": [{"bw": 1e6, "m": 16}], "computation": {"name": "fft"}, "params": [16, 64]}}
		]}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Status != 200 {
			t.Errorf("item %d: status %d: %s", i, r.Status, r.Body)
		}
	}
	var a AnalyzeResponse
	if err := json.Unmarshal(resp.Results[0].Body, &a); err != nil {
		t.Fatal(err)
	}
	if a.BindingBoundary != 3 {
		t.Errorf("batched hierarchy analyze binding = %d, want 3", a.BindingBoundary)
	}
}
