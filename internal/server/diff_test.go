package server

// Differential tests pinning the zero-allocation hot path to encoding/json:
// the append encoder must be byte-identical to the stdlib for every hot
// response type (including the float formatting and HTML-escaping corner
// cases), and the fast request decoder must be observationally identical to
// strictDecodeJSON — same DTO on success, same error envelope on failure —
// for any input whatsoever. The fuzz target extends the corpora.

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// stdlibBody is the pre-optimization wire encoding of a 2xx body: two-space
// indent, trailing newline, HTML escaping on.
func stdlibBody(t *testing.T, v any) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encoderCorpus enumerates hot-type values that exercise every branch the
// append encoder hand-rolls: omitempty on zero and non-zero fields, nil vs
// empty vs populated slices, and the stdlib's float formatting and string
// escaping edge cases.
func encoderCorpus() []any {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0, -123.456,
		1e-6, 9.999999e-7, 1e-7, 1e20, 1e21, 1.0000000000000002e21,
		5e-324, math.MaxFloat64, 2.5e6, 4096, 1048576,
	}
	strs := []string{
		"", "plain", "with \"quotes\" and \\ backslash",
		"html <b>&amp;</b> bits", "control \x01\x02 \n\t\r bytes",
		"unicode é 日本語", "line seps    ", "invalid \xff\xfe utf8",
	}
	var vals []any
	for i, f := range floats {
		s := strs[i%len(strs)]
		vals = append(vals,
			&AnalyzeResponse{
				Computation: s, Section: "3.1",
				PE:        PEDTO{C: f, IO: -f, M: f * 3},
				Intensity: f, AchievableRatio: f / 7, State: "balanced",
				BalancedMemory: f, Rebalanceable: i%2 == 0, Law: s,
			},
			&RebalanceResponse{
				Computation: s, Alpha: f, MOld: f, Rebalanceable: true,
				MNew: f * 2, MClosedForm: f, Law: s, C: f,
				Boundaries: []RebalanceBoundaryDTO{
					{Boundary: 1, Intensity: f, RequiredWithin: f, Rebalanceable: true},
					{Boundary: 2, Intensity: -f, Rebalanceable: false},
				},
				BindingBoundary: i, TotalMemory: f, TotalDelta: -f,
			},
		)
	}
	vals = append(vals,
		// Hierarchy analyze: levels, boundaries, binding boundary.
		&AnalyzeResponse{
			Computation: "Matrix multiplication", Section: "3.2",
			PE:        PEDTO{C: 1e9, IO: 4e9, M: 1024},
			Intensity: 0.25, AchievableRatio: 32, State: "compute-bound",
			Rebalanceable: true, Law: "m_new = m_old^1.5",
			Levels: []LevelDTO{
				{Name: "sram", BW: 4e9, M: 1024},
				{BW: 1e9, M: 262144}, // no name: omitempty branch
			},
			Boundaries: []BoundaryDTO{
				{Boundary: 1, Name: "sram", BW: 4e9, CapacityWithin: 1024,
					Intensity: 0.25, AchievableRatio: 32, State: "compute-bound",
					BalancedMemory: 64, Rebalanceable: true},
				{Boundary: 2, BW: 1e9, CapacityWithin: 263168,
					Intensity: 1, AchievableRatio: 512, State: "io-bound"},
			},
			BindingBoundary: 2,
		},
		// Sweep responses: nil points (null), empty non-nil ([]), populated.
		&SweepResponse{Kernel: "sort", Points: nil, Cached: true},
		&SweepResponse{Kernel: "matmul", Points: []SweepPointDTO{}, Cached: false},
		&SweepResponse{Kernel: "hierarchy", Cached: true, Points: []SweepPointDTO{
			{Memory: 64, Ops: 18446744073709551615, Reads: 0, Writes: 1, Ratio: 0.5},
			{Memory: 1 << 30, Ops: 42, Reads: 1e6, Writes: 99, Ratio: 1e21},
		}},
		// Error envelopes, incl. HTML-escaped message bytes.
		errorEnvelope{Error: ErrorBody{Code: "bad_json", Message: "body must be valid JSON"}},
		errorEnvelope{Error: ErrorBody{Code: "invalid_argument", Message: `got "<&>" near  `}},
		// Unsupported values: both paths must agree on the error too.
		&AnalyzeResponse{Intensity: math.NaN()},
		&AnalyzeResponse{AchievableRatio: math.Inf(1)},
		&SweepResponse{Points: []SweepPointDTO{{Ratio: math.Inf(-1)}}},
	)
	return vals
}

func TestAppendEncoderByteIdentical(t *testing.T) {
	for i, v := range encoderCorpus() {
		want, wantErr := stdlibBody(t, v)
		got, gotErr := appendJSONBody(nil, v)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("corpus[%d] %T: err = %v, stdlib err = %v", i, v, gotErr, wantErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("corpus[%d] %T: err %q, stdlib %q", i, v, gotErr, wantErr)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("corpus[%d] %T: body diverges\n got: %q\nwant: %q", i, v, got, want)
		}
		// Compact form against json.Marshal.
		wantC, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := appendJSONCompact(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotC, wantC) {
			t.Errorf("corpus[%d] %T: compact diverges\n got: %q\nwant: %q", i, v, gotC, wantC)
		}
		// Appending after existing bytes must not disturb either.
		pre := []byte("prefix-")
		if got2, err := appendJSONBody(pre, v); err != nil || !bytes.Equal(got2, append([]byte("prefix-"), want...)) {
			t.Errorf("corpus[%d] %T: dst prefix not preserved", i, v)
		}
	}
}

// goldenRequests is every JSON endpoint's golden request set: each entry is
// served end to end and its wire bytes compared against the stdlib
// re-encoding of the typed response — proving the pooled/append path writes
// exactly what encoding/json would have.
var goldenRequests = []struct {
	name, path, body string
	status           int
}{
	{"analyze_flat", "/v1/analyze", `{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`, 200},
	{"analyze_unbalanced", "/v1/analyze", `{"pe": {"c": 1e9, "io": 1, "m": 1}, "computation": {"name": "spmv"}}`, 200},
	{"analyze_hierarchy", "/v1/analyze", `{"pe": {"c": 1e9}, "levels": [{"name": "sram", "bw": 4e9, "m": 1024}, {"bw": 1e9, "m": 262144}], "computation": {"name": "matmul"}}`, 200},
	{"analyze_error", "/v1/analyze", `{"pe": {"c": -1}, "computation": {"name": "fft"}}`, 422},
	{"analyze_bad_json", "/v1/analyze", `{"pe": `, 400},
	{"analyze_unknown_field", "/v1/analyze", `{"pe": {"c": 1e6, "io": 1e3, "m": 64}, "computation": {"name": "fft"}, "zzz": 1}`, 400},
	{"rebalance", "/v1/rebalance", `{"computation": {"name": "matmul"}, "alpha": 2, "m_old": 1024}`, 200},
	{"rebalance_hierarchy", "/v1/rebalance", `{"computation": {"name": "fft"}, "alpha": 2, "c": 1e9, "levels": [{"bw": 4e9, "m": 1024}, {"bw": 1e9, "m": 262144}]}`, 200},
	{"sweep_sort", "/v1/sweep", `{"kernel": "sort", "params": [64, 128], "seed": 7}`, 200},
	{"sweep_matmul", "/v1/sweep", `{"kernel": "matmul", "n": 64, "params": [8, 16]}`, 200},
	{"sweep_hierarchy", "/v1/sweep", `{"kernel": "hierarchy", "c": 8e6, "levels": [{"bw": 1e6, "m": 16}, {"bw": 5e5, "m": 1048576}], "computation": {"name": "sorting"}, "params": [64, 256]}`, 200},
	{"sweep_error", "/v1/sweep", `{"kernel": "warp9", "params": [1]}`, 422},
}

func TestEndpointBytesMatchStdlib(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	for _, g := range goldenRequests {
		// Twice: the second sweep hits the memo, so the cached=true
		// encoding is covered too.
		for pass := 0; pass < 2; pass++ {
			req := httptest.NewRequest("POST", g.path, strings.NewReader(g.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != g.status {
				t.Fatalf("%s pass %d: status %d, want %d: %s", g.name, pass, w.Code, g.status, w.Body.String())
			}
			wire := w.Body.Bytes()
			var typed any
			switch {
			case g.status != 200:
				typed = new(errorEnvelope)
			case g.path == "/v1/sweep":
				typed = new(SweepResponse)
			case g.path == "/v1/rebalance":
				typed = new(RebalanceResponse)
			default:
				typed = new(AnalyzeResponse)
			}
			if err := json.Unmarshal(wire, typed); err != nil {
				t.Fatalf("%s: response does not parse: %v", g.name, err)
			}
			if ee, ok := typed.(*errorEnvelope); ok {
				typed = *ee // errors encode as a value, not a pointer
			}
			want, err := stdlibBody(t, typed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wire, want) {
				t.Errorf("%s pass %d: wire bytes diverge from stdlib\n got: %q\nwant: %q",
					g.name, pass, wire, want)
			}
		}
	}
}

// TestBatchItemBytesMatchStdlib pins the compact (json.Marshal) encoding
// the batch endpoint stores per item.
func TestBatchItemBytesMatchStdlib(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	body := `{"requests": [
		{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}},
		{"op": "sweep", "request": {"kernel": "sort", "params": [64], "seed": 3}},
		{"op": "rebalance", "request": {"computation": {"name": "matmul"}, "alpha": 2, "m_old": 1024}}]}`
	req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// The outer envelope's indenting encoder re-flows the embedded raw
	// bodies, so compare modulo whitespace: compacted wire bytes must equal
	// json.Marshal of the typed value (the form batchItem stores).
	types := []any{new(AnalyzeResponse), new(SweepResponse), new(RebalanceResponse)}
	for i, res := range resp.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("item %d: status %d: %v", i, res.Status, res.Error)
		}
		if err := json.Unmarshal(res.Body, types[i]); err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(types[i])
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := json.Compact(&got, res.Body); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("item %d: body diverges from json.Marshal\n got: %q\nwant: %q", i, got.Bytes(), want)
		}
	}
}

// decoderCorpus is the deterministic fast-vs-strict decode corpus: valid
// bodies the fast path should accept, and every bail/edge class — escapes,
// duplicate keys, unknown and case-folded fields, float forms, overflow,
// null, empty arrays, trailing data, syntax errors.
var decoderCorpus = []string{
	`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`,
	`{"pe": {"c": 1e9}, "levels": [{"name": "sram", "bw": 4e9, "m": 1024}], "computation": {"name": "matmul"}}`,
	`{"kernel": "sort", "params": [64, 128, 256], "seed": 7}`,
	`{"kernel": "matmul", "n": 256, "params": [4, 8]}`,
	`{"kernel": "hierarchy", "c": 8e6, "levels": [{"bw": 1e6, "m": 16}], "computation": {"name": "sorting"}, "params": [16], "vary": "bandwidth", "level": 1}`,
	`{}`, `  {  } `, `null`, `true`, `[]`, `""`, `17`, ``, `   `,
	`{"pe": {"c": 1}, "pe": {"io": 2}}`,                         // duplicate key: merge
	`{"computation": {"name": "a"}, "computation": {"dim": 3}}`, // duplicate pointer: merge in place
	`{"Kernel": "sort"}`,                                        // case-insensitive match
	`{"KERNEL": "sort", "params": [1]}`,                         // case-insensitive match
	`{"kernel": "s\\u006frt", "params": []}`,                    // escape in string + empty array
	`{"kernel": "日本語"}`,                                         // non-ASCII string bytes
	`{"unknown_field": 1}`,
	`{"n": 1.5}`, `{"n": 1e2}`, `{"n": -0}`, `{"n": 9223372036854775807}`,
	`{"n": 9223372036854775808}`, `{"seed": -9223372036854775808}`,
	`{"pe": {"c": -0.0}}`, `{"pe": {"c": 0.1e-400}}`, `{"pe": {"c": 1e400}}`,
	`{"pe": {"c": 179769313486231570000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000.5}}`,
	`{"pe": null}`, `{"levels": null}`, `{"params": null}`,
	`{"levels": []}`, `{"params": []}`,
	`{"params": [1, 2,]}`, `{"params": [01]}`, `{"n": 007}`,
	`{"kernel": "sort"} trailing`, `{"kernel": "sort"}{}`,
	`{"kernel": "sort"`, `{"kernel": sort}`, `{"kernel": "sort",}`,
	"{\"kernel\": \"s\x00rt\"}", `{"kernel": "bad \ud800 surrogate"}`,
	`{"max_memory": 1e18, "pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "grid", "dim": 3, "taps": 4}}`,
}

// diffDecode runs one body through the fast-with-fallback path and the pure
// strict path and fails on any observable difference.
func diffDecode[Req any](t *testing.T, body []byte) {
	t.Helper()
	var fast, slow Req
	fastErr := decodeBody(&fast, body)
	slowErr := strictDecodeJSON(bytes.NewReader(body), &slow)
	if (fastErr == nil) != (slowErr == nil) {
		t.Fatalf("%T %q: fast err %v, strict err %v", fast, body, fastErr, slowErr)
	}
	if fastErr != nil {
		if !reflect.DeepEqual(*fastErr, *slowErr) {
			t.Errorf("%T %q: error envelopes diverge\n fast: %+v\nslow: %+v", fast, body, fastErr, slowErr)
		}
		return
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("%T %q: decoded DTOs diverge\n fast: %+v\nslow: %+v", fast, body, fast, slow)
	}
}

func TestFastDecodeDifferential(t *testing.T) {
	for _, body := range decoderCorpus {
		diffDecode[AnalyzeRequest](t, []byte(body))
		diffDecode[SweepRequest](t, []byte(body))
	}
}

// FuzzFastDecodeDifferential lets the fuzzer hunt for any byte sequence
// where the fast decoder and strictDecodeJSON disagree.
func FuzzFastDecodeDifferential(f *testing.F) {
	for _, body := range decoderCorpus {
		f.Add([]byte(body))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		diffDecode[AnalyzeRequest](t, body)
		diffDecode[SweepRequest](t, body)
	})
}
