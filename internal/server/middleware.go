package server

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"balarch/internal/obs"
)

// Middleware is a composable http.Handler wrapper. The server's stack is
// built with Chain; embedders mounting the API elsewhere can reuse the
// pieces individually.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in the middlewares, outermost first: Chain(h, a, b) serves
// a(b(h)).
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// statusRecorder captures the response status and size for logging and
// metrics. Instances are pooled by Observe — one lives exactly as long as
// the request it wraps, and its ResponseWriter is nilled before it goes
// back so a stale handler reference cannot write into the next request.
// beforeHeader, when set, runs once just before the status line is
// committed (first WriteHeader, Write, or Flush) — the last moment a
// response header (Server-Timing) can still be added.
type statusRecorder struct {
	http.ResponseWriter
	status       int
	bytes        int64
	beforeHeader func()
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// committing marks the status line as decided: records code (or 200) on
// first commit and fires the beforeHeader hook exactly once.
func (r *statusRecorder) committing(code int) {
	if r.status == 0 {
		r.status = code
		if r.beforeHeader != nil {
			r.beforeHeader()
			r.beforeHeader = nil
		}
	}
}

func (r *statusRecorder) WriteHeader(code int) {
	r.committing(code)
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.committing(http.StatusOK)
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so SSE streams flush through
// the logging recorder (embedding promotes only the interface's own
// methods, so without this the recorder would hide the Flusher).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		r.committing(http.StatusOK)
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// the SSE handlers use to clear the server's write deadline on streams.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// RequestIDHeader is the correlation header: a client that sets it on a
// request finds the same value echoed on the response, so a load generator
// (or any caller with its own tracing) can match responses to the requests
// it issued and to the server's log lines. The spelling is the textproto
// canonical form ("Id", not "ID") — the form net/http has always put on
// the wire — so Header.Get/Set skip the per-call canonicalization copy;
// lookups remain case-insensitive for clients.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen caps the echoed header so an abusive client cannot make
// the server mirror arbitrarily large payloads into responses and logs.
const maxRequestIDLen = 128

// requestIDSeq numbers server-assigned request ids.
var requestIDSeq atomic.Int64

// RequestID echoes the client's X-Request-Id header onto the response, or
// assigns a sequential "balarch-<n>" id when the client sent none. It sets
// the response header before the inner handler runs, so Logging (inside it
// in the server's stack) can include the id in its line.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if len(id) > maxRequestIDLen {
				id = id[:maxRequestIDLen]
			}
			if id == "" {
				// Build the id in one allocation (the string copy); the
				// append chain itself stays on the stack.
				var buf [24]byte
				b := append(buf[:0], "balarch-"...)
				b = strconv.AppendInt(b, requestIDSeq.Add(1), 10)
				id = string(b)
			}
			w.Header().Set(RequestIDHeader, id)
			next.ServeHTTP(w, r)
		})
	}
}

// Recover converts a handler panic into a 500 envelope instead of killing
// the connection (and, under http.Server, the goroutine's request). The
// panic value and stack are logged; the client sees a stable error shape.
func Recover(log *slog.Logger, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if m != nil {
						m.Panic()
					}
					if log != nil {
						log.Error("panic in handler",
							"method", r.Method, "path", r.URL.Path, "panic", v)
					}
					writeError(w, &apiError{Status: http.StatusInternalServerError,
						Body: ErrorBody{"panic", "internal error"}})
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// Logging is Observe without tracing, kept for embedders that reuse the
// middleware pieces individually.
func Logging(log *slog.Logger, m *Metrics) Middleware {
	return Observe(log, m, nil)
}

// Observe is the per-request accounting middleware: it feeds the
// metrics' route counters, latency histogram, and in-flight gauge,
// makes the tracing decision (when tracer is non-nil), and emits one
// structured log line per request — at Debug for routine traffic, at
// Warn (unconditionally) for 5xx responses, so a production logger at
// the default Info level pays nothing per healthy request. The
// accounting is deferred so even a panic that escapes an inner Recover
// cannot leak the in-flight gauge.
//
// Tracing: an inbound sampled traceparent, a trace=1 query, or the
// tracer's head sampling captures the request; a captured (or
// traceparent-carrying) request gets a Traceparent response header, and
// the trace record rides the request context (obs.TraceFrom) for
// handlers to add stage spans. trace=1 additionally returns the spans
// recorded before the status line as a Server-Timing header.
func Observe(log *slog.Logger, m *Metrics, tracer *obs.Tracer) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			if m != nil {
				m.IncInFlight()
			}
			var tr *obs.Trace
			if tracer != nil {
				explicit := r.URL.RawQuery != "" && queryWantsTrace(r.URL.RawQuery)
				var echo string
				tr, echo = tracer.Start(r.Header.Get(obs.TraceparentHeader),
					w.Header().Get(RequestIDHeader), explicit)
				if echo != "" {
					w.Header().Set(obs.TraceparentHeader, echo)
				}
				if tr != nil {
					// Reassign r so the deferred routeLabel reads the same
					// request the mux stamps its pattern on.
					r = r.WithContext(obs.WithTrace(r.Context(), tr))
				}
			}
			rec := recorderPool.Get().(*statusRecorder)
			rec.ResponseWriter = w
			rec.status = 0
			rec.bytes = 0
			rec.beforeHeader = nil
			if tr.WantTiming() {
				rec.beforeHeader = func() {
					var buf [256]byte
					w.Header().Set("Server-Timing", string(tr.AppendServerTiming(buf[:0])))
				}
			}
			defer func() {
				if rec.status == 0 {
					rec.status = http.StatusOK
				}
				elapsed := time.Since(start)
				if m != nil {
					m.DecInFlight()
					m.Observe(routeLabel(r), rec.status, elapsed)
				}
				if tracer != nil {
					tracer.Finish(tr, routeLabel(r), rec.status, elapsed)
				}
				if log != nil && (rec.status >= 500 || log.Enabled(context.Background(), slog.LevelDebug)) {
					level := slog.LevelDebug
					if rec.status >= 500 {
						level = slog.LevelWarn
					}
					log.Log(context.Background(), level, "request",
						"method", r.Method, "path", r.URL.Path,
						"status", rec.status, "bytes", rec.bytes,
						"duration", elapsed,
						"request_id", rec.Header().Get(RequestIDHeader))
				}
				rec.ResponseWriter = nil
				rec.beforeHeader = nil
				recorderPool.Put(rec)
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// queryWantsTrace scans a raw query for the trace=1 opt-in without
// parsing (or allocating) the full query.
func queryWantsTrace(raw string) bool {
	for raw != "" {
		var kv string
		kv, raw, _ = strings.Cut(raw, "&")
		if kv == "trace=1" {
			return true
		}
	}
	return false
}

// routeLabel returns a request's metrics key: the matched mux pattern,
// method-qualified ("POST /v1/analyze") — a set fixed at registration
// time, so /v1/experiments/E2 and /v1/experiments/X4 share one series.
// Everything else collapses onto fixed tokens: requests that never
// reached the mux (rejected by the limiter, or killed by the deadline
// while queued) are "(unmatched)", and requests the catch-all absorbed
// (unknown path or wrong method) are "(unknown_route)". Nothing
// client-chosen — neither path nor method token — may become a key, or
// an abusive client could grow the metrics maps (and every /metrics
// response) without bound.
func routeLabel(r *http.Request) string {
	switch p := r.Pattern; p {
	case "":
		return "(unmatched)"
	case "/":
		return "(unknown_route)"
	default:
		return p
	}
}

// LimitConcurrency bounds the number of requests inside the handler at
// once: request n+1 waits for a slot rather than stampeding the kernel
// sweeps, and a request whose context dies (client disconnect, or the
// per-request deadline when WithTimeout wraps this limiter) while queued
// gets 503 instead of a slot. Paths listed in exempt bypass the limit —
// liveness probes must answer even when the server is saturated. n ≤ 0
// disables the limit.
func LimitConcurrency(n int, exempt ...string) Middleware {
	if n <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	slots := make(chan struct{}, n)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			for _, p := range exempt {
				if r.URL.Path == p {
					next.ServeHTTP(w, r)
					return
				}
			}
			select {
			case slots <- struct{}{}:
				// Fast path: a slot was free, so r.Context().Done() — whose
				// channel the http.Server materializes lazily, costing an
				// allocation — is never touched.
			default:
				select {
				case slots <- struct{}{}:
				case <-r.Context().Done():
					writeError(w, &apiError{Status: http.StatusServiceUnavailable,
						Body:              ErrorBody{"overloaded", "request cancelled while queued for a slot"},
						RetryAfterSeconds: 1})
					return
				}
			}
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		})
	}
}

// WithTimeout attaches a per-request deadline to the request context so a
// runaway sweep cannot hold a connection (and a concurrency slot) forever.
// d ≤ 0 disables the deadline.
func WithTimeout(d time.Duration) Middleware {
	if d <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}
