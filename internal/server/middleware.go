package server

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Middleware is a composable http.Handler wrapper. The server's stack is
// built with Chain; embedders mounting the API elsewhere can reuse the
// pieces individually.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in the middlewares, outermost first: Chain(h, a, b) serves
// a(b(h)).
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// statusRecorder captures the response status and size for logging and
// metrics. Instances are pooled by Logging — one lives exactly as long as
// the request it wraps, and its ResponseWriter is nilled before it goes
// back so a stale handler reference cannot write into the next request.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so SSE streams flush through
// the logging recorder (embedding promotes only the interface's own
// methods, so without this the recorder would hide the Flusher).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		if r.status == 0 {
			r.status = http.StatusOK
		}
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// the SSE handlers use to clear the server's write deadline on streams.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// RequestIDHeader is the correlation header: a client that sets it on a
// request finds the same value echoed on the response, so a load generator
// (or any caller with its own tracing) can match responses to the requests
// it issued and to the server's log lines. The spelling is the textproto
// canonical form ("Id", not "ID") — the form net/http has always put on
// the wire — so Header.Get/Set skip the per-call canonicalization copy;
// lookups remain case-insensitive for clients.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen caps the echoed header so an abusive client cannot make
// the server mirror arbitrarily large payloads into responses and logs.
const maxRequestIDLen = 128

// requestIDSeq numbers server-assigned request ids.
var requestIDSeq atomic.Int64

// RequestID echoes the client's X-Request-Id header onto the response, or
// assigns a sequential "balarch-<n>" id when the client sent none. It sets
// the response header before the inner handler runs, so Logging (inside it
// in the server's stack) can include the id in its line.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if len(id) > maxRequestIDLen {
				id = id[:maxRequestIDLen]
			}
			if id == "" {
				// Build the id in one allocation (the string copy); the
				// append chain itself stays on the stack.
				var buf [24]byte
				b := append(buf[:0], "balarch-"...)
				b = strconv.AppendInt(b, requestIDSeq.Add(1), 10)
				id = string(b)
			}
			w.Header().Set(RequestIDHeader, id)
			next.ServeHTTP(w, r)
		})
	}
}

// Recover converts a handler panic into a 500 envelope instead of killing
// the connection (and, under http.Server, the goroutine's request). The
// panic value and stack are logged; the client sees a stable error shape.
func Recover(log *slog.Logger, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if m != nil {
						m.Panic()
					}
					if log != nil {
						log.Error("panic in handler",
							"method", r.Method, "path", r.URL.Path, "panic", v)
					}
					writeError(w, &apiError{Status: http.StatusInternalServerError,
						Body: ErrorBody{"panic", "internal error"}})
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// Logging emits one structured line per request (method, path, status,
// bytes, duration) and feeds the metrics' route counters, latency
// histogram, and in-flight gauge. The accounting is deferred so even a
// panic that escapes an inner Recover cannot leak the in-flight gauge.
func Logging(log *slog.Logger, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			if m != nil {
				m.IncInFlight()
			}
			rec := recorderPool.Get().(*statusRecorder)
			rec.ResponseWriter = w
			rec.status = 0
			rec.bytes = 0
			defer func() {
				if rec.status == 0 {
					rec.status = http.StatusOK
				}
				elapsed := time.Since(start)
				if m != nil {
					m.DecInFlight()
					m.Observe(routeLabel(r), rec.status, elapsed)
				}
				if log != nil {
					log.Info("request",
						"method", r.Method, "path", r.URL.Path,
						"status", rec.status, "bytes", rec.bytes,
						"duration", elapsed,
						"request_id", rec.Header().Get(RequestIDHeader))
				}
				rec.ResponseWriter = nil
				recorderPool.Put(rec)
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// routeLabel returns a request's metrics key: the matched mux pattern,
// method-qualified ("POST /v1/analyze") — a set fixed at registration
// time, so /v1/experiments/E2 and /v1/experiments/X4 share one series.
// Everything else collapses onto fixed tokens: requests that never
// reached the mux (rejected by the limiter, or killed by the deadline
// while queued) are "(unmatched)", and requests the catch-all absorbed
// (unknown path or wrong method) are "(unknown_route)". Nothing
// client-chosen — neither path nor method token — may become a key, or
// an abusive client could grow the metrics maps (and every /metrics
// response) without bound.
func routeLabel(r *http.Request) string {
	switch p := r.Pattern; p {
	case "":
		return "(unmatched)"
	case "/":
		return "(unknown_route)"
	default:
		return p
	}
}

// LimitConcurrency bounds the number of requests inside the handler at
// once: request n+1 waits for a slot rather than stampeding the kernel
// sweeps, and a request whose context dies (client disconnect, or the
// per-request deadline when WithTimeout wraps this limiter) while queued
// gets 503 instead of a slot. Paths listed in exempt bypass the limit —
// liveness probes must answer even when the server is saturated. n ≤ 0
// disables the limit.
func LimitConcurrency(n int, exempt ...string) Middleware {
	if n <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	slots := make(chan struct{}, n)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			for _, p := range exempt {
				if r.URL.Path == p {
					next.ServeHTTP(w, r)
					return
				}
			}
			select {
			case slots <- struct{}{}:
				// Fast path: a slot was free, so r.Context().Done() — whose
				// channel the http.Server materializes lazily, costing an
				// allocation — is never touched.
			default:
				select {
				case slots <- struct{}{}:
				case <-r.Context().Done():
					writeError(w, &apiError{Status: http.StatusServiceUnavailable,
						Body:              ErrorBody{"overloaded", "request cancelled while queued for a slot"},
						RetryAfterSeconds: 1})
					return
				}
			}
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		})
	}
}

// WithTimeout attaches a per-request deadline to the request context so a
// runaway sweep cannot hold a connection (and a concurrency slot) forever.
// d ≤ 0 disables the deadline.
func WithTimeout(d time.Duration) Middleware {
	if d <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}
