package server

// The async jobs surface: POST /v1/jobs accepts the same {op, request}
// envelope as a batch item but executes it durably — journaled to a WAL
// before the ack, run by queue workers through the same core operations
// the synchronous endpoints use, result stored content-addressed so an
// identical request (even after a restart) never re-executes. GET
// /v1/jobs lists, GET /v1/jobs/{id} polls, GET /v1/jobs/{id}/result
// returns the byte-identical body the synchronous endpoint would have
// written, DELETE /v1/jobs/{id} cancels a live job or forgets a terminal
// one. Admission is memory-aware: every job carries an estimated
// footprint (see estimateJobCost), and a submit that would push the live
// sum past the budget is 429 with Retry-After.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"balarch/internal/experiments"
	"balarch/internal/jobs"
)

// jobOps lists the operations POST /v1/jobs accepts, for error messages.
const jobOpsList = "analyze, rebalance, roofline, sweep, experiment, batch"

// JobSubmitRequest is the POST /v1/jobs body: the batch-item envelope,
// executed asynchronously.
type JobSubmitRequest struct {
	// Op selects the operation ("analyze", "rebalance", "roofline",
	// "sweep", "experiment", "batch").
	Op string `json:"op"`
	// Request is that operation's request body.
	Request json.RawMessage `json:"request"`
	// Priority is the job's pick class within its tenant: "low",
	// "normal" (the default when absent), or "high". Fairness across
	// tenants wins over priority: a high-priority flood cannot jump the
	// scheduler's round-robin ring.
	Priority string `json:"priority,omitempty"`
}

// JobStatusDTO is one job's wire shape, returned by submit, get, and
// list.
type JobStatusDTO struct {
	ID string `json:"id"`
	Op string `json:"op"`
	// State is queued, running, done, failed, or canceled.
	State string `json:"state"`
	// Cached reports the job completed from the content-addressed store
	// without executing.
	Cached bool `json:"cached,omitempty"`
	// CostBytes is the admission-control footprint estimate.
	CostBytes int64 `json:"cost_bytes"`
	// ResultKey is the content address of a done job's result.
	ResultKey string `json:"result_key,omitempty"`
	// Error is a failed job's cause.
	Error string `json:"error,omitempty"`
	// Priority is the job's pick class; omitted for normal, so
	// priority-absent submissions keep the pre-priority wire format.
	Priority    string `json:"priority,omitempty"`
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// JobListResponse is the GET /v1/jobs body, newest submission first.
// NextCursor is present only when a ?limit= page has more results —
// pass it back as ?cursor= to resume; its omission keeps unpaginated
// responses byte-identical to the pre-pagination wire format.
type JobListResponse struct {
	Jobs       []JobStatusDTO `json:"jobs"`
	NextCursor string         `json:"next_cursor,omitempty"`
}

// JobDeleteResponse is the DELETE /v1/jobs/{id} body: the job's state
// after the call — a live job moves toward canceled, a terminal job
// reports "deleted".
type JobDeleteResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// jobStatusDTO shapes one queue job for the wire.
func jobStatusDTO(j jobs.Job) JobStatusDTO {
	dto := JobStatusDTO{
		ID:        j.ID,
		Op:        j.Kind,
		State:     string(j.State),
		Cached:    j.Cached,
		CostBytes: j.Cost,
		Error:     j.Error,
		Priority:  string(j.Priority),
	}
	if j.State == jobs.Done {
		dto.ResultKey = j.Key
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	dto.SubmittedAt = stamp(j.SubmittedAt)
	dto.StartedAt = stamp(j.StartedAt)
	dto.FinishedAt = stamp(j.FinishedAt)
	return dto
}

// jobsQueue returns the queue or the error envelope explaining why there
// is none (daemon started without a store dir, or the open failed).
func (s *Server) jobsQueue() (*jobs.Queue, *apiError) {
	if s.queue != nil {
		return s.queue, nil
	}
	if s.jobsErr != nil {
		return nil, internalError(s.jobsErr)
	}
	return nil, notFound("jobs_disabled",
		"async jobs are not enabled on this server (start it with a store directory, e.g. balarchd -store-dir)")
}

// prepareJob validates a job envelope and returns the canonical request
// bytes (the decoded DTO re-marshaled, so equal requests have equal
// bytes whatever their whitespace or field order) plus the admission
// footprint estimate. Validation happens here, synchronously: a request
// the synchronous endpoint would reject with 4xx is rejected at submit,
// not accepted and failed later.
func (s *Server) prepareJob(op string, raw json.RawMessage) (canonical []byte, cost int64, apiErr *apiError) {
	if len(raw) == 0 {
		return nil, 0, badRequest("bad_json", "job has no request body")
	}
	switch op {
	case "analyze":
		req, apiErr := decodeJobDTO[AnalyzeRequest](raw)
		if apiErr != nil {
			return nil, 0, apiErr
		}
		if _, apiErr := resolveComputation(req.Computation); apiErr != nil {
			return nil, 0, apiErr
		}
		return mustCanonical(req), jobBaseCost, nil
	case "rebalance":
		req, apiErr := decodeJobDTO[RebalanceRequest](raw)
		if apiErr != nil {
			return nil, 0, apiErr
		}
		if _, apiErr := resolveComputation(req.Computation); apiErr != nil {
			return nil, 0, apiErr
		}
		return mustCanonical(req), jobBaseCost, nil
	case "roofline":
		req, apiErr := decodeJobDTO[RooflineRequest](raw)
		if apiErr != nil {
			return nil, 0, apiErr
		}
		if len(req.Computations) == 0 {
			return nil, 0, unprocessable("invalid_argument", "computations must list at least one entry")
		}
		for _, dto := range req.Computations {
			if _, apiErr := resolveComputation(dto); apiErr != nil {
				return nil, 0, apiErr
			}
		}
		return mustCanonical(req), jobBaseCost, nil
	case "sweep":
		req, apiErr := decodeJobDTO[SweepRequest](raw)
		if apiErr != nil {
			return nil, 0, apiErr
		}
		if _, apiErr := validateSweep(req); apiErr != nil {
			return nil, 0, apiErr
		}
		return mustCanonical(req), estimateSweepCost(req), nil
	case "experiment":
		req, apiErr := decodeJobDTO[ExperimentRef](raw)
		if apiErr != nil {
			return nil, 0, apiErr
		}
		if _, err := experiments.Get(req.ID); err != nil {
			return nil, 0, notFound("unknown_experiment", "%v", err)
		}
		return mustCanonical(req), experimentJobCost, nil
	case "batch":
		req, apiErr := decodeJobDTO[BatchRequest](raw)
		if apiErr != nil {
			return nil, 0, apiErr
		}
		if len(req.Requests) == 0 {
			return nil, 0, unprocessable("invalid_argument", "requests must list at least one item")
		}
		if len(req.Requests) > s.opts.MaxBatch {
			return nil, 0, unprocessable("batch_too_large",
				"batch of %d exceeds the limit of %d", len(req.Requests), s.opts.MaxBatch)
		}
		cost := int64(0)
		for i, item := range req.Requests {
			if item.Op == "batch" {
				return nil, 0, unprocessable("invalid_argument",
					"batch item %d: batches do not nest", i)
			}
			_, c, apiErr := s.prepareJob(item.Op, item.Request)
			if apiErr != nil {
				// A batch *job* is admitted whole or not at all —
				// unlike the synchronous endpoint's per-item envelopes,
				// there is no caller waiting to read partial failures.
				return nil, 0, unprocessable("invalid_argument",
					"batch item %d (%s): %s", i, item.Op, apiErr.Body.Message)
			}
			cost += c
		}
		return mustCanonical(req), cost, nil
	case "":
		return nil, 0, badRequest("invalid_argument", "job is missing op (one of %s)", jobOpsList)
	default:
		return nil, 0, badRequest("unknown_op", "unknown job op %q (one of %s)", op, jobOpsList)
	}
}

// decodeJobDTO strict-decodes a job request body into its DTO.
func decodeJobDTO[T any](raw json.RawMessage) (*T, *apiError) {
	v := new(T)
	if apiErr := strictDecodeJSON(bytes.NewReader(raw), v); apiErr != nil {
		return nil, apiErr
	}
	return v, nil
}

// mustCanonical re-marshals a decoded DTO; the DTOs are plain data, so
// failure is a programming error (and would have failed the decode).
func mustCanonical(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// Admission-control footprint model (documented in DESIGN.md §6): every
// job holds at least the base (DTO, response buffer, bookkeeping); the
// kernels that materialize data add their working set — the sort kernel
// sorts m² eight-byte keys per point, the grid kernel relaxes size^dim
// eight-byte cells, the counting kernels touch O(n) words; an experiment
// is a bundle of sweeps, budgeted flat.
const (
	jobBaseCost       = 64 << 10
	experimentJobCost = 16 << 20
	wordBytes         = 8
)

// estimateSweepCost applies the model to one (validated) sweep request.
func estimateSweepCost(req *SweepRequest) int64 {
	cost := int64(jobBaseCost)
	switch req.Kernel {
	case "sort":
		for _, m := range req.Params {
			cost += int64(m) * int64(m) * wordBytes
		}
	case "grid":
		cells := int64(1)
		for d := 0; d < req.Dim; d++ {
			cells *= int64(req.Size)
		}
		cost += cells * wordBytes
	default:
		cost += int64(req.N) * wordBytes
	}
	return cost
}

// runJobOp executes one job op through the same cores the synchronous
// endpoints and /v1/batch use, so an async result can never drift from
// the synchronous answer.
func (s *Server) runJobOp(ctx context.Context, op string, raw json.RawMessage) (any, *apiError) {
	switch op {
	case "analyze":
		return decodeAndRun(ctx, raw, s.analyze)
	case "rebalance":
		return decodeAndRun(ctx, raw, s.rebalance)
	case "roofline":
		return decodeAndRun(ctx, raw, s.roofline)
	case "sweep":
		return decodeAndRun(ctx, raw, s.sweep)
	case "experiment":
		return decodeAndRun(ctx, raw, s.experimentOp)
	case "batch":
		return decodeAndRun(ctx, raw, s.batch)
	default:
		return nil, badRequest("unknown_op", "unknown job op %q", op)
	}
}

// jobExecutor adapts the server cores to the queue's Exec signature. The
// returned bytes use the exact encoding writeJSON puts on the wire, so a
// stored result is byte-identical to the synchronous endpoint's
// response body.
func (s *Server) jobExecutor() jobs.Exec {
	return func(ctx context.Context, kind string, req json.RawMessage) ([]byte, error) {
		// The job id is a pure function of (kind, canonical request), so
		// the executor recomputes it to route engine progress onto the
		// job's SSE topic without widening the Exec signature.
		id, _ := jobs.IDFor(kind, req)
		ctx = s.jobProgressContext(ctx, id)
		body, apiErr := s.runJobOp(s.sweepContext(ctx), kind, req)
		if apiErr != nil {
			return nil, apiErr
		}
		data, err := encodeJSONBody(body)
		releaseBody(body) // pooled responses go back once their bytes are stored
		return data, err
	}
}

// --- handlers ---

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	q, apiErr := s.jobsQueue()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	q.GC() // opportunistic TTL sweep; cheap when nothing is expired
	var req JobSubmitRequest
	if apiErr := decodeStrict(w, r, s.opts.MaxBodyBytes, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	canonical, cost, apiErr := s.prepareJob(req.Op, req.Request)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	prio, perr := jobs.ParsePriority(req.Priority)
	if perr != nil {
		writeError(w, unprocessable("invalid_priority",
			"priority %q is not one of low, normal, high", req.Priority))
		return
	}
	var tenantName string
	if tn := tenantFrom(r.Context()); tn != nil {
		tenantName = tn.name
	}
	j, _, err := q.SubmitFor(tenantName, req.Op, canonical, cost, prio)
	if err != nil {
		var over *jobs.ErrOverBudget
		if errors.As(err, &over) && over.Tenant != "" {
			s.metrics.TenantOverBudget(over.Tenant)
		}
		writeError(w, asJobsError(err))
		return
	}
	status := http.StatusAccepted
	if j.State == jobs.Done {
		// Already complete (deduplicated against the store or a prior
		// identical job): the result is fetchable right now.
		status = http.StatusOK
	}
	writeJSONStatus(w, status, jobStatusDTO(j))
}

// maxJobPageSize caps ?limit= so one page cannot be asked to materialize
// an unbounded DTO slice anyway (limit 0 — no pagination — still lists
// everything, the pre-pagination contract).
const maxJobPageSize = 1000

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q, apiErr := s.jobsQueue()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	q.GC()
	query := r.URL.Query()
	stateFilter := query.Get("state")
	limit := 0
	if ls := query.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, badRequest("invalid_argument", "limit must be a non-negative integer, got %q", ls))
			return
		}
		limit = min(n, maxJobPageSize)
	}
	var (
		afterT  int64
		afterID string
		paging  bool
	)
	if cs := query.Get("cursor"); cs != "" {
		t, id, apiErr := decodeJobCursor(cs)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		afterT, afterID, paging = t, id, true
	}
	resp := JobListResponse{Jobs: []JobStatusDTO{}}
	var last jobs.Job
	for _, j := range q.List() {
		if stateFilter != "" && string(j.State) != stateFilter {
			continue
		}
		if paging && !afterCursor(j, afterT, afterID) {
			continue
		}
		if limit > 0 && len(resp.Jobs) == limit {
			// One more matching job exists beyond the page: hand back
			// the page's last position as the resume token.
			resp.NextCursor = encodeJobCursor(last)
			break
		}
		resp.Jobs = append(resp.Jobs, jobStatusDTO(j))
		last = j
	}
	writeJSON(w, resp)
}

// The cursor is the position of the last job already delivered —
// (submission nanos, id), matching the list's sort order (SubmittedAt
// descending, id ascending within a tie) — base64url-encoded as
// "nanos.id". Position, not offset: jobs finishing or being GC'd
// between pages can never skip or repeat a survivor.

func encodeJobCursor(j jobs.Job) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(strconv.FormatInt(j.SubmittedAt.UnixNano(), 10) + "." + j.ID))
}

func decodeJobCursor(s string) (nanos int64, id string, apiErr *apiError) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err == nil {
		if ts, rest, ok := strings.Cut(string(raw), "."); ok && rest != "" {
			if n, perr := strconv.ParseInt(ts, 10, 64); perr == nil {
				return n, rest, nil
			}
		}
	}
	return 0, "", badRequest("bad_cursor", "cursor is not a token this API issued")
}

// afterCursor reports whether j sorts strictly after the cursor position
// in the list order (SubmittedAt descending, id ascending).
func afterCursor(j jobs.Job, nanos int64, id string) bool {
	jt := j.SubmittedAt.UnixNano()
	if jt != nanos {
		return jt < nanos
	}
	return j.ID > id
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	q, apiErr := s.jobsQueue()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	j, err := q.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, asJobsError(err))
		return
	}
	writeJSON(w, jobStatusDTO(j))
}

// handleJobResult serves a done job's stored result verbatim — the bytes
// the synchronous endpoint would have written for the same request. A
// job still in flight is 409 (poll the status endpoint), a failed one
// carries its failure as a 422 envelope, a canceled one 409.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	q, apiErr := s.jobsQueue()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	id := r.PathValue("id")
	j, err := q.Get(id)
	if err != nil {
		writeError(w, asJobsError(err))
		return
	}
	switch j.State {
	case jobs.Done:
		data, ok, gerr := s.store.Get(j.Key)
		if gerr != nil {
			writeError(w, internalError(gerr))
			return
		}
		if !ok {
			writeError(w, notFound("result_gone",
				"job %s is done but its result %s is no longer in the store", id, j.Key))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	case jobs.Failed:
		writeError(w, unprocessable("job_failed", "job %s failed: %s", id, j.Error))
	case jobs.Canceled:
		writeError(w, conflict("job_canceled", "job %s was canceled", id))
	default:
		writeError(w, conflict("not_done",
			"job %s is %s; poll GET /v1/jobs/%s until it is done", id, j.State, id))
	}
}

// handleJobDelete cancels a live job or forgets a terminal one.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	q, apiErr := s.jobsQueue()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	id := r.PathValue("id")
	j, err := q.Get(id)
	if err != nil {
		writeError(w, asJobsError(err))
		return
	}
	if !j.State.Terminal() {
		j, err = q.Cancel(id)
		if err != nil {
			writeError(w, asJobsError(err))
			return
		}
		writeJSON(w, JobDeleteResponse{ID: id, State: string(j.State)})
		return
	}
	if err := q.Delete(id); err != nil {
		writeError(w, asJobsError(err))
		return
	}
	writeJSON(w, JobDeleteResponse{ID: id, State: "deleted"})
}

// asJobsError maps queue errors to the envelope: unknown ids are 404,
// over-budget is 429 with Retry-After, a closed (draining) queue is 503,
// anything else 500.
func asJobsError(err error) *apiError {
	var over *jobs.ErrOverBudget
	switch {
	case errors.As(err, &over):
		scope := "the"
		if over.Tenant != "" {
			// The tenant partition refused, not the global pool: say so,
			// so a throttled tenant doesn't conclude the server is full.
			scope = fmt.Sprintf("tenant %q's", over.Tenant)
		}
		ae := &apiError{
			Status: http.StatusTooManyRequests,
			Body: ErrorBody{"over_budget", fmt.Sprintf(
				"job admission denied: footprint %d B would exceed %s %d B budget (%d B in use); retry after %v",
				over.Cost, scope, over.Budget, over.InUse, over.RetryAfter)},
		}
		ae.RetryAfterSeconds = int(math.Ceil(over.RetryAfter.Seconds()))
		if ae.RetryAfterSeconds < 1 {
			ae.RetryAfterSeconds = 1
		}
		return ae
	case errors.Is(err, jobs.ErrNotFound):
		return notFound("unknown_job", "%v", err)
	case errors.Is(err, jobs.ErrNotTerminal):
		// A live job deleted concurrently with an identical resubmit
		// reviving it: a state conflict, not a server fault.
		return conflict("not_terminal", "%v", err)
	case errors.Is(err, jobs.ErrClosed):
		return &apiError{Status: http.StatusServiceUnavailable,
			Body:              ErrorBody{"draining", "the job queue is shutting down"},
			RetryAfterSeconds: 1}
	default:
		return internalError(err)
	}
}
