package experiments

import (
	"context"
	"fmt"
	"math"

	"balarch/internal/kernels"
	"balarch/internal/memsim"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// RunE12Cache replays naive and blocked matmul address traces through LRU,
// OPT and direct-mapped caches, the executable form of the paper's §1
// motivation: a local memory only reduces I/O when the computation is
// decomposed to exploit it, and the blocked schedule's measured traffic
// matches the §3.1 counter model.
func RunE12Cache(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "E12", Title: "cache simulation of naive vs blocked matmul", PaperLocus: "§1 (motivation), §3.1"}
	n, b := 48, 8
	naive, err := memsim.NaiveMatMulTrace(n)
	if err != nil {
		return nil, err
	}
	blocked, err := memsim.BlockedMatMulTrace(n, b)
	if err != nil {
		return nil, err
	}

	tb := textplot.NewTable("cache (words)", "naive LRU misses", "blocked LRU misses", "blocked OPT misses", "naive/blocked")
	caches := []int{32, 96, 256, 1024, 4096}
	var nRows [][]float64
	var atWorkingSet float64
	for _, cap := range caches {
		rn, err := memsim.SimulateLRU(naive, cap)
		if err != nil {
			return nil, err
		}
		rb, err := memsim.SimulateLRU(blocked, cap)
		if err != nil {
			return nil, err
		}
		ro, err := memsim.SimulateOPT(blocked, cap)
		if err != nil {
			return nil, err
		}
		gain := float64(rn.Misses) / float64(rb.Misses)
		if cap == 96 {
			atWorkingSet = gain
		}
		tb.AddRow(cap, rn.Misses, rb.Misses, ro.Misses, f2(gain))
		nRows = append(nRows, []float64{float64(cap), float64(rn.Misses), float64(rb.Misses), float64(ro.Misses)})
	}
	r.Tables = append(r.Tables, tb.String())
	r.Series = append(r.Series, report.Series{
		Name:    "cache_misses",
		Columns: []string{"cache_words", "naive_lru", "blocked_lru", "blocked_opt"},
		Rows:    nRows,
	})

	r.AddClaim(
		"with a cache of ≈ b²+2b words, the blocked schedule's traffic is far below the naive schedule's",
		"naive/blocked misses ≫ 1 at cache = 96",
		fmt.Sprintf("naive/blocked = %.3g× at cache 96", atWorkingSet),
		atWorkingSet >= 2,
	)

	// The blocked schedule's LRU traffic must match the §3.1 counter
	// model: Cio = 2N³/b + N² reads plus N² writes at block size b.
	rb, err := memsim.SimulateLRU(blocked, 96)
	if err != nil {
		return nil, err
	}
	modelCio, err := kernels.CountBlockedMatMul(kernels.MatMulSpec{N: n, Block: b})
	if err != nil {
		return nil, err
	}
	want := float64(modelCio.Reads + modelCio.Writes)
	got := float64(rb.Misses)
	rel := math.Abs(got-want) / want
	r.AddClaim(
		"measured cache traffic of the blocked schedule matches the counter model's Cio",
		fmt.Sprintf("Cio ≈ %.0f words", want),
		fmt.Sprintf("LRU misses = %.0f (%.1f%% off)", got, rel*100),
		rel < 0.5,
	)

	// OPT never loses to LRU; both sit above the compulsory floor.
	floor := float64(memsim.DistinctWords(blocked))
	ro, err := memsim.SimulateOPT(blocked, 96)
	if err != nil {
		return nil, err
	}
	r.AddClaim(
		"replacement-policy sanity: compulsory ≤ OPT ≤ LRU",
		"ordering holds",
		fmt.Sprintf("floor %.0f ≤ OPT %d ≤ LRU %d", floor, ro.Misses, rb.Misses),
		floor <= float64(ro.Misses) && ro.Misses <= rb.Misses,
	)
	return r, nil
}
