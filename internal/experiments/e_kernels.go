package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"

	"balarch/internal/fit"
	"balarch/internal/kernels"
	"balarch/internal/model"
	"balarch/internal/opcount"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// Sweep parameters. N is chosen ≫ the largest block so the measured ratios
// sit in the paper's asymptotic regime; Count variants make the large sizes
// cheap.
var (
	matmulN      = 32768
	matmulBlocks = []int{8, 16, 32, 64, 128, 256, 512, 1024}

	luN      = 4096
	luBlocks = []int{16, 32, 64, 128, 256, 512}

	fftN      = 1 << 24
	fftBlocks = []int{4, 8, 16, 64, 256, 4096} // log₂B divides log₂N: full passes

	sortMs   = []int{16, 32, 64, 128, 256, 512}
	sortSeed = int64(1985)

	iobN      = 4096
	iobChunks = []int{16, 32, 64, 128, 256, 512, 1024, 2048}
)

// matmulSweep measures the §3.1 blocked scheme. Like every sweep helper
// below, it is memoized per suite run via the context's sweep cache, because
// E1 re-measures the same curves the per-kernel experiments measure.
func matmulSweep(ctx context.Context) ([]kernels.RatioPoint, error) {
	return cachedSweep(ctx, "matmul", func() ([]kernels.RatioPoint, error) {
		return kernels.MatMulRatioSweep(ctx, matmulN, matmulBlocks)
	})
}

// RunE02MatMul reproduces §3.1: R(M) = Θ(√M), hence M_new = α²·M_old.
func RunE02MatMul(ctx context.Context) (*report.Result, error) {
	r := &report.Result{ID: "E2", Title: "matrix multiplication balance", PaperLocus: "§3.1, eq. (2)"}
	pts, err := matmulSweep(ctx)
	if err != nil {
		return nil, err
	}
	return finishPowerLawExperiment(r, pts, 0.5, 2.0, "matrix multiplication")
}

// luSweep measures the §3.2 blocked triangularization.
func luSweep(ctx context.Context) ([]kernels.RatioPoint, error) {
	return cachedSweep(ctx, "lu", func() ([]kernels.RatioPoint, error) {
		return kernels.LURatioSweep(ctx, luN, luBlocks)
	})
}

// RunE03Triangularization reproduces §3.2: R(M) = Θ(√M), M_new = α²·M_old.
func RunE03Triangularization(ctx context.Context) (*report.Result, error) {
	r := &report.Result{ID: "E3", Title: "matrix triangularization balance", PaperLocus: "§3.2"}
	pts, err := luSweep(ctx)
	if err != nil {
		return nil, err
	}
	return finishPowerLawExperiment(r, pts, 0.5, 2.0, "matrix triangularization")
}

// finishPowerLawExperiment fits a ratio sweep expected to follow a power law
// with the given exponent, checks the growth-law degree, and fills the
// report.
func finishPowerLawExperiment(r *report.Result, pts []kernels.RatioPoint, wantExp, wantDegree float64, name string) (*report.Result, error) {
	xs, ys := ratioXY(pts)
	sel, err := fit.SelectModel(xs, ys)
	if err != nil {
		return nil, err
	}
	r.AddClaim(
		fmt.Sprintf("%s achieves R(M) = Θ(M^%.3g)", name, wantExp),
		fmt.Sprintf("power law, exponent %.3g", wantExp),
		fmt.Sprintf("best model %s, %s", sel.Best, sel.Power.String()),
		sel.Best == fit.ModelPower && within(sel.Power.Exponent, wantExp, 0.9, 1.1),
	)
	for _, alpha := range []float64{2, 4} {
		mOld := float64(pts[1].Memory)
		got := invertFit(sel, alpha, mOld)
		want := math.Pow(alpha, wantDegree) * mOld
		r.AddClaim(
			fmt.Sprintf("α=%g rebalance needs M_new = α^%g·M_old", alpha, wantDegree),
			fmt.Sprintf("M_new/M_old = %.4g", want/mOld),
			fmt.Sprintf("M_new/M_old = %.4g (from fitted curve)", got/mOld),
			within(got, want, 0.7, 1.45),
		)
	}
	r.Tables = append(r.Tables, ratioTable(pts))
	r.Figures = append(r.Figures, ratioChart(r.Title+" — measured ratio vs memory", pts))
	r.Series = append(r.Series, ratioSeries("ratio", pts))
	return r, nil
}

// gridSweeps returns, per dimension, tile volumes and measured ratio points.
type gridSweep struct {
	dim   int
	tiles []int
	size  int
	pts   []kernels.RatioPoint // Memory field holds the tile volume s^d
}

func gridSweeps(ctx context.Context) ([]gridSweep, error) {
	cfgs := []struct {
		dim, size int
		tiles     []int
	}{
		{1, 1 << 20, []int{64, 128, 256, 512, 1024, 2048, 4096}},
		{2, 4096, []int{8, 16, 32, 64, 128}},
		{3, 512, []int{4, 8, 16, 32}},
		{4, 120, []int{3, 4, 6}},
	}
	sweeps := make([]gridSweep, len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		// Each dimension is one kernels.Sweep over its tile sizes, keyed by
		// the E4 convention of plotting against the tile *volume* s^d.
		pts, err := cachedSweep(ctx, fmt.Sprintf("grid_d%d", cfg.dim), func() ([]kernels.RatioPoint, error) {
			pts, _, err := kernels.Sweep(ctx, cfg.tiles, func(_ context.Context, tile int, c *opcount.Counter) (int, error) {
				spec := kernels.GridSpec{Dim: cfg.dim, Size: cfg.size, Tile: tile, Iters: 1}
				tot, err := kernels.CountRelaxTiled(spec)
				if err != nil {
					return 0, err
				}
				c.Ops64(tot.Ops)
				c.Read64(tot.Reads)
				c.Write64(tot.Writes)
				return spec.TileVolume(), nil
			})
			return pts, err
		})
		if err != nil {
			return nil, err
		}
		sweeps[i] = gridSweep{dim: cfg.dim, tiles: cfg.tiles, size: cfg.size, pts: pts}
	}
	return sweeps, nil
}

// RunE04Grid reproduces §3.3: R(M) = Θ(M^(1/d)), hence M_new = α^d·M_old.
func RunE04Grid(ctx context.Context) (*report.Result, error) {
	r := &report.Result{ID: "E4", Title: "d-dimensional grid relaxation balance", PaperLocus: "§3.3"}
	sweeps, err := gridSweeps(ctx)
	if err != nil {
		return nil, err
	}
	tb := textplot.NewTable("d", "fitted exponent", "want 1/d", "R²", "α=2 M_new/M_old", "want 2^d")
	ch := textplot.NewChart("grid relaxation — ratio vs tile volume (log-log)")
	ch.LogX, ch.LogY = true, true
	ch.XLabel, ch.YLabel = "tile volume M (words)", "Ccomp/Cio"
	for _, sw := range sweeps {
		xs, ys := ratioXY(sw.pts)
		sel, err := fit.SelectModel(xs, ys)
		if err != nil {
			return nil, err
		}
		want := 1 / float64(sw.dim)
		// Boundary tiles dilute the exponent slightly; d=4 runs at a
		// small grid, so allow a wider band there.
		lo, hi := 0.9, 1.12
		if sw.dim == 4 {
			lo, hi = 0.8, 1.3
		}
		pass := sel.Best == fit.ModelPower && within(sel.Power.Exponent, want, lo, hi)
		r.AddClaim(
			fmt.Sprintf("%d-D grid achieves R(M) = Θ(M^(1/%d))", sw.dim, sw.dim),
			fmt.Sprintf("power law, exponent %.3g", want),
			fmt.Sprintf("best model %s, exponent %.4g (R²=%.4f)", sel.Best, sel.Power.Exponent, sel.Power.R2),
			pass,
		)
		mOld := float64(sw.pts[0].Memory)
		mNew := invertFit(sel, 2, mOld)
		wantGrowth := math.Pow(2, float64(sw.dim))
		tb.AddRow(sw.dim, sel.Power.Exponent, want, sel.Power.R2, mNew/mOld, wantGrowth)
		r.AddClaim(
			fmt.Sprintf("%d-D grid: α=2 rebalance needs M_new = 2^%d·M_old", sw.dim, sw.dim),
			fmt.Sprintf("M_new/M_old = %g", wantGrowth),
			fmt.Sprintf("M_new/M_old = %.4g", mNew/mOld),
			within(mNew/mOld, wantGrowth, 0.55, 1.9),
		)
		ch.Add(textplot.Series{Name: fmt.Sprintf("d=%d", sw.dim), X: xs, Y: ys})
		r.Series = append(r.Series, ratioSeries(fmt.Sprintf("grid_d%d", sw.dim), sw.pts))
	}
	r.Tables = append(r.Tables, tb.String())
	r.Figures = append(r.Figures, ch.String())
	return r, nil
}

// fftSweep measures the §3.4 blocked FFT.
func fftSweep(ctx context.Context) ([]kernels.RatioPoint, error) {
	return cachedSweep(ctx, "fft", func() ([]kernels.RatioPoint, error) {
		return kernels.FFTRatioSweep(ctx, fftN, fftBlocks)
	})
}

// RunE05FFT reproduces §3.4: R(M) = Θ(log₂M), hence M_new = M_old^α, and
// renders the Fig. 2 decomposition for N=16, M=4.
func RunE05FFT(ctx context.Context) (*report.Result, error) {
	r := &report.Result{ID: "E5", Title: "FFT balance", PaperLocus: "§3.4, Fig. 2"}
	pts, err := fftSweep(ctx)
	if err != nil {
		return nil, err
	}
	if err := finishLogLawExperiment(r, pts, 2.5, "FFT"); err != nil {
		return nil, err
	}

	// Fig. 2: the 16-point FFT decomposed for M=4.
	dec, err := kernels.DecomposeFFT(kernels.FFTSpec{N: 16, Block: 4})
	if err != nil {
		return nil, err
	}
	passes := make([][]textplot.FFTBlock, len(dec.Passes))
	for i, p := range dec.Passes {
		for _, blk := range p.Blocks {
			passes[i] = append(passes[i], blk)
		}
	}
	r.Figures = append(r.Figures, textplot.Fig2FFT(16, passes))
	r.AddClaim(
		"Fig. 2: the 16-point FFT with M=4 decomposes into 2 passes of 4 blocks",
		"2 passes × 4 blocks, shuffled between passes",
		fmt.Sprintf("%d passes × %d blocks", len(dec.Passes), len(dec.Passes[0].Blocks)),
		len(dec.Passes) == 2 && len(dec.Passes[0].Blocks) == 4,
	)
	return r, nil
}

// sortSweep measures the §3.5 external sort on random keys.
func sortSweep(ctx context.Context) ([]kernels.RatioPoint, error) {
	return cachedSweep(ctx, "sort", func() ([]kernels.RatioPoint, error) {
		return kernels.SortRatioSweep(ctx, sortMs, sortSeed)
	})
}

// RunE06Sorting reproduces §3.5: R(M) = Θ(log₂M), hence M_new = M_old^α.
func RunE06Sorting(ctx context.Context) (*report.Result, error) {
	r := &report.Result{ID: "E6", Title: "external sorting balance", PaperLocus: "§3.5"}
	pts, err := sortSweep(ctx)
	if err != nil {
		return nil, err
	}
	if err := finishLogLawExperiment(r, pts, 1.0, "sorting"); err != nil {
		return nil, err
	}
	return r, nil
}

// finishLogLawExperiment fits a ratio sweep expected to be logarithmic with
// roughly the given scale, checks the M^α law on the fitted curve, and fills
// the report.
func finishLogLawExperiment(r *report.Result, pts []kernels.RatioPoint, wantScale float64, name string) error {
	xs, ys := ratioXY(pts)
	sel, err := fit.SelectModel(xs, ys)
	if err != nil {
		return err
	}
	r.AddClaim(
		fmt.Sprintf("%s achieves R(M) = Θ(log₂M)", name),
		fmt.Sprintf("logarithmic, scale ≈ %.3g", wantScale),
		fmt.Sprintf("best model %s, %s", sel.Best, sel.Log.String()),
		sel.Best == fit.ModelLog && within(sel.Log.Scale, wantScale, 0.7, 1.35),
	)
	// The M^α law: exponent of growth log M_new / log M_old ≈ α.
	alpha := 1.5
	mOld := float64(pts[2].Memory)
	mNew := invertFit(sel, alpha, mOld)
	gotExp := math.Log(mNew) / math.Log(mOld)
	r.AddClaim(
		fmt.Sprintf("α=%.2g rebalance needs M_new = M_old^α (exponential growth)", alpha),
		fmt.Sprintf("log M_new / log M_old = %.3g", alpha),
		fmt.Sprintf("log M_new / log M_old = %.4g", gotExp),
		within(gotExp, alpha, 0.8, 1.25),
	)
	r.Tables = append(r.Tables, ratioTable(pts))
	r.Figures = append(r.Figures, ratioChart(r.Title+" — measured ratio vs memory", pts))
	r.Series = append(r.Series, ratioSeries("ratio", pts))
	return nil
}

// iobSweeps measures the §3.6 kernels.
func iobSweeps(ctx context.Context) (mv, ts []kernels.RatioPoint, err error) {
	mv, err = cachedSweep(ctx, "matvec", func() ([]kernels.RatioPoint, error) {
		return kernels.MatVecRatioSweep(ctx, iobN, iobChunks)
	})
	if err != nil {
		return nil, nil, err
	}
	ts, err = cachedSweep(ctx, "trisolve", func() ([]kernels.RatioPoint, error) {
		return kernels.TriSolveRatioSweep(ctx, iobN, iobChunks)
	})
	return mv, ts, err
}

// spmvSweep measures the §4 sparse remark.
func spmvSweep(ctx context.Context) ([]kernels.RatioPoint, error) {
	return cachedSweep(ctx, "spmv", func() ([]kernels.RatioPoint, error) {
		return kernels.SpMVRatioSweep(ctx, iobN, 8, iobChunks)
	})
}

// RunE07IOBound reproduces §3.6: matvec and triangular solve have R(M) =
// Θ(1); no memory size rebalances a PE whose C/IO exceeds that constant.
func RunE07IOBound(ctx context.Context) (*report.Result, error) {
	r := &report.Result{ID: "E7", Title: "I/O-bounded computations", PaperLocus: "§3.6"}
	mv, ts, err := iobSweeps(ctx)
	if err != nil {
		return nil, err
	}
	sp, err := spmvSweep(ctx)
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		name string
		pts  []kernels.RatioPoint
	}{
		{"matrix-vector multiplication", mv},
		{"triangular solve", ts},
		{"sparse matrix-vector multiplication (§4 remark)", sp},
	} {
		xs, ys := ratioXY(tc.pts)
		sel, err := fit.SelectModel(xs, ys)
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for _, y := range ys {
			worst = math.Max(worst, y)
		}
		r.AddClaim(
			fmt.Sprintf("%s has R(M) = Θ(1): memory cannot reduce its I/O", tc.name),
			"constant, value ≤ 2",
			fmt.Sprintf("best model %s, value %.4g (max %.4g across 128× memory range)",
				sel.Best, sel.Constant.Value, worst),
			sel.Best == fit.ModelConstant && worst <= 2.0+1e-9,
		)
		r.Tables = append(r.Tables, ratioTable(tc.pts))
		r.Series = append(r.Series, ratioSeries(tc.name, tc.pts))
	}
	// The model-level impossibility: the rebalance solver must refuse.
	_, errMV := model.MatrixVector().Rebalance(2, 4096, 1e18)
	_, errTS := model.TriangularSolve().Rebalance(2, 4096, 1e18)
	r.AddClaim(
		"rebalancing after α=2 is impossible by enlarging memory alone",
		"solver reports ErrNotRebalanceable",
		fmt.Sprintf("matvec: %v; trisolve: %v", errMV != nil, errTS != nil),
		errors.Is(errMV, model.ErrNotRebalanceable) && errors.Is(errTS, model.ErrNotRebalanceable),
	)
	return r, nil
}
