package experiments

import (
	"context"
	"fmt"

	"balarch/internal/pebble"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// RunE11Pebble supports the paper's "best possible" claims (§3.1, §3.4,
// §3.5 cite Hong & Kung 1981) on the red-blue pebble game itself: exhaustive
// minimum-I/O search on tiny DAGs brackets the blocked and greedy
// strategies, and the closed-form lower bounds hold against every schedule.
func RunE11Pebble(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "E11", Title: "pebble-game optimality checks", PaperLocus: "§3.1/§3.4/§3.5 (Hong–Kung 1981)"}

	// Part 1: exact optima on tiny DAGs vs strategies.
	type tiny struct {
		name string
		dag  *pebble.DAG
		s    int
	}
	var cases []tiny
	chain, err := pebble.ChainDAG(8)
	if err != nil {
		return nil, err
	}
	cases = append(cases, tiny{"chain(8)", chain, 2})
	diamond, err := pebble.DiamondDAG(2)
	if err != nil {
		return nil, err
	}
	cases = append(cases, tiny{"diamond(2)", diamond, 3})
	tree, err := pebble.BinaryTreeDAG(4)
	if err != nil {
		return nil, err
	}
	cases = append(cases, tiny{"tree(4)", tree, 3})
	fft4, err := pebble.FFTDAG(4)
	if err != nil {
		return nil, err
	}
	cases = append(cases, tiny{"fft(4)", fft4, 4})

	tb := textplot.NewTable("DAG", "red pebbles S", "optimal I/O", "greedy I/O", "trivial bound")
	allBracketed := true
	for _, tc := range cases {
		opt, err := pebble.OptimalIO(tc.dag, tc.s)
		if err != nil {
			return nil, fmt.Errorf("optimal %s: %w", tc.name, err)
		}
		sched, err := pebble.GreedySchedule(tc.dag, tc.s)
		if err != nil {
			return nil, err
		}
		res, err := pebble.Execute(tc.dag, tc.s, sched)
		if err != nil {
			return nil, err
		}
		trivial := pebble.TrivialLowerBound(tc.dag)
		if opt < trivial || res.IO() < opt {
			allBracketed = false
		}
		tb.AddRow(tc.name, tc.s, opt, res.IO(), trivial)
	}
	r.Tables = append(r.Tables, tb.String())
	r.AddClaim(
		"exhaustive optima bracket every strategy: trivial ≤ optimal ≤ greedy",
		"bracketing holds on all tiny DAGs",
		fmt.Sprintf("bracketing holds: %v", allBracketed),
		allBracketed,
	)

	// Part 2: blocked FFT schedules vs the Hong-Kung bound at scale.
	ftb := textplot.NewTable("N", "block M", "pebbles S", "blocked I/O", "lower bound", "achieved/bound")
	worstFactor := 0.0
	boundsHold := true
	for _, tc := range []struct{ n, m int }{
		{256, 4}, {256, 16}, {1024, 16}, {4096, 16}, {4096, 64},
	} {
		sched, s, err := pebble.BlockedFFTSchedule(tc.n, tc.m)
		if err != nil {
			return nil, err
		}
		dag, err := pebble.FFTDAG(tc.n)
		if err != nil {
			return nil, err
		}
		res, err := pebble.Execute(dag, s, sched)
		if err != nil {
			return nil, err
		}
		bound := pebble.FFTLowerBound(tc.n, s)
		factor := float64(res.IO()) / bound
		if factor < 1 {
			boundsHold = false
		}
		if factor > worstFactor {
			worstFactor = factor
		}
		ftb.AddRow(tc.n, tc.m, s, res.IO(), bound, factor)
	}
	r.Tables = append(r.Tables, ftb.String())
	r.AddClaim(
		"the Fig. 2 blocked FFT achieves I/O within a constant factor of the Hong-Kung Ω(N·logN/logS) bound",
		"achieved/bound ≥ 1 and bounded by a small constant",
		fmt.Sprintf("bounds hold: %v; worst factor %.3g", boundsHold, worstFactor),
		boundsHold && worstFactor < 16,
	)

	// Part 3: matmul greedy vs the Irony-Toledo-Tiskin bound.
	mtb := textplot.NewTable("n", "pebbles S", "greedy I/O", "lower bound", "achieved/bound")
	mmHold := true
	for _, tc := range []struct{ n, s int }{{4, 8}, {4, 16}, {6, 16}, {6, 48}} {
		dag, err := pebble.MatMulDAG(tc.n)
		if err != nil {
			return nil, err
		}
		sched, err := pebble.GreedySchedule(dag, tc.s)
		if err != nil {
			return nil, err
		}
		res, err := pebble.Execute(dag, tc.s, sched)
		if err != nil {
			return nil, err
		}
		bound := pebble.MatMulLowerBound(tc.n, tc.s)
		if float64(res.IO()) < bound {
			mmHold = false
		}
		mtb.AddRow(tc.n, tc.s, res.IO(), bound, float64(res.IO())/bound)
	}
	r.Tables = append(r.Tables, mtb.String())
	r.AddClaim(
		"greedy matmul pebblings never beat the matmul I/O lower bound",
		"achieved ≥ bound on all instances",
		fmt.Sprintf("bounds hold: %v", mmHold),
		mmHold,
	)
	return r, nil
}
