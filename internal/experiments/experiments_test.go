package experiments

import (
	"strings"
	"testing"

	"balarch/internal/fit"
)

// TestAllExperimentsPass runs the full harness: every experiment must
// execute without error and every claim must pass — this is the
// reproduction's acceptance test.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped in -short")
	}
	for _, exp := range Registry() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run()
			if err != nil {
				t.Fatalf("%s failed to run: %v", exp.ID, err)
			}
			if res.ID != exp.ID {
				t.Errorf("result ID %q != experiment ID %q", res.ID, exp.ID)
			}
			if len(res.Claims) == 0 {
				t.Fatalf("%s produced no claims", exp.ID)
			}
			for _, c := range res.Claims {
				if !c.Pass {
					t.Errorf("%s claim failed: %s\n  expected: %s\n  measured: %s",
						exp.ID, c.Statement, c.Expected, c.Measured)
				}
			}
			// The rendered report must mention the paper locus.
			if !strings.Contains(res.String(), res.PaperLocus) {
				t.Errorf("%s render missing paper locus", exp.ID)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 16 {
		t.Fatalf("registry has %d experiments, want 16 (E1–E12 + X1–X4)", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete registry entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12",
		"X1", "X2", "X3", "X4",
	} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestGet(t *testing.T) {
	e, err := Get("E2")
	if err != nil || e.ID != "E2" {
		t.Errorf("Get(E2) = %+v, %v", e, err)
	}
	if _, err := Get("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestInvertFit(t *testing.T) {
	// Power: R = m^0.5; doubling R needs 4× memory.
	sel := fit.Selection{Best: fit.ModelPower, Power: fit.PowerLaw{Exponent: 0.5, Coeff: 1}}
	if got := invertFit(sel, 2, 100); got < 399 || got > 401 {
		t.Errorf("power invert = %v, want 400", got)
	}
	// Log: R = log2 m; doubling R squares the memory.
	sel = fit.Selection{Best: fit.ModelLog, Log: fit.Logarithmic{Scale: 1, Offset: 0}}
	if got := invertFit(sel, 2, 1024); got < 1024*1024*0.99 || got > 1024*1024*1.01 {
		t.Errorf("log invert = %v, want 2^20", got)
	}
	// Constant: impossible.
	sel = fit.Selection{Best: fit.ModelConstant}
	if got := invertFit(sel, 2, 64); !(got > 1e300) {
		t.Errorf("constant invert = %v, want +Inf", got)
	}
}

func TestWithin(t *testing.T) {
	if !within(4.1, 4, 0.9, 1.1) {
		t.Error("4.1 should be within 10% of 4")
	}
	if within(5, 4, 0.9, 1.1) {
		t.Error("5 should not be within 10% of 4")
	}
}
