package experiments

import (
	"context"
	"strings"
	"testing"

	"balarch/internal/engine"
	"balarch/internal/fit"
	"balarch/internal/kernels"
)

// TestAllExperimentsPass runs the full harness: every experiment must
// execute without error and every claim must pass — this is the
// reproduction's acceptance test. RunAll fans the experiments out in
// parallel; each result is then checked individually.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped in -short")
	}
	reg := Registry()
	results, _, err := RunAll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reg) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(reg))
	}
	for i, exp := range reg {
		exp, res := exp, results[i]
		t.Run(exp.ID, func(t *testing.T) {
			if res.ID != exp.ID {
				t.Errorf("result ID %q != experiment ID %q", res.ID, exp.ID)
			}
			if len(res.Claims) == 0 {
				t.Fatalf("%s produced no claims", exp.ID)
			}
			for _, c := range res.Claims {
				if !c.Pass {
					t.Errorf("%s claim failed: %s\n  expected: %s\n  measured: %s",
						exp.ID, c.Statement, c.Expected, c.Measured)
				}
			}
			// The rendered report must mention the paper locus.
			if !strings.Contains(res.String(), res.PaperLocus) {
				t.Errorf("%s render missing paper locus", exp.ID)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 16 {
		t.Fatalf("registry has %d experiments, want 16 (E1–E12 + X1–X4)", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete registry entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12",
		"X1", "X2", "X3", "X4",
	} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestGet(t *testing.T) {
	e, err := Get("E2")
	if err != nil || e.ID != "E2" {
		t.Errorf("Get(E2) = %+v, %v", e, err)
	}
	if _, err := Get("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestInvertFit(t *testing.T) {
	// Power: R = m^0.5; doubling R needs 4× memory.
	sel := fit.Selection{Best: fit.ModelPower, Power: fit.PowerLaw{Exponent: 0.5, Coeff: 1}}
	if got := invertFit(sel, 2, 100); got < 399 || got > 401 {
		t.Errorf("power invert = %v, want 400", got)
	}
	// Log: R = log2 m; doubling R squares the memory.
	sel = fit.Selection{Best: fit.ModelLog, Log: fit.Logarithmic{Scale: 1, Offset: 0}}
	if got := invertFit(sel, 2, 1024); got < 1024*1024*0.99 || got > 1024*1024*1.01 {
		t.Errorf("log invert = %v, want 2^20", got)
	}
	// Constant: impossible.
	sel = fit.Selection{Best: fit.ModelConstant}
	if got := invertFit(sel, 2, 64); !(got > 1e300) {
		t.Errorf("constant invert = %v, want +Inf", got)
	}
}

func TestWithin(t *testing.T) {
	if !within(4.1, 4, 0.9, 1.1) {
		t.Error("4.1 should be within 10% of 4")
	}
	if within(5, 4, 0.9, 1.1) {
		t.Error("5 should not be within 10% of 4")
	}
}

// TestRegistryBuildOnce: Registry and Get must serve from the one cached
// build — no re-allocation, no re-sort, no linear scan.
func TestRegistryBuildOnce(t *testing.T) {
	a, b := Registry(), Registry()
	if &a[0] != &b[0] {
		t.Error("Registry rebuilt its slice between calls")
	}
	// Ids come back sorted (lexicographically, matching the seed's order).
	for i := 1; i < len(a); i++ {
		if a[i-1].ID >= a[i].ID {
			t.Errorf("registry unsorted at %d: %s >= %s", i, a[i-1].ID, a[i].ID)
		}
	}
}

func TestRunAllOrderAndCancellation(t *testing.T) {
	// A cancelled context fails fast without running experiments.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RunAll(ctx, 2); err == nil {
		t.Error("RunAll with cancelled context returned nil error")
	}
}

// TestRunAllParallelMatchesSerial is the determinism gate on a fast subset:
// the parallel engine must produce byte-identical reports to the serial
// path. The full-suite version lives in the root package's tests.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two experiments twice; skipped in -short")
	}
	for _, id := range []string{"E5", "E7"} {
		exp, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := exp.Run(engine.WithParallelism(context.Background(), 1))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := exp.Run(engine.WithParallelism(context.Background(), 8))
		if err != nil {
			t.Fatal(err)
		}
		sj, err := serial.JSON()
		if err != nil {
			t.Fatal(err)
		}
		pj, err := parallel.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(sj) != string(pj) {
			t.Errorf("%s: parallel JSON differs from serial", id)
		}
	}
}

// TestSweepCacheSharedAcrossSuite: within one RunAll, the sweeps E1 repeats
// from E2–E7 are computed once and shared.
func TestSweepCacheSharedAcrossSuite(t *testing.T) {
	ctx := withSweepCache(context.Background())
	calls := 0
	fn := func() ([]kernels.RatioPoint, error) {
		calls++
		return []kernels.RatioPoint{{Memory: 1}}, nil
	}
	if _, err := cachedSweep(ctx, "k", fn); err != nil {
		t.Fatal(err)
	}
	if _, err := cachedSweep(ctx, "k", fn); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("sweep ran %d times under one suite context, want 1", calls)
	}
	// Without a cache on the context, cachedSweep degrades to a plain call.
	if _, err := cachedSweep(context.Background(), "k", fn); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("uncached context should run fn (calls=%d, want 2)", calls)
	}
}
