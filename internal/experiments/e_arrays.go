package experiments

import (
	"context"
	"fmt"

	"balarch/internal/array"
	"balarch/internal/fit"
	"balarch/internal/model"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// arrayLadder is the per-PE memory ladder the balance searches climb.
func arrayLadder(max int) []int {
	var ladder []int
	for m := 4; m <= max; m *= 2 {
		ladder = append(ladder, m)
	}
	return ladder
}

// RunE08Array1D reproduces §4.1 / Fig. 3: on a linear array of p cells
// running matrix multiplication, the per-PE memory needed for balance grows
// linearly with p, because the aggregate C grows ×p while the boundary I/O
// does not.
func RunE08Array1D(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "E8", Title: "1-D processor array balance", PaperLocus: "§4.1, Fig. 3"}
	cell := model.PE{C: 4e6, IO: 1e6, M: 1} // per-cell intensity C/IO = 4
	workload := array.MatMulWorkload{N: 2048}
	ladder := arrayLadder(1 << 15)

	var ps, ms []float64
	tb := textplot.NewTable("p (cells)", "per-PE balance memory", "aggregate memory", "compute util")
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		arr := array.LinearArray{P: p, Cell: cell}
		bp, err := array.FindBalancedMemory(arr.Rates(), p, workload, ladder, 0.05)
		if err != nil {
			return nil, fmt.Errorf("p=%d: %w", p, err)
		}
		ps = append(ps, float64(p))
		ms = append(ms, float64(bp.PerPEMemory))
		tb.AddRow(p, bp.PerPEMemory, bp.AggregateMemory, f2(bp.Metrics.ComputeUtilization()))
	}
	pl, err := fit.FitPowerLaw(ps, ms)
	if err != nil {
		return nil, err
	}
	r.AddClaim(
		"per-PE local memory must grow at least linearly with p to keep the array balanced",
		"power-law slope of memory vs p ≈ 1",
		fmt.Sprintf("slope %.3f (R²=%.4f) over p ∈ [1,32]", pl.Exponent, pl.R2),
		within(pl.Exponent, 1.0, 0.75, 1.3) && pl.R2 > 0.9,
	)
	// Cross-check against the closed-form law: aggregate α = p, so the
	// aggregate memory must grow ×p² and per-PE ×p (paper's argument).
	wantPerPE := cell.Intensity() * cell.Intensity() // m* = p·(C/IO)² / p at p=1
	r.AddClaim(
		"the simulated balance point tracks the analytic m = p·(C/IO)²",
		fmt.Sprintf("m(p)/p ≈ %.3g words", wantPerPE),
		fmt.Sprintf("m(32)/32 = %.3g words", ms[len(ms)-1]/32),
		within(ms[len(ms)-1]/32, wantPerPE, 0.5, 4),
	)
	r.Tables = append(r.Tables, tb.String())

	// §4.1's statement covers every computation satisfying (6), not just
	// matmul: a 2-D grid on the same linear arrays must also need per-PE
	// memory growing with p (law α² ⇒ aggregate ∝ p², per-PE ∝ p).
	gw := array.GridWorkload{Dim: 2, Size: 1024, Iters: 2}
	var gps, gms []float64
	for _, p := range []int{1, 4, 16} {
		arr := array.LinearArray{P: p, Cell: cell}
		bp, err := array.FindBalancedMemory(arr.Rates(), p, gw, ladder, 0.05)
		if err != nil {
			return nil, fmt.Errorf("grid p=%d: %w", p, err)
		}
		gps = append(gps, float64(p))
		gms = append(gms, float64(bp.PerPEMemory))
	}
	gpl, err := fit.FitPowerLaw(gps, gms)
	if err != nil {
		return nil, err
	}
	r.AddClaim(
		"the linear-memory law holds for any (6)-computation: 2-D grid per-PE memory also grows ∝ p",
		"power-law slope ≈ 1",
		fmt.Sprintf("slope %.3f over p ∈ {1,4,16} (values %v)", gpl.Exponent, gms),
		within(gpl.Exponent, 1.0, 0.7, 1.35),
	)

	ch := textplot.NewChart("per-PE balance memory vs array size (log-log)")
	ch.LogX, ch.LogY = true, true
	ch.XLabel, ch.YLabel = "cells p", "per-PE memory (words)"
	ch.Add(textplot.Series{Name: "matmul balance point", X: ps, Y: ms})
	ch.Add(textplot.Series{Name: "2-D grid balance point", X: gps, Y: gms})
	r.Figures = append(r.Figures, ch.String(), textplot.Fig3LinearArray(6))
	r.Series = append(r.Series,
		report.Series{Name: "balance_memory", Columns: []string{"p", "per_pe_memory"}, Rows: rows2(ps, ms)},
		report.Series{Name: "balance_memory_grid2", Columns: []string{"p", "per_pe_memory"}, Rows: rows2(gps, gms)},
	)
	return r, nil
}

// RunE09Mesh2D reproduces §4.2 / Fig. 4: on a p×p mesh, matmul balances at
// constant per-PE memory (the array is "automatically balanced"), while a
// 3-D grid — whose law is strictly steeper than α² — needs per-PE memory
// growing with p.
func RunE09Mesh2D(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "E9", Title: "2-D mesh balance", PaperLocus: "§4.2, Fig. 4"}

	// Part 1: matmul — constant per-PE memory.
	cell := model.PE{C: 4e6, IO: 1e6, M: 1}
	ladder := arrayLadder(1 << 14)
	var ps, ms []float64
	tb := textplot.NewTable("mesh side p", "cells", "per-PE balance memory", "compute util")
	for _, p := range []int{2, 4, 8, 16} {
		arr := array.MeshArray{P: p, Cell: cell}
		bp, err := array.FindBalancedMemory(arr.Rates(), arr.Cells(), array.MatMulWorkload{N: 4096}, ladder, 0.05)
		if err != nil {
			return nil, fmt.Errorf("matmul p=%d: %w", p, err)
		}
		ps = append(ps, float64(p))
		ms = append(ms, float64(bp.PerPEMemory))
		tb.AddRow(p, arr.Cells(), bp.PerPEMemory, f2(bp.Metrics.ComputeUtilization()))
	}
	spread := fit.GeometricSpan(ms)
	r.AddClaim(
		"matmul on a p×p mesh balances at per-PE memory independent of p (automatic balance)",
		"flat: max/min ≈ 1 across p ∈ [2,16]",
		fmt.Sprintf("max/min = %.3g (values %v)", spread, ms),
		spread <= 2.0,
	)
	r.Tables = append(r.Tables, tb.String())
	r.Series = append(r.Series, report.Series{
		Name: "mesh_matmul", Columns: []string{"p", "per_pe_memory"}, Rows: rows2(ps, ms),
	})

	// Part 2: 3-D grid — the law α^3 is strictly steeper than the mesh's
	// automatic α², so per-PE memory must grow.
	gcell := model.PE{C: 2e6, IO: 1e6, M: 1}
	var gps, gms []float64
	gtb := textplot.NewTable("mesh side p", "cells", "per-PE balance memory (3-D grid)")
	for _, p := range []int{2, 4, 8} {
		arr := array.MeshArray{P: p, Cell: gcell}
		w := array.GridWorkload{Dim: 3, Size: 128, Iters: 2}
		bp, err := array.FindBalancedMemory(arr.Rates(), arr.Cells(), w, arrayLadder(1<<12), 0.05)
		if err != nil {
			return nil, fmt.Errorf("grid p=%d: %w", p, err)
		}
		gps = append(gps, float64(p))
		gms = append(gms, float64(bp.PerPEMemory))
		gtb.AddRow(p, arr.Cells(), bp.PerPEMemory)
	}
	growth := gms[len(gms)-1] / gms[0]
	r.AddClaim(
		"a 3-D grid on a p×p mesh is never automatically balanced: per-PE memory grows with p",
		"m(8)/m(2) ≈ 4 (linear growth)",
		fmt.Sprintf("m(8)/m(2) = %.3g (values %v)", growth, gms),
		growth >= 2,
	)
	r.Tables = append(r.Tables, gtb.String())
	r.Figures = append(r.Figures, textplot.Fig4Mesh(4))
	r.Series = append(r.Series, report.Series{
		Name: "mesh_grid3d", Columns: []string{"p", "per_pe_memory"}, Rows: rows2(gps, gms),
	})
	return r, nil
}

func rows2(xs, ys []float64) [][]float64 {
	rows := make([][]float64, len(xs))
	for i := range xs {
		rows[i] = []float64{xs[i], ys[i]}
	}
	return rows
}
