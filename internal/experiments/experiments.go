// Package experiments reproduces every table and figure of the paper's
// evaluation as executable experiments E1–E12 plus the X1–X4 ablations and
// extensions (see DESIGN.md for the index). Each experiment measures its
// claim on the instrumented kernels, the pebble game, or the array
// simulator, fits the measured curves, and emits a report.Result with
// pass/fail claims, rendered tables, and text figures. Experiments are
// independent, so RunAll fans them out across an engine.Pool; results come
// back in id order regardless of parallelism.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"balarch/internal/engine"
	"balarch/internal/fit"
	"balarch/internal/kernels"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// Experiment is a runnable reproduction of one paper table or figure. Run
// honors ctx cancellation: a cancelled context aborts the experiment's
// sweeps and returns the context's error.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context) (*report.Result, error)
}

// The registry is built exactly once; every Registry/Get call after the
// first is an allocation-free read guarded by regMu (Register, used by
// tests and extensions, is the only writer — and it replaces the slice
// rather than mutating it, so snapshots handed out earlier stay valid).
var (
	registryOnce sync.Once
	regMu        sync.RWMutex
	registry     []Experiment
	registryByID map[string]Experiment
)

func buildRegistry() {
	registry = []Experiment{
		{"E1", "summary of §3: memory growth laws for all computations", RunE01Summary},
		{"E2", "matrix multiplication ratio and α² law", RunE02MatMul},
		{"E3", "matrix triangularization ratio and α² law", RunE03Triangularization},
		{"E4", "d-dimensional grid ratio and α^d law", RunE04Grid},
		{"E5", "FFT ratio, M^α law, and Fig. 2 decomposition", RunE05FFT},
		{"E6", "sorting ratio and M^α law", RunE06Sorting},
		{"E7", "I/O-bounded computations cannot be rebalanced", RunE07IOBound},
		{"E8", "1-D array: per-PE memory grows linearly with p (Fig. 3)", RunE08Array1D},
		{"E9", "2-D mesh: per-PE memory constant for matmul, growing for 3-D grid (Fig. 4)", RunE09Mesh2D},
		{"E10", "Warp machine case study (§5)", RunE10Warp},
		{"E11", "pebble-game optimality of the blocked schedules", RunE11Pebble},
		{"E12", "cache simulation: decomposition, not just memory, buys the ratio", RunE12Cache},
		{"X1", "ablation: mesh host attachment (perimeter vs corner)", RunX1CornerMesh},
		{"X2", "ablation: serial vs double-buffered execution", RunX2Overlap},
		{"X3", "ablation: replacement policy vs decomposition", RunX3PolicyVsSchedule},
		{"X4", "extension: communication-avoiding Strassen's balance law", RunX4Strassen},
	}
	sort.Slice(registry, func(i, j int) bool { return registry[i].ID < registry[j].ID })
	registryByID = make(map[string]Experiment, len(registry))
	for _, e := range registry {
		registryByID[e.ID] = e
	}
}

// Registry returns all experiments in id order. The returned slice is the
// package's cached registry: callers must not modify it.
func Registry() []Experiment {
	registryOnce.Do(buildRegistry)
	regMu.RLock()
	defer regMu.RUnlock()
	return registry
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	registryOnce.Do(buildRegistry)
	regMu.RLock()
	e, ok := registryByID[id]
	regMu.RUnlock()
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}

// Register adds an experiment to the registry — the seam tests use to
// inject failing or erroring experiments, and embedders can use for custom
// reproductions. It returns a function that removes the entry again. Ids
// must be new and non-empty, and Run must be non-nil.
func Register(e Experiment) (remove func(), err error) {
	registryOnce.Do(buildRegistry)
	if e.ID == "" || e.Run == nil {
		return nil, fmt.Errorf("experiments: Register needs an ID and a Run func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registryByID[e.ID]; dup {
		return nil, fmt.Errorf("experiments: experiment %q already registered", e.ID)
	}
	next := make([]Experiment, 0, len(registry)+1)
	next = append(next, registry...)
	next = append(next, e)
	sort.Slice(next, func(i, j int) bool { return next[i].ID < next[j].ID })
	registry = next
	registryByID[e.ID] = e
	return func() {
		regMu.Lock()
		defer regMu.Unlock()
		delete(registryByID, e.ID)
		kept := make([]Experiment, 0, len(registry))
		for _, x := range registry {
			if x.ID != e.ID {
				kept = append(kept, x)
			}
		}
		registry = kept
	}, nil
}

// RunAll runs every registered experiment on an engine.Pool with the given
// parallelism (≤ 0 means GOMAXPROCS) and returns the results in id order —
// byte-identical to a serial run, whatever the worker count. The
// parallelism also propagates down to the kernel sweep pools via the
// context, so parallelism 1 is a genuinely serial run of the whole tree.
// pass reports whether every claim of every experiment passed. The first
// experiment error cancels the rest.
func RunAll(ctx context.Context, parallelism int) (results []*report.Result, pass bool, err error) {
	reg := Registry()
	ctx = engine.WithParallelism(ctx, parallelism)
	ctx = withSweepCache(ctx)
	jobs := make([]engine.Job[*report.Result], len(reg))
	for i, e := range reg {
		e := e
		jobs[i] = engine.Job[*report.Result]{Key: e.ID, Run: func(ctx context.Context) (*report.Result, error) {
			res, err := e.Run(ctx)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			return res, nil
		}}
	}
	pool := engine.Pool[*report.Result]{Parallelism: parallelism}
	results, err = pool.Run(ctx, jobs)
	if err != nil {
		return nil, false, err
	}
	pass = true
	for _, r := range results {
		if !r.Pass() {
			pass = false
		}
	}
	return results, pass, nil
}

// withSweepCache gives one suite run a shared memo for the kernel sweeps
// that several experiments repeat (E1 re-measures the curves E2–E7 measure).
// The cache is scoped to the context so separate RunAll calls — and
// benchmark iterations — stay independent.
func withSweepCache(ctx context.Context) context.Context {
	return context.WithValue(ctx, sweepCacheKey{}, &engine.Cache[[]kernels.RatioPoint]{})
}

type sweepCacheKey struct{}

// cachedSweep memoizes fn under key in the context's sweep cache; without a
// cache on the context it just runs fn. Concurrent experiments asking for
// the same sweep share one in-flight computation.
func cachedSweep(ctx context.Context, key string, fn func() ([]kernels.RatioPoint, error)) ([]kernels.RatioPoint, error) {
	cache, ok := ctx.Value(sweepCacheKey{}).(*engine.Cache[[]kernels.RatioPoint])
	if !ok {
		return fn()
	}
	pts, err, _ := cache.Do(key, fn)
	return pts, err
}

// --- shared helpers ---

// ratioXY splits ratio points into fit inputs.
func ratioXY(pts []kernels.RatioPoint) (xs, ys []float64) {
	for _, p := range pts {
		xs = append(xs, float64(p.Memory))
		ys = append(ys, p.Ratio())
	}
	return xs, ys
}

// ratioSeries converts ratio points into an exportable series.
func ratioSeries(name string, pts []kernels.RatioPoint) report.Series {
	s := report.Series{Name: name, Columns: []string{"memory_words", "ccomp", "cio", "ratio"}}
	for _, p := range pts {
		s.Rows = append(s.Rows, []float64{
			float64(p.Memory), float64(p.Totals.Ops), float64(p.Totals.Cio()), p.Ratio(),
		})
	}
	return s
}

// ratioTable renders ratio points as a text table.
func ratioTable(pts []kernels.RatioPoint) string {
	tb := textplot.NewTable("M (words)", "Ccomp", "Cio", "Ccomp/Cio")
	for _, p := range pts {
		tb.AddRow(p.Memory, p.Totals.Ops, p.Totals.Cio(), p.Ratio())
	}
	return tb.String()
}

// ratioChart renders a log-log ratio chart.
func ratioChart(title string, pts []kernels.RatioPoint) string {
	ch := textplot.NewChart(title)
	ch.LogX, ch.LogY = true, true
	ch.XLabel, ch.YLabel = "local memory M (words)", "Ccomp/Cio"
	xs, ys := ratioXY(pts)
	ch.Add(textplot.Series{Name: "measured", X: xs, Y: ys})
	return ch.String()
}

// invertFit returns the memory at which the fitted model reaches α times its
// value at mOld — the measured answer to the paper's rebalancing question.
// Returns +Inf for the constant family (rebalancing impossible).
func invertFit(sel fit.Selection, alpha, mOld float64) float64 {
	switch sel.Best {
	case fit.ModelPower:
		// c·m^e scaled by α ⇒ m × α^(1/e).
		return mOld * math.Pow(alpha, 1/sel.Power.Exponent)
	case fit.ModelLog:
		// s·log2 m + b scaled by α ⇒ log2 m' = α·log2 m + (α-1)b/s.
		l := alpha*sel.Log.Eval(mOld) - sel.Log.Offset
		return math.Pow(2, l/sel.Log.Scale)
	default:
		return math.Inf(1)
	}
}

// within reports whether got lies in [want·lo, want·hi].
func within(got, want, lo, hi float64) bool {
	return got >= want*lo && got <= want*hi
}

func f2(v float64) string { return fmt.Sprintf("%.3g", v) }
