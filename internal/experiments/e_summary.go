package experiments

import (
	"context"
	"fmt"

	"balarch/internal/fit"
	"balarch/internal/kernels"
	"balarch/internal/model"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// RunE01Summary reproduces the paper's §3 summary table — the headline
// result — by measuring every computation's ratio curve, classifying its
// functional family, and comparing against the paper's growth law. It also
// renders Fig. 1.
func RunE01Summary(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "E1", Title: "summary of results (§3 opening table)", PaperLocus: "§3"}

	type row struct {
		name      string
		paperLaw  string
		wantKind  fit.ModelKind
		wantParam float64 // exponent for power, scale for log, 0 for const
		pts       []kernels.RatioPoint
	}
	var rows []row

	mm, err := matmulSweep(ctx)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"matrix multiplication", "M_new = α²·M_old", fit.ModelPower, 0.5, mm})

	lu, err := luSweep(ctx)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"matrix triangularization", "M_new = α²·M_old", fit.ModelPower, 0.5, lu})

	grids, err := gridSweeps(ctx)
	if err != nil {
		return nil, err
	}
	for _, sw := range grids {
		if sw.dim == 1 {
			continue // the paper's table starts at d=2
		}
		rows = append(rows, row{
			fmt.Sprintf("%d-dimensional grid", sw.dim),
			fmt.Sprintf("M_new = α^%d·M_old", sw.dim),
			fit.ModelPower, 1 / float64(sw.dim), sw.pts,
		})
	}

	ff, err := fftSweep(ctx)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"FFT", "M_new = M_old^α", fit.ModelLog, 2.5, ff})

	so, err := sortSweep(ctx)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"sorting", "M_new = M_old^α", fit.ModelLog, 1.0, so})

	mv, ts, err := iobSweeps(ctx)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"matrix-vector multiplication", "impossible", fit.ModelConstant, 0, mv})
	rows = append(rows, row{"triangular linear systems", "impossible", fit.ModelConstant, 0, ts})

	tb := textplot.NewTable("computation", "paper law", "measured family", "parameter", "verdict")
	for _, rw := range rows {
		xs, ys := ratioXY(rw.pts)
		sel, err := fit.SelectModel(xs, ys)
		if err != nil {
			return nil, err
		}
		var param string
		pass := sel.Best == rw.wantKind
		switch rw.wantKind {
		case fit.ModelPower:
			param = fmt.Sprintf("exponent %.3f", sel.Power.Exponent)
			pass = pass && within(sel.Power.Exponent, rw.wantParam, 0.8, 1.3)
		case fit.ModelLog:
			param = fmt.Sprintf("scale %.3f", sel.Log.Scale)
			pass = pass && within(sel.Log.Scale, rw.wantParam, 0.7, 1.35)
		default:
			param = fmt.Sprintf("value %.3f", sel.Constant.Value)
		}
		verdict := "matches"
		if !pass {
			verdict = "MISMATCH"
		}
		tb.AddRow(rw.name, rw.paperLaw, sel.Best.String(), param, verdict)
		r.AddClaim(
			fmt.Sprintf("%s follows %s", rw.name, rw.paperLaw),
			fmt.Sprintf("family %s", rw.wantKind),
			fmt.Sprintf("family %s (%s)", sel.Best, param),
			pass,
		)
	}
	r.Tables = append(r.Tables, tb.String())
	warp := model.Warp()
	r.Figures = append(r.Figures, textplot.Fig1PE(
		fmt.Sprintf("%.0f MOPS", warp.C/1e6),
		fmt.Sprintf("%.0f MW/s", warp.IO/1e6),
		fmt.Sprintf("%.0fK words", warp.M/1024),
	))
	return r, nil
}
