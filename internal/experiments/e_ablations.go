package experiments

import (
	"context"
	"fmt"

	"balarch/internal/array"
	"balarch/internal/fit"
	"balarch/internal/machine"
	"balarch/internal/memsim"
	"balarch/internal/model"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// The X-series experiments are ablations of the reproduction's design
// choices (DESIGN.md §3 index): they vary one assumption the
// paper makes and confirm the result moves the way the model predicts.

// RunX1CornerMesh ablates the mesh's host attachment: the paper's §4.2
// "automatic balance" for matmul depends on the perimeter carrying host
// traffic (aggregate IO ∝ p). Feeding the same mesh through a single corner
// link holds IO constant, raises the effective α to p², and destroys the
// automatic balance — per-PE memory must then grow ∝ p².
func RunX1CornerMesh(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "X1", Title: "ablation: mesh host attachment (perimeter vs corner)", PaperLocus: "§4.2"}
	cell := model.PE{C: 4e6, IO: 1e6, M: 1}
	ladder := arrayLadder(1 << 13)
	w := array.MatMulWorkload{N: 4096}

	tb := textplot.NewTable("mesh side p", "perimeter per-PE M", "corner per-PE M")
	var ps, peri, corner []float64
	for _, p := range []int{2, 4, 8} {
		pm := array.MeshArray{P: p, Cell: cell, Host: array.PerimeterHost}
		bp1, err := array.FindBalancedMemory(pm.Rates(), pm.Cells(), w, ladder, 0.05)
		if err != nil {
			return nil, fmt.Errorf("perimeter p=%d: %w", p, err)
		}
		cm := array.MeshArray{P: p, Cell: cell, Host: array.CornerHost}
		bp2, err := array.FindBalancedMemory(cm.Rates(), cm.Cells(), w, ladder, 0.05)
		if err != nil {
			return nil, fmt.Errorf("corner p=%d: %w", p, err)
		}
		ps = append(ps, float64(p))
		peri = append(peri, float64(bp1.PerPEMemory))
		corner = append(corner, float64(bp2.PerPEMemory))
		tb.AddRow(p, bp1.PerPEMemory, bp2.PerPEMemory)
	}
	r.Tables = append(r.Tables, tb.String())

	spread := fit.GeometricSpan(peri)
	pl, err := fit.FitPowerLaw(ps, corner)
	if err != nil {
		return nil, err
	}
	r.AddClaim(
		"perimeter-fed mesh stays automatically balanced (per-PE memory flat)",
		"max/min ≈ 1",
		fmt.Sprintf("max/min = %.3g", spread),
		spread <= 2,
	)
	r.AddClaim(
		"corner-fed mesh loses automatic balance: α = p² forces per-PE memory ∝ p²",
		"power-law slope ≈ 2",
		fmt.Sprintf("slope %.3f (R²=%.4f)", pl.Exponent, pl.R2),
		within(pl.Exponent, 2, 0.75, 1.25) && pl.R2 > 0.9,
	)
	r.Series = append(r.Series,
		report.Series{Name: "perimeter", Columns: []string{"p", "per_pe_memory"}, Rows: rows2(ps, peri)},
		report.Series{Name: "corner", Columns: []string{"p", "per_pe_memory"}, Rows: rows2(ps, corner)},
	)
	return r, nil
}

// RunX2Overlap ablates the execution model behind the balance definition:
// the paper's balanced PE splits its time equally between compute and I/O,
// which costs 2× the runtime unless the two overlap. Double buffering
// recovers the factor: at the balance point the overlapped pipeline runs the
// same steps in half the serial makespan with the compute unit ≈ fully busy.
func RunX2Overlap(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "X2", Title: "ablation: serial vs double-buffered execution at the balance point", PaperLocus: "§2 (balance condition)"}
	// A PE exactly balanced for matmul at M = 1024: intensity 32 = √1024.
	rates := machine.Rates{ComputeOps: 32e6, IOWords: 1e6}
	w := array.MatMulWorkload{N: 4096}
	steps, err := w.Steps(1024)
	if err != nil {
		return nil, err
	}
	serial, err := machine.RunSerial(rates, steps)
	if err != nil {
		return nil, err
	}
	pipe, err := machine.RunPipeline(rates, steps)
	if err != nil {
		return nil, err
	}

	tb := textplot.NewTable("execution", "makespan (s)", "compute util", "I/O util")
	tb.AddRow("serial (read, compute, write)", f2(serial.Makespan), f2(serial.ComputeUtilization()), f2(serial.IOUtilization()))
	tb.AddRow("double buffered", f2(pipe.Makespan), f2(pipe.ComputeUtilization()), f2(pipe.IOUtilization()))
	r.Tables = append(r.Tables, tb.String())

	speedup := serial.Makespan / pipe.Makespan
	r.AddClaim(
		"a balanced PE wastes half its time without overlap",
		"serial compute utilization ≈ 0.5",
		fmt.Sprintf("%.3f", serial.ComputeUtilization()),
		within(serial.ComputeUtilization(), 0.5, 0.9, 1.1),
	)
	r.AddClaim(
		"double buffering recovers the factor of two at the balance point",
		"speedup ≈ 2, overlapped compute utilization ≈ 1",
		fmt.Sprintf("speedup %.3f, utilization %.3f", speedup, pipe.ComputeUtilization()),
		within(speedup, 2, 0.85, 1.1) && pipe.ComputeUtilization() > 0.9,
	)

	// Buffer-count sweep: the curve saturates at two buffers for the
	// uniform macro-steps of the paper's decompositions.
	btb := textplot.NewTable("buffers", "compute util")
	util := map[int]float64{}
	for _, buffers := range []int{1, 2, 3, 4} {
		m, err := machine.RunPipelineBuffered(rates, steps, buffers)
		if err != nil {
			return nil, err
		}
		util[buffers] = m.ComputeUtilization()
		btb.AddRow(buffers, f2(m.ComputeUtilization()))
	}
	r.Tables = append(r.Tables, btb.String())
	r.AddClaim(
		"the overlap benefit saturates at two buffers for uniform steps",
		"util(1) ≈ 0.5; util(2) ≈ util(4) ≈ 1",
		fmt.Sprintf("util(1)=%.3f util(2)=%.3f util(4)=%.3f", util[1], util[2], util[4]),
		util[1] < 0.6 && util[2] > 0.9 && util[4] >= util[2]-0.02,
	)
	return r, nil
}

// RunX3PolicyVsSchedule ablates where the paper's I/O savings come from: a
// clairvoyant replacement policy (Belady OPT) on the naive schedule cannot
// approach what a dumb policy (LRU) achieves on the blocked schedule —
// restructuring the computation, not improving the cache, buys the √M.
func RunX3PolicyVsSchedule(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "X3", Title: "ablation: replacement policy vs decomposition", PaperLocus: "§1, §3.1"}
	n, b := 32, 8
	cache := b*b + 4*b
	naive, err := memsim.NaiveMatMulTrace(n)
	if err != nil {
		return nil, err
	}
	blocked, err := memsim.BlockedMatMulTrace(n, b)
	if err != nil {
		return nil, err
	}
	nLRU, err := memsim.SimulateLRU(naive, cache)
	if err != nil {
		return nil, err
	}
	nOPT, err := memsim.SimulateOPT(naive, cache)
	if err != nil {
		return nil, err
	}
	bLRU, err := memsim.SimulateLRU(blocked, cache)
	if err != nil {
		return nil, err
	}
	bOPT, err := memsim.SimulateOPT(blocked, cache)
	if err != nil {
		return nil, err
	}

	tb := textplot.NewTable("schedule", "policy", "misses (I/O words)")
	tb.AddRow("naive", "LRU", nLRU.Misses)
	tb.AddRow("naive", "OPT (clairvoyant)", nOPT.Misses)
	tb.AddRow("blocked", "LRU", bLRU.Misses)
	tb.AddRow("blocked", "OPT (clairvoyant)", bOPT.Misses)
	r.Tables = append(r.Tables, tb.String())

	r.AddClaim(
		"a clairvoyant policy cannot rescue the naive schedule",
		"naive+OPT ≫ blocked+LRU",
		fmt.Sprintf("naive+OPT = %d vs blocked+LRU = %d (%.2f×)",
			nOPT.Misses, bLRU.Misses, float64(nOPT.Misses)/float64(bLRU.Misses)),
		nOPT.Misses > 2*bLRU.Misses,
	)
	r.AddClaim(
		"on the blocked schedule the policy barely matters",
		"blocked LRU/OPT ≈ 1",
		fmt.Sprintf("%.3f", float64(bLRU.Misses)/float64(bOPT.Misses)),
		float64(bLRU.Misses)/float64(bOPT.Misses) < 1.5,
	)
	return r, nil
}
