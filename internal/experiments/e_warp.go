package experiments

import (
	"context"
	"fmt"

	"balarch/internal/array"
	"balarch/internal/machine"
	"balarch/internal/model"
	"balarch/internal/report"
	"balarch/internal/textplot"
)

// RunE10Warp reproduces §5's case study: the CMU Warp machine — 10 cells,
// each with C = 10 MFLOPS, IO = 20 Mwords/s, M = 64K words. The paper notes
// that Warp's large per-cell I/O bandwidth and local memory "reflect the
// results of this paper": with per-cell intensity C/IO = 0.5 and the 10-cell
// aggregate intensity only 5, every computation-bounded kernel balances
// within a tiny fraction of the provided memory.
func RunE10Warp(ctx context.Context) (*report.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &report.Result{ID: "E10", Title: "CMU Warp case study", PaperLocus: "§5"}
	cell := model.Warp()
	arr := array.LinearArray{P: model.WarpCells, Cell: cell}
	agg := arr.Aggregate()

	tb := textplot.NewTable("computation", "aggregate M for balance", "available M", "state at 64K/cell")
	computeBoundedOK := true
	ioBoundedStarve := true
	for _, comp := range model.Catalog() {
		a, err := model.Analyze(agg, comp, 1e18)
		if err != nil {
			return nil, err
		}
		var need string
		switch {
		case a.Rebalanceable:
			need = fmt.Sprintf("%.4g words", a.BalancedMemory)
		default:
			need = "unreachable"
		}
		if comp.IOBounded {
			// §3.6 kernels: the 10-cell aggregate intensity of 5
			// exceeds their constant ratio of 2, so the array must
			// wait for I/O no matter the memory.
			if a.State != model.IOBound {
				ioBoundedStarve = false
			}
		} else if a.State == model.IOBound {
			computeBoundedOK = false
		}
		tb.AddRow(comp.Name, need, fmt.Sprintf("%.4g", agg.M), a.State.String())
	}
	r.Tables = append(r.Tables, tb.String())

	r.AddClaim(
		"no computation-bounded kernel leaves the Warp array waiting on I/O",
		"matrix, grid, FFT, sorting all balanced or compute bound at aggregate intensity p·C/IO = 5",
		fmt.Sprintf("all computation-bounded states non-I/O-bound: %v", computeBoundedOK),
		computeBoundedOK,
	)
	r.AddClaim(
		"the §3.6 kernels starve even Warp: a 10-cell array at intensity 5 exceeds their ratio of 2",
		"matvec and triangular solve I/O bound on the aggregate",
		fmt.Sprintf("both I/O bound: %v", ioBoundedStarve),
		ioBoundedStarve,
	)

	// Matmul headroom: the aggregate needs only intensity² = 25 words to
	// balance, against 10×64K available — the ×26000 headroom is the
	// paper's design observation.
	mm, err := model.Analyze(agg, model.MatrixMultiplication(), 1e18)
	if err != nil {
		return nil, err
	}
	headroom := agg.M / mm.BalancedMemory
	r.AddClaim(
		"Warp's local memory vastly exceeds the balance requirement for matrix computations",
		"headroom ≫ 1 (large IO and M were deliberate)",
		fmt.Sprintf("aggregate needs %.4g words, has %.4g: headroom %.3g×", mm.BalancedMemory, agg.M, headroom),
		headroom > 1000,
	)

	// Simulated confirmation: run blocked matmul through the
	// double-buffered pipeline at three aggregate memory sizes — starved
	// (4 words), the analytic balance point (25 words), and the real
	// machine (640K words).
	w := array.MatMulWorkload{N: 1024}
	sims := textplot.NewTable("aggregate memory (words)", "compute util", "state")
	var utilAtBalance, utilStarved float64
	for _, mem := range []int{4, 25, int(agg.M)} {
		steps, err := w.Steps(mem)
		if err != nil {
			return nil, err
		}
		met, err := machine.RunPipeline(arr.Rates(), steps)
		if err != nil {
			return nil, err
		}
		state := "compute bound / balanced"
		if met.IOBound(0.05) {
			state = "I/O bound"
		}
		switch mem {
		case 4:
			utilStarved = met.ComputeUtilization()
		case 25:
			utilAtBalance = met.ComputeUtilization()
		}
		sims.AddRow(mem, f2(met.ComputeUtilization()), state)
	}
	r.Tables = append(r.Tables, sims.String())
	r.AddClaim(
		"pipeline simulation confirms the analytic balance point of 25 aggregate words",
		"utilization ≈ 1 at 25 words, ≪ 1 below it",
		fmt.Sprintf("util(25) = %.3f, util(4) = %.3f", utilAtBalance, utilStarved),
		utilAtBalance > 0.9 && utilStarved < 0.6,
	)

	// Per-cell figures for the report.
	info := textplot.NewTable("Warp parameter", "value")
	info.AddRow("cells", model.WarpCells)
	info.AddRow("per-cell C", "10 MFLOPS")
	info.AddRow("per-cell IO", "20 Mwords/s")
	info.AddRow("per-cell M", "64K words")
	info.AddRow("per-cell intensity C/IO", cell.Intensity())
	info.AddRow("aggregate intensity p·C/IO", agg.Intensity())
	r.Tables = append(r.Tables, info.String())
	return r, nil
}
