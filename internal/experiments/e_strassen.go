package experiments

import (
	"context"
	"fmt"
	"math"

	"balarch/internal/fit"
	"balarch/internal/kernels"
	"balarch/internal/textplot"

	"balarch/internal/report"
)

// RunX4Strassen extends the paper in the §5 direction with a sub-cubic
// algorithm: communication-avoiding Strassen achieves only
// R(M) = Θ(M^(lg7/2−1)) ≈ Θ(M^0.404), so its rebalancing law is
// M_new ≈ α^2.48·M_old — strictly steeper than classical matmul's α².
// Doing asymptotically less arithmetic per data word buys speed but *costs*
// balance slack: faster algorithms need faster memory growth.
func RunX4Strassen(ctx context.Context) (*report.Result, error) {
	r := &report.Result{ID: "X4", Title: "extension: communication-avoiding Strassen's balance law", PaperLocus: "§5 (other computations); contrast with §3.1"}
	n := 4096
	leaves := []int{8, 16, 32, 64, 128, 256}
	strassen, err := kernels.StrassenRatioSweep(ctx, n, leaves)
	if err != nil {
		return nil, err
	}
	blocks := []int{8, 16, 32, 64, 128, 256}
	classical, err := kernels.MatMulRatioSweep(ctx, 32768, blocks)
	if err != nil {
		return nil, err
	}

	sx, sy := ratioXY(strassen)
	sSel, err := fit.SelectModel(sx, sy)
	if err != nil {
		return nil, err
	}
	cx, cy := ratioXY(classical)
	cSel, err := fit.SelectModel(cx, cy)
	if err != nil {
		return nil, err
	}

	wantExp := math.Log2(7)/2 - 1 // 0.4037
	r.AddClaim(
		"CA-Strassen achieves R(M) = Θ(M^(lg7/2−1))",
		fmt.Sprintf("power law, exponent %.4f", wantExp),
		fmt.Sprintf("best model %s, %s", sSel.Best, sSel.Power.String()),
		sSel.Best == fit.ModelPower && within(sSel.Power.Exponent, wantExp, 0.9, 1.1),
	)
	r.AddClaim(
		"the sub-cubic algorithm has strictly weaker memory leverage than classical matmul",
		"Strassen exponent < classical exponent ≈ 0.5",
		fmt.Sprintf("Strassen %.4f vs classical %.4f", sSel.Power.Exponent, cSel.Power.Exponent),
		sSel.Power.Exponent < cSel.Power.Exponent-0.05,
	)
	// Growth laws from the fitted curves.
	mOld := float64(strassen[1].Memory)
	sGrow := invertFit(sSel, 2, mOld) / mOld
	cGrow := invertFit(cSel, 2, float64(classical[1].Memory)) / float64(classical[1].Memory)
	wantGrow := math.Pow(2, 1/wantExp) // ≈ 5.57
	r.AddClaim(
		"α=2 rebalance multiplies Strassen's memory by ≈ 2^(1/0.4037) ≈ 5.6 (vs 4 classically)",
		fmt.Sprintf("M_new/M_old ≈ %.3g (Strassen), 4 (classical)", wantGrow),
		fmt.Sprintf("measured %.3g (Strassen), %.3g (classical)", sGrow, cGrow),
		within(sGrow, wantGrow, 0.75, 1.35) && within(cGrow, 4, 0.75, 1.35),
	)

	tb := textplot.NewTable("M (words)", "Strassen R(M)", "classical R(M) at same block count")
	for i := range strassen {
		tb.AddRow(strassen[i].Memory, strassen[i].Ratio(), classical[i].Ratio())
	}
	r.Tables = append(r.Tables, tb.String())

	ch := textplot.NewChart("classical vs Strassen ratio curves (log-log)")
	ch.LogX, ch.LogY = true, true
	ch.XLabel, ch.YLabel = "local memory M (words)", "Ccomp/Cio"
	ch.Add(textplot.Series{Name: "classical (slope 0.5)", X: cx, Y: cy})
	ch.Add(textplot.Series{Name: "Strassen (slope 0.40)", X: sx, Y: sy})
	r.Figures = append(r.Figures, ch.String())
	r.Series = append(r.Series,
		ratioSeries("strassen", strassen),
		ratioSeries("classical", classical),
	)
	return r, nil
}
