// Package systolic simulates the systolic algorithms paper §4 points to as
// the existence proofs for its mesh results: the Kung–Leiserson matrix
// multiplication array (cycle-accurate, C-stationary mesh) and the
// Gentleman–Kung triangularization array (row-wave Givens rotations on a
// triangular cell grid), plus a linear-array matrix product with
// column-partitioned state. Each simulation computes real numerics
// (validated against references) and reports the architectural quantities
// the paper's argument needs: per-cell storage, boundary I/O words, and
// total multiply-accumulates.
package systolic

import (
	"fmt"

	"balarch/internal/kernels"
)

// MeshStats reports the architectural profile of a mesh matmul run.
type MeshStats struct {
	// Cycles is the number of systolic beats executed (3n-2).
	Cycles int
	// PerPEWords is the registers each cell holds: a, b, and its C
	// element — constant, independent of the mesh size, which is the
	// §4.2 "automatically balanced" property.
	PerPEWords int
	// BoundaryInWords counts operand words injected at the west and
	// north edges (2n²).
	BoundaryInWords uint64
	// BoundaryOutWords counts result words drained at the end (n²).
	BoundaryOutWords uint64
	// MACs counts multiply-accumulate operations performed (n³).
	MACs uint64
}

// MeshMatMul runs the Kung–Leiserson C-stationary systolic array for n×n
// operands: A streams eastward (row i enters the west edge skewed by i
// beats), B streams southward (column j enters the north edge skewed by j
// beats), and cell (i,j) accumulates C(i,j) += a·b each beat before passing
// its operands on. The simulation is cycle-accurate: all cells update
// simultaneously from the previous beat's registers.
func MeshMatMul(a, b *kernels.Dense) (*kernels.Dense, MeshStats, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, MeshStats{}, fmt.Errorf("systolic: mesh matmul needs equal square operands")
	}
	n := a.Rows
	// Per-cell registers, double-buffered for simultaneous update.
	aReg := kernels.NewDense(n, n)
	bReg := kernels.NewDense(n, n)
	aNext := kernels.NewDense(n, n)
	bNext := kernels.NewDense(n, n)
	c := kernels.NewDense(n, n)
	stats := MeshStats{PerPEWords: 3}

	cycles := 3*n - 2
	for t := 0; t < cycles; t++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				// West input: previous cell's a register, or the
				// skewed A stream at the edge.
				var aw, bn float64
				var valid bool
				if j == 0 {
					if k := t - i; k >= 0 && k < n {
						aw = a.At(i, k)
						stats.BoundaryInWords++
						valid = true
					}
				} else {
					aw = aReg.At(i, j-1)
					valid = true
				}
				if i == 0 {
					if k := t - j; k >= 0 && k < n {
						bn = b.At(k, j)
						stats.BoundaryInWords++
					}
				} else {
					bn = bReg.At(i-1, j)
				}
				if valid && aw != 0 || bn != 0 {
					// Count a MAC only when genuine data
					// meets; zeros are pipeline bubbles.
					if aw != 0 && bn != 0 {
						stats.MACs++
					}
				}
				c.Set(i, j, c.At(i, j)+aw*bn)
				aNext.Set(i, j, aw)
				bNext.Set(i, j, bn)
			}
		}
		aReg, aNext = aNext, aReg
		bReg, bNext = bNext, bReg
	}
	stats.Cycles = cycles
	stats.BoundaryOutWords = uint64(n) * uint64(n)
	return c, stats, nil
}

// LinearStats reports the architectural profile of a linear-array matmul.
type LinearStats struct {
	// Cells is the number of cells in the chain.
	Cells int
	// PerCellWords is the local memory each cell needs: its stationary
	// block of B plus its C accumulators — Θ(n²/p), which at the balance
	// point of §4.1 grows linearly with p.
	PerCellWords int
	// BoundaryInWords counts words entering the chain (A once, B once to
	// load the blocks).
	BoundaryInWords uint64
	// BoundaryOutWords counts result words leaving the chain.
	BoundaryOutWords uint64
	// MACs counts multiply-accumulates.
	MACs uint64
}

// LinearMatMul computes C = A·B on a p-cell linear array: cell k holds the
// stationary block of B's columns [k·w, (k+1)·w) and w accumulators per
// result row; A's elements stream through the chain from the west, each cell
// applying them to its block, and finished C row segments drain eastward.
// Only the two chain ends touch the outside world, the Fig. 3 configuration.
func LinearMatMul(a, b *kernels.Dense, p int) (*kernels.Dense, LinearStats, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, LinearStats{}, fmt.Errorf("systolic: linear matmul needs equal square operands")
	}
	n := a.Rows
	if p < 1 || p > n {
		return nil, LinearStats{}, fmt.Errorf("systolic: cell count %d must be in [1, n=%d]", p, n)
	}
	stats := LinearStats{Cells: p}

	// Column partition: cell k owns columns [starts[k], starts[k+1]).
	starts := make([]int, p+1)
	for k := 0; k <= p; k++ {
		starts[k] = k * n / p
	}
	widest := 0
	for k := 0; k < p; k++ {
		if w := starts[k+1] - starts[k]; w > widest {
			widest = w
		}
	}
	// Loading B: every element enters at the boundary and hops to its
	// cell; boundary traffic counts each word once (it crosses the host
	// link once regardless of chain hops).
	stats.BoundaryInWords += uint64(n) * uint64(n)
	stats.PerCellWords = n*widest + widest // B block + one row of accumulators

	c := kernels.NewDense(n, n)
	acc := make([]float64, widest)
	for i := 0; i < n; i++ {
		// Row i of A streams through the whole chain; each cell sees
		// every a(i,k) once. Boundary traffic: n words per row.
		stats.BoundaryInWords += uint64(n)
		for k := 0; k < p; k++ {
			lo, hi := starts[k], starts[k+1]
			w := hi - lo
			for j := 0; j < w; j++ {
				acc[j] = 0
			}
			for kk := 0; kk < n; kk++ {
				av := a.At(i, kk)
				for j := 0; j < w; j++ {
					acc[j] += av * b.At(kk, lo+j)
				}
				stats.MACs += uint64(w)
			}
			for j := 0; j < w; j++ {
				c.Set(i, lo+j, acc[j])
			}
			// The finished segment drains east through the chain
			// and exits once at the boundary.
			stats.BoundaryOutWords += uint64(w)
		}
	}
	return c, stats, nil
}

// MeshEfficiency returns the fraction of cell-cycles doing useful MACs:
// n³ useful over n²·(3n-2) total — approaching 1/3 for large n, the classic
// pipeline-fill overhead of the C-stationary array.
func MeshEfficiency(n int, stats MeshStats) float64 {
	total := float64(n) * float64(n) * float64(stats.Cycles)
	if total == 0 {
		return 0
	}
	return float64(stats.MACs) / total
}

// ExpectedMeshMACs is the useful work of an n×n mesh product: n³ (zero
// products are counted as bubbles only when an operand is exactly zero,
// which has measure zero for random data).
func ExpectedMeshMACs(n int) uint64 {
	un := uint64(n)
	return un * un * un
}
