package systolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/kernels"
)

func TestMeshMatMulCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		a := kernels.NewDenseRandom(n, n, rng)
		b := kernels.NewDenseRandom(n, n, rng)
		c, stats, err := MeshMatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if diff := c.MaxAbsDiff(a.MulRef(b)); diff > 1e-12*float64(n) {
			t.Errorf("n=%d: mesh result off by %g", n, diff)
		}
		if stats.Cycles != 3*n-2 {
			t.Errorf("n=%d: cycles = %d, want %d", n, stats.Cycles, 3*n-2)
		}
		if stats.PerPEWords != 3 {
			t.Errorf("n=%d: per-PE words = %d, want 3 (constant)", n, stats.PerPEWords)
		}
		if want := uint64(2 * n * n); stats.BoundaryInWords != want {
			t.Errorf("n=%d: boundary in = %d, want %d", n, stats.BoundaryInWords, want)
		}
		if want := ExpectedMeshMACs(n); stats.MACs != want {
			t.Errorf("n=%d: MACs = %d, want %d", n, stats.MACs, want)
		}
	}
}

func TestMeshMatMulRejectsShapes(t *testing.T) {
	a := kernels.NewDense(2, 3)
	if _, _, err := MeshMatMul(a, a); err == nil {
		t.Error("non-square accepted")
	}
	b := kernels.NewDense(3, 3)
	if _, _, err := MeshMatMul(kernels.NewDense(2, 2), b); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

// TestMeshPerPEMemoryConstant is the §4.2 headline on real hardware
// structure: growing the mesh does not grow any cell's storage.
func TestMeshPerPEMemoryConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var per []int
	for _, n := range []int{2, 8, 32} {
		a := kernels.NewDenseRandom(n, n, rng)
		b := kernels.NewDenseRandom(n, n, rng)
		_, stats, err := MeshMatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		per = append(per, stats.PerPEWords)
	}
	if per[0] != per[1] || per[1] != per[2] {
		t.Errorf("per-PE words varied with mesh size: %v", per)
	}
}

func TestMeshEfficiencyApproachesOneThird(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	n := 32
	a := kernels.NewDenseRandom(n, n, rng)
	b := kernels.NewDenseRandom(n, n, rng)
	_, stats, err := MeshMatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	eff := MeshEfficiency(n, stats)
	if eff < 0.30 || eff > 0.36 {
		t.Errorf("efficiency = %v, want ≈ 1/3", eff)
	}
}

func TestLinearMatMulCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, tc := range []struct{ n, p int }{
		{4, 1}, {4, 2}, {4, 4}, {9, 3}, {10, 4}, {16, 5},
	} {
		a := kernels.NewDenseRandom(tc.n, tc.n, rng)
		b := kernels.NewDenseRandom(tc.n, tc.n, rng)
		c, stats, err := LinearMatMul(a, b, tc.p)
		if err != nil {
			t.Fatalf("n=%d p=%d: %v", tc.n, tc.p, err)
		}
		if diff := c.MaxAbsDiff(a.MulRef(b)); diff > 1e-12*float64(tc.n) {
			t.Errorf("n=%d p=%d: result off by %g", tc.n, tc.p, diff)
		}
		if stats.Cells != tc.p {
			t.Errorf("cells = %d", stats.Cells)
		}
		// A (n² streamed) + B (n² loaded) in; C (n²) out.
		nn := uint64(tc.n) * uint64(tc.n)
		if stats.BoundaryInWords != 2*nn {
			t.Errorf("n=%d p=%d: in words = %d, want %d", tc.n, tc.p, stats.BoundaryInWords, 2*nn)
		}
		if stats.BoundaryOutWords != nn {
			t.Errorf("n=%d p=%d: out words = %d, want %d", tc.n, tc.p, stats.BoundaryOutWords, nn)
		}
		if stats.MACs != uint64(tc.n)*nn {
			t.Errorf("n=%d p=%d: MACs = %d, want %d", tc.n, tc.p, stats.MACs, uint64(tc.n)*nn)
		}
	}
}

func TestLinearMatMulValidation(t *testing.T) {
	a := kernels.NewDense(4, 4)
	if _, _, err := LinearMatMul(a, a, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, _, err := LinearMatMul(a, a, 5); err == nil {
		t.Error("p>n accepted")
	}
}

// TestLinearPerCellMemoryShrinksWithP: with the problem fixed, each cell
// holds ~n²/p words — so at the §4.1 balance point (n ∝ p), per-cell memory
// grows ∝ p. Verify the n²/p shape.
func TestLinearPerCellMemoryScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	n := 32
	a := kernels.NewDenseRandom(n, n, rng)
	b := kernels.NewDenseRandom(n, n, rng)
	_, s1, err := LinearMatMul(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, s4, err := LinearMatMul(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(s1.PerCellWords) / float64(s4.PerCellWords); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("per-cell memory ratio p=1/p=4 = %v, want ≈ 4", ratio)
	}
}

func TestGentlemanKungTriangularize(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for _, n := range []int{1, 2, 4, 8, 16} {
		a := kernels.NewDenseRandom(n, n, rng)
		r, stats, err := GentlemanKungTriangularize(a)
		if err != nil {
			t.Fatal(err)
		}
		if !r.IsUpperTriangular(1e-10) {
			t.Errorf("n=%d: R not upper triangular", n)
		}
		if res := GramResidual(a, r); res > 1e-9*float64(n*n) {
			t.Errorf("n=%d: ‖RᵀR − AᵀA‖ = %g", n, res)
		}
		if stats.Cells != n*(n+1)/2 {
			t.Errorf("n=%d: cells = %d, want %d", n, stats.Cells, n*(n+1)/2)
		}
		if stats.PerCellWords != 1 {
			t.Errorf("n=%d: per-cell words = %d, want 1", n, stats.PerCellWords)
		}
		if want := uint64(n) * uint64(n); stats.BoundaryInWords != want {
			t.Errorf("n=%d: boundary in = %d, want %d", n, stats.BoundaryInWords, want)
		}
	}
}

func TestGentlemanKungRejectsNonSquare(t *testing.T) {
	if _, _, err := GentlemanKungTriangularize(kernels.NewDense(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

// Property: mesh and linear arrays compute the same product as the
// reference for random shapes and partitions.
func TestSystolicAgreementProperty(t *testing.T) {
	f := func(seed int64, n8, p8 uint8) bool {
		n := 1 + int(n8%10)
		p := 1 + int(p8)%n
		rng := rand.New(rand.NewSource(seed))
		a := kernels.NewDenseRandom(n, n, rng)
		b := kernels.NewDenseRandom(n, n, rng)
		want := a.MulRef(b)
		mc, _, err := MeshMatMul(a, b)
		if err != nil || mc.MaxAbsDiff(want) > 1e-10 {
			return false
		}
		lc, _, err := LinearMatMul(a, b, p)
		if err != nil || lc.MaxAbsDiff(want) > 1e-10 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
