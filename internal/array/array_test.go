package array

import (
	"math"
	"testing"

	"balarch/internal/kernels"
	"balarch/internal/machine"
	"balarch/internal/model"
)

func TestLinearArrayAggregate(t *testing.T) {
	a := LinearArray{P: 8, Cell: model.PE{C: 2e6, IO: 1e6, M: 1024}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	agg := a.Aggregate()
	if agg.C != 16e6 {
		t.Errorf("aggregate C = %v, want 16e6", agg.C)
	}
	if agg.IO != 1e6 {
		t.Errorf("aggregate IO = %v, want 1e6 (boundary cells only)", agg.IO)
	}
	if agg.M != 8192 {
		t.Errorf("aggregate M = %v, want 8192", agg.M)
	}
	if a.AlphaIncrease() != 8 {
		t.Errorf("alpha = %v, want 8", a.AlphaIncrease())
	}
}

func TestMeshArrayAggregate(t *testing.T) {
	a := MeshArray{P: 4, Cell: model.PE{C: 1e6, IO: 1e6, M: 256}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	agg := a.Aggregate()
	if agg.C != 16e6 {
		t.Errorf("aggregate C = %v, want 16e6 (p² cells)", agg.C)
	}
	if agg.IO != 4e6 {
		t.Errorf("aggregate IO = %v, want 4e6 (perimeter)", agg.IO)
	}
	if a.Cells() != 16 {
		t.Errorf("Cells = %d, want 16", a.Cells())
	}
	if a.AlphaIncrease() != 4 {
		t.Errorf("alpha = %v, want 4 (p²/p)", a.AlphaIncrease())
	}
}

func TestArrayValidation(t *testing.T) {
	if err := (LinearArray{P: 0, Cell: model.PE{C: 1, IO: 1, M: 1}}).Validate(); err == nil {
		t.Error("zero-size linear array accepted")
	}
	if err := (MeshArray{P: 2, Cell: model.PE{}}).Validate(); err == nil {
		t.Error("invalid cell accepted")
	}
}

func TestMatMulWorkloadStepsMatchKernelCounts(t *testing.T) {
	// The workload's step stream must sum to exactly the kernel counter's
	// totals for the same block size.
	n, b := 256, 16
	w := MatMulWorkload{N: n}
	steps, err := w.Steps(b * b)
	if err != nil {
		t.Fatal(err)
	}
	in, ops, out := machine.TotalWork(steps)
	want, err := kernels.CountBlockedMatMul(kernels.MatMulSpec{N: n, Block: b})
	if err != nil {
		t.Fatal(err)
	}
	if in != want.Reads || ops != want.Ops || out != want.Writes {
		t.Errorf("workload totals (%d,%d,%d) != kernel counts (%d,%d,%d)",
			in, ops, out, want.Reads, want.Ops, want.Writes)
	}
}

func TestGridWorkloadStepsMatchKernelCounts(t *testing.T) {
	w := GridWorkload{Dim: 2, Size: 64, Iters: 3}
	s := 8
	steps, err := w.Steps(s * s)
	if err != nil {
		t.Fatal(err)
	}
	in, ops, out := machine.TotalWork(steps)
	want, err := kernels.CountRelaxTiled(kernels.GridSpec{Dim: 2, Size: 64, Tile: s, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if in != want.Reads || ops != want.Ops || out != want.Writes {
		t.Errorf("workload totals (%d,%d,%d) != kernel counts (%d,%d,%d)",
			in, ops, out, want.Reads, want.Ops, want.Writes)
	}
}

func TestFFTWorkloadStepsMatchKernelCounts(t *testing.T) {
	w := FFTWorkload{N: 1024}
	steps, err := w.Steps(32)
	if err != nil {
		t.Fatal(err)
	}
	in, ops, out := machine.TotalWork(steps)
	want, err := kernels.CountBlockedFFT(kernels.FFTSpec{N: 1024, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	if in != want.Reads || ops != want.Ops || out != want.Writes {
		t.Errorf("workload totals (%d,%d,%d) != kernel counts (%d,%d,%d)",
			in, ops, out, want.Reads, want.Ops, want.Writes)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := (MatMulWorkload{N: 0}).Steps(16); err == nil {
		t.Error("matmul N=0 accepted")
	}
	if _, err := (MatMulWorkload{N: 16}).Steps(0); err == nil {
		t.Error("matmul zero memory accepted")
	}
	if _, err := (GridWorkload{Dim: 0, Size: 8, Iters: 1}).Steps(16); err == nil {
		t.Error("grid dim=0 accepted")
	}
	if _, err := (FFTWorkload{N: 12}).Steps(16); err == nil {
		t.Error("fft non-power-of-two accepted")
	}
	if _, err := (FFTWorkload{N: 16}).Steps(1); err == nil {
		t.Error("fft memory below one butterfly accepted")
	}
	// Step-count cap.
	if _, err := (MatMulWorkload{N: 1 << 15}).Steps(4); err == nil {
		t.Error("step explosion not capped")
	}
}

// TestLinearArrayBalanceGrowsWithP is §4.1 on the simulator: the per-PE
// memory needed to keep a linear array busy grows with p.
func TestLinearArrayBalanceGrowsWithP(t *testing.T) {
	cell := model.PE{C: 4e6, IO: 1e6, M: 1} // intensity 4 per cell
	ladder := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
	var prev int
	for _, p := range []int{1, 4, 16} {
		arr := LinearArray{P: p, Cell: cell}
		bp, err := FindBalancedMemory(arr.Rates(), p, MatMulWorkload{N: 2048}, ladder, 0.05)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if bp.PerPEMemory < prev {
			t.Errorf("p=%d: balance memory %d below p=%d's %d — must grow",
				p, bp.PerPEMemory, p/4, prev)
		}
		// The analytic balance point is per-PE m = p·(C/IO)² = 16p;
		// the ladder quantizes upward by ≤ 2×.
		analytic := 16 * float64(p)
		if got := float64(bp.PerPEMemory); got < analytic/2 || got > analytic*4 {
			t.Errorf("p=%d: balance memory %v far from analytic %v", p, got, analytic)
		}
		prev = bp.PerPEMemory
	}
}

// TestMeshBalanceFlatForMatMul is §4.2 on the simulator: a mesh running
// matmul balances at a per-PE memory that does not grow with p.
func TestMeshBalanceFlatForMatMul(t *testing.T) {
	cell := model.PE{C: 4e6, IO: 1e6, M: 1}
	ladder := []int{4, 8, 16, 32, 64, 128, 256, 512}
	var first int
	for i, p := range []int{2, 4, 8} {
		arr := MeshArray{P: p, Cell: cell}
		bp, err := FindBalancedMemory(arr.Rates(), arr.Cells(), MatMulWorkload{N: 2048}, ladder, 0.05)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if i == 0 {
			first = bp.PerPEMemory
			continue
		}
		// Flat within one ladder rung.
		if bp.PerPEMemory > 2*first || bp.PerPEMemory < first/2 {
			t.Errorf("p=%d: balance memory %d drifted from %d — should be constant",
				p, bp.PerPEMemory, first)
		}
	}
}

func TestFindBalancedMemoryErrors(t *testing.T) {
	rates := machine.Rates{ComputeOps: 1e6, IOWords: 1e6}
	if _, err := FindBalancedMemory(rates, 0, MatMulWorkload{N: 64}, []int{4}, 0.05); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := FindBalancedMemory(rates, 1, MatMulWorkload{N: 64}, nil, 0.05); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := FindBalancedMemory(rates, 1, MatMulWorkload{N: 64}, []int{8, 8}, 0.05); err == nil {
		t.Error("non-increasing ladder accepted")
	}
	// Hopeless intensity: matvec-like starvation cannot balance.
	starved := machine.Rates{ComputeOps: 1e12, IOWords: 1}
	if _, err := FindBalancedMemory(starved, 1, MatMulWorkload{N: 256}, []int{4, 16}, 0.05); err == nil {
		t.Error("unbalanceable configuration reported balanced")
	}
}

// TestSimulatedBalanceMatchesAnalytic: for a single PE, the simulated
// balance memory must sit within a ladder rung of the model's
// RequiredMemory inversion.
func TestSimulatedBalanceMatchesAnalytic(t *testing.T) {
	pe := model.PE{C: 8e6, IO: 1e6, M: 1} // intensity 8
	rates := machine.Rates{ComputeOps: pe.C, IOWords: pe.IO}
	ladder := []int{4, 8, 16, 32, 64, 128, 256}
	bp, err := FindBalancedMemory(rates, 1, MatMulWorkload{N: 2048}, ladder, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.MatrixMultiplication().RequiredMemory(pe.Intensity(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := want/2, want*4
	if got := float64(bp.PerPEMemory); got < lo || got > hi {
		t.Errorf("simulated balance %v vs analytic %v (allow [%v,%v])", got, want, lo, hi)
	}
	_ = math.Sqrt // keep math imported for clarity of future edits
}

func TestCornerHostAggregate(t *testing.T) {
	cell := model.PE{C: 1e6, IO: 1e6, M: 64}
	peri := MeshArray{P: 4, Cell: cell}
	corner := MeshArray{P: 4, Cell: cell, Host: CornerHost}
	if got := peri.Aggregate().IO; got != 4e6 {
		t.Errorf("perimeter IO = %v, want 4e6", got)
	}
	if got := corner.Aggregate().IO; got != 1e6 {
		t.Errorf("corner IO = %v, want 1e6", got)
	}
	if peri.AlphaIncrease() != 4 || corner.AlphaIncrease() != 16 {
		t.Errorf("alpha: perimeter %v (want 4), corner %v (want 16)",
			peri.AlphaIncrease(), corner.AlphaIncrease())
	}
	if PerimeterHost.String() == "" || CornerHost.String() == "" || HostAttachment(9).String() == "" {
		t.Error("HostAttachment.String incomplete")
	}
}

// TestCornerMeshNeedsMoreMemory: the corner-fed mesh must balance at a
// strictly larger per-PE memory than the perimeter-fed one at the same p.
func TestCornerMeshNeedsMoreMemory(t *testing.T) {
	cell := model.PE{C: 4e6, IO: 1e6, M: 1}
	ladder := arrayLadderLocal(1 << 13)
	w := MatMulWorkload{N: 4096}
	p := 4
	peri := MeshArray{P: p, Cell: cell}
	bp1, err := FindBalancedMemory(peri.Rates(), peri.Cells(), w, ladder, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	corner := MeshArray{P: p, Cell: cell, Host: CornerHost}
	bp2, err := FindBalancedMemory(corner.Rates(), corner.Cells(), w, ladder, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if bp2.PerPEMemory <= bp1.PerPEMemory {
		t.Errorf("corner balance %d not above perimeter %d", bp2.PerPEMemory, bp1.PerPEMemory)
	}
}

func arrayLadderLocal(max int) []int {
	var ladder []int
	for m := 4; m <= max; m *= 2 {
		ladder = append(ladder, m)
	}
	return ladder
}
