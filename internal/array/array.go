// Package array models the parallel architectures of paper §4: a collection
// of PEs viewed as one "new processing element" whose computation bandwidth
// is the sum of its cells' but whose external I/O bandwidth is set by the
// boundary cells alone. A 1-D linear array of p cells has p times the
// compute and the same host I/O as one cell (Fig. 3); a p×p mesh has p²
// times the compute and p times the I/O (Fig. 4).
//
// The package pairs these aggregate views with the kernels' block
// decompositions as macro-step streams and uses the machine package's
// double-buffered pipeline simulation to locate, empirically, the smallest
// local memory at which the array stops starving for I/O — reproducing the
// paper's per-PE memory growth laws as observations of a simulator rather
// than algebra.
package array

import (
	"fmt"

	"balarch/internal/machine"
	"balarch/internal/model"
)

// LinearArray is p linearly connected cells (paper Fig. 3). Only the two
// boundary cells communicate with the outside world, so the aggregate I/O
// bandwidth equals one cell's regardless of p.
type LinearArray struct {
	// P is the number of cells.
	P int
	// Cell describes one cell; Cell.M is the per-cell local memory.
	Cell model.PE
}

// Validate checks the array parameters.
func (a LinearArray) Validate() error {
	if a.P < 1 {
		return fmt.Errorf("array: linear array size %d must be ≥ 1", a.P)
	}
	return a.Cell.Validate()
}

// Aggregate returns the §4 "new processing element" view: C scales with p,
// IO does not, memory is the union of the cells'.
func (a LinearArray) Aggregate() model.PE {
	return model.PE{
		C:  float64(a.P) * a.Cell.C,
		IO: a.Cell.IO,
		M:  float64(a.P) * a.Cell.M,
	}
}

// Rates returns the aggregate bandwidths for pipeline simulation.
func (a LinearArray) Rates() machine.Rates {
	agg := a.Aggregate()
	return machine.Rates{ComputeOps: agg.C, IOWords: agg.IO}
}

// AlphaIncrease returns the factor by which C/IO grew relative to a single
// cell: p for the linear array (paper §4.1).
func (a LinearArray) AlphaIncrease() float64 { return float64(a.P) }

// HostAttachment selects where a mesh meets the outside world.
type HostAttachment int

const (
	// PerimeterHost is the paper's Fig. 4 configuration: boundary cells
	// on the perimeter carry host traffic, so aggregate I/O scales with
	// the mesh side p.
	PerimeterHost HostAttachment = iota
	// CornerHost is an ablation: a single corner cell carries all host
	// traffic, so aggregate I/O stays constant and the effective α
	// becomes p² instead of p — per-PE memory must then grow ∝ p² even
	// for matmul.
	CornerHost
)

// String names the attachment.
func (h HostAttachment) String() string {
	switch h {
	case PerimeterHost:
		return "perimeter"
	case CornerHost:
		return "corner"
	default:
		return fmt.Sprintf("HostAttachment(%d)", int(h))
	}
}

// MeshArray is a p×p mesh of cells (paper Fig. 4). With the default
// PerimeterHost attachment, perimeter cells carry host traffic, so
// aggregate I/O bandwidth scales with p while compute scales with p².
type MeshArray struct {
	// P is the mesh side; the array has P×P cells.
	P int
	// Cell describes one cell; Cell.M is the per-cell local memory.
	Cell model.PE
	// Host selects the host attachment; the zero value is the paper's
	// perimeter configuration.
	Host HostAttachment
}

// Validate checks the array parameters.
func (a MeshArray) Validate() error {
	if a.P < 1 {
		return fmt.Errorf("array: mesh side %d must be ≥ 1", a.P)
	}
	return a.Cell.Validate()
}

// Cells returns the number of PEs in the mesh.
func (a MeshArray) Cells() int { return a.P * a.P }

// Aggregate returns the §4 "new processing element" view of the mesh.
func (a MeshArray) Aggregate() model.PE {
	p := float64(a.P)
	io := p * a.Cell.IO
	if a.Host == CornerHost {
		io = a.Cell.IO
	}
	return model.PE{
		C:  p * p * a.Cell.C,
		IO: io,
		M:  p * p * a.Cell.M,
	}
}

// Rates returns the aggregate bandwidths for pipeline simulation.
func (a MeshArray) Rates() machine.Rates {
	agg := a.Aggregate()
	return machine.Rates{ComputeOps: agg.C, IOWords: agg.IO}
}

// AlphaIncrease returns the factor by which C/IO grew relative to a single
// cell: p²/p = p for the perimeter-fed mesh (paper §4.2), p² for the
// corner-fed ablation.
func (a MeshArray) AlphaIncrease() float64 {
	if a.Host == CornerHost {
		return float64(a.P) * float64(a.P)
	}
	return float64(a.P)
}

// BalancePoint is the outcome of a balance-memory search.
type BalancePoint struct {
	// PerPEMemory is the smallest per-cell memory (words) at which the
	// simulated array is no longer I/O bound.
	PerPEMemory int
	// AggregateMemory = PerPEMemory × number of cells.
	AggregateMemory int
	// Metrics is the simulation result at the balance point.
	Metrics machine.Metrics
}

// FindBalancedMemory simulates the workload's decomposition at increasing
// per-PE memory sizes from the ladder (ascending) and returns the first at
// which the double-buffered pipeline's compute utilization reaches 1-tol.
// cells is the number of PEs sharing the aggregate memory.
func FindBalancedMemory(rates machine.Rates, cells int, w Workload, ladder []int, tol float64) (BalancePoint, error) {
	if cells < 1 {
		return BalancePoint{}, fmt.Errorf("array: cell count %d must be ≥ 1", cells)
	}
	if len(ladder) == 0 {
		return BalancePoint{}, fmt.Errorf("array: empty memory ladder")
	}
	prev := 0
	for _, m := range ladder {
		if m <= prev {
			return BalancePoint{}, fmt.Errorf("array: ladder must be strictly increasing, got %d after %d", m, prev)
		}
		prev = m
	}
	for _, m := range ladder {
		steps, err := w.Steps(m * cells)
		if err != nil {
			return BalancePoint{}, fmt.Errorf("array: %s at per-PE memory %d: %w", w.Name(), m, err)
		}
		metrics, err := machine.RunPipeline(rates, steps)
		if err != nil {
			return BalancePoint{}, err
		}
		if !metrics.IOBound(tol) {
			return BalancePoint{
				PerPEMemory:     m,
				AggregateMemory: m * cells,
				Metrics:         metrics,
			}, nil
		}
	}
	return BalancePoint{}, fmt.Errorf("array: %s still I/O bound at per-PE memory %d", w.Name(), ladder[len(ladder)-1])
}
