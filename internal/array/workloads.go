package array

import (
	"fmt"
	"math"

	"balarch/internal/machine"
)

// MaxWorkloadSteps caps the macro-step streams so degenerate parameter
// choices (huge problems at tiny memories) fail loudly instead of
// allocating without bound.
const MaxWorkloadSteps = 1 << 21

// Workload turns an aggregate local memory size into the macro-step stream
// its block decomposition executes, for pipeline simulation.
type Workload interface {
	// Name identifies the workload in reports and errors.
	Name() string
	// Steps returns the macro-steps executed when the aggregate local
	// memory holds mTotal words.
	Steps(mTotal int) ([]machine.Step, error)
	// Ratio is the asymptotic Ccomp/Cio at aggregate memory m, used to
	// cross-check simulated balance points against the analytic model.
	Ratio(m float64) float64
}

// MatMulWorkload is the §3.1 blocked product of two N×N matrices: block
// side b = ⌊√m⌋, (N/b)² macro-steps, each streaming 2Nb words in, computing
// 2Nb² flops, and writing b² words out.
type MatMulWorkload struct {
	N int
}

// Name implements Workload.
func (w MatMulWorkload) Name() string { return fmt.Sprintf("matmul N=%d", w.N) }

// Ratio implements Workload.
func (w MatMulWorkload) Ratio(m float64) float64 { return math.Sqrt(m) }

// Steps implements Workload.
func (w MatMulWorkload) Steps(mTotal int) ([]machine.Step, error) {
	if w.N < 1 {
		return nil, fmt.Errorf("array: matmul N=%d must be ≥ 1", w.N)
	}
	b := int(math.Sqrt(float64(mTotal)))
	if b < 1 {
		return nil, fmt.Errorf("array: memory %d too small for any block", mTotal)
	}
	if b > w.N {
		b = w.N
	}
	nb := (w.N + b - 1) / b
	if nb*nb > MaxWorkloadSteps {
		return nil, fmt.Errorf("array: matmul would need %d steps (> %d)", nb*nb, MaxWorkloadSteps)
	}
	steps := make([]machine.Step, 0, nb*nb)
	n := uint64(w.N)
	for i0 := 0; i0 < w.N; i0 += b {
		rows := uint64(min(b, w.N-i0))
		for j0 := 0; j0 < w.N; j0 += b {
			cols := uint64(min(b, w.N-j0))
			steps = append(steps, machine.Step{
				InWords:  n * (rows + cols),
				Ops:      2 * n * rows * cols,
				OutWords: rows * cols,
			})
		}
	}
	return steps, nil
}

// GridWorkload is the §3.3 d-dimensional relaxation: tiles of side
// s = ⌊m^(1/d)⌋; per iteration each tile exchanges its faces and updates its
// points. Boundary effects are included exactly as in the kernels package.
type GridWorkload struct {
	Dim   int
	Size  int
	Iters int
}

// Name implements Workload.
func (w GridWorkload) Name() string {
	return fmt.Sprintf("grid d=%d N=%d iters=%d", w.Dim, w.Size, w.Iters)
}

// Ratio implements Workload.
func (w GridWorkload) Ratio(m float64) float64 {
	d := float64(w.Dim)
	return (4*d + 1) / (4 * d) * math.Pow(m, 1/d)
}

// Steps implements Workload.
func (w GridWorkload) Steps(mTotal int) ([]machine.Step, error) {
	if w.Dim < 1 || w.Size < 3 || w.Iters < 1 {
		return nil, fmt.Errorf("array: invalid grid workload %+v", w)
	}
	s := int(math.Floor(math.Pow(float64(mTotal), 1/float64(w.Dim))))
	if s < 1 {
		return nil, fmt.Errorf("array: memory %d too small for any tile", mTotal)
	}
	if s > w.Size {
		s = w.Size
	}
	tilesPerDim := (w.Size + s - 1) / s
	nTiles := 1
	for d := 0; d < w.Dim; d++ {
		nTiles *= tilesPerDim
		if nTiles > MaxWorkloadSteps {
			return nil, fmt.Errorf("array: grid would need > %d tiles", MaxWorkloadSteps)
		}
	}
	if w.Iters*nTiles > MaxWorkloadSteps {
		return nil, fmt.Errorf("array: grid would need %d steps (> %d)", w.Iters*nTiles, MaxWorkloadSteps)
	}

	ext := func(lo int) int { return min(s, w.Size-lo) }
	tileLo := make([]int, w.Dim)
	var tileSteps []machine.Step
	var rec func(dim int)
	rec = func(dim int) {
		if dim < w.Dim {
			for lo := 0; lo < w.Size; lo += s {
				tileLo[dim] = lo
				rec(dim + 1)
			}
			return
		}
		var halo, interior uint64 = 0, 1
		for k := 0; k < w.Dim; k++ {
			area := uint64(1)
			for j := 0; j < w.Dim; j++ {
				if j != k {
					area *= uint64(ext(tileLo[j]))
				}
			}
			if tileLo[k] > 0 {
				halo += 2 * area // receive + send one face
			}
			if tileLo[k]+ext(tileLo[k]) < w.Size {
				halo += 2 * area
			}
			lo, hi := tileLo[k], tileLo[k]+ext(tileLo[k])
			if lo == 0 {
				lo = 1
			}
			if hi == w.Size {
				hi = w.Size - 1
			}
			if hi <= lo {
				interior = 0
			} else {
				interior *= uint64(hi - lo)
			}
		}
		tileSteps = append(tileSteps, machine.Step{
			InWords:  halo / 2,
			Ops:      interior * uint64(4*w.Dim+1),
			OutWords: halo / 2,
		})
	}
	rec(0)

	steps := make([]machine.Step, 0, w.Iters*len(tileSteps))
	for it := 0; it < w.Iters; it++ {
		steps = append(steps, tileSteps...)
	}
	return steps, nil
}

// FFTWorkload is the §3.4 blocked transform of N points: block size the
// largest power of two ≤ m, ⌈log₂N/log₂B⌉ passes of N/B block steps.
type FFTWorkload struct {
	N int
}

// Name implements Workload.
func (w FFTWorkload) Name() string { return fmt.Sprintf("fft N=%d", w.N) }

// Ratio implements Workload.
func (w FFTWorkload) Ratio(m float64) float64 { return 2.5 * math.Log2(m) }

// Steps implements Workload.
func (w FFTWorkload) Steps(mTotal int) ([]machine.Step, error) {
	if w.N < 2 || w.N&(w.N-1) != 0 {
		return nil, fmt.Errorf("array: FFT N=%d must be a power of two ≥ 2", w.N)
	}
	b := 2
	for b*2 <= mTotal && b*2 <= w.N {
		b *= 2
	}
	if b > mTotal {
		return nil, fmt.Errorf("array: memory %d below the minimum block of 2", mTotal)
	}
	totalStages := 0
	for v := w.N; v > 1; v >>= 1 {
		totalStages++
	}
	perPass := 0
	for v := b; v > 1; v >>= 1 {
		perPass++
	}
	var steps []machine.Step
	for stageLo := 0; stageLo < totalStages; stageLo += perPass {
		lp := min(perPass, totalStages-stageLo)
		groupSize := uint64(1) << lp
		groups := w.N / int(groupSize)
		if len(steps)+groups > MaxWorkloadSteps {
			return nil, fmt.Errorf("array: FFT would need > %d steps", MaxWorkloadSteps)
		}
		for g := 0; g < groups; g++ {
			steps = append(steps, machine.Step{
				InWords:  groupSize,
				Ops:      groupSize / 2 * uint64(lp) * 10,
				OutWords: groupSize,
			})
		}
	}
	return steps, nil
}
