// Package engine is the concurrent experiment runner underneath the
// reproduction: a context-aware, cancellable worker pool with deterministic
// result ordering, per-key result caching, and progress callbacks.
//
// The design follows the paper's own decomposition argument (§4): the sweep
// points and experiments of this reproduction are independent subcomputations,
// so the harness fans them out across workers exactly as a processor array
// fans a computation across PEs, and merges their results in a fixed order so
// concurrency never changes observable output. Every layer of the repo runs on
// it: internal/kernels fans ratio-sweep points through a Pool, the
// internal/experiments registry fans whole experiments through a Pool, and
// cmd/experiments exposes the worker count as -parallel.
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Job is one unit of work for a Pool: the work itself plus an optional key
// used for caching and progress reporting.
type Job[T any] struct {
	// Key identifies the job in progress events and, when the Pool has a
	// Cache, is the cache key. Jobs with an empty Key are never cached.
	Key string
	// Run performs the work. It must honor ctx cancellation for the pool's
	// cancellation to be prompt, and must not retain ctx after returning.
	Run func(ctx context.Context) (T, error)
}

// Event is one progress notification: job Index finished (successfully,
// with Err set, or served from cache) as the Done-th of Total completions.
// Events are delivered serially, so Done increases monotonically.
type Event struct {
	Key     string
	Index   int
	Done    int
	Total   int
	Err     error
	Cached  bool
	Elapsed time.Duration
}

// Pool runs a batch of jobs with bounded parallelism. The zero value is
// ready to use: GOMAXPROCS workers (or the context's parallelism, see
// WithParallelism), no cache, no progress callback.
type Pool[T any] struct {
	// Parallelism bounds the number of concurrently running jobs. Zero or
	// negative means "inherit": the context's parallelism if set via
	// WithParallelism, else GOMAXPROCS.
	Parallelism int
	// OnProgress, when non-nil, is invoked after each job completes. Calls
	// are serialized; the callback must not block for long.
	OnProgress func(Event)
	// Cache, when non-nil, memoizes results by Job.Key: a job whose key has
	// a cached value is not re-run, and concurrent jobs sharing a key run
	// the work once.
	Cache *Cache[T]
}

// Run executes jobs and returns their results in job order — result i is
// job i's, regardless of completion order — so parallel runs are
// byte-identical to serial ones for deterministic jobs. The first job error
// cancels the remaining jobs and is returned after all in-flight work
// drains; jobs skipped by the cancellation never start. If ctx is cancelled
// externally, Run returns ctx's cause.
func (p *Pool[T]) Run(ctx context.Context, jobs []Job[T]) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	workers := p.Parallelism
	if workers <= 0 {
		workers = ParallelismFrom(ctx)
	}
	workers = min(workers, len(jobs))

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var (
		wg       sync.WaitGroup
		progMu   sync.Mutex
		done     int
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel(err)
		})
	}
	onSpan := SpanObserverFrom(ctx)
	onProgress := p.OnProgress
	if onProgress == nil {
		// Inherit a context-carried observer (WithProgress): the pools deep
		// inside kernels and experiments never set OnProgress themselves,
		// but a streaming caller above them still gets their events.
		onProgress = ProgressFrom(ctx)
	}
	finish := func(i int, err error, cached bool, elapsed time.Duration) {
		if onProgress == nil {
			return
		}
		progMu.Lock()
		done++
		onProgress(Event{
			Key: jobs[i].Key, Index: i, Done: done, Total: len(jobs),
			Err: err, Cached: cached, Elapsed: elapsed,
		})
		progMu.Unlock()
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // cancelled: drain without starting new work
				}
				start := time.Now()
				var (
					v      T
					err    error
					cached bool
				)
				if p.Cache != nil && jobs[i].Key != "" {
					v, err, cached = p.Cache.Do(jobs[i].Key, func() (T, error) {
						return jobs[i].Run(ctx)
					})
				} else {
					v, err = jobs[i].Run(ctx)
				}
				if err != nil {
					fail(err)
				} else {
					results[i] = v
				}
				elapsed := time.Since(start)
				if onSpan != nil {
					onSpan(jobs[i].Key, elapsed, cached)
				}
				finish(i, err, cached, elapsed)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if firstErr != nil {
		return results, firstErr
	}
	if ctx.Err() != nil {
		// External cancellation: report the cause recorded on the context.
		return results, context.Cause(ctx)
	}
	return results, nil
}

// progressKey carries a progress observer through a context tree.
type progressKey struct{}

// WithProgress returns a context that delivers every zero-OnProgress Pool's
// events beneath it to fn — the hook the server's SSE streams hang on: a
// sweep or experiment handler wraps its request context once and the pools
// inside internal/kernels and internal/experiments report through it
// without any of those layers knowing about streaming. Calls are
// serialized per pool (not across pools); fn must not block for long, or
// it stalls the workers it observes. A nil fn returns ctx unchanged.
func WithProgress(ctx context.Context, fn func(Event)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, fn)
}

// ProgressFrom returns the context's progress observer, or nil.
func ProgressFrom(ctx context.Context) func(Event) {
	fn, _ := ctx.Value(progressKey{}).(func(Event))
	return fn
}

// spanObserverKey carries a per-job span observer through a context tree.
type spanObserverKey struct{}

// SpanObserver receives one completed pool job: its key, its elapsed
// wall time, and whether the cache served it. Unlike the progress
// observer it is NOT serialized across jobs — implementations must be
// concurrency-safe and cheap (the server's feeds atomic histograms).
type SpanObserver func(key string, elapsed time.Duration, cached bool)

// WithSpanObserver returns a context that reports every pool job
// beneath it to fn — the hook the server's stage profile hangs on:
// kernel sweep points and experiment runs report their individual costs
// without internal/kernels or internal/experiments knowing about
// observability. Coexists with (and is independent of) WithProgress.
// A nil fn returns ctx unchanged.
func WithSpanObserver(ctx context.Context, fn SpanObserver) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, spanObserverKey{}, fn)
}

// SpanObserverFrom returns the context's span observer, or nil.
func SpanObserverFrom(ctx context.Context) SpanObserver {
	fn, _ := ctx.Value(spanObserverKey{}).(SpanObserver)
	return fn
}

// parallelismKey carries a worker-count hint through a context tree.
type parallelismKey struct{}

// WithParallelism returns a context that tells every zero-Parallelism Pool
// beneath it — including the sweep pools inside internal/kernels — to use n
// workers. n = 1 makes the whole tree run serially; n ≤ 0 is ignored.
func WithParallelism(ctx context.Context, n int) context.Context {
	if n <= 0 {
		return ctx
	}
	return context.WithValue(ctx, parallelismKey{}, n)
}

// ParallelismFrom returns the context's parallelism hint, or GOMAXPROCS
// when none is set.
func ParallelismFrom(ctx context.Context) int {
	if n, ok := ctx.Value(parallelismKey{}).(int); ok && n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
