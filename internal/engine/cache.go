package engine

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes keyed computations with single-flight semantics: the first
// caller of a key runs the work, concurrent callers of the same key block
// and share the one in-flight result, and later callers get the stored
// value without recomputing. Only successful results are stored — a failed
// computation is reported to every caller that shared the flight and then
// forgotten, so a transient error (a cancelled context, say) never poisons
// the key. The zero value is ready to use.
type Cache[T any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[T]
}

type cacheEntry[T any] struct {
	once sync.Once
	val  T
	err  error
	// done flips to true after val/err are set inside once.Do: the atomic
	// store/load pair gives Lookup a happens-before edge to val without
	// taking once's lock.
	done atomic.Bool
}

// Do returns the cached value for key, computing it with fn on a miss.
// hit reports whether the value came from the cache (including joining a
// flight another caller started) rather than this caller's own fn run.
func (c *Cache[T]) Do(key string, fn func() (T, error)) (val T, err error, hit bool) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*cacheEntry[T])
	}
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[T]{}
		c.m[key] = e
	}
	c.mu.Unlock()

	computed := false
	e.once.Do(func() {
		e.val, e.err = fn()
		computed = true
		if e.err != nil {
			c.mu.Lock()
			if c.m[key] == e {
				delete(c.m, key)
			}
			c.mu.Unlock()
		}
		e.done.Store(true)
	})
	return e.val, e.err, !computed
}

// Lookup returns the stored value for key without computing anything: a
// probe for callers that can build the key as bytes and want the hit path
// allocation-free (the map index on string(key) does not copy the bytes).
// In-flight and failed entries miss — Lookup never blocks on another
// caller's computation.
func (c *Cache[T]) Lookup(key []byte) (T, bool) {
	c.mu.Lock()
	e := c.m[string(key)]
	c.mu.Unlock()
	if e == nil || !e.done.Load() || e.err != nil {
		var zero T
		return zero, false
	}
	return e.val, true
}

// Forget drops the entry for key so the next Do recomputes it.
func (c *Cache[T]) Forget(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// Reset drops every entry.
func (c *Cache[T]) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}

// Len returns the number of stored entries, counting in-flight ones.
func (c *Cache[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
