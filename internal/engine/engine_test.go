package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderingDeterministic(t *testing.T) {
	jobs := make([]Job[int], 64)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprint(i), Run: func(context.Context) (int, error) {
			return i * i, nil
		}}
	}
	for _, par := range []int{1, 2, 8, 64} {
		p := Pool[int]{Parallelism: par}
		got, err := p.Run(context.Background(), jobs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: result[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	var p Pool[int]
	got, err := p.Run(context.Background(), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run = %v, %v", got, err)
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	var inFlight, peak atomic.Int32
	jobs := make([]Job[struct{}], 32)
	for i := range jobs {
		jobs[i] = Job[struct{}]{Run: func(context.Context) (struct{}, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, nil
		}}
	}
	p := Pool[struct{}]{Parallelism: 3}
	if _, err := p.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 3 {
		t.Errorf("peak concurrency %d exceeds parallelism 3", got)
	}
}

func TestRunFirstErrorCancelsRest(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	jobs := make([]Job[int], 100)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(ctx context.Context) (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, boom
			}
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Millisecond):
			}
			return i, nil
		}}
	}
	p := Pool[int]{Parallelism: 2}
	_, err := p.Run(context.Background(), jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation did not skip any queued jobs")
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job[int]{{Run: func(ctx context.Context) (int, error) {
		return 1, ctx.Err()
	}}}
	var p Pool[int]
	_, err := p.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunProgressEvents(t *testing.T) {
	var events []Event
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("job%d", i), Run: func(context.Context) (int, error) { return i, nil }}
	}
	p := Pool[int]{Parallelism: 4, OnProgress: func(e Event) { events = append(events, e) }}
	if _, err := p.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("got %d events, want 10", len(events))
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != 10 {
			t.Errorf("event %d: Done=%d Total=%d, want %d/10", i, e.Done, e.Total, i+1)
		}
	}
}

func TestRunUsesCache(t *testing.T) {
	var runs atomic.Int32
	job := func(key string) Job[int] {
		return Job[int]{Key: key, Run: func(context.Context) (int, error) {
			runs.Add(1)
			return len(key), nil
		}}
	}
	cache := &Cache[int]{}
	p := Pool[int]{Parallelism: 4, Cache: cache}
	// 20 jobs over 2 distinct keys: the work runs at most twice.
	var jobs []Job[int]
	for i := 0; i < 10; i++ {
		jobs = append(jobs, job("aa"), job("bbb"))
	}
	got, err := p.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := 2 + i%2
		if v != want {
			t.Errorf("result[%d] = %d, want %d", i, v, want)
		}
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("work ran %d times, want 2 (single-flight per key)", n)
	}
}

func TestCacheDoesNotStoreErrors(t *testing.T) {
	var c Cache[int]
	calls := 0
	fail := func() (int, error) { calls++; return 0, errors.New("transient") }
	if _, err, _ := c.Do("k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, err, _ := c.Do("k", fail); err == nil {
		t.Fatal("want error on retry")
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2 (errors must not be cached)", calls)
	}
	if _, err, hit := c.Do("k", func() (int, error) { return 7, nil }); err != nil || hit {
		t.Fatalf("success run: err=%v hit=%v", err, hit)
	}
	if v, _, hit := c.Do("k", fail); v != 7 || !hit {
		t.Errorf("cached read = %d, hit=%v; want 7, true", v, hit)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	c.Forget("k")
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
}

func TestCacheConcurrentSingleFlight(t *testing.T) {
	var c Cache[int]
	var runs atomic.Int32
	const callers = 32
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			v, err, _ := c.Do("shared", func() (int, error) {
				runs.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err == nil && v != 42 {
				err = fmt.Errorf("v = %d", v)
			}
			errs <- err
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("work ran %d times, want 1", n)
	}
}

func TestWithParallelism(t *testing.T) {
	ctx := context.Background()
	if got := ParallelismFrom(WithParallelism(ctx, 3)); got != 3 {
		t.Errorf("ParallelismFrom = %d, want 3", got)
	}
	if got := ParallelismFrom(WithParallelism(ctx, 0)); got < 1 {
		t.Errorf("default parallelism %d < 1", got)
	}
	// A zero-Parallelism pool inherits the context hint: with hint 1 the
	// jobs run strictly serially.
	var inFlight, peak atomic.Int32
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func(context.Context) (int, error) {
			n := inFlight.Add(1)
			if p := peak.Load(); n > p {
				peak.CompareAndSwap(p, n)
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return 0, nil
		}}
	}
	var p Pool[int]
	if _, err := p.Run(WithParallelism(ctx, 1), jobs); err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Errorf("peak concurrency %d with parallelism hint 1", peak.Load())
	}
}

// TestCacheConcurrentSameKeyMiss stresses the single-flight contract
// directly: many goroutines miss the same key at once, exactly one runs the
// work, everyone shares its value, and exactly one caller is told the value
// came from its own run (hit=false).
func TestCacheConcurrentSameKeyMiss(t *testing.T) {
	const callers = 64
	var c Cache[int]
	var (
		runs     atomic.Int32
		inFlight atomic.Int32
		selfRuns atomic.Int32
	)
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start // line every caller up on the same miss
			v, err, hit := c.Do("key", func() (int, error) {
				if inFlight.Add(1) != 1 {
					t.Error("two flights computing the same key at once")
				}
				runs.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				inFlight.Add(-1)
				return 42, nil
			})
			results[i], errs[i] = v, err
			if !hit {
				selfRuns.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Errorf("work ran %d times under %d concurrent misses, want 1", runs.Load(), callers)
	}
	if n := selfRuns.Load(); n != 1 {
		t.Errorf("%d callers reported hit=false, want exactly 1 (the computing caller)", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("caller %d: got (%d, %v), want (42, nil)", i, results[i], errs[i])
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheConcurrentSameKeyError: concurrent callers joining a failing
// flight all see the error, the key is forgotten, and the next caller
// recomputes successfully — a transient error never poisons the key.
func TestCacheConcurrentSameKeyError(t *testing.T) {
	const callers = 32
	var c Cache[int]
	var runs atomic.Int32
	transient := errors.New("transient")
	start := make(chan struct{})
	var wg sync.WaitGroup
	errCount := atomic.Int32{}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err, _ := c.Do("key", func() (int, error) {
				runs.Add(1)
				time.Sleep(time.Millisecond)
				return 0, transient
			})
			if errors.Is(err, transient) {
				errCount.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	// Every caller that shared the failed flight saw its error; callers
	// that arrived after the failure may have started fresh flights, so
	// runs ≥ 1 but the error reached everyone whose flight failed.
	if errCount.Load() != callers {
		t.Errorf("%d callers saw the error, want %d", errCount.Load(), callers)
	}
	if c.Len() != 0 {
		t.Errorf("failed flights left %d entries, want 0", c.Len())
	}
	// The failure is forgotten: the next Do recomputes and succeeds.
	v, err, hit := c.Do("key", func() (int, error) { return 7, nil })
	if v != 7 || err != nil || hit {
		t.Errorf("post-failure Do = (%d, %v, hit=%v), want (7, nil, false)", v, err, hit)
	}
}
