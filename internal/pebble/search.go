package pebble

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxSearchStates bounds the exhaustive search's explored state count; the
// search returns an error rather than consuming unbounded memory.
const MaxSearchStates = 8 << 20

// OptimalIO computes the exact minimum I/O cost of pebbling the DAG with at
// most s red pebbles, by 0-1 breadth-first search over (red set, blue set)
// states. Recomputation is allowed, exactly as in Hong and Kung's game.
// Only DAGs with at most 32 vertices are supported, and practical sizes are
// smaller; use it to validate strategies on tiny instances (E11).
//
// The search normalizes schedules so that red pebbles are deleted lazily:
// every transition is a placement (Input or Compute), optionally preceded by
// one eviction when the budget is full, or an Output. This preserves
// optimality because early deletion never enables anything.
func OptimalIO(d *DAG, s int) (int, error) {
	n := d.Len()
	if n > 32 {
		return 0, fmt.Errorf("pebble: exhaustive search supports ≤ 32 vertices, got %d", n)
	}
	if s < 1 {
		return 0, fmt.Errorf("pebble: red pebble budget %d must be ≥ 1", s)
	}
	if need := d.MaxInDegree() + 1; s < need && len(d.Outputs()) > 0 {
		// With fewer pebbles than an operation's operands + result, no
		// non-input vertex can ever be computed.
		for _, v := range d.Outputs() {
			if !d.IsInput(v) {
				return 0, fmt.Errorf("pebble: %d red pebbles cannot compute any vertex (need %d)", s, need)
			}
		}
	}

	var blueInit uint32
	for _, v := range d.Inputs() {
		blueInit |= 1 << uint(v)
	}
	var goal uint32
	for _, v := range d.Outputs() {
		goal |= 1 << uint(v)
	}

	type state struct{ red, blue uint32 }
	start := state{0, blueInit}
	dist := map[uint64]int{key(start.red, start.blue): 0}
	// 0-1 BFS deque.
	deque := []state{start}
	popFront := func() state {
		st := deque[0]
		deque = deque[1:]
		return st
	}

	for len(deque) > 0 {
		st := popFront()
		cur := dist[key(st.red, st.blue)]
		if st.blue&goal == goal {
			return cur, nil
		}
		if len(dist) > MaxSearchStates {
			return 0, fmt.Errorf("pebble: search exceeded %d states", MaxSearchStates)
		}

		redCount := bits.OnesCount32(st.red)
		relax := func(next state, cost int) {
			k := key(next.red, next.blue)
			nd := cur + cost
			if old, ok := dist[k]; ok && old <= nd {
				return
			}
			dist[k] = nd
			if cost == 0 {
				deque = append([]state{next}, deque...)
			} else {
				deque = append(deque, next)
			}
		}

		// Placements: every vertex not currently red that is either
		// computable (all preds red) or inputtable (blue).
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if st.red&bit != 0 {
				continue
			}
			computable := !d.IsInput(v)
			if computable {
				for _, p := range d.Preds(v) {
					if st.red&(1<<uint(p)) == 0 {
						computable = false
						break
					}
				}
			}
			inputtable := st.blue&bit != 0
			if !computable && !inputtable {
				continue
			}
			cost := 1 // Input
			if computable {
				cost = 0 // Compute is free; prefer it when legal
			}
			if redCount < s {
				relax(state{st.red | bit, st.blue}, cost)
			} else {
				// Evict one red pebble first. When computing,
				// the victim must not be one of v's operands.
				var protected uint32
				if computable {
					for _, p := range d.Preds(v) {
						protected |= 1 << uint(p)
					}
				}
				for u := 0; u < n; u++ {
					ubit := uint32(1) << uint(u)
					if st.red&ubit == 0 || protected&ubit != 0 {
						continue
					}
					relax(state{st.red&^ubit | bit, st.blue}, cost)
				}
			}
		}
		// Outputs: write any red, not-yet-blue vertex.
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if st.red&bit != 0 && st.blue&bit == 0 {
				relax(state{st.red, st.blue | bit}, 1)
			}
		}
	}
	return 0, fmt.Errorf("pebble: no pebbling with %d red pebbles reaches all outputs", s)
}

func key(red, blue uint32) uint64 { return uint64(red)<<32 | uint64(blue) }

// MatMulLowerBound returns a valid lower bound on the I/O of any pebbling of
// the n×n matrix product graph with S red pebbles, after Hong & Kung (1981)
// as sharpened by Irony, Toledo & Tiskin: Q ≥ n³/(2√(2S)) − S, floored at
// the trivial bound of reading both operands and writing the result.
func MatMulLowerBound(n, s int) float64 {
	nf, sf := float64(n), float64(s)
	hk := nf*nf*nf/(2*math.Sqrt(2*sf)) - sf
	trivial := 3 * nf * nf // read A and B once, write C once
	return math.Max(hk, trivial)
}

// FFTLowerBound returns a valid lower bound on the I/O of any pebbling of
// the n-point FFT graph with S red pebbles, after Hong & Kung's Θ(N·log N /
// log S) result with a deliberately conservative constant of 1/2, floored at
// the trivial 2N (read all inputs, write all outputs).
func FFTLowerBound(n, s int) float64 {
	if s < 2 {
		s = 2
	}
	nf := float64(n)
	hk := nf * math.Log2(nf) / (2 * math.Log2(float64(s)))
	return math.Max(hk, 2*nf)
}

// TrivialLowerBound returns the universal floor: every input with a
// downstream consumer must be read at least once and every declared output
// written at least once.
func TrivialLowerBound(d *DAG) int {
	count := len(d.Outputs())
	for _, v := range d.Inputs() {
		if len(d.Succs(v)) > 0 {
			count++
		}
	}
	return count
}
