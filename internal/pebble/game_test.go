package pebble

import "testing"

// twoInputSum builds in0, in1 → sum (output).
func twoInputSum() *DAG {
	d := NewDAG(3)
	d.AddEdge(0, 2)
	d.AddEdge(1, 2)
	d.MarkOutput(2)
	return d
}

func TestExecuteLegalSchedule(t *testing.T) {
	d := twoInputSum()
	sched := Schedule{
		{Input, 0}, {Input, 1}, {Compute, 2}, {Output, 2},
		{Delete, 0}, {Delete, 1}, {Delete, 2},
	}
	res, err := Execute(d, 3, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO() != 3 {
		t.Errorf("IO = %d, want 3", res.IO())
	}
	if res.PeakRed != 3 {
		t.Errorf("PeakRed = %d, want 3", res.PeakRed)
	}
	if res.Computes != 1 || res.Deletes != 3 {
		t.Errorf("unexpected stats: %+v", res)
	}
}

func TestExecuteRejectsIllegalMoves(t *testing.T) {
	d := twoInputSum()
	cases := []struct {
		name  string
		s     int
		sched Schedule
	}{
		{"input without blue", 3, Schedule{{Input, 2}}},
		{"double input", 3, Schedule{{Input, 0}, {Input, 0}}},
		{"compute missing operand", 3, Schedule{{Input, 0}, {Compute, 2}}},
		{"compute an input", 3, Schedule{{Compute, 0}}},
		{"output without red", 3, Schedule{{Output, 2}}},
		{"delete without red", 3, Schedule{{Delete, 0}}},
		{"budget exceeded", 2, Schedule{{Input, 0}, {Input, 1}, {Compute, 2}}},
		{"vertex out of range", 3, Schedule{{Input, 9}}},
		{"recompute already red", 3, Schedule{{Input, 0}, {Input, 1}, {Compute, 2}, {Compute, 2}}},
	}
	for _, tc := range cases {
		if _, err := Execute(d, tc.s, tc.sched); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestExecuteRequiresOutputsBlue(t *testing.T) {
	d := twoInputSum()
	// Compute but never output.
	sched := Schedule{{Input, 0}, {Input, 1}, {Compute, 2}}
	if _, err := Execute(d, 3, sched); err == nil {
		t.Error("missing output accepted")
	}
}

func TestExecuteBadBudget(t *testing.T) {
	if _, err := Execute(twoInputSum(), 0, nil); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestScheduleIOCost(t *testing.T) {
	s := Schedule{{Input, 0}, {Compute, 1}, {Output, 1}, {Delete, 0}}
	if got := s.IOCost(); got != 2 {
		t.Errorf("IOCost = %d, want 2", got)
	}
}

func TestMoveKindString(t *testing.T) {
	for _, k := range []MoveKind{Input, Output, Compute, Delete, MoveKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestExecuteAllowsRecomputation(t *testing.T) {
	// Compute v, delete it, recompute it — legal in the Hong-Kung game.
	d := twoInputSum()
	sched := Schedule{
		{Input, 0}, {Input, 1}, {Compute, 2}, {Delete, 2},
		{Compute, 2}, {Output, 2},
	}
	if _, err := Execute(d, 3, sched); err != nil {
		t.Errorf("recomputation rejected: %v", err)
	}
}
