package pebble

import (
	"fmt"
	"testing"
)

func BenchmarkGreedyFFT(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := FFTDAG(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched, err := GreedySchedule(d, 18)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Execute(d, 18, sched); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBlockedFFTSchedule(b *testing.B) {
	d, err := FFTDAG(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, s, err := BlockedFFTSchedule(1024, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Execute(d, s, sched); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalSearchFFT4(b *testing.B) {
	d, err := FFTDAG(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalIO(d, 5); err != nil {
			b.Fatal(err)
		}
	}
}
