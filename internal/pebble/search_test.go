package pebble

import "testing"

func TestOptimalChain(t *testing.T) {
	d, err := ChainDAG(6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimalIO(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("chain optimal IO = %d, want 2", got)
	}
}

func TestOptimalDiamond(t *testing.T) {
	d, err := DiamondDAG(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimalIO(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("diamond optimal IO = %d, want 2", got)
	}
	// In-degree 2 means 2 pebbles can never compute the join.
	if _, err := OptimalIO(d, 2); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestOptimalTreeMemorySensitivity(t *testing.T) {
	d, err := BinaryTreeDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	// S=4: 4 leaf reads + 1 root write = 5, no spills.
	got4, err := OptimalIO(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got4 != 5 {
		t.Errorf("tree(4) S=4 optimal = %d, want 5", got4)
	}
	// S=3: one internal value must round-trip (or its leaves re-read): 7.
	got3, err := OptimalIO(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got3 != 7 {
		t.Errorf("tree(4) S=3 optimal = %d, want 7", got3)
	}
}

func TestOptimalTwoInputSum(t *testing.T) {
	d := twoInputSum()
	got, err := OptimalIO(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("sum optimal = %d, want 3 (2 reads + 1 write)", got)
	}
}

// TestOptimalVsGreedySmallFFT: on a 4-point FFT the exhaustive optimum must
// lower-bound the greedy and blocked strategies, and with ample memory all
// three must coincide at the trivial 2N.
func TestOptimalVsGreedySmallFFT(t *testing.T) {
	d, err := FFTDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{4, 6, 12} {
		opt, err := OptimalIO(d, s)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		res := mustGreedy(t, d, s)
		if opt > res.IO() {
			t.Errorf("s=%d: optimal %d exceeds greedy %d", s, opt, res.IO())
		}
		if opt < TrivialLowerBound(d) {
			t.Errorf("s=%d: optimal %d below trivial bound %d", s, opt, TrivialLowerBound(d))
		}
	}
	// Ample memory: everything fits, optimum hits the trivial bound.
	opt, err := OptimalIO(d, 12)
	if err != nil {
		t.Fatal(err)
	}
	if opt != TrivialLowerBound(d) {
		t.Errorf("ample-memory optimal = %d, want trivial %d", opt, TrivialLowerBound(d))
	}
}

// TestOptimalBlockedFFTTightAtSmallSize: for N=4, M=2 the blocked schedule's
// 2 passes cost 16; the exhaustive optimum at the same pebble budget (m+2=4)
// must be ≤ that and ≥ the trivial 8.
func TestOptimalBlockedFFTBracketed(t *testing.T) {
	n, m := 4, 2
	sched, s, err := BlockedFFTSchedule(n, m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FFTDAG(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(d, s, sched)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalIO(d, s)
	if err != nil {
		t.Fatal(err)
	}
	if opt > res.IO() {
		t.Errorf("optimal %d exceeds blocked %d", opt, res.IO())
	}
	if opt < 8 {
		t.Errorf("optimal %d below trivial 8", opt)
	}
}

func TestOptimalMonotoneInMemory(t *testing.T) {
	d, err := FFTDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	prev := int(^uint(0) >> 1)
	for _, s := range []int{3, 4, 5, 6, 8, 12} {
		opt, err := OptimalIO(d, s)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		if opt > prev {
			t.Errorf("s=%d: optimum %d worse than with less memory (%d)", s, opt, prev)
		}
		prev = opt
	}
}

func TestOptimalValidation(t *testing.T) {
	d := twoInputSum()
	if _, err := OptimalIO(d, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := OptimalIO(NewDAG(40), 2); err == nil {
		t.Error("oversized DAG accepted")
	}
}

func TestLowerBoundFormulas(t *testing.T) {
	// Matmul: at tiny S the Hong-Kung term dominates; at huge S the
	// trivial term takes over.
	if got := MatMulLowerBound(64, 16); got <= 3*64*64 {
		t.Errorf("matmul bound at small S = %v, should exceed trivial", got)
	}
	if got := MatMulLowerBound(8, 1<<20); got != 3*8*8 {
		t.Errorf("matmul bound at huge S = %v, want trivial %d", got, 3*8*8)
	}
	// FFT: trivial floor 2N applies for large S.
	if got := FFTLowerBound(16, 1<<20); got != 32 {
		t.Errorf("fft bound at huge S = %v, want 32", got)
	}
	if got := FFTLowerBound(1<<20, 4); got <= 2*(1<<20) {
		t.Errorf("fft bound at tiny S = %v, should exceed trivial", got)
	}
}

// TestBoundsHoldAgainstSchedules: achieved I/O of legal schedules must
// respect the closed-form lower bounds.
func TestBoundsHoldAgainstSchedules(t *testing.T) {
	// Blocked FFT vs FFT bound.
	for _, tc := range []struct{ n, m int }{{16, 4}, {64, 8}, {256, 16}} {
		sched, s, err := BlockedFFTSchedule(tc.n, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		d, err := FFTDAG(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(d, s, sched)
		if err != nil {
			t.Fatal(err)
		}
		if bound := FFTLowerBound(tc.n, s); float64(res.IO()) < bound {
			t.Errorf("n=%d m=%d: achieved %d below bound %v", tc.n, tc.m, res.IO(), bound)
		}
	}
	// Greedy matmul vs matmul bound.
	d, err := MatMulDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{4, 8, 16} {
		res := mustGreedy(t, d, s)
		if bound := MatMulLowerBound(4, s); float64(res.IO()) < bound {
			t.Errorf("s=%d: achieved %d below bound %v", s, res.IO(), bound)
		}
	}
}
