package pebble

import (
	"testing"
	"testing/quick"
)

func TestDAGBasics(t *testing.T) {
	d := NewDAG(4)
	d.AddEdge(0, 2)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.MarkOutput(3)
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	if !d.IsInput(0) || !d.IsInput(1) || d.IsInput(2) {
		t.Error("input detection wrong")
	}
	if got := d.MaxInDegree(); got != 2 {
		t.Errorf("MaxInDegree = %d, want 2", got)
	}
	if got := len(d.Inputs()); got != 2 {
		t.Errorf("Inputs count = %d, want 2", got)
	}
	if got := len(d.Outputs()); got != 1 {
		t.Errorf("Outputs count = %d, want 1", got)
	}
}

func TestTopoOrder(t *testing.T) {
	d := NewDAG(5)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(0, 3)
	d.AddEdge(3, 2)
	d.AddEdge(2, 4)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < 5; v++ {
		for _, p := range d.Preds(v) {
			if pos[p] >= pos[v] {
				t.Errorf("topo order violates edge %d→%d", p, v)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	d := NewDAG(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	if _, err := d.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestDAGPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDAG(0) },
		func() { NewDAG(2).AddEdge(0, 2) },
		func() { NewDAG(2).AddEdge(1, 1) },
		func() { NewDAG(2).MarkOutput(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFFTDAGShape(t *testing.T) {
	n := 8
	d, err := FFTDAG(n)
	if err != nil {
		t.Fatal(err)
	}
	// 3 levels above inputs: 4·8 = 32 vertices.
	if d.Len() != 32 {
		t.Fatalf("Len = %d, want 32", d.Len())
	}
	if got := len(d.Inputs()); got != n {
		t.Errorf("inputs = %d, want %d", got, n)
	}
	if got := len(d.Outputs()); got != n {
		t.Errorf("outputs = %d, want %d", got, n)
	}
	// Every non-input vertex has exactly 2 predecessors.
	for v := n; v < d.Len(); v++ {
		if got := len(d.Preds(v)); got != 2 {
			t.Errorf("vertex %d in-degree = %d, want 2", v, got)
		}
	}
	// Level-1 vertex 0 depends on inputs 0 and 1.
	p := d.Preds(FFTVertex(n, 1, 0))
	if !((p[0] == 0 && p[1] == 1) || (p[0] == 1 && p[1] == 0)) {
		t.Errorf("L1[0] preds = %v, want {0,1}", p)
	}
	// Level-2 vertex 0 depends on L1[0] and L1[2].
	p = d.Preds(FFTVertex(n, 2, 0))
	w0, w1 := FFTVertex(n, 1, 0), FFTVertex(n, 1, 2)
	if !((p[0] == w0 && p[1] == w1) || (p[0] == w1 && p[1] == w0)) {
		t.Errorf("L2[0] preds = %v, want {%d,%d}", p, w0, w1)
	}
	if _, err := FFTDAG(6); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestMatMulDAGShape(t *testing.T) {
	n := 3
	d, err := MatMulDAG(n)
	if err != nil {
		t.Fatal(err)
	}
	// 2n² inputs + n³ muls + n²(n-1) adds = 18 + 27 + 18 = 63.
	if d.Len() != 63 {
		t.Fatalf("Len = %d, want 63", d.Len())
	}
	if got := len(d.Inputs()); got != 2*n*n {
		t.Errorf("inputs = %d, want %d", got, 2*n*n)
	}
	if got := len(d.Outputs()); got != n*n {
		t.Errorf("outputs = %d, want %d", got, n*n)
	}
	if _, err := d.TopoOrder(); err != nil {
		t.Errorf("matmul DAG not acyclic: %v", err)
	}
	// n=1 edge case: outputs are the products themselves.
	d1, err := MatMulDAG(1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Len() != 3 || len(d1.Outputs()) != 1 {
		t.Errorf("n=1 DAG: len=%d outputs=%d", d1.Len(), len(d1.Outputs()))
	}
}

func TestStencil1DDAG(t *testing.T) {
	d, err := Stencil1DDAG(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Outputs()); got != 4 {
		t.Errorf("outputs = %d, want 4", got)
	}
	if _, err := d.TopoOrder(); err != nil {
		t.Errorf("stencil DAG not acyclic: %v", err)
	}
	// Interior vertex at level 2 has 3 preds.
	if got := len(d.Preds(2*6 + 2)); got != 3 {
		t.Errorf("stencil in-degree = %d, want 3", got)
	}
	if _, err := Stencil1DDAG(2, 1); err == nil {
		t.Error("too-narrow stencil accepted")
	}
}

func TestChainDiamondTreeBuilders(t *testing.T) {
	ch, err := ChainDAG(5)
	if err != nil {
		t.Fatal(err)
	}
	if ch.MaxInDegree() != 1 || len(ch.Outputs()) != 1 {
		t.Error("chain shape wrong")
	}
	di, err := DiamondDAG(2)
	if err != nil {
		t.Fatal(err)
	}
	if di.Len() != 7 || di.MaxInDegree() != 2 {
		t.Errorf("diamond shape wrong: len=%d indeg=%d", di.Len(), di.MaxInDegree())
	}
	tr, err := BinaryTreeDAG(8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 15 || len(tr.Inputs()) != 8 {
		t.Errorf("tree shape wrong: len=%d inputs=%d", tr.Len(), len(tr.Inputs()))
	}
	if _, err := BinaryTreeDAG(3); err == nil {
		t.Error("non-power-of-two leaves accepted")
	}
}

// Property: in every FFTDAG, each level is a perfect matching of butterfly
// pairs — each level-l vertex shares its two predecessors with exactly one
// sibling.
func TestFFTButterflyPairingProperty(t *testing.T) {
	f := func(p8 uint8) bool {
		n := 1 << (1 + p8%5) // 2..32
		d, err := FFTDAG(n)
		if err != nil {
			return false
		}
		levels := 0
		for v := n; v > 1; v >>= 1 {
			levels++
		}
		for l := 1; l <= levels; l++ {
			bit := 1 << (l - 1)
			for i := 0; i < n; i++ {
				sib := i ^ bit
				a, b := d.Preds(FFTVertex(n, l, i)), d.Preds(FFTVertex(n, l, sib))
				if len(a) != 2 || len(b) != 2 {
					return false
				}
				if !(a[0] == b[0] && a[1] == b[1] || a[0] == b[1] && a[1] == b[0]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStencil2DDAG(t *testing.T) {
	d, err := Stencil2DDAG(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Interior is 3×3 = 9 outputs.
	if got := len(d.Outputs()); got != 9 {
		t.Errorf("outputs = %d, want 9", got)
	}
	if _, err := d.TopoOrder(); err != nil {
		t.Errorf("2-D stencil DAG not acyclic: %v", err)
	}
	// Interior vertex at level 2 has 5 preds.
	if got := len(d.Preds(2*25 + 2*5 + 2)); got != 5 {
		t.Errorf("in-degree = %d, want 5", got)
	}
	if _, err := Stencil2DDAG(2, 1); err == nil {
		t.Error("too-small grid accepted")
	}
	if _, err := Stencil2DDAG(5, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

// TestStencil2DGreedyPebbling: the greedy scheduler handles the 5-point
// stencil legally, and more memory reduces I/O (tile reuse emerging from
// Belady eviction).
func TestStencil2DGreedyPebbling(t *testing.T) {
	d, err := Stencil2DDAG(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := int(^uint(0) >> 1)
	for _, s := range []int{6, 16, 64} {
		sched, err := GreedySchedule(d, s)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		res, err := Execute(d, s, sched)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		if res.IO() > prev {
			t.Errorf("s=%d: IO %d worse than smaller memory %d", s, res.IO(), prev)
		}
		prev = res.IO()
	}
}
