package pebble

import (
	"testing"
	"testing/quick"
)

// mustGreedy builds, executes and returns the greedy result.
func mustGreedy(t *testing.T, d *DAG, s int) ExecResult {
	t.Helper()
	sched, err := GreedySchedule(d, s)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	res, err := Execute(d, s, sched)
	if err != nil {
		t.Fatalf("greedy schedule illegal: %v", err)
	}
	return res
}

func TestGreedyOnChain(t *testing.T) {
	d, err := ChainDAG(10)
	if err != nil {
		t.Fatal(err)
	}
	res := mustGreedy(t, d, 2)
	if res.IO() != 2 {
		t.Errorf("chain IO = %d, want 2 (one read, one write)", res.IO())
	}
}

func TestGreedyOnTreeAmplePebbles(t *testing.T) {
	d, err := BinaryTreeDAG(8)
	if err != nil {
		t.Fatal(err)
	}
	res := mustGreedy(t, d, 16)
	// With ample pebbles: 8 leaf reads + 1 root write.
	if res.IO() != 9 {
		t.Errorf("tree IO = %d, want 9", res.IO())
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	for _, s := range []int{3, 4, 6, 10} {
		d, err := FFTDAG(8)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := GreedySchedule(d, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(d, s, sched)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		if res.PeakRed > s {
			t.Errorf("s=%d: peak red %d exceeds budget", s, res.PeakRed)
		}
		if res.IO() < TrivialLowerBound(d) {
			t.Errorf("s=%d: IO %d below trivial bound %d", s, res.IO(), TrivialLowerBound(d))
		}
	}
}

func TestGreedyRejectsTooFewPebbles(t *testing.T) {
	d, err := FFTDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GreedySchedule(d, 2); err == nil {
		t.Error("budget below max in-degree + 1 accepted")
	}
}

func TestGreedyMoreMemoryNeverHurts(t *testing.T) {
	d, err := MatMulDAG(3)
	if err != nil {
		t.Fatal(err)
	}
	prev := int(^uint(0) >> 1)
	for _, s := range []int{3, 6, 12, 24, 63} {
		res := mustGreedy(t, d, s)
		if res.IO() > prev {
			t.Errorf("s=%d: IO %d worse than smaller memory %d", s, res.IO(), prev)
		}
		prev = res.IO()
	}
}

func TestBlockedFFTScheduleLegalAndExactIO(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{16, 4}, {16, 2}, {16, 16}, {64, 8}, {128, 8},
	} {
		sched, s, err := BlockedFFTSchedule(tc.n, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		d, err := FFTDAG(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(d, s, sched)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		// Exactly 2N words per pass, matching CountBlockedFFT's I/O.
		totalLevels, perPass := 0, 0
		for v := tc.n; v > 1; v >>= 1 {
			totalLevels++
		}
		for v := tc.m; v > 1; v >>= 1 {
			perPass++
		}
		passes := (totalLevels + perPass - 1) / perPass
		if want := 2 * tc.n * passes; res.IO() != want {
			t.Errorf("n=%d m=%d: IO = %d, want %d", tc.n, tc.m, res.IO(), want)
		}
		if res.PeakRed > tc.m+2 {
			t.Errorf("n=%d m=%d: peak red %d exceeds m+2", tc.n, tc.m, res.PeakRed)
		}
	}
}

func TestBlockedFFTScheduleValidation(t *testing.T) {
	if _, _, err := BlockedFFTSchedule(12, 4); err == nil {
		t.Error("non-power-of-two N accepted")
	}
	if _, _, err := BlockedFFTSchedule(16, 32); err == nil {
		t.Error("block larger than N accepted")
	}
	if _, _, err := BlockedFFTSchedule(16, 3); err == nil {
		t.Error("non-power-of-two block accepted")
	}
}

// TestBlockedFFTMemoryIOTradeoff is the §3.4 shape on the pebble game
// itself: doubling log₂m halves the number of passes and hence the I/O.
func TestBlockedFFTMemoryIOTradeoff(t *testing.T) {
	n := 4096 // 12 levels
	io := map[int]int{}
	for _, m := range []int{4, 16, 64, 4096} {
		sched, s, err := BlockedFFTSchedule(n, m)
		if err != nil {
			t.Fatal(err)
		}
		d, err := FFTDAG(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(d, s, sched)
		if err != nil {
			t.Fatal(err)
		}
		io[m] = res.IO()
	}
	// 12 levels: m=4 → 6 passes; m=16 → 3; m=64 → 2; m=4096 → 1.
	if io[4] != 2*io[16] || io[16] != 3*io[4096] || io[64] != 2*io[4096] {
		t.Errorf("I/O progression wrong: %v", io)
	}
}

// Property: greedy schedules are always legal and meet the trivial bound.
func TestGreedyLegalProperty(t *testing.T) {
	f := func(kind uint8, s8 uint8) bool {
		var d *DAG
		var err error
		switch kind % 4 {
		case 0:
			d, err = FFTDAG(8)
		case 1:
			d, err = MatMulDAG(2)
		case 2:
			d, err = Stencil1DDAG(6, 2)
		default:
			d, err = BinaryTreeDAG(4)
		}
		if err != nil {
			return false
		}
		s := d.MaxInDegree() + 1 + int(s8%12)
		sched, err := GreedySchedule(d, s)
		if err != nil {
			return false
		}
		res, err := Execute(d, s, sched)
		if err != nil {
			return false
		}
		return res.PeakRed <= s && res.IO() >= TrivialLowerBound(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
