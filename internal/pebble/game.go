package pebble

import "fmt"

// MoveKind enumerates the four legal moves of the red-blue pebble game.
type MoveKind int

const (
	// Input places a red pebble on a vertex holding a blue pebble
	// (read one word from outside: 1 I/O).
	Input MoveKind = iota
	// Output places a blue pebble on a vertex holding a red pebble
	// (write one word to outside: 1 I/O).
	Output
	// Compute places a red pebble on a vertex all of whose predecessors
	// hold red pebbles (free).
	Compute
	// Delete removes a red pebble (free).
	Delete
)

// String names the move kind.
func (k MoveKind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	case Compute:
		return "compute"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is one step of a pebbling schedule.
type Move struct {
	Kind   MoveKind
	Vertex int
}

// Schedule is a sequence of moves.
type Schedule []Move

// IOCost returns the number of Input and Output moves — the quantity the
// game minimizes.
func (s Schedule) IOCost() int {
	cost := 0
	for _, m := range s {
		if m.Kind == Input || m.Kind == Output {
			cost++
		}
	}
	return cost
}

// ExecResult reports the statistics of a validated schedule execution.
type ExecResult struct {
	Inputs   int // words read (Input moves)
	Outputs  int // words written (Output moves)
	Computes int
	Deletes  int
	PeakRed  int // maximum red pebbles simultaneously in use
}

// IO returns total I/O operations.
func (r ExecResult) IO() int { return r.Inputs + r.Outputs }

// Execute runs the schedule against the game rules with at most s red
// pebbles, verifying every move's legality, and checks that every declared
// output vertex ends with a blue pebble. Inputs of the DAG start with blue
// pebbles; everything else starts bare.
func Execute(d *DAG, s int, sched Schedule) (ExecResult, error) {
	if s < 1 {
		return ExecResult{}, fmt.Errorf("pebble: red pebble budget %d must be ≥ 1", s)
	}
	red := make([]bool, d.Len())
	blue := make([]bool, d.Len())
	for _, v := range d.Inputs() {
		blue[v] = true
	}
	var res ExecResult
	redCount := 0
	for step, m := range sched {
		if m.Vertex < 0 || m.Vertex >= d.Len() {
			return res, fmt.Errorf("pebble: step %d: vertex %d out of range", step, m.Vertex)
		}
		switch m.Kind {
		case Input:
			if !blue[m.Vertex] {
				return res, fmt.Errorf("pebble: step %d: input of %s without blue pebble", step, d.Label(m.Vertex))
			}
			if red[m.Vertex] {
				return res, fmt.Errorf("pebble: step %d: input of %s already red", step, d.Label(m.Vertex))
			}
			if redCount == s {
				return res, fmt.Errorf("pebble: step %d: input of %s exceeds %d red pebbles", step, d.Label(m.Vertex), s)
			}
			red[m.Vertex] = true
			redCount++
			res.Inputs++
		case Output:
			if !red[m.Vertex] {
				return res, fmt.Errorf("pebble: step %d: output of %s without red pebble", step, d.Label(m.Vertex))
			}
			blue[m.Vertex] = true
			res.Outputs++
		case Compute:
			for _, p := range d.Preds(m.Vertex) {
				if !red[p] {
					return res, fmt.Errorf("pebble: step %d: compute %s with non-red operand %s",
						step, d.Label(m.Vertex), d.Label(p))
				}
			}
			if d.IsInput(m.Vertex) {
				return res, fmt.Errorf("pebble: step %d: compute of input %s", step, d.Label(m.Vertex))
			}
			if red[m.Vertex] {
				return res, fmt.Errorf("pebble: step %d: compute of %s already red", step, d.Label(m.Vertex))
			}
			if redCount == s {
				return res, fmt.Errorf("pebble: step %d: compute of %s exceeds %d red pebbles", step, d.Label(m.Vertex), s)
			}
			red[m.Vertex] = true
			redCount++
			res.Computes++
		case Delete:
			if !red[m.Vertex] {
				return res, fmt.Errorf("pebble: step %d: delete of %s without red pebble", step, d.Label(m.Vertex))
			}
			red[m.Vertex] = false
			redCount--
			res.Deletes++
		default:
			return res, fmt.Errorf("pebble: step %d: unknown move kind %d", step, int(m.Kind))
		}
		if redCount > res.PeakRed {
			res.PeakRed = redCount
		}
	}
	for _, v := range d.Outputs() {
		if !blue[v] {
			return res, fmt.Errorf("pebble: output %s does not end with a blue pebble", d.Label(v))
		}
	}
	return res, nil
}
