package pebble

import (
	"fmt"
	"math/bits"
)

// FFTDAG builds the n-point radix-2 butterfly network: log₂n levels of n
// vertices above a level of n inputs. Level-l vertex i depends on level-l-1
// vertices i and i XOR 2^(l-1), the same pairing the kernels package
// executes. Vertex id = level·n + i; the last level is the output set.
func FFTDAG(n int) (*DAG, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("pebble: FFT size %d must be a power of two ≥ 2", n)
	}
	levels := bits.TrailingZeros(uint(n))
	d := NewDAG((levels + 1) * n)
	for l := 1; l <= levels; l++ {
		bit := 1 << (l - 1)
		for i := 0; i < n; i++ {
			v := l*n + i
			d.AddEdge((l-1)*n+i, v)
			d.AddEdge((l-1)*n+(i^bit), v)
			d.SetLabel(v, fmt.Sprintf("L%d[%d]", l, i))
		}
	}
	for i := 0; i < n; i++ {
		d.SetLabel(i, fmt.Sprintf("in[%d]", i))
		d.MarkOutput(levels*n + i)
	}
	return d, nil
}

// FFTVertex returns the vertex id of level l, index i in an n-point FFTDAG.
func FFTVertex(n, l, i int) int { return l*n + i }

// MatMulDAG builds the n×n matrix product graph: 2n² input vertices (the
// elements of A and B), n³ multiplication vertices, and per output element a
// chain of n-1 additions accumulating the products; the final addition of
// each chain is an output (for n = 1 the single product is the output).
func MatMulDAG(n int) (*DAG, error) {
	if n < 1 {
		return nil, fmt.Errorf("pebble: matmul size %d must be ≥ 1", n)
	}
	nn := n * n
	numMul := n * nn
	numAdd := nn * (n - 1)
	d := NewDAG(2*nn + numMul + numAdd)
	aBase, bBase := 0, nn
	mulBase := 2 * nn
	addBase := mulBase + numMul
	aAt := func(i, k int) int { return aBase + i*n + k }
	bAt := func(k, j int) int { return bBase + k*n + j }
	mulAt := func(i, j, k int) int { return mulBase + (i*n+j)*n + k }
	addAt := func(i, j, k int) int { return addBase + (i*n+j)*(n-1) + (k - 1) }

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				m := mulAt(i, j, k)
				d.AddEdge(aAt(i, k), m)
				d.AddEdge(bAt(k, j), m)
				d.SetLabel(m, fmt.Sprintf("a%d%d*b%d%d", i, k, k, j))
			}
			if n == 1 {
				d.MarkOutput(mulAt(i, j, 0))
				continue
			}
			// Accumulation chain: add_1 = mul_0 + mul_1,
			// add_k = add_{k-1} + mul_k.
			d.AddEdge(mulAt(i, j, 0), addAt(i, j, 1))
			d.AddEdge(mulAt(i, j, 1), addAt(i, j, 1))
			for k := 2; k < n; k++ {
				d.AddEdge(addAt(i, j, k-1), addAt(i, j, k))
				d.AddEdge(mulAt(i, j, k), addAt(i, j, k))
			}
			d.MarkOutput(addAt(i, j, n-1))
		}
	}
	return d, nil
}

// Stencil1DDAG builds t iterations of a 3-point stencil over n points with
// fixed boundary: iteration l point i (1 ≤ i ≤ n-2) depends on iteration
// l-1 points i-1, i, i+1; boundary columns copy forward as inputs reused at
// every level (modeled by edges from the original boundary inputs). The last
// iteration's interior points are outputs.
func Stencil1DDAG(n, t int) (*DAG, error) {
	if n < 3 {
		return nil, fmt.Errorf("pebble: stencil width %d must be ≥ 3", n)
	}
	if t < 1 {
		return nil, fmt.Errorf("pebble: stencil iterations %d must be ≥ 1", t)
	}
	// Vertex (l, i) = l*n + i; level 0 are inputs. Boundary points exist
	// only at level 0.
	id := func(l, i int) int {
		if i == 0 || i == n-1 {
			return i // boundary: always the level-0 vertex
		}
		return l*n + i
	}
	d := NewDAG((t + 1) * n) // boundary slots above level 0 stay isolated inputs? no: unused ids avoided below
	for l := 1; l <= t; l++ {
		for i := 1; i < n-1; i++ {
			v := l*n + i
			d.AddEdge(id(l-1, i-1), v)
			d.AddEdge(id(l-1, i), v)
			d.AddEdge(id(l-1, i+1), v)
		}
	}
	for i := 1; i < n-1; i++ {
		d.MarkOutput(t*n + i)
	}
	return d, nil
}

// Stencil2DDAG builds t iterations of a 5-point stencil over an n×n grid
// with fixed boundary: iteration l point (i,j) depends on iteration l-1
// points (i,j), (i±1,j), (i,j±1); boundary points exist only at level 0 and
// feed every level. The last iteration's interior is the output set — the
// DAG form of the §3.3 two-dimensional grid computation.
func Stencil2DDAG(n, t int) (*DAG, error) {
	if n < 3 {
		return nil, fmt.Errorf("pebble: 2-D stencil side %d must be ≥ 3", n)
	}
	if t < 1 {
		return nil, fmt.Errorf("pebble: 2-D stencil iterations %d must be ≥ 1", t)
	}
	id := func(l, i, j int) int {
		if i == 0 || i == n-1 || j == 0 || j == n-1 {
			return i*n + j // boundary: always the level-0 vertex
		}
		return l*n*n + i*n + j
	}
	d := NewDAG((t + 1) * n * n)
	for l := 1; l <= t; l++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				v := l*n*n + i*n + j
				d.AddEdge(id(l-1, i, j), v)
				d.AddEdge(id(l-1, i-1, j), v)
				d.AddEdge(id(l-1, i+1, j), v)
				d.AddEdge(id(l-1, i, j-1), v)
				d.AddEdge(id(l-1, i, j+1), v)
			}
		}
	}
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			d.MarkOutput(t*n*n + i*n + j)
		}
	}
	return d, nil
}

// DiamondDAG builds a width-2 diamond of the given depth: one source fans
// out to two parallel chains that re-converge at a sink every level —
// a minimal DAG with non-trivial optimal pebblings, used by the exhaustive
// search tests.
func DiamondDAG(depth int) (*DAG, error) {
	if depth < 1 {
		return nil, fmt.Errorf("pebble: diamond depth %d must be ≥ 1", depth)
	}
	// Vertices: 0 source; per level l ∈ [0,depth): left=1+3l, right=2+3l,
	// join=3+3l.
	d := NewDAG(1 + 3*depth)
	prev := 0
	for l := 0; l < depth; l++ {
		left, right, join := 1+3*l, 2+3*l, 3+3*l
		d.AddEdge(prev, left)
		d.AddEdge(prev, right)
		d.AddEdge(left, join)
		d.AddEdge(right, join)
		prev = join
	}
	d.MarkOutput(prev)
	return d, nil
}

// ChainDAG builds a simple path of n vertices; the last is the output. Any
// S ≥ 2 pebbles it with exactly 1 input + 1 output I/O.
func ChainDAG(n int) (*DAG, error) {
	if n < 1 {
		return nil, fmt.Errorf("pebble: chain length %d must be ≥ 1", n)
	}
	d := NewDAG(n)
	for v := 1; v < n; v++ {
		d.AddEdge(v-1, v)
	}
	d.MarkOutput(n - 1)
	return d, nil
}

// BinaryTreeDAG builds a complete binary reduction tree with the given
// number of leaves (a power of two); the root is the output.
func BinaryTreeDAG(leaves int) (*DAG, error) {
	if leaves < 2 || bits.OnesCount(uint(leaves)) != 1 {
		return nil, fmt.Errorf("pebble: leaves %d must be a power of two ≥ 2", leaves)
	}
	total := 2*leaves - 1
	d := NewDAG(total)
	// Heap layout: node v has children 2v+1, 2v+2; leaves occupy the tail.
	for v := 0; v < leaves-1; v++ {
		d.AddEdge(2*v+1, v)
		d.AddEdge(2*v+2, v)
	}
	d.MarkOutput(0)
	return d, nil
}
