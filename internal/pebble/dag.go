// Package pebble implements the red-blue pebble game of Hong and Kung
// (1981), the lower-bound machinery behind the paper's "best possible"
// claims (§3.1, §3.4, §3.5). Red pebbles model words in the PE's local
// memory (at most S at once); blue pebbles model words in the outside world
// (unlimited). Moving a value between the two colors is one I/O operation;
// the minimum number of such moves over all legal pebbling schedules is the
// computation's intrinsic I/O cost at memory size S.
//
// The package provides the computation DAGs the paper discusses (FFT
// butterfly networks, matrix product graphs, stencils), a schedule executor
// that validates legality and counts I/O, a Belady-style greedy scheduler, a
// blocked FFT scheduler mirroring Fig. 2, an exhaustive optimum search for
// tiny DAGs, and the closed-form lower bounds.
package pebble

import "fmt"

// DAG is a directed acyclic computation graph. Vertices are numbered 0..n-1
// and every edge points from an operand to the operation consuming it.
// Inputs (no predecessors) start the game with blue pebbles.
type DAG struct {
	preds   [][]int
	succs   [][]int
	outputs []int
	labels  []string
}

// NewDAG creates a graph with n isolated vertices.
func NewDAG(n int) *DAG {
	if n <= 0 {
		panic(fmt.Sprintf("pebble: DAG size %d must be positive", n))
	}
	return &DAG{
		preds:  make([][]int, n),
		succs:  make([][]int, n),
		labels: make([]string, n),
	}
}

// Len returns the number of vertices.
func (d *DAG) Len() int { return len(d.preds) }

// AddEdge records that vertex to consumes the value of vertex from.
func (d *DAG) AddEdge(from, to int) {
	d.check(from)
	d.check(to)
	if from == to {
		panic(fmt.Sprintf("pebble: self edge at %d", from))
	}
	d.preds[to] = append(d.preds[to], from)
	d.succs[from] = append(d.succs[from], to)
}

// MarkOutput declares v a result that must end the game with a blue pebble.
func (d *DAG) MarkOutput(v int) {
	d.check(v)
	d.outputs = append(d.outputs, v)
}

// SetLabel attaches a human-readable name to v for diagnostics.
func (d *DAG) SetLabel(v int, label string) {
	d.check(v)
	d.labels[v] = label
}

// Label returns the vertex name, or its number if unnamed.
func (d *DAG) Label(v int) string {
	if d.labels[v] != "" {
		return d.labels[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Preds returns the operand vertices of v (shared slice; do not modify).
func (d *DAG) Preds(v int) []int { return d.preds[v] }

// Succs returns the consumers of v (shared slice; do not modify).
func (d *DAG) Succs(v int) []int { return d.succs[v] }

// Outputs returns the declared result vertices.
func (d *DAG) Outputs() []int { return d.outputs }

// IsInput reports whether v has no predecessors.
func (d *DAG) IsInput(v int) bool { return len(d.preds[v]) == 0 }

// Inputs returns all vertices with no predecessors.
func (d *DAG) Inputs() []int {
	var ins []int
	for v := range d.preds {
		if len(d.preds[v]) == 0 {
			ins = append(ins, v)
		}
	}
	return ins
}

// MaxInDegree returns the largest predecessor count, which lower-bounds the
// red pebbles any schedule needs (S ≥ MaxInDegree + 1).
func (d *DAG) MaxInDegree() int {
	worst := 0
	for _, p := range d.preds {
		if len(p) > worst {
			worst = len(p)
		}
	}
	return worst
}

// TopoOrder returns a topological ordering, or an error if the graph has a
// cycle.
func (d *DAG) TopoOrder() ([]int, error) {
	n := d.Len()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(d.preds[v])
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range d.succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("pebble: graph has a cycle (%d of %d ordered)", len(order), n)
	}
	return order, nil
}

func (d *DAG) check(v int) {
	if v < 0 || v >= d.Len() {
		panic(fmt.Sprintf("pebble: vertex %d out of range [0,%d)", v, d.Len()))
	}
}
