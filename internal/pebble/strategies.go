package pebble

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// GreedySchedule produces a legal schedule that computes every vertex once
// in topological order, keeping operands in red pebbles and evicting with a
// Belady-style furthest-next-use policy. Evicted values that are still
// needed are written out (Output) before deletion so they can be re-read
// later; values with no remaining consumers are deleted for free. Declared
// outputs are written out when computed.
//
// GreedySchedule requires s ≥ MaxInDegree+1 red pebbles.
func GreedySchedule(d *DAG, s int) (Schedule, error) {
	if need := d.MaxInDegree() + 1; s < need {
		return nil, fmt.Errorf("pebble: %d red pebbles < required %d (max in-degree + 1)", s, need)
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int, d.Len()) // topo position of each vertex
	for i, v := range order {
		pos[v] = i
	}

	// useQueue[v] lists the topo positions of v's consumers, ascending.
	useQueue := make([][]int, d.Len())
	for v := 0; v < d.Len(); v++ {
		for _, c := range d.Succs(v) {
			useQueue[v] = append(useQueue[v], pos[c])
		}
		sort.Ints(useQueue[v])
	}

	isOutput := make([]bool, d.Len())
	for _, v := range d.Outputs() {
		isOutput[v] = true
	}

	var sched Schedule
	red := make(map[int]bool, s)
	blue := make([]bool, d.Len())
	for _, v := range d.Inputs() {
		blue[v] = true
	}

	nextUse := func(v int) int {
		if len(useQueue[v]) == 0 {
			return math.MaxInt
		}
		return useQueue[v][0]
	}
	evictOne := func() {
		victim, worst := -1, -1
		for v := range red {
			if nu := nextUse(v); nu > worst {
				victim, worst = v, nu
			}
		}
		if !blue[victim] && nextUse(victim) != math.MaxInt {
			sched = append(sched, Move{Output, victim})
			blue[victim] = true
		}
		sched = append(sched, Move{Delete, victim})
		delete(red, victim)
	}
	makeRoom := func(n int) {
		for len(red)+n > s {
			evictOne()
		}
	}

	for _, v := range order {
		if d.IsInput(v) {
			continue
		}
		// Bring missing operands into red pebbles.
		for _, p := range d.Preds(v) {
			if red[p] {
				continue
			}
			if !blue[p] {
				// A needed operand was evicted without Output —
				// impossible by construction of evictOne.
				return nil, fmt.Errorf("pebble: internal error: operand %s neither red nor blue", d.Label(p))
			}
			makeRoom(1)
			sched = append(sched, Move{Input, p})
			red[p] = true
		}
		// Compute v. Operands are protected from eviction by their
		// imminent next use (== v's position, the minimum possible).
		makeRoom(1)
		sched = append(sched, Move{Compute, v})
		red[v] = true
		if isOutput[v] {
			sched = append(sched, Move{Output, v})
			blue[v] = true
		}
		// Consume one pending use of each operand; drop operands that
		// are exhausted.
		for _, p := range d.Preds(v) {
			useQueue[p] = useQueue[p][1:]
			if len(useQueue[p]) == 0 && red[p] {
				sched = append(sched, Move{Delete, p})
				delete(red, p)
			}
		}
		if len(useQueue[v]) == 0 && red[v] {
			sched = append(sched, Move{Delete, v})
			delete(red, v)
		}
	}
	return sched, nil
}

// BlockedFFTSchedule pebbles an n-point FFTDAG with the Fig. 2 block
// decomposition at block size m (a power of two ≤ n): passes of log₂m
// levels; within a pass each block's current values are Input, the block's
// sub-network is computed level by level, and the results are Output. It
// needs s = m + 2 red pebbles (the block plus one butterfly in flight) and
// costs exactly 2·n·passes I/O (+n for the final outputs already counted).
func BlockedFFTSchedule(n, m int) (Schedule, int, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, 0, fmt.Errorf("pebble: FFT size %d must be a power of two ≥ 2", n)
	}
	if m < 2 || bits.OnesCount(uint(m)) != 1 || m > n {
		return nil, 0, fmt.Errorf("pebble: block %d must be a power of two in [2, %d]", m, n)
	}
	totalLevels := bits.TrailingZeros(uint(n))
	perPass := bits.TrailingZeros(uint(m))
	var sched Schedule

	for levelLo := 0; levelLo < totalLevels; levelLo += perPass {
		lp := min(perPass, totalLevels-levelLo)
		groupSize := 1 << lp
		stride := 1 << levelLo
		for g := 0; g < n/groupSize; g++ {
			base := g&(stride-1) | (g >> levelLo << (levelLo + lp))
			// Input the block's current-level values.
			idx := make([]int, groupSize)
			for t := 0; t < groupSize; t++ {
				idx[t] = base + t*stride
			}
			for _, i := range idx {
				sched = append(sched, Move{Input, FFTVertex(n, levelLo, i)})
			}
			// Compute lp levels butterfly by butterfly: place both
			// results, then delete both operands.
			for l := 0; l < lp; l++ {
				lev := levelLo + l
				half := 1 << l
				for bb := 0; bb < groupSize; bb += 2 * half {
					for k := 0; k < half; k++ {
						i0, i1 := idx[bb+k], idx[bb+k+half]
						sched = append(sched,
							Move{Compute, FFTVertex(n, lev+1, i0)},
							Move{Compute, FFTVertex(n, lev+1, i1)},
							Move{Delete, FFTVertex(n, lev, i0)},
							Move{Delete, FFTVertex(n, lev, i1)},
						)
					}
				}
			}
			// Output the block's final-level values and clear reds.
			for _, i := range idx {
				v := FFTVertex(n, levelLo+lp, i)
				sched = append(sched, Move{Output, v}, Move{Delete, v})
			}
		}
	}
	return sched, m + 2, nil
}
