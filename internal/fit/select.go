package fit

import (
	"fmt"
	"math"
)

// ModelKind identifies the functional family that best explains a measured
// ratio curve R(M). The three families cover all rows of the paper's summary
// table: power laws (matrix and grid computations, exponent 1/d), logarithms
// (FFT and sorting), and constants (I/O-bounded computations).
type ModelKind int

const (
	// ModelPower is R(M) = c * M^e for e bounded away from 0.
	ModelPower ModelKind = iota
	// ModelLog is R(M) = s * log2(M) + b.
	ModelLog
	// ModelConstant is R(M) = c.
	ModelConstant
)

// String returns the model family name.
func (k ModelKind) String() string {
	switch k {
	case ModelPower:
		return "power"
	case ModelLog:
		return "logarithmic"
	case ModelConstant:
		return "constant"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// Selection reports which model family best explains the data, with the
// fitted parameters for every family so callers can show the alternatives.
type Selection struct {
	Best     ModelKind
	Power    PowerLaw
	Log      Logarithmic
	Constant Constant
	// Scores holds the comparison metric (residual sum of squares of the
	// normalized data) per family; lower is better.
	Scores map[ModelKind]float64
}

// SelectModel decides whether ys as a function of xs looks like a power law,
// a logarithm, or a constant. The decision compares residual sums of squares
// of each fitted family on relative (normalized) residuals so the families
// are comparable even though they are fitted in different spaces.
//
// A near-zero fitted power exponent and a near-zero log scale both
// degenerate to the constant family; SelectModel treats data with relative
// spread under flatTol (2%) as constant outright.
func SelectModel(xs, ys []float64) (Selection, error) {
	const flatTol = 0.02
	if len(xs) != len(ys) || len(xs) < 3 {
		return Selection{}, ErrInsufficientData
	}
	sel := Selection{Scores: make(map[ModelKind]float64, 3)}

	var err error
	if sel.Constant, err = FitConstant(ys); err != nil {
		return Selection{}, err
	}
	if sel.Constant.RelativeSpread < flatTol {
		sel.Best = ModelConstant
		sel.Scores[ModelConstant] = 0
		// Fill in the other fits on a best-effort basis for reporting.
		sel.Power, _ = FitPowerLaw(xs, ys)
		sel.Log, _ = FitLogarithmic(xs, ys)
		return sel, nil
	}

	if sel.Power, err = FitPowerLaw(xs, ys); err != nil {
		return Selection{}, err
	}
	if sel.Log, err = FitLogarithmic(xs, ys); err != nil {
		return Selection{}, err
	}

	sel.Scores[ModelPower] = relRSS(xs, ys, sel.Power.Eval)
	sel.Scores[ModelLog] = relRSS(xs, ys, sel.Log.Eval)
	sel.Scores[ModelConstant] = relRSS(xs, ys, func(float64) float64 { return sel.Constant.Value })

	sel.Best = ModelPower
	for _, k := range []ModelKind{ModelLog, ModelConstant} {
		if sel.Scores[k] < sel.Scores[sel.Best] {
			sel.Best = k
		}
	}
	// A power law with a near-zero exponent or a logarithm with a
	// near-zero scale is the constant family in disguise: an I/O-bounded
	// computation's ratio rises by a vanishing residual term (e.g.
	// 2/(1+1/chunk) → 2), which a free parameter will chase. Reclassify
	// when the fitted model's total rise across the sweep is a small
	// fraction of the data's mean. Genuinely logarithmic data (FFT,
	// sorting) rises by ≳70% of its mean over any multi-decade sweep, so
	// a 25% threshold separates the families cleanly.
	const degenerateExponent = 0.05
	const degenerateRise = 0.25
	if sel.Best == ModelPower && math.Abs(sel.Power.Exponent) < degenerateExponent {
		sel.Best = ModelConstant
	}
	if sel.Best == ModelLog {
		rise := math.Abs(sel.Log.Scale) * math.Log2(GeometricSpan(xs))
		if rise < degenerateRise*math.Abs(sel.Constant.Value) {
			sel.Best = ModelConstant
		}
	}
	return sel, nil
}

// relRSS is the sum of squared relative residuals of model against the data.
func relRSS(xs, ys []float64, model func(float64) float64) float64 {
	var rss float64
	for i := range xs {
		pred := model(xs[i])
		denom := math.Abs(ys[i])
		if denom == 0 {
			denom = 1
		}
		r := (pred - ys[i]) / denom
		rss += r * r
	}
	return rss
}

// GeometricSpan returns max/min of the values, a quick measure of how much a
// sweep actually varied; experiment harnesses use it to assert their sweeps
// cover enough dynamic range for fits to be meaningful.
func GeometricSpan(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}
