package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestLeastSquaresExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	line, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "slope", line.Slope, 3, 1e-12)
	approx(t, "intercept", line.Intercept, -7, 1e-12)
	approx(t, "R2", line.R2, 1, 1e-12)
}

func TestLeastSquaresNoisyLine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2.5*x+1+rng.NormFloat64()*0.01)
	}
	line, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "slope", line.Slope, 2.5, 1e-3)
	approx(t, "intercept", line.Intercept, 1, 1e-2)
	if line.R2 < 0.999 {
		t.Errorf("R2 = %v, want near 1", line.R2)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Error("single point: want error")
	}
	if _, err := LeastSquares([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths: want error")
	}
	if _, err := LeastSquares([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x variance: want error")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 4 * x^0.5, the matmul ratio shape.
	var xs, ys []float64
	for m := 64; m <= 1<<20; m *= 4 {
		xs = append(xs, float64(m))
		ys = append(ys, 4*math.Sqrt(float64(m)))
	}
	p, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "exponent", p.Exponent, 0.5, 1e-9)
	approx(t, "coeff", p.Coeff, 4, 1e-6)
	approx(t, "R2", p.R2, 1, 1e-12)
	approx(t, "Eval(256)", p.Eval(256), 64, 1e-6)
}

func TestFitPowerLawRejectsNonPositive(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2, 0}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x: want error")
	}
	if _, err := FitPowerLaw([]float64{1, 2, 3}, []float64{1, -2, 3}); err == nil {
		t.Error("negative y: want error")
	}
}

func TestFitLogarithmicExact(t *testing.T) {
	// y = 0.5*log2(x) + 3, the FFT/sort ratio shape.
	var xs, ys []float64
	for m := 16; m <= 1<<16; m *= 2 {
		xs = append(xs, float64(m))
		ys = append(ys, 0.5*math.Log2(float64(m))+3)
	}
	l, err := FitLogarithmic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "scale", l.Scale, 0.5, 1e-9)
	approx(t, "offset", l.Offset, 3, 1e-9)
	approx(t, "Eval(1024)", l.Eval(1024), 8, 1e-9)
}

func TestFitConstant(t *testing.T) {
	c, err := FitConstant([]float64{2, 2.02, 1.98, 2})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "value", c.Value, 2, 0.01)
	approx(t, "spread", c.RelativeSpread, 0.02, 1e-6)
	if _, err := FitConstant(nil); err == nil {
		t.Error("empty data: want error")
	}
}

func TestSelectModelPower(t *testing.T) {
	var xs, ys []float64
	for m := 64; m <= 1<<22; m *= 2 {
		xs = append(xs, float64(m))
		ys = append(ys, 0.9*math.Pow(float64(m), 0.33))
	}
	sel, err := SelectModel(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != ModelPower {
		t.Fatalf("best = %v, want power (scores=%v)", sel.Best, sel.Scores)
	}
	approx(t, "exponent", sel.Power.Exponent, 0.33, 0.01)
}

func TestSelectModelLog(t *testing.T) {
	var xs, ys []float64
	for m := 16; m <= 1<<24; m *= 2 {
		xs = append(xs, float64(m))
		ys = append(ys, math.Log2(float64(m)))
	}
	sel, err := SelectModel(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != ModelLog {
		t.Fatalf("best = %v, want logarithmic (scores=%v)", sel.Best, sel.Scores)
	}
	approx(t, "scale", sel.Log.Scale, 1, 0.01)
}

func TestSelectModelConstant(t *testing.T) {
	var xs, ys []float64
	for m := 16; m <= 1<<16; m *= 2 {
		xs = append(xs, float64(m))
		ys = append(ys, 2.0) // matvec ratio: flat
	}
	sel, err := SelectModel(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != ModelConstant {
		t.Fatalf("best = %v, want constant", sel.Best)
	}
	approx(t, "value", sel.Constant.Value, 2, 1e-9)
}

func TestSelectModelNearConstantWithJitter(t *testing.T) {
	// 1% jitter must still classify as constant via the flat-tolerance path.
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for m := 16; m <= 1<<16; m *= 2 {
		xs = append(xs, float64(m))
		ys = append(ys, 2.0*(1+0.004*rng.Float64()))
	}
	sel, err := SelectModel(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != ModelConstant {
		t.Fatalf("best = %v, want constant (scores=%v)", sel.Best, sel.Scores)
	}
}

func TestSelectModelInsufficient(t *testing.T) {
	if _, err := SelectModel([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("two points: want error")
	}
}

func TestGeometricSpan(t *testing.T) {
	approx(t, "span", GeometricSpan([]float64{2, 16, 4}), 8, 1e-12)
	if GeometricSpan(nil) != 0 {
		t.Error("empty span should be 0")
	}
	if !math.IsInf(GeometricSpan([]float64{0, 1}), 1) {
		t.Error("span with zero should be +Inf")
	}
}

// Property: fitting a perfect line y = a*x + b recovers a and b for any
// reasonable a, b.
func TestLeastSquaresRecoveryProperty(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a := float64(a8) / 4
		b := float64(b8) / 4
		xs := []float64{1, 2, 3, 5, 8, 13}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		line, err := LeastSquares(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(line.Slope-a) < 1e-9 && math.Abs(line.Intercept-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: power-law fit recovers positive exponents exactly from exact data.
func TestPowerLawRecoveryProperty(t *testing.T) {
	f := func(e8 uint8) bool {
		e := 0.1 + float64(e8%30)/10 // exponents in [0.1, 3.0]
		xs := []float64{2, 4, 8, 16, 32, 64}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = 2 * math.Pow(x, e)
		}
		p, err := FitPowerLaw(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(p.Exponent-e) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
