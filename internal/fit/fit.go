// Package fit provides the small amount of numerical machinery the
// reproduction needs to turn measured (M, Ccomp/Cio) curves into verdicts
// about the paper's Θ-claims: ordinary least squares on a line, power-law
// fits via log-log regression, logarithmic fits, constant fits, and a model
// selector that picks the best-explaining functional form.
//
// Everything is implemented from the standard library only; the data sets in
// this repository are tiny (tens of points), so numerically simple formulas
// are adequate and are cross-checked by the package tests against
// analytically known inputs.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Line is the result of an ordinary least squares fit y ≈ Slope*x + Intercept.
type Line struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination in the fitted space
	N         int     // number of points used
}

func (l Line) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (R²=%.4f, n=%d)", l.Slope, l.Intercept, l.R2, l.N)
}

// ErrInsufficientData is returned when a fit is requested on fewer points
// than the model has parameters, or on degenerate (zero-variance) abscissae.
var ErrInsufficientData = errors.New("fit: insufficient or degenerate data")

// LeastSquares fits y ≈ a*x + b by ordinary least squares.
func LeastSquares(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) {
		return Line{}, fmt.Errorf("fit: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Line{}, ErrInsufficientData
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{}, ErrInsufficientData
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		// R² = 1 - SSres/SStot, computed via the regression identity.
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return Line{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// PowerLaw is the result of fitting y ≈ Coeff * x^Exponent.
type PowerLaw struct {
	Exponent float64
	Coeff    float64
	R2       float64 // R² of the underlying log-log linear fit
	N        int
}

func (p PowerLaw) String() string {
	return fmt.Sprintf("y = %.4g * x^%.4f (R²=%.4f, n=%d)", p.Coeff, p.Exponent, p.R2, p.N)
}

// Eval evaluates the fitted power law at x.
func (p PowerLaw) Eval(x float64) float64 { return p.Coeff * math.Pow(x, p.Exponent) }

// FitPowerLaw fits y ≈ c*x^e by linear regression in log-log space. All xs
// and ys must be strictly positive.
func FitPowerLaw(xs, ys []float64) (PowerLaw, error) {
	lx, ly, err := logBoth(xs, ys)
	if err != nil {
		return PowerLaw{}, err
	}
	line, err := LeastSquares(lx, ly)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{
		Exponent: line.Slope,
		Coeff:    math.Exp(line.Intercept),
		R2:       line.R2,
		N:        line.N,
	}, nil
}

// Logarithmic is the result of fitting y ≈ Scale*log2(x) + Offset.
type Logarithmic struct {
	Scale  float64
	Offset float64
	R2     float64
	N      int
}

func (l Logarithmic) String() string {
	return fmt.Sprintf("y = %.4g*log2(x) + %.4g (R²=%.4f, n=%d)", l.Scale, l.Offset, l.R2, l.N)
}

// Eval evaluates the fitted logarithmic model at x.
func (l Logarithmic) Eval(x float64) float64 { return l.Scale*math.Log2(x) + l.Offset }

// FitLogarithmic fits y ≈ s*log2(x) + b. All xs must be strictly positive.
func FitLogarithmic(xs, ys []float64) (Logarithmic, error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Logarithmic{}, fmt.Errorf("fit: non-positive x[%d]=%v in logarithmic fit", i, x)
		}
		lx[i] = math.Log2(x)
	}
	line, err := LeastSquares(lx, ys)
	if err != nil {
		return Logarithmic{}, err
	}
	return Logarithmic{Scale: line.Slope, Offset: line.Intercept, R2: line.R2, N: line.N}, nil
}

// Constant is the result of fitting y ≈ Value (the mean), with the relative
// spread of the data around it.
type Constant struct {
	Value          float64
	RelativeSpread float64 // (max-min)/mean, 0 for perfectly flat data
	N              int
}

func (c Constant) String() string {
	return fmt.Sprintf("y = %.4g (spread=%.2f%%, n=%d)", c.Value, 100*c.RelativeSpread, c.N)
}

// FitConstant fits the constant model.
func FitConstant(ys []float64) (Constant, error) {
	if len(ys) == 0 {
		return Constant{}, ErrInsufficientData
	}
	lo, hi, sum := ys[0], ys[0], 0.0
	for _, y := range ys {
		sum += y
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	mean := sum / float64(len(ys))
	spread := 0.0
	if mean != 0 {
		spread = (hi - lo) / math.Abs(mean)
	}
	return Constant{Value: mean, RelativeSpread: spread, N: len(ys)}, nil
}

func logBoth(xs, ys []float64) (lx, ly []float64, err error) {
	if len(xs) != len(ys) {
		return nil, nil, fmt.Errorf("fit: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	lx = make([]float64, len(xs))
	ly = make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return nil, nil, fmt.Errorf("fit: non-positive point (%v, %v) at %d in power-law fit", xs[i], ys[i], i)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return lx, ly, nil
}
