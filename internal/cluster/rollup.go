package cluster

// The cluster /metrics rollup: every node's Snapshot fetched in
// parallel, summed into one Snapshot-shaped aggregate, plus a cluster
// section with per-node health and the gateway's own traffic counters.
// Embedding server.Snapshot keeps the rollup's flat keys identical to a
// node's, so anything that reads node metrics — the loadgen drain gate,
// dashboards — reads gateway metrics unchanged.

import (
	"encoding/json"
	"net/http"
	"time"

	"balarch/internal/obs"
	"balarch/internal/server"
)

// NodeStatus is one member's row in the cluster section.
type NodeStatus struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	InFlight int64  `json:"in_flight"`
	// Proxied and Errors are the gateway's own accounting: requests
	// relayed to the node and transport failures against it.
	Proxied int64 `json:"proxied_total"`
	Errors  int64 `json:"proxy_errors_total"`
	// Reporting marks whether this rollup includes the node's snapshot
	// (a healthy node can still miss one scrape).
	Reporting bool `json:"reporting"`
}

// ClusterInfo is the rollup's cluster section.
type ClusterInfo struct {
	Nodes                int          `json:"nodes"`
	Healthy              int          `json:"healthy"`
	GatewayUptimeSeconds float64      `json:"gateway_uptime_seconds"`
	NodeStatus           []NodeStatus `json:"node_status"`
}

// Rollup is the gateway's GET /metrics body: a node-shaped Snapshot
// aggregated across the cluster, plus the cluster section.
type Rollup struct {
	server.Snapshot
	Cluster ClusterInfo `json:"cluster"`
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	nodes, bodies := g.nodeGet(r.Context(), r.Header, "/metrics")
	var snaps []server.Snapshot
	reporting := make(map[*Node]bool, len(nodes))
	for i, data := range bodies {
		if data == nil {
			continue
		}
		var s server.Snapshot
		if json.Unmarshal(data, &s) != nil {
			continue
		}
		reporting[nodes[i]] = true
		snaps = append(snaps, s)
	}
	roll := Rollup{
		Snapshot: aggregateSnapshots(snaps),
		Cluster: ClusterInfo{
			Nodes:                len(g.m.nodes),
			Healthy:              len(g.m.healthySnapshot()),
			GatewayUptimeSeconds: time.Since(g.start).Seconds(),
		},
	}
	for _, n := range g.m.nodes {
		roll.Cluster.NodeStatus = append(roll.Cluster.NodeStatus, NodeStatus{
			Name:      n.name,
			Healthy:   n.healthy.Load(),
			InFlight:  n.inflight.Load(),
			Proxied:   n.proxied.Load(),
			Errors:    n.proxyErrors.Load(),
			Reporting: reporting[n],
		})
	}
	if r.URL.Query().Get("format") == "prometheus" {
		g.writePromRollup(w, &roll)
		return
	}
	g.writeJSON(w, http.StatusOK, roll)
}

// aggregateSnapshots sums node snapshots into one cluster view:
// counters and maps sum, histograms add bucket-wise (every node buckets
// on the same bounds), quantiles take the cluster-conservative maximum
// (a summed histogram cannot be re-quantiled without raw counts per
// route — max is honest: no route is slower than its slowest node),
// and uptime is the oldest node's.
func aggregateSnapshots(snaps []server.Snapshot) server.Snapshot {
	agg := server.Snapshot{
		Requests:      map[string]int64{},
		RouteLatency:  map[string]server.RouteLatency{},
		StatusClasses: map[string]int64{},
	}
	var totalReq int64
	var latWeighted float64
	for _, s := range snaps {
		if s.UptimeSeconds > agg.UptimeSeconds {
			agg.UptimeSeconds = s.UptimeSeconds
		}
		agg.InFlight += s.InFlight
		agg.Panics += s.Panics
		agg.CacheHits += s.CacheHits
		agg.CacheMisses += s.CacheMisses
		agg.StoreHits += s.StoreHits
		agg.StoreMisses += s.StoreMisses
		agg.StoreBytes += s.StoreBytes
		agg.StoreEntries += s.StoreEntries
		agg.JobsQueued += s.JobsQueued
		agg.JobsRunning += s.JobsRunning
		agg.JobsDone += s.JobsDone
		agg.JobsFailed += s.JobsFailed
		agg.JobsCanceled += s.JobsCanceled
		agg.JobsReplayed += s.JobsReplayed
		agg.SchedPicks += s.SchedPicks
		agg.SchedSkips += s.SchedSkips
		agg.SchedMaxWaitPicks += s.SchedMaxWaitPicks
		agg.SchedDrainBPS += s.SchedDrainBPS
		agg.SchedRunningBytes += s.SchedRunningBytes
		if agg.SchedPolicy == "" {
			agg.SchedPolicy = s.SchedPolicy
		}
		if agg.SchedSelfState == "" || agg.SchedSelfState == "idle" {
			// The cluster is "idle" only when every node is.
			if s.SchedSelfState != "" {
				agg.SchedSelfState = s.SchedSelfState
			}
		}
		for route, n := range s.Requests {
			agg.Requests[route] += n
		}
		for class, n := range s.StatusClasses {
			agg.StatusClasses[class] += n
		}
		for route, rl := range s.RouteLatency {
			cur := agg.RouteLatency[route]
			merged := server.RouteLatency{Count: cur.Count + rl.Count}
			if cur.Count+rl.Count > 0 {
				merged.MeanSeconds = (cur.MeanSeconds*float64(cur.Count) +
					rl.MeanSeconds*float64(rl.Count)) / float64(cur.Count+rl.Count)
			}
			merged.P50Seconds = maxF(cur.P50Seconds, rl.P50Seconds)
			merged.P95Seconds = maxF(cur.P95Seconds, rl.P95Seconds)
			merged.P99Seconds = maxF(cur.P99Seconds, rl.P99Seconds)
			merged.MaxSeconds = maxF(cur.MaxSeconds, rl.MaxSeconds)
			agg.RouteLatency[route] = merged
		}
		var nodeReq int64
		for _, n := range s.Requests {
			nodeReq += n
		}
		totalReq += nodeReq
		latWeighted += s.LatencyMean * float64(nodeReq)
		if agg.LatencyBuckets == nil {
			agg.LatencyBuckets = append([]server.HistogramBucket(nil), s.LatencyBuckets...)
		} else if len(agg.LatencyBuckets) == len(s.LatencyBuckets) {
			for i := range agg.LatencyBuckets {
				agg.LatencyBuckets[i].Count += s.LatencyBuckets[i].Count
			}
		}
		for name, ts := range s.Tenants {
			if agg.Tenants == nil {
				agg.Tenants = map[string]server.TenantSnapshot{}
			}
			cur := agg.Tenants[name]
			cur.Requests += ts.Requests
			cur.RateLimited += ts.RateLimited
			cur.OverBudget += ts.OverBudget
			cur.JobMemInUse += ts.JobMemInUse
			cur.JobMemBudget += ts.JobMemBudget
			cur.SchedServed += ts.SchedServed
			agg.Tenants[name] = cur
		}
	}
	if totalReq > 0 {
		agg.LatencyMean = latWeighted / float64(totalReq)
	}
	if lookups := agg.CacheHits + agg.CacheMisses; lookups > 0 {
		agg.CacheHitRate = float64(agg.CacheHits) / float64(lookups)
	}
	return agg
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// writePromRollup renders the rollup as Prometheus text: the cluster
// gauges, per-node health and traffic, and the aggregate counters the
// JSON body carries — through the same zero-intermediate PromEnc the
// nodes use.
func (g *Gateway) writePromRollup(w http.ResponseWriter, roll *Rollup) {
	bb := getBuf()
	defer putBuf(bb)
	e := obs.PromEnc{B: bb.b[:0]}

	e.Header("balarch_cluster_nodes", "Configured cluster members.", "gauge")
	e.Begin("balarch_cluster_nodes")
	e.Int(int64(roll.Cluster.Nodes))
	e.Header("balarch_cluster_healthy_nodes", "Members currently in the serving set.", "gauge")
	e.Begin("balarch_cluster_healthy_nodes")
	e.Int(int64(roll.Cluster.Healthy))
	e.Header("balarch_gateway_uptime_seconds", "Gateway uptime.", "gauge")
	e.Begin("balarch_gateway_uptime_seconds")
	e.Value(roll.Cluster.GatewayUptimeSeconds)

	e.Header("balarch_cluster_node_up", "Per-node health as seen by the gateway.", "gauge")
	for _, ns := range roll.Cluster.NodeStatus {
		e.Begin("balarch_cluster_node_up")
		e.Label("node", ns.Name)
		if ns.Healthy {
			e.Int(1)
		} else {
			e.Int(0)
		}
	}
	e.Header("balarch_cluster_node_in_flight", "Requests the gateway currently has in flight per node.", "gauge")
	for _, ns := range roll.Cluster.NodeStatus {
		e.Begin("balarch_cluster_node_in_flight")
		e.Label("node", ns.Name)
		e.Int(ns.InFlight)
	}
	e.Header("balarch_gateway_proxied_total", "Requests relayed per node.", "counter")
	for _, ns := range roll.Cluster.NodeStatus {
		e.Begin("balarch_gateway_proxied_total")
		e.Label("node", ns.Name)
		e.Int(ns.Proxied)
	}
	e.Header("balarch_gateway_proxy_errors_total", "Transport failures per node.", "counter")
	for _, ns := range roll.Cluster.NodeStatus {
		e.Begin("balarch_gateway_proxy_errors_total")
		e.Label("node", ns.Name)
		e.Int(ns.Errors)
	}

	e.Header("balarch_cluster_requests_total", "Completed requests summed across nodes, by route.", "counter")
	for route, n := range roll.Requests {
		e.Begin("balarch_cluster_requests_total")
		e.Label("route", route)
		e.Int(n)
	}
	e.Header("balarch_cluster_sweep_cache_hits_total", "Sweep memo hits summed across nodes.", "counter")
	e.Begin("balarch_cluster_sweep_cache_hits_total")
	e.Int(roll.CacheHits)
	e.Header("balarch_cluster_sweep_cache_misses_total", "Sweep memo misses summed across nodes.", "counter")
	e.Begin("balarch_cluster_sweep_cache_misses_total")
	e.Int(roll.CacheMisses)
	e.Header("balarch_cluster_jobs", "Cluster job gauges by state.", "gauge")
	for _, st := range [...]struct {
		name string
		v    int64
	}{
		{"queued", roll.JobsQueued}, {"running", roll.JobsRunning},
		{"done", roll.JobsDone}, {"failed", roll.JobsFailed},
		{"canceled", roll.JobsCanceled},
	} {
		e.Begin("balarch_cluster_jobs")
		e.Label("state", st.name)
		e.Int(st.v)
	}

	if n := len(roll.LatencyBuckets); n > 0 {
		bounds := make([]float64, 0, n)
		counts := make([]int64, 0, n)
		var over int64
		for _, hb := range roll.LatencyBuckets {
			if hb.LeSeconds < 0 {
				over = hb.Count
				continue
			}
			bounds = append(bounds, hb.LeSeconds)
			counts = append(counts, hb.Count)
		}
		var totalReq int64
		for _, c := range roll.Requests {
			totalReq += c
		}
		e.Header("balarch_cluster_request_seconds", "Request latency summed across nodes.", "histogram")
		e.Histogram("balarch_cluster_request_seconds", "", "",
			bounds, counts, over, roll.LatencyMean*float64(totalReq))
	}

	bb.b = e.B
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.B)
}
