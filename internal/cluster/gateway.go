package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"balarch/internal/experiments"
	"balarch/internal/obs"
	"balarch/internal/server"
)

// Options configures a Gateway.
type Options struct {
	// Nodes are the member base URLs ("http://127.0.0.1:18091"). At
	// least one is required; the set is fixed for the gateway's life.
	Nodes []string
	// Replicas is the virtual-node count per member; ≤ 0 means 128.
	Replicas int
	// ProbeInterval is the health-probe period; 0 means 2 s, negative
	// disables active probing (passive ejection still applies).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one node's probe round trip; 0 means 1 s.
	ProbeTimeout time.Duration
	// MaxBodyBytes caps buffered request bodies; 0 means 1 MiB. It
	// should match the nodes' limit: the gateway buffers bodies to route
	// on their content and to retry after a node failure.
	MaxBodyBytes int64
	// MaxBatch caps scatter-gathered batch items; 0 means 64 (the
	// nodes' default — the gateway enforces it because a fanned-out
	// batch never arrives anywhere whole).
	MaxBatch int
	// Parallelism bounds the scatter-gather pools; ≤ 0 means GOMAXPROCS.
	Parallelism int
	// Transport overrides the proxy transport (tests route fake hosts to
	// in-process handlers through it); nil builds one sized per node.
	Transport http.RoundTripper
	// Logger receives probe transitions and proxy failures; nil silences.
	Logger *slog.Logger
}

// Gateway fronts a fixed set of balarchd nodes as one service: keyed
// traffic rides the consistent-hash ring, keyless traffic places by
// two choices, batches and listings scatter-gather.
type Gateway struct {
	opts  Options
	m     *membership
	hc    *http.Client
	start time.Time

	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
}

// New builds a gateway over the node set and starts the health prober
// (unless probing is disabled). Close releases the prober.
func New(opts Options) (*Gateway, error) {
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	m, err := newMembership(opts.Replicas, opts.Nodes)
	if err != nil {
		return nil, err
	}
	tr := opts.Transport
	if tr == nil {
		// Sized per node: the gateway multiplexes every client onto N
		// upstream hosts, so the per-host pool — not the global one — is
		// the resource that must scale with the cluster.
		tr = &http.Transport{
			MaxIdleConns:        128 * len(opts.Nodes),
			MaxIdleConnsPerHost: 128,
			MaxConnsPerHost:     0,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	g := &Gateway{
		opts:    opts,
		m:       m,
		hc:      &http.Client{Transport: tr}, // no Timeout: SSE passthrough streams indefinitely
		start:   time.Now(),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if opts.ProbeInterval > 0 {
		go g.probeLoop()
	} else {
		close(g.stopped)
	}
	return g, nil
}

// Close stops the health prober. The handler keeps serving (on the last
// known membership) — Close is for shutdown, not draining.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.stopped
}

// probeLoop runs the active health rounds: one immediately (so a node
// that was down at boot is ejected within one timeout, not one
// interval), then on the ticker until Close.
func (g *Gateway) probeLoop() {
	defer close(g.stopped)
	ctx := context.Background()
	g.probeOnce(ctx)
	t := time.NewTicker(g.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeOnce(ctx)
		}
	}
}

// probeOnce runs one probe round and logs membership transitions.
func (g *Gateway) probeOnce(ctx context.Context) {
	before := len(g.m.healthySnapshot())
	after := g.m.probeAll(ctx, g.hc, g.opts.ProbeTimeout)
	if after != before && g.opts.Logger != nil {
		g.opts.Logger.Info("cluster membership changed",
			"healthy", after, "nodes", len(g.m.nodes))
	}
}

// Nodes returns the gateway's member set (for status surfaces).
func (g *Gateway) Nodes() []*Node { return g.m.nodes }

// --- routing table ---

// gwRoute is one gateway endpoint: the mux pattern, the description the
// merged GET /v1/ index serves, and the handler. The same table builds
// the mux and the index — the apiRoutes mechanism, applied to the
// gateway — so a cluster route cannot be served without being
// advertised.
type gwRoute struct {
	pattern string
	desc    string
	handler func(*Gateway) http.HandlerFunc
}

var gwRoutes = []gwRoute{
	{"GET /healthz", "gateway liveness: status, uptime, node and experiment counts",
		func(g *Gateway) http.HandlerFunc { return g.handleHealthz }},
	{"GET /readyz", "gateway readiness: 200 while at least one node is healthy, 503 no_nodes otherwise",
		func(g *Gateway) http.HandlerFunc { return g.handleReadyz }},
	{"GET /metrics", "cluster rollup: every node's snapshot aggregated plus per-node health and traffic; ?format=prometheus",
		func(g *Gateway) http.HandlerFunc { return g.handleMetrics }},
	{"GET /v1/{$}", "merged index: the node API surface overlaid with the gateway's cluster routes and error codes",
		func(g *Gateway) http.HandlerFunc { return g.handleIndex }},
	{"POST /v1/sweep", "ring-routed sweep: the canonical memo key owns exactly one node, so the cluster-wide hit rate matches a single node's",
		func(g *Gateway) http.HandlerFunc { return g.handleSweep }},
	{"POST /v1/batch", "scatter-gather fan-out: items spread across the cluster (sweeps ring-routed), request-order reassembly, per-item failure envelopes",
		func(g *Gateway) http.HandlerFunc { return g.handleBatch }},
	{"POST /v1/jobs", "ring-routed submit: the content-derived job id picks the owner node",
		func(g *Gateway) http.HandlerFunc { return g.handleJobSubmit }},
	{"GET /v1/jobs", "scatter-gather job listing across all healthy nodes, newest first (cursorless)",
		func(g *Gateway) http.HandlerFunc { return g.handleJobList }},
	{"GET /v1/jobs/{id}", "ring-routed poll: the job id owns the node that ran it",
		func(g *Gateway) http.HandlerFunc { return g.keyedByID() }},
	{"GET /v1/jobs/{id}/result", "ring-routed result fetch from the owner node's store",
		func(g *Gateway) http.HandlerFunc { return g.keyedByID() }},
	{"GET /v1/jobs/{id}/events", "ring-routed SSE passthrough from the owner node, streamed and flushed per event",
		func(g *Gateway) http.HandlerFunc { return g.handleJobEvents }},
	{"DELETE /v1/jobs/{id}", "ring-routed cancel/forget on the owner node",
		func(g *Gateway) http.HandlerFunc { return g.keyedByID() }},
	{"GET /v1/experiments", "scatter-gather registry union across the cluster",
		func(g *Gateway) http.HandlerFunc { return g.handleExperimentList }},
	{"POST /v1/experiments/{id}", "ring-routed run: one experiment id always lands on one node (its result store)",
		func(g *Gateway) http.HandlerFunc { return g.handleExperimentRun }},
}

// Handler returns the gateway's HTTP surface. Routes not in gwRoutes —
// analyze, rebalance, roofline, emulation, the catalog, and anything
// the nodes grow later — fall to the catch-all and place by two-choice
// load: the gateway only special-cases what needs a key or a fan-out,
// so node API growth does not require gateway releases.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range gwRoutes {
		mux.HandleFunc(rt.pattern, rt.handler(g))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		g.forwardBuffered(w, r, g.m.pick)
	})
	return server.Chain(gatewayIdentity(mux), server.RequestID())
}

// gatewayIdentity gives the gateway's locally-served endpoints (healthz,
// readyz, metrics, the index, fan-out envelopes) the same correlation
// contract a node honors: a sampled traceparent is re-parented and echoed
// on the response. Proxied requests overwrite both headers with the
// owning node's own echoes (copyProxyHeader replaces), so a traced client
// sees exactly one answer either way.
func gatewayIdentity(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
			if tid, _, flags, ok := obs.ParseTraceparent(tp); ok {
				var buf [64]byte
				w.Header().Set(obs.TraceparentHeader,
					string(obs.AppendTraceparent(buf[:0], tid, obs.NewSpanID(), flags)))
			}
		}
		next.ServeHTTP(w, r)
	})
}

// --- gateway-own endpoints ---

// GatewayHealth is the gateway's GET /healthz body: a superset of the
// node HealthResponse (clientsmoke's health check works unchanged
// against a gateway) plus the cluster view.
type GatewayHealth struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Experiments   int     `json:"experiments"`
	Nodes         int     `json:"nodes"`
	Healthy       int     `json:"healthy"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g.writeJSON(w, http.StatusOK, GatewayHealth{
		Status:        "ok",
		UptimeSeconds: time.Since(g.start).Seconds(),
		// The experiment registry is compiled into gateway and nodes
		// alike, so the gateway answers for the cluster without a probe.
		Experiments: len(experiments.Registry()),
		Nodes:       len(g.m.nodes),
		Healthy:     len(g.m.healthySnapshot()),
	})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if len(g.m.healthySnapshot()) == 0 {
		g.writeError(w, http.StatusServiceUnavailable, "no_nodes",
			"no healthy node in the cluster", 1)
		return
	}
	g.writeJSON(w, http.StatusOK, server.ReadyResponse{Status: "ready"})
}

// --- keyed routing ---

// handleSweep routes POST /v1/sweep by the sweep's canonical memo key:
// the body is decoded exactly as a node would decode it, so two
// requests a node's memo would join land on the same node. A body a
// node would reject has no memo entry anywhere and places by load — the
// node then produces the canonical error envelope.
func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	defer putBuf(body)
	pick := g.m.pick
	if key, ok := server.RouteKeyForSweep(body.b); ok {
		pick = func() *Node { return g.m.ownerString(key) }
	}
	g.forwardBody(w, r, body.b, pick, false)
}

// handleJobSubmit routes POST /v1/jobs by the job id the owner node
// will assign — predicted from the canonical request bytes — so the
// submit, every later poll, the result fetch, and the SSE stream all
// resolve to the same node.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	defer putBuf(body)
	pick := g.m.pick
	if id, ok := server.RouteIDForJob(body.b); ok {
		pick = func() *Node { return g.m.ownerString(id) }
	}
	g.forwardBody(w, r, body.b, pick, false)
}

// keyedByID serves the GET/DELETE /v1/jobs/{id}[/...] family: the id
// in the path is the routing key (the same id the submit was routed
// by, since both hash the id string).
func (g *Gateway) keyedByID() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		g.forwardBody(w, r, nil, func() *Node { return g.m.ownerString(id) }, false)
	}
}

// handleJobEvents is keyedByID with streaming: SSE frames must reach
// the client as the node emits them, so the response is copied with a
// flush per chunk instead of buffered whole.
func (g *Gateway) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.forwardBody(w, r, nil, func() *Node { return g.m.ownerString(id) }, true)
}

// handleExperimentRun ring-routes one experiment id; repeated runs of
// the same experiment hit the same node's content-addressed store.
// ?stream=1 responses are SSE, so the copy is flushed per chunk.
func (g *Gateway) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	defer putBuf(body)
	id := r.PathValue("id")
	stream := r.URL.Query().Get("stream") != ""
	g.forwardBody(w, r, body.b, func() *Node { return g.m.ownerString("experiment/" + id) }, stream)
}

// --- proxy core ---

// forwardBuffered reads the body (if any) and forwards with retry.
func (g *Gateway) forwardBuffered(w http.ResponseWriter, r *http.Request, pick func() *Node) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	defer putBuf(body)
	g.forwardBody(w, r, body.b, pick, false)
}

// forwardBody proxies one request whose body is already buffered (nil
// for bodyless methods). pick chooses the target; after a transport
// failure the node is passively ejected and pick runs again — for keyed
// traffic the rebuilt ring deterministically names the failover owner,
// for keyless traffic two-choice simply avoids the dead node. Two
// distinct nodes are attempted before giving up with 502.
func (g *Gateway) forwardBody(w http.ResponseWriter, r *http.Request, body []byte, pick func() *Node, stream bool) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		n := pick()
		if n == nil {
			g.writeError(w, http.StatusServiceUnavailable, "no_nodes",
				"no healthy node in the cluster", 1)
			return
		}
		resp, err := g.roundTrip(r.Context(), n, r.Method, r.URL.RequestURI(), r.Header, body)
		if err != nil {
			lastErr = err
			g.eject(n, err)
			continue
		}
		g.copyResponse(w, resp, stream)
		return
	}
	g.writeError(w, http.StatusBadGateway, "upstream_unreachable",
		fmt.Sprintf("cluster nodes unreachable: %v", lastErr), 0)
}

// roundTrip issues one proxied request to a node: inbound end-to-end
// headers are forwarded, the traceparent is replaced with a child span
// (same trace, new span id) so a traced request shows gateway→node
// edges, and the node's in-flight counter — the two-choice load signal —
// brackets the call.
func (g *Gateway) roundTrip(ctx context.Context, n *Node, method, uri string, inHeader http.Header, body []byte) (*http.Response, error) {
	var rd io.Reader
	if len(body) > 0 {
		// bytes.Reader gives the transport a known ContentLength and a
		// GetBody for its own connection-level retries; the buffer stays
		// alive until the handler returns, past any in-flight read.
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(ctx, method, n.name+uri, rd)
	if err != nil {
		return nil, err
	}
	copyProxyHeader(out.Header, inHeader)
	if tp := inHeader.Get(obs.TraceparentHeader); tp != "" {
		if tid, _, flags, ok := obs.ParseTraceparent(tp); ok {
			var buf [64]byte
			out.Header.Set(obs.TraceparentHeader,
				string(obs.AppendTraceparent(buf[:0], tid, obs.NewSpanID(), flags)))
		}
	}
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	resp, err := g.hc.Do(out)
	if err != nil {
		n.proxyErrors.Add(1)
		return nil, err
	}
	n.proxied.Add(1)
	return resp, nil
}

// eject passively marks a node unhealthy after a transport failure so
// the very next request avoids it; the prober rejoins it when it
// answers again.
func (g *Gateway) eject(n *Node, err error) {
	if g.m.setHealthy(n, false) && g.opts.Logger != nil {
		g.opts.Logger.Warn("node ejected after proxy failure", "node", n.name, "err", err)
	}
}

// copyResponse relays a node response: headers, status, body. stream
// flushes per chunk (SSE); otherwise the body is copied through a
// pooled buffer.
func (g *Gateway) copyResponse(w http.ResponseWriter, resp *http.Response, stream bool) {
	defer resp.Body.Close()
	copyProxyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	bb := getBuf()
	defer putBuf(bb)
	buf := bb.b[:cap(bb.b)]
	if len(buf) == 0 {
		buf = make([]byte, 32<<10)
	}
	flusher, _ := w.(http.Flusher)
	for {
		nr, err := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if stream && flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// hopByHop are the connection-scoped headers a proxy must not forward
// in either direction (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// copyProxyHeader forwards all end-to-end headers.
func copyProxyHeader(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[k] {
			continue
		}
		dst[k] = vs
	}
}

// readBody buffers the request body (routing keys are derived from it
// and retries replay it). A body over the limit answers the node's own
// 413 shape. Returns ok=false after writing the error.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) (*byteBuf, bool) {
	bb := getBuf()
	if r.Body == nil {
		return bb, true
	}
	lr := io.LimitReader(r.Body, g.opts.MaxBodyBytes+1)
	b := bb.b[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := lr.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			bb.b = b
			putBuf(bb)
			g.writeError(w, http.StatusBadRequest, "bad_json", "reading request body: "+err.Error(), 0)
			return nil, false
		}
	}
	if int64(len(b)) > g.opts.MaxBodyBytes {
		bb.b = b
		putBuf(bb)
		g.writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			"http: request body too large", 0)
		return nil, false
	}
	bb.b = b
	return bb, true
}

// --- gateway response encoding ---

// writeJSON encodes a gateway-own response in the nodes' wire style
// (two-space indent, trailing newline).
func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}

// writeError emits the typed error envelope nodes use, so a client
// cannot tell a gateway refusal from a node refusal by shape.
func (g *Gateway) writeError(w http.ResponseWriter, status int, code, msg string, retryAfter int) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	}
	w.WriteHeader(status)
	body, _ := json.MarshalIndent(struct {
		Error server.ErrorBody `json:"error"`
	}{server.ErrorBody{Code: code, Message: msg}}, "", "  ")
	_, _ = w.Write(append(body, '\n'))
}

// --- pooled buffers (the cluster package's copy of the server idiom) ---

type byteBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return &byteBuf{b: make([]byte, 0, 4<<10)} }}

func getBuf() *byteBuf { return bufPool.Get().(*byteBuf) }

func putBuf(bb *byteBuf) {
	if cap(bb.b) > 64<<10 {
		return // oversized one-offs are dropped, not pooled
	}
	bb.b = bb.b[:0]
	bufPool.Put(bb)
}
