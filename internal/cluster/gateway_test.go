package cluster

// Gateway tests run a whole cluster in process: each fake host maps to a
// real server.New(...).Handler() through an injected RoundTripper, so
// ring routing, failover, scatter-gather, and trace propagation are
// exercised against the actual node implementation with no sockets.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"balarch/internal/obs"
	"balarch/internal/server"
)

// fakeNet routes proxied requests to in-process handlers by host, with a
// kill switch per host to simulate node death (transport error, like a
// refused connection).
type fakeNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	down     map[string]bool
}

func (t *fakeNet) RoundTrip(r *http.Request) (*http.Response, error) {
	t.mu.Lock()
	h, ok := t.handlers[r.URL.Host]
	down := t.down[r.URL.Host]
	t.mu.Unlock()
	if !ok || down {
		return nil, fmt.Errorf("dial tcp %s: connection refused", r.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	resp := rec.Result()
	resp.Request = r
	return resp, nil
}

func (t *fakeNet) setDown(host string, down bool) {
	t.mu.Lock()
	t.down[host] = down
	t.mu.Unlock()
}

// newTestCluster boots n in-process nodes (n1, n2, …) behind a gateway
// with active probing disabled — tests flip health explicitly.
func newTestCluster(t *testing.T, n int, nodeOpts func(i int) server.Options) (*Gateway, *fakeNet, []string) {
	t.Helper()
	ft := &fakeNet{handlers: map[string]http.Handler{}, down: map[string]bool{}}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		opts := server.Options{Parallelism: 2}
		if nodeOpts != nil {
			opts = nodeOpts(i)
		}
		opts.NodeID = fmt.Sprintf("n%d", i+1)
		host := fmt.Sprintf("n%d.test", i+1)
		srv := server.New(opts)
		t.Cleanup(func() { _ = srv.Close(context.Background()) })
		ft.handlers[host] = srv.Handler()
		names[i] = "http://" + host
	}
	gw, err := New(Options{Nodes: names, Transport: ft, ProbeInterval: -1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw, ft, names
}

// do runs one request through the gateway handler.
func do(t *testing.T, h http.Handler, method, path, body string, header http.Header) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	for k, vs := range header {
		req.Header[k] = vs
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const sweepBody = `{"kernel": "matmul", "n": 64, "params": [4, 8]}`

// sweepBodyReordered is the same sweep, different JSON: field order and
// whitespace must not change the routing key.
const sweepBodyReordered = `{"params":[4,8],"n":64,  "kernel":"matmul"}`

func TestGatewaySweepKeyAffinity(t *testing.T) {
	gw, _, _ := newTestCluster(t, 3, nil)
	h := gw.Handler()
	var first string
	for i, body := range []string{sweepBody, sweepBodyReordered, sweepBody} {
		rec := do(t, h, "POST", "/v1/sweep", body, nil)
		if rec.Code != 200 {
			t.Fatalf("sweep %d = %d: %s", i, rec.Code, rec.Body.String())
		}
		node := rec.Header().Get(server.NodeHeader)
		if node == "" {
			t.Fatal("no node header on proxied response")
		}
		if first == "" {
			first = node
		} else if node != first {
			t.Fatalf("equal sweeps split across nodes: %q then %q", first, node)
		}
	}

	// Affinity is what preserves the memo hit rate cluster-wide: the
	// second identical request must be a cache hit on the owner node.
	rec := do(t, h, "GET", "/metrics", "", nil)
	var roll Rollup
	if err := json.Unmarshal(rec.Body.Bytes(), &roll); err != nil {
		t.Fatal(err)
	}
	if roll.CacheHits < 2 {
		t.Fatalf("cluster cache hits = %d after 3 equal sweeps, want >= 2", roll.CacheHits)
	}
}

func TestGatewayJobAffinity(t *testing.T) {
	gw, _, _ := newTestCluster(t, 3, func(i int) server.Options {
		return server.Options{Parallelism: 2, StoreDir: t.TempDir()}
	})
	h := gw.Handler()

	submit := `{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}}`
	rec := do(t, h, "POST", "/v1/jobs", submit, nil)
	if rec.Code != 200 && rec.Code != 202 {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
	}
	owner := rec.Header().Get(server.NodeHeader)
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.ID == "" {
		t.Fatalf("submit body %q: %v", rec.Body.String(), err)
	}

	// Poll, result, and re-submit must all resolve to the owner.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + st.ID},
		{"POST", ""}, // re-submit
	} {
		var r *httptest.ResponseRecorder
		if probe.method == "POST" {
			r = do(t, h, "POST", "/v1/jobs", submit, nil)
		} else {
			r = do(t, h, probe.method, probe.path, "", nil)
		}
		if r.Code >= 300 {
			t.Fatalf("%s %s = %d: %s", probe.method, probe.path, r.Code, r.Body.String())
		}
		if got := r.Header().Get(server.NodeHeader); got != owner {
			t.Fatalf("%s %s landed on %q, submit went to %q", probe.method, probe.path, got, owner)
		}
	}
}

func TestGatewayBatchScatterGather(t *testing.T) {
	gw, _, _ := newTestCluster(t, 3, nil)
	h := gw.Handler()

	batch := `{"requests": [
		{"op": "analyze", "request": {"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}},
		{"op": "sweep", "request": ` + sweepBody + `},
		{"op": "nonsense", "request": {}},
		{"op": "rebalance", "request": {"computation": {"name": "matmul"}, "alpha": 4, "m_old": 1024}}
	]}`
	rec := do(t, h, "POST", "/v1/batch", batch, nil)
	if rec.Code != 200 {
		t.Fatalf("batch = %d: %s", rec.Code, rec.Body.String())
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(resp.Results))
	}
	// Request-order reassembly: item i answers op i.
	for i, op := range []string{"analyze", "sweep", "nonsense", "rebalance"} {
		if resp.Results[i].Op != op {
			t.Fatalf("result %d is op %q, want %q (order lost)", i, resp.Results[i].Op, op)
		}
	}
	for _, i := range []int{0, 1, 3} {
		if resp.Results[i].Status != 200 {
			t.Fatalf("item %d = %d: %v", i, resp.Results[i].Status, resp.Results[i].Error)
		}
	}
	// The unknown op's envelope comes from a node, not the gateway.
	if bad := resp.Results[2]; bad.Status == 200 || bad.Error == nil || bad.Error.Code != "unknown_op" {
		t.Fatalf("unknown op item = %d %v, want a node's unknown_op envelope", bad.Status, bad.Error)
	}

	// Over the gateway's cap: refused whole, the nodes never see it.
	over := `{"requests": [` + strings.Repeat(`{"op": "analyze", "request": {}},`, 64) +
		`{"op": "analyze", "request": {}}]}`
	rec = do(t, h, "POST", "/v1/batch", over, nil)
	if rec.Code != 422 || !strings.Contains(rec.Body.String(), "batch_too_large") {
		t.Fatalf("oversized batch = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestGatewayBatchPartialFailure(t *testing.T) {
	gw, ft, names := newTestCluster(t, 2, nil)
	h := gw.Handler()

	// Kill every node: items must come back as per-item envelopes under a
	// 200, never a torn response.
	for _, n := range names {
		ft.setDown(strings.TrimPrefix(n, "http://"), true)
	}
	batch := `{"requests": [{"op": "analyze", "request": {"pe": {"c": 1, "io": 1, "m": 1}, "computation": {"name": "fft"}}}]}`
	rec := do(t, h, "POST", "/v1/batch", batch, nil)
	if rec.Code != 200 {
		t.Fatalf("batch with dead cluster = %d: %s", rec.Code, rec.Body.String())
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error == nil {
		t.Fatalf("dead-cluster batch results: %s", rec.Body.String())
	}
	if code := resp.Results[0].Error.Code; code != "upstream_unreachable" && code != "no_nodes" {
		t.Fatalf("dead-cluster item code = %q", code)
	}
}

func TestGatewayKillDrillFailoverAndRejoin(t *testing.T) {
	gw, ft, _ := newTestCluster(t, 3, nil)
	h := gw.Handler()

	rec := do(t, h, "POST", "/v1/sweep", sweepBody, nil)
	if rec.Code != 200 {
		t.Fatalf("sweep = %d", rec.Code)
	}
	owner := rec.Header().Get(server.NodeHeader)
	ownerHost := owner + ".test"

	// Kill the owner. The same key must fail over — passively, within
	// the same request — to a survivor.
	ft.setDown(ownerHost, true)
	rec = do(t, h, "POST", "/v1/sweep", sweepBody, nil)
	if rec.Code != 200 {
		t.Fatalf("sweep after owner kill = %d: %s", rec.Code, rec.Body.String())
	}
	standby := rec.Header().Get(server.NodeHeader)
	if standby == owner || standby == "" {
		t.Fatalf("failover landed on %q (owner was %q)", standby, owner)
	}
	// Failover is sticky while the owner is down.
	if rec = do(t, h, "POST", "/v1/sweep", sweepBody, nil); rec.Header().Get(server.NodeHeader) != standby {
		t.Fatalf("key moved again while owner down")
	}

	// Revive and probe: ownership must return to the original node (the
	// ring is deterministic in the member set).
	ft.setDown(ownerHost, false)
	gw.m.probeAll(context.Background(), gw.hc, gw.opts.ProbeTimeout)
	rec = do(t, h, "POST", "/v1/sweep", sweepBody, nil)
	if got := rec.Header().Get(server.NodeHeader); got != owner {
		t.Fatalf("after rejoin key went to %q, want original owner %q", got, owner)
	}
}

func TestGatewayReadyzReflectsMembership(t *testing.T) {
	gw, ft, names := newTestCluster(t, 2, nil)
	h := gw.Handler()
	if rec := do(t, h, "GET", "/readyz", "", nil); rec.Code != 200 {
		t.Fatalf("readyz = %d", rec.Code)
	}
	for _, n := range names {
		ft.setDown(strings.TrimPrefix(n, "http://"), true)
	}
	gw.m.probeAll(context.Background(), gw.hc, gw.opts.ProbeTimeout)
	rec := do(t, h, "GET", "/readyz", "", nil)
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "no_nodes") {
		t.Fatalf("readyz with dead cluster = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 readyz carries no Retry-After")
	}
}

func TestGatewayTraceparentChildSpan(t *testing.T) {
	// A bare recording handler (not a full node): capture what arrives.
	var got string
	ft := &fakeNet{handlers: map[string]http.Handler{
		"n1.test": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			got = r.Header.Get(obs.TraceparentHeader)
			w.WriteHeader(200)
		}),
	}, down: map[string]bool{}}
	gw, err := New(Options{Nodes: []string{"http://n1.test"}, Transport: ft, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	sent := obs.NewTraceparent(true)
	hdr := http.Header{}
	hdr.Set(obs.TraceparentHeader, sent)
	do(t, gw.Handler(), "GET", "/v1/catalog", "", hdr)

	if got == "" {
		t.Fatal("node saw no traceparent")
	}
	if got == sent {
		t.Fatal("gateway forwarded the client span verbatim; want a child span")
	}
	if !obs.SameTrace(sent, got) {
		t.Fatalf("gateway re-minted the trace id: sent %q, node saw %q", sent, got)
	}
}

func TestGatewayMergedIndex(t *testing.T) {
	gw, _, _ := newTestCluster(t, 2, nil)
	rec := do(t, gw.Handler(), "GET", "/v1/", "", nil)
	if rec.Code != 200 {
		t.Fatalf("index = %d", rec.Code)
	}
	var idx server.APIIndexResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]string{}
	for _, rt := range idx.Routes {
		byKey[rt.Method+" "+rt.Path] = rt.Description
	}
	// Node-only routes pass through the merge.
	if _, ok := byKey["POST /v1/analyze"]; !ok {
		t.Fatalf("merged index lost the node's analyze route: %v", byKey)
	}
	if _, ok := byKey["POST /v1/emulation"]; !ok {
		t.Fatalf("merged index lost the node's emulation route: %v", byKey)
	}
	// Overlapping routes carry the gateway's cluster description.
	if d := byKey["POST /v1/sweep"]; !strings.Contains(d, "ring") {
		t.Fatalf("sweep description is not the gateway's: %q", d)
	}
	codes := map[string]bool{}
	for _, c := range idx.ErrorCodes {
		codes[c] = true
	}
	for _, want := range []string{"no_nodes", "upstream_unreachable", "bad_json"} {
		if !codes[want] {
			t.Fatalf("merged index error codes missing %q: %v", want, idx.ErrorCodes)
		}
	}
}

func TestGatewayMetricsRollup(t *testing.T) {
	gw, _, _ := newTestCluster(t, 3, nil)
	h := gw.Handler()
	const n = 6
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"pe": {"c": 50e6, "io": 1e6, "m": %d}, "computation": {"name": "fft"}}`, 1024+i)
		if rec := do(t, h, "POST", "/v1/analyze", body, nil); rec.Code != 200 {
			t.Fatalf("analyze %d = %d", i, rec.Code)
		}
	}
	rec := do(t, h, "GET", "/metrics", "", nil)
	var roll Rollup
	if err := json.Unmarshal(rec.Body.Bytes(), &roll); err != nil {
		t.Fatal(err)
	}
	if roll.Cluster.Nodes != 3 || roll.Cluster.Healthy != 3 {
		t.Fatalf("cluster section = %+v", roll.Cluster)
	}
	if got := roll.Requests["POST /v1/analyze"]; got != n {
		t.Fatalf("aggregated analyze count = %d, want %d", got, n)
	}
	var proxied int64
	for _, ns := range roll.Cluster.NodeStatus {
		if !ns.Reporting {
			t.Fatalf("node %s not reporting: %+v", ns.Name, ns)
		}
		proxied += ns.Proxied
	}
	if proxied < n {
		t.Fatalf("gateway accounted %d proxied requests, want >= %d", proxied, n)
	}

	prom := do(t, h, "GET", "/metrics?format=prometheus", "", nil)
	text := prom.Body.String()
	for _, want := range []string{
		"balarch_cluster_nodes 3",
		"balarch_cluster_healthy_nodes 3",
		`balarch_cluster_node_up{node="http://n1.test"} 1`,
		"balarch_cluster_requests_total{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus rollup missing %q:\n%s", want, text)
		}
	}
}

func TestGatewayExperimentAffinityAndListing(t *testing.T) {
	gw, _, _ := newTestCluster(t, 3, nil)
	h := gw.Handler()

	rec := do(t, h, "GET", "/v1/experiments", "", nil)
	if rec.Code != 200 {
		t.Fatalf("experiments = %d", rec.Code)
	}
	var list server.ExperimentsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) == 0 {
		t.Fatal("scatter-gathered experiment list is empty")
	}
	id := list.Experiments[0].ID

	var owner string
	for i := 0; i < 3; i++ {
		run := do(t, h, "POST", "/v1/experiments/"+id, "", nil)
		if run.Code != 200 {
			t.Fatalf("experiment run %d = %d: %s", i, run.Code, run.Body.String())
		}
		node := run.Header().Get(server.NodeHeader)
		if owner == "" {
			owner = node
		} else if node != owner {
			t.Fatalf("experiment %q moved: %q then %q", id, owner, node)
		}
	}
}

func TestGatewayEmulationViaCatchAll(t *testing.T) {
	gw, _, _ := newTestCluster(t, 2, nil)
	body := `{"c": 100e6, "computation": {"name": "fft"}, "modules": 4, "module_m": 65536, "module_bw": 1e6, "network_bw": 0.5e6}`
	rec := do(t, gw.Handler(), "POST", "/v1/emulation", body, nil)
	if rec.Code != 200 {
		t.Fatalf("emulation via gateway = %d: %s", rec.Code, rec.Body.String())
	}
	var resp server.EmulationResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Modules != 4 || resp.EmulatedCapacity != 4*65536 {
		t.Fatalf("emulation response %+v", resp)
	}
	if resp.Efficiency <= 0 || resp.Efficiency > 1 {
		t.Fatalf("efficiency = %v, want (0, 1]", resp.Efficiency)
	}
}

func BenchmarkGatewayProxyAnalyze(b *testing.B) {
	ft := &fakeNet{handlers: map[string]http.Handler{
		"n1.test": server.New(server.Options{Parallelism: 2}).Handler(),
		"n2.test": server.New(server.Options{Parallelism: 2}).Handler(),
	}, down: map[string]bool{}}
	gw, err := New(Options{Nodes: []string{"http://n1.test", "http://n2.test"},
		Transport: ft, ProbeInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	h := gw.Handler()
	body := []byte(`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("analyze = %d", rec.Code)
		}
	}
}
