package cluster

// Scatter-gather: the gateway operations that touch more than one node.
// Fan-out rides engine.Pool — the same deterministic request-order pool
// the nodes use for batch and sweeps — so results reassemble in request
// order whatever order the nodes answer, and one dead node degrades to
// a per-item (or per-node) failure envelope instead of failing the call.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"

	"balarch/internal/engine"
	"balarch/internal/server"
)

// handleBatch fans POST /v1/batch items across the cluster: sweep items
// ring-route to their memo owner, everything else places by two-choice
// load. Each item travels as a single-item batch to its node, so the
// per-item status/body/error envelope is byte-compatible with what the
// node's own batch handler would have produced — including every 4xx the
// node's validation emits. Results return in request order.
//
// A body the gateway cannot decode (malformed, empty list) forwards
// whole to one node: the node owns the canonical error envelopes and the
// gateway must not fork them.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	defer putBuf(body)
	var req server.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body.b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || dec.More() || len(req.Requests) == 0 {
		g.forwardBody(w, r, body.b, g.m.pick, false)
		return
	}
	if len(req.Requests) > g.opts.MaxBatch {
		g.writeError(w, http.StatusUnprocessableEntity, "batch_too_large",
			"batch of "+strconv.Itoa(len(req.Requests))+" exceeds the limit of "+strconv.Itoa(g.opts.MaxBatch), 0)
		return
	}
	jobs := make([]engine.Job[server.BatchResult], len(req.Requests))
	for i, item := range req.Requests {
		item := item
		jobs[i] = engine.Job[server.BatchResult]{Run: func(ctx context.Context) (server.BatchResult, error) {
			return g.batchItem(ctx, r.Header, item), nil
		}}
	}
	pool := engine.Pool[server.BatchResult]{Parallelism: g.opts.Parallelism}
	results, err := pool.Run(r.Context(), jobs)
	if err != nil {
		// Items never error; this is context death (client gone or
		// deadline). 503 with retry matches the nodes' cancellation shape.
		g.writeError(w, http.StatusServiceUnavailable, "cancelled", err.Error(), 1)
		return
	}
	g.writeJSON(w, http.StatusOK, server.BatchResponse{Results: results})
}

// batchItem runs one batch item on its chosen node as a single-item
// batch and lifts the node's per-item result out of the response.
func (g *Gateway) batchItem(ctx context.Context, inHeader http.Header, item server.BatchItem) server.BatchResult {
	pick := g.m.pick
	if item.Op == "sweep" {
		if key, ok := server.RouteKeyForSweep(item.Request); ok {
			pick = func() *Node { return g.m.ownerString(key) }
		}
	}
	sub, err := json.Marshal(server.BatchRequest{Requests: []server.BatchItem{item}})
	if err != nil {
		return server.BatchResult{Op: item.Op, Status: http.StatusInternalServerError,
			Error: &server.ErrorBody{Code: "internal", Message: err.Error()}}
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		n := pick()
		if n == nil {
			return server.BatchResult{Op: item.Op, Status: http.StatusServiceUnavailable,
				Error: &server.ErrorBody{Code: "no_nodes", Message: "no healthy node in the cluster"}}
		}
		resp, err := g.roundTrip(ctx, n, http.MethodPost, "/v1/batch", inHeader, sub)
		if err != nil {
			lastErr = err
			g.eject(n, err)
			continue
		}
		res, ok := decodeBatchSingle(resp, item.Op)
		if ok {
			return res
		}
		lastErr = errUnexpectedBody
	}
	msg := "cluster nodes unreachable"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	return server.BatchResult{Op: item.Op, Status: http.StatusBadGateway,
		Error: &server.ErrorBody{Code: "upstream_unreachable", Message: msg}}
}

var errUnexpectedBody = &unexpectedBodyError{}

type unexpectedBodyError struct{}

func (*unexpectedBodyError) Error() string { return "node returned an undecodable batch response" }

// decodeBatchSingle extracts the single item result from a node's batch
// response. A non-200 wraps the node's whole-batch refusal (bad auth,
// draining…) into the item's envelope so the item still reports truth.
func decodeBatchSingle(resp *http.Response, op string) (server.BatchResult, bool) {
	defer resp.Body.Close()
	data, err := readAll(resp.Body)
	if err != nil {
		return server.BatchResult{}, false
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error server.ErrorBody `json:"error"`
		}
		if json.Unmarshal(data, &env) != nil || env.Error.Code == "" {
			return server.BatchResult{}, false
		}
		return server.BatchResult{Op: op, Status: resp.StatusCode, Error: &env.Error}, true
	}
	var br server.BatchResponse
	if json.Unmarshal(data, &br) != nil || len(br.Results) != 1 {
		return server.BatchResult{}, false
	}
	return br.Results[0], true
}

// --- node fan-out ---

// nodeGet fans one GET to every healthy node and returns each node's
// body (nil for a node that failed; the caller decides whether partial
// coverage is acceptable). Order matches the healthy snapshot.
func (g *Gateway) nodeGet(ctx context.Context, inHeader http.Header, uri string) ([]*Node, [][]byte) {
	nodes := g.m.healthySnapshot()
	jobs := make([]engine.Job[[]byte], len(nodes))
	for i, n := range nodes {
		n := n
		jobs[i] = engine.Job[[]byte]{Run: func(ctx context.Context) ([]byte, error) {
			resp, err := g.roundTrip(ctx, n, http.MethodGet, uri, inHeader, nil)
			if err != nil {
				g.eject(n, err)
				return nil, nil
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, nil
			}
			data, err := readAll(resp.Body)
			if err != nil {
				return nil, nil
			}
			return data, nil
		}}
	}
	pool := engine.Pool[[]byte]{Parallelism: g.opts.Parallelism}
	bodies, err := pool.Run(ctx, jobs)
	if err != nil {
		return nodes, make([][]byte, len(nodes))
	}
	return nodes, bodies
}

// handleExperimentList unions GET /v1/experiments across the cluster.
// Every node compiles the same registry, so the union is a consistency
// statement more than a merge; first-seen order (by id) is kept.
func (g *Gateway) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	nodes, bodies := g.nodeGet(r.Context(), r.Header, "/v1/experiments")
	if len(nodes) == 0 {
		g.writeError(w, http.StatusServiceUnavailable, "no_nodes",
			"no healthy node in the cluster", 1)
		return
	}
	seen := make(map[string]bool)
	merged := server.ExperimentsResponse{Experiments: []server.ExperimentInfo{}}
	any := false
	for _, data := range bodies {
		if data == nil {
			continue
		}
		var one server.ExperimentsResponse
		if json.Unmarshal(data, &one) != nil {
			continue
		}
		any = true
		for _, e := range one.Experiments {
			if !seen[e.ID] {
				seen[e.ID] = true
				merged.Experiments = append(merged.Experiments, e)
			}
		}
	}
	if !any {
		g.writeError(w, http.StatusBadGateway, "upstream_unreachable",
			"no node answered the experiment listing", 0)
		return
	}
	g.writeJSON(w, http.StatusOK, merged)
}

// handleJobList merges GET /v1/jobs across the cluster: each node lists
// only the jobs it owns, so the cluster listing is the union, re-sorted
// newest-first. Cursors are node-local and do not compose — the merged
// listing is cursorless and honors ?limit over the union instead.
func (g *Gateway) handleJobList(w http.ResponseWriter, r *http.Request) {
	nodes, bodies := g.nodeGet(r.Context(), r.Header, "/v1/jobs"+querySuffix(r))
	if len(nodes) == 0 {
		g.writeError(w, http.StatusServiceUnavailable, "no_nodes",
			"no healthy node in the cluster", 1)
		return
	}
	merged := server.JobListResponse{Jobs: []server.JobStatusDTO{}}
	any := false
	var nodeErr *server.ErrorBody
	nodeErrStatus := 0
	for _, data := range bodies {
		if data == nil {
			continue
		}
		var one server.JobListResponse
		if json.Unmarshal(data, &one) == nil {
			any = true
			merged.Jobs = append(merged.Jobs, one.Jobs...)
			continue
		}
		var env struct {
			Error server.ErrorBody `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			nodeErr = &env.Error
		}
	}
	if !any {
		// Uniform refusal (e.g. jobs_disabled on every node) passes
		// through; pure transport failure reports the gateway's own code.
		if nodeErr != nil {
			if nodeErrStatus == 0 {
				nodeErrStatus = http.StatusNotFound
			}
			g.writeError(w, nodeErrStatus, nodeErr.Code, nodeErr.Message, 0)
			return
		}
		g.writeError(w, http.StatusBadGateway, "upstream_unreachable",
			"no node answered the job listing", 0)
		return
	}
	sort.SliceStable(merged.Jobs, func(i, j int) bool {
		// RFC 3339 UTC timestamps order lexicographically (sub-second
		// ties excepted); newest first, id as the deterministic tiebreak.
		a, b := merged.Jobs[i], merged.Jobs[j]
		if a.SubmittedAt != b.SubmittedAt {
			return a.SubmittedAt > b.SubmittedAt
		}
		return a.ID < b.ID
	})
	if lim, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && lim > 0 && lim < len(merged.Jobs) {
		merged.Jobs = merged.Jobs[:lim]
	}
	g.writeJSON(w, http.StatusOK, merged)
}

// handleIndex serves the merged GET /v1/ index: one node's index (the
// proxied surface) overlaid with the gateway's own route table and
// error codes. Gateway descriptions win for routes the gateway
// special-cases — the index should say "ring-routed", not pretend the
// gateway is a node — and node-only routes (analyze, catalog, future
// growth) pass through untouched.
func (g *Gateway) handleIndex(w http.ResponseWriter, r *http.Request) {
	var idx server.APIIndexResponse
	got := false
	for attempt := 0; attempt < 2 && !got; attempt++ {
		n := g.m.pick()
		if n == nil {
			break
		}
		resp, err := g.roundTrip(r.Context(), n, http.MethodGet, "/v1/", r.Header, nil)
		if err != nil {
			g.eject(n, err)
			continue
		}
		data, rerr := readAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK && json.Unmarshal(data, &idx) == nil {
			got = true
		}
	}
	if !got {
		// Degraded index: the gateway's own surface is still accurate.
		idx = server.APIIndexResponse{
			Service:      "balarch",
			Routes:       []server.APIRouteInfo{},
			ErrorCodes:   []string{},
			Computations: []string{},
			Experiments:  []string{},
		}
	}
	byKey := make(map[string]int, len(idx.Routes))
	for i, rt := range idx.Routes {
		byKey[rt.Method+" "+rt.Path] = i
	}
	for _, rt := range gwIndexRoutes {
		info := routeInfo(rt)
		if i, ok := byKey[info.Method+" "+info.Path]; ok {
			idx.Routes[i] = info
		} else {
			idx.Routes = append(idx.Routes, info)
		}
	}
	codes := map[string]bool{"no_nodes": true, "upstream_unreachable": true}
	for _, c := range idx.ErrorCodes {
		codes[c] = true
	}
	idx.ErrorCodes = idx.ErrorCodes[:0]
	for c := range codes {
		idx.ErrorCodes = append(idx.ErrorCodes, c)
	}
	sort.Strings(idx.ErrorCodes)
	g.writeJSON(w, http.StatusOK, idx)
}

// gwIndexRoutes is gwRoutes, copied by init(): handleIndex ranging
// gwRoutes directly would close an initialization cycle (gwRoutes →
// handleIndex → gwRoutes), exactly as the server's apiIndexRoutes does.
var gwIndexRoutes []gwRoute

func init() { gwIndexRoutes = gwRoutes }

// routeInfo converts one gwRoutes entry to its wire form, stripping the
// mux-only "{$}" marker exactly as the node index does.
func routeInfo(rt gwRoute) server.APIRouteInfo {
	method, path, _ := cutSpace(rt.pattern)
	if len(path) >= 3 && path[len(path)-3:] == "{$}" {
		path = path[:len(path)-3]
	}
	return server.APIRouteInfo{Method: method, Path: path, Description: rt.desc}
}

func cutSpace(s string) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// querySuffix rebuilds "?query" for fan-out URIs.
func querySuffix(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

// readAll drains a response body through a pooled buffer and returns an
// owned copy.
func readAll(rd io.Reader) ([]byte, error) {
	bb := getBuf()
	defer putBuf(bb)
	b := bb.b[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := rd.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err != nil {
			bb.b = b
			if err == io.EOF {
				return append([]byte(nil), b...), nil
			}
			return nil, err
		}
	}
}
