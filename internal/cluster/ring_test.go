package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// ringNodes builds n distinct node names.
func ringNodes(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return names
}

func TestRingDeterministic(t *testing.T) {
	nodes := ringNodes(5)
	a := NewRing(0, nodes)
	// Same set in a different order must produce identical ownership —
	// two gateways in front of one cluster agree without coordination.
	shuffled := append([]string(nil), nodes...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := NewRing(0, shuffled)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("sweep/matmul/%d", i)
		if a.OwnerString(key) != b.OwnerString(key) {
			t.Fatalf("ownership depends on node order: key %q -> %q vs %q",
				key, a.OwnerString(key), b.OwnerString(key))
		}
		if a.OwnerString(key) != a.Owner([]byte(key)) {
			t.Fatalf("Owner and OwnerString disagree on %q", key)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0, nil)
	if got := r.OwnerString("anything"); got != "" {
		t.Fatalf(`empty ring owner = %q, want ""`, got)
	}
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
}

func TestRingSpread(t *testing.T) {
	nodes := ringNodes(4)
	r := NewRing(0, nodes)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.OwnerString(fmt.Sprintf("j%016x", i))]++
	}
	// 128 virtual points per node keep the relative spread near 1/√128;
	// accept anything within ±50% of the fair share — a badly broken hash
	// (prefix clustering, say) lands far outside this.
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*3/2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): spread too skewed\n%v",
				n, counts[n], keys, fair, counts)
		}
	}
}

// TestRingRemovalStability is the consistent-hashing contract, as a
// testing/quick property: removing one of N nodes (1) never remaps a key
// between two surviving nodes, and (2) remaps roughly the lost node's
// share — at most keys/N plus slack for hash variance.
func TestRingRemovalStability(t *testing.T) {
	prop := func(nodeCount uint8, seed int64) bool {
		n := int(nodeCount%6) + 2 // 2..7 nodes
		nodes := ringNodes(n)
		full := NewRing(0, nodes)

		rng := rand.New(rand.NewSource(seed))
		removed := nodes[rng.Intn(n)]
		survivors := make([]string, 0, n-1)
		for _, name := range nodes {
			if name != removed {
				survivors = append(survivors, name)
			}
		}
		reduced := NewRing(0, survivors)

		const keys = 4000
		remapped := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("sweep/%d/%d", seed, i)
			before, after := full.OwnerString(key), reduced.OwnerString(key)
			if before != removed {
				if after != before {
					t.Logf("key %q remapped between survivors: %q -> %q", key, before, after)
					return false
				}
				continue
			}
			remapped++
		}
		// The removed node's expected share is keys/n; allow generous
		// variance slack (the per-node spread is ~9% relative at 128
		// replicas, and quick tries many (n, seed) pairs).
		limit := keys/n + keys/(2*n)
		if remapped > limit {
			t.Logf("removing 1 of %d nodes remapped %d of %d keys (limit %d)",
				n, remapped, keys, limit)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRingRejoinRestoresOwnership(t *testing.T) {
	nodes := ringNodes(3)
	full := NewRing(0, nodes)
	reduced := NewRing(0, nodes[:2])
	rejoined := NewRing(0, nodes)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("j%032x", i)
		if full.OwnerString(key) != rejoined.OwnerString(key) {
			t.Fatalf("rejoin did not restore ownership of %q", key)
		}
		_ = reduced.OwnerString(key) // the interim ring must also answer
	}
}

// FuzzRingKey drives arbitrary keys through both lookup paths: they must
// agree byte-for-byte, always land on a member, and be stable call to
// call.
func FuzzRingKey(f *testing.F) {
	f.Add([]byte("sweep/matmul/64"))
	f.Add([]byte("j0123456789abcdef"))
	f.Add([]byte(""))
	f.Add([]byte{0xff, 0x00, 0xfe})
	nodes := ringNodes(5)
	ring := NewRing(0, nodes)
	members := map[string]bool{}
	for _, n := range nodes {
		members[n] = true
	}
	f.Fuzz(func(t *testing.T, key []byte) {
		owner := ring.Owner(key)
		if !members[owner] {
			t.Fatalf("Owner(%q) = %q, not a member", key, owner)
		}
		if s := ring.OwnerString(string(key)); s != owner {
			t.Fatalf("OwnerString(%q) = %q, Owner = %q", key, s, owner)
		}
		if again := ring.Owner(key); again != owner {
			t.Fatalf("Owner(%q) unstable: %q then %q", key, owner, again)
		}
	})
}

func BenchmarkRingOwner(b *testing.B) {
	ring := NewRing(0, ringNodes(8))
	key := []byte("sweep/matmul/hierarchy/c=1e9/l0=4096;1e9/l1=262144;1e8/64")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Owner(key) == "" {
			b.Fatal("no owner")
		}
	}
}
