// Package cluster is the multi-node tier of balance-as-a-service: a
// stdlib-only gateway that presents N balarchd nodes as one big service —
// the paper's balance discipline applied to the service itself (compute,
// memory, and I/O must scale together, so one node's sweep memo and job
// queue become N nodes' sweep memos and job queues behind one address).
//
// Placement follows the two papers the design leans on. Keyed traffic —
// sweep bodies addressed by their canonical memo key, jobs addressed by
// their content-derived id — rides a consistent-hash ring with replicated
// virtual nodes, so each key lives on exactly one node and the
// cross-request sweep memo keeps its hit rate cluster-wide (Hanlon's
// emulation: N small memories presented as one large one). Keyless
// traffic (analyze/rebalance/roofline/catalog) is placed by
// power-of-two-choices over per-node in-flight counters
// (Benjamini–Makarychev: two random choices keep the maximum load within
// O(log log n) of optimal at a fraction of the bookkeeping of
// join-shortest-queue). Batches and experiment listings scatter-gather
// across the membership on an engine.Pool with request-order reassembly
// and per-item partial-failure envelopes.
package cluster

import "sort"

// defaultReplicas is the virtual-node count per member: enough points
// that one node's share of the key space has ~1/√128 ≈ 9% relative
// spread, few enough that a membership change rebuilds in microseconds.
const defaultReplicas = 128

// Ring is an immutable consistent-hash ring over a set of node names
// (base URLs, here) with replicated virtual points. Membership changes
// build a new Ring — lookups are lock-free and allocation-free, which is
// what the gateway's proxy hot path needs.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the 64-bit ring and the
// index of the member that owns it.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds a ring with `replicas` virtual points per node (≤ 0
// means the 128 default). Node order does not matter: the point set —
// and therefore every ownership decision — depends only on the node
// names, which is what makes two gateways in front of the same cluster
// agree without coordination.
func NewRing(replicas int, nodes []string) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, replicas*len(nodes)),
	}
	for i, n := range r.nodes {
		h := hashString(n)
		for v := 0; v < replicas; v++ {
			// Each virtual point re-mixes the node hash with the replica
			// index; mix64 is a full-avalanche finalizer, so the points
			// scatter uniformly however similar the node names are.
			r.points = append(r.points, ringPoint{
				hash: mix64(h ^ (uint64(v+1) * 0x9e3779b97f4a7c15)),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare) break on node index so the
		// ring is deterministic whatever the input order.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the ring's member names (a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node that owns key: the member whose first virtual
// point at or after hash(key) on the ring (wrapping) is nearest. It is
// allocation-free — one hash and one binary search — and returns "" only
// on an empty ring.
func (r *Ring) Owner(key []byte) string {
	i := r.ownerIndex(hashBytes(key))
	if i < 0 {
		return ""
	}
	return r.nodes[i]
}

// OwnerString is Owner for a string key, equally allocation-free (the
// hash walks the string directly; no []byte conversion).
func (r *Ring) OwnerString(key string) string {
	i := r.ownerIndex(hashString(key))
	if i < 0 {
		return ""
	}
	return r.nodes[i]
}

// ownerIndex finds the owning member index for a key hash: the first
// point clockwise from h, wrapping to the first point past the top.
func (r *Ring) ownerIndex(h uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	// Binary search for the first point with hash >= h.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return int(r.points[lo].node)
}

// --- hashing ---

// hashBytes is FNV-1a 64 with a mix64 finalizer: FNV alone clusters on
// short common-prefix keys (every sweep key starts "sweep/"), the
// finalizer restores full avalanche.
func hashBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return mix64(h)
}

// hashString is hashBytes over a string without conversion.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a cheap bijection with full
// avalanche, the standard fix for structured hash inputs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
