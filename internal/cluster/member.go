package cluster

// Membership and placement: each balarchd node is a Node with health
// state and an in-flight counter; the healthy subset backs both the
// consistent-hash ring (keyed traffic) and the power-of-two-choices
// picker (keyless traffic). Health is decided actively — a prober polls
// every node's /healthz and /readyz — and passively: a proxy transport
// error ejects the node immediately, so a killed node stops receiving
// traffic within one request, not one probe interval.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Node is one balarchd member as the gateway sees it.
type Node struct {
	// name is the node's base URL ("http://127.0.0.1:18091"), the
	// identity the ring hashes and the prefix proxied requests use.
	name string

	// healthy gates placement: only healthy nodes are on the ring or in
	// the two-choice pool.
	healthy atomic.Bool

	// inflight counts requests currently proxied to this node — the
	// load signal the two-choice rule compares.
	inflight atomic.Int64

	// proxied and proxyErrors are the gateway's per-node traffic
	// accounting, served by the /metrics rollup.
	proxied     atomic.Int64
	proxyErrors atomic.Int64
}

// Name returns the node's base URL.
func (n *Node) Name() string { return n.name }

// Healthy reports whether the node is in the serving set.
func (n *Node) Healthy() bool { return n.healthy.Load() }

// InFlight returns the node's current proxied in-flight count.
func (n *Node) InFlight() int64 { return n.inflight.Load() }

// membership owns the node set and the derived placement structures.
// The node list is fixed at construction (the gateway is told its
// cluster); only health flips, and each flip rebuilds the ring and the
// healthy list under mu.
type membership struct {
	replicas int
	nodes    []*Node
	byName   map[string]*Node

	mu      sync.Mutex
	ring    atomic.Pointer[Ring]
	healthy atomic.Pointer[[]*Node]

	// p2cSeq drives the two-choice picker's index draws: an atomic
	// counter through the splitmix finalizer is a lock-free uniform
	// sequence, which is all "two independent random choices" needs.
	p2cSeq atomic.Uint64
}

// newMembership builds the node set with every node optimistically
// healthy (the first probe round corrects within one interval; starting
// pessimistic would make a freshly booted gateway refuse traffic it
// could serve).
func newMembership(replicas int, names []string) (*membership, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: at least one node is required")
	}
	m := &membership{
		replicas: replicas,
		byName:   make(map[string]*Node, len(names)),
	}
	for _, name := range names {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if _, dup := m.byName[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", name)
		}
		n := &Node{name: name}
		n.healthy.Store(true)
		m.nodes = append(m.nodes, n)
		m.byName[name] = n
	}
	m.rebuild()
	return m, nil
}

// rebuild recomputes the ring and the healthy list from current health
// bits. Callers hold no lock; rebuild takes mu so concurrent flips
// serialize (lookups stay lock-free on the atomic pointers).
func (m *membership) rebuild() {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.nodes))
	healthy := make([]*Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		if n.healthy.Load() {
			names = append(names, n.name)
			healthy = append(healthy, n)
		}
	}
	m.ring.Store(NewRing(m.replicas, names))
	m.healthy.Store(&healthy)
}

// setHealthy flips one node's health bit, rebuilding placement on a
// change. Returns true when the bit actually changed.
func (m *membership) setHealthy(n *Node, ok bool) bool {
	if n.healthy.Swap(ok) == ok {
		return false
	}
	m.rebuild()
	return true
}

// owner returns the healthy node owning key, or nil when no node is
// healthy. Keys always resolve against the healthy ring: a key whose
// owner was ejected deterministically remaps to a surviving node (and
// maps back when the owner rejoins).
func (m *membership) owner(key []byte) *Node {
	name := m.ring.Load().Owner(key)
	if name == "" {
		return nil
	}
	return m.byName[name]
}

// ownerString is owner for string keys (job ids from the URL path).
func (m *membership) ownerString(key string) *Node {
	name := m.ring.Load().OwnerString(key)
	if name == "" {
		return nil
	}
	return m.byName[name]
}

// pick places one keyless request: two independent uniform choices among
// the healthy nodes, take the one with fewer requests in flight. Returns
// nil when no node is healthy.
func (m *membership) pick() *Node {
	healthy := *m.healthy.Load()
	switch len(healthy) {
	case 0:
		return nil
	case 1:
		return healthy[0]
	}
	r := mix64(m.p2cSeq.Add(1))
	i := int(r % uint64(len(healthy)))
	j := int((r >> 32) % uint64(len(healthy)-1))
	if j >= i {
		j++ // j is drawn from the remaining n-1 slots: always a distinct pair
	}
	a, b := healthy[i], healthy[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// healthySnapshot returns the healthy nodes (shared slice; read-only).
func (m *membership) healthySnapshot() []*Node { return *m.healthy.Load() }

// --- active probing ---

// probe checks one node: /healthz answers 200 (liveness) and /readyz
// answers 200 (not draining). A draining node fails readiness on
// purpose — graceful shutdown flips /readyz before the listener closes,
// so the prober ejects it while its in-flight work completes.
func probe(ctx context.Context, hc *http.Client, node *Node, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	for _, path := range [...]string{"/healthz", "/readyz"} {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, node.name+path, nil)
		if err != nil {
			return false
		}
		resp, err := hc.Do(req)
		if err != nil {
			return false
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
	}
	return true
}

// probeAll probes every node concurrently and applies the verdicts.
// Returns the number of healthy nodes after the round.
func (m *membership) probeAll(ctx context.Context, hc *http.Client, timeout time.Duration) int {
	var wg sync.WaitGroup
	verdicts := make([]bool, len(m.nodes))
	for i, n := range m.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			verdicts[i] = probe(ctx, hc, n, timeout)
		}(i, n)
	}
	wg.Wait()
	healthy := 0
	for i, n := range m.nodes {
		m.setHealthy(n, verdicts[i])
		if verdicts[i] {
			healthy++
		}
	}
	return healthy
}
