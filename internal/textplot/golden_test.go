package textplot

// Golden-file tests for the rendered figures and charts: the text output is
// part of the reproduction's contract (it is what the paper's figures turn
// into), so formatting changes must be deliberate. Regenerate with
//
//	go test ./internal/textplot -run Golden -update
//
// and review the diff like any other code change.

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden file (regenerate with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenFig1(t *testing.T) {
	checkGolden(t, "fig1_pe", Fig1PE("50 MOPS", "1 MW/s", "4K words"))
}

func TestGoldenFig2(t *testing.T) {
	// The paper's own illustration size: a 16-point FFT in 4-point blocks,
	// two passes with the shuffle between them.
	passes := [][]FFTBlock{
		{{0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14}, {3, 7, 11, 15}},
		{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}},
	}
	checkGolden(t, "fig2_fft", Fig2FFT(16, passes))
}

func TestGoldenFig3(t *testing.T) {
	checkGolden(t, "fig3_linear_array", Fig3LinearArray(4))
}

func TestGoldenFig4(t *testing.T) {
	checkGolden(t, "fig4_mesh", Fig4Mesh(3))
}

func TestGoldenChart(t *testing.T) {
	// A deterministic two-series log-log chart exercising axes, markers,
	// and the legend.
	c := NewChart("achievable ratio vs local memory")
	c.XLabel = "M (words)"
	c.YLabel = "R(M)"
	c.LogX, c.LogY = true, true
	var sqrtX, sqrtY, logX, logY []float64
	for m := 4.0; m <= 1<<20; m *= 4 {
		sqrtX = append(sqrtX, m)
		sqrtY = append(sqrtY, math.Sqrt(m))
		logX = append(logX, m)
		logY = append(logY, math.Log2(m))
	}
	c.Add(Series{Name: "matmul √M", X: sqrtX, Y: sqrtY})
	c.Add(Series{Name: "fft log₂M", X: logX, Y: logY})
	checkGolden(t, "chart_loglog", c.String())
}

func TestGoldenTable(t *testing.T) {
	tab := NewTable("computation", "law", "M_new for α=4")
	tab.AddRow("matrix multiplication", "α²·M_old", 16384)
	tab.AddRow("3-D grid", "α³·M_old", 65536.0)
	tab.AddRow("FFT", "M_old^α", 1.0995116e12)
	checkGolden(t, "table_laws", tab.String())
}

// GoldenCoverage: every golden file in testdata must belong to a test, so
// stale files are noticed.
func TestGoldenNoStrays(t *testing.T) {
	known := map[string]bool{
		"fig1_pe.golden": true, "fig2_fft.golden": true,
		"fig3_linear_array.golden": true, "fig4_mesh.golden": true,
		"chart_loglog.golden": true, "table_laws.golden": true,
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Skip("no testdata yet; run -update")
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".golden") && !known[e.Name()] {
			t.Errorf("stray golden file %s", e.Name())
		}
	}
}
