package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-longer", 42)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Errorf("row line = %q", lines[2])
	}
	// All data lines equal width or less than header rule.
	rule := len(lines[1])
	for _, l := range lines {
		if len(strings.TrimRight(l, " ")) > rule+2 {
			t.Errorf("line overflows rule: %q", l)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(3.0)
	tb.AddRow(3.14159)
	out := tb.String()
	if !strings.Contains(out, "3\n") && !strings.Contains(out, "3 ") {
		t.Errorf("integral float not compact:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float not rounded to 4 significant digits:\n%s", out)
	}
}

func TestChartRendersSeries(t *testing.T) {
	ch := NewChart("test chart")
	ch.XLabel, ch.YLabel = "m", "ratio"
	ch.Add(Series{Name: "sqrt", X: []float64{1, 4, 9, 16}, Y: []float64{1, 2, 3, 4}})
	out := ch.String()
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing")
	}
	if !strings.Contains(out, "sqrt") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "x: m") {
		t.Error("axis labels missing")
	}
}

func TestChartLogAxes(t *testing.T) {
	ch := NewChart("log")
	ch.LogX, ch.LogY = true, true
	ch.Add(Series{Name: "p", X: []float64{10, 100, 1000}, Y: []float64{1, 10, 100}})
	out := ch.String()
	if !strings.Contains(out, "1000") {
		t.Errorf("log axis label missing:\n%s", out)
	}
	// Log axes must drop non-positive points, not crash.
	ch2 := NewChart("log2")
	ch2.LogX = true
	ch2.Add(Series{Name: "bad", X: []float64{0, -5}, Y: []float64{1, 2}})
	if out := ch2.String(); !strings.Contains(out, "no finite data") {
		t.Errorf("all-invalid log data should say so:\n%s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	ch := NewChart("flat")
	ch.Add(Series{Name: "c", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	out := ch.String()
	if out == "" || !strings.Contains(out, "c") {
		t.Error("flat series failed to render")
	}
}

func TestFig1(t *testing.T) {
	out := Fig1PE("10 MOPS", "20 MW/s", "64K words")
	for _, want := range []string{"C = 10 MOPS", "M = 64K words", "IO = 20 MW/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2(t *testing.T) {
	passes := [][]FFTBlock{
		{{0, 1, 2, 3}, {4, 5, 6, 7}},
		{{0, 4, 1, 5}, {2, 6, 3, 7}},
	}
	out := Fig2FFT(8, passes)
	if !strings.Contains(out, "pass 0") || !strings.Contains(out, "pass 1") {
		t.Errorf("passes missing:\n%s", out)
	}
	if !strings.Contains(out, "shuffle") {
		t.Errorf("shuffle separator missing:\n%s", out)
	}
}

func TestFig3AndFig4(t *testing.T) {
	f3 := Fig3LinearArray(4)
	if strings.Count(f3, "[PE]") != 5 { // 1 before + 4 now
		t.Errorf("Fig3 PE count wrong:\n%s", f3)
	}
	f4 := Fig4Mesh(3)
	if strings.Count(f4, "[PE]") != 9 {
		t.Errorf("Fig4 PE count wrong:\n%s", f4)
	}
}

func TestChartRuleX(t *testing.T) {
	ch := NewChart("rule")
	ch.LogX, ch.LogY = true, true
	ch.Add(Series{Name: "roof", X: []float64{1, 100}, Y: []float64{1e6, 1e8}})
	rule := ch.RuleX("ridge at 10", 10, 1e6, 1e8, '|')
	if len(rule.X) != len(rule.Y) || len(rule.X) < 16 {
		t.Fatalf("rule has %d/%d points", len(rule.X), len(rule.Y))
	}
	for i, x := range rule.X {
		if x != 10 {
			t.Fatalf("rule point %d at x=%v, want 10", i, x)
		}
	}
	if rule.Y[0] != 1e6 || rule.Y[len(rule.Y)-1] != 1e8 {
		t.Errorf("rule spans [%v, %v], want [1e6, 1e8]", rule.Y[0], rule.Y[len(rule.Y)-1])
	}
	ch.Add(rule)
	out := ch.String()
	if !strings.Contains(out, "ridge at 10") {
		t.Errorf("rule legend missing:\n%s", out)
	}
	// Geometric spacing on the log axis fills every row between the
	// bounds: each plot row contributes its axis '|' plus the rule cell,
	// and the legend line one more.
	if got, want := strings.Count(out, "|"), 2*ch.Height+1; got != want {
		t.Errorf("rule column has %d '|' cells, want %d (one per row + axis + legend):\n%s", got, want, out)
	}
}
