package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Chart renders XY data as an ASCII scatter chart with optional logarithmic
// axes — the repository's substitute for a plotting library.
type Chart struct {
	Title      string
	XLabel     string
	YLabel     string
	Width      int // plot area columns (default 60)
	Height     int // plot area rows (default 20)
	LogX, LogY bool
	series     []Series
}

// NewChart creates a chart with default dimensions.
func NewChart(title string) *Chart {
	return &Chart{Title: title, Width: 60, Height: 20}
}

// Add appends a series; markers cycle through a default set when zero.
func (c *Chart) Add(s Series) {
	if s.Marker == 0 {
		markers := []rune{'*', '+', 'o', 'x', '#', '@'}
		s.Marker = markers[len(c.series)%len(markers)]
	}
	c.series = append(c.series, s)
}

// RuleX returns a vertical-rule series at x spanning [ylo, yhi]: a dense
// column of marker points, used to mark distinguished abscissas — the
// ridge intensities of a multi-level roofline, say. The density matches the
// chart height so the rule renders as an unbroken column at any log/linear
// axis combination with y bounds inside [ylo, yhi].
func (c *Chart) RuleX(name string, x, ylo, yhi float64, marker rune) Series {
	n := 2 * c.Height
	if n < 16 {
		n = 16
	}
	s := Series{Name: name, Marker: marker, X: make([]float64, 0, n+1), Y: make([]float64, 0, n+1)}
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		y := ylo + f*(yhi-ylo)
		if c.LogY && ylo > 0 && yhi > 0 {
			y = ylo * math.Pow(yhi/ylo, f) // geometric spacing fills log axes
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	return s
}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w < 10 {
		w = 10
	}
	if h < 5 {
		h = 5
	}

	// Determine data bounds in (possibly log) space.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) (float64, bool) { return axisTransform(v, c.LogX) }
	ty := func(v float64) (float64, bool) { return axisTransform(v, c.LogY) }
	for _, s := range c.series {
		for i := range s.X {
			if x, ok := tx(s.X[i]); ok {
				xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			}
			if y, ok := ty(s.Y[i]); ok {
				ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
			}
		}
	}
	if math.IsInf(xmin, 1) || math.IsInf(ymin, 1) {
		return c.Title + "\n(no finite data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	for _, s := range c.series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = s.Marker
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	topLabel := axisValue(ymax, c.LogY)
	botLabel := axisValue(ymin, c.LogY)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, topLabel)
		} else if r == h-1 {
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.WriteString(string(grid[r]))
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat(" ", labelW+1))
	b.WriteString("+" + strings.Repeat("-", w) + "\n")
	b.WriteString(strings.Repeat(" ", labelW+2))
	lo, hi := axisValue(xmin, c.LogX), axisValue(xmax, c.LogX)
	gap := w - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	b.WriteString(lo + strings.Repeat(" ", gap) + hi + "\n")
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%*sx: %s   y: %s\n", labelW+2, "", c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(&b, "%*s%c %s\n", labelW+2, "", s.Marker, s.Name)
	}
	return b.String()
}

func axisTransform(v float64, log bool) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if log {
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}
	return v, true
}

func axisValue(t float64, log bool) string {
	if log {
		return formatFloat(math.Pow(10, t))
	}
	return formatFloat(t)
}
