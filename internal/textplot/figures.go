package textplot

import (
	"fmt"
	"strings"
)

// Fig1PE renders the paper's Fig. 1: a processing element characterized by
// computation bandwidth C, I/O bandwidth IO, and local memory size M.
func Fig1PE(c, io, m string) string {
	inner := []string{
		fmt.Sprintf("compute unit: C = %s", c),
		fmt.Sprintf("local memory: M = %s", m),
	}
	width := 0
	for _, l := range inner {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	b.WriteString("Fig. 1 — the information model's processing element\n\n")
	top := "+" + strings.Repeat("-", width+4) + "+"
	b.WriteString("              " + top + "\n")
	for i, l := range inner {
		arrow := "              "
		if i == 0 {
			arrow = fmt.Sprintf("  IO = %-6s ", io)
			arrow = fmt.Sprintf("%-14s", arrow)
		}
		link := "|"
		if i == 0 {
			link = "="
		}
		fmt.Fprintf(&b, "%s%s  %-*s  |\n", arrow, link, width, l)
	}
	b.WriteString("              " + top + "\n")
	b.WriteString("  <== words to/from the outside world ==>\n")
	return b.String()
}

// FFTBlock describes one subcomputation block for Fig. 2 rendering: the
// global indices it gathers.
type FFTBlock = []int

// Fig2FFT renders the paper's Fig. 2b: the decomposition of an N-point FFT
// into subcomputation blocks across passes, with the shuffle between them.
// passes[p] lists the blocks of pass p.
func Fig2FFT(n int, passes [][]FFTBlock) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — decomposing the %d-point FFT into blocks (shuffles between passes)\n\n", n)
	for p, blocks := range passes {
		fmt.Fprintf(&b, "pass %d:\n", p)
		for bi, blk := range blocks {
			parts := make([]string, len(blk))
			for i, idx := range blk {
				parts[i] = fmt.Sprintf("%2d", idx)
			}
			fmt.Fprintf(&b, "  block %d: [ %s ]\n", bi, strings.Join(parts, " "))
		}
		if p < len(passes)-1 {
			b.WriteString("        ~~~ shuffle ~~~\n")
		}
	}
	return b.String()
}

// Fig3LinearArray renders the paper's Fig. 3: p linearly connected PEs
// replacing one PE, with host I/O only at the ends.
func Fig3LinearArray(p int) string {
	var b strings.Builder
	b.WriteString("Fig. 3 — using p PEs to perform computation formerly done by one PE\n\n")
	b.WriteString("Before:  host <==> [PE]\n\nNow:     host <==> ")
	for i := 0; i < p; i++ {
		if i > 0 {
			b.WriteString("--")
		}
		b.WriteString("[PE]")
	}
	b.WriteString(" <==> host\n")
	fmt.Fprintf(&b, "\n(p = %d cells; only the boundary cells talk to the host,\n", p)
	b.WriteString(" so aggregate C grows x p while aggregate IO stays fixed)\n")
	return b.String()
}

// Fig4Mesh renders the paper's Fig. 4: a p×p mesh replacing one PE, with
// host I/O on the perimeter.
func Fig4Mesh(p int) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — using p×p PEs to perform computation formerly done by one PE\n\n")
	for i := 0; i < p; i++ {
		b.WriteString("   ")
		for j := 0; j < p; j++ {
			if j > 0 {
				b.WriteString("--")
			}
			b.WriteString("[PE]")
		}
		b.WriteString("\n")
		if i < p-1 {
			b.WriteString("   ")
			for j := 0; j < p; j++ {
				if j > 0 {
					b.WriteString("  ")
				}
				b.WriteString("  | ")
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "\n(p = %d per side; perimeter cells carry host traffic,\n", p)
	b.WriteString(" so aggregate C grows x p^2 while aggregate IO grows x p)\n")
	return b.String()
}
