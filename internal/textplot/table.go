// Package textplot renders the reproduction's tables, charts and the
// paper's structural figures as plain text, because the experiments must be
// readable in a terminal and checked into reports. It provides an
// aligned table writer, an ASCII scatter/line chart with linear or
// logarithmic axes, and renderers for the paper's Figs. 1–4.
package textplot

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// magnitudes with 4 significant digits.
func formatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// String renders the table with a header rule.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
