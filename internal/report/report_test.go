package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

func sample() *Result {
	r := &Result{ID: "E2", Title: "matmul ratio", PaperLocus: "§3.1"}
	r.AddClaim("R(M) = Θ(√M)", "exponent 0.5", "exponent 0.499", true)
	r.AddClaim("M_new = α²M_old", "4×", "4.02×", true)
	r.Tables = append(r.Tables, "M  ratio\n----\n16 4\n")
	r.Series = append(r.Series, Series{
		Name:    "ratio",
		Columns: []string{"memory", "ratio"},
		Rows:    [][]float64{{16, 4}, {64, 8}},
	})
	return r
}

func TestResultPass(t *testing.T) {
	r := sample()
	if !r.Pass() {
		t.Error("all-pass result reported failure")
	}
	r.AddClaim("x", "y", "z", false)
	if r.Pass() {
		t.Error("failed claim not reflected")
	}
}

func TestRender(t *testing.T) {
	out := sample().String()
	for _, want := range []string{"E2", "§3.1", "[PASS]", "exponent 0.499", "M  ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	r := sample()
	r.AddClaim("bad", "a", "b", false)
	if !strings.Contains(r.String(), "[FAIL]") {
		t.Error("FAIL verdict missing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	data, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "E2" || len(back.Claims) != 2 || len(back.Series) != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf, "ratio"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "memory,ratio\n") {
		t.Errorf("csv header wrong: %q", got)
	}
	if !strings.Contains(got, "16,4") {
		t.Errorf("csv row missing: %q", got)
	}
	if err := sample().WriteCSV(&buf, "nope"); !errors.Is(err, ErrNoSeries) {
		t.Errorf("unknown series error = %v, want ErrNoSeries", err)
	}
}

func TestWriteAllCSV(t *testing.T) {
	r := sample()
	r.Series = append(r.Series, Series{
		Name: "extra", Columns: []string{"a"}, Rows: [][]float64{{1}},
	})
	var buf bytes.Buffer
	if err := r.WriteAllCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"# series: ratio\n", "# series: extra\na\n1\n", "memory,ratio\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("WriteAllCSV output missing %q:\n%s", want, got)
		}
	}
}

// TestWriteAllCSVEmpty: an empty Series slice must be a typed error, not a
// silent zero-byte success.
func TestWriteAllCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	r := &Result{ID: "E0"}
	err := r.WriteAllCSV(&buf)
	if !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v, want ErrNoSeries", err)
	}
	if buf.Len() != 0 {
		t.Errorf("wrote %d bytes alongside the error", buf.Len())
	}
}

func TestSeriesNames(t *testing.T) {
	names := sample().SeriesNames()
	if len(names) != 1 || names[0] != "ratio" {
		t.Errorf("names = %v", names)
	}
}

// failingWriter errors once its byte budget is exhausted, simulating a
// full disk / broken pipe mid-export.
type failingWriter struct {
	budget int
	wrote  bytes.Buffer
}

var errWriterFull = errors.New("writer full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.wrote.Len()+len(p) > w.budget {
		room := w.budget - w.wrote.Len()
		if room > 0 {
			w.wrote.Write(p[:room])
		}
		return max(room, 0), errWriterFull
	}
	w.wrote.Write(p)
	return len(p), nil
}

// TestWriteAllCSVWriterErrors drives the failing writer through every write
// site of WriteAllCSV — the comment line, the series body, and the
// inter-series separator — by shrinking the budget across the full output
// length; every failure must surface, never a silent short write.
func TestWriteAllCSVWriterErrors(t *testing.T) {
	r := sample()
	r.Series = append(r.Series, Series{
		Name: "extra", Columns: []string{"a"}, Rows: [][]float64{{1}},
	})
	var full bytes.Buffer
	if err := r.WriteAllCSV(&full); err != nil {
		t.Fatal(err)
	}
	for budget := 0; budget < full.Len(); budget++ {
		w := &failingWriter{budget: budget}
		err := r.WriteAllCSV(w)
		if err == nil {
			t.Fatalf("budget %d of %d: no error from truncated writer", budget, full.Len())
		}
		if errors.Is(err, ErrNoSeries) {
			t.Fatalf("budget %d: writer failure misreported as ErrNoSeries: %v", budget, err)
		}
		if w.wrote.Len() > budget {
			t.Fatalf("budget %d: wrote %d bytes past the failure", budget, w.wrote.Len())
		}
	}
	// At exactly the full length the export must succeed byte-identically.
	w := &failingWriter{budget: full.Len()}
	if err := r.WriteAllCSV(w); err != nil {
		t.Fatalf("exact budget: %v", err)
	}
	if w.wrote.String() != full.String() {
		t.Error("exact-budget output differs from unconstrained output")
	}
}

// TestWriteCSVWriterErrors covers the single-series export's error path.
func TestWriteCSVWriterErrors(t *testing.T) {
	r := sample()
	var full bytes.Buffer
	if err := r.WriteCSV(&full, "ratio"); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1, full.Len() - 1} {
		w := &failingWriter{budget: budget}
		if err := r.WriteCSV(w, "ratio"); err == nil {
			t.Errorf("budget %d: no error from truncated writer", budget)
		}
	}
}

// TestWriteAllCSVErrNoSeriesIdentifiesResult: the typed error names the
// result so batch exporters can report which experiment had nothing to
// export.
func TestWriteAllCSVErrNoSeriesIdentifiesResult(t *testing.T) {
	r := &Result{ID: "E10"}
	err := r.WriteAllCSV(io.Discard)
	if !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v, want ErrNoSeries", err)
	}
	if !strings.Contains(err.Error(), "E10") {
		t.Errorf("error %q does not name the result", err)
	}
}
