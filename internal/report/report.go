// Package report models experiment outcomes: the paper's claim, what was
// measured, and whether the measurement supports the claim, together with
// rendered tables and figures and the raw data series for CSV/JSON export.
package report

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrNoSeries is the typed cause of every "nothing to export" CSV failure:
// WriteCSV wraps it when the named series does not exist, and WriteAllCSV
// returns it when the result has no series at all — so callers can
// distinguish "empty result" from an I/O error instead of silently writing
// nothing. Test with errors.Is.
var ErrNoSeries = errors.New("report: no such series")

// Claim is one paper statement checked by an experiment.
type Claim struct {
	// Statement is the paper's claim in one line.
	Statement string `json:"statement"`
	// Expected is what the paper predicts.
	Expected string `json:"expected"`
	// Measured is what this reproduction observed.
	Measured string `json:"measured"`
	// Pass records whether the measurement supports the claim.
	Pass bool `json:"pass"`
}

// Series is a raw data series for machine-readable export.
type Series struct {
	Name    string      `json:"name"`
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`
}

// Result is the complete outcome of one experiment.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E2").
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// PaperLocus cites the section/figure reproduced.
	PaperLocus string `json:"paper_locus"`
	// Claims are the checked statements.
	Claims []Claim `json:"claims"`
	// Tables are pre-rendered text tables.
	Tables []string `json:"tables,omitempty"`
	// Figures are pre-rendered text charts/diagrams.
	Figures []string `json:"figures,omitempty"`
	// Series are the raw data for export.
	Series []Series `json:"series,omitempty"`
}

// AddClaim appends a checked claim.
func (r *Result) AddClaim(statement, expected, measured string, pass bool) {
	r.Claims = append(r.Claims, Claim{
		Statement: statement, Expected: expected, Measured: measured, Pass: pass,
	})
}

// Pass reports whether every claim passed.
func (r *Result) Pass() bool {
	for _, c := range r.Claims {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render writes the result in the terminal report format.
func (r *Result) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (%s) ==\n\n", r.ID, r.Title, r.PaperLocus)
	for _, c := range r.Claims {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s\n      paper: %s\n      measured: %s\n", verdict, c.Statement, c.Expected, c.Measured)
	}
	for _, t := range r.Tables {
		b.WriteString("\n")
		b.WriteString(t)
	}
	for _, f := range r.Figures {
		b.WriteString("\n")
		b.WriteString(f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the result to a string.
func (r *Result) String() string {
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// JSON marshals the result for machine consumption.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteCSV emits the named series as CSV. If the series does not exist the
// returned error wraps ErrNoSeries.
func (r *Result) WriteCSV(w io.Writer, seriesName string) error {
	for _, s := range r.Series {
		if s.Name != seriesName {
			continue
		}
		return writeSeriesCSV(w, s)
	}
	return fmt.Errorf("%w: %q", ErrNoSeries, seriesName)
}

// WriteAllCSV emits every series of the result, each preceded by a
// "# series: <name>" comment line and separated by blank lines. A result
// with no series returns ErrNoSeries rather than silently writing nothing.
func (r *Result) WriteAllCSV(w io.Writer) error {
	if len(r.Series) == 0 {
		return fmt.Errorf("%w: result %s has no series", ErrNoSeries, r.ID)
	}
	for i, s := range r.Series {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# series: %s\n", s.Name); err != nil {
			return err
		}
		if err := writeSeriesCSV(w, s); err != nil {
			return err
		}
	}
	return nil
}

// writeSeriesCSV writes one series' header and rows.
func writeSeriesCSV(w io.Writer, s Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(s.Columns); err != nil {
		return err
	}
	for _, row := range s.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesNames lists the exportable series.
func (r *Result) SeriesNames() []string {
	names := make([]string, len(r.Series))
	for i, s := range r.Series {
		names[i] = s.Name
	}
	return names
}
