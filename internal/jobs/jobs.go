// Package jobs is the durable async half of balance-as-a-service: a
// write-ahead-logged job queue that lets the API accept work bigger than
// one request timeout and keep its promises across crashes. Submit
// journals the typed request to the WAL *before* acknowledging, workers
// execute through an injected executor (the server wires it to the same
// core operations the synchronous endpoints use, which run on
// engine.Pool underneath), and results land in a content-addressed
// internal/store — so an identical request resubmitted later, even after
// a restart, completes without re-execution.
//
// States move queued → running → done | failed | canceled. On Open the
// WAL is replayed: jobs that were queued or running when the process
// died are requeued (counted in Counters.Replayed), terminal jobs are
// restored for status queries, and a torn final record — the crash
// signature — is clipped, never a panic. Admission control is
// memory-aware (cf. Silva et al., "Memory Aware Load Balance Strategy"):
// every job carries a caller-estimated footprint in bytes, the queue
// holds the sum of queued+running footprints under a budget, and a
// submit that would exceed it returns ErrOverBudget for the server to
// map to 429 + Retry-After. Terminal jobs are garbage-collected after a
// TTL; Close drains running jobs and leaves the rest journaled for the
// next Open.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"balarch/internal/model"
	"balarch/internal/store"
)

// State is a job's lifecycle position.
type State string

// The five job states. Queued and Running are live (they hold admission
// budget and survive a crash by being requeued); Done, Failed, and
// Canceled are terminal.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Job is one unit of journaled work. Copies are returned to callers; the
// queue owns the originals.
type Job struct {
	// ID is derived from the content key ("j" + its first 16 hex chars),
	// so identical requests share one job and clients can compute the id
	// of work they are about to submit.
	ID string `json:"id"`
	// Kind names the operation ("sweep", "batch", "analyze", …); the
	// executor switches on it.
	Kind string `json:"kind"`
	// Request is the canonical request body journaled at submit.
	Request json.RawMessage `json:"request"`
	// Key is the full content address: results live under it in the store.
	Key string `json:"key"`
	// Cost is the caller-estimated memory footprint in bytes, held
	// against the admission budget while the job is live.
	Cost int64 `json:"cost"`
	// Tenant names the submitter for per-tenant admission accounting.
	// Empty means the anonymous tenant (and keeps old WALs replayable:
	// a record without the field folds to the anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the pick class within the tenant (low|normal|high).
	// The zero value is normal and is omitted everywhere it is
	// serialized, so priority-absent jobs round-trip byte-identical to
	// the pre-priority format.
	Priority Priority `json:"priority,omitempty"`
	// State is the lifecycle position.
	State State `json:"state"`
	// Cached reports the job completed from the store without executing.
	Cached bool `json:"cached,omitempty"`
	// Error is the failure message of a Failed job.
	Error string `json:"error,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt stamp the transitions.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`

	cancelRequested bool
	cancel          context.CancelFunc
}

// IDFor derives the job id and full content key for a (kind, canonical
// request) pair. Exported so clients and load generators can predict the
// id of work before (or without) submitting it.
func IDFor(kind string, canonicalRequest []byte) (id, key string) {
	key = store.Key(append([]byte(kind+"\n"), canonicalRequest...))
	return "j" + key[:16], key
}

// Exec runs one job: kind names the operation, req is the canonical
// request. The returned bytes are the durable result — for the server's
// executor, the exact body the synchronous endpoint would have written.
type Exec func(ctx context.Context, kind string, req json.RawMessage) ([]byte, error)

// ErrOverBudget is returned by Submit when admitting the job would push
// the sum of live footprints past the memory budget — the global one, or
// the submitting tenant's own partition (Tenant names which; empty means
// the global budget refused). RetryAfter is the server's hint for the
// 429 Retry-After header.
type ErrOverBudget struct {
	Cost, InUse, Budget int64
	RetryAfter          time.Duration
	// Tenant is the tenant whose partition refused the job; empty when
	// the global budget did.
	Tenant string
}

func (e *ErrOverBudget) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("jobs: admission denied for tenant %q: job needs %d bytes, %d of %d in use",
			e.Tenant, e.Cost, e.InUse, e.Budget)
	}
	return fmt.Sprintf("jobs: admission denied: job needs %d bytes, %d of %d in use",
		e.Cost, e.InUse, e.Budget)
}

// ErrClosed is returned by Submit and Cancel after Close.
var ErrClosed = errors.New("jobs: queue closed")

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("jobs: no such job")

// ErrNotTerminal is returned by Delete for a job still queued or
// running (Cancel it first). A state conflict, not a caller bug — the
// server maps it to 409.
var ErrNotTerminal = errors.New("jobs: job is not in a terminal state")

// Options tunes a Queue. The zero value is production-ready.
type Options struct {
	// Workers is the number of executor goroutines. 0 means 2; negative
	// means none — the queue accepts and journals but executes nothing
	// (a paused queue: what a draining daemon leaves behind, and what
	// the restart tests use to pin a job in the queued state).
	Workers int
	// MemBudgetBytes caps the summed footprint of queued+running jobs.
	// 0 means 256 MiB; negative disables admission control.
	MemBudgetBytes int64
	// TTL is how long terminal jobs remain queryable before GC. 0 means
	// 15 minutes; negative disables GC.
	TTL time.Duration
	// JobTimeout bounds one job's execution. 0 means no per-job deadline
	// (the executor's own budgets apply).
	JobTimeout time.Duration
	// TenantBudgets partitions the admission budget per tenant: a
	// SubmitFor under a listed tenant is additionally held under that
	// tenant's own byte cap, so one tenant's backlog cannot consume the
	// whole global budget. Unlisted tenants (and the "" anonymous
	// tenant, unless listed) see only the global budget.
	TenantBudgets map[string]int64
	// TenantWeights sets per-tenant weights for the scheduler's weighted
	// round-robin: a tenant with weight w is picked w times per round.
	// Unlisted tenants (including "" anonymous) weigh 1; values ≤ 0 are
	// treated as 1.
	TenantWeights map[string]int
	// Policy is the pick policy. Nil means BalancedPolicy: memory-aware
	// packing against the measured drain rate with weighted round-robin
	// across tenants. FIFOPolicy restores the seed queue's strict global
	// submission order.
	Policy PickPolicy
	// Notify, when non-nil, is called after every job state transition
	// with a copy of the job. It runs under the queue's lock: it must be
	// fast and must not call back into the Queue (the server's event bus
	// only touches its own mutex). Transitions cut by shutdown (a job
	// requeued because the daemon is draining) are not notified — the
	// subscriber's stream is being torn down anyway.
	Notify func(Job)
	// Observe, when non-nil, receives the duration of each pipeline
	// stage a job moves through: "admit" (lock-held submit work, WAL
	// sync included), "wal_append" (one journal append+sync),
	// "sched_pick" (one successful scheduler pick), "queued" (submit →
	// start wait), "run" (executor or store-completion time), and
	// "publish" (the Notify fan-out). Like Notify it may run under the
	// queue's lock: it must be fast and must not call back into the
	// Queue (the server's feeds atomic histograms).
	Observe func(stage string, d time.Duration)
}

const (
	defaultWorkers   = 2
	defaultMemBudget = 256 << 20
	defaultTTL       = 15 * time.Minute

	// Retry-After bounds: never advise less than a second (a tighter
	// loop is a retry storm) or more than a minute (past that the hint
	// is a guess, and a paused queue would otherwise advise infinity).
	minRetryAfter = time.Second
	maxRetryAfter = time.Minute

	// WAL start-append failure backoff, shared by all workers: first
	// retry after walRetryMin, doubling to walRetryMax. (Practically:
	// a full disk — hammering it from N workers helps nobody.)
	walRetryMin = 100 * time.Millisecond
	walRetryMax = 5 * time.Second

	// drainAlpha is the EWMA weight of the newest bytes-retired/sec
	// sample in the per-worker drain estimate.
	drainAlpha = 0.3

	// selfModelWordBytes converts the queue's byte-denominated rates to
	// the analytic model's word-denominated ones for self-analysis.
	selfModelWordBytes = 8
)

// Counters is the queue's instrumentation snapshot, served under the
// jobs_* keys of /metrics.
type Counters struct {
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
	// Replayed counts jobs a WAL replay requeued (they were queued or
	// in flight when the previous process died).
	Replayed int64 `json:"replayed"`
	// MemInUseBytes/MemBudgetBytes expose the admission state.
	MemInUseBytes  int64 `json:"mem_in_use_bytes"`
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
}

// Queue is a durable job queue on one directory. All methods are safe for
// concurrent use. Open one per directory.
type Queue struct {
	dir   string
	st    *store.Store
	exec  Exec
	opts  Options
	clock func() time.Time // injectable for TTL tests

	mu          sync.Mutex
	cond        *sync.Cond // signals workers: pending work or shutdown
	jobs        map[string]*Job
	sched       *scheduler // pending set: per-tenant priority lanes (sched.go)
	wal         *os.File
	walSize     int64 // current WAL length; the clip-back offset for torn appends
	memInUse    int64
	memByTenant map[string]int64 // live footprint per tenant (parallel to memInUse)
	running     int64
	// runningBytes is the summed footprint of running jobs — the
	// quantity the balanced policy packs against the drain rate.
	runningBytes int64
	// drainPerWorker is the EWMA of bytes-retired/sec over finished
	// jobs; drainSamples counts contributions (0 = no measurement yet).
	drainPerWorker float64
	drainSamples   int64
	// walRetryAt/walBackoff gate all workers together after a failed
	// start append: no worker picks before walRetryAt.
	walRetryAt time.Time
	walBackoff time.Duration
	// walBytes/openedAt measure the journal fill rate for self-analysis.
	walBytes int64
	openedAt time.Time
	replayed int64
	lastGC   time.Time
	closed   bool

	// walAppendHook, when non-nil, runs before every WAL append and can
	// inject a failure (tests only; op is the record's op field).
	walAppendHook func(op string) error

	workers  sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc
}

// Open opens (creating if needed) the queue journaled in dir, replaying
// the WAL: terminal jobs are restored for status queries, live jobs are
// requeued, and a torn tail is clipped. Results are stored in st; exec
// runs the work. Close the queue before closing the store.
func Open(dir string, st *store.Store, exec Exec, opts Options) (*Queue, error) {
	if st == nil || exec == nil {
		return nil, errors.New("jobs: Open needs a store and an executor")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	if opts.Workers == 0 {
		opts.Workers = defaultWorkers
	}
	if opts.MemBudgetBytes == 0 {
		opts.MemBudgetBytes = defaultMemBudget
	}
	if opts.TTL == 0 {
		opts.TTL = defaultTTL
	}
	if opts.Policy == nil {
		opts.Policy = BalancedPolicy()
	}
	q := &Queue{
		dir:         dir,
		st:          st,
		exec:        exec,
		opts:        opts,
		clock:       time.Now,
		jobs:        make(map[string]*Job),
		memByTenant: make(map[string]int64),
		sched:       newScheduler(opts.TenantWeights),
	}
	q.cond = sync.NewCond(&q.mu)
	q.baseCtx, q.baseStop = context.WithCancel(context.Background())
	q.openedAt = q.clock()

	if err := q.replayAndCompact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(q.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening WAL: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: stat WAL: %w", err)
	}
	q.wal, q.walSize = f, info.Size()

	for w := 0; w < opts.Workers; w++ {
		q.workers.Add(1)
		go q.worker()
	}
	return q, nil
}

func (q *Queue) walPath() string { return filepath.Join(q.dir, "jobs.wal") }

// Submit journals and admits one job under the anonymous tenant at
// normal priority. See SubmitFor.
func (q *Queue) Submit(kind string, canonicalReq []byte, cost int64) (Job, bool, error) {
	return q.SubmitFor("", kind, canonicalReq, cost, PriorityNormal)
}

// SubmitFor journals and admits one job on behalf of tenant ("" is
// anonymous) at the given priority. The request must already be
// canonical (the server re-marshals decoded DTOs, so equal requests
// have equal bytes). Identical requests share one job regardless of
// tenant or priority: a live or done job for the same content key is
// returned as-is (existing=true) and keeps its original tenant's
// accounting and priority — content addressing deliberately wins over
// isolation, since the work is literally the same. A failed or canceled
// job is reset to queued and re-run, charged to the resubmitting tenant
// at the resubmitted priority. A job whose result is already in the
// store completes instantly, without execution, marked Cached. The WAL
// record is synced before SubmitFor returns — the ack is the durability
// point.
func (q *Queue) SubmitFor(tenant, kind string, canonicalReq []byte, cost int64, prio Priority) (Job, bool, error) {
	if cost < 0 {
		cost = 0
	}
	id, key := IDFor(kind, canonicalReq)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.opts.Observe != nil {
		// The "admit" stage is everything the submit ack waits on under
		// the lock: dedup, budget check, and the synced WAL append.
		t0 := time.Now()
		defer func() { q.opts.Observe("admit", time.Since(t0)) }()
	}
	if q.closed {
		return Job{}, false, ErrClosed
	}
	if j, ok := q.jobs[id]; ok {
		switch j.State {
		case Queued, Running, Done:
			return *j, true, nil
		case Failed, Canceled:
			// Resubmit of a dead job: same id, fresh run, charged to the
			// resubmitting tenant (the original's budget was released at
			// its finish).
			if err := q.admit(tenant, cost); err != nil {
				return Job{}, false, err
			}
			now := q.clock()
			if err := q.appendWAL(walRecord{Op: "submit", ID: id, Kind: kind,
				Req: canonicalReq, Cost: cost, Key: key, Tenant: tenant,
				Prio: string(prio), T: now}); err != nil {
				return Job{}, false, err
			}
			j.State = Queued
			j.Cost = cost
			j.Tenant = tenant
			j.Priority = prio
			j.Error = ""
			j.Cached = false
			j.cancelRequested = false
			j.SubmittedAt = now
			j.StartedAt = time.Time{}
			j.FinishedAt = time.Time{}
			q.memInUse += cost
			q.memByTenant[tenant] += cost
			q.enqueueLocked(j)
			q.notifyLocked(j)
			return *j, false, nil
		}
	}

	now := q.clock()
	j := &Job{
		ID: id, Kind: kind, Request: append([]byte(nil), canonicalReq...),
		Key: key, Cost: cost, Tenant: tenant, Priority: prio,
		State: Queued, SubmittedAt: now,
	}
	if q.st.Has(key) {
		// The content-addressed dedup across restarts: the result of an
		// identical past request is on disk, so this job is born done.
		if err := q.appendWAL(walRecord{Op: "submit", ID: id, Kind: kind,
			Req: canonicalReq, Cost: cost, Key: key, Tenant: tenant,
			Prio: string(prio), T: now}); err != nil {
			return Job{}, false, err
		}
		if err := q.appendWAL(walRecord{Op: "done", ID: id, Key: key, Cached: true, T: now}); err != nil {
			return Job{}, false, err
		}
		j.State = Done
		j.Cached = true
		j.FinishedAt = now
		q.jobs[id] = j
		q.notifyLocked(j)
		return *j, false, nil
	}
	if err := q.admit(tenant, cost); err != nil {
		return Job{}, false, err
	}
	if err := q.appendWAL(walRecord{Op: "submit", ID: id, Kind: kind,
		Req: canonicalReq, Cost: cost, Key: key, Tenant: tenant,
		Prio: string(prio), T: now}); err != nil {
		return Job{}, false, err
	}
	q.jobs[id] = j
	q.memInUse += cost
	q.memByTenant[tenant] += cost
	q.enqueueLocked(j)
	q.notifyLocked(j)
	return *j, false, nil
}

// admit enforces the byte budgets (callers hold q.mu): the submitting
// tenant's partition first — the more specific refusal — then the
// global cap.
func (q *Queue) admit(tenant string, cost int64) error {
	if budget := q.opts.TenantBudgets[tenant]; budget > 0 && q.memByTenant[tenant]+cost > budget {
		return &ErrOverBudget{Cost: cost, InUse: q.memByTenant[tenant],
			Budget: budget, RetryAfter: q.retryAfterLocked(cost), Tenant: tenant}
	}
	if q.opts.MemBudgetBytes < 0 {
		return nil
	}
	if q.memInUse+cost > q.opts.MemBudgetBytes {
		return &ErrOverBudget{Cost: cost, InUse: q.memInUse,
			Budget: q.opts.MemBudgetBytes, RetryAfter: q.retryAfterLocked(cost)}
	}
	return nil
}

// retryAfterLocked estimates when a footprint of cost bytes will
// plausibly fit (callers hold q.mu): the live backlog plus the new job,
// divided by the measured drain rate. A paused queue (Workers < 0)
// drains nothing, so the hint is the cap — not the old "1s" lie that
// made clients hammer a queue that cannot make progress. Before the
// first drain sample the seed heuristic (one second per running job)
// stands in. Clamped to [minRetryAfter, maxRetryAfter].
func (q *Queue) retryAfterLocked(cost int64) time.Duration {
	if q.opts.Workers < 0 {
		return maxRetryAfter
	}
	if drain := q.drainBPSLocked(); drain > 0 {
		d := time.Duration(float64(q.memInUse+cost) / drain * float64(time.Second))
		return min(max(d, minRetryAfter), maxRetryAfter)
	}
	retry := time.Duration(1+q.running) * time.Second
	return min(max(retry, minRetryAfter), maxRetryAfter)
}

// drainBPSLocked is the pool's measured retirement rate: the per-worker
// EWMA times the worker count. 0 before the first finished job (or on a
// paused queue).
func (q *Queue) drainBPSLocked() float64 {
	if q.opts.Workers <= 0 {
		return 0
	}
	return q.drainPerWorker * float64(q.opts.Workers)
}

// poolStateLocked snapshots the balance picture the pick policy sees.
func (q *Queue) poolStateLocked() PoolState {
	return PoolState{
		RunningJobs:    q.running,
		RunningBytes:   q.runningBytes,
		DrainBPS:       q.drainBPSLocked(),
		MemBudgetBytes: q.opts.MemBudgetBytes,
	}
}

// observeStage delivers one stage duration to the Observe hook.
func (q *Queue) observeStage(stage string, d time.Duration) {
	if q.opts.Observe != nil {
		q.opts.Observe(stage, d)
	}
}

// notifyLocked delivers one transition to the Notify hook (callers hold
// q.mu; the hook gets a copy). The fan-out is timed as the "publish"
// stage — the event bus runs inside it, so a slow subscriber shows up
// here.
func (q *Queue) notifyLocked(j *Job) {
	if q.opts.Notify == nil {
		return
	}
	t0 := time.Now()
	q.opts.Notify(*j)
	q.observeStage("publish", time.Since(t0))
}

func (q *Queue) enqueueLocked(j *Job) {
	q.sched.push(j)
	q.cond.Signal()
}

// worker executes pending jobs until shutdown.
func (q *Queue) worker() {
	defer q.workers.Done()
	for {
		q.mu.Lock()
		var (
			id  string
			seq uint64
		)
		for {
			if q.closed {
				// Drain mode: whatever is still pending stays journaled
				// for the next Open; this worker only finishes what it
				// started.
				q.mu.Unlock()
				return
			}
			if !q.walRetryAt.IsZero() && q.clock().Before(q.walRetryAt) {
				// A start append just failed; every worker holds off
				// until the shared backoff expires (an AfterFunc
				// broadcasts then).
				q.cond.Wait()
				continue
			}
			var ok bool
			t0 := time.Now()
			if id, seq, ok = q.sched.pick(q.opts.Policy, q.poolStateLocked(), q.jobs); ok {
				q.observeStage("sched_pick", time.Since(t0))
				break
			}
			// Nothing pending fits right now; a submission, a finished
			// job, or shutdown will signal.
			q.cond.Wait()
		}
		j := q.jobs[id]
		now := q.clock()
		if err := q.appendWAL(walRecord{Op: "start", ID: id, T: now}); err != nil {
			// The journal is the source of truth; without it the start
			// cannot be recorded, so the job goes back to the *front* of
			// its lane at its original sequence number — a WAL hiccup
			// must not reorder submissions — and all workers share one
			// doubling backoff instead of hot-spinning on a disk that
			// just refused a write. (Practically: a full disk.)
			q.sched.pushFront(j, seq)
			d := min(max(2*q.walBackoff, walRetryMin), walRetryMax)
			q.walBackoff = d
			q.walRetryAt = now.Add(d)
			time.AfterFunc(d, func() {
				q.mu.Lock()
				q.cond.Broadcast()
				q.mu.Unlock()
			})
			q.mu.Unlock()
			continue
		}
		q.walBackoff = 0
		q.walRetryAt = time.Time{}
		j.State = Running
		j.StartedAt = now
		q.observeStage("queued", now.Sub(j.SubmittedAt))
		q.running++
		q.runningBytes += j.Cost
		q.notifyLocked(j)
		var (
			ctx    context.Context
			cancel context.CancelFunc
		)
		if q.opts.JobTimeout > 0 {
			ctx, cancel = context.WithTimeout(q.baseCtx, q.opts.JobTimeout)
		} else {
			ctx, cancel = context.WithCancel(q.baseCtx)
		}
		j.cancel = cancel
		kind, req, key := j.Kind, j.Request, j.Key
		q.mu.Unlock()

		q.runOne(ctx, cancel, id, kind, req, key)
	}
}

// runOne executes one started job and journals its terminal state.
func (q *Queue) runOne(ctx context.Context, cancel context.CancelFunc, id, kind string, req json.RawMessage, key string) {
	defer cancel()

	var (
		result []byte
		err    error
		cached bool
	)
	t0 := time.Now()
	if data, ok, gerr := q.st.Get(key); gerr == nil && ok {
		// A WAL-replayed twin (or an operator restoring blobs) already
		// produced this result; completing from the store is the point
		// of content addressing.
		result, cached = data, true
	} else {
		result, err = q.exec(ctx, kind, req)
	}
	runDur := time.Since(t0)

	q.mu.Lock()
	defer q.mu.Unlock()
	q.observeStage("run", runDur)
	j, ok := q.jobs[id]
	if !ok {
		return
	}
	q.running--
	q.runningBytes -= j.Cost
	now := q.clock()
	switch {
	case err == nil:
		if !cached {
			if perr := q.st.Put(key, result); perr != nil {
				// Result computed but not durable: fail the job rather
				// than pretend; a resubmit re-runs it.
				q.finishLocked(j, Failed, now, fmt.Sprintf("storing result: %v", perr))
				return
			}
		}
		j.Cached = cached
		_ = q.appendWAL(walRecord{Op: "done", ID: id, Key: key, Cached: cached, T: now})
		q.finishLocked(j, Done, now, "")
	case j.cancelRequested:
		_ = q.appendWAL(walRecord{Op: "cancel", ID: id, T: now})
		q.finishLocked(j, Canceled, now, "")
	case q.baseCtx.Err() != nil:
		// Queue shutdown cut the job mid-run. Write no terminal record:
		// the WAL still says "running", so the next Open requeues it —
		// crash semantics, deliberately.
		j.State = Queued
		j.StartedAt = time.Time{}
	default:
		_ = q.appendWAL(walRecord{Op: "fail", ID: id, Error: err.Error(), T: now})
		q.finishLocked(j, Failed, now, err.Error())
	}
}

// finishLocked moves j to a terminal state, releases its budget (global
// and per-tenant), folds the job's bytes-retired/sec into the drain
// EWMA, and notifies. The broadcast is load-bearing: a finished job
// changes what fits, so every waiting worker must re-evaluate its pick.
func (q *Queue) finishLocked(j *Job, s State, now time.Time, errMsg string) {
	if !j.StartedAt.IsZero() && j.Cost > 0 {
		if dur := now.Sub(j.StartedAt).Seconds(); dur > 0 {
			sample := float64(j.Cost) / dur
			if q.drainSamples == 0 {
				q.drainPerWorker = sample
			} else {
				q.drainPerWorker = drainAlpha*sample + (1-drainAlpha)*q.drainPerWorker
			}
			q.drainSamples++
		}
	}
	j.State = s
	j.Error = errMsg
	j.FinishedAt = now
	j.cancel = nil
	q.memInUse -= j.Cost
	q.memByTenant[j.Tenant] -= j.Cost
	q.notifyLocked(j)
	q.cond.Broadcast()
}

// Get returns a copy of the job.
func (q *Queue) Get(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return *j, nil
}

// List returns copies of every job, newest submission first (ties broken
// by id for determinism).
func (q *Queue) List() []Job {
	q.mu.Lock()
	out := make([]Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, *j)
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if !out[i].SubmittedAt.Equal(out[k].SubmittedAt) {
			return out[i].SubmittedAt.After(out[k].SubmittedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel stops a job: a queued job is canceled immediately, a running
// job's context is cancelled (the worker journals the terminal state when
// the executor returns), a terminal job is left alone (no error — cancel
// is idempotent).
func (q *Queue) Cancel(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, ErrClosed
	}
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case Queued:
		now := q.clock()
		if err := q.appendWAL(walRecord{Op: "cancel", ID: id, T: now}); err != nil {
			return Job{}, err
		}
		q.finishLocked(j, Canceled, now, "")
	case Running:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return *j, nil
}

// Delete removes a terminal job's record (the stored result blob stays —
// it is content-addressed and may serve other submissions). Deleting a
// live job is an error; Cancel it first.
func (q *Queue) Delete(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	j, ok := q.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if !j.State.Terminal() {
		return fmt.Errorf("job %s is %s; cancel it before deleting: %w", id, j.State, ErrNotTerminal)
	}
	if err := q.appendWAL(walRecord{Op: "gc", ID: id, T: q.clock()}); err != nil {
		return err
	}
	delete(q.jobs, id)
	return nil
}

// GC removes terminal jobs older than the TTL and returns how many went.
// The server calls it opportunistically on the submit and list paths, so
// it throttles itself: a full-table sweep runs at most once per TTL/4
// (clamped to [1s, 1min]); inside that window it is one time comparison
// under the lock, cheap enough for a hot path.
func (q *Queue) GC() int {
	if q.opts.TTL < 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0
	}
	interval := min(max(q.opts.TTL/4, time.Second), time.Minute)
	now := q.clock()
	if now.Sub(q.lastGC) < interval {
		return 0
	}
	q.lastGC = now
	cutoff := q.clock().Add(-q.opts.TTL)
	n := 0
	for id, j := range q.jobs {
		if j.State.Terminal() && j.FinishedAt.Before(cutoff) {
			if err := q.appendWAL(walRecord{Op: "gc", ID: id, T: q.clock()}); err != nil {
				break
			}
			delete(q.jobs, id)
			n++
		}
	}
	return n
}

// Counters snapshots the queue's instrumentation.
func (q *Queue) Counters() Counters {
	q.mu.Lock()
	defer q.mu.Unlock()
	c := Counters{
		Replayed:       q.replayed,
		MemInUseBytes:  q.memInUse,
		MemBudgetBytes: q.opts.MemBudgetBytes,
	}
	for _, j := range q.jobs {
		switch j.State {
		case Queued:
			c.Queued++
		case Running:
			c.Running++
		case Done:
			c.Done++
		case Failed:
			c.Failed++
		case Canceled:
			c.Canceled++
		}
	}
	return c
}

// TenantCounters is one tenant's slice of the admission state.
type TenantCounters struct {
	MemInUseBytes  int64 `json:"mem_in_use_bytes"`
	MemBudgetBytes int64 `json:"mem_budget_bytes"` // 0 = no per-tenant cap
}

// TenantCounters snapshots the per-tenant admission accounting: every
// tenant with a configured partition or a live footprint.
func (q *Queue) TenantCounters() map[string]TenantCounters {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]TenantCounters, len(q.opts.TenantBudgets))
	for tenant, budget := range q.opts.TenantBudgets {
		out[tenant] = TenantCounters{MemBudgetBytes: budget}
	}
	for tenant, inUse := range q.memByTenant {
		c := out[tenant]
		c.MemInUseBytes = inUse
		out[tenant] = c
	}
	return out
}

// SchedCounters snapshots the scheduler's instrumentation, including
// the analytic core's self-analysis verdict on the queue.
func (q *Queue) SchedCounters() SchedCounters {
	q.mu.Lock()
	defer q.mu.Unlock()
	served := make(map[string]int64, len(q.sched.served))
	for tenant, n := range q.sched.served {
		served[tenant] = n
	}
	return SchedCounters{
		Policy:         q.opts.Policy.Name(),
		Picks:          q.sched.picks,
		Skips:          q.sched.skips,
		MaxWaitPicks:   q.sched.maxWait,
		DrainBPS:       q.drainBPSLocked(),
		RunningBytes:   q.runningBytes,
		SelfState:      q.selfStateLocked(),
		ServedByTenant: served,
	}
}

// selfStateLocked dogfoods the analytic core on the daemon itself: the
// queue is a one-level "machine" whose compute bandwidth is the pool's
// measured drain rate, whose memory is the admission budget, and whose
// I/O boundary is the WAL — filled at the journal's observed append
// rate. AnalyzeHierarchy then classifies the queue the way the paper
// classifies a PE: "memory-bound" (the model's I/O-bound: intake
// outruns what the budgeted memory lets the pool absorb) or
// "compute-bound" (the workers are the limiter; the WAL boundary is
// underused). "idle" means there is not yet a measured drain or fill
// rate to analyze.
func (q *Queue) selfStateLocked() string {
	drain := q.drainBPSLocked()
	elapsed := q.clock().Sub(q.openedAt).Seconds()
	if drain <= 0 || elapsed <= 0 || q.walBytes == 0 {
		return "idle"
	}
	fill := float64(q.walBytes) / elapsed
	budget := q.opts.MemBudgetBytes
	if budget <= 0 {
		budget = defaultMemBudget
	}
	words := float64(budget) / selfModelWordBytes
	h := model.Hierarchy{
		C: drain / selfModelWordBytes,
		Levels: []model.Level{
			{Name: "queue", BW: fill / selfModelWordBytes, M: words},
		},
	}
	a, err := model.AnalyzeHierarchy(h, model.Sorting(), words)
	if err != nil {
		return "idle"
	}
	switch a.State {
	case model.IOBound:
		return "memory-bound"
	case model.ComputeBound:
		return "compute-bound"
	}
	return "balanced"
}

// Close drains the queue: no new submissions, workers finish the jobs
// they are running (until ctx expires, at which point they are cut and
// will requeue on the next Open), and queued jobs stay journaled. The WAL
// is closed last.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		q.workers.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		// Grace expired: cut running jobs. They wrote no terminal record,
		// so replay requeues them — the same guarantee a crash gets.
		q.baseStop()
		<-finished
		err = ctx.Err()
	}
	q.baseStop()
	q.mu.Lock()
	werr := q.wal.Close()
	q.mu.Unlock()
	if err == nil {
		err = werr
	}
	return err
}
