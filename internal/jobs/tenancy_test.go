package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTenantBudgetPartition(t *testing.T) {
	h := newHarness(t, Options{Workers: -1, MemBudgetBytes: 1000,
		TenantBudgets: map[string]int64{"tiny": 100}})

	// The tenant's own carve-out refuses before the global budget would.
	if _, _, err := h.q.SubmitFor("tiny", "a", []byte(`1`), 60, PriorityNormal); err != nil {
		t.Fatal(err)
	}
	_, _, err := h.q.SubmitFor("tiny", "b", []byte(`2`), 60, PriorityNormal)
	var over *ErrOverBudget
	if !errors.As(err, &over) {
		t.Fatalf("over-budget submit err = %v, want ErrOverBudget", err)
	}
	if over.Tenant != "tiny" || over.Budget != 100 || over.InUse != 60 {
		t.Errorf("ErrOverBudget = %+v, want tenant tiny at 60/100", over)
	}
	// Another tenant (and the anonymous default) still has the global
	// room: the partition is per tenant, not shared.
	if _, _, err := h.q.SubmitFor("other", "c", []byte(`3`), 200, PriorityNormal); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.q.Submit("d", []byte(`4`), 200); err != nil {
		t.Fatal(err)
	}
	// The global budget still binds everyone: an unbudgeted tenant
	// cannot exceed it.
	_, _, err = h.q.SubmitFor("other", "e", []byte(`5`), 600, PriorityNormal)
	if !errors.As(err, &over) {
		t.Fatalf("global over-budget err = %v", err)
	}
	if over.Tenant != "" || over.Budget != 1000 {
		t.Errorf("global refusal = %+v, want untenanted budget 1000", over)
	}

	tc := h.q.TenantCounters()
	if tc["tiny"].MemInUseBytes != 60 || tc["tiny"].MemBudgetBytes != 100 {
		t.Errorf("tiny counters = %+v", tc["tiny"])
	}
}

func TestTenantBudgetReleasedAndReplayed(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, TenantBudgets: map[string]int64{"t": 100}})
	j, _, err := h.q.SubmitFor("t", "a", []byte(`1`), 80, PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, j.ID, Done)
	if tc := h.q.TenantCounters(); tc["t"].MemInUseBytes != 0 {
		t.Fatalf("finished job still charged: %+v", tc["t"])
	}
	if j, err = h.q.Get(j.ID); err != nil || j.Tenant != "t" {
		t.Fatalf("job lost its tenant: %+v %v", j, err)
	}

	// The tenant attribution survives the WAL: reopen with paused
	// workers and a queued job, and the tenant's budget is re-charged.
	gate := make(chan struct{})
	h.setBlock(gate)
	j2, _, err := h.q.SubmitFor("t", "b", []byte(`2`), 70, PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, j2.ID, Running)
	// Crash (expired-context close journals no terminal state), then
	// reopen with paused workers so the requeued charge is observable.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	h.q.Close(expired)
	h.st.Close()
	h.setBlock(nil)
	close(gate)
	h.open(t, Options{Workers: -1, TenantBudgets: map[string]int64{"t": 100}})
	rj, err := h.q.Get(j2.ID)
	if err != nil || rj.Tenant != "t" || rj.State != Queued {
		t.Fatalf("replayed job = %+v (%v), want tenant t requeued", rj, err)
	}
	if tc := h.q.TenantCounters(); tc["t"].MemInUseBytes != 70 {
		t.Fatalf("replayed tenant charge = %+v, want 70 in use", tc["t"])
	}
	// And the replayed charge still gates new submits.
	_, _, err = h.q.SubmitFor("t", "c", []byte(`3`), 40, PriorityNormal)
	var over *ErrOverBudget
	if !errors.As(err, &over) || over.Tenant != "t" {
		t.Fatalf("submit over a replayed charge = %v", err)
	}
}

func TestNotifyHookSeesTransitions(t *testing.T) {
	var mu sync.Mutex
	var got []string
	h := newHarness(t, Options{Workers: 1, Notify: func(j Job) {
		mu.Lock()
		got = append(got, j.ID+":"+string(j.State))
		mu.Unlock()
	}})
	j, _, err := h.q.Submit("a", []byte(`1`), 10)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, j.ID, Done)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{j.ID + ":queued", j.ID + ":running", j.ID + ":done"}
	if len(got) != len(want) {
		t.Fatalf("notifications = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("notification %d = %q, want %q", i, got[i], want[i])
		}
	}
}
