package jobs

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzWALReplay holds the recovery invariant at the byte level: whatever
// the journal contains — a real WAL, a torn one, binary noise, JSON that
// is not a record — the replayer must fold without panicking and produce
// a self-consistent table (every job has an id; live jobs have no finish
// time; terminal jobs are not requeued by Open's rules).
func FuzzWALReplay(f *testing.F) {
	rec := func(r walRecord) string {
		b, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		return string(b) + "\n"
	}
	id, key := IDFor("sweep", []byte(`{"n":64}`))
	now := time.Unix(1700000000, 0).UTC()
	whole := rec(walRecord{Op: "submit", ID: id, Kind: "sweep", Req: []byte(`{"n":64}`), Cost: 64, Key: key, T: now}) +
		rec(walRecord{Op: "start", ID: id, T: now}) +
		rec(walRecord{Op: "done", ID: id, Key: key, T: now})
	seeds := []string{
		"",
		whole,
		whole[:len(whole)-7], // torn tail
		rec(walRecord{Op: "submit", ID: id, Kind: "sweep", T: now}) + rec(walRecord{Op: "cancel", ID: id, T: now}),
		rec(walRecord{Op: "fail", ID: "jdeadbeefdeadbeef", Error: "dangling", T: now}),
		rec(walRecord{Op: "gc", ID: id, T: now}),
		"{\"op\":\"submit\"}\n",               // record with no id
		"{\"op\":\"explode\",\"id\":\"x\"}\n", // unknown op
		"null\n",
		"[1,2,3]\n",
		"\x00\xff\xfe garbage",
		"{\"op\":\"submit\",\"id\":\"j1\",\"t\":\"not a time\"}\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs := replayWAL(data)
		for id, j := range jobs {
			if j == nil {
				t.Fatalf("nil job under id %q", id)
			}
			if j.ID != id {
				t.Fatalf("job id %q filed under %q", j.ID, id)
			}
			if j.ID == "" {
				t.Fatal("job with empty id survived replay")
			}
			switch j.State {
			case Queued, Running:
				if !j.FinishedAt.IsZero() {
					t.Fatalf("live job %s has a finish time", id)
				}
			case Done, Failed, Canceled:
			default:
				t.Fatalf("job %s has invented state %q", id, j.State)
			}
		}
	})
}
