package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"balarch/internal/store"
)

// BenchmarkJobSubmitThroughput measures the durable ack path: one Submit
// = one canonical hash + one synced WAL append + one admission check.
// Workers are paused so the bench isolates the journaling cost from the
// executor's. Tracked by cmd/benchgate in CI.
func BenchmarkJobSubmitThroughput(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	exec := func(context.Context, string, json.RawMessage) ([]byte, error) {
		return []byte(`{}`), nil
	}
	q, err := Open(filepath.Join(dir, "queue"), st, exec, Options{Workers: -1, MemBudgetBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := []byte(fmt.Sprintf(`{"kernel":"matmul","n":64,"params":[%d]}`, i))
		if _, _, err := q.Submit("sweep", req, 1024); err != nil {
			b.Fatal(err)
		}
	}
}
