package jobs

// The pick scheduler: which queued job the next free worker starts. The
// seed queue popped a FIFO slice, blind to the footprints it had already
// estimated at admission and to who submitted what — one tenant's deep
// backlog monopolized every worker, and a burst of large jobs could hold
// more live bytes than the pool retires in any useful horizon. This file
// replaces that slice with per-tenant priority lanes under a pluggable
// PickPolicy:
//
//   - balanced (the default): weighted round-robin across tenants, and a
//     memory-fit check that packs workers only while the aggregate
//     footprint of running jobs stays balanced against the pool's
//     measured drain rate (the paper's provisioning argument, applied to
//     our own worker pool: admit work against measured bandwidth, not
//     nameplate worker count).
//   - fifo: global submission order, always fits — byte-for-byte the old
//     behavior, kept as an escape hatch (-job-policy fifo).
//
// Priority classes (low|normal|high) order picks within one tenant;
// across tenants fairness wins, so one tenant cannot jump the ring by
// marking everything high. All scheduler state is guarded by Queue.mu.

import "fmt"

// Priority is a job's pick class within its tenant. The zero value is
// the normal class — internally and on the wire/WAL the normal class is
// the empty string, so priority-absent records and responses stay
// byte-identical to the pre-priority format.
type Priority string

// The three priority classes. PriorityNormal is the "" zero value;
// ParsePriority folds the explicit spelling "normal" onto it.
const (
	PriorityHigh   Priority = "high"
	PriorityNormal Priority = ""
	PriorityLow    Priority = "low"
)

// ParsePriority maps a wire or WAL spelling to a Priority: "" and
// "normal" are the normal class, "low" and "high" the explicit ones;
// anything else is an error naming the accepted set.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	}
	return PriorityNormal, fmt.Errorf("jobs: unknown priority %q (one of low, normal, high)", s)
}

// lane maps a priority to its queue index, highest first.
func (p Priority) lane() int {
	switch p {
	case PriorityHigh:
		return 0
	case PriorityLow:
		return 2
	}
	return 1
}

const numLanes = 3

// PoolState is the worker pool's balance picture at pick time, handed to
// the policy's fit check.
type PoolState struct {
	// RunningJobs/RunningBytes are the in-flight count and summed
	// footprint.
	RunningJobs  int64
	RunningBytes int64
	// DrainBPS is the pool's measured retirement rate: the per-worker
	// EWMA of bytes-retired/sec times the worker count. 0 until the
	// first job finishes.
	DrainBPS float64
	// MemBudgetBytes is the admission budget (≤ 0 when disabled).
	MemBudgetBytes int64
}

// PickPolicy decides scheduling: whether tenants round-robin and whether
// a candidate job's footprint fits the pool right now.
type PickPolicy interface {
	// Name labels the policy in /metrics.
	Name() string
	// TenantFair selects weighted round-robin across tenants; false
	// means global submission order.
	TenantFair() bool
	// Fits reports whether starting a job of this cost keeps the pool
	// balanced under st.
	Fits(cost int64, st PoolState) bool
}

// drainHorizonSeconds is how much future drain the balanced policy packs
// against: running footprints may sum to what the pool retires in this
// window (capped by the admission budget). Small enough that a burst of
// large jobs queues instead of all running at once; large enough that a
// healthy pool keeps every worker busy.
const drainHorizonSeconds = 2.0

// balancedPolicy packs workers against the measured drain rate and
// round-robins tenants. The default.
type balancedPolicy struct{}

// BalancedPolicy returns the default pick policy: memory-aware packing
// with weighted round-robin across tenants.
func BalancedPolicy() PickPolicy { return balancedPolicy{} }

func (balancedPolicy) Name() string     { return "balanced" }
func (balancedPolicy) TenantFair() bool { return true }

func (balancedPolicy) Fits(cost int64, st PoolState) bool {
	if st.RunningJobs == 0 {
		// Progress guarantee: an idle pool always starts the next job,
		// however large, so no job can be starved by its own footprint.
		return true
	}
	if st.DrainBPS <= 0 {
		// No drain measured yet (nothing has finished): packing against
		// an unmeasured rate would serialize the pool, so admit.
		return true
	}
	target := st.DrainBPS * drainHorizonSeconds
	if st.MemBudgetBytes > 0 && target > float64(st.MemBudgetBytes) {
		target = float64(st.MemBudgetBytes)
	}
	return float64(st.RunningBytes+cost) <= target
}

// fifoPolicy reproduces the seed queue: strict global submission order,
// every job fits.
type fifoPolicy struct{}

// FIFOPolicy returns the pre-scheduler behavior: global submission
// order, no fit check, no tenant fairness.
func FIFOPolicy() PickPolicy { return fifoPolicy{} }

func (fifoPolicy) Name() string               { return "fifo" }
func (fifoPolicy) TenantFair() bool           { return false }
func (fifoPolicy) Fits(int64, PoolState) bool { return true }

// PolicyByName resolves a policy flag value: "" and "balanced" are the
// default policy, "fifo" the escape hatch.
func PolicyByName(name string) (PickPolicy, error) {
	switch name {
	case "", "balanced":
		return BalancedPolicy(), nil
	case "fifo":
		return FIFOPolicy(), nil
	}
	return nil, fmt.Errorf("jobs: unknown scheduler policy %q (one of balanced, fifo)", name)
}

// schedEntry is one queued job's position: its id and the global
// submission sequence number that defines FIFO order within a lane (and
// globally, for the fifo policy).
type schedEntry struct {
	id  string
	seq uint64
}

// tenantQueue is one tenant's pending work: a deque per priority lane,
// the tenant's round-robin weight and remaining credit, and how many
// consecutive picks have bypassed it while its head was eligible.
type tenantQueue struct {
	name   string
	weight int
	credit int
	lanes  [numLanes][]schedEntry
	waited int64
}

// head returns the tenant's next entry and its lane — the
// highest-priority nonempty lane when fair, the globally oldest entry
// across lanes when not — pruning entries whose job is gone or no longer
// queued (canceled, GC'd, or already picked via a duplicate entry).
func (tq *tenantQueue) head(jobs map[string]*Job, fair bool) (schedEntry, int, bool) {
	best, bestLane, found := schedEntry{}, 0, false
	for lane := 0; lane < numLanes; lane++ {
		q := tq.lanes[lane]
		for len(q) > 0 {
			e := q[0]
			if j, ok := jobs[e.id]; ok && j.State == Queued {
				break
			}
			q = q[1:]
		}
		tq.lanes[lane] = q
		if len(q) == 0 {
			continue
		}
		if fair {
			// Priority orders picks within the tenant: the first
			// nonempty lane, highest first, wins.
			return q[0], lane, true
		}
		if !found || q[0].seq < best.seq {
			best, bestLane, found = q[0], lane, true
		}
	}
	return best, bestLane, found
}

// empty reports whether the tenant has no live pending entries.
func (tq *tenantQueue) empty(jobs map[string]*Job) bool {
	_, _, ok := tq.head(jobs, true)
	return !ok
}

// scheduler holds the pending set and the pick bookkeeping. All access
// is under Queue.mu.
type scheduler struct {
	seq     uint64
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // round-robin order: tenants in first-seen order
	cursor  int
	weights map[string]int

	picks   int64
	skips   int64
	maxWait int64
	served  map[string]int64
}

func newScheduler(weights map[string]int) *scheduler {
	return &scheduler{
		tenants: make(map[string]*tenantQueue),
		weights: weights,
		served:  make(map[string]int64),
	}
}

// tq returns (creating on first use) the tenant's queue. A new tenant
// joins the ring at the end with its configured weight (default 1).
func (s *scheduler) tq(name string) *tenantQueue {
	if tq, ok := s.tenants[name]; ok {
		return tq
	}
	w := s.weights[name]
	if w <= 0 {
		w = 1
	}
	tq := &tenantQueue{name: name, weight: w, credit: w}
	s.tenants[name] = tq
	s.ring = append(s.ring, tq)
	return tq
}

// push appends a job at the back of its tenant's priority lane with a
// fresh sequence number.
func (s *scheduler) push(j *Job) {
	s.seq++
	tq := s.tq(j.Tenant)
	lane := j.Priority.lane()
	tq.lanes[lane] = append(tq.lanes[lane], schedEntry{id: j.ID, seq: s.seq})
}

// pushFront returns a picked-but-not-started job to the head of its lane
// with its original sequence number, so a WAL hiccup cannot silently
// reorder submissions.
func (s *scheduler) pushFront(j *Job, seq uint64) {
	tq := s.tq(j.Tenant)
	lane := j.Priority.lane()
	tq.lanes[lane] = append([]schedEntry{{id: j.ID, seq: seq}}, tq.lanes[lane]...)
}

// pick chooses the next job to start under policy p and pool state st,
// removes its entry, and returns its id and sequence number. ok=false
// means nothing pending fits right now (the caller waits for a signal:
// a new submission, a job finishing, or shutdown).
func (s *scheduler) pick(p PickPolicy, st PoolState, jobs map[string]*Job) (id string, seq uint64, ok bool) {
	if !p.TenantFair() {
		return s.pickFIFO(p, st, jobs)
	}
	n := len(s.ring)
	for i := 0; i < n; i++ {
		tq := s.ring[(s.cursor+i)%n]
		e, lane, ok := tq.head(jobs, true)
		if !ok {
			continue
		}
		if !p.Fits(jobs[e.id].Cost, st) {
			s.skips++
			continue
		}
		tq.lanes[lane] = tq.lanes[lane][1:]
		// Weighted round-robin: the tenant keeps the cursor until its
		// credit is spent, then the next pick starts at its successor.
		tq.credit--
		if tq.credit <= 0 {
			tq.credit = tq.weight
			s.cursor = (s.cursor + i + 1) % n
		} else {
			s.cursor = (s.cursor + i) % n
		}
		s.account(tq, p, st, jobs)
		return e.id, e.seq, true
	}
	return "", 0, false
}

// pickFIFO takes the globally oldest live entry — the seed queue's exact
// order — honoring the policy's fit check (always true for fifoPolicy).
func (s *scheduler) pickFIFO(p PickPolicy, st PoolState, jobs map[string]*Job) (string, uint64, bool) {
	var (
		best     *tenantQueue
		bestE    schedEntry
		bestLane int
		found    bool
	)
	for _, tq := range s.ring {
		if e, lane, ok := tq.head(jobs, false); ok && (!found || e.seq < bestE.seq) {
			best, bestE, bestLane, found = tq, e, lane, true
		}
	}
	if !found {
		return "", 0, false
	}
	if !p.Fits(jobs[bestE.id].Cost, st) {
		s.skips++
		return "", 0, false
	}
	best.lanes[bestLane] = best.lanes[bestLane][1:]
	s.picks++
	s.served[best.name]++
	return bestE.id, bestE.seq, true
}

// account updates the fairness bookkeeping after a fair-mode pick:
// served counters, and the bypassed-while-eligible wait of every other
// tenant (reset when a tenant is served or observed ineligible, so
// waited counts consecutive eligible bypasses — the quantity the
// weighted round-robin bounds at Σweights − weight(t)).
func (s *scheduler) account(served *tenantQueue, p PickPolicy, st PoolState, jobs map[string]*Job) {
	s.picks++
	s.served[served.name]++
	if served.waited > s.maxWait {
		s.maxWait = served.waited
	}
	served.waited = 0
	for _, tq := range s.ring {
		if tq == served {
			continue
		}
		if e, _, ok := tq.head(jobs, true); ok && p.Fits(jobs[e.id].Cost, st) {
			tq.waited++
			if tq.waited > s.maxWait {
				s.maxWait = tq.waited
			}
		} else {
			tq.waited = 0
		}
	}
}

// SchedCounters is the scheduler's instrumentation snapshot, served
// under the jobs_sched_* keys of /metrics.
type SchedCounters struct {
	// Policy names the active pick policy ("balanced" or "fifo").
	Policy string `json:"policy"`
	// Picks counts jobs handed to workers; Skips counts pick passes
	// that bypassed a pending job because its footprint did not fit the
	// pool's drain-rate target.
	Picks int64 `json:"picks"`
	Skips int64 `json:"skips"`
	// MaxWaitPicks is the worst consecutive-bypass count any tenant
	// with eligible pending work has seen — the fairness bound holds
	// when it stays at or under Σweights − weight(t).
	MaxWaitPicks int64 `json:"max_wait_picks"`
	// DrainBPS is the pool's measured retirement rate (bytes/sec);
	// RunningBytes the in-flight footprint packed against it.
	DrainBPS     float64 `json:"drain_bps"`
	RunningBytes int64   `json:"running_bytes"`
	// SelfState is the analytic core's verdict on the queue itself
	// (AnalyzeHierarchy over the drain/WAL/budget machine description):
	// "idle", "balanced", "memory-bound", or "compute-bound".
	SelfState string `json:"self_state"`
	// ServedByTenant counts picks per tenant name ("" is anonymous).
	ServedByTenant map[string]int64 `json:"served_by_tenant,omitempty"`
}
