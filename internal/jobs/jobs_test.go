package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"balarch/internal/store"
)

// testHarness is one queue over one store over one temp dir, with a
// controllable executor.
type testHarness struct {
	dir   string
	st    *store.Store
	q     *Queue
	execs atomic.Int64 // executor invocations
	fail  atomic.Bool  // executor returns an error

	mu    sync.Mutex
	block chan struct{} // non-nil: executor waits on it (nil = instant)
}

// setBlock installs (or clears) the executor gate.
func (h *testHarness) setBlock(c chan struct{}) {
	h.mu.Lock()
	h.block = c
	h.mu.Unlock()
}

func (h *testHarness) getBlock() chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.block
}

func newHarness(t *testing.T, opts Options) *testHarness {
	t.Helper()
	h := &testHarness{dir: t.TempDir()}
	h.open(t, opts)
	return h
}

// open (re)opens the store and queue on the harness dir.
func (h *testHarness) open(t *testing.T, opts Options) {
	t.Helper()
	st, err := store.Open(filepath.Join(h.dir, "store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exec := func(ctx context.Context, kind string, req json.RawMessage) ([]byte, error) {
		h.execs.Add(1)
		if gate := h.getBlock(); gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if h.fail.Load() {
			return nil, errors.New("executor told to fail")
		}
		return []byte(fmt.Sprintf(`{"kind":%q,"echo":%s}`, kind, req)), nil
	}
	q, err := Open(filepath.Join(h.dir, "queue"), st, exec, opts)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	h.st, h.q = st, q
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		h.q.Close(ctx)
		h.st.Close()
	})
}

// close shuts the harness down cleanly (drain).
func (h *testHarness) close(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.q.Close(ctx); err != nil {
		t.Fatalf("queue close: %v", err)
	}
	if err := h.st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, q *Queue, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := q.Get(id)
		if err == nil && j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (now %+v, err %v)", id, want, j, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitExecutesAndStoresResult(t *testing.T) {
	h := newHarness(t, Options{Workers: 2})
	j, existing, err := h.q.Submit("sweep", []byte(`{"n":64}`), 1024)
	if err != nil || existing {
		t.Fatalf("Submit: %v existing=%v", err, existing)
	}
	if j.ID == "" || j.State != Queued {
		t.Fatalf("submitted job = %+v", j)
	}
	done := waitState(t, h.q, j.ID, Done)
	if done.Cached {
		t.Error("first execution marked cached")
	}
	data, ok, err := h.st.Get(done.Key)
	if err != nil || !ok {
		t.Fatalf("result not in store: %v %v", ok, err)
	}
	if string(data) != `{"kind":"sweep","echo":{"n":64}}` {
		t.Errorf("stored result = %s", data)
	}
	if h.execs.Load() != 1 {
		t.Errorf("executor ran %d times, want 1", h.execs.Load())
	}
	c := h.q.Counters()
	if c.Done != 1 || c.Queued != 0 || c.Running != 0 || c.MemInUseBytes != 0 {
		t.Errorf("counters = %+v", c)
	}
}

// TestIdenticalSubmitDeduplicates pins the no-re-execution acceptance
// criterion in-process: the second identical submit joins the first job,
// and after the first completes a resubmit answers done instantly.
func TestIdenticalSubmitDeduplicates(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	gate := make(chan struct{})
	h.setBlock(gate)
	req := []byte(`{"n":96}`)
	a, existing, err := h.q.Submit("sweep", req, 10)
	if err != nil || existing {
		t.Fatal(err, existing)
	}
	b, existing, err := h.q.Submit("sweep", req, 10)
	if err != nil || !existing || b.ID != a.ID {
		t.Fatalf("identical submit: existing=%v id=%s vs %s err=%v", existing, b.ID, a.ID, err)
	}
	close(gate)
	h.setBlock(nil)
	waitState(t, h.q, a.ID, Done)

	c, _, err := h.q.Submit("sweep", req, 10)
	if err != nil || c.State != Done {
		t.Fatalf("post-completion resubmit = %+v, %v", c, err)
	}
	if h.execs.Load() != 1 {
		t.Errorf("executor ran %d times for 3 identical submits, want 1", h.execs.Load())
	}
}

// TestDedupAcrossReopen is the content-addressed half of the acceptance
// criteria: a fresh queue (fresh WAL) over the same store completes an
// identical request from the store, executor untouched.
func TestDedupAcrossReopen(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	req := []byte(`{"n":128}`)
	j, _, err := h.q.Submit("sweep", req, 10)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, j.ID, Done)
	h.close(t)

	// Wipe the queue dir (simulate a brand-new deployment keeping only
	// the artifact store), reopen.
	if err := os.RemoveAll(filepath.Join(h.dir, "queue")); err != nil {
		t.Fatal(err)
	}
	h.open(t, Options{Workers: 1})
	k, existing, err := h.q.Submit("sweep", req, 10)
	if err != nil {
		t.Fatal(err)
	}
	if existing || k.State != Done || !k.Cached {
		t.Fatalf("resubmit over kept store = %+v existing=%v, want instant cached done", k, existing)
	}
	if h.execs.Load() != 1 {
		t.Errorf("executor ran %d times across reopen, want 1", h.execs.Load())
	}
}

// TestCrashRecoveryRequeuesInFlight is the satellite's core: kill the
// queue mid-job (no drain — the store/WAL files survive, the process
// state does not) and assert replay requeues both the running and the
// queued job, then completes them.
func TestCrashRecoveryRequeuesInFlight(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	h.setBlock(make(chan struct{}))
	running, _, err := h.q.Submit("sweep", []byte(`{"n":1}`), 10)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, running.ID, Running)
	queued, _, err := h.q.Submit("sweep", []byte(`{"n":2}`), 10)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: cut the running job and close the files without journaling
	// any terminal state. Close with an expired context is exactly that.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	h.q.Close(expired)
	h.st.Close()
	storeStatsBefore := func() store.Stats {
		st, err := store.Open(filepath.Join(h.dir, "store"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		return st.Stats()
	}()

	h.setBlock(nil)
	h.open(t, Options{Workers: 1})
	c := h.q.Counters()
	if c.Replayed != 2 {
		t.Errorf("replayed = %d, want 2 (one running + one queued)", c.Replayed)
	}
	waitState(t, h.q, running.ID, Done)
	waitState(t, h.q, queued.ID, Done)

	// The reopened store replayed to the identical index.
	after := h.st.Stats()
	if after.Entries < storeStatsBefore.Entries || after.Bytes < storeStatsBefore.Bytes {
		t.Errorf("store shrank across crash: %+v then %+v", storeStatsBefore, after)
	}
}

// TestTruncatedWALTailRecovers corrupts the journal mid-record: Open must
// keep every whole record, requeue the live job, and not panic.
func TestTruncatedWALTailRecovers(t *testing.T) {
	h := newHarness(t, Options{Workers: -1}) // paused: jobs stay queued
	a, _, err := h.q.Submit("sweep", []byte(`{"n":1}`), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.q.Submit("sweep", []byte(`{"n":2}`), 10); err != nil {
		t.Fatal(err)
	}
	h.close(t)

	walPath := filepath.Join(h.dir, "queue", "jobs.wal")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the second record and append garbage for good measure.
	torn := append(raw[:len(raw)-20], []byte("\x00\xfe{not json")...)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	h.open(t, Options{Workers: -1})
	if _, err := h.q.Get(a.ID); err != nil {
		t.Errorf("first (whole) record lost: %v", err)
	}
	c := h.q.Counters()
	if c.Queued != 1 || c.Replayed != 1 {
		t.Errorf("after torn tail: %+v, want 1 queued/replayed", c)
	}
	// The queue keeps accepting after the clip.
	if _, _, err := h.q.Submit("sweep", []byte(`{"n":3}`), 10); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionControl(t *testing.T) {
	h := newHarness(t, Options{Workers: -1, MemBudgetBytes: 100})
	if _, _, err := h.q.Submit("a", []byte(`1`), 60); err != nil {
		t.Fatal(err)
	}
	_, _, err := h.q.Submit("b", []byte(`2`), 60)
	var over *ErrOverBudget
	if !errors.As(err, &over) {
		t.Fatalf("over-budget submit err = %v, want ErrOverBudget", err)
	}
	if over.RetryAfter < time.Second || over.InUse != 60 || over.Budget != 100 {
		t.Errorf("ErrOverBudget = %+v", over)
	}
	// A job that fits the remainder is admitted.
	if _, _, err := h.q.Submit("c", []byte(`3`), 40); err != nil {
		t.Fatal(err)
	}
	if c := h.q.Counters(); c.MemInUseBytes != 100 {
		t.Errorf("mem in use = %d, want 100", c.MemInUseBytes)
	}
}

// TestBudgetReleasedOnCompletion: a finished job frees its footprint for
// the next admit.
func TestBudgetReleasedOnCompletion(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, MemBudgetBytes: 100})
	j, _, err := h.q.Submit("a", []byte(`1`), 80)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, j.ID, Done)
	if _, _, err := h.q.Submit("b", []byte(`2`), 80); err != nil {
		t.Fatalf("budget not released: %v", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	gate := make(chan struct{})
	h.setBlock(gate)
	defer close(gate)
	running, _, err := h.q.Submit("a", []byte(`1`), 10)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, running.ID, Running)
	queued, _, err := h.q.Submit("b", []byte(`2`), 10)
	if err != nil {
		t.Fatal(err)
	}

	// Queued: canceled synchronously.
	if j, err := h.q.Cancel(queued.ID); err != nil || j.State != Canceled {
		t.Fatalf("cancel queued = %+v, %v", j, err)
	}
	// Running: the executor's context dies and the worker journals it.
	if _, err := h.q.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, h.q, running.ID, Canceled)
	if got.Error != "" {
		t.Errorf("canceled job carries error %q", got.Error)
	}
	if _, err := h.q.Cancel("jdeadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown = %v", err)
	}
	// Cancel of a terminal job is an idempotent no-op.
	if j, err := h.q.Cancel(running.ID); err != nil || j.State != Canceled {
		t.Errorf("re-cancel = %+v, %v", j, err)
	}
	if c := h.q.Counters(); c.Canceled != 2 || c.MemInUseBytes != 0 {
		t.Errorf("counters = %+v", c)
	}
}

// TestResubmitAfterFailure: failed and canceled jobs re-run under the
// same id.
func TestResubmitAfterFailure(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	h.fail.Store(true)
	j, _, err := h.q.Submit("a", []byte(`1`), 10)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, h.q, j.ID, Failed)
	if failed.Error == "" {
		t.Error("failed job has no error message")
	}
	h.fail.Store(false)
	again, existing, err := h.q.Submit("a", []byte(`1`), 10)
	if err != nil || existing || again.ID != j.ID || again.State != Queued {
		t.Fatalf("resubmit after failure = %+v existing=%v err=%v", again, existing, err)
	}
	waitState(t, h.q, j.ID, Done)
	if h.execs.Load() != 2 {
		t.Errorf("executor ran %d times, want 2", h.execs.Load())
	}
}

func TestDeleteAndGC(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, TTL: time.Minute})
	j, _, err := h.q.Submit("a", []byte(`1`), 10)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, j.ID, Done)

	// Live jobs refuse deletion.
	gate := make(chan struct{})
	h.setBlock(gate)
	live, _, err := h.q.Submit("b", []byte(`2`), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.q.Delete(live.ID); !errors.Is(err, ErrNotTerminal) {
		t.Errorf("deleting a live job = %v, want ErrNotTerminal", err)
	}
	close(gate)
	h.setBlock(nil)

	if err := h.q.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := h.q.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted job still present: %v", err)
	}

	// TTL GC: age the clock instead of sleeping.
	waitState(t, h.q, live.ID, Done)
	h.q.mu.Lock()
	h.q.clock = func() time.Time { return time.Now().Add(2 * time.Minute) }
	h.q.mu.Unlock()
	if n := h.q.GC(); n != 1 {
		t.Errorf("GC removed %d jobs, want 1", n)
	}
	if _, err := h.q.Get(live.ID); !errors.Is(err, ErrNotFound) {
		t.Error("GC'd job still present")
	}
}

// TestGCSurvivesReopen: gc records persist, so forgotten jobs stay
// forgotten after a restart.
func TestGCSurvivesReopen(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	j, _, err := h.q.Submit("a", []byte(`1`), 10)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, j.ID, Done)
	if err := h.q.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	h.close(t)
	h.open(t, Options{Workers: -1})
	if _, err := h.q.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("gc'd job resurrected by replay: %v", err)
	}
}

// TestCompaction: replay rewrites the WAL to one submit (+ terminal) per
// surviving job, so the journal shrinks instead of growing forever.
func TestCompaction(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	var last Job
	for i := 0; i < 20; i++ {
		j, _, err := h.q.Submit("a", []byte(fmt.Sprintf(`{"i":%d}`, i)), 10)
		if err != nil {
			t.Fatal(err)
		}
		last = j
	}
	waitState(t, h.q, last.ID, Done)
	// Let every job land (they share one worker and finish in order...
	// but not guaranteed; wait on all).
	for _, j := range h.q.List() {
		waitState(t, h.q, j.ID, Done)
	}
	h.close(t)
	walPath := filepath.Join(h.dir, "queue", "jobs.wal")
	grown, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	h.open(t, Options{Workers: -1})
	h.close(t)
	compacted, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// 20 jobs × (submit+start+done) compacts to 20 × (submit+done).
	if compacted.Size() >= grown.Size() {
		t.Errorf("WAL did not shrink: %d → %d bytes", grown.Size(), compacted.Size())
	}
	h.open(t, Options{Workers: -1})
	if c := h.q.Counters(); c.Done != 20 {
		t.Errorf("after compaction replay: %+v, want 20 done", c)
	}
}

func TestListOrder(t *testing.T) {
	h := newHarness(t, Options{Workers: -1})
	base := time.Unix(1000, 0)
	i := 0
	h.q.mu.Lock()
	h.q.clock = func() time.Time { i++; return base.Add(time.Duration(i) * time.Second) }
	h.q.mu.Unlock()
	for k := 0; k < 3; k++ {
		if _, _, err := h.q.Submit("a", []byte(fmt.Sprintf(`%d`, k)), 1); err != nil {
			t.Fatal(err)
		}
	}
	list := h.q.List()
	if len(list) != 3 {
		t.Fatalf("list has %d jobs", len(list))
	}
	for k := 1; k < len(list); k++ {
		if list[k].SubmittedAt.After(list[k-1].SubmittedAt) {
			t.Errorf("list not newest-first at %d", k)
		}
	}
}

func TestClosedQueueRejects(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	h.close(t)
	if _, _, err := h.q.Submit("a", []byte(`1`), 1); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v", err)
	}
	if _, err := h.q.Cancel("j0000000000000000"); !errors.Is(err, ErrClosed) {
		t.Errorf("cancel after close = %v", err)
	}
}

// TestDrainFinishesRunningJobs: Close with budget lets the in-flight job
// finish (done, journaled) while the queued one stays queued for the next
// Open.
func TestDrainFinishesRunningJobs(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	gate := make(chan struct{})
	h.setBlock(gate)
	running, _, err := h.q.Submit("a", []byte(`1`), 10)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.q, running.ID, Running)
	queued, _, err := h.q.Submit("b", []byte(`2`), 10)
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- h.q.Close(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Close flip the flag
	close(gate)
	h.setBlock(nil)
	if err := <-closed; err != nil {
		t.Fatalf("drain close: %v", err)
	}
	h.st.Close()

	h.open(t, Options{Workers: -1})
	if j, err := h.q.Get(running.ID); err != nil || j.State != Done {
		t.Errorf("drained job = %+v, %v; want done", j, err)
	}
	if j, err := h.q.Get(queued.ID); err != nil || j.State != Queued {
		t.Errorf("journaled job = %+v, %v; want queued", j, err)
	}
}

func TestIDForDeterministic(t *testing.T) {
	id1, key1 := IDFor("sweep", []byte(`{"n":64}`))
	id2, key2 := IDFor("sweep", []byte(`{"n":64}`))
	if id1 != id2 || key1 != key2 {
		t.Error("IDFor not deterministic")
	}
	id3, _ := IDFor("batch", []byte(`{"n":64}`))
	if id3 == id1 {
		t.Error("kind does not separate ids")
	}
	if len(id1) != 17 || id1[0] != 'j' || len(key1) != 64 {
		t.Errorf("id/key shape: %q / %q", id1, key1)
	}
}
