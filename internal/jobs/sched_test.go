package jobs

// Tests for the pick scheduler (sched.go) and the queue behaviors it
// changed: priority lanes, the shared WAL-failure backoff, the
// drain-rate Retry-After, and the fairness/budget invariants the
// balanced policy promises (pinned as testing/quick properties).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"balarch/internal/store"
)

// openSchedQueue opens a queue whose executor records the order requests
// reach it. A non-nil gate makes every execution block on one receive
// after recording, so tests can pace the worker pool by hand.
func openSchedQueue(t *testing.T, opts Options, gate chan struct{}) (*Queue, func() []string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	exec := func(ctx context.Context, kind string, req json.RawMessage) ([]byte, error) {
		mu.Lock()
		order = append(order, string(req))
		mu.Unlock()
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return []byte(`{"ok":true}`), nil
	}
	q, err := Open(filepath.Join(dir, "queue"), st, exec, opts)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		q.Close(ctx)
		st.Close()
	})
	return q, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), order...)
	}
}

// TestPriorityOrdersPicksWithinTenant pins the lane semantics end to
// end: with one worker pinned on a blocker, jobs submitted low, normal,
// high execute high → normal → low, not submission order.
func TestPriorityOrdersPicksWithinTenant(t *testing.T) {
	gate := make(chan struct{})
	q, order := openSchedQueue(t, Options{Workers: 1}, gate)
	blocker, _, err := q.SubmitFor("", "sweep", []byte(`"blocker"`), 10, PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, blocker.ID, Running)
	var ids []string
	for _, s := range []struct {
		req string
		p   Priority
	}{{`"low"`, PriorityLow}, {`"normal"`, PriorityNormal}, {`"high"`, PriorityHigh}} {
		j, _, err := q.SubmitFor("", "sweep", []byte(s.req), 10, s.p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for i := 0; i < 4; i++ {
		gate <- struct{}{} // release the executions one at a time
	}
	for _, id := range ids {
		waitState(t, q, id, Done)
	}
	got := order()
	want := []string{`"blocker"`, `"high"`, `"normal"`, `"low"`}
	if len(got) != len(want) {
		t.Fatalf("executed %d jobs, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
}

// TestWALStartFailureBacksOffAndPreservesOrder injects one start-append
// failure and pins both fixes at once: the picked job goes back to the
// front (so the later submission cannot overtake it), and the workers
// back off for walRetryMin instead of hot-spinning on the dead disk —
// exactly one retry attempt, no earlier than the backoff window.
func TestWALStartFailureBacksOffAndPreservesOrder(t *testing.T) {
	q, order := openSchedQueue(t, Options{Workers: 1}, nil)
	var hmu sync.Mutex
	var startAt []time.Time
	failed := false
	q.mu.Lock()
	q.walAppendHook = func(op string) error {
		if op != "start" {
			return nil
		}
		hmu.Lock()
		defer hmu.Unlock()
		startAt = append(startAt, time.Now())
		if !failed {
			failed = true
			return errors.New("injected: no space left on device")
		}
		return nil
	}
	q.mu.Unlock()

	a, _, err := q.SubmitFor("", "sweep", []byte(`"first"`), 10, PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := q.SubmitFor("", "sweep", []byte(`"second"`), 10, PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, a.ID, Done)
	waitState(t, q, b.ID, Done)

	if got := order(); len(got) != 2 || got[0] != `"first"` || got[1] != `"second"` {
		t.Errorf("execution order after WAL failure = %v, want [\"first\" \"second\"]", got)
	}
	hmu.Lock()
	defer hmu.Unlock()
	if len(startAt) != 3 {
		// 3 = the failed attempt, its retry, and the second job. More
		// means the worker spun on the failing append.
		t.Fatalf("start append attempted %d times, want 3", len(startAt))
	}
	if gap := startAt[1].Sub(startAt[0]); gap < 80*time.Millisecond {
		t.Errorf("retry came %v after the failure, want ≥ ~%v (shared backoff)", gap, walRetryMin)
	}
}

// TestPausedQueueRetryAfterIsCapped pins the paused-queue hint: a queue
// with no executors drains nothing, so the only honest Retry-After is
// the cap — not the old 1-second advice that told clients to hammer a
// queue that cannot make progress.
func TestPausedQueueRetryAfterIsCapped(t *testing.T) {
	q, _ := openSchedQueue(t, Options{Workers: -1, MemBudgetBytes: 1000}, nil)
	if _, _, err := q.SubmitFor("", "sweep", []byte(`"fill"`), 900, PriorityNormal); err != nil {
		t.Fatal(err)
	}
	_, _, err := q.SubmitFor("", "sweep", []byte(`"spill"`), 900, PriorityNormal)
	var over *ErrOverBudget
	if !errors.As(err, &over) {
		t.Fatalf("over-budget submit returned %v, want ErrOverBudget", err)
	}
	if over.RetryAfter != maxRetryAfter {
		t.Errorf("paused-queue RetryAfter = %v, want the cap %v", over.RetryAfter, maxRetryAfter)
	}
}

// TestRetryAfterTracksDrainRate pins the corrected hint: once the pool
// has a measured drain rate, Retry-After is backlog/drain (clamped), not
// one second per running job.
func TestRetryAfterTracksDrainRate(t *testing.T) {
	gate := make(chan struct{})
	q, _ := openSchedQueue(t, Options{Workers: 2, MemBudgetBytes: 1000}, gate)
	defer close(gate)
	j, _, err := q.SubmitFor("", "sweep", []byte(`"big"`), 800, PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, j.ID, Running)
	q.mu.Lock()
	q.drainPerWorker = 100 // × 2 workers = 200 B/s pool drain
	q.drainSamples = 1
	q.mu.Unlock()

	_, _, err = q.SubmitFor("", "sweep", []byte(`"over"`), 400, PriorityNormal)
	var over *ErrOverBudget
	if !errors.As(err, &over) {
		t.Fatalf("over-budget submit returned %v, want ErrOverBudget", err)
	}
	if want := 6 * time.Second; over.RetryAfter != want { // (800+400)/200
		t.Errorf("RetryAfter = %v, want backlog/drain = %v", over.RetryAfter, want)
	}

	// A trickling pool would advise hours; the hint clamps to the cap.
	q.mu.Lock()
	q.drainPerWorker = 1
	q.mu.Unlock()
	_, _, err = q.SubmitFor("", "sweep", []byte(`"way-over"`), 400, PriorityNormal)
	if !errors.As(err, &over) {
		t.Fatalf("over-budget submit returned %v, want ErrOverBudget", err)
	}
	if over.RetryAfter != maxRetryAfter {
		t.Errorf("slow-drain RetryAfter = %v, want the cap %v", over.RetryAfter, maxRetryAfter)
	}
}

// TestQuickPickNeverExceedsDrainTarget is the balanced policy's memory
// property: over arbitrary submission sequences, whenever a pick lands
// on a non-idle pool the running footprint stays under the drain-rate
// target (min(DrainBPS × horizon, budget)) — and the pool never
// livelocks (an idle pool always picks).
func TestQuickPickNeverExceedsDrainTarget(t *testing.T) {
	prop := func(costs []uint16, tenantSel, prioSel []uint8) bool {
		n := min(len(costs), len(tenantSel), len(prioSel))
		s := newScheduler(nil)
		jobs := make(map[string]*Job)
		prios := []Priority{PriorityHigh, PriorityNormal, PriorityLow}
		for i := 0; i < n; i++ {
			j := &Job{
				ID:       fmt.Sprintf("j%d", i),
				Tenant:   fmt.Sprintf("t%d", tenantSel[i]%3),
				Priority: prios[prioSel[i]%3],
				Cost:     int64(costs[i]),
				State:    Queued,
			}
			jobs[j.ID] = j
			s.push(j)
		}
		p := BalancedPolicy()
		const drain, budget = 1000.0, int64(4096)
		target := int64(drain * drainHorizonSeconds)
		if budget < target {
			target = budget
		}
		var runningBytes int64
		var running []string
		queued := n
		for queued > 0 || len(running) > 0 {
			st := PoolState{
				RunningJobs:    int64(len(running)),
				RunningBytes:   runningBytes,
				DrainBPS:       drain,
				MemBudgetBytes: budget,
			}
			if id, _, ok := s.pick(p, st, jobs); ok {
				j := jobs[id]
				j.State = Running
				running = append(running, id)
				runningBytes += j.Cost
				queued--
				if st.RunningJobs > 0 && runningBytes > target {
					return false // packed past the drain target
				}
				continue
			}
			if len(running) == 0 {
				return false // idle pool refused to pick: livelock
			}
			id := running[0] // retire the oldest running job
			running = running[1:]
			jobs[id].State = Done
			runningBytes -= jobs[id].Cost
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickNoTenantStarvation is the fairness property: with equal
// weights, draining any submission sequence never bypasses a tenant
// with eligible pending work more than (tenants − 1) consecutive picks
// — one round of the ring.
func TestQuickNoTenantStarvation(t *testing.T) {
	prop := func(tenantSel, prioSel []uint8) bool {
		n := min(len(tenantSel), len(prioSel))
		if n == 0 {
			return true
		}
		s := newScheduler(nil)
		jobs := make(map[string]*Job)
		prios := []Priority{PriorityHigh, PriorityNormal, PriorityLow}
		for i := 0; i < n; i++ {
			j := &Job{
				ID:       fmt.Sprintf("j%d", i),
				Tenant:   fmt.Sprintf("t%d", tenantSel[i]%5),
				Priority: prios[prioSel[i]%3],
				Cost:     1,
				State:    Queued,
			}
			jobs[j.ID] = j
			s.push(j)
		}
		p := BalancedPolicy()
		for {
			id, _, ok := s.pick(p, PoolState{}, jobs) // idle pool: all fit
			if !ok {
				break
			}
			jobs[id].State = Done
		}
		for _, j := range jobs {
			if j.State != Done {
				return false // something never drained
			}
		}
		return s.maxWait <= int64(len(s.ring)-1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestWeightedRoundRobinBound pins the weighted schedule and its bound
// exactly: weights a:2, b:1, c:1 serve a a b c …, and the worst
// consecutive bypass of an eligible tenant is Σweights − weight(t) = 3.
func TestWeightedRoundRobinBound(t *testing.T) {
	s := newScheduler(map[string]int{"a": 2})
	jobs := make(map[string]*Job)
	push := func(tenant string, i int) {
		j := &Job{ID: fmt.Sprintf("%s%d", tenant, i), Tenant: tenant, Cost: 1, State: Queued}
		jobs[j.ID] = j
		s.push(j)
	}
	for i := 0; i < 3; i++ { // interleave so the ring order is a, b, c
		push("a", 2*i)
		push("a", 2*i+1)
		push("b", i)
		push("c", i)
	}
	var got []string
	for {
		id, _, ok := s.pick(BalancedPolicy(), PoolState{}, jobs)
		if !ok {
			break
		}
		jobs[id].State = Done
		got = append(got, jobs[id].Tenant)
	}
	want := "a a b c a a b c a a b c"
	if g := strings.Join(got, " "); g != want {
		t.Errorf("pick sequence = %q, want %q", g, want)
	}
	if s.maxWait != 3 {
		t.Errorf("maxWait = %d, want Σweights − weight(c) = 3", s.maxWait)
	}
}

// TestReplayForgivingPriority pins the WAL compatibility contract: a
// priority-absent record folds to normal (old journals replay
// unchanged), an unknown spelling folds to normal instead of tearing
// the tail, and an explicit class survives.
func TestReplayForgivingPriority(t *testing.T) {
	wal := `{"op":"submit","id":"jaaa","kind":"sweep","req":{},"cost":5,"key":"k1","t":"2026-01-01T00:00:00Z"}
{"op":"submit","id":"jbbb","kind":"sweep","req":{},"cost":5,"key":"k2","prio":"high","t":"2026-01-01T00:00:01Z"}
{"op":"submit","id":"jccc","kind":"sweep","req":{},"cost":5,"key":"k3","prio":"urgent","t":"2026-01-01T00:00:02Z"}
`
	jobs := replayWAL([]byte(wal))
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	for id, want := range map[string]Priority{
		"jaaa": PriorityNormal, "jbbb": PriorityHigh, "jccc": PriorityNormal,
	} {
		if jobs[id].Priority != want {
			t.Errorf("job %s replayed with priority %q, want %q", id, jobs[id].Priority, want)
		}
	}
}

// TestWALPriorityRoundTripAcrossReopen pins both halves of the journal
// contract live: explicit priorities survive Close/Open (including the
// compaction rewrite), and a normal-priority record carries no prio key
// at all — byte-identical to the pre-priority format.
func TestWALPriorityRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	exec := func(context.Context, string, json.RawMessage) ([]byte, error) {
		return []byte(`{}`), nil
	}
	open := func() (*store.Store, *Queue) {
		st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		q, err := Open(filepath.Join(dir, "queue"), st, exec, Options{Workers: -1, MemBudgetBytes: -1})
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		return st, q
	}
	st, q := open()
	hi, _, err := q.SubmitFor("", "sweep", []byte(`"hi"`), 10, PriorityHigh)
	if err != nil {
		t.Fatal(err)
	}
	lo, _, err := q.SubmitFor("", "sweep", []byte(`"lo"`), 10, PriorityLow)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := q.Submit("sweep", []byte(`"plain"`), 10)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "queue", "jobs.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		switch {
		case strings.Contains(line, `"hi"`) && !strings.Contains(line, `"prio":"high"`):
			t.Errorf("high-priority record lost its class: %s", line)
		case strings.Contains(line, `"plain"`) && strings.Contains(line, `"prio"`):
			t.Errorf("priority-absent record grew a prio key (wire format drift): %s", line)
		}
	}

	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st, q = open()
	defer func() {
		q.Close(context.Background())
		st.Close()
	}()
	for id, want := range map[string]Priority{
		hi.ID: PriorityHigh, lo.ID: PriorityLow, plain.ID: PriorityNormal,
	} {
		j, err := q.Get(id)
		if err != nil {
			t.Fatalf("job %s lost across reopen: %v", id, err)
		}
		if j.State != Queued || j.Priority != want {
			t.Errorf("job %s replayed as (%s, %q), want (queued, %q)", id, j.State, j.Priority, want)
		}
	}
	// The compacted journal must still carry the class.
	data, err = os.ReadFile(filepath.Join(dir, "queue", "jobs.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"prio":"high"`) {
		t.Error("compaction dropped the priority class")
	}
}

// BenchmarkSchedulerPick measures the steady-state pick: 8 tenants with
// deep lanes, balanced policy, one pick + front-requeue per iteration
// (so the population is constant). Tracked by cmd/benchgate in CI.
func BenchmarkSchedulerPick(b *testing.B) {
	const tenants, perTenant = 8, 64
	s := newScheduler(nil)
	jobs := make(map[string]*Job)
	prios := []Priority{PriorityHigh, PriorityNormal, PriorityLow}
	for i := 0; i < tenants*perTenant; i++ {
		j := &Job{
			ID:       fmt.Sprintf("j%d", i),
			Tenant:   fmt.Sprintf("t%d", i%tenants),
			Priority: prios[i%3],
			Cost:     1024,
			State:    Queued,
		}
		jobs[j.ID] = j
		s.push(j)
	}
	p := BalancedPolicy()
	st := PoolState{RunningJobs: 1, DrainBPS: 1 << 20, MemBudgetBytes: 256 << 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, seq, ok := s.pick(p, st, jobs)
		if !ok {
			b.Fatal("scheduler ran dry")
		}
		s.pushFront(jobs[id], seq)
	}
}
