package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// The WAL is JSON-lines, one record per line, appended and fsynced at
// every state transition. Record shapes (fields omitted when empty):
//
//	{"op":"submit","id":"j…","kind":"sweep","req":{…},"cost":65536,"key":"<sha256>","t":"…"}
//	{"op":"start","id":"j…","t":"…"}
//	{"op":"done","id":"j…","key":"<sha256>","cached":true,"t":"…"}
//	{"op":"fail","id":"j…","error":"…","t":"…"}
//	{"op":"cancel","id":"j…","t":"…"}
//	{"op":"gc","id":"j…","t":"…"}
//
// Replay folds the records forward: submit creates (or revives) a job,
// start marks it running, done/fail/cancel terminate it, gc forgets it.
// After the fold, every job still queued or running is requeued — the
// crash-recovery guarantee — and the WAL is compacted to one submit
// (plus one terminal record) per surviving job, rewritten atomically via
// temp file + rename, so the journal cannot grow without bound across
// restarts. A torn or garbage tail ends the fold; the compaction rewrite
// then drops it.
type walRecord struct {
	Op   string          `json:"op"`
	ID   string          `json:"id"`
	Kind string          `json:"kind,omitempty"`
	Req  json.RawMessage `json:"req,omitempty"`
	Cost int64           `json:"cost,omitempty"`
	Key  string          `json:"key,omitempty"`
	// Tenant stamps submit records for per-tenant admission accounting.
	// omitempty keeps old journals replayable: a record without it folds
	// to the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// Prio stamps submit records with the job's priority class. The
	// normal class is the empty string and is omitted, so pre-priority
	// journals replay unchanged and priority-absent journals stay
	// byte-identical to the old format; an unknown value folds to
	// normal rather than tearing the tail (forgiving replay).
	Prio   string    `json:"prio,omitempty"`
	Error  string    `json:"error,omitempty"`
	Cached bool      `json:"cached,omitempty"`
	T      time.Time `json:"t"`
}

// appendWAL journals one record and syncs it (callers hold q.mu). The
// sync is what makes Submit's ack a durability promise. A failed write
// (ENOSPC mid-record, say) is clipped back to the pre-append offset —
// tracked in q.walSize, so the hot ack path pays no stat syscall — so a
// partial record cannot sit mid-file and merge with a later append into
// garbage that replay would treat as the torn tail, silently discarding
// every acked record after it.
func (q *Queue) appendWAL(rec walRecord) error {
	if q.opts.Observe != nil {
		// One "wal_append" sample per journaled record, sync included —
		// the disk's contribution to every ack and state transition.
		t0 := time.Now()
		defer func() { q.opts.Observe("wal_append", time.Since(t0)) }()
	}
	if q.walAppendHook != nil {
		if err := q.walAppendHook(rec.Op); err != nil {
			return err
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding WAL record: %w", err)
	}
	line := append(data, '\n')
	if _, err := q.wal.Write(line); err != nil {
		_ = q.wal.Truncate(q.walSize) // best-effort clip of the partial record
		return fmt.Errorf("jobs: appending WAL record: %w", err)
	}
	q.walSize += int64(len(line))
	q.walBytes += int64(len(line)) // journal fill rate, for self-analysis
	if err := q.wal.Sync(); err != nil {
		// The record is whole in the page cache; leave it — replay
		// parses it fine whether or not it reached the platter.
		return fmt.Errorf("jobs: syncing WAL: %w", err)
	}
	return nil
}

// validRecordOp guards the fold against JSON that parses but is not a
// record we wrote.
func validRecordOp(op string) bool {
	switch op {
	case "submit", "start", "done", "fail", "cancel", "gc":
		return true
	}
	return false
}

// replayWAL folds a journal into the job table it describes. It never
// panics whatever the bytes: a line that is not valid JSON, parses to a
// non-record, or references structure that is not there simply ends the
// fold (torn-tail semantics) or is skipped (dangling reference). The
// returned jobs have their live states as journaled — requeueing is the
// caller's decision.
func replayWAL(data []byte) map[string]*Job {
	jobs := make(map[string]*Job)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil || !validRecordOp(rec.Op) || rec.ID == "" {
			// Torn or foreign tail: everything before it already folded.
			return jobs
		}
		switch rec.Op {
		case "submit":
			// An unknown priority spelling folds to normal: a journal
			// from a newer (or corrupted) writer must replay, not tear.
			prio, perr := ParsePriority(rec.Prio)
			if perr != nil {
				prio = PriorityNormal
			}
			if j, ok := jobs[rec.ID]; ok {
				// A resubmit record revives a dead job in place.
				j.State = Queued
				j.Cost = rec.Cost
				j.Tenant = rec.Tenant
				j.Priority = prio
				j.Error = ""
				j.Cached = false
				j.SubmittedAt = rec.T
				j.StartedAt = time.Time{}
				j.FinishedAt = time.Time{}
				continue
			}
			jobs[rec.ID] = &Job{
				ID: rec.ID, Kind: rec.Kind,
				Request: append(json.RawMessage(nil), rec.Req...),
				Key:     rec.Key, Cost: rec.Cost, Tenant: rec.Tenant,
				Priority: prio, State: Queued, SubmittedAt: rec.T,
			}
		case "start":
			if j, ok := jobs[rec.ID]; ok && j.State == Queued {
				j.State = Running
				j.StartedAt = rec.T
			}
		case "done":
			if j, ok := jobs[rec.ID]; ok && !j.State.Terminal() {
				j.State = Done
				j.Cached = rec.Cached
				j.FinishedAt = rec.T
			}
		case "fail":
			if j, ok := jobs[rec.ID]; ok && !j.State.Terminal() {
				j.State = Failed
				j.Error = rec.Error
				j.FinishedAt = rec.T
			}
		case "cancel":
			if j, ok := jobs[rec.ID]; ok && !j.State.Terminal() {
				j.State = Canceled
				j.FinishedAt = rec.T
			}
		case "gc":
			delete(jobs, rec.ID)
		}
	}
	return jobs
}

// replayAndCompact rebuilds the queue's state from the WAL, requeues live
// jobs, and rewrites the journal compacted. Called once from Open, before
// the append handle opens and the workers start.
func (q *Queue) replayAndCompact() error {
	data, err := os.ReadFile(q.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobs: reading WAL: %w", err)
	}
	q.jobs = replayWAL(data)

	// Requeue the jobs the last process never finished — the queued ones
	// it acked and the running ones it died under.
	ids := make([]string, 0, len(q.jobs))
	for id := range q.jobs {
		ids = append(ids, id)
	}
	// Requeue in submission order so replay preserves submission
	// fairness: scheduler sequence numbers are assigned in this order.
	sortBySubmit(ids, q.jobs)
	for _, id := range ids {
		j := q.jobs[id]
		switch j.State {
		case Queued, Running:
			j.State = Queued
			j.StartedAt = time.Time{}
			q.memInUse += j.Cost
			q.memByTenant[j.Tenant] += j.Cost
			q.sched.push(j)
			q.replayed++
		}
	}
	return q.compact(ids)
}

// sortBySubmit orders ids by their job's submission time (ties by id).
func sortBySubmit(ids []string, jobs map[string]*Job) {
	sort.Slice(ids, func(i, k int) bool {
		a, b := jobs[ids[i]], jobs[ids[k]]
		if !a.SubmittedAt.Equal(b.SubmittedAt) {
			return a.SubmittedAt.Before(b.SubmittedAt)
		}
		return a.ID < b.ID
	})
}

// compact rewrites the WAL to the minimal journal describing the current
// table: one submit per job plus its terminal record. Atomic via temp
// file + rename; a crash during compaction leaves the old journal intact.
func (q *Queue) compact(ids []string) error {
	tmp, err := os.CreateTemp(q.dir, "wal-*")
	if err != nil {
		return fmt.Errorf("jobs: compacting WAL: %w", err)
	}
	w := bufio.NewWriter(tmp)
	writeRec := func(rec walRecord) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	}
	for _, id := range ids {
		j := q.jobs[id]
		err := writeRec(walRecord{Op: "submit", ID: j.ID, Kind: j.Kind,
			Req: j.Request, Cost: j.Cost, Key: j.Key, Tenant: j.Tenant,
			Prio: string(j.Priority), T: j.SubmittedAt})
		if err == nil {
			switch j.State {
			case Done:
				err = writeRec(walRecord{Op: "done", ID: j.ID, Key: j.Key, Cached: j.Cached, T: j.FinishedAt})
			case Failed:
				err = writeRec(walRecord{Op: "fail", ID: j.ID, Error: j.Error, T: j.FinishedAt})
			case Canceled:
				err = writeRec(walRecord{Op: "cancel", ID: j.ID, T: j.FinishedAt})
			}
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("jobs: compacting WAL: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting WAL: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting WAL: %w", err)
	}
	if err := os.Rename(tmp.Name(), q.walPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting WAL: %w", err)
	}
	return nil
}
