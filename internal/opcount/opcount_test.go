package opcount

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var c Counter
	if c.Ccomp() != 0 || c.Cio() != 0 {
		t.Fatalf("zero counter not empty: %s", c.String())
	}
}

func TestBasicAccumulation(t *testing.T) {
	var c Counter
	c.Ops(10)
	c.Read(3)
	c.Write(4)
	c.Ops(5)
	if got := c.Ccomp(); got != 15 {
		t.Errorf("Ccomp = %d, want 15", got)
	}
	if got := c.Cio(); got != 7 {
		t.Errorf("Cio = %d, want 7", got)
	}
	if got := c.Reads(); got != 3 {
		t.Errorf("Reads = %d, want 3", got)
	}
	if got := c.Writes(); got != 4 {
		t.Errorf("Writes = %d, want 4", got)
	}
}

func TestRatio(t *testing.T) {
	var c Counter
	c.Ops(100)
	c.Read(10)
	c.Write(10)
	if got := c.Ratio(); got != 5 {
		t.Errorf("Ratio = %v, want 5", got)
	}
}

func TestRatioPanicsOnZeroIO(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ratio with zero I/O did not panic")
		}
	}()
	var c Counter
	c.Ops(1)
	c.Ratio()
}

func TestNegativePanics(t *testing.T) {
	cases := []func(*Counter){
		func(c *Counter) { c.Ops(-1) },
		func(c *Counter) { c.Read(-1) },
		func(c *Counter) { c.Write(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: negative count did not panic", i)
				}
			}()
			var c Counter
			fn(&c)
		}()
	}
}

func TestUint64Variants(t *testing.T) {
	var c Counter
	big := uint64(1) << 40
	c.Ops64(big)
	c.Read64(big)
	c.Write64(big)
	if c.Ccomp() != big || c.Reads() != big || c.Writes() != big {
		t.Fatalf("uint64 variants lost precision: %s", c.String())
	}
}

func TestAddMerges(t *testing.T) {
	var a, b Counter
	a.Ops(1)
	a.Read(2)
	b.Ops(10)
	b.Write(20)
	a.Add(&b)
	if a.Ccomp() != 11 || a.Reads() != 2 || a.Writes() != 20 {
		t.Fatalf("Add result wrong: %s", a.String())
	}
	// b must be unchanged.
	if b.Ccomp() != 10 || b.Writes() != 20 {
		t.Fatalf("Add mutated argument: %s", b.String())
	}
}

func TestReset(t *testing.T) {
	var c Counter
	c.Ops(1)
	c.Read(1)
	c.Write(1)
	c.Reset()
	if c.Ccomp() != 0 || c.Cio() != 0 {
		t.Fatalf("Reset left residue: %s", c.String())
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counter
	c.Ops(5)
	c.Read(2)
	before := c.Snapshot()
	c.Ops(7)
	c.Write(3)
	delta := c.Snapshot().Sub(before)
	if delta.Ops != 7 || delta.Reads != 0 || delta.Writes != 3 {
		t.Fatalf("delta = %+v, want ops=7 writes=3", delta)
	}
}

func TestSubPanicsOnNonPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub with non-prefix snapshot did not panic")
		}
	}()
	Totals{Ops: 1}.Sub(Totals{Ops: 2})
}

func TestTotalsRatioZeroIO(t *testing.T) {
	tot := Totals{Ops: 10}
	if got := tot.Ratio(); got != 0 {
		t.Errorf("Totals.Ratio with zero IO = %v, want 0", got)
	}
	if math.IsInf(tot.Ratio(), 1) {
		t.Error("Totals.Ratio must not return +Inf")
	}
}

// Property: Add is commutative and associative on the observable totals.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(aOps, aR, aW, bOps, bR, bW uint16) bool {
		var a1, b1, a2, b2 Counter
		for _, p := range []struct {
			c          *Counter
			ops, r, wr uint16
		}{{&a1, aOps, aR, aW}, {&a2, aOps, aR, aW}, {&b1, bOps, bR, bW}, {&b2, bOps, bR, bW}} {
			p.c.Ops(int(p.ops))
			p.c.Read(int(p.r))
			p.c.Write(int(p.wr))
		}
		a1.Add(&b1) // a + b
		b2.Add(&a2) // b + a
		return a1.Snapshot() == b2.Snapshot()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a snapshot taken later is always component-wise >= an earlier one
// and Sub recovers the intervening activity exactly.
func TestSnapshotMonotoneProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		var c Counter
		prev := c.Snapshot()
		for _, s := range steps {
			c.Ops(int(s % 7))
			c.Read(int(s % 5))
			c.Write(int(s % 3))
			cur := c.Snapshot()
			d := cur.Sub(prev)
			if d.Ops != uint64(s%7) || d.Reads != uint64(s%5) || d.Writes != uint64(s%3) {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
