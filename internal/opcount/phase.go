package opcount

import "fmt"

// Phase labels one stage of a decomposed computation, e.g. one pass of the
// blocked FFT or one panel step of blocked Gaussian elimination. Recording
// per-phase totals lets experiments check the paper's per-step claims (e.g.
// §3.2: "the same ratio is maintained for all the steps") rather than only
// whole-run aggregates.
type Phase struct {
	Name   string
	Totals Totals
}

// Ledger is a Counter that additionally records a named snapshot at every
// phase boundary. The zero value is ready to use.
type Ledger struct {
	Counter
	phases []Phase
	mark   Totals // totals at the start of the open phase
	open   string // name of the open phase, "" if none
}

// Begin opens a named phase. Any previously open phase is closed first.
func (l *Ledger) Begin(name string) {
	if l.open != "" {
		l.End()
	}
	l.open = name
	l.mark = l.Snapshot()
}

// End closes the open phase, appending its delta to the phase list. End is a
// no-op when no phase is open.
func (l *Ledger) End() {
	if l.open == "" {
		return
	}
	delta := l.Snapshot().Sub(l.mark)
	l.phases = append(l.phases, Phase{Name: l.open, Totals: delta})
	l.open = ""
}

// Phases returns the closed phases in order. The returned slice is owned by
// the Ledger and must not be modified.
func (l *Ledger) Phases() []Phase {
	return l.phases
}

// PhaseTotals sums the recorded deltas of every closed phase with the given
// name. It reports ok=false when no phase with that name was recorded.
func (l *Ledger) PhaseTotals(name string) (sum Totals, ok bool) {
	for _, p := range l.phases {
		if p.Name == name {
			sum.Ops += p.Totals.Ops
			sum.Reads += p.Totals.Reads
			sum.Writes += p.Totals.Writes
			ok = true
		}
	}
	return sum, ok
}

// Reset clears both the tallies and the phase history.
func (l *Ledger) Reset() {
	l.Counter.Reset()
	l.phases = nil
	l.mark = Totals{}
	l.open = ""
}

// String summarizes the ledger for debugging.
func (l *Ledger) String() string {
	return fmt.Sprintf("%s phases=%d", l.Counter.String(), len(l.phases))
}
