// Package opcount provides exact operation and I/O-word accounting for
// instrumented kernels.
//
// The information model of Kung (1985) charges a computation two separate
// costs: Ccomp, the total number of arithmetic operations, and Cio, the total
// number of words moved between a processing element and the outside world
// (one I/O operation transfers one word, paper §2). Every kernel in
// internal/kernels threads a *Counter through its decomposition loops so the
// two costs are measured exactly, not estimated.
package opcount

import "fmt"

// Counter accumulates the two cost totals of the information model plus a
// read/write breakdown of the I/O traffic. The zero value is ready to use.
// Counter is not safe for concurrent use; each goroutine should own its own
// Counter and merge with Add.
type Counter struct {
	ops    uint64 // arithmetic operations (Ccomp)
	reads  uint64 // words read from outside the PE
	writes uint64 // words written to outside the PE
}

// Ops adds n arithmetic operations.
func (c *Counter) Ops(n int) {
	if n < 0 {
		panic("opcount: negative op count")
	}
	c.ops += uint64(n)
}

// Ops64 adds n arithmetic operations given as a uint64, for count-only
// kernels whose totals exceed the range of int on 32-bit platforms.
func (c *Counter) Ops64(n uint64) { c.ops += n }

// Read adds n words of input I/O.
func (c *Counter) Read(n int) {
	if n < 0 {
		panic("opcount: negative read count")
	}
	c.reads += uint64(n)
}

// Read64 adds n words of input I/O given as a uint64.
func (c *Counter) Read64(n uint64) { c.reads += n }

// Write adds n words of output I/O.
func (c *Counter) Write(n int) {
	if n < 0 {
		panic("opcount: negative write count")
	}
	c.writes += uint64(n)
}

// Write64 adds n words of output I/O given as a uint64.
func (c *Counter) Write64(n uint64) { c.writes += n }

// Ccomp returns the accumulated arithmetic operation count.
func (c *Counter) Ccomp() uint64 { return c.ops }

// Cio returns the accumulated I/O word count (reads + writes).
func (c *Counter) Cio() uint64 { return c.reads + c.writes }

// Reads returns the accumulated input word count.
func (c *Counter) Reads() uint64 { return c.reads }

// Writes returns the accumulated output word count.
func (c *Counter) Writes() uint64 { return c.writes }

// Ratio returns Ccomp/Cio, the quantity the balance condition constrains
// (paper eq. (1)): a PE with computation bandwidth C and I/O bandwidth IO is
// balanced iff C/IO = Ccomp/Cio. Ratio panics if no I/O has been recorded,
// because a computation with zero I/O has no balance constraint.
func (c *Counter) Ratio() float64 {
	io := c.Cio()
	if io == 0 {
		panic("opcount: ratio undefined with zero I/O")
	}
	return float64(c.ops) / float64(io)
}

// Reset zeroes all tallies.
func (c *Counter) Reset() { *c = Counter{} }

// Add merges the tallies of other into c.
func (c *Counter) Add(other *Counter) {
	c.ops += other.ops
	c.reads += other.reads
	c.writes += other.writes
}

// Snapshot returns a copy of the current tallies.
func (c *Counter) Snapshot() Totals {
	return Totals{Ops: c.ops, Reads: c.reads, Writes: c.writes}
}

// String renders the tallies compactly for logs and test failures.
func (c *Counter) String() string {
	return fmt.Sprintf("ops=%d reads=%d writes=%d", c.ops, c.reads, c.writes)
}

// Totals is an immutable snapshot of a Counter.
type Totals struct {
	Ops    uint64
	Reads  uint64
	Writes uint64
}

// Cio returns the total I/O word count of the snapshot.
func (t Totals) Cio() uint64 { return t.Reads + t.Writes }

// Ratio returns Ops/Cio for the snapshot. It returns +Inf-free 0 when the
// snapshot has no I/O so callers can use it in tabular output; use
// Counter.Ratio when a zero-I/O computation should be a hard error.
func (t Totals) Ratio() float64 {
	io := t.Cio()
	if io == 0 {
		return 0
	}
	return float64(t.Ops) / float64(io)
}

// Sub returns the element-wise difference t - earlier. It panics if earlier
// is not a prefix of t (any field would go negative), which indicates the
// snapshots were taken from different counters or out of order.
func (t Totals) Sub(earlier Totals) Totals {
	if earlier.Ops > t.Ops || earlier.Reads > t.Reads || earlier.Writes > t.Writes {
		panic("opcount: Sub with non-prefix snapshot")
	}
	return Totals{
		Ops:    t.Ops - earlier.Ops,
		Reads:  t.Reads - earlier.Reads,
		Writes: t.Writes - earlier.Writes,
	}
}
