package opcount

import "testing"

func TestLedgerPhases(t *testing.T) {
	var l Ledger
	l.Begin("phase1")
	l.Ops(10)
	l.Read(5)
	l.End()
	l.Begin("phase2")
	l.Write(3)
	l.End()

	ps := l.Phases()
	if len(ps) != 2 {
		t.Fatalf("got %d phases, want 2", len(ps))
	}
	if ps[0].Name != "phase1" || ps[0].Totals.Ops != 10 || ps[0].Totals.Reads != 5 {
		t.Errorf("phase1 = %+v", ps[0])
	}
	if ps[1].Name != "phase2" || ps[1].Totals.Writes != 3 || ps[1].Totals.Ops != 0 {
		t.Errorf("phase2 = %+v", ps[1])
	}
}

func TestLedgerBeginClosesOpenPhase(t *testing.T) {
	var l Ledger
	l.Begin("a")
	l.Ops(1)
	l.Begin("b") // implicitly ends "a"
	l.Ops(2)
	l.End()
	ps := l.Phases()
	if len(ps) != 2 {
		t.Fatalf("got %d phases, want 2", len(ps))
	}
	if ps[0].Name != "a" || ps[0].Totals.Ops != 1 {
		t.Errorf("phase a = %+v", ps[0])
	}
	if ps[1].Name != "b" || ps[1].Totals.Ops != 2 {
		t.Errorf("phase b = %+v", ps[1])
	}
}

func TestLedgerEndWithoutBeginIsNoop(t *testing.T) {
	var l Ledger
	l.End()
	if len(l.Phases()) != 0 {
		t.Fatal("End without Begin recorded a phase")
	}
}

func TestLedgerPhaseTotals(t *testing.T) {
	var l Ledger
	for i := 0; i < 3; i++ {
		l.Begin("step")
		l.Ops(10)
		l.Read(1)
		l.End()
	}
	l.Begin("other")
	l.Ops(99)
	l.End()

	sum, ok := l.PhaseTotals("step")
	if !ok {
		t.Fatal("PhaseTotals(step) reported ok=false")
	}
	if sum.Ops != 30 || sum.Reads != 3 {
		t.Errorf("step totals = %+v, want ops=30 reads=3", sum)
	}
	if _, ok := l.PhaseTotals("missing"); ok {
		t.Error("PhaseTotals(missing) reported ok=true")
	}
}

func TestLedgerPhaseSumsMatchCounter(t *testing.T) {
	var l Ledger
	l.Begin("a")
	l.Ops(7)
	l.Read(2)
	l.End()
	l.Begin("b")
	l.Ops(3)
	l.Write(4)
	l.End()

	var sum Totals
	for _, p := range l.Phases() {
		sum.Ops += p.Totals.Ops
		sum.Reads += p.Totals.Reads
		sum.Writes += p.Totals.Writes
	}
	if sum != l.Snapshot() {
		t.Fatalf("phase sums %+v != counter %+v", sum, l.Snapshot())
	}
}

func TestLedgerReset(t *testing.T) {
	var l Ledger
	l.Begin("a")
	l.Ops(1)
	l.End()
	l.Reset()
	if len(l.Phases()) != 0 || l.Ccomp() != 0 {
		t.Fatal("Reset left residue")
	}
}
