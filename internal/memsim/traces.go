package memsim

import "fmt"

// Matrix operand bases: A, B, C live at disjoint address ranges so traces
// from different operands never alias.
func matmulBases(n int) (baseA, baseB, baseC uint64) {
	sz := uint64(n) * uint64(n)
	return 0, sz, 2 * sz
}

// NaiveMatMulTrace generates the word-level address stream of the textbook
// i-j-k triple loop for an n×n product: for each (i, j), read A(i,k) and
// B(k,j) for all k, then write C(i,j). With a cache smaller than a full
// matrix row set this pattern thrashes on B's column accesses.
func NaiveMatMulTrace(n int) ([]Ref, error) {
	if n <= 0 {
		return nil, fmt.Errorf("memsim: n=%d must be positive", n)
	}
	baseA, baseB, baseC := matmulBases(n)
	un := uint64(n)
	trace := make([]Ref, 0, 2*un*un*un+un*un)
	for i := uint64(0); i < un; i++ {
		for j := uint64(0); j < un; j++ {
			for k := uint64(0); k < un; k++ {
				trace = append(trace,
					Ref{Addr: baseA + i*un + k},
					Ref{Addr: baseB + k*un + j})
			}
			trace = append(trace, Ref{Addr: baseC + i*un + j, Write: true})
		}
	}
	return trace, nil
}

// BlockedMatMulTrace generates the address stream of the §3.1 blocked
// product with b×b output blocks: for each output block, stream A's column
// segments and B's row segments past the resident block. A cache of ≈ b²
// words captures the reuse this schedule exposes.
func BlockedMatMulTrace(n, b int) ([]Ref, error) {
	if n <= 0 || b <= 0 || b > n {
		return nil, fmt.Errorf("memsim: invalid blocked trace shape n=%d b=%d", n, b)
	}
	baseA, baseB, baseC := matmulBases(n)
	un := uint64(n)
	var trace []Ref
	for i0 := 0; i0 < n; i0 += b {
		rows := min(b, n-i0)
		for j0 := 0; j0 < n; j0 += b {
			cols := min(b, n-j0)
			for k := uint64(0); k < un; k++ {
				for i := 0; i < rows; i++ {
					trace = append(trace, Ref{Addr: baseA + uint64(i0+i)*un + k})
				}
				for j := 0; j < cols; j++ {
					trace = append(trace, Ref{Addr: baseB + k*un + uint64(j0+j)})
				}
				// The b×b accumulator block is touched every
				// rank-1 update; these references are what the
				// cache must retain for the schedule to win.
				for i := 0; i < rows; i++ {
					for j := 0; j < cols; j++ {
						trace = append(trace, Ref{
							Addr:  baseC + uint64(i0+i)*un + uint64(j0+j),
							Write: true,
						})
					}
				}
			}
		}
	}
	return trace, nil
}
