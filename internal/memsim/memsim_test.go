package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refs(addrs ...uint64) []Ref {
	out := make([]Ref, len(addrs))
	for i, a := range addrs {
		out[i] = Ref{Addr: a}
	}
	return out
}

func TestLRUBasic(t *testing.T) {
	// Capacity 2; classic LRU behavior.
	trace := refs(1, 2, 1, 3, 2) // 1m 2m 1h 3m(evict 2) 2m(evict 1)
	res, err := SimulateLRU(trace, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 4 {
		t.Errorf("misses = %d, want 4", res.Misses)
	}
	if res.Accesses != 5 {
		t.Errorf("accesses = %d, want 5", res.Accesses)
	}
	if res.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", res.Evictions)
	}
}

func TestLRUAllHitsWhenFits(t *testing.T) {
	trace := refs(1, 2, 3, 1, 2, 3, 1, 2, 3)
	res, err := SimulateLRU(trace, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3 (compulsory only)", res.Misses)
	}
}

func TestLRUThrashesOnCyclicScan(t *testing.T) {
	// Cyclic scan of k+1 addresses through a k-word LRU misses every time.
	var trace []Ref
	for rep := 0; rep < 5; rep++ {
		for a := uint64(0); a < 4; a++ {
			trace = append(trace, Ref{Addr: a})
		}
	}
	res, err := SimulateLRU(trace, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != res.Accesses {
		t.Errorf("misses = %d of %d, want all misses", res.Misses, res.Accesses)
	}
}

func TestOPTBeatsLRUOnCyclicScan(t *testing.T) {
	var trace []Ref
	for rep := 0; rep < 5; rep++ {
		for a := uint64(0); a < 4; a++ {
			trace = append(trace, Ref{Addr: a})
		}
	}
	lru, err := SimulateLRU(trace, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SimulateOPT(trace, 3)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Misses >= lru.Misses {
		t.Errorf("OPT misses %d not better than LRU %d on cyclic scan", opt.Misses, lru.Misses)
	}
	// OPT on cyclic scan keeps 2 of 4 and re-fetches at most 2 per lap.
	if opt.Misses > 4+2*4 {
		t.Errorf("OPT misses = %d, unexpectedly high", opt.Misses)
	}
}

func TestOPTExactOnTextbookExample(t *testing.T) {
	// Trace 0 1 2 0 1 3 0 1 2 3 at capacity 3: OPT evicts 2 for 3 (2 is
	// the furthest next use), then re-fetches 2 once — 4 compulsory
	// misses + 1 = 5 total.
	trace := refs(0, 1, 2, 0, 1, 3, 0, 1, 2, 3)
	res, err := SimulateOPT(trace, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 5 {
		t.Errorf("OPT misses = %d, want 5", res.Misses)
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	// Addresses 0 and 8 collide in an 8-slot direct-mapped cache.
	trace := refs(0, 8, 0, 8, 0, 8)
	res, err := SimulateDirectMapped(trace, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 6 {
		t.Errorf("misses = %d, want 6 (all conflict)", res.Misses)
	}
	// A fully associative LRU of the same size has only compulsory misses.
	lru, err := SimulateLRU(trace, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lru.Misses != 2 {
		t.Errorf("LRU misses = %d, want 2", lru.Misses)
	}
}

func TestCapacityValidation(t *testing.T) {
	for _, sim := range []func([]Ref, int) (Result, error){SimulateLRU, SimulateDirectMapped, SimulateOPT} {
		if _, err := sim(refs(1), 0); err == nil {
			t.Error("capacity 0 accepted")
		}
		if _, err := sim(refs(1), -3); err == nil {
			t.Error("negative capacity accepted")
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := SimulateLRU(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 0 || res.Misses != 0 || res.MissRate() != 0 {
		t.Errorf("empty trace result = %+v", res)
	}
}

func TestDistinctWords(t *testing.T) {
	if got := DistinctWords(refs(1, 2, 1, 3, 3, 3)); got != 3 {
		t.Errorf("DistinctWords = %d, want 3", got)
	}
	if got := DistinctWords(nil); got != 0 {
		t.Errorf("DistinctWords(nil) = %d, want 0", got)
	}
}

func TestNaiveTraceShape(t *testing.T) {
	n := 4
	trace, err := NaiveMatMulTrace(n)
	if err != nil {
		t.Fatal(err)
	}
	// 2n³ reads + n² writes.
	want := 2*n*n*n + n*n
	if len(trace) != want {
		t.Errorf("trace length = %d, want %d", len(trace), want)
	}
	if got := DistinctWords(trace); got != uint64(3*n*n) {
		t.Errorf("distinct words = %d, want %d", got, 3*n*n)
	}
}

func TestBlockedTraceDistinctWords(t *testing.T) {
	n, b := 8, 4
	trace, err := BlockedMatMulTrace(n, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := DistinctWords(trace); got != uint64(3*n*n) {
		t.Errorf("distinct words = %d, want %d", got, 3*n*n)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NaiveMatMulTrace(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BlockedMatMulTrace(4, 8); err == nil {
		t.Error("b>n accepted")
	}
	if _, err := BlockedMatMulTrace(4, 0); err == nil {
		t.Error("b=0 accepted")
	}
}

// TestBlockedBeatsNaiveUnderLRU is the E12 core claim: with a cache of ≈ b²
// words, the blocked schedule's LRU traffic is far below the naive
// schedule's, approaching the counter model's 2N³/b + N² while naive stays
// near 2N³.
func TestBlockedBeatsNaiveUnderLRU(t *testing.T) {
	n, b := 24, 8
	cache := b*b + 4*b // block + streaming segments + slack
	naive, err := NaiveMatMulTrace(n)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := BlockedMatMulTrace(n, b)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := SimulateLRU(naive, cache)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := SimulateLRU(blocked, cache)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Misses*2 >= rn.Misses {
		t.Errorf("blocked misses %d not ≪ naive misses %d at cache %d",
			rb.Misses, rn.Misses, cache)
	}
}

// Property: OPT never misses more than LRU (Belady optimality), and both
// never miss fewer than the compulsory floor.
func TestOPTDominatesLRUProperty(t *testing.T) {
	f := func(seed int64, cap8 uint8) bool {
		capacity := 2 + int(cap8%16)
		rng := rand.New(rand.NewSource(seed))
		trace := make([]Ref, 400)
		for i := range trace {
			trace[i] = Ref{Addr: uint64(rng.Intn(48))}
		}
		lru, err1 := SimulateLRU(trace, capacity)
		opt, err2 := SimulateOPT(trace, capacity)
		if err1 != nil || err2 != nil {
			return false
		}
		floor := DistinctWords(trace)
		return opt.Misses <= lru.Misses && opt.Misses >= floor && lru.Misses >= floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: enlarging an LRU cache never increases misses (LRU is a stack
// algorithm — the inclusion property).
func TestLRUStackProperty(t *testing.T) {
	f := func(seed int64, cap8 uint8) bool {
		c1 := 2 + int(cap8%12)
		c2 := c1 + 4
		rng := rand.New(rand.NewSource(seed))
		trace := make([]Ref, 300)
		for i := range trace {
			trace[i] = Ref{Addr: uint64(rng.Intn(40))}
		}
		small, err1 := SimulateLRU(trace, c1)
		big, err2 := SimulateLRU(trace, c2)
		if err1 != nil || err2 != nil {
			return false
		}
		return big.Misses <= small.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
