package memsim

import "testing"

func benchTrace(b *testing.B) []Ref {
	b.Helper()
	trace, err := BlockedMatMulTrace(32, 8)
	if err != nil {
		b.Fatal(err)
	}
	return trace
}

func BenchmarkSimulateLRU(b *testing.B) {
	trace := benchTrace(b)
	b.SetBytes(int64(len(trace)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateLRU(trace, 96); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateOPT(b *testing.B) {
	trace := benchTrace(b)
	b.SetBytes(int64(len(trace)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateOPT(trace, 96); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateDirectMapped(b *testing.B) {
	trace := benchTrace(b)
	b.SetBytes(int64(len(trace)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDirectMapped(trace, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	for _, kind := range []string{"naive", "blocked"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if kind == "naive" {
					_, err = NaiveMatMulTrace(32)
				} else {
					_, err = BlockedMatMulTrace(32, 8)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
