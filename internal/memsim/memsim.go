// Package memsim simulates a PE's local memory as a cache over an address
// trace: fully associative LRU, direct-mapped, and Belady's offline optimal
// (OPT) replacement. A miss is one word fetched from outside the PE, so the
// miss count of a trace is the Cio a cache of that size would actually incur
// — the executable counterpart of the paper's §1 observation that a local
// memory "caches frequently used data ... so that the required I/O bandwidth
// with the outside world is reduced".
//
// The package also generates the address traces of naive and blocked matrix
// multiplication, letting the E12 experiment demonstrate that the blocked
// decomposition (not merely the presence of a cache) is what achieves the
// paper's Θ(√M) compute-to-I/O ratio.
package memsim

import "fmt"

// Ref is one word-granular memory reference.
type Ref struct {
	Addr  uint64
	Write bool
}

// Result summarizes a cache simulation. Misses is the number of words
// fetched from outside (the I/O cost in the paper's model, under a
// read-traffic accounting with write-allocate and no writeback counting).
type Result struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses, 0 for an empty trace.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

func validateCapacity(capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("memsim: capacity %d must be positive", capacity)
	}
	return nil
}

// SimulateLRU replays the trace through a fully associative cache of the
// given word capacity with least-recently-used replacement.
func SimulateLRU(trace []Ref, capacity int) (Result, error) {
	if err := validateCapacity(capacity); err != nil {
		return Result{}, err
	}
	var res Result
	l := newLRUList(capacity)
	pos := make(map[uint64]int, capacity)
	for _, ref := range trace {
		res.Accesses++
		if node, ok := pos[ref.Addr]; ok {
			l.moveToFront(node)
			continue
		}
		res.Misses++
		if len(pos) == capacity {
			victim := l.back()
			delete(pos, l.addr[victim])
			l.remove(victim)
			res.Evictions++
		}
		node := l.pushFront(ref.Addr)
		pos[ref.Addr] = node
	}
	return res, nil
}

// lruList is an intrusive doubly linked list over preallocated node slots,
// avoiding per-access allocation.
type lruList struct {
	addr       []uint64
	prev, next []int
	head, tail int
	free       []int
}

func newLRUList(capacity int) *lruList {
	l := &lruList{
		addr: make([]uint64, capacity),
		prev: make([]int, capacity),
		next: make([]int, capacity),
		head: -1, tail: -1,
		free: make([]int, 0, capacity),
	}
	for i := capacity - 1; i >= 0; i-- {
		l.free = append(l.free, i)
	}
	return l
}

func (l *lruList) pushFront(addr uint64) int {
	n := l.free[len(l.free)-1]
	l.free = l.free[:len(l.free)-1]
	l.addr[n] = addr
	l.prev[n] = -1
	l.next[n] = l.head
	if l.head >= 0 {
		l.prev[l.head] = n
	}
	l.head = n
	if l.tail < 0 {
		l.tail = n
	}
	return n
}

func (l *lruList) remove(n int) {
	if l.prev[n] >= 0 {
		l.next[l.prev[n]] = l.next[n]
	} else {
		l.head = l.next[n]
	}
	if l.next[n] >= 0 {
		l.prev[l.next[n]] = l.prev[n]
	} else {
		l.tail = l.prev[n]
	}
	l.free = append(l.free, n)
}

func (l *lruList) moveToFront(n int) {
	if l.head == n {
		return
	}
	// Unlink (without freeing) and relink at head.
	if l.prev[n] >= 0 {
		l.next[l.prev[n]] = l.next[n]
	}
	if l.next[n] >= 0 {
		l.prev[l.next[n]] = l.prev[n]
	} else {
		l.tail = l.prev[n]
	}
	l.prev[n] = -1
	l.next[n] = l.head
	if l.head >= 0 {
		l.prev[l.head] = n
	}
	l.head = n
}

func (l *lruList) back() int { return l.tail }

// SimulateDirectMapped replays the trace through a direct-mapped cache of
// the given word capacity (address mod capacity indexing).
func SimulateDirectMapped(trace []Ref, capacity int) (Result, error) {
	if err := validateCapacity(capacity); err != nil {
		return Result{}, err
	}
	var res Result
	slots := make([]uint64, capacity)
	valid := make([]bool, capacity)
	for _, ref := range trace {
		res.Accesses++
		slot := int(ref.Addr % uint64(capacity))
		if valid[slot] && slots[slot] == ref.Addr {
			continue
		}
		res.Misses++
		if valid[slot] {
			res.Evictions++
		}
		slots[slot] = ref.Addr
		valid[slot] = true
	}
	return res, nil
}

// SimulateOPT replays the trace through a fully associative cache with
// Belady's optimal (furthest-future-use) replacement, the offline lower
// bound no online policy can beat. It runs in O(T log C) time using a lazy
// max-heap over next-use distances.
func SimulateOPT(trace []Ref, capacity int) (Result, error) {
	if err := validateCapacity(capacity); err != nil {
		return Result{}, err
	}
	const never = int(^uint(0) >> 1) // no future use

	// nextUse[t] = next position after t at which trace[t].Addr recurs.
	nextUse := make([]int, len(trace))
	lastSeen := make(map[uint64]int, capacity*2)
	for t := len(trace) - 1; t >= 0; t-- {
		if nxt, ok := lastSeen[trace[t].Addr]; ok {
			nextUse[t] = nxt
		} else {
			nextUse[t] = never
		}
		lastSeen[trace[t].Addr] = t
	}

	var res Result
	resident := make(map[uint64]int, capacity) // addr → its current next use
	h := make(optHeap, 0, capacity)
	for t, ref := range trace {
		res.Accesses++
		if _, ok := resident[ref.Addr]; ok {
			resident[ref.Addr] = nextUse[t]
			h.push(optEntry{nextUse: nextUse[t], addr: ref.Addr})
			continue
		}
		res.Misses++
		if len(resident) == capacity {
			// Evict the resident word whose next use is furthest;
			// skip stale heap entries lazily.
			for {
				e := h.pop()
				if cur, ok := resident[e.addr]; ok && cur == e.nextUse {
					delete(resident, e.addr)
					res.Evictions++
					break
				}
			}
		}
		resident[ref.Addr] = nextUse[t]
		h.push(optEntry{nextUse: nextUse[t], addr: ref.Addr})
	}
	return res, nil
}

type optEntry struct {
	nextUse int
	addr    uint64
}

// optHeap is a max-heap on nextUse.
type optHeap []optEntry

func (h *optHeap) push(e optEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].nextUse >= (*h)[i].nextUse {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *optHeap) pop() optEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && (*h)[child+1].nextUse > (*h)[child].nextUse {
			child++
		}
		if (*h)[i].nextUse >= (*h)[child].nextUse {
			break
		}
		(*h)[i], (*h)[child] = (*h)[child], (*h)[i]
		i = child
	}
	return top
}

// DistinctWords returns the number of distinct addresses in the trace — the
// compulsory-miss floor every policy must pay.
func DistinctWords(trace []Ref) uint64 {
	seen := make(map[uint64]struct{})
	for _, r := range trace {
		seen[r.Addr] = struct{}{}
	}
	return uint64(len(seen))
}
