package kernels

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"balarch/internal/opcount"
)

// Paper §4 lists "sparse matrix operations that have relatively high I/O
// requirements" among the scientific computations motivating assumption (6).
// This file makes that remark concrete: sparse matrix–vector multiplication
// in CSR form touches each stored element once for two flops, so
// R(M) ≤ 2 + ε for every M — it sits in the §3.6 memory-inelastic family,
// which is why the paper's aggregate assumption (6) uses α² as the *floor*
// across scientific workloads.

// CSR is a sparse matrix in compressed sparse row form.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1; row i occupies [RowPtr[i], RowPtr[i+1])
	ColIdx     []int     // len NNZ
	Val        []float64 // len NNZ
}

// NNZ returns the number of stored elements.
func (m *CSR) NNZ() int { return len(m.Val) }

// Validate checks structural invariants.
func (m *CSR) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("kernels: CSR shape %d×%d must be positive", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("kernels: CSR RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != len(m.Val) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("kernels: CSR pointer structure inconsistent")
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("kernels: CSR RowPtr not monotone at row %d", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] < 0 || m.ColIdx[k] >= m.Cols {
				return fmt.Errorf("kernels: CSR column %d out of range at row %d", m.ColIdx[k], i)
			}
		}
	}
	return nil
}

// NewRandomCSR builds an n×n sparse matrix with approximately nnzPerRow
// stored elements per row at uniformly random columns (deduplicated,
// sorted), values in [-1, 1).
func NewRandomCSR(n, nnzPerRow int, rng *rand.Rand) *CSR {
	if n <= 0 || nnzPerRow <= 0 || nnzPerRow > n {
		panic(fmt.Sprintf("kernels: bad sparse shape n=%d nnzPerRow=%d", n, nnzPerRow))
	}
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		cols := map[int]struct{}{}
		for len(cols) < nnzPerRow {
			cols[rng.Intn(n)] = struct{}{}
		}
		idx := make([]int, 0, nnzPerRow)
		for cIdx := range cols {
			idx = append(idx, cIdx)
		}
		sort.Ints(idx)
		for _, cIdx := range idx {
			m.ColIdx = append(m.ColIdx, cIdx)
			m.Val = append(m.Val, 2*rng.Float64()-1)
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

// SpMVSpec describes the streaming sparse y = A·x: result rows are computed
// in chunks of Chunk held resident; the CSR stream (values + column
// indices, each one word) passes once; x is read on demand, one word per
// stored element (the "relatively high I/O requirement" — sparse access
// defeats the blocking that dense matmul enjoys).
type SpMVSpec struct {
	// N is the matrix dimension.
	N int
	// Chunk is the number of result rows held in local memory.
	Chunk int
}

// Validate checks the spec's invariants.
func (s SpMVSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("kernels: spmv N=%d must be positive", s.N)
	}
	if s.Chunk <= 0 || s.Chunk > s.N {
		return fmt.Errorf("kernels: spmv chunk=%d must be in [1, N=%d]", s.Chunk, s.N)
	}
	return nil
}

// Memory returns the local footprint in words: the resident result chunk
// plus streaming buffers.
func (s SpMVSpec) Memory() int { return s.Chunk + 3 }

// SpMV computes y = a·x with exact counting. Each stored element costs: one
// value word + one index word read, one x word read (random access — no
// reuse is assumed below M = N), and 2 flops. Output rows are written once.
func SpMV(spec SpMVSpec, a *CSR, x []float64, c *opcount.Counter) ([]float64, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if a.Rows != spec.N || a.Cols != spec.N || len(x) != spec.N {
		return nil, fmt.Errorf("kernels: spmv operands must be %d×%d and length %d", spec.N, spec.N, spec.N)
	}
	y := make([]float64, spec.N)
	for r0 := 0; r0 < spec.N; r0 += spec.Chunk {
		rows := min(spec.Chunk, spec.N-r0)
		local := make([]float64, rows)
		for i := 0; i < rows; i++ {
			row := r0 + i
			for k := a.RowPtr[row]; k < a.RowPtr[row+1]; k++ {
				c.Read(3) // value, column index, x[col]
				local[i] += a.Val[k] * x[a.ColIdx[k]]
				c.Ops(2)
			}
		}
		copy(y[r0:r0+rows], local)
		c.Write(rows)
	}
	return y, nil
}

// CountSpMV returns the counts SpMV would record, in O(1) time given the
// matrix's NNZ.
func CountSpMV(spec SpMVSpec, nnz int) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	if nnz < 0 {
		return opcount.Totals{}, fmt.Errorf("kernels: negative nnz %d", nnz)
	}
	return opcount.Totals{
		Ops:    2 * uint64(nnz),
		Reads:  3 * uint64(nnz),
		Writes: uint64(spec.N),
	}, nil
}

// SpMVRef is the straightforward reference used to validate SpMV.
func SpMVRef(a *CSR, x []float64) []float64 {
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[i] += a.Val[k] * x[a.ColIdx[k]]
		}
	}
	return y
}

// SpMVRatioSweep measures the SpMV ratio across chunk sizes for the E7
// experiment: flat at 2/3·... — bounded by the constant 2 flops per 3
// streamed words, independent of memory.
func SpMVRatioSweep(ctx context.Context, n, nnzPerRow int, chunks []int) ([]RatioPoint, error) {
	nnz := n * nnzPerRow
	pts, _, err := Sweep(ctx, chunks, func(_ context.Context, ch int, c *opcount.Counter) (int, error) {
		spec := SpMVSpec{N: n, Chunk: ch}
		tot, err := CountSpMV(spec, nnz)
		if err != nil {
			return 0, err
		}
		countPoint(c, tot)
		return spec.Memory(), nil
	})
	return pts, err
}
