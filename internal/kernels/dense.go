// Package kernels provides real, instrumented implementations of every
// computation analyzed in Kung (1985) §3: blocked matrix multiplication,
// blocked Gaussian elimination and Givens QR triangularization,
// d-dimensional grid relaxation, the radix-2 and blocked external FFT,
// two-phase external merge sort, and the I/O-bounded kernels (matrix-vector
// product, triangular solve).
//
// Each kernel computes real numerics (validated in tests against reference
// implementations) while threading an opcount.Counter through the paper's
// decomposition scheme so the experiments can measure Ccomp and Cio exactly.
// Kernels that are too slow to run at the paper's N ≫ M regime also provide
// Count variants that walk the same block structure without arithmetic,
// producing identical counts in time proportional to the number of blocks.
package kernels

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, Data[i*Cols+j] = element (i,j)
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("kernels: invalid matrix shape %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseRandom fills a rows×cols matrix with uniform values in [-1, 1)
// from the given source, for reproducible tests and experiments.
func NewDenseRandom(rows, cols int, rng *rand.Rand) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports whether m and other agree element-wise within tol.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference.
func (m *Dense) MaxAbsDiff(other *Dense) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return math.Inf(1)
	}
	var worst float64
	for i, v := range m.Data {
		worst = math.Max(worst, math.Abs(v-other.Data[i]))
	}
	return worst
}

// IsUpperTriangular reports whether all elements strictly below the diagonal
// are within tol of zero.
func (m *Dense) IsUpperTriangular(tol float64) bool {
	for i := 1; i < m.Rows; i++ {
		for j := 0; j < i && j < m.Cols; j++ {
			if math.Abs(m.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// MulRef computes the reference product m × other with the textbook triple
// loop, used to validate the blocked kernels.
func (m *Dense) MulRef(other *Dense) *Dense {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("kernels: dimension mismatch %d×%d by %d×%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewDense(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// DiagonallyDominant returns a random n×n matrix with each diagonal element
// boosted above its row's off-diagonal absolute sum, guaranteeing that
// Gaussian elimination without pivoting is numerically safe.
func DiagonallyDominant(n int, rng *rand.Rand) *Dense {
	m := NewDenseRandom(n, n, rng)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, rowSum+1)
	}
	return m
}
