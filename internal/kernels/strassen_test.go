package kernels

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func TestCAStrassenCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, tc := range []struct{ n, leaf int }{
		{1, 1}, {2, 1}, {2, 2}, {4, 2}, {8, 2}, {16, 4}, {32, 8}, {64, 64},
	} {
		a := NewDenseRandom(tc.n, tc.n, rng)
		b := NewDenseRandom(tc.n, tc.n, rng)
		var c opcount.Counter
		got, err := CAStrassen(StrassenSpec{N: tc.n, Leaf: tc.leaf}, a, b, &c)
		if err != nil {
			t.Fatalf("n=%d leaf=%d: %v", tc.n, tc.leaf, err)
		}
		want := a.MulRef(b)
		// Strassen is less numerically stable than the classical
		// product; allow a looser (but still tight) tolerance.
		if diff := got.MaxAbsDiff(want); diff > 1e-10*float64(tc.n*tc.n) {
			t.Errorf("n=%d leaf=%d: result off by %g", tc.n, tc.leaf, diff)
		}
	}
}

func TestCAStrassenCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, tc := range []struct{ n, leaf int }{
		{2, 1}, {4, 2}, {8, 2}, {16, 4}, {32, 16},
	} {
		spec := StrassenSpec{N: tc.n, Leaf: tc.leaf}
		a := NewDenseRandom(tc.n, tc.n, rng)
		b := NewDenseRandom(tc.n, tc.n, rng)
		var c opcount.Counter
		if _, err := CAStrassen(spec, a, b, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountCAStrassen(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("n=%d leaf=%d: run counted %+v, closed form %+v", tc.n, tc.leaf, got, want)
		}
	}
}

func TestStrassenLocalOps(t *testing.T) {
	// S(1) = 1; S(2) = 7 + 18 = 25; S(4) = 7·25 + 18·4 = 247.
	cases := map[int]uint64{1: 1, 2: 25, 4: 247}
	for n, want := range cases {
		if got := strassenLocalOps(n); got != want {
			t.Errorf("S(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestStrassenSubCubicOps: total flops grow as N^lg7, visibly below 2N³ for
// large N (with leaves large enough to amortize the additions).
func TestStrassenSubCubicOps(t *testing.T) {
	small, err := CountCAStrassen(StrassenSpec{N: 1024, Leaf: 8})
	if err != nil {
		t.Fatal(err)
	}
	big, err := CountCAStrassen(StrassenSpec{N: 2048, Leaf: 8})
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(big.Ops) / float64(small.Ops)
	// Doubling N multiplies ops by ≈ 7 (lg7 = 2.807), not 8.
	if gain < 6.8 || gain > 7.2 {
		t.Errorf("N-doubling op gain = %v, want ≈ 7", gain)
	}
	// The exact-flop crossover against 2N³ sits near N ≈ 1000; by 2048
	// Strassen is strictly cheaper.
	classical := 2.0 * math.Pow(2048, 3)
	if float64(big.Ops) >= classical {
		t.Errorf("Strassen ops %d not below classical %g", big.Ops, classical)
	}
}

// TestStrassenRatioExponent is the X4 headline: the CA-Strassen ratio grows
// as M^(lg7/2−1) ≈ M^0.404 — weaker memory leverage than classical matmul's
// M^0.5.
func TestStrassenRatioExponent(t *testing.T) {
	pts, err := StrassenRatioSweep(context.Background(), 4096, []int{8, 16, 32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	// Fit the exponent by regression over the two endpoints and the
	// middle (cheap log-log slope check).
	first, last := pts[0], pts[len(pts)-1]
	slope := math.Log(last.Ratio()/first.Ratio()) /
		math.Log(float64(last.Memory)/float64(first.Memory))
	want := math.Log2(7)/2 - 1 // 0.4037
	if math.Abs(slope-want) > 0.05 {
		t.Errorf("ratio exponent = %v, want ≈ %v", slope, want)
	}
	// And it is strictly below classical matmul's 0.5.
	if slope >= 0.47 {
		t.Errorf("Strassen exponent %v should sit clearly below 0.5", slope)
	}
}

func TestStrassenSpecValidation(t *testing.T) {
	bad := []StrassenSpec{
		{N: 0, Leaf: 1}, {N: 12, Leaf: 4}, {N: 16, Leaf: 3},
		{N: 16, Leaf: 32}, {N: 16, Leaf: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	if got := (StrassenSpec{N: 64, Leaf: 8}).Memory(); got != 192 {
		t.Errorf("Memory = %d, want 192", got)
	}
	var c opcount.Counter
	a := NewDense(8, 8)
	if _, err := CAStrassen(StrassenSpec{N: 16, Leaf: 4}, a, a, &c); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// Property: CA-Strassen agrees with the classical product for random
// power-of-two shapes and any leaf size.
func TestCAStrassenProperty(t *testing.T) {
	f := func(seed int64, n8, l8 uint8) bool {
		nPow := int(n8 % 5) // N = 1..16
		lPow := int(l8) % (nPow + 1)
		n, leaf := 1<<nPow, 1<<lPow
		rng := rand.New(rand.NewSource(seed))
		a := NewDenseRandom(n, n, rng)
		b := NewDenseRandom(n, n, rng)
		var c opcount.Counter
		got, err := CAStrassen(StrassenSpec{N: n, Leaf: leaf}, a, b, &c)
		if err != nil {
			return false
		}
		return got.MaxAbsDiff(a.MulRef(b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
