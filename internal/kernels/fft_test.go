package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func randomComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return x
}

func maxCDiff(a, b []complex128) float64 {
	var worst float64
	for i := range a {
		worst = math.Max(worst, cmplx.Abs(a[i]-b[i]))
	}
	return worst
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randomComplex(n, rng)
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := FFTInPlace(got); err != nil {
			t.Fatal(err)
		}
		if diff := maxCDiff(got, want); diff > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT vs naive DFT differ by %g", n, diff)
		}
	}
}

func TestFFTRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12} {
		if err := FFTInPlace(make([]complex128, n)); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 128
	x := randomComplex(n, rng)
	y := randomComplex(n, rng)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = x[i] + 2i*y[i]
	}
	fx := append([]complex128(nil), x...)
	fy := append([]complex128(nil), y...)
	fs := append([]complex128(nil), sum...)
	for _, v := range [][]complex128{fx, fy, fs} {
		if err := FFTInPlace(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := range fs {
		want := fx[i] + 2i*fy[i]
		if cmplx.Abs(fs[i]-want) > 1e-9*float64(n) {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 1024
	x := randomComplex(n, rng)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	f := append([]complex128(nil), x...)
	if err := FFTInPlace(f); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range f {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if rel := math.Abs(freqEnergy/float64(n)-timeEnergy) / timeEnergy; rel > 1e-10 {
		t.Errorf("Parseval violated: %g vs %g", freqEnergy/float64(n), timeEnergy)
	}
}

func TestBlockedFFTBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, tc := range []struct{ n, block int }{
		{16, 4}, // the Fig. 2 configuration
		{16, 2},
		{16, 16},
		{64, 4},
		{256, 8},
		{1024, 32},
		{128, 8}, // log₂N=7 not divisible by log₂B=3: ragged last pass
		{512, 8},
	} {
		x := randomComplex(tc.n, rng)
		want := append([]complex128(nil), x...)
		if err := FFTInPlace(want); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		var c opcount.Counter
		if err := BlockedFFT(FFTSpec{N: tc.n, Block: tc.block}, got, &c); err != nil {
			t.Fatalf("n=%d block=%d: %v", tc.n, tc.block, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d block=%d: index %d differs: %v vs %v (must be bit-identical)",
					tc.n, tc.block, i, got[i], want[i])
			}
		}
	}
}

func TestBlockedFFTCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, tc := range []struct{ n, block int }{
		{16, 4}, {64, 4}, {128, 8}, {256, 16}, {32, 32},
	} {
		spec := FFTSpec{N: tc.n, Block: tc.block}
		x := randomComplex(tc.n, rng)
		var c opcount.Counter
		if err := BlockedFFT(spec, x, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountBlockedFFT(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("n=%d block=%d: run counted %+v, closed form %+v", tc.n, tc.block, got, want)
		}
	}
}

// TestFFTRatioIsLogM verifies the §3.4 claim: the per-pass ratio equals
// (butterflyOps/4)·log₂M exactly when every pass is full.
func TestFFTRatioIsLogM(t *testing.T) {
	for _, block := range []int{4, 16, 256} {
		// log₂N divisible by log₂block keeps every pass full.
		lb := 0
		for b := block; b > 1; b >>= 1 {
			lb++
		}
		n := 1
		for i := 0; i < 3*lb; i++ {
			n <<= 1
		}
		tot, err := CountBlockedFFT(FFTSpec{N: n, Block: block})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(butterflyOps) / 4 * float64(lb)
		if got := tot.Ratio(); math.Abs(got-want) > 1e-9 {
			t.Errorf("block=%d: ratio = %v, want %v", block, got, want)
		}
	}
}

func TestFFTSpecValidation(t *testing.T) {
	bad := []FFTSpec{
		{N: 0, Block: 2}, {N: 12, Block: 4}, {N: 16, Block: 3},
		{N: 16, Block: 32}, {N: 16, Block: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	if got := (FFTSpec{N: 16, Block: 4}).Passes(); got != 2 {
		t.Errorf("Passes(16,4) = %d, want 2", got)
	}
	if got := (FFTSpec{N: 128, Block: 8}).Passes(); got != 3 {
		t.Errorf("Passes(128,8) = %d, want 3 (7 stages in passes of 3)", got)
	}
}

func TestDecomposeFFTFig2(t *testing.T) {
	// The paper's Fig. 2: N=16, M=4 → two passes of 2 stages, four blocks
	// each; pass 0 gathers consecutive quads, pass 1 gathers stride-4.
	dec, err := DecomposeFFT(FFTSpec{N: 16, Block: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(dec.Passes))
	}
	p0, p1 := dec.Passes[0], dec.Passes[1]
	if len(p0.Blocks) != 4 || len(p1.Blocks) != 4 {
		t.Fatalf("blocks per pass = %d, %d, want 4, 4", len(p0.Blocks), len(p1.Blocks))
	}
	wantP0 := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}}
	wantP1 := [][]int{{0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14}, {3, 7, 11, 15}}
	for i := range wantP0 {
		for j := range wantP0[i] {
			if p0.Blocks[i][j] != wantP0[i][j] {
				t.Errorf("pass 0 block %d = %v, want %v", i, p0.Blocks[i], wantP0[i])
				break
			}
			if p1.Blocks[i][j] != wantP1[i][j] {
				t.Errorf("pass 1 block %d = %v, want %v", i, p1.Blocks[i], wantP1[i])
				break
			}
		}
	}
}

// TestDecompositionCoversAllIndicesOncePerPass: each pass must touch every
// index exactly once — the shuffle is a permutation.
func TestDecompositionPermutationProperty(t *testing.T) {
	f := func(n8, b8 uint8) bool {
		nPow := 2 + int(n8%8) // N = 4 .. 512
		bPow := 1 + int(b8)%nPow
		spec := FFTSpec{N: 1 << nPow, Block: 1 << bPow}
		dec, err := DecomposeFFT(spec)
		if err != nil {
			return false
		}
		for _, pass := range dec.Passes {
			seen := make([]bool, spec.N)
			for _, blk := range pass.Blocks {
				for _, idx := range blk {
					if idx < 0 || idx >= spec.N || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBitReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	x := randomComplex(64, rng)
	orig := append([]complex128(nil), x...)
	BitReverse(x)
	BitReverse(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("BitReverse applied twice is not the identity")
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for _, n := range []int{2, 16, 256, 4096} {
		x := randomComplex(n, rng)
		y := append([]complex128(nil), x...)
		if err := FFTInPlace(y); err != nil {
			t.Fatal(err)
		}
		if err := IFFTInPlace(y); err != nil {
			t.Fatal(err)
		}
		if diff := maxCDiff(y, x); diff > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip off by %g", n, diff)
		}
	}
	if err := IFFTInPlace(make([]complex128, 3)); err == nil {
		t.Error("bad length accepted")
	}
}

func TestIFFTUndoesBlockedFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 512
	x := randomComplex(n, rng)
	y := append([]complex128(nil), x...)
	var c opcount.Counter
	if err := BlockedFFT(FFTSpec{N: n, Block: 16}, y, &c); err != nil {
		t.Fatal(err)
	}
	if err := IFFTInPlace(y); err != nil {
		t.Fatal(err)
	}
	if diff := maxCDiff(y, x); diff > 1e-10*float64(n) {
		t.Errorf("blocked round trip off by %g", diff)
	}
}
