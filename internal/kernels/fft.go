package kernels

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"balarch/internal/opcount"
)

// The FFT kernels follow the paper's word convention abstractly: one data
// element (here one complex sample) is one word, and one radix-2 butterfly
// costs butterflyOps arithmetic operations (4 real multiplies and 6 real
// adds for the complex multiply-add pair). Only the Θ-shape of the ratio
// matters to the paper's argument; the constants are fixed here so the
// measured ratio per full pass is exactly (butterflyOps/4)·log₂M.
const butterflyOps = 10

// FFTSpec describes the §3.4 / Fig. 2 decomposition of an N-point FFT into
// subcomputation blocks of Block points: the log₂N butterfly stages are
// executed in passes of log₂Block stages; within a pass each block is loaded
// into local memory, transformed entirely locally, and stored; between
// passes the blocks are reassembled from strided positions (the "shuffle" of
// Fig. 2b).
type FFTSpec struct {
	// N is the transform size; must be a power of two ≥ 2.
	N int
	// Block is the subcomputation size M; must be a power of two in [2, N].
	Block int
}

// Validate checks the spec's invariants.
func (s FFTSpec) Validate() error {
	if s.N < 2 || bits.OnesCount(uint(s.N)) != 1 {
		return fmt.Errorf("kernels: FFT N=%d must be a power of two ≥ 2", s.N)
	}
	if s.Block < 2 || bits.OnesCount(uint(s.Block)) != 1 || s.Block > s.N {
		return fmt.Errorf("kernels: FFT block=%d must be a power of two in [2, N=%d]", s.Block, s.N)
	}
	return nil
}

// Memory returns the local memory footprint in words (one block).
func (s FFTSpec) Memory() int { return s.Block }

// Passes returns the number of block passes: ⌈log₂N / log₂Block⌉.
func (s FFTSpec) Passes() int {
	total := bits.TrailingZeros(uint(s.N))
	per := bits.TrailingZeros(uint(s.Block))
	return (total + per - 1) / per
}

// BitReverse permutes x into bit-reversed index order in place, the input
// ordering of the decimation-in-time FFT.
func BitReverse(x []complex128) {
	n := len(x)
	shift := bits.UintSize - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// FFTInPlace computes the forward DFT of x (length a power of two) with the
// iterative radix-2 decimation-in-time algorithm, the reference against
// which BlockedFFT is validated bit-for-bit.
func FFTInPlace(x []complex128) error {
	n := len(x)
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return fmt.Errorf("kernels: FFT length %d must be a power of two ≥ 2", n)
	}
	BitReverse(x)
	stages := bits.TrailingZeros(uint(n))
	for s := 0; s < stages; s++ {
		half := 1 << s
		for base := 0; base < n; base += 2 * half {
			for k := 0; k < half; k++ {
				butterfly(x, base+k, base+k+half, twiddle(s, base+k))
			}
		}
	}
	return nil
}

// twiddle returns the stage-s twiddle factor for the butterfly whose first
// element sits at global (bit-reversed-input) index i:
// W = exp(-2πi · (i mod 2^s) / 2^(s+1)).
func twiddle(s, i int) complex128 {
	mod := i & ((1 << s) - 1)
	angle := -2 * math.Pi * float64(mod) / float64(int(2)<<s)
	return cmplx.Exp(complex(0, angle))
}

// butterfly applies the radix-2 DIT butterfly to x[a], x[b] with twiddle w.
func butterfly(x []complex128, a, b int, w complex128) {
	t := w * x[b]
	x[a], x[b] = x[a]+t, x[a]-t
}

// IFFTInPlace computes the inverse DFT of x via the conjugate identity
// IDFT(x) = conj(DFT(conj(x)))/N, so the forward kernel (and therefore the
// blocked decomposition) is the only butterfly code path.
func IFFTInPlace(x []complex128) error {
	for i, v := range x {
		x[i] = cmplx.Conj(v)
	}
	if err := FFTInPlace(x); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i, v := range x {
		x[i] = cmplx.Conj(v) * scale
	}
	return nil
}

// NaiveDFT computes the DFT by the O(N²) definition, for numeric validation.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k*t%n) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// BlockedFFT computes the forward DFT of x with the Fig. 2 block
// decomposition, recording exact arithmetic and I/O word counts: every pass
// reads each point into a block, performs that pass's butterfly stages
// locally, and writes each point back. The result is bit-identical to
// FFTInPlace because butterflies within a stage are independent.
func BlockedFFT(spec FFTSpec, x []complex128, c *opcount.Counter) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(x) != spec.N {
		return fmt.Errorf("kernels: input length %d does not match spec N=%d", len(x), spec.N)
	}
	BitReverse(x)
	totalStages := bits.TrailingZeros(uint(spec.N))
	perPass := bits.TrailingZeros(uint(spec.Block))
	buf := make([]complex128, spec.Block)

	for stageLo := 0; stageLo < totalStages; stageLo += perPass {
		lp := min(perPass, totalStages-stageLo) // stages this pass
		groupSize := 1 << lp
		stride := 1 << stageLo
		for g := 0; g < spec.N/groupSize; g++ {
			// Base index: bits below stageLo come from g's low
			// part, bits above stageLo+lp from g's high part; the
			// pass's own bit range is zero.
			base := g&(stride-1) | (g >> stageLo << (stageLo + lp))
			// Gather the block from strided positions (the
			// shuffle of Fig. 2b) into local memory.
			for t := 0; t < groupSize; t++ {
				buf[t] = x[base+t*stride]
			}
			c.Read(groupSize)
			// All butterfly stages of this pass, entirely local.
			for sl := 0; sl < lp; sl++ {
				sg := stageLo + sl
				half := 1 << sl
				for bb := 0; bb < groupSize; bb += 2 * half {
					for k := 0; k < half; k++ {
						gidx := base + (bb+k)*stride
						butterfly(buf, bb+k, bb+k+half, twiddle(sg, gidx))
						c.Ops(butterflyOps)
					}
				}
			}
			// Scatter the block back.
			for t := 0; t < groupSize; t++ {
				x[base+t*stride] = buf[t]
			}
			c.Write(groupSize)
		}
	}
	return nil
}

// CountBlockedFFT returns the counts BlockedFFT would record, in O(passes)
// time: per pass every point is read and written once and N/2 butterflies
// execute per stage.
func CountBlockedFFT(spec FFTSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	totalStages := bits.TrailingZeros(uint(spec.N))
	perPass := bits.TrailingZeros(uint(spec.Block))
	n := uint64(spec.N)
	var t opcount.Totals
	for stageLo := 0; stageLo < totalStages; stageLo += perPass {
		lp := uint64(min(perPass, totalStages-stageLo))
		t.Reads += n
		t.Writes += n
		t.Ops += n / 2 * lp * butterflyOps
	}
	return t, nil
}

// FFTRatioSweep measures the blocked FFT ratio across block sizes at fixed N
// for the E5 experiment. Choosing N with log₂N divisible by log₂Block makes
// every pass full, matching the paper's asymptotic count exactly. Points
// run in parallel via Sweep.
func FFTRatioSweep(ctx context.Context, n int, blocks []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, blocks, func(_ context.Context, bs int, c *opcount.Counter) (int, error) {
		spec := FFTSpec{N: n, Block: bs}
		t, err := CountBlockedFFT(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, t)
		return spec.Memory(), nil
	})
	return pts, err
}

// FFTDecomposition describes the block structure of one pass for the Fig. 2
// rendering: which global indices each subcomputation block gathers.
type FFTDecomposition struct {
	Spec   FFTSpec
	Passes []FFTPass
}

// FFTPass is one vertical slice of Fig. 2b: a set of blocks, each listing
// the global indices it transforms.
type FFTPass struct {
	StageLo, StageHi int // global butterfly stages [lo, hi)
	Blocks           [][]int
}

// DecomposeFFT computes the block structure BlockedFFT executes, for
// diagram rendering and structural tests.
func DecomposeFFT(spec FFTSpec) (FFTDecomposition, error) {
	if err := spec.Validate(); err != nil {
		return FFTDecomposition{}, err
	}
	dec := FFTDecomposition{Spec: spec}
	totalStages := bits.TrailingZeros(uint(spec.N))
	perPass := bits.TrailingZeros(uint(spec.Block))
	for stageLo := 0; stageLo < totalStages; stageLo += perPass {
		lp := min(perPass, totalStages-stageLo)
		groupSize := 1 << lp
		stride := 1 << stageLo
		pass := FFTPass{StageLo: stageLo, StageHi: stageLo + lp}
		for g := 0; g < spec.N/groupSize; g++ {
			base := g&(stride-1) | (g >> stageLo << (stageLo + lp))
			idx := make([]int, groupSize)
			for t := 0; t < groupSize; t++ {
				idx[t] = base + t*stride
			}
			pass.Blocks = append(pass.Blocks, idx)
		}
		dec.Passes = append(dec.Passes, pass)
	}
	return dec, nil
}
