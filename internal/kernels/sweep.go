package kernels

import (
	"context"

	"balarch/internal/engine"
	"balarch/internal/opcount"
)

// Sweep is the one ratio-sweep driver every kernel shares: it measures one
// RatioPoint per parameter, fanning the points out across engine workers.
// The sweep points are independent subcomputations in the paper's §4 sense,
// so each point's goroutine owns a private opcount.Counter; the driver
// snapshots each counter into its point and merges them all with
// Counter.Add into the returned aggregate. Points come back in params
// order, so a parallel sweep is byte-identical to a serial one.
//
// measure records the point's exact operation and I/O counts into c and
// returns the local memory footprint (in words) the point represents.
func Sweep[P any](ctx context.Context, params []P, measure func(ctx context.Context, p P, c *opcount.Counter) (memory int, err error)) ([]RatioPoint, opcount.Totals, error) {
	type point struct {
		pt RatioPoint
		c  *opcount.Counter
	}
	jobs := make([]engine.Job[point], len(params))
	for i, p := range params {
		p := p
		jobs[i] = engine.Job[point]{Run: func(ctx context.Context) (point, error) {
			var c opcount.Counter
			mem, err := measure(ctx, p, &c)
			if err != nil {
				return point{}, err
			}
			return point{RatioPoint{Memory: mem, Totals: c.Snapshot()}, &c}, nil
		}}
	}
	var pool engine.Pool[point] // parallelism inherited from ctx
	res, err := pool.Run(ctx, jobs)
	if err != nil {
		return nil, opcount.Totals{}, err
	}
	pts := make([]RatioPoint, len(res))
	var total opcount.Counter
	for i, r := range res {
		pts[i] = r.pt
		total.Add(r.c)
	}
	return pts, total.Snapshot(), nil
}

// countPoint adapts a closed-form counting kernel to Sweep's measure shape:
// it replays the precomputed totals into the point's counter.
func countPoint(c *opcount.Counter, t opcount.Totals) {
	c.Ops64(t.Ops)
	c.Read64(t.Reads)
	c.Write64(t.Writes)
}
