package kernels

import (
	"context"
	"fmt"
	"math/rand"

	"balarch/internal/opcount"
)

// SortSpec describes the §3.5 two-phase external comparison sort: phase 1
// reads N/M subsets of M keys, sorts each in local memory, and writes them
// back as sorted runs; phase 2 merges up to M runs at a time with an M-way
// heap whose root pops cost Θ(log₂M) comparisons per word of I/O.
type SortSpec struct {
	// N is the number of keys to sort.
	N int
	// M is the local memory size in words (= keys).
	M int
}

// Validate checks the spec's invariants.
func (s SortSpec) Validate() error {
	if s.N < 0 {
		return fmt.Errorf("kernels: sort N=%d must be ≥ 0", s.N)
	}
	if s.M < 2 {
		return fmt.Errorf("kernels: sort M=%d must be ≥ 2", s.M)
	}
	return nil
}

// Memory returns the local memory footprint in words.
func (s SortSpec) Memory() int { return s.M }

// MergePasses returns the number of phase-2 merge passes: ⌈log_M(⌈N/M⌉)⌉.
func (s SortSpec) MergePasses() int {
	runs := (s.N + s.M - 1) / s.M
	passes := 0
	for runs > 1 {
		runs = (runs + s.M - 1) / s.M
		passes++
	}
	return passes
}

// ExternalSort sorts input with the two-phase scheme, counting every key
// comparison as one operation and every key moved in or out of the PE as one
// I/O word. The input slice is not modified.
func ExternalSort(spec SortSpec, input []int64, c *opcount.Counter) ([]int64, error) {
	out, _, _, err := externalSortInternal(spec, input, c, c)
	return out, err
}

// ExternalSortPhased runs the same computation with the two phases counted
// separately, so §3.5's per-phase claim — both phases individually achieve
// R = Θ(log₂M) — can be checked, not just the aggregate.
func ExternalSortPhased(spec SortSpec, input []int64) (out []int64, phase1, phase2 opcount.Totals, err error) {
	var c1, c2 opcount.Counter
	out, _, _, err = externalSortInternal(spec, input, &c1, &c2)
	return out, c1.Snapshot(), c2.Snapshot(), err
}

// externalSortInternal implements both entry points: sortCounter accounts
// phase 1 (run formation), mergeCounter phase 2 (the M-way merges). The two
// may be the same counter.
func externalSortInternal(spec SortSpec, input []int64, sortCounter, mergeCounter *opcount.Counter) ([]int64, opcount.Totals, opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return nil, opcount.Totals{}, opcount.Totals{}, err
	}
	if len(input) != spec.N {
		return nil, opcount.Totals{}, opcount.Totals{},
			fmt.Errorf("kernels: input length %d does not match spec N=%d", len(input), spec.N)
	}
	if spec.N == 0 {
		return nil, opcount.Totals{}, opcount.Totals{}, nil
	}

	// Phase 1: produce sorted runs of up to M keys.
	var runs [][]int64
	for lo := 0; lo < spec.N; lo += spec.M {
		hi := min(lo+spec.M, spec.N)
		run := make([]int64, hi-lo)
		copy(run, input[lo:hi])
		sortCounter.Read(len(run))
		HeapSortKeys(run, sortCounter)
		sortCounter.Write(len(run))
		runs = append(runs, run)
	}

	// Phase 2: merge up to M runs at a time until one remains.
	for len(runs) > 1 {
		var next [][]int64
		for lo := 0; lo < len(runs); lo += spec.M {
			hi := min(lo+spec.M, len(runs))
			merged := mergeRuns(runs[lo:hi], mergeCounter)
			next = append(next, merged)
		}
		runs = next
	}
	return runs[0], sortCounter.Snapshot(), mergeCounter.Snapshot(), nil
}

// HeapSortKeys sorts keys in place with bottom-up heapsort, counting
// comparisons. Exported so tests and benchmarks can exercise the in-memory
// phase alone.
func HeapSortKeys(keys []int64, c *opcount.Counter) {
	n := len(keys)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownKeys(keys, i, n, c)
	}
	for end := n - 1; end > 0; end-- {
		keys[0], keys[end] = keys[end], keys[0]
		siftDownKeys(keys, 0, end, c)
	}
}

func siftDownKeys(keys []int64, root, end int, c *opcount.Counter) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end {
			c.Ops(1)
			if keys[child+1] > keys[child] {
				child++
			}
		}
		c.Ops(1)
		if keys[root] >= keys[child] {
			return
		}
		keys[root], keys[child] = keys[child], keys[root]
		root = child
	}
}

// mergeEntry is one heap element in the M-way merge: the current head key of
// a run and which run it came from.
type mergeEntry struct {
	key int64
	run int
}

// mergeRuns merges the given sorted runs with a binary min-heap of one entry
// per run (the paper's "heap of M elements which are the first elements of
// the current M sorted lists"), counting comparisons and word traffic.
func mergeRuns(runs [][]int64, c *opcount.Counter) []int64 {
	total := 0
	heads := make([]int, len(runs))
	heap := make([]mergeEntry, 0, len(runs))
	for r, run := range runs {
		total += len(run)
		if len(run) > 0 {
			c.Read(1)
			heap = append(heap, mergeEntry{key: run[0], run: r})
			heads[r] = 1
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDownMerge(heap, i, len(heap), c)
	}

	out := make([]int64, 0, total)
	for len(heap) > 0 {
		top := heap[0]
		out = append(out, top.key)
		c.Write(1)
		r := top.run
		if heads[r] < len(runs[r]) {
			c.Read(1)
			heap[0] = mergeEntry{key: runs[r][heads[r]], run: r}
			heads[r]++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			siftDownMerge(heap, 0, len(heap), c)
		}
	}
	return out
}

func siftDownMerge(heap []mergeEntry, root, end int, c *opcount.Counter) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end {
			c.Ops(1)
			if heap[child+1].key < heap[child].key {
				child++
			}
		}
		c.Ops(1)
		if heap[root].key <= heap[child].key {
			return
		}
		heap[root], heap[child] = heap[child], heap[root]
		root = child
	}
}

// SortRatioSweep measures the external-sort ratio across memory sizes for
// the E6 experiment. Each point sorts N = runsPerMemory·M² keys so phase 2
// is a genuine M-way merge, keeping both phases in the paper's regime. The
// seed fixes the random input so the sweep is reproducible; each point
// regenerates its own input from the seed, so points are independent and
// run in parallel via Sweep.
func SortRatioSweep(ctx context.Context, ms []int, seed int64) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, ms, func(_ context.Context, m int, c *opcount.Counter) (int, error) {
		n := m * m
		rng := rand.New(rand.NewSource(seed))
		input := make([]int64, n)
		for i := range input {
			input[i] = rng.Int63()
		}
		if _, err := ExternalSort(SortSpec{N: n, M: m}, input, c); err != nil {
			return 0, err
		}
		return m, nil
	})
	return pts, err
}
