package kernels

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"balarch/internal/engine"
	"balarch/internal/opcount"
)

func TestSweepPointsInOrderAndAggregate(t *testing.T) {
	params := []int{1, 2, 3, 4, 5, 6, 7, 8}
	pts, total, err := Sweep(context.Background(), params,
		func(_ context.Context, p int, c *opcount.Counter) (int, error) {
			c.Ops(p)
			c.Read(2 * p)
			c.Write(1)
			return 10 * p, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var wantOps, wantReads, wantWrites uint64
	for i, p := range params {
		if pts[i].Memory != 10*p {
			t.Errorf("point %d memory = %d, want %d", i, pts[i].Memory, 10*p)
		}
		if pts[i].Totals.Ops != uint64(p) || pts[i].Totals.Reads != uint64(2*p) {
			t.Errorf("point %d totals = %+v", i, pts[i].Totals)
		}
		wantOps += uint64(p)
		wantReads += uint64(2 * p)
		wantWrites++
	}
	// The per-goroutine counters must merge (Counter.Add) into the exact
	// whole-sweep totals.
	if total.Ops != wantOps || total.Reads != wantReads || total.Writes != wantWrites {
		t.Errorf("aggregate = %+v, want ops=%d reads=%d writes=%d",
			total, wantOps, wantReads, wantWrites)
	}
}

// TestSweepSerialParallelIdentical: the driver's output must not depend on
// the worker count.
func TestSweepSerialParallelIdentical(t *testing.T) {
	measure := func(_ context.Context, bs int, c *opcount.Counter) (int, error) {
		spec := MatMulSpec{N: 512, Block: bs}
		tot, err := CountBlockedMatMul(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, tot)
		return spec.Memory(), nil
	}
	blocks := []int{4, 8, 16, 32, 64}
	serialPts, serialTot, err := Sweep(engine.WithParallelism(context.Background(), 1), blocks, measure)
	if err != nil {
		t.Fatal(err)
	}
	parPts, parTot, err := Sweep(engine.WithParallelism(context.Background(), 8), blocks, measure)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(serialPts) != fmt.Sprint(parPts) || serialTot != parTot {
		t.Errorf("parallel sweep differs from serial:\n%v\n%v", serialPts, parPts)
	}
}

func TestSweepPropagatesError(t *testing.T) {
	boom := errors.New("bad point")
	_, _, err := Sweep(context.Background(), []int{1, 2, 3},
		func(_ context.Context, p int, c *opcount.Counter) (int, error) {
			if p == 2 {
				return 0, boom
			}
			c.Ops(1)
			c.Read(1)
			return p, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the point error", err)
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Sweep(ctx, []int{1, 2, 3},
		func(ctx context.Context, p int, c *opcount.Counter) (int, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			c.Ops(1)
			c.Read(1)
			return p, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
